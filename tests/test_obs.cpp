#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/sink.h"
#include "obs/span_map.h"

namespace qos {
namespace {

TEST(CounterGauge, Basics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  g.set(1.5);
  g.add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (Time v = 0; v < LatencyHistogram::kSubBuckets; ++v) h.record(v);
  // Unit buckets: every quantile is an exactly recorded value.
  EXPECT_EQ(h.quantile(0), 0);
  EXPECT_EQ(h.quantile(0.5), 15);
  EXPECT_EQ(h.quantile(1.0), 31);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 31);
}

TEST(LatencyHistogram, BucketBoundsContainValue) {
  for (Time v : {0, 1, 31, 32, 33, 100, 1023, 1024, 65537, 1'000'000'000}) {
    const std::size_t idx = LatencyHistogram::bucket_index(v);
    EXPECT_LE(LatencyHistogram::bucket_lower(idx), v) << v;
    EXPECT_LT(v, LatencyHistogram::bucket_upper(idx)) << v;
  }
  // Bucket boundaries tile the line: upper(i) == lower(i+1).
  for (std::size_t i = 0; i < 400; ++i) {
    EXPECT_EQ(LatencyHistogram::bucket_upper(i),
              LatencyHistogram::bucket_lower(i + 1))
        << i;
  }
}

TEST(LatencyHistogram, QuantileAccuracyWithinBucketResolution) {
  // Deterministic pseudo-uniform values across several octaves.
  std::vector<Time> values;
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 20'000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(static_cast<Time>(x % 5'000'000));  // up to 5 s in us
  }
  LatencyHistogram h;
  for (Time v : values) h.record(v);
  std::sort(values.begin(), values.end());

  EXPECT_EQ(h.count(), values.size());
  EXPECT_EQ(h.min(), values.front());
  EXPECT_EQ(h.max(), values.back());

  double sum = 0;
  for (Time v : values) sum += static_cast<double>(v);
  EXPECT_NEAR(h.mean_us(), sum / static_cast<double>(values.size()), 1e-6);

  for (double p : {0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(values.size())));
    const Time exact = values[rank == 0 ? 0 : rank - 1];
    const Time approx = h.quantile(p);
    // Reported value never under-estimates and stays within one sub-bucket
    // (1/32 relative) of the exact order statistic.
    EXPECT_GE(approx, exact) << p;
    EXPECT_LE(approx - exact,
              exact / LatencyHistogram::kSubBuckets + 1)
        << p;
  }
}

TEST(LatencyHistogram, EmptyAndNegative) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.max(), 0);
  h.record(-5);  // clamped, not fatal
  EXPECT_EQ(h.min(), 0);
}

TEST(LatencyHistogram, EmptyGuardsReportNulloptNotSentinel) {
  // quantile()/cdf() keep their documented 0 sentinels on an empty
  // histogram; the try_ variants distinguish "no samples" from "0 us".
  LatencyHistogram h;
  EXPECT_EQ(h.quantile(0.99), 0);
  EXPECT_EQ(h.cdf(1000), 0.0);
  EXPECT_EQ(h.try_quantile(0.99), std::nullopt);
  EXPECT_EQ(h.try_cdf(1000), std::nullopt);

  h.record(0);  // a real 0-us sample is NOT "empty"
  ASSERT_TRUE(h.try_quantile(0.5).has_value());
  EXPECT_EQ(*h.try_quantile(0.5), 0);
  ASSERT_TRUE(h.try_cdf(0).has_value());
  EXPECT_DOUBLE_EQ(*h.try_cdf(0), 1.0);
}

TEST(LatencyHistogram, CdfMatchesSamplesAtBucketGranularity) {
  LatencyHistogram h;
  for (Time v : {5, 10, 10, 20, 30}) h.record(v);
  EXPECT_DOUBLE_EQ(h.cdf(-1), 0.0);   // below every sample
  EXPECT_DOUBLE_EQ(h.cdf(0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(5), 0.2);    // unit buckets below 32 are exact
  EXPECT_DOUBLE_EQ(h.cdf(10), 0.6);
  EXPECT_DOUBLE_EQ(h.cdf(19), 0.6);
  EXPECT_DOUBLE_EQ(h.cdf(20), 0.8);
  EXPECT_DOUBLE_EQ(h.cdf(30), 1.0);   // at max and beyond: exactly 1
  EXPECT_DOUBLE_EQ(h.cdf(1'000'000), 1.0);

  // cdf and quantile are (bucket-granularity) inverses: walking the CDF up
  // to quantile(p) accumulates at least p of the mass.
  for (double p : {0.2, 0.5, 0.8, 1.0})
    EXPECT_GE(h.cdf(h.quantile(p)), p) << p;
}

TEST(OccupancySeries, TimeWeightedMean) {
  OccupancySeries s;
  EXPECT_TRUE(s.empty());
  s.update(0, 2);
  s.update(10, 5);
  s.update(20, 0);
  // value 2 over [0,10), value 5 over [10,20): mean = (20 + 50) / 20.
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.max(), 5);
  EXPECT_EQ(s.current(), 0);
  EXPECT_EQ(s.duration(), 20);
  // Extending to t=40 adds 20 ticks of value 0.
  EXPECT_DOUBLE_EQ(s.mean_until(40), 70.0 / 40.0);
}

TEST(OccupancySeries, SpikesBetweenUpdatesAreWeightedByDuration) {
  OccupancySeries s;
  s.update(0, 0);
  s.update(100, 1000);  // brief spike...
  s.update(101, 0);     // ...lasting one tick
  s.update(201, 0);
  EXPECT_EQ(s.max(), 1000);
  EXPECT_NEAR(s.mean(), 1000.0 / 201.0, 1e-9);
}

TEST(MetricRegistry, NamesAreStableIdentities) {
  MetricRegistry r;
  Counter& a = r.counter("x");
  a.add(3);
  // Same name, same instance — even after unrelated insertions.
  r.counter("y").add(1);
  r.histogram("h").record(7);
  r.occupancy("o").update(0, 1);
  EXPECT_EQ(&r.counter("x"), &a);
  EXPECT_EQ(r.counter("x").value(), 3u);

  EXPECT_EQ(r.find_counter("x"), &a);
  EXPECT_EQ(r.find_counter("absent"), nullptr);
  EXPECT_EQ(r.find_gauge("absent"), nullptr);
  EXPECT_EQ(r.find_histogram("absent"), nullptr);
  EXPECT_EQ(r.find_occupancy("absent"), nullptr);
}

TEST(Sinks, CountingAndRecording) {
  RecordingSink sink;
  Probe probe(&sink);
  ASSERT_TRUE(probe.enabled());
  probe.emit({.time = 5, .seq = 1, .kind = EventKind::kAdmit});
  probe.emit({.time = 6, .seq = 2, .kind = EventKind::kReject});
  probe.emit({.time = 7, .seq = 1, .kind = EventKind::kDispatch});
  EXPECT_EQ(sink.count(EventKind::kAdmit), 1u);
  EXPECT_EQ(sink.count(EventKind::kReject), 1u);
  EXPECT_EQ(sink.count(EventKind::kCompletion), 0u);
  EXPECT_EQ(sink.total(), 3u);
  ASSERT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(sink.events()[1].seq, 2u);

  Probe disabled;
  EXPECT_FALSE(disabled.enabled());
  disabled.emit({.time = 1});  // must be a no-op
}

TEST(Exporters, CsvAndJsonCarryTheData) {
  RecordingSink sink;
  sink.on_event({.time = 42,
                 .seq = 7,
                 .a = 3,
                 .client = 1,
                 .kind = EventKind::kAdmit});
  const std::string csv = CsvExporter::events(sink.events());
  EXPECT_NE(csv.find("time_us,kind,seq"), std::string::npos);
  EXPECT_NE(csv.find("42,admit,7,1,primary"), std::string::npos);
  const std::string json = JsonExporter::events(sink.events());
  EXPECT_NE(json.find("\"kind\": \"admit\""), std::string::npos);

  MetricRegistry r;
  r.counter("rtt.admitted").add(12);
  r.histogram("lat").record(100);
  r.occupancy("q").update(0, 2);
  r.occupancy("q").update(10, 2);
  const std::string rcsv = CsvExporter::registry(r);
  EXPECT_NE(rcsv.find("rtt.admitted,counter,value,12"), std::string::npos);
  EXPECT_NE(rcsv.find("lat,histogram,count"), std::string::npos);
  EXPECT_NE(rcsv.find("q,occupancy,mean,2.0000"), std::string::npos);
  const std::string rjson = JsonExporter::registry(r);
  EXPECT_NE(rjson.find("\"rtt.admitted\": 12"), std::string::npos);
}

TEST(Merge, CounterAndGaugeAdd) {
  Counter a, b;
  a.add(5);
  b.add(37);
  a.merge(b);
  EXPECT_EQ(a.value(), 42u);

  Gauge x, y;
  x.set(1.5);
  y.set(-0.5);
  x.merge(y);
  EXPECT_DOUBLE_EQ(x.value(), 1.0);
}

TEST(Merge, HistogramMergeEqualsSingleRecorder) {
  // Recording a stream into two shards and merging must equal recording the
  // whole stream into one histogram — exactly, including min/max/mean and
  // every quantile (the fan-in contract the parallel runner relies on).
  std::vector<Time> values;
  std::uint64_t x = 12345;
  for (int i = 0; i < 10'000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(static_cast<Time>(x % 2'000'000));
  }
  LatencyHistogram whole, shard_a, shard_b;
  for (std::size_t i = 0; i < values.size(); ++i) {
    whole.record(values[i]);
    (i % 2 == 0 ? shard_a : shard_b).record(values[i]);
  }
  shard_a.merge(shard_b);
  EXPECT_EQ(shard_a.count(), whole.count());
  EXPECT_EQ(shard_a.min(), whole.min());
  EXPECT_EQ(shard_a.max(), whole.max());
  EXPECT_DOUBLE_EQ(shard_a.mean_us(), whole.mean_us());
  for (double p : {0.0, 0.01, 0.5, 0.9, 0.99, 1.0})
    EXPECT_EQ(shard_a.quantile(p), whole.quantile(p)) << p;
}

TEST(Merge, HistogramMergeEmptyIsIdentity) {
  LatencyHistogram h, empty;
  h.record(100);
  h.merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 100);
  empty.merge(h);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 100);
  EXPECT_EQ(empty.max(), 100);
}

TEST(Merge, RegistryFanIn) {
  // Two worker-private registries folded into a collector: counters and
  // histograms combine, disjoint names copy over.
  MetricRegistry worker1, worker2, collector;
  worker1.counter("rtt.admitted").add(10);
  worker2.counter("rtt.admitted").add(32);
  worker2.counter("rtt.rejected").add(3);
  worker1.gauge("load").set(0.25);
  worker2.gauge("load").set(0.50);
  worker1.histogram("lat").record(100);
  worker2.histogram("lat").record(200);
  worker2.occupancy("q2.depth").update(0, 4);

  collector.merge_from(worker1);
  collector.merge_from(worker2);
  EXPECT_EQ(collector.counter("rtt.admitted").value(), 42u);
  EXPECT_EQ(collector.counter("rtt.rejected").value(), 3u);
  EXPECT_DOUBLE_EQ(collector.gauge("load").value(), 0.75);
  EXPECT_EQ(collector.histogram("lat").count(), 2u);
  EXPECT_EQ(collector.histogram("lat").min(), 100);
  EXPECT_EQ(collector.histogram("lat").max(), 200);
  ASSERT_NE(collector.find_occupancy("q2.depth"), nullptr);
  EXPECT_EQ(collector.find_occupancy("q2.depth")->max(), 4);
}

// ---- shard fan-in edge cases ---------------------------------------------
// The sharded simulator fans per-lane shards of ONE run into a global
// registry; lanes routinely contribute nothing, one sample, or series with
// disjoint active windows.  These pin the merge semantics for each case.

TEST(Merge, OccupancyMergeMatchesHandComputedIntegral) {
  // Lane A: value 2 on [0, 10), then 0 on [10, 30).
  // Lane B: first update at t=20 (contributes 0 before that — its queue was
  // empty), value 3 on [20, 30).
  // Combined over [0, 30): 2*10 + 0*10 + 3*10 = 50 -> mean 50/30.
  OccupancySeries a, b;
  a.update(0, 2);
  a.update(10, 0);
  a.update(30, 0);
  b.update(20, 3);
  b.update(30, 3);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), 50.0 / 30.0);
  EXPECT_EQ(a.max(), 3);
  EXPECT_EQ(a.current(), 3);
  EXPECT_EQ(a.duration(), 30);
}

TEST(Merge, OccupancyMergeExtendsShorterSeriesCurrentValue) {
  // The shorter series holds its last value to the union window's end:
  // A is 1 on [0, 100); B is 5 on [0, 10) and holds 5 to 100.
  // Combined integral: (1+5)*10 + (1+5)*90 = 600 -> mean 6.
  OccupancySeries a, b;
  a.update(0, 1);
  a.update(100, 1);
  b.update(0, 5);
  b.update(10, 5);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), 6.0);
  EXPECT_EQ(a.duration(), 100);
}

TEST(Merge, OccupancyMergeEmptyShardIsIdentity) {
  OccupancySeries series, empty;
  series.update(0, 4);
  series.update(10, 4);
  const double mean = series.mean();
  series.merge(empty);  // empty other: no-op
  EXPECT_DOUBLE_EQ(series.mean(), mean);
  EXPECT_EQ(series.max(), 4);
  EXPECT_EQ(series.duration(), 10);

  OccupancySeries target;
  target.merge(series);  // empty this: copies
  EXPECT_DOUBLE_EQ(target.mean(), mean);
  EXPECT_EQ(target.max(), 4);
  EXPECT_EQ(target.current(), 4);
  EXPECT_EQ(target.duration(), 10);
}

TEST(Merge, OccupancyMergeSingleUpdateShard) {
  // A lane that saw exactly one update has a zero-width window: it must
  // contribute its value from that instant on, and nothing before.
  OccupancySeries a, b;
  a.update(0, 1);
  a.update(40, 1);
  b.update(30, 7);  // single sample at t=30
  a.merge(b);
  // Integral: 1*30 + (1+7)*10 = 110 -> mean 110/40.
  EXPECT_DOUBLE_EQ(a.mean(), 110.0 / 40.0);
  EXPECT_EQ(a.max(), 7);
  EXPECT_EQ(a.current(), 8);
}

TEST(Merge, HistogramMergeSingleSampleShards) {
  // Degenerate shards — one sample each, including 0 — must still combine
  // min/max/mean exactly.
  LatencyHistogram a, b, c;
  a.record(0);
  b.record(1'000'000);
  c.record(500);
  a.merge(b);
  a.merge(c);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 0);
  EXPECT_EQ(a.max(), 1'000'000);
  EXPECT_DOUBLE_EQ(a.mean_us(), (0.0 + 1'000'000.0 + 500.0) / 3.0);
  EXPECT_TRUE(a.consistent());
}

TEST(Merge, FanInOccupancyCollisionComposesInParallel) {
  // merge_from aborts on occupancy collisions (unrelated runs); fan_in is
  // the sharded path and must compose them instead.
  MetricRegistry lane_a, lane_b, global;
  lane_a.occupancy("q1.occupancy").update(0, 2);
  lane_a.occupancy("q1.occupancy").update(10, 2);
  lane_b.occupancy("q1.occupancy").update(0, 3);
  lane_b.occupancy("q1.occupancy").update(10, 3);
  lane_a.counter("rtt.admitted").add(7);
  lane_b.counter("rtt.admitted").add(5);
  global.fan_in(lane_a);
  global.fan_in(lane_b);
  EXPECT_DOUBLE_EQ(global.occupancy("q1.occupancy").mean(), 5.0);
  EXPECT_EQ(global.counter("rtt.admitted").value(), 12u);
}

TEST(ShapingReportTest, MissRunsAndClassSplit) {
  // Hand-built result: seq order response times (ms):
  //   5, 15, 20, 5, 30  with delta = 10 ms
  // -> misses at seq 1,2 (one run of 2) and seq 4 (one run of 1).
  SimResult sim;
  const Time rts[] = {from_ms(5), from_ms(15), from_ms(20), from_ms(5),
                      from_ms(30)};
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    CompletionRecord c;
    c.seq = seq;
    c.arrival = 0;
    c.start = 0;
    c.finish = rts[seq];
    c.klass = seq == 2 ? ServiceClass::kOverflow : ServiceClass::kPrimary;
    sim.completions.push_back(c);
  }
  const ShapingReport report = build_shaping_report(sim, from_ms(10));
  EXPECT_EQ(report.all.count, 5u);
  EXPECT_EQ(report.primary.count, 4u);
  EXPECT_EQ(report.overflow.count, 1u);
  EXPECT_EQ(report.deadline_misses, 3u);
  ASSERT_EQ(report.max_miss_run(), 2u);
  EXPECT_EQ(report.miss_run_lengths[0], 1u);  // one isolated miss
  EXPECT_EQ(report.miss_run_lengths[1], 1u);  // one run of two
  EXPECT_DOUBLE_EQ(report.all.fraction_within_delta, 2.0 / 5.0);
  EXPECT_EQ(report.all.max, from_ms(30));
  // Without a registry the admit/reject totals fall back to classes.
  EXPECT_EQ(report.admitted, 4u);
  EXPECT_EQ(report.rejected, 1u);
  EXPECT_FALSE(report.q1_occupancy.tracked);

  // Exports render without blowing up and carry the headline numbers.
  EXPECT_NE(report.to_string().find("misses"), std::string::npos);
  EXPECT_NE(report.to_csv().find("misses,total,3"), std::string::npos);
  EXPECT_NE(report.to_json().find("\"deadline_misses\": 3"),
            std::string::npos);
}

// ---- SpanMap -------------------------------------------------------------
// The Tracer's flat linear-probe table: insert/lookup/erase must behave like
// a map through growth and backward-shift deletion (no tombstones means
// erase must keep every colliding probe chain reachable).

TEST(SpanMap, InsertLookupAndSize) {
  SpanMap<int> map;
  EXPECT_TRUE(map.empty());
  bool inserted = false;
  map.find_or_insert(7, inserted) = 70;
  EXPECT_TRUE(inserted);
  map.find_or_insert(7, inserted) += 1;
  EXPECT_FALSE(inserted);  // second touch finds, not inserts
  EXPECT_EQ(map.find_or_insert(7, inserted), 71);
  EXPECT_EQ(map.size(), 1u);
}

TEST(SpanMap, ZeroKeyIsAValidKey) {
  // Slot emptiness is encoded as stored == 0 via key + 1, so seq 0 — the
  // very first request of every run — must round-trip.
  SpanMap<int> map;
  bool inserted = false;
  map.find_or_insert(0, inserted) = 42;
  EXPECT_TRUE(inserted);
  EXPECT_EQ(map.find_or_insert(0, inserted), 42);
  EXPECT_FALSE(inserted);
  EXPECT_TRUE(map.erase(0));
  EXPECT_TRUE(map.empty());
}

TEST(SpanMap, EraseMissingAndOnEmpty) {
  SpanMap<int> map;
  EXPECT_FALSE(map.erase(5));  // empty table, no slots allocated yet
  bool inserted = false;
  map.find_or_insert(5, inserted);
  EXPECT_FALSE(map.erase(6));
  EXPECT_TRUE(map.erase(5));
  EXPECT_FALSE(map.erase(5));  // already gone
}

TEST(SpanMap, GrowthRehashesEveryEntry) {
  // Push far past the initial 64-slot table and the 3/4 load factor; every
  // key must survive the rehash chain with its value.
  SpanMap<std::uint64_t> map;
  bool inserted = false;
  constexpr std::uint64_t kN = 10'000;
  for (std::uint64_t k = 0; k < kN; ++k) {
    map.find_or_insert(k * 97 + 13, inserted) = k;
    ASSERT_TRUE(inserted);
  }
  EXPECT_EQ(map.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    ASSERT_EQ(map.find_or_insert(k * 97 + 13, inserted), k) << k;
    ASSERT_FALSE(inserted);
  }
}

TEST(SpanMap, BackwardShiftDeletionKeepsProbeChainsReachable) {
  // Interleave inserts and erases in the in-flight pattern the Tracer
  // drives (insert at arrival, erase at completion) and mirror against a
  // reference map; any tombstone-style breakage shows up as a lost key.
  SpanMap<std::uint64_t> map;
  bool inserted = false;
  std::uint64_t live_lo = 0, next = 0;
  for (int round = 0; round < 2'000; ++round) {
    map.find_or_insert(next, inserted) = next * 2;
    ASSERT_TRUE(inserted);
    ++next;
    if (round % 3 == 2) {
      ASSERT_TRUE(map.erase(live_lo));
      ++live_lo;
    }
  }
  for (std::uint64_t k = live_lo; k < next; ++k) {
    ASSERT_EQ(map.find_or_insert(k, inserted), k * 2) << k;
    ASSERT_FALSE(inserted);
  }
  EXPECT_EQ(map.size(), next - live_lo);
  EXPECT_FALSE(map.erase(live_lo - 1));  // erased keys stay erased
}

TEST(SpanMap, ClearResets) {
  SpanMap<int> map;
  bool inserted = false;
  for (std::uint64_t k = 0; k < 100; ++k) map.find_or_insert(k, inserted);
  map.clear();
  EXPECT_TRUE(map.empty());
  map.find_or_insert(3, inserted) = 9;
  EXPECT_TRUE(inserted);
  EXPECT_EQ(map.size(), 1u);
}

}  // namespace
}  // namespace qos
