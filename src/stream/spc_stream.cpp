#include "stream/spc_stream.h"

#include <cstdio>
#include <cstring>
#include <queue>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/spc.h"
#include "util/check.h"

#if defined(__unix__) || defined(__APPLE__)
#define QOS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace qos::stream {
namespace {

/// One line at a time from somewhere.  Views stay valid until the next call.
class LineSource {
 public:
  virtual ~LineSource() = default;
  /// Next line without its terminator, or nullopt at end of file.  The final
  /// line is yielded whether or not it ends in a newline.
  virtual std::optional<std::string_view> next_line() = 0;
};

/// Pulls the file through a fixed-size buffer; a line spanning a chunk
/// boundary is stitched in a carry buffer.  Memory: one chunk + the longest
/// line.
class ChunkLineSource final : public LineSource {
 public:
  ChunkLineSource(std::FILE* file, std::size_t chunk_bytes)
      : file_(file), buf_(chunk_bytes > 0 ? chunk_bytes : 1) {}

  ~ChunkLineSource() override {
    if (file_) std::fclose(file_);
  }

  std::optional<std::string_view> next_line() override {
    carry_.clear();
    while (true) {
      if (pos_ == filled_) {
        filled_ = std::fread(buf_.data(), 1, buf_.size(), file_);
        pos_ = 0;
        if (filled_ == 0) {
          if (carry_.empty()) return std::nullopt;
          return std::string_view(carry_);
        }
      }
      const char* begin = buf_.data() + pos_;
      const char* end = buf_.data() + filled_;
      const char* nl = static_cast<const char*>(
          std::memchr(begin, '\n', static_cast<std::size_t>(end - begin)));
      if (nl != nullptr) {
        const std::size_t n = static_cast<std::size_t>(nl - begin);
        pos_ += n + 1;
        if (carry_.empty()) return std::string_view(begin, n);
        carry_.append(begin, n);
        return std::string_view(carry_);
      }
      carry_.append(begin, static_cast<std::size_t>(end - begin));
      pos_ = filled_;
    }
  }

 private:
  std::FILE* file_;
  std::vector<char> buf_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  std::string carry_;
};

#ifdef QOS_HAVE_MMAP
/// Walks an mmap'd file in place — zero copies, the page cache owns the
/// bytes.  Advised MADV_SEQUENTIAL: the walk is one pass front to back.
class MmapLineSource final : public LineSource {
 public:
  MmapLineSource(void* data, std::size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}

  ~MmapLineSource() override {
    if (data_ != nullptr && size_ > 0)
      ::munmap(const_cast<char*>(data_), size_);
  }

  std::optional<std::string_view> next_line() override {
    if (pos_ >= size_) return std::nullopt;
    const char* begin = data_ + pos_;
    const char* nl = static_cast<const char*>(
        std::memchr(begin, '\n', size_ - pos_));
    const std::size_t n = nl != nullptr
                              ? static_cast<std::size_t>(nl - begin)
                              : size_ - pos_;
    pos_ += n + 1;  // past the newline (or past the end; loop exits either way)
    return std::string_view(begin, n);
  }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};
#endif  // QOS_HAVE_MMAP

std::unique_ptr<LineSource> open_source(const std::string& path,
                                        const SpcStreamOptions& options) {
#ifdef QOS_HAVE_MMAP
  if (options.use_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return nullptr;
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return nullptr;
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return std::make_unique<MmapLineSource>(nullptr, 0);
    }
    void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps the file alive
    if (data == MAP_FAILED) return nullptr;
    ::madvise(data, size, MADV_SEQUENTIAL);
    return std::make_unique<MmapLineSource>(data, size);
  }
#endif
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return nullptr;
  return std::make_unique<ChunkLineSource>(file, options.chunk_bytes);
}

}  // namespace

class SpcFileStream::Impl {
 public:
  Impl(std::unique_ptr<LineSource> source, Time window)
      : source_(std::move(source)), window_(window) {}

  std::optional<Request> next() {
    // Fill the reorder heap until its top is provably final: either the file
    // is exhausted, or some record `window_` newer has been seen, so the
    // bounded-disorder contract puts every unread record after the top.
    while (!exhausted_ && !releasable()) {
      auto line = source_->next_line();
      if (!line) {
        exhausted_ = true;
        break;
      }
      if (line->empty()) continue;  // blank lines are not counted as skipped
      Request r;
      if (!parse_spc_line(*line, r)) {
        ++skipped_;
        continue;
      }
      if (r.arrival > max_seen_) max_seen_ = r.arrival;
      heap_.push({r.arrival, file_index_++, r});
    }
    if (heap_.empty()) return std::nullopt;
    Request r = heap_.top().record;
    heap_.pop();
    // A pop below the last emitted arrival means the file's disorder
    // exceeded the window and the sorted-stream contract is already broken
    // — fail loudly rather than hand the simulator time travel.
    QOS_CHECK(r.arrival >= last_emitted_);
    last_emitted_ = r.arrival;
    r.seq = seq_++;  // dense, in emission order — the Trace ctor's numbering
    QOS_CHECK(request_record_ok(r));
    return r;
  }

  std::size_t skipped_lines() const { return skipped_; }

 private:
  struct Pending {
    Time arrival;
    std::uint64_t index;  ///< position in file — the stable-sort tie-break
    Request record;

    // Inverted: std::priority_queue is a max-heap, we need the min.
    friend bool operator<(const Pending& a, const Pending& b) {
      if (a.arrival != b.arrival) return a.arrival > b.arrival;
      return a.index > b.index;
    }
  };

  bool releasable() const {
    return !heap_.empty() && heap_.top().arrival + window_ <= max_seen_;
  }

  std::unique_ptr<LineSource> source_;
  Time window_;
  std::priority_queue<Pending> heap_;
  std::uint64_t file_index_ = 0;
  std::uint64_t seq_ = 0;
  Time max_seen_ = 0;
  Time last_emitted_ = 0;
  std::size_t skipped_ = 0;
  bool exhausted_ = false;
};

SpcFileStream::SpcFileStream(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

SpcFileStream::~SpcFileStream() = default;

std::optional<Request> SpcFileStream::next() { return impl_->next(); }

std::size_t SpcFileStream::skipped_lines() const {
  return impl_->skipped_lines();
}

std::unique_ptr<SpcFileStream> try_open_spc_stream(
    const std::string& path, const SpcStreamOptions& options) {
  QOS_EXPECTS(options.reorder_window >= 0);
  auto source = open_source(path, options);
  if (source == nullptr) return nullptr;
  return std::make_unique<SpcFileStream>(
      std::make_unique<SpcFileStream::Impl>(std::move(source),
                                            options.reorder_window));
}

}  // namespace qos::stream
