// FairQueue recombination (paper Section 3.2): one server of capacity
// Cmin + dC multiplexes Q1 and Q2 under a proportional-share fair scheduler
// with weights Cmin : dC.  Unlike Split, spare capacity moves freely between
// the classes (statistical multiplexing) while each keeps its reservation.
//
// The underlying fair scheduler is pluggable — any src/fq FairScheduler
// (SFQ by default, WF2Q+ or pClock for the ablation bench).
#pragma once

#include <memory>

#include "core/decomposing_scheduler.h"
#include "fq/fair_scheduler.h"
#include "fq/sfq.h"

namespace qos {

class FairQueueScheduler final : public DecomposingScheduler {
 public:
  /// Weights default to Cmin : dC per the paper.  A custom fair scheduler
  /// must be configured for exactly 2 flows (0 = Q1, 1 = Q2).
  FairQueueScheduler(double admission_capacity_iops, Time delta,
                     double overflow_weight,
                     std::unique_ptr<FairScheduler> fair = nullptr)
      : DecomposingScheduler(admission_capacity_iops, delta),
        fair_(fair ? std::move(fair)
                   : std::make_unique<SfqScheduler>(std::vector<double>{
                         admission_capacity_iops, overflow_weight})) {
    QOS_EXPECTS(fair_->flow_count() == 2);
  }

  int server_count() const override { return 1; }

  void attach_observability(EventSink* sink,
                            MetricRegistry* registry) override {
    DecomposingScheduler::attach_observability(sink, registry);
    if (registry != nullptr) {
      q1_served_ = &registry->counter("fq.q1_served");
      q2_served_ = &registry->counter("fq.q2_served");
    }
  }

  std::optional<Dispatch> next_for(int server, Time now) override {
    QOS_EXPECTS(server == 0);
    auto pick = fair_->dequeue(now);
    if (!pick) return std::nullopt;
    // Per-flow order is FIFO in both the fair scheduler and our queues, so
    // the dispatched handle is necessarily the head of that class's queue.
    auto d = pick->flow == 0 ? pop_q1(now) : pop_q2(now);
    QOS_CHECK(d.has_value());
    QOS_CHECK(d->request.seq == pick->handle);
    if (pick->flow == 0) {
      if (q1_served_ != nullptr) q1_served_->add();
    } else {
      if (q2_served_ != nullptr) q2_served_->add();
    }
    return d;
  }

 protected:
  void on_classified(const Request& r, ServiceClass klass, Time now) override {
    fair_->enqueue(klass == ServiceClass::kPrimary ? 0 : 1, r.seq,
                   /*cost=*/1.0, now);
  }

 private:
  std::unique_ptr<FairScheduler> fair_;
  Counter* q1_served_ = nullptr;
  Counter* q2_served_ = nullptr;
};

}  // namespace qos
