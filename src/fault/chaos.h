// Chaos harness — run any shaping configuration under a fault schedule and
// measure how gracefully it degrades.
//
// run_chaos is shape_and_run plus fault plumbing: every backing server is
// wrapped in a FaultyServer (via ShapingConfig::server_decorator for the
// standard policies), and with `use_degraded_admission` the recombination
// is the DegradedRttScheduler, whose admission re-tightens to the monitored
// capacity.  The outcome carries the standard ShapingReport plus the three
// degradation headline numbers the paper's story needs: the Q1 deadline-
// miss fraction, the demotion count, and the time the Q1 class needed to
// recover after the last fault cleared.
#pragma once

#include "core/shaper.h"
#include "fault/degraded_rtt.h"
#include "fault/fault_schedule.h"

namespace qos {

struct ChaosConfig {
  ShapingConfig shaping;
  FaultySchedule faults;        ///< empty = fault-free run (bit-identical
                                ///< to shape_and_run, tests assert)
  /// Replace the policy's static RTT admission with DegradedRtt on a
  /// single shared server (strict-priority recombination).  The
  /// `shaping.policy` field is ignored in this mode.
  bool use_degraded_admission = false;
  DegradedRttConfig degraded;   ///< monitor/hysteresis parameters
};

struct ChaosOutcome {
  ShapingOutcome shaping;

  /// Fraction of Q1-classified completions missing the deadline.
  double q1_miss_fraction = 0;
  /// Arrivals sent to Q2 that nominal-capacity RTT would have admitted
  /// (only the degraded-admission mode demotes; 0 otherwise).
  std::uint64_t demotions = 0;
  /// Demotions / total requests.
  double demotion_rate = 0;
  /// Finish instant of the last Q1 deadline miss after the final fault
  /// window closed, minus that close instant: how long Q1 service took to
  /// re-converge.  0 when no miss follows the last fault (or no faults).
  Time time_to_recover = 0;
};

/// Run `trace` through `config` with fault injection.  Always builds the
/// ShapingReport (observed or not) since the degradation metrics derive
/// from it.
ChaosOutcome run_chaos(const Trace& trace, const ChaosConfig& config);

}  // namespace qos
