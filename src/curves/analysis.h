// Service-curve analysis: busy periods, backlog, the Service Curve Limit and
// the paper's Lemma-1 lower bound on mandatory deadline misses.
#pragma once

#include <cstdint>
#include <vector>

#include "curves/arrival_curve.h"
#include "trace/trace.h"
#include "util/time.h"

namespace qos {

/// One busy period of an ideal work-conserving fluid server of capacity C.
struct BusyPeriod {
  Time start = 0;  ///< first arrival of the period
  Time end = 0;    ///< instant the backlog drains to zero
  std::int64_t first_seq = 0;
  std::int64_t last_seq = 0;  ///< inclusive
};

/// Busy periods of a fluid server with capacity `capacity_iops` serving the
/// whole trace (no drops).  Fluid model: service accrues continuously at C,
/// so period end = start + backlog/C extended by arrivals that land before
/// the drain completes.
std::vector<BusyPeriod> busy_periods(const Trace& trace, double capacity_iops);

/// Maximum instantaneous backlog (pending requests) of the fluid server at
/// arrival instants.
double max_backlog(const Trace& trace, double capacity_iops);

/// Lemma 1 (per busy period starting at service origin `origin`):
///   max_k sgn(A(a_k) - S(a_k + delta))
/// where S(t) = C * (t - origin) is the service available assuming the server
/// is continuously busy from `origin`.  This is a lower bound on the number
/// of requests of the busy period that must miss deadline `delta` at capacity
/// C.  `curve` must contain only the busy period's arrivals (or the whole
/// trace when the server never idles).
std::int64_t lemma1_lower_bound(const ArrivalCurve& curve,
                                double capacity_iops, Time delta,
                                Time origin = 0);

/// Sum of Lemma-1 bounds over all busy periods of the fluid server — a lower
/// bound on total mandatory misses for the whole trace.  RTT matches this
/// bound (Lemmas 2-3); tests assert equality against RTT and brute force.
std::int64_t mandatory_miss_lower_bound(const Trace& trace,
                                        double capacity_iops, Time delta);

/// The Service Curve Limit (paper Figure 3): the most cumulative arrivals a
/// capacity-C server busy since `origin` can still finish within deadline
/// delta by time t, i.e. SCL(t) = C * (t - origin + delta).
double scl_at(double capacity_iops, Time delta, Time t, Time origin = 0);

/// Arrival instants of `curve` where A(t) exceeds the SCL — the overload
/// points where a decomposition must divert requests (paper Figure 3(a),
/// instants 2 and 3).
std::vector<Time> scl_violations(const ArrivalCurve& curve,
                                 double capacity_iops, Time delta,
                                 Time origin = 0);

}  // namespace qos
