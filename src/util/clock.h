// Clock seam: one interface over simulated and wall-clock time.
//
// Everything above the event core reasons in `qos::Time` microseconds.  The
// simulator advances a VirtualClock from trace timestamps; the online
// serving layer (src/online) stamps decisions from a SteadyClock backed by
// std::chrono::steady_clock.  Code written against `Clock` — the
// online::Shaper convenience overloads, the load generator — runs unchanged
// under either, which is what makes the simulated-vs-online differential
// tests possible: same algorithm, different clock.
//
// Both concrete clocks are monotone.  VirtualClock enforces it with a
// precondition (time travel in an event loop is a bug, not a feature);
// SteadyClock inherits it from steady_clock.
#pragma once

#include <chrono>

#include "util/check.h"
#include "util/time.h"

namespace qos {

/// Source of "now" in microseconds.  Implementations must be monotone:
/// successive now() calls never decrease.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Time now() = 0;
};

/// Manually advanced clock for simulation and replay.  Starts at 0 (trace
/// epoch); the owner advances it to each event instant.
class VirtualClock final : public Clock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(Time start) : now_(start) { QOS_EXPECTS(start >= 0); }

  Time now() override { return now_; }

  /// Advance to `t`.  Monotone: t must be >= the current instant (equal is
  /// fine — several events can share a timestamp).
  void advance_to(Time t) {
    QOS_EXPECTS(t >= now_);
    now_ = t;
  }

  /// Advance by a non-negative duration.
  void advance(Time d) {
    QOS_EXPECTS(d >= 0);
    now_ += d;
  }

 private:
  Time now_ = 0;
};

/// Wall-clock time from std::chrono::steady_clock, re-based to 0 at
/// construction so online timestamps share the trace convention (Time 0 =
/// start of the run).
class SteadyClock final : public Clock {
 public:
  SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}

  Time now() override {
    const auto elapsed = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace qos
