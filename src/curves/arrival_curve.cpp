#include "curves/arrival_curve.h"

#include <algorithm>

namespace qos {

ArrivalCurve::ArrivalCurve(const Trace& trace) {
  steps_.reserve(trace.size());
  std::int64_t cum = 0;
  for (const auto& r : trace) {
    ++cum;
    if (!steps_.empty() && steps_.back().at == r.arrival) {
      ++steps_.back().count;
      steps_.back().cumulative = cum;
    } else {
      steps_.push_back({r.arrival, 1, cum});
    }
  }
}

std::int64_t ArrivalCurve::at(Time t) const {
  // Last step with at <= t.
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](Time value, const Step& s) { return value < s.at; });
  if (it == steps_.begin()) return 0;
  return std::prev(it)->cumulative;
}

}  // namespace qos
