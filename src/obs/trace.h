// Request-level tracing: per-request lifecycle spans assembled from the
// pipeline event stream.
//
// Aggregates (histograms, occupancy series) answer "how bad was the tail";
// they cannot answer "*why* did request 4711 miss its deadline".  The Tracer
// closes that gap: it is an EventSink that folds the flat Event stream back
// into one `RequestSpan` per request —
//
//   arrival -> admission decision (with RTT occupancy at decision time)
//           -> enqueue Q1/Q2 -> service start -> completion
//
// plus fault-window and demotion annotations from the fault layer, and the
// Miser slack-accounting series (one sample per slack-funded Q2 dispatch).
// Spans are what the exporters (obs/trace_export.h) and the deadline-miss
// attribution (obs/trace_analysis.h) consume.
//
// Cost model: tracing rides the existing Probe guard — with no Tracer
// attached the pipeline pays exactly the one branch per hook it already
// paid, and nothing else changes (bench stdout stays byte-identical).  With
// a Tracer attached, per-event work is one hash-map touch; million-request
// traces are tamed by sampling (keep every Nth request) and/or a ring buffer
// (keep the most recent K completed spans), both configured in TracerConfig.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/sink.h"
#include "obs/span_map.h"
#include "util/time.h"

namespace qos {

/// Sentinel for "this lifecycle stage was never observed" (e.g. a span cut
/// off by sampling start, or an FCFS run that makes no admission decision).
inline constexpr Time kNoTime = -1;

/// One request's lifecycle.  All instants are simulation microseconds;
/// kNoTime marks a stage the event stream never reported.  Fixed-size and
/// string-free so the binary trace format is a flat array of these.
struct RequestSpan {
  std::uint64_t seq = 0;
  std::uint32_t client = 0;

  Time arrival = kNoTime;        ///< entered the scheduler
  Time decision = kNoTime;       ///< RTT admit / reject / demote instant
  Time enqueue = kNoTime;        ///< joined its class queue
  Time service_start = kNoTime;  ///< server began service
  Time completion = kNoTime;     ///< service finished

  /// RTT occupancy at decision time: lenQ1 after an admit, Q2 backlog after
  /// a reject; -1 when no decision was observed.
  std::int64_t depth_at_decision = -1;
  /// maxQ1 bound in force at the decision (0 = unbounded, e.g. FCFS).
  std::int64_t max_q1_at_decision = -1;
  /// Miser only: the minimum primary slack that funded this overflow
  /// request's dispatch; -1 when the dispatch was not slack-funded.
  std::int64_t slack_funding = -1;
  /// Fault inflation added to this request's service (inflated - base
  /// duration, us); -1 when no fault touched it.
  Time inflation_us = -1;

  ServiceClass klass = ServiceClass::kPrimary;  ///< final class at dispatch
  std::uint8_t server = 0;
  std::uint8_t admitted = 0;  ///< 1 iff the decision was an admit
  std::uint8_t demoted = 0;   ///< 1 iff degraded admission demoted it to Q2

  bool complete() const { return arrival != kNoTime && completion != kNoTime; }
  Time response_us() const { return completion - arrival; }
  /// Queue wait from enqueue (falling back to arrival) to service start.
  Time wait_us() const {
    const Time from = enqueue != kNoTime ? enqueue : arrival;
    return service_start - from;
  }

  friend bool operator==(const RequestSpan&, const RequestSpan&) = default;
};

/// One fault window observed during the run (from kFaultBegin events).
struct FaultSpan {
  Time begin = 0;
  Time end = 0;
  std::int64_t kind = 0;          ///< FaultKind as emitted by the fault layer
  std::int64_t severity_ppm = 0;  ///< severity in parts per million

  friend bool operator==(const FaultSpan&, const FaultSpan&) = default;
};

/// One Miser slack-accounting sample: at `time` a Q2 dispatch was funded by
/// minimum primary slack `slack`.  The series is recorded for *every* slack
/// dispatch regardless of request sampling, so slack accounting stays exact
/// under --trace-sample.
struct SlackSample {
  Time time = 0;
  std::int64_t slack = 0;

  friend bool operator==(const SlackSample&, const SlackSample&) = default;
};

struct TracerConfig {
  /// Keep spans for requests with seq % sample_every == 0 (1 = every
  /// request).  Values < 1 are treated as 1.
  std::uint64_t sample_every = 1;
  /// Ring-buffer bound on retained *completed* spans: keep the most recent
  /// `max_spans`, counting evictions in TraceData::dropped.  0 = unbounded.
  std::size_t max_spans = 0;
};

/// Consumer of assembled trace records as they are produced — the streaming
/// alternative to materializing a TraceData.  A Tracer with a SpanSink
/// attached forwards each completed span / fault window / slack sample here
/// instead of accumulating it, so memory stays bounded by the in-flight
/// request census regardless of run length.  ChunkedTraceWriter
/// (obs/trace_stream.h) is the file-backed implementation.
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void on_span(const RequestSpan& span) = 0;
  virtual void on_fault(const FaultSpan& fault) = 0;
  virtual void on_slack(const SlackSample& sample) = 0;
};

/// Everything one traced run produced — the unit the exporters serialize.
struct TraceData {
  std::string label;       ///< e.g. the sweep-cell label ("Miser")
  std::string trace_name;  ///< workload name, informational
  Time delta = 0;          ///< deadline the run was shaped for (0 = unknown)
  std::uint64_t sample_every = 1;

  std::vector<RequestSpan> spans;  ///< completed spans, completion order
  std::vector<FaultSpan> faults;
  std::vector<SlackSample> slack;

  std::uint64_t observed = 0;  ///< sampled requests seen (incl. evicted)
  std::uint64_t dropped = 0;   ///< completed spans evicted by the ring
};

/// EventSink that assembles RequestSpans from the pipeline event stream.
///
/// Synchronous and single-threaded like every sink (one Tracer per
/// simulation).  Attach it as the run's sink — directly, or through the
/// ShapingConfig::tracer hook, which chains an explicitly configured sink
/// downstream so tracing composes with recording/counting sinks.
class Tracer final : public EventSink {
 public:
  explicit Tracer(TracerConfig config = {});

  /// Forward every event (sampled or not) to `sink` after processing; null
  /// disables forwarding.  Not owned.
  void set_downstream(EventSink* sink) { downstream_ = sink; }

  /// Switch to streaming mode: completed spans, fault windows and slack
  /// samples go to `sink` as they are produced and are NOT accumulated —
  /// data() then carries metadata, fault windows (kept for dedup; bounded
  /// by the fault schedule) and counters, but empty spans/slack.  Nothing
  /// is ring-evicted in this mode, so dropped() stays 0.  Not owned; set
  /// before the run starts (mid-run switching would split the record
  /// stream).
  void set_span_sink(SpanSink* sink) { span_sink_ = sink; }

  void on_event(const Event& e) override;

  /// Snapshot the assembled trace.  Completed spans come out in completion
  /// order (ring evictions drop the oldest).  Label/trace_name/delta are
  /// whatever annotate() set; in-flight (never-completed) spans are not
  /// included.
  TraceData data() const;

  /// Attach run metadata carried into TraceData and the exporters.
  void annotate(std::string label, std::string trace_name, Time delta);

  /// Reset all collected state (annotations survive).
  void clear();

  std::uint64_t observed() const { return observed_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t in_flight() const { return live_.size(); }

 private:
  /// seq % sample_every == 0, without the per-event 64-bit division (this
  /// runs for every lifecycle event of a giant run).  Decompose
  /// sample_every = d * 2^s with d odd: divisible iff the low s bits are
  /// zero and (seq >> s) * inv(d) mod 2^64 <= (2^64 - 1) / d — the standard
  /// multiplicative-inverse divisibility test, one multiply and two
  /// compares.
  bool sampled(std::uint64_t seq) const {
    return sample_every_ <= 1 ||
           ((seq & sample_low_mask_) == 0 &&
            (seq >> sample_shift_) * sample_inv_ <= sample_thresh_);
  }
  RequestSpan& live(const Event& e);
  void finish(RequestSpan span);

  std::uint64_t sample_every_;
  std::uint64_t sample_low_mask_ = 0;  ///< 2^s - 1
  unsigned sample_shift_ = 0;          ///< s: trailing zero bits
  std::uint64_t sample_inv_ = 1;       ///< inverse of the odd part mod 2^64
  std::uint64_t sample_thresh_ = ~std::uint64_t{0};  ///< (2^64-1) / odd part
  std::size_t max_spans_;
  EventSink* downstream_ = nullptr;
  SpanSink* span_sink_ = nullptr;

  SpanMap<RequestSpan> live_;  ///< in-flight sampled spans, by seq
  std::vector<RequestSpan> done_;  ///< ring when max_spans_ > 0
  std::size_t ring_next_ = 0;      ///< next overwrite slot once saturated
  std::vector<FaultSpan> faults_;
  std::vector<SlackSample> slack_;
  std::uint64_t observed_ = 0;
  std::uint64_t dropped_ = 0;

  std::string label_;
  std::string trace_name_;
  Time delta_ = 0;
};

}  // namespace qos
