// Ablation: cross-tenant isolation under a misbehaving neighbor.
//
// Paper Section 1: "the run-time scheduler must isolate the individual
// clients from each other so that they receive their reservations without
// interference from misbehaving clients with demand overruns".  Two tenants
// share one server sized for both reservations; tenant 1's load sweeps from
// in-profile to 6x its reservation.  Compared schedulers:
//   * shared FCFS (no isolation, no decomposition),
//   * MultiTenantScheduler (per-tenant RTT + cross-tenant SFQ).
// The victim tenant 0's compliance collapses under FCFS and stays ~constant
// under the shaping scheduler; the flood is confined to the flooder's
// overflow class.
#include <cstdio>

#include "analysis/response_stats.h"
#include "core/fcfs.h"
#include "core/multi_tenant.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "util/table.h"

namespace {

using namespace qos;

constexpr Time kDelta = from_ms(10);
constexpr Time kHorizon = 120 * kUsPerSec;

Trace mixed_trace(double victim_rate, double flooder_rate,
                  std::uint64_t seed) {
  Trace a = generate_poisson(victim_rate, kHorizon, seed);
  Trace b = generate_poisson(flooder_rate, kHorizon, seed + 17);
  const Trace parts[] = {a, b};
  return Trace::merge(parts);
}

struct VictimStats {
  double within_primary = 0;  ///< victim requests within delta (all classes)
  double flooder_within = 0;
};

template <typename MakeScheduler>
VictimStats run(double flooder_rate, MakeScheduler make) {
  Trace t = mixed_trace(400, flooder_rate, 2027);
  auto [scheduler, capacity] = make();
  ConstantRateServer server(capacity);
  SimResult r = simulate(t, *scheduler, server);
  std::vector<CompletionRecord> victim, flooder;
  for (const auto& c : r.completions)
    (c.client == 0 ? victim : flooder).push_back(c);
  VictimStats out;
  out.within_primary = ResponseStats(victim).fraction_within(kDelta);
  out.flooder_within = ResponseStats(flooder).fraction_within(kDelta);
  return out;
}

void sweep() {
  AsciiTable table;
  table.add("flooder load", "victim<=10ms FCFS", "victim<=10ms shaped",
            "flooder<=10ms shaped");
  // Both tenants reserve 450 IOPS @ 10 ms; server = 450+450+100.
  const std::vector<TenantSpec> specs = {TenantSpec{450, kDelta, 50},
                                         TenantSpec{450, kDelta, 50}};
  const double capacity = 1000;
  for (double flood : {400.0, 800.0, 1600.0, 2400.0}) {
    auto fcfs = run(flood, [&] {
      return std::pair<std::unique_ptr<Scheduler>, double>(
          std::make_unique<FcfsScheduler>(), capacity);
    });
    auto shaped = run(flood, [&] {
      return std::pair<std::unique_ptr<Scheduler>, double>(
          std::make_unique<MultiTenantScheduler>(specs), capacity);
    });
    table.add(format_double(flood, 0) + " IOPS",
              format_double(100 * fcfs.within_primary, 1) + "%",
              format_double(100 * shaped.within_primary, 1) + "%",
              format_double(100 * shaped.flooder_within, 1) + "%");
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nvictim holds a 450 IOPS @ 10 ms reservation and sends 400 IOPS;\n"
      "the neighbor sweeps 400 -> 2400 IOPS on a 1000 IOPS server.\n");
}

}  // namespace

int main() {
  std::printf("Ablation: isolation from a misbehaving tenant\n\n");
  sweep();
  return 0;
}
