// Shared bench scaffolding: command-line options and BENCH_<name>.json.
//
// Every SweepRunner-based bench accepts the same flags —
//
//   --threads N     worker threads including the caller (0 = hardware,
//                   default 1 so plain runs stay the serial reference)
//   --no-cache      disable the result cache entirely
//   --cache-dir D   on-disk cache tier directory (default build/.qos_cache
//                   relative to the working directory; "" = memory only)
//   --json PATH     where to write the timing JSON
//                   (default BENCH_<name>.json in the working directory)
//   --trace         record request-level traces (SweepRunner benches);
//                   writes <stem>.trace.bin + <stem>.perfetto.json
//   --trace-out S   trace output stem (default TRACE_<name>)
//   --trace-sample N keep spans for every Nth request (default 1 = all)
//
// — and finishes by writing a small JSON record (wall time, cells, cache
// hits, rows, threads) so successive runs seed a perf trajectory that CI
// or a human can diff.  Output rows must not depend on any of these flags;
// the serial-vs-parallel bit-identity check in the acceptance criteria
// diffs bench stdout across --threads values.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/profile.h"
#include "runner/result_cache.h"
#include "runner/sweep.h"

namespace qos {

struct BenchOptions {
  std::string bench_name;
  int threads = 1;
  bool use_cache = true;
  std::string cache_dir = "build/.qos_cache";
  std::string json_path;  ///< resolved to BENCH_<name>.json when empty

  bool trace = false;
  std::string trace_out;  ///< output stem; resolved to TRACE_<name> when empty
  std::uint64_t trace_sample = 1;

  /// Engine profiling sink shared by the bench's phases and its runner;
  /// allocated by parse_bench_args (shared_ptr because ProfileCollector
  /// owns a mutex and BenchOptions must stay copyable).
  std::shared_ptr<ProfileCollector> profile;

  /// The cache configured by the flags, or nullptr with --no-cache.
  std::unique_ptr<ResultCache> make_cache() const;

  /// SweepOptions carrying threads, cache, tracing and profiling — the
  /// one-liner that gives every SweepRunner bench the shared flags:
  ///   SweepRunner runner(options.sweep_options(cache.get()));
  SweepOptions sweep_options(ResultCache* cache) const;
};

/// Parse the shared flags; unknown arguments abort with a usage message.
BenchOptions parse_bench_args(int argc, char** argv,
                              const std::string& bench_name);

struct BenchTiming {
  std::string name;
  double wall_seconds = 0;
  std::uint64_t cells = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t rows = 0;
  int threads = 1;

  /// Tracing accounting for --trace runs, emitted as a "trace" object in
  /// the manifest.  trace_dropped > 0 means the span ring evicted spans —
  /// silent loss unless it lands in the JSON where CI and humans can see
  /// it.  traced == false omits the object (untraced manifests unchanged).
  bool traced = false;
  std::uint64_t trace_observed = 0;
  std::uint64_t trace_retained = 0;
  std::uint64_t trace_dropped = 0;
};

/// Serialize `timing` (stable key order, fixed formatting).  A non-null,
/// non-empty `profile` adds a "profile" object keyed by phase name.
std::string bench_timing_json(const BenchTiming& timing,
                              const ProfileCollector* profile = nullptr);

/// Write bench_timing_json to options.json_path (or BENCH_<name>.json) and
/// note the path on stderr — stdout stays reserved for the reproduced
/// tables so output diffs are clean.  Includes options.profile's phases.
void write_bench_json(const BenchOptions& options, const BenchTiming& timing);

/// Convenience: assemble the timing from a finished runner and write it.
/// Under --trace this also writes the runner's collected traces to
/// <trace_out>.trace.bin (binary container) and <trace_out>.perfetto.json
/// (Chrome trace_event JSON), noting both paths on stderr.
void write_bench_json(const BenchOptions& options, const SweepRunner& runner,
                      std::uint64_t rows, double wall_seconds);

/// Monotonic wall clock for bench timing, in seconds.
double bench_now_seconds();

}  // namespace qos
