file(REMOVE_RECURSE
  "CMakeFiles/bq_sim.dir/simulator.cpp.o"
  "CMakeFiles/bq_sim.dir/simulator.cpp.o.d"
  "libbq_sim.a"
  "libbq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
