// Ablation: cross-tenant isolation under a misbehaving neighbor.
//
// Paper Section 1: "the run-time scheduler must isolate the individual
// clients from each other so that they receive their reservations without
// interference from misbehaving clients with demand overruns".  Two tenants
// share one server sized for both reservations; tenant 1's load sweeps from
// in-profile to 6x its reservation.  Compared schedulers:
//   * shared FCFS (no isolation, no decomposition),
//   * MultiTenantScheduler (per-tenant RTT + cross-tenant SFQ).
// The victim tenant 0's compliance collapses under FCFS and stays ~constant
// under the shaping scheduler; the flood is confined to the flooder's
// overflow class.
//
// Execution engine: each (flood rate, scheduler) pair is a custom-factory
// SweepRunner cell; the per-tenant compliance numbers are extracted on the
// worker via the cell's annotate hook and ride in the row extras, so the
// whole 8-cell sweep runs concurrently and caches like any other.
#include <cstdio>

#include "analysis/response_stats.h"
#include "core/fcfs.h"
#include "core/multi_tenant.h"
#include "runner/bench_io.h"
#include "trace/generator.h"
#include "util/table.h"

namespace {

using namespace qos;

constexpr Time kDelta = from_ms(10);
constexpr Time kHorizon = 120 * kUsPerSec;
constexpr double kCapacity = 1000;
constexpr double kFloods[] = {400.0, 800.0, 1600.0, 2400.0};

Trace mixed_trace(double victim_rate, double flooder_rate,
                  std::uint64_t seed) {
  Trace a = generate_poisson(victim_rate, kHorizon, seed);
  Trace b = generate_poisson(flooder_rate, kHorizon, seed + 17);
  const Trace parts[] = {a, b};
  return Trace::merge(parts);
}

// Victim/flooder compliance, split by client id, across both service
// classes — runs on the worker thread against the cell's private SimResult.
void annotate_tenants(const SimResult& sim,
                      std::map<std::string, double>& extra) {
  std::vector<CompletionRecord> victim, flooder;
  for (const auto& c : sim.completions)
    (c.client == 0 ? victim : flooder).push_back(c);
  extra["tenant.victim_within"] = ResponseStats(victim).fraction_within(kDelta);
  extra["tenant.flooder_within"] =
      ResponseStats(flooder).fraction_within(kDelta);
}

SweepCell isolation_cell(const Trace& trace, const std::string& label,
                         double flood, bool shaped) {
  SweepCell cell;
  cell.label = label;
  cell.trace_name = "victim400+flood" + format_double(flood, 0);
  cell.trace = &trace;
  cell.shaping.policy = shaped ? Policy::kFairQueue : Policy::kFcfs;
  cell.shaping.delta = kDelta;
  cell.shaping.capacity_override_iops = kCapacity;
  cell.seed = 2027;
  ContentHasher salt;
  salt.str("ablation-isolation-v1").str(label).f64(flood);
  cell.custom_salt = salt.digest().lo | 1;
  if (shaped) {
    // Both tenants reserve 450 IOPS @ 10 ms; server = 450+450+100.
    const std::vector<TenantSpec> specs = {TenantSpec{450, kDelta, 50},
                                           TenantSpec{450, kDelta, 50}};
    cell.make_scheduler = [specs] {
      return std::unique_ptr<Scheduler>(
          std::make_unique<MultiTenantScheduler>(specs));
    };
  } else {
    cell.make_scheduler = [] {
      return std::unique_ptr<Scheduler>(std::make_unique<FcfsScheduler>());
    };
  }
  cell.server_iops = {kCapacity};
  cell.annotate = annotate_tenants;
  return cell;
}

void run(const BenchOptions& options) {
  const double t0 = bench_now_seconds();

  // The traces must outlive the sweep; one mixed trace per flood rate.
  std::vector<Trace> traces;
  traces.reserve(std::size(kFloods));
  for (double flood : kFloods)
    traces.push_back(mixed_trace(400, flood, 2027));

  std::vector<SweepCell> cells;
  for (std::size_t i = 0; i < std::size(kFloods); ++i) {
    cells.push_back(isolation_cell(traces[i], "FCFS", kFloods[i], false));
    cells.push_back(isolation_cell(traces[i], "shaped", kFloods[i], true));
  }

  auto cache = options.make_cache();
  SweepRunner runner(options.sweep_options(cache.get()));
  const std::vector<SweepRow> rows = runner.run_cells(cells);

  AsciiTable table;
  table.add("flooder load", "victim<=10ms FCFS", "victim<=10ms shaped",
            "flooder<=10ms shaped");
  for (std::size_t i = 0; i < std::size(kFloods); ++i) {
    const SweepRow& fcfs = rows[2 * i];
    const SweepRow& shaped = rows[2 * i + 1];
    table.add(format_double(kFloods[i], 0) + " IOPS",
              format_double(100 * fcfs.extra.at("tenant.victim_within"), 1) +
                  "%",
              format_double(100 * shaped.extra.at("tenant.victim_within"), 1) +
                  "%",
              format_double(
                  100 * shaped.extra.at("tenant.flooder_within"), 1) + "%");
  }
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nvictim holds a 450 IOPS @ 10 ms reservation and sends 400 IOPS;\n"
      "the neighbor sweeps 400 -> 2400 IOPS on a 1000 IOPS server.\n");

  write_bench_json(options, runner, rows.size(), bench_now_seconds() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: isolation from a misbehaving tenant\n\n");
  run(parse_bench_args(argc, argv, "ablation_isolation"));
  return 0;
}
