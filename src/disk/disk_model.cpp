#include "disk/disk_model.h"

#include <cmath>

#include "util/check.h"

namespace qos {

Time SeekProfile::seek_time(std::int64_t distance) const {
  QOS_EXPECTS(distance >= 0);
  if (distance == 0) return 0;
  if (distance == 1) return track_to_track;
  if (distance <= short_range) {
    return track_to_track +
           static_cast<Time>(static_cast<double>(short_seek_coeff) *
                             std::sqrt(static_cast<double>(distance)));
  }
  return long_seek_base +
         static_cast<Time>(long_seek_slope *
                           static_cast<double>(distance - short_range));
}

DiskPosition DiskModel::position_of(std::uint64_t lba) const {
  const std::int64_t blocks = static_cast<std::int64_t>(
      lba % static_cast<std::uint64_t>(geometry_.total_blocks()));
  DiskPosition p;
  p.cylinder = blocks / geometry_.blocks_per_cylinder();
  const std::int64_t within = blocks % geometry_.blocks_per_cylinder();
  p.head = within / geometry_.sectors_per_track;
  p.sector = within % geometry_.sectors_per_track;
  return p;
}

void DiskModel::attach_observability(EventSink* sink,
                                     MetricRegistry* registry) {
  probe_ = Probe(sink);
  if (registry != nullptr) {
    seek_hist_ = &registry->histogram("disk.seek_us");
    rotation_hist_ = &registry->histogram("disk.rotation_us");
    transfer_hist_ = &registry->histogram("disk.transfer_us");
  }
}

Time DiskModel::service_time(const Request& r, Time now) {
  const DiskPosition pos = position_of(r.lba);
  const Time seek = seek_.seek_time(std::llabs(pos.cylinder - cylinder_));
  cylinder_ = pos.cylinder;

  // Rotation: the platter angle is a pure function of wall-clock time, so
  // the delay until the target sector passes under the head is the gap
  // between the head-settled instant and the sector's next pass.
  const Time period = geometry_.rotation_period();
  const Time settled = now + seek;
  const Time sector_phase =
      pos.sector * period / geometry_.sectors_per_track;
  const Time settle_phase = settled % period;
  Time rotation = sector_phase - settle_phase;
  if (rotation < 0) rotation += period;

  const Time transfer = static_cast<Time>(r.size_blocks) * period /
                        geometry_.sectors_per_track;
  if (seek_hist_ != nullptr) {
    seek_hist_->record(seek);
    rotation_hist_->record(rotation);
    transfer_hist_->record(transfer);
  }
  if (probe_) {
    probe_.emit({.time = now,
                 .seq = r.seq,
                 .a = seek,
                 .b = rotation,
                 .c = transfer,
                 .client = r.client,
                 .kind = EventKind::kDiskService});
  }
  const Time total = seek + rotation + transfer;
  return total > 0 ? total : 1;
}

}  // namespace qos
