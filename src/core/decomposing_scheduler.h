// Shared base for the recombination schedulers (Split / FairQueue / Miser):
// RTT admission at arrival with a live primary-queue census.
//
// lenQ1 counts pending primary requests — queued *and* in service — exactly
// the quantity Algorithm 1's proof reasons about (A(t) - S(t) for the
// primary class).  It is incremented on admission and decremented when a
// primary request completes service.
//
// Observability: attach_observability() wires an optional EventSink (kAdmit /
// kReject per arrival) and MetricRegistry ("rtt.admitted" / "rtt.rejected"
// counters, "q1.occupancy" / "q2.occupancy" time-weighted series).  With
// nothing attached each hook is one null-pointer branch.
#pragma once

#include "core/rtt.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "sim/scheduler.h"
#include "util/ring_buffer.h"

namespace qos {

class DecomposingScheduler : public Scheduler {
 public:
  /// `admission_capacity_iops` is Cmin — the capacity the Q1 profile was
  /// planned for — regardless of how much total capacity the backing
  /// server(s) provide.
  DecomposingScheduler(double admission_capacity_iops, Time delta)
      : admission_(admission_capacity_iops, delta) {}

  void attach_observability(EventSink* sink,
                            MetricRegistry* registry) override {
    probe_ = Probe(sink);
    if (registry != nullptr) {
      admitted_ = &registry->counter("rtt.admitted");
      rejected_ = &registry->counter("rtt.rejected");
      q1_occ_ = &registry->occupancy("q1.occupancy");
      q2_occ_ = &registry->occupancy("q2.occupancy");
    }
  }

  bool arrival_joins_primary(Time) override {
    return admission_.admit(len_q1_);
  }

  void on_arrival(const Request& r, Time now) override {
    if (admission_.admit(len_q1_)) {
      q1_.push_back(r);
      ++len_q1_;
      if (admitted_ != nullptr) admitted_->add();
      if (q1_occ_ != nullptr) q1_occ_->update(now, len_q1_);
      if (probe_) {
        probe_.emit({.time = now,
                     .seq = r.seq,
                     .a = len_q1_,
                     .b = admission_.max_q1(),
                     .client = r.client,
                     .kind = EventKind::kAdmit,
                     .klass = ServiceClass::kPrimary});
      }
      on_classified(r, ServiceClass::kPrimary, now);
    } else {
      q2_.push_back(r);
      if (rejected_ != nullptr) rejected_->add();
      if (q2_occ_ != nullptr)
        q2_occ_->update(now, static_cast<std::int64_t>(q2_.size()));
      if (probe_) {
        probe_.emit({.time = now,
                     .seq = r.seq,
                     .a = static_cast<std::int64_t>(q2_.size()),
                     .client = r.client,
                     .kind = EventKind::kReject,
                     .klass = ServiceClass::kOverflow});
      }
      on_classified(r, ServiceClass::kOverflow, now);
    }
  }

  void on_complete(const Request&, ServiceClass klass, int,
                   Time now) override {
    if (klass == ServiceClass::kPrimary) {
      QOS_CHECK(len_q1_ > 0);
      --len_q1_;
      if (q1_occ_ != nullptr) q1_occ_->update(now, len_q1_);
    }
  }

  /// Pending primary requests (queued + in service).
  std::int64_t len_q1() const { return len_q1_; }
  std::int64_t max_q1() const { return admission_.max_q1(); }
  std::size_t q1_queued() const { return q1_.size(); }
  std::size_t q2_queued() const { return q2_.size(); }

 protected:
  /// Hook invoked after RTT classifies an arrival (e.g. to tag it in a fair
  /// scheduler).  Default: nothing.
  virtual void on_classified(const Request&, ServiceClass, Time) {}

  std::optional<Dispatch> pop_q1(Time) {
    if (q1_.empty()) return std::nullopt;
    Dispatch d{q1_.front(), ServiceClass::kPrimary};
    q1_.pop_front();
    return d;
  }

  std::optional<Dispatch> pop_q2(Time now) {
    if (q2_.empty()) return std::nullopt;
    Dispatch d{q2_.front(), ServiceClass::kOverflow};
    q2_.pop_front();
    if (q2_occ_ != nullptr)
      q2_occ_->update(now, static_cast<std::int64_t>(q2_.size()));
    return d;
  }

  const Probe& probe() const { return probe_; }

 private:
  RttAdmission admission_;
  RingBuffer<Request> q1_;
  RingBuffer<Request> q2_;
  std::int64_t len_q1_ = 0;

  Probe probe_;
  Counter* admitted_ = nullptr;
  Counter* rejected_ = nullptr;
  OccupancySeries* q1_occ_ = nullptr;
  OccupancySeries* q2_occ_ = nullptr;
};

}  // namespace qos
