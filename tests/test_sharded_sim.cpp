// Sharded simulation determinism: shard count and lookahead are pure
// parallelism/throughput knobs — every configuration must produce the
// byte-identical canonical completion sequence, which itself must equal the
// per-tenant serial reference merged by (finish, seq, server).
#include "stream/sharded.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/shaper.h"
#include "sim/engine.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "stream/gen_stream.h"
#include "stream/stream.h"
#include "trace/presets.h"

namespace qos {
namespace {

using stream::RequestStream;
using stream::ShardedOptions;
using stream::TenantSim;

constexpr Time kRun = 60 * kUsPerSec;

// Three dissimilar tenants: each preset behind a different policy, so the
// sharding layer is exercised against single- and dual-server lanes and
// schedulers with real internal state.
struct TenantSpec {
  Workload workload;
  Policy policy;
  double cmin;
};

const TenantSpec kTenants[] = {
    {Workload::kWebSearch, Policy::kMiser, 700},
    {Workload::kFinTrans, Policy::kSplit, 400},
    {Workload::kOpenMail, Policy::kFairQueue, 1'200},
};

// Mirrors shape_and_run's server construction: Split gets a dedicated
// primary at Cmin plus an overflow server at dC; shared-server policies get
// one server at Cmin + dC.
TenantSim build_tenant(std::uint32_t client) {
  const TenantSpec& spec = kTenants[client];
  ShapingConfig config;
  config.policy = spec.policy;
  TenantSim sim;
  sim.scheduler = make_scheduler(config, spec.cmin);
  const double headroom = config.resolved_headroom_iops();
  if (sim.scheduler->server_count() == 2) {
    sim.servers.push_back(std::make_unique<ConstantRateServer>(spec.cmin));
    sim.servers.push_back(std::make_unique<ConstantRateServer>(headroom));
  } else {
    sim.servers.push_back(
        std::make_unique<ConstantRateServer>(spec.cmin + headroom));
  }
  return sim;
}

std::unique_ptr<RequestStream> tenant_stream() {
  std::vector<std::unique_ptr<RequestStream>> sources;
  for (const TenantSpec& t : kTenants)
    sources.push_back(stream::make_preset_stream(t.workload, kRun));
  return std::make_unique<stream::MergedStream>(std::move(sources));
}

bool merged_before(const CompletionRecord& a, const CompletionRecord& b) {
  if (a.finish != b.finish) return a.finish < b.finish;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.server < b.server;
}

// The serial reference: simulate each tenant's slice of the merged trace on
// its own lane, concatenate, sort canonically.
SimResult reference_result() {
  std::vector<Trace> parts;
  for (const TenantSpec& t : kTenants)
    parts.push_back(preset_trace(t.workload, kRun));
  Trace merged = Trace::merge(parts);

  SimResult all;
  for (std::uint32_t c = 0; c < std::size(kTenants); ++c) {
    std::vector<Request> mine;
    for (const Request& r : merged)
      if (r.client == c) mine.push_back(r);  // global seq kept on purpose
    TenantSim sim = build_tenant(c);
    std::vector<Server*> servers;
    for (auto& s : sim.servers) servers.push_back(s.get());

    // Drive the trace slice directly — the slice keeps global seq numbers,
    // so Trace (which renumbers) is not usable here.
    SimEngine engine(*sim.scheduler, servers, nullptr);
    auto collect = [&all](const CompletionRecord& r) {
      all.completions.push_back(r);
    };
    for (const Request& r : mine) {
      engine.advance_until(r.arrival, collect);
      engine.push_arrival(r);
    }
    engine.advance_until(kTimeMax, collect);
  }
  std::stable_sort(all.completions.begin(), all.completions.end(),
                   merged_before);
  return all;
}

TEST(ShardDeterminism, MatchesSerialReferencePerTenant) {
  SimResult expected = reference_result();
  auto s = tenant_stream();
  SimResult got = simulate_sharded(*s, build_tenant, ShardedOptions{});
  ASSERT_EQ(got.completions.size(), expected.completions.size());
  for (std::size_t i = 0; i < got.completions.size(); ++i)
    ASSERT_EQ(got.completions[i], expected.completions[i]) << "at " << i;
}

TEST(ShardDeterminism, IdenticalAcrossShardCounts) {
  auto s1 = tenant_stream();
  SimResult ref = simulate_sharded(*s1, build_tenant,
                                   ShardedOptions{.shards = 1});
  for (int shards : {2, 8}) {
    auto s = tenant_stream();
    SimResult got = simulate_sharded(*s, build_tenant,
                                     ShardedOptions{.shards = shards});
    SCOPED_TRACE(shards);
    ASSERT_EQ(got.completions.size(), ref.completions.size());
    for (std::size_t i = 0; i < got.completions.size(); ++i)
      ASSERT_EQ(got.completions[i], ref.completions[i]) << "at " << i;
  }
}

TEST(ShardDeterminism, IdenticalAcrossLookahead) {
  auto s1 = tenant_stream();
  SimResult ref = simulate_sharded(*s1, build_tenant,
                                   ShardedOptions{.shards = 2});
  for (Time lookahead : {Time{1'000}, Time{100'000}, kUsPerSec}) {
    auto s = tenant_stream();
    SimResult got = simulate_sharded(
        *s, build_tenant,
        ShardedOptions{.shards = 2, .lookahead = lookahead});
    SCOPED_TRACE(lookahead);
    ASSERT_EQ(got.completions.size(), ref.completions.size());
    for (std::size_t i = 0; i < got.completions.size(); ++i)
      ASSERT_EQ(got.completions[i], ref.completions[i]) << "at " << i;
  }
}

TEST(ShardStats, CountsAndInvariants) {
  auto s = tenant_stream();
  std::uint64_t emitted = 0;
  Time last_finish = 0;
  auto stats = simulate_sharded(*s, build_tenant, ShardedOptions{.shards = 4},
                                [&](const CompletionRecord& r) {
                                  ++emitted;
                                  EXPECT_GE(r.finish, last_finish);
                                  last_finish = r.finish;
                                });
  EXPECT_EQ(stats.tenants, std::size(kTenants));
  EXPECT_EQ(stats.completions, emitted);
  EXPECT_EQ(stats.completions, stats.requests);  // none of these fan out
  EXPECT_EQ(stats.makespan, last_finish);
  EXPECT_GT(stats.windows, 0u);
  EXPECT_EQ(stats.events(),
            stats.requests + stats.dispatches + stats.completions);

  std::vector<Trace> parts;
  for (const TenantSpec& t : kTenants)
    parts.push_back(preset_trace(t.workload, kRun));
  EXPECT_EQ(stats.requests, Trace::merge(parts).size());
}

TEST(ShardStats, SingleTenantDegeneratesToStreamedRun) {
  // One tenant, one shard: sharding reduces to plain streaming; the
  // canonical merge must then be simulate()'s retire order untouched.
  Trace trace = preset_trace(Workload::kFinTrans, kRun);
  ShapingConfig config;
  auto sched = make_scheduler(config, 500);
  ConstantRateServer server(500 + config.resolved_headroom_iops());
  SimResult expected = simulate(trace, *sched, server);

  auto factory = [&config](std::uint32_t) {
    TenantSim sim;
    sim.scheduler = make_scheduler(config, 500);
    sim.servers.push_back(std::make_unique<ConstantRateServer>(
        500 + config.resolved_headroom_iops()));
    return sim;
  };
  std::vector<std::unique_ptr<RequestStream>> sources;
  sources.push_back(stream::make_preset_stream(Workload::kFinTrans, kRun));
  stream::MergedStream s(std::move(sources));
  SimResult got = simulate_sharded(s, factory, ShardedOptions{});

  std::stable_sort(expected.completions.begin(), expected.completions.end(),
                   merged_before);
  ASSERT_EQ(got.completions.size(), expected.completions.size());
  for (std::size_t i = 0; i < got.completions.size(); ++i)
    ASSERT_EQ(got.completions[i], expected.completions[i]) << "at " << i;
}

}  // namespace
}  // namespace qos
