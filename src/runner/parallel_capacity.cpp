#include "runner/parallel_capacity.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace qos {

namespace {

Digest capacity_key(const Digest& trace_digest, double fraction, Time delta) {
  ContentHasher h;
  h.str("qos-capacity-v1");
  h.u64(trace_digest.hi).u64(trace_digest.lo);
  h.f64(fraction);
  h.i64(delta);
  return h.digest();
}

std::string encode_result(const CapacityResult& r) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%016llx %016llx %d",
                static_cast<unsigned long long>(
                    std::bit_cast<std::uint64_t>(r.cmin_iops)),
                static_cast<unsigned long long>(
                    std::bit_cast<std::uint64_t>(r.achieved_fraction)),
                r.probes);
  return buf;
}

std::optional<CapacityResult> decode_result(const std::string& bytes) {
  std::istringstream in(bytes);
  std::string a, b;
  CapacityResult r;
  if (!(in >> a >> b >> r.probes) || a.size() != 16 || b.size() != 16)
    return std::nullopt;
  std::uint64_t bits = 0;
  if (std::from_chars(a.data(), a.data() + 16, bits, 16).ec != std::errc{})
    return std::nullopt;
  r.cmin_iops = std::bit_cast<double>(bits);
  if (std::from_chars(b.data(), b.data() + 16, bits, 16).ec != std::errc{})
    return std::nullopt;
  r.achieved_fraction = std::bit_cast<double>(bits);
  return r;
}

}  // namespace

CapacityResult min_capacity_cached(const Trace& trace, double fraction,
                                   Time delta, ResultCache* cache,
                                   const Digest* trace_digest,
                                   CapacityHint hint) {
  if (cache == nullptr) return min_capacity(trace, fraction, delta, hint);
  const Digest td = trace_digest ? *trace_digest : hash_trace(trace);
  const Digest key = capacity_key(td, fraction, delta);
  if (auto bytes = cache->get(key))
    if (auto r = decode_result(*bytes)) return *r;
  const CapacityResult r = min_capacity(trace, fraction, delta, hint);
  cache->put(key, encode_result(r));
  return r;
}

std::vector<CapacityPoint> capacity_profile_parallel(
    ThreadPool& pool, const Trace& trace, Time delta,
    std::vector<double> fractions, ResultCache* cache) {
  std::sort(fractions.begin(), fractions.end());
  const std::size_t n = fractions.size();
  if (n == 0) return {};
  const Digest td = cache ? hash_trace(trace) : Digest{};
  const Digest* tdp = cache ? &td : nullptr;

  // Endpoints first, concurrently: they bracket every middle fraction.
  std::vector<CapacityPoint> out(n);
  std::int64_t lo_cmin = 0, hi_cmin = 0;
  pool.parallel_for(n == 1 ? 1 : 2, [&](std::size_t i) {
    const std::size_t idx = i == 0 ? 0 : n - 1;
    const CapacityResult r =
        min_capacity_cached(trace, fractions[idx], delta, cache, tdp);
    out[idx] = {fractions[idx], r.cmin_iops};
    (i == 0 ? lo_cmin : hi_cmin) = static_cast<std::int64_t>(r.cmin_iops);
  });
  if (n <= 2) return out;

  // Middles: Cmin is monotone in f, so Cmin(f_lo) - 1 is infeasible and
  // Cmin(f_hi) is feasible for every f in between — a closed bracket, no
  // exponential probing, and every search independent of the others.
  CapacityHint hint;
  hint.infeasible_below = std::max<std::int64_t>(lo_cmin - 1, 0);
  hint.feasible_at = hi_cmin > hint.infeasible_below ? hi_cmin : 0;
  pool.parallel_for(n - 2, [&](std::size_t i) {
    const std::size_t idx = i + 1;
    const CapacityResult r =
        min_capacity_cached(trace, fractions[idx], delta, cache, tdp, hint);
    out[idx] = {fractions[idx], r.cmin_iops};
  });
  return out;
}

ConsolidationReport consolidate_parallel(ThreadPool& pool,
                                         std::span<const Trace> clients,
                                         double fraction, Time delta,
                                         ResultCache* cache) {
  const Trace merged = Trace::merge(clients);
  const std::size_t n = clients.size();
  // Job i < n: client i's Cmin; job n: the merged workload's.
  std::vector<double> cmin =
      pool.parallel_map(n + 1, [&](std::size_t i) -> double {
        const Trace& t = i < n ? clients[i] : merged;
        return min_capacity_cached(t, fraction, delta, cache).cmin_iops;
      });
  const double actual = cmin.back();
  cmin.pop_back();
  return assemble_consolidation(std::move(cmin), actual);
}

std::vector<TenantSpec> plan_tenant_specs_parallel(
    ThreadPool& pool, std::span<const Trace> tenants, double fraction,
    Time delta, ResultCache* cache) {
  return pool.parallel_map(tenants.size(), [&](std::size_t i) {
    return planned_tenant_spec(
        min_capacity_cached(tenants[i], fraction, delta, cache).cmin_iops,
        delta, tenants.size());
  });
}

}  // namespace qos
