// Reproduces Figure 6: performance comparison of FCFS, Split, FairQueue and
// Miser on the WebSearch workload at equal total capacity Cmin + dC.
//
//   (a) histogram buckets (<=50 / <=100 / <=500 / <=1000 / >1000 ms) for the
//       target (90%, 50 ms);
//   (b) the same for (95%, 50 ms);
//   (c) overflow-class (Q2) average and maximum response time of Miser
//       normalized to FairQueue (paper: ~0.85-0.90).
//
// Execution engine: the two Cmin searches run concurrently, then the full
// figure is one 8-cell sweep (fraction x policy) on the runner; every panel
// is printed from the ordered rows, so stdout is identical at any --threads
// value and a warm cache replays the figure without simulating.
#include <cstdio>

#include "core/capacity.h"
#include "core/shaper.h"
#include "runner/bench_io.h"
#include "runner/parallel_capacity.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

constexpr Policy kPolicies[] = {Policy::kFcfs, Policy::kSplit,
                                Policy::kFairQueue, Policy::kMiser};
constexpr double kFractions[] = {0.90, 0.95};

void print_panel(double fraction, Time delta, double cmin,
                 std::span<const SweepRow> rows) {
  const double dc = overflow_headroom_iops(delta);
  std::printf("-- Target: (%.0f%%, %.0f ms), capacity %.0f+%.0f IOPS --\n",
              100 * fraction, to_ms(delta), cmin, dc);
  AsciiTable table;
  table.add("Scheduler", "<=50ms", "<=100ms", "<=500ms", "<=1000ms",
            ">1000ms", "max (ms)");
  for (const SweepRow& row : rows) {
    const ResponseStats::Buckets& b = row.buckets;
    table.add(row.label, format_double(100 * b.le_50, 1) + "%",
              format_double(100 * b.le_100, 1) + "%",
              format_double(100 * b.le_500, 1) + "%",
              format_double(100 * b.le_1000, 1) + "%",
              format_double(100 * b.gt_1000, 1) + "%",
              format_double(to_ms(row.report.all.max), 0));
  }
  std::printf("%s\n", table.to_string().c_str());
}

void print_q2_comparison(std::span<const SweepRow> fq_rows,
                         std::span<const SweepRow> miser_rows) {
  std::printf(
      "-- Figure 6(c): Q2 performance, Miser normalized to FairQueue --\n");
  AsciiTable table;
  table.add("Target %", "FQ avg (ms)", "Miser avg (ms)", "avg ratio",
            "FQ max (ms)", "Miser max (ms)", "max ratio");
  for (std::size_t i = 0; i < fq_rows.size(); ++i) {
    const ClassReport& fq = fq_rows[i].report.overflow;
    const ClassReport& miser = miser_rows[i].report.overflow;
    if (fq.count == 0 || miser.count == 0) {
      std::printf("  (no overflow requests at fraction %.2f)\n",
                  fq_rows[i].fraction);
      continue;
    }
    table.add(format_double(100 * fq_rows[i].fraction, 0),
              format_double(fq.mean_us / 1e3, 1),
              format_double(miser.mean_us / 1e3, 1),
              format_double(miser.mean_us / fq.mean_us, 2),
              format_double(to_ms(fq.max), 0),
              format_double(to_ms(miser.max), 0),
              format_double(static_cast<double>(miser.max) /
                                static_cast<double>(fq.max),
                            2));
  }
  std::printf("%s", table.to_string().c_str());
}

void run(const BenchOptions& options) {
  const double t0 = bench_now_seconds();
  std::printf(
      "Figure 6: FCFS vs Split vs FairQueue vs Miser (WebSearch)\n\n");
  const Trace trace = preset_trace(Workload::kWebSearch);
  const Time delta = from_ms(50);

  auto cache = options.make_cache();
  SweepRunner runner(options.sweep_options(cache.get()));
  const Digest digest =
      cache ? hash_trace(trace) : Digest{};
  const Digest* digest_ptr = cache ? &digest : nullptr;

  // Both panels use the same delta at their own fraction: two independent
  // Cmin searches, fanned over the runner's pool.
  const std::vector<CapacityResult> caps = runner.pool().parallel_map(
      std::size(kFractions), [&](std::size_t i) {
        return min_capacity_cached(trace, kFractions[i], delta, cache.get(),
                                   digest_ptr);
      });

  // One cell per (fraction, policy), fraction-major so rows slice cleanly
  // into the two panels.
  std::vector<SweepCell> cells;
  for (std::size_t f = 0; f < std::size(kFractions); ++f) {
    for (Policy p : kPolicies) {
      SweepCell cell;
      cell.trace_name = "WebSearch";
      cell.trace = &trace;
      cell.shaping.policy = p;
      cell.shaping.fraction = kFractions[f];
      cell.shaping.delta = delta;
      cell.shaping.capacity_override_iops = caps[f].cmin_iops;
      cells.push_back(std::move(cell));
    }
  }
  const std::vector<SweepRow> rows = runner.run_cells(cells);
  const std::size_t np = std::size(kPolicies);

  print_panel(kFractions[0], delta, caps[0].cmin_iops,
              std::span(rows).subspan(0, np));
  print_panel(kFractions[1], delta, caps[1].cmin_iops,
              std::span(rows).subspan(np, np));

  // Panel (c) reuses the FairQueue and Miser rows from the panels above —
  // kPolicies order puts FairQueue at offset 2 and Miser at offset 3.
  const std::vector<SweepRow> fq = {rows[2], rows[np + 2]};
  const std::vector<SweepRow> miser = {rows[3], rows[np + 3]};
  print_q2_comparison(fq, miser);

  write_bench_json(options, runner, rows.size(),
                   bench_now_seconds() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  run(parse_bench_args(argc, argv, "fig6_schedulers"));
  return 0;
}
