file(REMOVE_RECURSE
  "CMakeFiles/test_pclock.dir/test_pclock.cpp.o"
  "CMakeFiles/test_pclock.dir/test_pclock.cpp.o.d"
  "test_pclock"
  "test_pclock.pdb"
  "test_pclock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
