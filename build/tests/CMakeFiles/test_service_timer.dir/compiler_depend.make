# Empty compiler generated dependencies file for test_service_timer.
# This may be replaced when dependencies are built.
