#include "core/capacity.h"

#include <algorithm>
#include <cmath>

#include "core/rtt.h"
#include "util/check.h"

namespace qos {

double fraction_guaranteed(const Trace& trace, double capacity_iops,
                           Time delta) {
  return rtt_decompose(trace, capacity_iops, delta).admitted_fraction();
}

double overflow_headroom_iops(Time delta) {
  QOS_EXPECTS(delta > 0);
  return 1e6 / static_cast<double>(delta);
}

std::vector<CapacityPoint> capacity_profile(const Trace& trace, Time delta,
                                            std::vector<double> fractions) {
  std::sort(fractions.begin(), fractions.end());
  std::vector<CapacityPoint> out;
  out.reserve(fractions.size());
  for (double f : fractions)
    out.push_back({f, min_capacity(trace, f, delta).cmin_iops});
  return out;
}

CapacityResult min_capacity(const Trace& trace, double fraction, Time delta) {
  QOS_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  QOS_EXPECTS(delta > 0);
  CapacityResult result;
  if (trace.empty()) {
    result.cmin_iops = 0;
    result.achieved_fraction = 1.0;
    return result;
  }

  auto ok = [&](std::int64_t c) {
    ++result.probes;
    const double f = fraction_guaranteed(trace, static_cast<double>(c), delta);
    // Exact comparison is intended: fraction is a ratio of integers and the
    // caller passes targets like 0.90 that the ratio must meet or exceed.
    return f >= fraction;
  };

  // Exponential doubling to bracket, then binary search.
  std::int64_t hi = 1;
  while (!ok(hi)) {
    hi *= 2;
    QOS_CHECK(hi < (1LL << 40));  // capacity explosion => logic error
  }
  std::int64_t lo = hi / 2;  // lo is infeasible (or 0)
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (ok(mid))
      hi = mid;
    else
      lo = mid;
  }
  result.cmin_iops = static_cast<double>(hi);
  result.achieved_fraction =
      fraction_guaranteed(trace, result.cmin_iops, delta);
  return result;
}

}  // namespace qos
