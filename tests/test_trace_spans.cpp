// Request-level tracing: span assembly from synthetic event streams,
// lifecycle ordering invariants end-to-end, exporter round-trips, deadline
// miss attribution, and the SweepRunner determinism contract for traces
// (identical across thread counts and cache temperature).
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/shaper.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "obs/trace_analysis.h"
#include "obs/trace_export.h"
#include "runner/result_cache.h"
#include "runner/sweep.h"
#include "trace/presets.h"

namespace qos {
namespace {

// Feed one full synthetic lifecycle for `seq` into the tracer.
void feed_lifecycle(Tracer& t, std::uint64_t seq, Time base,
                    ServiceClass klass = ServiceClass::kPrimary) {
  t.on_event({.time = base, .seq = seq, .kind = EventKind::kArrival});
  if (klass == ServiceClass::kPrimary) {
    t.on_event({.time = base + 1,
                .seq = seq,
                .a = 3,
                .b = 8,
                .kind = EventKind::kAdmit,
                .klass = ServiceClass::kPrimary});
  } else {
    t.on_event({.time = base + 1,
                .seq = seq,
                .a = 2,
                .kind = EventKind::kReject,
                .klass = ServiceClass::kOverflow});
  }
  t.on_event({.time = base + 10,
              .seq = seq,
              .kind = EventKind::kDispatch,
              .klass = klass,
              .server = 1});
  t.on_event({.time = base + 20,
              .seq = seq,
              .kind = EventKind::kCompletion,
              .klass = klass});
}

TEST(TracerSpans, AssemblesAdmittedLifecycle) {
  Tracer tracer;
  feed_lifecycle(tracer, 7, 100);
  const TraceData data = tracer.data();
  ASSERT_EQ(data.spans.size(), 1u);
  const RequestSpan& s = data.spans[0];
  EXPECT_EQ(s.seq, 7u);
  EXPECT_EQ(s.arrival, 100);
  EXPECT_EQ(s.decision, 101);
  EXPECT_EQ(s.enqueue, 101);
  EXPECT_EQ(s.service_start, 110);
  EXPECT_EQ(s.completion, 120);
  EXPECT_EQ(s.depth_at_decision, 3);
  EXPECT_EQ(s.max_q1_at_decision, 8);
  EXPECT_EQ(s.admitted, 1);
  EXPECT_EQ(s.klass, ServiceClass::kPrimary);
  EXPECT_EQ(s.server, 1);
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.response_us(), 20);
  EXPECT_EQ(s.wait_us(), 9);
  EXPECT_EQ(tracer.in_flight(), 0u);
}

TEST(TracerSpans, AssemblesRejectedLifecycle) {
  Tracer tracer;
  feed_lifecycle(tracer, 3, 0, ServiceClass::kOverflow);
  const TraceData data = tracer.data();
  ASSERT_EQ(data.spans.size(), 1u);
  EXPECT_EQ(data.spans[0].admitted, 0);
  EXPECT_EQ(data.spans[0].klass, ServiceClass::kOverflow);
  EXPECT_EQ(data.spans[0].depth_at_decision, 2);
  EXPECT_EQ(data.spans[0].max_q1_at_decision, -1);
}

TEST(TracerSpans, DemoteMarksSpan) {
  Tracer tracer;
  tracer.on_event({.time = 0, .seq = 1, .kind = EventKind::kArrival});
  tracer.on_event({.time = 1,
                   .seq = 1,
                   .a = 4,
                   .b = 9,
                   .kind = EventKind::kDemote,
                   .klass = ServiceClass::kOverflow});
  tracer.on_event({.time = 5,
                   .seq = 1,
                   .kind = EventKind::kDispatch,
                   .klass = ServiceClass::kOverflow});
  tracer.on_event({.time = 9,
                   .seq = 1,
                   .kind = EventKind::kCompletion,
                   .klass = ServiceClass::kOverflow});
  const TraceData data = tracer.data();
  ASSERT_EQ(data.spans.size(), 1u);
  EXPECT_EQ(data.spans[0].demoted, 1);
  EXPECT_EQ(data.spans[0].admitted, 0);
  EXPECT_EQ(data.spans[0].max_q1_at_decision, 4);  // the degraded bound
}

TEST(TracerSpans, SlowServiceRecordsInflation) {
  Tracer tracer;
  tracer.on_event({.time = 0, .seq = 2, .kind = EventKind::kArrival});
  tracer.on_event({.time = 1,
                   .seq = 2,
                   .a = 1000,
                   .b = 1800,
                   .kind = EventKind::kSlowService});
  tracer.on_event({.time = 3, .seq = 2, .kind = EventKind::kCompletion});
  const TraceData data = tracer.data();
  ASSERT_EQ(data.spans.size(), 1u);
  EXPECT_EQ(data.spans[0].inflation_us, 800);
}

TEST(TracerSpans, SamplingKeepsEveryNth) {
  Tracer tracer({.sample_every = 3});
  for (std::uint64_t seq = 0; seq < 9; ++seq)
    feed_lifecycle(tracer, seq, static_cast<Time>(seq) * 100);
  const TraceData data = tracer.data();
  ASSERT_EQ(data.spans.size(), 3u);
  EXPECT_EQ(data.spans[0].seq, 0u);
  EXPECT_EQ(data.spans[1].seq, 3u);
  EXPECT_EQ(data.spans[2].seq, 6u);
  EXPECT_EQ(data.sample_every, 3u);
  EXPECT_EQ(tracer.observed(), 3u);
}

TEST(TracerSpans, RingBufferKeepsMostRecentAndCountsDrops) {
  Tracer tracer({.max_spans = 4});
  for (std::uint64_t seq = 0; seq < 10; ++seq)
    feed_lifecycle(tracer, seq, static_cast<Time>(seq) * 100);
  const TraceData data = tracer.data();
  ASSERT_EQ(data.spans.size(), 4u);
  EXPECT_EQ(data.dropped, 6u);
  // Oldest retained span first.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(data.spans[i].seq, 6 + i);
}

TEST(TracerSpans, SlackSeriesIsExactUnderSampling) {
  Tracer tracer({.sample_every = 100});
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    tracer.on_event({.time = static_cast<Time>(seq),
                     .seq = seq,
                     .a = static_cast<std::int64_t>(seq + 1),
                     .kind = EventKind::kSlackDispatch});
  }
  const TraceData data = tracer.data();
  ASSERT_EQ(data.slack.size(), 5u);  // every dispatch, despite sampling
  EXPECT_EQ(data.slack[0].slack, 1);
  EXPECT_EQ(data.slack[4].slack, 5);
}

TEST(TracerSpans, FaultWindowsDeduped) {
  Tracer tracer;
  const Event begin{.time = 50,
                    .seq = 0,
                    .a = 1,
                    .b = 500'000,
                    .c = 90,
                    .kind = EventKind::kFaultBegin};
  tracer.on_event(begin);
  tracer.on_event(begin);  // second server announcing the same window
  const TraceData data = tracer.data();
  ASSERT_EQ(data.faults.size(), 1u);
  EXPECT_EQ(data.faults[0].begin, 50);
  EXPECT_EQ(data.faults[0].end, 90);
  EXPECT_EQ(data.faults[0].kind, 1);
  EXPECT_EQ(data.faults[0].severity_ppm, 500'000);
}

TEST(TracerSpans, DownstreamReceivesEveryEventDespiteSampling) {
  Tracer tracer({.sample_every = 2});
  CountingSink downstream;
  tracer.set_downstream(&downstream);
  for (std::uint64_t seq = 0; seq < 4; ++seq)
    feed_lifecycle(tracer, seq, static_cast<Time>(seq) * 100);
  EXPECT_EQ(downstream.total(), 16u);  // 4 events x 4 requests, unsampled
  EXPECT_EQ(downstream.count(EventKind::kArrival), 4u);
  EXPECT_EQ(tracer.data().spans.size(), 2u);
}

TEST(TracerSpans, ClearResetsCollectedStateButKeepsAnnotations) {
  Tracer tracer;
  tracer.annotate("label", "trace", from_ms(10));
  feed_lifecycle(tracer, 0, 0);
  tracer.clear();
  const TraceData data = tracer.data();
  EXPECT_TRUE(data.spans.empty());
  EXPECT_EQ(data.observed, 0u);
  EXPECT_EQ(data.label, "label");
  EXPECT_EQ(data.delta, from_ms(10));
}

// ---- lifecycle ordering invariants, end to end ----------------------------

class TraceLifecycleTest : public ::testing::TestWithParam<Policy> {};

INSTANTIATE_TEST_SUITE_P(AllPolicies, TraceLifecycleTest,
                         ::testing::Values(Policy::kFcfs, Policy::kSplit,
                                           Policy::kFairQueue, Policy::kMiser),
                         [](const auto& info) {
                           return policy_name(info.param);
                         });

TEST_P(TraceLifecycleTest, SpanOrderingInvariantsHold) {
  const Trace trace = preset_trace(Workload::kWebSearch, 30 * kUsPerSec);
  Tracer tracer;
  ShapingConfig config;
  config.policy = GetParam();
  config.fraction = 0.90;
  config.delta = from_ms(10);
  config.tracer = &tracer;
  const ShapingOutcome out = shape_and_run(trace, config);

  const TraceData data = tracer.data();
  ASSERT_EQ(data.spans.size(), trace.size());
  EXPECT_EQ(tracer.in_flight(), 0u);
  for (const RequestSpan& s : data.spans) {
    ASSERT_TRUE(s.complete()) << s.seq;
    EXPECT_LE(s.arrival, s.enqueue) << s.seq;
    EXPECT_LE(s.enqueue, s.service_start) << s.seq;
    EXPECT_LE(s.service_start, s.completion) << s.seq;
  }

  // Spans reconcile with the simulator's own completion records.
  ASSERT_EQ(out.sim.completions.size(), data.spans.size());
  std::vector<RequestSpan> by_seq = data.spans;
  std::sort(by_seq.begin(), by_seq.end(),
            [](const RequestSpan& a, const RequestSpan& b) {
              return a.seq < b.seq;
            });
  std::vector<CompletionRecord> recs = out.sim.completions;
  std::sort(recs.begin(), recs.end(),
            [](const CompletionRecord& a, const CompletionRecord& b) {
              return a.seq < b.seq;
            });
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(by_seq[i].seq, recs[i].seq);
    EXPECT_EQ(by_seq[i].arrival, recs[i].arrival);
    EXPECT_EQ(by_seq[i].service_start, recs[i].start);
    EXPECT_EQ(by_seq[i].completion, recs[i].finish);
    EXPECT_EQ(by_seq[i].klass, recs[i].klass);
  }
}

TEST(TraceLifecycle, FcfsSpansAreUnboundedAdmits) {
  const Trace trace = preset_trace(Workload::kWebSearch, 10 * kUsPerSec);
  Tracer tracer;
  ShapingConfig config;
  config.policy = Policy::kFcfs;
  config.delta = from_ms(10);
  config.tracer = &tracer;
  shape_and_run(trace, config);
  const TraceData data = tracer.data();
  ASSERT_FALSE(data.spans.empty());
  for (const RequestSpan& s : data.spans) {
    EXPECT_EQ(s.admitted, 1);
    EXPECT_EQ(s.max_q1_at_decision, 0);  // 0 = unbounded, no RTT bound
    EXPECT_EQ(s.klass, ServiceClass::kPrimary);
  }
}

TEST(TraceLifecycle, TracerChainsWithExplicitSink) {
  const Trace trace = preset_trace(Workload::kWebSearch, 10 * kUsPerSec);
  Tracer tracer;
  CountingSink sink;
  ShapingConfig config;
  config.policy = Policy::kMiser;
  config.delta = from_ms(10);
  config.tracer = &tracer;
  config.sink = &sink;
  shape_and_run(trace, config);
  // The explicit sink still sees the whole stream, through the tracer.
  EXPECT_EQ(sink.count(EventKind::kArrival), trace.size());
  EXPECT_EQ(sink.count(EventKind::kCompletion), trace.size());
  EXPECT_EQ(tracer.data().spans.size(), trace.size());
}

// ---- exporters ------------------------------------------------------------

TraceData sample_trace_data() {
  Tracer tracer;
  tracer.annotate("Miser", "WebSearch", from_ms(10));
  feed_lifecycle(tracer, 0, 100);
  feed_lifecycle(tracer, 1, 200, ServiceClass::kOverflow);
  tracer.on_event({.time = 300,
                   .seq = 0,
                   .a = 2,
                   .b = 250'000,
                   .c = 400,
                   .kind = EventKind::kFaultBegin});
  tracer.on_event({.time = 310,
                   .seq = 5,
                   .a = 2,
                   .b = 1,
                   .kind = EventKind::kSlackDispatch});
  return tracer.data();
}

TEST(TraceExport, BinaryRoundTripIsLossless) {
  const TraceData a = sample_trace_data();
  TraceData b = sample_trace_data();
  b.label = "FairQueue";
  b.spans[0].inflation_us = 77;

  const std::vector<TraceData> traces = {a, b};
  const std::string bytes = serialize_traces(traces);
  const auto back = deserialize_traces(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ((*back)[i].label, traces[i].label);
    EXPECT_EQ((*back)[i].trace_name, traces[i].trace_name);
    EXPECT_EQ((*back)[i].delta, traces[i].delta);
    EXPECT_EQ((*back)[i].sample_every, traces[i].sample_every);
    EXPECT_EQ((*back)[i].observed, traces[i].observed);
    EXPECT_EQ((*back)[i].dropped, traces[i].dropped);
    EXPECT_EQ((*back)[i].spans, traces[i].spans);
    EXPECT_EQ((*back)[i].faults, traces[i].faults);
    EXPECT_EQ((*back)[i].slack, traces[i].slack);
  }
}

TEST(TraceExport, CorruptionAndTruncationRejected) {
  const std::string bytes = serialize_trace(sample_trace_data());
  EXPECT_TRUE(deserialize_traces(bytes).has_value());

  for (std::size_t pos : {std::size_t{0}, std::size_t{10}, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5a);
    EXPECT_FALSE(deserialize_traces(corrupt).has_value()) << pos;
  }
  EXPECT_FALSE(deserialize_traces(bytes.substr(0, bytes.size() - 3)));
  EXPECT_FALSE(deserialize_traces(""));
  EXPECT_FALSE(deserialize_traces("not a trace container at all"));
  EXPECT_FALSE(deserialize_traces(bytes + "trailing garbage"));
}

TEST(TraceExport, PerfettoJsonHasTracksAndSlices) {
  const std::string json = perfetto_trace_json(sample_trace_data());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("Miser queues"), std::string::npos);
  EXPECT_NE(json.find("Miser servers"), std::string::npos);
  EXPECT_NE(json.find("Q1 (primary)"), std::string::npos);
  EXPECT_NE(json.find("Q2 (overflow)"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);  // queue wait
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // service slice
  EXPECT_NE(json.find("Miser faults"), std::string::npos);
  EXPECT_NE(json.find("displayTimeUnit"), std::string::npos);
}

// ---- miss attribution -----------------------------------------------------

RequestSpan make_span(std::uint64_t seq, Time arrival, Time completion,
                      bool admitted) {
  RequestSpan s;
  s.seq = seq;
  s.arrival = arrival;
  s.decision = s.enqueue = arrival + 1;
  s.service_start = completion - 10;
  s.completion = completion;
  s.admitted = admitted ? 1 : 0;
  s.klass = admitted ? ServiceClass::kPrimary : ServiceClass::kOverflow;
  return s;
}

TEST(MissAttribution, TaxonomyCoversAllFourCauses) {
  TraceData trace;
  trace.delta = 100;
  trace.faults.push_back({1000, 2000, 0, 500'000});

  // Admitted and missed, no fault: capacity shortfall.
  const RequestSpan capacity = make_span(0, 0, 500, true);
  EXPECT_EQ(attribute_miss(capacity, trace, 100),
            MissCause::kCapacityShortfall);

  // Overflow whose Q2 wait alone exceeds delta: Q2 starvation.
  RequestSpan starved = make_span(1, 0, 500, false);
  starved.service_start = 490;  // waited 489 > delta in Q2
  EXPECT_EQ(attribute_miss(starved, trace, 100), MissCause::kQ2Starvation);

  // Overflow served promptly once dispatched: the admission burst did it.
  RequestSpan burst = make_span(2, 0, 140, false);
  burst.service_start = 50;  // waited 49 <= delta
  EXPECT_EQ(attribute_miss(burst, trace, 100), MissCause::kAdmissionBurst);

  // Any fault evidence wins: overlap, inflation, or demotion.
  const RequestSpan overlap = make_span(3, 900, 1100, true);
  EXPECT_EQ(attribute_miss(overlap, trace, 100), MissCause::kFaultWindow);
  RequestSpan inflated = make_span(4, 0, 500, true);
  inflated.inflation_us = 300;
  EXPECT_EQ(attribute_miss(inflated, trace, 100), MissCause::kFaultWindow);
  RequestSpan demoted = make_span(5, 0, 500, false);
  demoted.demoted = 1;
  EXPECT_EQ(attribute_miss(demoted, trace, 100), MissCause::kFaultWindow);
}

TEST(MissAttribution, EveryMissGetsExactlyOneCause) {
  const Trace trace = preset_trace(Workload::kWebSearch, 30 * kUsPerSec);
  Tracer tracer;
  ShapingConfig config;
  config.policy = Policy::kFcfs;
  config.fraction = 0.90;
  config.delta = from_ms(10);
  // Starve FCFS below the workload's needs so the deadline actually misses.
  config.capacity_override_iops = trace.mean_rate_iops() * 1.02;
  config.tracer = &tracer;
  shape_and_run(trace, config);

  const TraceData data = tracer.data();
  const AttributionReport report = attribute_misses(data, config.delta);
  EXPECT_EQ(report.completed, trace.size());
  ASSERT_GT(report.misses.size(), 0u) << "expected deadline misses";
  // 100% of misses attributed: met + misses partition completed, and the
  // per-cause histogram sums to the miss count (each miss counted once).
  EXPECT_EQ(report.met + report.misses.size(), report.completed);
  std::uint64_t total = 0;
  for (int c = 0; c < kMissCauseCount; ++c) total += report.by_cause[c];
  EXPECT_EQ(total, report.misses.size());
}

TEST(MissAttribution, MiserFaultFreeRunHasZeroSlackViolations) {
  const Trace trace = preset_trace(Workload::kWebSearch, 30 * kUsPerSec);
  Tracer tracer;
  ShapingConfig config;
  config.policy = Policy::kMiser;
  config.fraction = 0.90;
  config.delta = from_ms(10);
  config.tracer = &tracer;
  shape_and_run(trace, config);

  const SlackReport slack = miser_slack_report(tracer.data());
  ASSERT_GT(slack.samples, 0u) << "expected slack-funded Q2 dispatches";
  EXPECT_EQ(slack.violations, 0u);
  EXPECT_GE(slack.min_slack, 1);
}

TEST(TraceAnalysis, QueueTimelineReconstruction) {
  TraceData trace;
  // Two primaries overlapping, one overflow.
  RequestSpan a = make_span(0, 0, 100, true);
  a.enqueue = 10;
  a.service_start = 40;
  RequestSpan b = make_span(1, 0, 120, true);
  b.enqueue = 20;
  b.service_start = 60;
  RequestSpan c = make_span(2, 0, 200, false);
  c.enqueue = 30;
  c.service_start = 150;
  trace.spans = {a, b, c};

  const std::vector<QueuePoint> timeline = reconstruct_queue_timeline(trace);
  ASSERT_EQ(timeline.size(), 6u);
  std::int64_t peak_q1 = 0, peak_q2 = 0;
  for (const QueuePoint& p : timeline) {
    peak_q1 = std::max(peak_q1, p.q1);
    peak_q2 = std::max(peak_q2, p.q2);
  }
  EXPECT_EQ(peak_q1, 2);
  EXPECT_EQ(peak_q2, 1);
  // Fully drained at the end.
  EXPECT_EQ(timeline.back().q1, 0);
  EXPECT_EQ(timeline.back().q2, 0);
  EXPECT_TRUE(std::is_sorted(timeline.begin(), timeline.end(),
                             [](const QueuePoint& x, const QueuePoint& y) {
                               return x.time < y.time;
                             }));
}

TEST(TraceAnalysis, TextReportMentionsEveryCause) {
  const TraceData data = sample_trace_data();
  const std::string text = trace_analysis_text(data, from_ms(10));
  EXPECT_NE(text.find("miss attribution"), std::string::npos);
  EXPECT_NE(text.find("fault_window"), std::string::npos);
  EXPECT_NE(text.find("admission_burst"), std::string::npos);
  EXPECT_NE(text.find("q2_starvation"), std::string::npos);
  EXPECT_NE(text.find("capacity_shortfall"), std::string::npos);
  EXPECT_NE(text.find("miser slack"), std::string::npos);
}

// ---- SweepRunner trace determinism ----------------------------------------

std::vector<SweepCell> small_grid(const Trace& trace) {
  std::vector<SweepCell> cells;
  for (Policy p : {Policy::kFcfs, Policy::kSplit, Policy::kMiser}) {
    SweepCell cell;
    cell.trace_name = "WebSearch";
    cell.trace = &trace;
    cell.shaping.policy = p;
    cell.shaping.fraction = 0.90;
    cell.shaping.delta = from_ms(10);
    cell.shaping.capacity_override_iops = 250;
    cells.push_back(std::move(cell));
  }
  return cells;
}

void expect_traces_equal(const std::vector<TraceData>& a,
                         const std::vector<TraceData>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label) << i;
    EXPECT_EQ(a[i].spans, b[i].spans) << i;
    EXPECT_EQ(a[i].faults, b[i].faults) << i;
    EXPECT_EQ(a[i].slack, b[i].slack) << i;
    EXPECT_EQ(a[i].observed, b[i].observed) << i;
  }
}

TEST(SweepTracing, SpanStreamIdenticalAcrossThreadCounts) {
  const Trace trace = preset_trace(Workload::kWebSearch, 20 * kUsPerSec);
  const std::vector<SweepCell> cells = small_grid(trace);

  SweepRunner serial({.threads = 1, .trace = true});
  SweepRunner parallel({.threads = 8, .trace = true});
  const auto rows1 = serial.run_cells(cells);
  const auto rows8 = parallel.run_cells(cells);
  ASSERT_EQ(rows1.size(), rows8.size());
  expect_traces_equal(serial.traces(), parallel.traces());
  ASSERT_EQ(serial.traces().size(), cells.size());
  for (const TraceData& t : serial.traces())
    EXPECT_EQ(t.spans.size(), trace.size());
}

TEST(SweepTracing, SpanStreamIdenticalColdAndWarmCache) {
  const Trace trace = preset_trace(Workload::kWebSearch, 20 * kUsPerSec);
  const std::vector<SweepCell> cells = small_grid(trace);
  ResultCache cache({.memory_entries = 64, .disk_dir = ""});

  // Warm the cache with an untraced run, then trace twice with it attached:
  // traced cells must bypass the cache both ways (no replay, no store).
  SweepRunner warmup({.threads = 2, .cache = &cache});
  warmup.run_cells(cells);

  SweepRunner cold({.threads = 2, .cache = &cache, .trace = true});
  const auto rows_a = cold.run_cells(cells);
  SweepRunner warm({.threads = 2, .cache = &cache, .trace = true});
  const auto rows_b = warm.run_cells(cells);

  for (const SweepRow& row : rows_a) EXPECT_FALSE(row.from_cache);
  for (const SweepRow& row : rows_b) EXPECT_FALSE(row.from_cache);
  expect_traces_equal(cold.traces(), warm.traces());

  // And the traced rows still agree with the evaluate_cell reference.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepRow reference = SweepRunner::evaluate_cell(cells[i]);
    EXPECT_EQ(serialize_sweep_row(rows_a[i]),
              serialize_sweep_row(reference));
  }
}

TEST(SweepTracing, TracedChaosCellRecordsFaultWindows) {
  const Trace trace = preset_trace(Workload::kWebSearch, 30 * kUsPerSec);
  SweepCell cell;
  cell.trace_name = "WebSearch";
  cell.trace = &trace;
  cell.shaping.policy = Policy::kMiser;
  cell.shaping.fraction = 0.90;
  cell.shaping.delta = from_ms(10);
  cell.shaping.capacity_override_iops = 250;
  cell.faults.brownout(5 * kUsPerSec, 15 * kUsPerSec, 0.5);
  cell.fault_intensity = 0.5;

  Tracer tracer;
  SweepRunner::evaluate_cell(cell, &tracer);
  const TraceData data = tracer.data();
  ASSERT_FALSE(data.faults.empty());
  EXPECT_EQ(data.faults[0].begin, 5 * kUsPerSec);
  const bool any_inflated =
      std::any_of(data.spans.begin(), data.spans.end(),
                  [](const RequestSpan& s) { return s.inflation_us >= 0; });
  EXPECT_TRUE(any_inflated);
  // The attribution sees the fault evidence.
  const AttributionReport report = attribute_misses(data, from_ms(10));
  EXPECT_GT(report.by_cause[static_cast<int>(MissCause::kFaultWindow)], 0u);
}

TEST(SweepTracing, TracerAnnotatedWithCellCoordinates) {
  const Trace trace = preset_trace(Workload::kWebSearch, 10 * kUsPerSec);
  std::vector<SweepCell> cells = small_grid(trace);
  SweepRunner runner({.threads = 1, .trace = true});
  runner.run_cells(cells);
  ASSERT_EQ(runner.traces().size(), cells.size());
  EXPECT_EQ(runner.traces()[0].label, "FCFS");
  EXPECT_EQ(runner.traces()[1].label, "Split");
  EXPECT_EQ(runner.traces()[2].label, "Miser");
  for (const TraceData& t : runner.traces()) {
    EXPECT_EQ(t.trace_name, "WebSearch");
    EXPECT_EQ(t.delta, from_ms(10));
  }
}

}  // namespace
}  // namespace qos
