// Multi-class (k-tier) RTT decomposition — the paper's "two (or more in
// general) classes" extension (Section 2).
//
// Tiers are ordered tightest-deadline first.  Tier i runs RTT admission with
// its own (capacity_i, delta_i) profile; a request rejected by tier i
// cascades to tier i+1, and only requests rejected by every bounded tier
// land in the final best-effort class.  Each tier's admission uses a live
// census of its own pending requests, so the guarantee structure matches
// running k independent RTT servers whose outputs are recombined.
//
// Guarantees: the *first* tier inherits the two-class RTT guarantee
// unchanged (strict priority gives it its full profile capacity).  Lower
// bounded tiers are served ahead of best effort but behind higher tiers, so
// their bounds hold only while higher tiers stay within their profiles —
// during a higher-tier burst the overflow cascades down and can displace a
// middle tier (visible in examples/multi_tier_service.cpp).  A slack-based
// recombination across k classes (the Miser analogue) would tighten this;
// the paper proves only the two-class case.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/rtt.h"
#include "sim/scheduler.h"
#include "trace/trace.h"

namespace qos {

struct ClassSpec {
  double capacity_iops = 0;  ///< profile capacity for this tier
  Time delta = 0;            ///< response-time bound for this tier
};

/// Result of analytically cascading a trace through k tiers (plus the
/// implicit final best-effort class with index k).
struct MultiClassDecomposition {
  std::vector<std::uint8_t> tier;    ///< per-seq tier index (k = best effort)
  std::vector<std::int64_t> counts;  ///< size k+1: requests per tier

  double fraction_in_tier(std::size_t i) const {
    const auto total = static_cast<double>(tier.size());
    return total == 0 ? 0 : static_cast<double>(counts[i]) / total;
  }
};

/// Cascade `trace` through the tiers analytically, each tier modeled as a
/// dedicated capacity_i server draining its admissions FIFO.  Tiers must be
/// ordered by strictly increasing delta.  O(N * k).
MultiClassDecomposition multi_class_decompose(const Trace& trace,
                                              std::span<const ClassSpec> tiers);

/// Event-simulator scheduler: k bounded tiers + final best-effort queue on
/// one server, served in strict tier-priority order.  Admission per tier is
/// RTT with a live census.
class MultiClassScheduler final : public Scheduler {
 public:
  explicit MultiClassScheduler(std::vector<ClassSpec> tiers);

  int server_count() const override { return 1; }
  void on_arrival(const Request& r, Time now) override;
  std::optional<Dispatch> next_for(int server, Time now) override;
  void on_complete(const Request& r, ServiceClass klass, int server,
                   Time now) override;

  /// Tier a dispatched-or-completed request belongs to, by seq.  Only valid
  /// for requests that passed through on_arrival.
  std::uint8_t tier_of(std::uint64_t seq) const;

  std::size_t tier_count() const { return admissions_.size(); }
  std::int64_t pending_in_tier(std::size_t i) const { return pending_[i]; }

 private:
  std::vector<RttAdmission> admissions_;
  std::vector<std::deque<Request>> queues_;  ///< size k+1 (last: best effort)
  std::vector<std::int64_t> pending_;        ///< per bounded tier
  std::vector<std::uint8_t> tier_by_seq_;    ///< grows with max seen seq
};

}  // namespace qos
