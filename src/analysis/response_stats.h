// Response-time distribution analysis for simulation results.
//
// Produces the quantities the paper's figures report: the fraction of
// requests within a bound (CDF points, Figures 4-5), the bucketed histogram
// <=50 / <=100 / <=500 / <=1000 / >1000 ms (Figure 6), percentiles, and
// per-class summaries (Figure 6(c)).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sim/completion.h"
#include "util/time.h"

namespace qos {

class ResponseStats {
 public:
  ResponseStats() = default;

  /// Collect response times from completions, optionally restricted to one
  /// service class.
  explicit ResponseStats(std::span<const CompletionRecord> completions,
                         std::optional<ServiceClass> klass = std::nullopt);

  std::size_t count() const { return sorted_us_.size(); }
  bool empty() const { return sorted_us_.empty(); }

  /// Fraction of requests with response time <= bound.
  double fraction_within(Time bound) const;

  /// p in [0, 1]; exact order statistic (nearest-rank).  Requires non-empty.
  Time percentile(double p) const;

  Time max() const;
  double mean_us() const;

  /// CDF evaluated at the given points (fractions within each bound).
  std::vector<double> cdf(std::span<const Time> bounds) const;

  /// The paper's Figure-6 buckets: fractions in (<=50, <=100, <=500,
  /// <=1000, >1000) ms.  Cumulative = false gives disjoint bucket masses.
  struct Buckets {
    double le_50 = 0, le_100 = 0, le_500 = 0, le_1000 = 0, gt_1000 = 0;
  };
  Buckets paper_buckets(bool cumulative = true) const;

  /// Sorted response times (us) — for plotting full CDFs.
  std::span<const Time> sorted() const { return sorted_us_; }

 private:
  std::vector<Time> sorted_us_;
};

}  // namespace qos
