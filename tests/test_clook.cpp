#include "disk/clook.h"

#include <gtest/gtest.h>

#include <vector>

namespace qos {
namespace {

Request req(std::uint64_t seq) { return Request{.seq = seq}; }

TEST(Clook, SweepsUpward) {
  ClookQueue q;
  q.push(req(0), 500);
  q.push(req(1), 100);
  q.push(req(2), 300);
  std::vector<std::uint64_t> order;
  std::int64_t head = 0;
  while (auto r = q.pop(head)) {
    order.push_back(r->seq);
    head = r->seq == 0 ? 500 : (r->seq == 1 ? 100 : 300);
  }
  // From cylinder 0 the ascending sweep is 100, 300, 500.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 0}));
}

TEST(Clook, WrapsToLowestWhenPastTop) {
  ClookQueue q;
  q.push(req(0), 100);
  q.push(req(1), 200);
  auto r = q.pop(300);  // head above all pending => wrap to lowest
  ASSERT_TRUE(r);
  EXPECT_EQ(r->seq, 0u);
}

TEST(Clook, ExactHeadPositionServedInPlace) {
  ClookQueue q;
  q.push(req(0), 250);
  auto r = q.pop(250);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->seq, 0u);
}

TEST(Clook, SameCylinderFifo) {
  ClookQueue q;
  q.push(req(0), 100);
  q.push(req(1), 100);
  q.push(req(2), 100);
  EXPECT_EQ(q.pop(0)->seq, 0u);
  EXPECT_EQ(q.pop(100)->seq, 1u);
  EXPECT_EQ(q.pop(100)->seq, 2u);
}

TEST(Clook, EmptyPopReturnsNullopt) {
  ClookQueue q;
  EXPECT_FALSE(q.pop(0).has_value());
  EXPECT_TRUE(q.empty());
}

TEST(Clook, SizeTracksContents) {
  ClookQueue q;
  q.push(req(0), 1);
  q.push(req(1), 2);
  EXPECT_EQ(q.size(), 2u);
  (void)q.pop(0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(Clook, ReducesTotalSeekVsFifoOrder) {
  // 100 random cylinders: the C-LOOK service order must travel fewer
  // cylinders than FIFO order.
  ClookQueue q;
  std::vector<std::int64_t> cyls;
  std::uint64_t state = 12345;
  for (std::uint64_t i = 0; i < 100; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::int64_t cyl = static_cast<std::int64_t>(state % 50'000);
    cyls.push_back(cyl);
    Request r;
    r.seq = i;
    q.push(r, cyl);
  }
  std::int64_t fifo_travel = 0;
  for (std::size_t i = 1; i < cyls.size(); ++i)
    fifo_travel += std::abs(cyls[i] - cyls[i - 1]);
  std::int64_t clook_travel = 0;
  std::int64_t head = 0;
  while (auto r = q.pop(head)) {
    clook_travel += std::abs(cyls[r->seq] - head);
    head = cyls[r->seq];
  }
  EXPECT_LT(clook_travel, fifo_travel / 4);
}

}  // namespace
}  // namespace qos
