// Shared base for the recombination schedulers (Split / FairQueue / Miser):
// RTT admission at arrival with a live primary-queue census.
//
// lenQ1 counts pending primary requests — queued *and* in service — exactly
// the quantity Algorithm 1's proof reasons about (A(t) - S(t) for the
// primary class).  It is incremented on admission and decremented when a
// primary request completes service.
#pragma once

#include <deque>

#include "core/rtt.h"
#include "sim/scheduler.h"

namespace qos {

class DecomposingScheduler : public Scheduler {
 public:
  /// `admission_capacity_iops` is Cmin — the capacity the Q1 profile was
  /// planned for — regardless of how much total capacity the backing
  /// server(s) provide.
  DecomposingScheduler(double admission_capacity_iops, Time delta)
      : admission_(admission_capacity_iops, delta) {}

  void on_arrival(const Request& r, Time now) override {
    if (admission_.admit(len_q1_)) {
      q1_.push_back(r);
      ++len_q1_;
      on_classified(r, ServiceClass::kPrimary, now);
    } else {
      q2_.push_back(r);
      on_classified(r, ServiceClass::kOverflow, now);
    }
  }

  void on_complete(const Request&, ServiceClass klass, int, Time) override {
    if (klass == ServiceClass::kPrimary) {
      QOS_CHECK(len_q1_ > 0);
      --len_q1_;
    }
  }

  /// Pending primary requests (queued + in service).
  std::int64_t len_q1() const { return len_q1_; }
  std::int64_t max_q1() const { return admission_.max_q1(); }
  std::size_t q1_queued() const { return q1_.size(); }
  std::size_t q2_queued() const { return q2_.size(); }

 protected:
  /// Hook invoked after RTT classifies an arrival (e.g. to tag it in a fair
  /// scheduler).  Default: nothing.
  virtual void on_classified(const Request&, ServiceClass, Time) {}

  std::optional<Dispatch> pop_q1() {
    if (q1_.empty()) return std::nullopt;
    Dispatch d{q1_.front(), ServiceClass::kPrimary};
    q1_.pop_front();
    return d;
  }

  std::optional<Dispatch> pop_q2() {
    if (q2_.empty()) return std::nullopt;
    Dispatch d{q2_.front(), ServiceClass::kOverflow};
    q2_.pop_front();
    return d;
  }

 private:
  RttAdmission admission_;
  std::deque<Request> q1_;
  std::deque<Request> q2_;
  std::int64_t len_q1_ = 0;
};

}  // namespace qos
