// Deterministic random number generation.
//
// Every stochastic component (trace generators, tie-breaking) draws from an
// explicitly seeded `qos::Rng`.  We implement xoshiro256** seeded through
// SplitMix64 rather than relying on std::mt19937 so that streams are cheap to
// fork (`Rng::fork`) and the exact sequence is pinned by this repository, not
// by a standard-library implementation detail.
#pragma once

#include <cstdint>

namespace qos {

/// xoshiro256** PRNG with SplitMix64 seeding.  Not thread-safe; create one
/// per component.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with given mean (> 0).
  double exponential(double mean);

  /// Pareto with shape alpha (> 0) and minimum xm (> 0).
  double pareto(double alpha, double xm);

  /// Geometric number of trials >= 1 with success probability p in (0, 1].
  std::int64_t geometric(double p);

  /// Poisson-distributed count with the given mean (>= 0).  Uses inversion
  /// for small means and PTRS rejection for large ones.
  std::int64_t poisson(double mean);

  /// Derive an independent stream: hashes this stream's next output.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace qos
