
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/bq_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/bq_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/presets.cpp" "src/trace/CMakeFiles/bq_trace.dir/presets.cpp.o" "gcc" "src/trace/CMakeFiles/bq_trace.dir/presets.cpp.o.d"
  "/root/repo/src/trace/rate_series.cpp" "src/trace/CMakeFiles/bq_trace.dir/rate_series.cpp.o" "gcc" "src/trace/CMakeFiles/bq_trace.dir/rate_series.cpp.o.d"
  "/root/repo/src/trace/spc.cpp" "src/trace/CMakeFiles/bq_trace.dir/spc.cpp.o" "gcc" "src/trace/CMakeFiles/bq_trace.dir/spc.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/bq_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/bq_trace.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
