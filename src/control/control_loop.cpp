#include "control/control_loop.h"

#include <cmath>

#include "util/check.h"

namespace qos {

ControlLoop::ControlLoop(ControlLoopConfig config, std::size_t tenant_count,
                         ControlledTenantScheduler* scheduler,
                         QosController* controller, EventSink* downstream)
    : config_(config),
      scheduler_(scheduler),
      controller_(controller),
      downstream_(downstream),
      next_epoch_(config.epoch) {
  QOS_EXPECTS(tenant_count > 0);
  QOS_EXPECTS(scheduler != nullptr);
  QOS_EXPECTS(scheduler->tenant_count() == tenant_count);
  QOS_EXPECTS(config.epoch > 0);
  QOS_EXPECTS(controller == nullptr ||
              controller->tenant_count() == tenant_count);
  detectors_.reserve(tenant_count);
  tags_.reserve(tenant_count);
  const GraduatedSla sla{{{config.sla_fraction, config.delta}}};
  for (std::size_t i = 0; i < tenant_count; ++i) {
    tags_.push_back(std::make_unique<TenantTag>());
    tags_.back()->loop = this;
    tags_.back()->tenant = static_cast<std::uint32_t>(i);
    detectors_.push_back(
        std::make_unique<SlaBreachDetector>(sla, config.breach));
    detectors_.back()->attach_observability(tags_.back().get(), nullptr);
  }
}

void ControlLoop::on_breach_event(const Event& e) {
  if (controller_ != nullptr) controller_->on_event(e);
  if (downstream_ != nullptr) downstream_->on_event(e);
}

void ControlLoop::fire_epochs_through(Time now) {
  while (now >= next_epoch_) {
    const Time boundary = next_epoch_;
    next_epoch_ += config_.epoch;
    ++epochs_fired_;
    const std::uint64_t epoch_index = epoch_index_++;
    if (controller_ == nullptr) continue;
    controller_->set_health(scheduler_->health());
    const std::vector<double>& alloc = controller_->run_epoch(boundary);
    for (std::size_t t = 0; t < alloc.size(); ++t) {
      const double old_share = scheduler_->allocation(t);
      if (alloc[t] == old_share) continue;
      scheduler_->set_tenant_capacity(t, alloc[t]);
      ++reprovisions_;
      if (downstream_ != nullptr) {
        downstream_->on_event({.time = boundary,
                               .a = std::llround(old_share),
                               .b = std::llround(alloc[t]),
                               .c = static_cast<std::int64_t>(epoch_index),
                               .client = static_cast<std::uint32_t>(t),
                               .kind = EventKind::kReprovision});
      }
    }
  }
}

void ControlLoop::on_event(const Event& e) {
  fire_epochs_through(e.time);
  switch (e.kind) {
    case EventKind::kArrival:
      if (controller_ != nullptr) controller_->on_event(e);
      break;
    case EventKind::kCompletion:
      if (e.client < detectors_.size())
        detectors_[e.client]->on_completion(e.time, e.a);
      break;
    default:
      break;
  }
  if (downstream_ != nullptr) downstream_->on_event(e);
}

}  // namespace qos
