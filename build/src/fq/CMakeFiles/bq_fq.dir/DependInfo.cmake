
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fq/drr.cpp" "src/fq/CMakeFiles/bq_fq.dir/drr.cpp.o" "gcc" "src/fq/CMakeFiles/bq_fq.dir/drr.cpp.o.d"
  "/root/repo/src/fq/pclock.cpp" "src/fq/CMakeFiles/bq_fq.dir/pclock.cpp.o" "gcc" "src/fq/CMakeFiles/bq_fq.dir/pclock.cpp.o.d"
  "/root/repo/src/fq/sfq.cpp" "src/fq/CMakeFiles/bq_fq.dir/sfq.cpp.o" "gcc" "src/fq/CMakeFiles/bq_fq.dir/sfq.cpp.o.d"
  "/root/repo/src/fq/wf2q.cpp" "src/fq/CMakeFiles/bq_fq.dir/wf2q.cpp.o" "gcc" "src/fq/CMakeFiles/bq_fq.dir/wf2q.cpp.o.d"
  "/root/repo/src/fq/wfq.cpp" "src/fq/CMakeFiles/bq_fq.dir/wfq.cpp.o" "gcc" "src/fq/CMakeFiles/bq_fq.dir/wfq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
