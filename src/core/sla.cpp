#include "core/sla.h"

#include <algorithm>

#include "analysis/response_stats.h"
#include "util/check.h"

namespace qos {

bool GraduatedSla::valid() const {
  if (tiers.empty()) return false;
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    if (tiers[i].fraction <= 0 || tiers[i].fraction > 1) return false;
    if (tiers[i].delta <= 0) return false;
    if (i > 0 && (tiers[i].fraction <= tiers[i - 1].fraction ||
                  tiers[i].delta <= tiers[i - 1].delta))
      return false;
  }
  return true;
}

ProvisioningPlan plan_capacity(const Trace& trace, const GraduatedSla& sla) {
  QOS_EXPECTS(sla.valid());
  ProvisioningPlan plan;
  Time tightest = sla.tiers.front().delta;
  for (const auto& tier : sla.tiers) {
    plan.cmin_iops = std::max(
        plan.cmin_iops, min_capacity(trace, tier.fraction, tier.delta).cmin_iops);
    tightest = std::min(tightest, tier.delta);
  }
  plan.headroom_iops = overflow_headroom_iops(tightest);
  plan.worst_case_iops = min_capacity(trace, 1.0, tightest).cmin_iops;
  return plan;
}

SlaAudit audit_sla(std::span<const CompletionRecord> completions,
                   const GraduatedSla& sla) {
  QOS_EXPECTS(sla.valid());
  SlaAudit audit;
  const ResponseStats stats(completions);
  bool first = true;
  for (const auto& tier : sla.tiers) {
    const double achieved = stats.fraction_within(tier.delta);
    audit.achieved.push_back(achieved);
    const double margin = achieved - tier.fraction;
    if (first || margin < audit.worst_margin) audit.worst_margin = margin;
    first = false;
    if (margin < 0) audit.satisfied = false;
  }
  return audit;
}

}  // namespace qos
