// Ablation: Miser's overflow headroom dC.
//
// The paper provisions dC = 1/delta and proves dC = Cmin can never violate a
// primary deadline.  This bench sweeps dC between 0 and Cmin and reports the
// primary-class deadline violations plus the overflow class's mean response
// time — showing (i) violations vanish at (or before) dC = 1/delta and
// (ii) larger headroom keeps buying Q2 latency.
//
// Execution engine: the twelve (workload, dC) points are plain SweepRunner
// cells — policy Miser with the capacity and headroom pinned per cell — so
// both workload panels evaluate concurrently.  The Q1 miss count is
// reconstructed exactly from the report's within-delta fraction (an exact
// count ratio) and the primary count.
#include <cmath>
#include <cstdio>

#include "core/capacity.h"
#include "runner/bench_io.h"
#include "runner/parallel_capacity.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

constexpr Workload kWorkloads[] = {Workload::kWebSearch, Workload::kOpenMail};

struct Panel {
  Workload workload;
  Trace trace;
  double cmin = 0;
  std::vector<double> dcs;
};

void run(const BenchOptions& options) {
  const double t0 = bench_now_seconds();
  const Time delta = from_ms(10);
  const double one_over_delta = overflow_headroom_iops(delta);

  auto cache = options.make_cache();
  SweepRunner runner(options.sweep_options(cache.get()));

  std::vector<Panel> panels;
  for (Workload w : kWorkloads)
    panels.push_back({w, preset_trace(w, 1200 * kUsPerSec), 0, {}});
  runner.pool().parallel_for(panels.size(), [&](std::size_t i) {
    const Digest digest = cache ? hash_trace(panels[i].trace) : Digest{};
    panels[i].cmin = min_capacity_cached(panels[i].trace, 0.90, delta,
                                         cache.get(), cache ? &digest : nullptr)
                         .cmin_iops;
  });

  std::vector<SweepCell> cells;
  for (Panel& panel : panels) {
    panel.dcs = {0,
                 one_over_delta / 2,
                 one_over_delta,
                 2 * one_over_delta,
                 panel.cmin / 4,
                 panel.cmin};
    for (double dc : panel.dcs) {
      SweepCell cell;
      cell.label = "Miser";
      cell.trace_name = workload_name(panel.workload) + "-1200s";
      cell.trace = &panel.trace;
      cell.shaping.policy = Policy::kMiser;
      cell.shaping.fraction = 0.90;
      cell.shaping.delta = delta;
      cell.shaping.capacity_override_iops = panel.cmin;
      cell.shaping.headroom_override_iops = dc;
      cells.push_back(std::move(cell));
    }
  }
  const std::vector<SweepRow> rows = runner.run_cells(cells);

  std::size_t next = 0;
  for (const Panel& panel : panels) {
    std::printf(
        "-- %s: Cmin(90%%, 10 ms) = %.0f IOPS, 1/delta = %.0f IOPS --\n",
        workload_long_name(panel.workload).c_str(), panel.cmin,
        one_over_delta);
    AsciiTable table;
    table.add("dC (IOPS)", "Q1 misses", "Q1 miss frac", "Q2 mean (ms)",
              "Q2 max (ms)");
    for (double dc : panel.dcs) {
      const SweepRow& row = rows[next++];
      const ClassReport& q1 = row.report.primary;
      const ClassReport& q2 = row.report.overflow;
      // fraction_within_delta is an exact count ratio, so the miss count
      // reconstructs losslessly.
      const std::int64_t primaries = static_cast<std::int64_t>(q1.count);
      const std::int64_t misses =
          primaries - std::llround(q1.fraction_within_delta *
                                   static_cast<double>(primaries));
      table.add(format_double(dc, 0), static_cast<long long>(misses),
                format_double(primaries == 0
                                  ? 0
                                  : 100.0 * static_cast<double>(misses) /
                                        static_cast<double>(primaries),
                              4) +
                    "%",
                q2.count == 0 ? "-" : format_double(q2.mean_us / 1000.0, 1),
                q2.count == 0 ? "-" : format_double(to_ms(q2.max), 0));
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  write_bench_json(options, runner, rows.size(), bench_now_seconds() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: Miser primary-deadline safety vs headroom dC\n\n");
  run(parse_bench_args(argc, argv, "ablation_miser_dc"));
  return 0;
}
