
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_gnuplot.cpp" "tests/CMakeFiles/test_gnuplot.dir/test_gnuplot.cpp.o" "gcc" "tests/CMakeFiles/test_gnuplot.dir/test_gnuplot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/bq_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/bq_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/fq/CMakeFiles/bq_fq.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bq_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/curves/CMakeFiles/bq_curves.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bq_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
