# Empty dependencies file for test_wfq_drr.
# This may be replaced when dependencies are built.
