file(REMOVE_RECURSE
  "CMakeFiles/fig7_same_multiplex.dir/fig7_same_multiplex.cpp.o"
  "CMakeFiles/fig7_same_multiplex.dir/fig7_same_multiplex.cpp.o.d"
  "fig7_same_multiplex"
  "fig7_same_multiplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_same_multiplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
