// Fixed-size thread pool with deterministic fork-join parallelism.
//
// The engine's concurrency model is deliberately narrow: each simulation (or
// capacity search) stays a sequential unit — Guérin's "When Two is Worse
// Than One" warning against splitting a stream across servers applies to
// splitting a run across threads just as much — and the pool parallelizes
// only across independent units.  parallel_for / parallel_map hand out
// indices from a shared counter and land every result in its own slot, so
// the assembled output is ordered by index, never by completion order; a
// parallel run over the same inputs is bit-identical to a serial one, which
// tests/test_runner_sweep.cpp asserts across all policies.
//
// Exceptions: worker-side throws are captured per index; once every index
// has been claimed and finished the lowest-indexed exception is rethrown on
// the calling thread.  A throw cancels indices not yet claimed (fail fast),
// and the pool remains fully usable for subsequent calls — shutdown while
// idle is always clean.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qos {

class ThreadPool {
 public:
  /// `threads` >= 1 is the total worker count *including* the calling
  /// thread: ThreadPool(1) spawns nothing and runs everything inline (the
  /// serial reference), ThreadPool(n) spawns n - 1 workers.  0 uses
  /// hardware_threads().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return threads_; }

  /// Invoke body(i) for every i in [0, n), spread over the pool; blocks
  /// until all indices finish.  Rethrows the lowest-indexed captured
  /// exception, if any.  Reentrant calls (parallel_for from inside a body)
  /// are not supported.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// parallel_for that collects fn(i) into a vector ordered by index.
  /// T must be default-constructible and movable.
  template <typename Fn>
  auto parallel_map(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0}))> {
    using T = decltype(fn(std::size_t{0}));
    std::vector<T> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Detected hardware concurrency, at least 1.
  static int hardware_threads();

 private:
  struct Job;

  void worker_loop();
  static void run_indices(Job& job);

  int threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;     ///< signals workers: job posted / stop
  std::condition_variable done_cv_;  ///< signals caller: job finished
  Job* job_ = nullptr;               ///< active job, guarded by mutex_
  std::uint64_t job_generation_ = 0;
  bool stop_ = false;
};

}  // namespace qos
