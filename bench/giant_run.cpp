// Giant-run streaming benchmark: drives a multi-tenant synthetic run
// through stream::simulate_sharded without ever materializing the trace or
// the completion log, and emits BENCH_stream.json for the CI perf-smoke job
// (scripts/check_perf.py --stream).
//
// The harness makes two claims, and its two output channels separate them:
//
//   stdout   the *deterministic* summary — request/completion counts, the
//            input-stream digest (TraceDigester, cache-identical to
//            hash_trace of the materialized equivalent) and a digest folded
//            over the canonical completion sequence, plus the makespan.
//            Nothing shard- or timing-dependent is printed, so CI runs the
//            binary at --shards 1/2/8 and `cmp`s the outputs byte for byte:
//            shard count is a pure parallelism knob.
//
//   --json   the *performance* numbers — events/sec, wall time, peak RSS
//            against the --rss-ceiling-mb contract, and the machine-
//            normalized throughput (events/sec divided by an in-process
//            calibration rate, the same machine-cancelling trick the online
//            harness uses) that check_perf.py --stream gates against
//            bench/BENCH_stream.baseline.json (>25% regression fails).
//
// The workload is T identical-rate Poisson tenants merged into one stream;
// --requests picks the per-tenant rate so the expected total matches, which
// makes the harness scale smoothly from the CI default (2M requests) to the
// 1e8-request acceptance run (--requests 100000000) with the same bounded
// footprint: memory holds one barrier window of arrivals plus per-lane
// in-flight state, never the run.
//
// Observability (all off by default — the untraced stdout block is
// byte-identical to earlier builds):
//
//   --trace       attach a Tracer to the canonically merged event stream and
//                 stream spans into <stem>.trace.bin (chunked QOSTRC02 —
//                 bounded memory at any run length) plus a streaming
//                 Perfetto export <stem>.perfetto.json; stdout gains an
//                 event-digest block that is still shard-independent, so CI
//                 cmp extends to the event stream itself.
//   --metrics     fan per-lane metric registries into a global snapshot,
//                 printed on stdout (shard-independent, including the
//                 occupancy doubles — fan-in folds in fixed tenant order).
//   --overhead    run an uninstrumented reference pass first and embed
//                 untraced_events_per_sec / obs_overhead in the JSON for
//                 the check_perf.py --stream observability gate.
//
// usage: giant_run [--requests N] [--tenants T] [--duration-sec S]
//                  [--shards K] [--lookahead-us D] [--seed S]
//                  [--rss-ceiling-mb M] [--repeats R] [--json PATH]
//                  [--trace] [--trace-out STEM] [--trace-sample N]
//                  [--metrics] [--overhead]
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/shaper.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "obs/trace_stream.h"
#include "runner/hash.h"
#include "sim/server.h"
#include "stream/gen_stream.h"
#include "stream/sharded.h"
#include "stream/stream.h"
#include "util/time.h"

namespace {

using namespace qos;

volatile std::uint64_t g_sink = 0;

struct Options {
  std::uint64_t requests = 2'000'000;  ///< expected total (Poisson mean)
  int tenants = 4;
  double duration_sec = 600;
  int shards = 1;
  Time lookahead_us = 10'000;
  std::uint64_t seed = 1;
  double rss_ceiling_mb = 256;
  int repeats = 2;
  std::string json_path;

  bool trace = false;
  std::string trace_out = "TRACE_giant_run";
  std::uint64_t trace_sample = 1;
  bool metrics = false;
  bool overhead = false;
};

/// The deadline the streamed trace is annotated with (giant_run provisions
/// every lane the same way, so one delta serves attribution for all).
constexpr Time kTraceDelta = from_ms(10);

[[noreturn]] void usage_abort() {
  std::fprintf(stderr,
               "usage: giant_run [--requests N] [--tenants T]\n"
               "                 [--duration-sec S] [--shards K]\n"
               "                 [--lookahead-us D] [--seed S]\n"
               "                 [--rss-ceiling-mb M] [--repeats R]\n"
               "                 [--json PATH] [--trace] [--trace-out STEM]\n"
               "                 [--trace-sample N] [--metrics] [--overhead]\n");
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_abort();
      return argv[++i];
    };
    if (std::strcmp(a, "--requests") == 0) {
      o.requests = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(a, "--tenants") == 0) {
      o.tenants = std::atoi(value());
    } else if (std::strcmp(a, "--duration-sec") == 0) {
      o.duration_sec = std::atof(value());
    } else if (std::strcmp(a, "--shards") == 0) {
      o.shards = std::atoi(value());
    } else if (std::strcmp(a, "--lookahead-us") == 0) {
      o.lookahead_us = std::strtoll(value(), nullptr, 10);
    } else if (std::strcmp(a, "--seed") == 0) {
      o.seed = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(a, "--rss-ceiling-mb") == 0) {
      o.rss_ceiling_mb = std::atof(value());
    } else if (std::strcmp(a, "--repeats") == 0) {
      o.repeats = std::atoi(value());
    } else if (std::strcmp(a, "--json") == 0) {
      o.json_path = value();
    } else if (std::strcmp(a, "--trace") == 0) {
      o.trace = true;
    } else if (std::strcmp(a, "--trace-out") == 0) {
      o.trace_out = value();
    } else if (std::strcmp(a, "--trace-sample") == 0) {
      o.trace_sample = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(a, "--metrics") == 0) {
      o.metrics = true;
    } else if (std::strcmp(a, "--overhead") == 0) {
      o.overhead = true;
    } else {
      usage_abort();
    }
  }
  if (o.requests == 0 || o.tenants < 1 || o.duration_sec <= 0 ||
      o.shards < 1 || o.lookahead_us < 1 || o.rss_ceiling_mb <= 0 ||
      o.repeats < 1 || o.trace_sample < 1 || o.trace_out.empty())
    usage_abort();
  return o;
}

// Fixed-cost calibration loop, identical in shape to online_loadgen's: one
// steady-clock read plus an uncontended lock/unlock and a counter update per
// op.  events/sec divided by this rate is the machine-normalized throughput
// check_perf.py --stream gates.
double calibration_ops_per_sec(int repeats) {
  constexpr std::uint64_t kOps = 2'000'000;
  std::mutex m;
  double best = 0;
  for (int r = 0; r < repeats; ++r) {
    std::uint64_t acc = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      const auto now = std::chrono::steady_clock::now();
      std::lock_guard<std::mutex> lock(m);
      acc += static_cast<std::uint64_t>(now.time_since_epoch().count());
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    g_sink = g_sink ^ acc;
    best = std::max(best, static_cast<double>(kOps) / elapsed);
  }
  return best;
}

std::uint64_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#ifdef __APPLE__
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
}

// Every policy family behind the sharding layer: tenant t cycles through
// the four schedulers so the determinism claim covers single-server,
// dual-server and fair-queue lanes at once.
constexpr Policy kPolicyCycle[] = {Policy::kMiser, Policy::kSplit,
                                   Policy::kFairQueue, Policy::kFcfs};

// Mirrors shape_and_run's server construction (see core/shaper.cpp): Split
// gets a dedicated primary at Cmin plus an overflow server at dC;
// shared-server policies get one server at Cmin + dC.  Cmin is provisioned
// at 1.5x the tenant's offered rate and the headroom at 0.25x, so every
// lane is stable and queues — and therefore memory — stay bounded.
stream::TenantSim build_tenant(double rate_iops, std::uint32_t client) {
  ShapingConfig config;
  config.policy = kPolicyCycle[client % std::size(kPolicyCycle)];
  config.headroom_override_iops = 0.25 * rate_iops;
  const double cmin = 1.5 * rate_iops;
  stream::TenantSim sim;
  sim.scheduler = make_scheduler(config, cmin);
  const double headroom = config.resolved_headroom_iops();
  if (sim.scheduler->server_count() == 2) {
    sim.servers.push_back(std::make_unique<ConstantRateServer>(cmin));
    sim.servers.push_back(std::make_unique<ConstantRateServer>(headroom));
  } else {
    sim.servers.push_back(
        std::make_unique<ConstantRateServer>(cmin + headroom));
  }
  return sim;
}

/// One full pass over the workload.  `instrumented` false is the --overhead
/// reference: identical streams and lanes, no sink, no registry.
struct RunOutput {
  stream::ShardedStats stats;
  Digest request_digest;
  Digest completion_digest;
  double wall_sec = 0;

  std::uint64_t events_observed = 0;  ///< events the merged sink forwarded
  Digest event_digest;                ///< valid when traced
  std::uint64_t trace_observed = 0;
  std::uint64_t trace_dropped = 0;
  MetricRegistry registry;  ///< fanned-in global snapshot when metered
};

RunOutput run_once(const Options& o, bool instrumented) {
  const double rate_iops =
      static_cast<double>(o.requests) /
      (static_cast<double>(o.tenants) * o.duration_sec);
  const Time duration =
      static_cast<Time>(o.duration_sec * static_cast<double>(kUsPerSec));

  std::vector<std::unique_ptr<stream::RequestStream>> sources;
  sources.reserve(static_cast<std::size_t>(o.tenants));
  for (int t = 0; t < o.tenants; ++t)
    sources.push_back(stream::make_poisson_stream(
        rate_iops, duration, o.seed + static_cast<std::uint64_t>(t)));
  stream::MergedStream merged(std::move(sources));
  stream::DigestingStream input(merged);

  auto factory = [rate_iops](std::uint32_t client) {
    return build_tenant(rate_iops, client);
  };

  RunOutput out;
  const bool traced = instrumented && o.trace;
  const bool metered = instrumented && o.metrics;

  // Trace path: Tracer on the canonically merged stream, spans streamed
  // into the chunked QOSTRC02 container (bounded memory at any run length).
  // The event digest rides the merge itself (ShardedStats::event_digest), so
  // no digesting sink needs to sit downstream of the Tracer.
  Tracer tracer(TracerConfig{.sample_every = o.trace_sample});
  std::ofstream trace_file;
  std::optional<ChunkedTraceWriter> writer;

  stream::ShardedOptions sharded{.shards = o.shards,
                                 .lookahead = o.lookahead_us};
  if (traced) {
    const std::string bin_path = o.trace_out + ".trace.bin";
    trace_file.open(bin_path, std::ios::trunc | std::ios::binary);
    if (!trace_file) {
      std::fprintf(stderr, "giant_run: cannot write %s\n", bin_path.c_str());
      std::exit(1);
    }
    tracer.annotate("giant_run", "poisson", kTraceDelta);
    writer.emplace(trace_file,
                   StreamTraceMeta{"giant_run", "poisson", kTraceDelta,
                                   o.trace_sample});
    tracer.set_span_sink(&*writer);
    sharded.sink = &tracer;
  }
  if (metered) sharded.registry = &out.registry;

  // The completion log is never materialized: the canonical sequence is
  // folded into a digest on the fly, which is both the memory contract and
  // the cross-shard identity witness.
  ContentHasher completions;
  const auto t0 = std::chrono::steady_clock::now();
  out.stats = stream::simulate_sharded(
      input, factory, sharded, [&completions](const CompletionRecord& r) {
        completions.u64(r.seq)
            .u64(r.client)
            .i64(r.arrival)
            .i64(r.start)
            .i64(r.finish)
            .u64(static_cast<std::uint64_t>(r.klass))
            .u64(r.server);
      });
  out.wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (traced) {
    writer->finish(tracer.observed(), tracer.dropped());
    out.events_observed = out.stats.events_forwarded;
    out.event_digest = {out.stats.event_digest.hi, out.stats.event_digest.lo};
    out.trace_observed = tracer.observed();
    out.trace_dropped = tracer.dropped();
  }
  out.request_digest = input.finish();
  out.completion_digest = completions.digest();
  return out;
}

/// Deterministic (shard-independent) metric snapshot: maps iterate in name
/// order and the fan-in folds doubles in fixed tenant order, so this block
/// is byte-identical across shard counts.
void print_metric_snapshot(const MetricRegistry& reg) {
  std::printf("metrics snapshot (fanned-in)\n");
  for (const auto& [name, c] : reg.counters())
    std::printf("counter    %-18s %llu\n", name.c_str(),
                static_cast<unsigned long long>(c.value()));
  for (const auto& [name, g] : reg.gauges())
    std::printf("gauge      %-18s %.6f\n", name.c_str(), g.value());
  for (const auto& [name, h] : reg.histograms())
    std::printf("histogram  %-18s n=%llu min=%lld max=%lld mean=%.6f\n",
                name.c_str(), static_cast<unsigned long long>(h.count()),
                static_cast<long long>(h.min()),
                static_cast<long long>(h.max()), h.mean_us());
  for (const auto& [name, s] : reg.occupancies())
    std::printf("occupancy  %-18s mean=%.6f max=%lld\n", name.c_str(),
                s.mean(), static_cast<long long>(s.max()));
}

struct ObsJson {
  bool traced = false;
  bool metrics = false;
  std::uint64_t events_observed = 0;
  std::string event_digest;
  std::uint64_t trace_observed = 0;
  std::uint64_t trace_dropped = 0;
  double untraced_events_per_sec = 0;  ///< 0 = no --overhead reference ran
  double obs_overhead = 0;             ///< (untraced - traced) / untraced
};

void write_json(const Options& o, const stream::ShardedStats& stats,
                const Digest& request_digest, const Digest& completion_digest,
                double wall_sec, double events_per_sec, double calibration,
                std::uint64_t rss, std::uint64_t ceiling_bytes,
                const ObsJson& obs) {
  std::FILE* f = std::fopen(o.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "giant_run: cannot write %s\n", o.json_path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"harness\": \"giant_run\",\n");
  std::fprintf(f, "  \"requests\": %llu,\n",
               static_cast<unsigned long long>(stats.requests));
  std::fprintf(f, "  \"completions\": %llu,\n",
               static_cast<unsigned long long>(stats.completions));
  std::fprintf(f, "  \"dispatches\": %llu,\n",
               static_cast<unsigned long long>(stats.dispatches));
  std::fprintf(f, "  \"events\": %llu,\n",
               static_cast<unsigned long long>(stats.events()));
  std::fprintf(f, "  \"windows\": %llu,\n",
               static_cast<unsigned long long>(stats.windows));
  std::fprintf(f, "  \"tenants\": %llu,\n",
               static_cast<unsigned long long>(stats.tenants));
  std::fprintf(f, "  \"shards\": %d,\n", o.shards);
  std::fprintf(f, "  \"lookahead_us\": %lld,\n",
               static_cast<long long>(o.lookahead_us));
  std::fprintf(f, "  \"duration_sec\": %.3f,\n", o.duration_sec);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(o.seed));
  std::fprintf(f, "  \"makespan_us\": %lld,\n",
               static_cast<long long>(stats.makespan));
  std::fprintf(f, "  \"request_digest\": \"%s\",\n",
               request_digest.to_hex().c_str());
  std::fprintf(f, "  \"completion_digest\": \"%s\",\n",
               completion_digest.to_hex().c_str());
  std::fprintf(f, "  \"wall_sec\": %.6f,\n", wall_sec);
  std::fprintf(f, "  \"events_per_sec\": %.1f,\n", events_per_sec);
  std::fprintf(f, "  \"calibration_ops_per_sec\": %.1f,\n", calibration);
  std::fprintf(f, "  \"normalized\": %.6f,\n",
               calibration > 0 ? events_per_sec / calibration : 0.0);
  std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
               static_cast<unsigned long long>(rss));
  std::fprintf(f, "  \"rss_ceiling_bytes\": %llu,\n",
               static_cast<unsigned long long>(ceiling_bytes));
  std::fprintf(f, "  \"rss_ok\": %s,\n",
               rss <= ceiling_bytes ? "true" : "false");
  // Observability accounting — always present so check_perf.py --stream can
  // tell a traced manifest (gated on obs_overhead, exempt from the baseline
  // throughput compare) from an untraced one.  trace_dropped > 0 would be
  // silent span loss; surfacing it here is the satellite contract.
  std::fprintf(f, "  \"observability\": {\n");
  std::fprintf(f, "    \"traced\": %s,\n", obs.traced ? "true" : "false");
  std::fprintf(f, "    \"metrics\": %s,\n", obs.metrics ? "true" : "false");
  std::fprintf(f, "    \"events_observed\": %llu,\n",
               static_cast<unsigned long long>(obs.events_observed));
  std::fprintf(f, "    \"event_digest\": \"%s\",\n", obs.event_digest.c_str());
  std::fprintf(f, "    \"trace_observed\": %llu,\n",
               static_cast<unsigned long long>(obs.trace_observed));
  std::fprintf(f, "    \"trace_dropped\": %llu,\n",
               static_cast<unsigned long long>(obs.trace_dropped));
  std::fprintf(f, "    \"untraced_events_per_sec\": %.1f,\n",
               obs.untraced_events_per_sec);
  std::fprintf(f, "    \"obs_overhead\": %.6f\n", obs.obs_overhead);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int run(const Options& o) {
  // Calibrate before the run so the loop measures an otherwise-quiet
  // process, exactly like the online harness.
  const double calibration = calibration_ops_per_sec(o.repeats);

  ObsJson obs;
  obs.traced = o.trace;
  obs.metrics = o.metrics;

  auto eps = [](const RunOutput& out) {
    return out.wall_sec > 0
               ? static_cast<double>(out.stats.events()) / out.wall_sec
               : 0.0;
  };

  // --overhead: alternate uninstrumented reference and instrumented passes
  // over the identical workload --repeats times and compare best against
  // best.  A single back-to-back pair is too exposed to machine noise for a
  // ratio gate — the two passes can land on different turbo or contention
  // regimes and swing the ratio by tens of points; best-of-N on each side
  // filters the transients.  Every instrumented pass is deterministic, so
  // re-running it just rewrites identical trace bytes.
  RunOutput r;
  double best_instrumented_eps = 0;
  if (o.overhead && (o.trace || o.metrics)) {
    for (int rep = 0; rep < o.repeats; ++rep) {
      const RunOutput ref = run_once(o, /*instrumented=*/false);
      obs.untraced_events_per_sec =
          std::max(obs.untraced_events_per_sec, eps(ref));
      r = run_once(o, /*instrumented=*/true);
      best_instrumented_eps = std::max(best_instrumented_eps, eps(r));
    }
  } else {
    r = run_once(o, /*instrumented=*/true);
  }
  const stream::ShardedStats& stats = r.stats;
  const double wall_sec = r.wall_sec;

  const double events_per_sec =
      best_instrumented_eps > 0 ? best_instrumented_eps : eps(r);
  if (obs.untraced_events_per_sec > 0)
    obs.obs_overhead =
        (obs.untraced_events_per_sec - events_per_sec) /
        obs.untraced_events_per_sec;
  if (o.trace) {
    obs.events_observed = r.events_observed;
    obs.event_digest = r.event_digest.to_hex();
    obs.trace_observed = r.trace_observed;
    obs.trace_dropped = r.trace_dropped;
  }
  const std::uint64_t rss = peak_rss_bytes();
  const auto ceiling_bytes =
      static_cast<std::uint64_t>(o.rss_ceiling_mb * 1024.0 * 1024.0);

  // Deterministic, shard-independent summary: CI diffs this block byte for
  // byte across --shards 1/2/8.  Keep timings, shard count and RSS out.
  // The observability blocks below are equally shard-independent — every
  // shard count (including 1) routes events through the same canonical
  // ShardedEventSink merge and the same fixed-order metric fan-in — so CI's
  // cmp covers them too whenever the flags match.
  std::printf("giant_run summary (shard-independent)\n");
  std::printf("tenants            %llu\n",
              static_cast<unsigned long long>(stats.tenants));
  std::printf("requests           %llu\n",
              static_cast<unsigned long long>(stats.requests));
  std::printf("dispatches         %llu\n",
              static_cast<unsigned long long>(stats.dispatches));
  std::printf("completions        %llu\n",
              static_cast<unsigned long long>(stats.completions));
  std::printf("makespan_us        %lld\n",
              static_cast<long long>(stats.makespan));
  std::printf("request_digest     %s\n", r.request_digest.to_hex().c_str());
  std::printf("completion_digest  %s\n", r.completion_digest.to_hex().c_str());
  if (o.trace) {
    std::printf("events_observed    %llu\n",
                static_cast<unsigned long long>(r.events_observed));
    std::printf("event_digest       %s\n", r.event_digest.to_hex().c_str());
    std::printf("trace_observed     %llu\n",
                static_cast<unsigned long long>(r.trace_observed));
    std::printf("trace_dropped      %llu\n",
                static_cast<unsigned long long>(r.trace_dropped));
  }
  if (o.metrics) print_metric_snapshot(r.registry);

  // Performance lines go to stderr so stdout stays comparable.
  std::fprintf(stderr,
               "giant_run: shards=%d lookahead=%lldus wall=%.3fs "
               "events/s=%.0f normalized=%.4f peak_rss=%.1fMiB "
               "(ceiling %.0fMiB)\n",
               o.shards, static_cast<long long>(o.lookahead_us), wall_sec,
               events_per_sec,
               calibration > 0 ? events_per_sec / calibration : 0.0,
               static_cast<double>(rss) / (1024.0 * 1024.0),
               o.rss_ceiling_mb);
  if (obs.untraced_events_per_sec > 0)
    std::fprintf(stderr,
                 "giant_run: untraced events/s=%.0f obs_overhead=%.4f\n",
                 obs.untraced_events_per_sec, obs.obs_overhead);

  // Streaming Perfetto export: read the chunked container back through the
  // cursor-based scanner, never holding more than one chunk in memory.
  if (o.trace) {
    const std::string bin_path = o.trace_out + ".trace.bin";
    const std::string json_path = o.trace_out + ".perfetto.json";
    std::ifstream in(bin_path, std::ios::binary);
    std::ofstream out(json_path, std::ios::trunc);
    if (in && out && perfetto_trace_json_stream(in, out)) {
      std::fprintf(stderr,
                   "giant_run: trace container %s, Perfetto export %s "
                   "(open in https://ui.perfetto.dev)\n",
                   bin_path.c_str(), json_path.c_str());
    } else {
      std::fprintf(stderr, "giant_run: Perfetto export to %s failed\n",
                   json_path.c_str());
      return 1;
    }
  }

  if (!o.json_path.empty())
    write_json(o, stats, r.request_digest, r.completion_digest, wall_sec,
               events_per_sec, calibration, rss, ceiling_bytes, obs);

  if (stats.completions != stats.requests) {
    std::fprintf(stderr, "giant_run: completions != requests\n");
    return 1;
  }
  if (rss > ceiling_bytes) {
    std::fprintf(stderr, "giant_run: peak RSS %llu exceeds ceiling %llu\n",
                 static_cast<unsigned long long>(rss),
                 static_cast<unsigned long long>(ceiling_bytes));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(parse_args(argc, argv)); }
