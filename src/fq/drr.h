// DRR — Deficit Round Robin (Shreedhar/Varghese 1995).
//
// O(1) proportional sharing without virtual time: each flow carries a
// deficit counter topped up by a weight-proportional quantum each round; a
// flow serves items while its deficit covers their cost.  Coarser
// short-term fairness than the tag-based schedulers but the cheapest of the
// family — a useful ablation point for the FairQueue recombination.
#pragma once

#include <vector>

#include "fq/fair_scheduler.h"
#include "util/check.h"
#include "util/ring_buffer.h"

namespace qos {

class DrrScheduler final : public FairScheduler {
 public:
  /// `quantum_scale` sets the base quantum: flow i's per-round quantum is
  /// weight_i * quantum_scale (must cover the max item cost for the heaviest
  /// flow to make progress every round).
  explicit DrrScheduler(std::vector<double> weights,
                        double quantum_scale = 1.0);

  int flow_count() const override {
    return static_cast<int>(flows_.size());
  }
  void enqueue(int flow, std::uint64_t handle, double cost, Time now) override;
  std::optional<FqDispatch> dequeue(Time now) override;
  bool empty() const override;
  std::size_t backlog(int flow) const override;

 private:
  struct Item {
    std::uint64_t handle = 0;
    double cost = 1;
  };
  struct Flow {
    double quantum = 1;
    double deficit = 0;
    RingBuffer<Item> queue;
  };

  std::vector<Flow> flows_;
  std::size_t cursor_ = 0;  ///< round-robin position
};

}  // namespace qos
