file(REMOVE_RECURSE
  "CMakeFiles/test_disk_qos.dir/test_disk_qos.cpp.o"
  "CMakeFiles/test_disk_qos.dir/test_disk_qos.cpp.o.d"
  "test_disk_qos"
  "test_disk_qos.pdb"
  "test_disk_qos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disk_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
