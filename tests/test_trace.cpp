#include "trace/trace.h"

#include <gtest/gtest.h>

#include <vector>

namespace qos {
namespace {

std::vector<Request> make_requests(std::initializer_list<Time> arrivals) {
  std::vector<Request> out;
  for (Time a : arrivals) out.push_back(Request{.arrival = a});
  return out;
}

TEST(Trace, SortsAndRenumbers) {
  Trace t(make_requests({300, 100, 200}));
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].arrival, 100);
  EXPECT_EQ(t[1].arrival, 200);
  EXPECT_EQ(t[2].arrival, 300);
  EXPECT_EQ(t[0].seq, 0u);
  EXPECT_EQ(t[2].seq, 2u);
}

TEST(Trace, StableForEqualArrivals) {
  std::vector<Request> reqs = make_requests({100, 100, 100});
  reqs[0].lba = 1;
  reqs[1].lba = 2;
  reqs[2].lba = 3;
  Trace t(std::move(reqs));
  EXPECT_EQ(t[0].lba, 1u);
  EXPECT_EQ(t[1].lba, 2u);
  EXPECT_EQ(t[2].lba, 3u);
}

TEST(Trace, StartEndDuration) {
  Trace t(make_requests({500, 1500, 2500}));
  EXPECT_EQ(t.start_time(), 500);
  EXPECT_EQ(t.end_time(), 2500);
  EXPECT_EQ(t.duration(), 2000);
}

TEST(Trace, DurationOfSingletonIsZero) {
  Trace t(make_requests({500}));
  EXPECT_EQ(t.duration(), 0);
}

TEST(Trace, MeanRate) {
  // 11 requests over 1 second: 10 gaps of 100 ms => rate 11 / 1 s.
  std::vector<Request> reqs;
  for (int i = 0; i <= 10; ++i)
    reqs.push_back(Request{.arrival = i * 100'000});
  Trace t(std::move(reqs));
  EXPECT_DOUBLE_EQ(t.mean_rate_iops(), 11.0);
}

TEST(Trace, PeakRateFindsBurst) {
  // Steady 10 ms spacing plus a burst of 5 requests within 1 ms.
  std::vector<Request> reqs;
  for (int i = 0; i < 100; ++i) reqs.push_back(Request{.arrival = i * 10'000});
  for (int i = 0; i < 5; ++i)
    reqs.push_back(Request{.arrival = 500'000 + i * 200});
  Trace t(std::move(reqs));
  // Window of 1 ms: the burst plus the steady request at 500 ms => 6 in 1 ms.
  EXPECT_DOUBLE_EQ(t.peak_rate_iops(1'000), 6000.0);
}

TEST(Trace, ShiftedMovesArrivals) {
  Trace t(make_requests({100, 200}));
  Trace s = t.shifted(50);
  EXPECT_EQ(s[0].arrival, 150);
  EXPECT_EQ(s[1].arrival, 250);
}

TEST(Trace, SliceRebasesWindow) {
  Trace t(make_requests({100, 200, 300, 400}));
  Trace s = t.slice(150, 350);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].arrival, 50);
  EXPECT_EQ(s[1].arrival, 150);
}

TEST(Trace, MergeInterleavesAndTagsClients) {
  Trace a(make_requests({100, 300}));
  Trace b(make_requests({200, 400}));
  const Trace parts[] = {a, b};
  Trace m = Trace::merge(parts);
  ASSERT_EQ(m.size(), 4u);
  EXPECT_EQ(m[0].arrival, 100);
  EXPECT_EQ(m[0].client, 0u);
  EXPECT_EQ(m[1].arrival, 200);
  EXPECT_EQ(m[1].client, 1u);
  EXPECT_EQ(m[3].client, 1u);
}

TEST(Trace, TimeScaledStretchesGaps) {
  Trace t(make_requests({100, 200}));
  Trace s = t.time_scaled(2.0);
  EXPECT_EQ(s[0].arrival, 200);
  EXPECT_EQ(s[1].arrival, 400);
}

TEST(Trace, CsvRoundTrip) {
  std::vector<Request> reqs = make_requests({10, 20});
  reqs[0].client = 3;
  reqs[0].lba = 12345;
  reqs[0].size_blocks = 16;
  reqs[0].is_write = true;
  Trace t(std::move(reqs));
  Trace back = Trace::from_csv(t.to_csv());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].arrival, 10);
  EXPECT_EQ(back[0].client, 3u);
  EXPECT_EQ(back[0].lba, 12345u);
  EXPECT_EQ(back[0].size_blocks, 16u);
  EXPECT_TRUE(back[0].is_write);
  EXPECT_FALSE(back[1].is_write);
}

TEST(Trace, EmptyTraceBasics) {
  Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.mean_rate_iops(), 0.0);
  EXPECT_TRUE(Trace::merge({}).empty());
}

TEST(Trace, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(Trace{}.validate());
  Trace t(make_requests({0, 0, 5, 5, 9}));  // equal arrivals are fine
  EXPECT_TRUE(t.validate());
}

TEST(Trace, ValidateCatchesZeroSizeRequests) {
  // The constructor establishes ordering and numbering, so the only
  // invariant a parser or generator can still break is a zero-size request.
  std::vector<Request> reqs = make_requests({0, 5, 9});
  reqs[1].size_blocks = 0;
  Trace t(std::move(reqs));
  EXPECT_FALSE(t.validate());
}

}  // namespace
}  // namespace qos
