#include "trace/generator.h"

#include <gtest/gtest.h>

#include "trace/rate_series.h"

namespace qos {
namespace {

TEST(Poisson, MeanRateConverges) {
  Trace t = generate_poisson(200, 60 * kUsPerSec, 1);
  EXPECT_NEAR(t.mean_rate_iops(), 200, 10);
}

TEST(Poisson, Deterministic) {
  Trace a = generate_poisson(100, 10 * kUsPerSec, 7);
  Trace b = generate_poisson(100, 10 * kUsPerSec, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].arrival, b[i].arrival);
}

TEST(Poisson, SeedChangesTrace) {
  Trace a = generate_poisson(100, 10 * kUsPerSec, 7);
  Trace b = generate_poisson(100, 10 * kUsPerSec, 8);
  // Sizes may coincide, but arrival patterns must differ.
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].arrival != b[i].arrival;
  EXPECT_TRUE(differs);
}

TEST(Mmpp, SingleStateBehavesLikePoisson) {
  WorkloadSpec spec;
  spec.states = {{300, 5.0}};
  Trace t = generate_workload(spec, 60 * kUsPerSec, 3);
  EXPECT_NEAR(t.mean_rate_iops(), 300, 20);
}

TEST(Mmpp, BurstStateRaisesPeak) {
  WorkloadSpec calm;
  calm.states = {{100, 1.0}};
  WorkloadSpec bursty;
  bursty.states = {{100, 1.0}, {2000, 1.0}};
  Trace t_calm = generate_workload(calm, 120 * kUsPerSec, 5);
  Trace t_bursty = generate_workload(bursty, 120 * kUsPerSec, 5);
  EXPECT_GT(t_bursty.peak_rate_iops(100'000),
            2 * t_calm.peak_rate_iops(100'000));
}

TEST(Mmpp, TransitionMatrixControlsOccupancy) {
  // Burst state nearly unreachable => mean close to base rate.
  WorkloadSpec spec;
  spec.states = {{100, 1.0}, {5000, 1.0}};
  spec.transition = {0.999, 0.001,   // from state 0
                     1.0, 0.0};      // from state 1: always back
  Trace t = generate_workload(spec, 300 * kUsPerSec, 11);
  EXPECT_LT(t.mean_rate_iops(), 300);
}

TEST(Mmpp, BatchOverlayCreatesClusters) {
  WorkloadSpec spec;
  spec.states = {{50, 5.0}};
  spec.batches = {.batches_per_sec = 0.5,
                  .mean_size = 20,
                  .spread_us = 1'000,
                  .giant_prob = 0,
                  .giant_factor = 1};
  Trace t = generate_workload(spec, 120 * kUsPerSec, 13);
  // Base alone can put at most a few requests in 2 ms; clusters put ~20.
  EXPECT_GT(t.peak_rate_iops(2'000), 2'500);
}

TEST(Mmpp, ArrivalsWithinDuration) {
  WorkloadSpec spec;
  spec.states = {{500, 0.5}, {1000, 0.5}};
  spec.batches = {.batches_per_sec = 1,
                  .mean_size = 10,
                  .spread_us = 5'000,
                  .giant_prob = 0.1,
                  .giant_factor = 3};
  const Time duration = 30 * kUsPerSec;
  Trace t = generate_workload(spec, duration, 17);
  for (const auto& r : t) {
    EXPECT_GE(r.arrival, 0);
    EXPECT_LT(r.arrival, duration);
  }
}

TEST(BModel, HigherBiasIsBurstier) {
  Trace smooth = generate_bmodel(500, 0.55, 16, 120 * kUsPerSec, 19);
  Trace bursty = generate_bmodel(500, 0.85, 16, 120 * kUsPerSec, 19);
  EXPECT_GT(bursty.peak_rate_iops(1'000'000),
            smooth.peak_rate_iops(1'000'000));
}

TEST(BModel, RequestCountMatchesMeanRate) {
  Trace t = generate_bmodel(100, 0.7, 12, 60 * kUsPerSec, 23);
  EXPECT_EQ(t.size(), 6000u);
}

TEST(BModel, HalfBiasIsNearUniform) {
  Trace t = generate_bmodel(1000, 0.5, 14, 60 * kUsPerSec, 29);
  auto summary = summarize(rate_series(t, 1'000'000));
  EXPECT_LT(summary.peak_iops, 2.0 * summary.mean_iops);
}

TEST(ParetoOnOff, GeneratesBusyAndIdle) {
  Trace t = generate_pareto_onoff(1000, 1.5, 0.5, 2.0, 300 * kUsPerSec, 31);
  ASSERT_GT(t.size(), 100u);
  // Mean rate well below the on-rate because of idle gaps.
  EXPECT_LT(t.mean_rate_iops(), 800);
  EXPECT_GT(t.peak_rate_iops(100'000), 500);
}

TEST(Addresses, SequentialRunsRespectProbability) {
  AddressSpec addr;
  addr.sequential_prob = 1.0;  // always sequential after the first jump
  addr.size_blocks = 8;
  Trace t = generate_poisson(100, 10 * kUsPerSec, 37, addr);
  ASSERT_GT(t.size(), 10u);
  int sequential = 0;
  for (std::size_t i = 1; i < t.size(); ++i)
    if (t[i].lba == t[i - 1].lba + 8) ++sequential;
  EXPECT_GE(sequential + 1, static_cast<int>(t.size()) - 1);
}

TEST(Addresses, WriteFractionHonored) {
  AddressSpec addr;
  addr.write_fraction = 1.0;
  Trace t = generate_poisson(100, 10 * kUsPerSec, 41, addr);
  for (const auto& r : t) EXPECT_TRUE(r.is_write);
}

}  // namespace
}  // namespace qos
