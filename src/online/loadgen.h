// Multi-threaded load generator for online::Shaper.
//
// Drives a Shaper with the arrival structure of a Trace (an SPC file, an
// MMPP preset, anything trace/) from several worker threads and measures
// the admission hot path the way a storage front-end would experience it:
// per-decision latency (p50/p99/p999 ns, sampled around each admit call)
// and sustained decisions per second.  Two loop disciplines:
//
//   closed loop (target_iops == 0)  every thread admits as fast as the
//     Shaper lets it — the saturation throughput measurement;
//   open loop   (target_iops > 0)   arrivals are paced so the aggregate
//     rate matches the target while keeping the trace's inter-arrival
//     shape — the latency-under-load measurement.
//
// Workers also drain: after each admission they poll dispatch and complete
// finished work against a simulated backend of `drain_iops` (0 = infinitely
// fast), so queue censuses move and both admit paths (Q1 and Q2) stay
// exercised.  All workers share the one Shaper; its internal lock is the
// serialization point and its cost is part of what is measured.
//
// Determinism: the generator issues exactly `requests` decisions split
// across threads regardless of thread count (the smoke test pins this);
// the Q1/Q2 split under wall-clock time is timing-dependent by nature.
#pragma once

#include <cstdint>
#include <vector>

#include "online/shaper.h"
#include "trace/trace.h"

namespace qos::online {

struct LoadGenOptions {
  int threads = 1;             ///< worker threads (>= 1)
  std::uint64_t requests = 0;  ///< total admissions; 0 = one pass (trace size)
  double target_iops = 0;      ///< open-loop aggregate pacing; 0 = closed loop
  std::uint64_t batch = 1;     ///< admit_batch size; 1 = single-request admit
  /// Simulated backend rate each busy server drains at (IOPS); 0 completes
  /// dispatched work immediately (infinitely fast backend).
  double drain_iops = 0;
  /// Cap on retained latency samples (memory bound for giant runs); once
  /// full, later decisions go unsampled but are still counted.
  std::size_t max_latency_samples = 1 << 22;
};

struct LoadGenResult {
  std::uint64_t decisions = 0;
  std::uint64_t admitted_q1 = 0;
  std::uint64_t admitted_q2 = 0;
  std::uint64_t shed = 0;
  std::uint64_t completions = 0;
  double wall_seconds = 0;
  double decisions_per_sec = 0;

  /// Admission-decision latency in nanoseconds (batch mode: elapsed /
  /// batch size, one sample per request).
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  std::uint64_t samples = 0;
};

/// Run `options.requests` admissions against `shaper`, drawing request
/// shape and (open loop) inter-arrival structure from `arrivals` (cycled
/// when shorter; must be non-empty).  Blocks until every thread is done.
LoadGenResult run_loadgen(Shaper& shaper, const Trace& arrivals,
                          const LoadGenOptions& options);

}  // namespace qos::online
