// Integration tests: small-scale versions of the paper's experiments,
// asserting the qualitative shapes every figure/table relies on.
#include <gtest/gtest.h>

#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "core/consolidation.h"
#include "core/rtt.h"
#include "core/shaper.h"
#include "trace/presets.h"
#include "trace/rate_series.h"

namespace qos {
namespace {

// Short horizons keep CI fast; the bench binaries run the full-length
// versions.
constexpr Time kHorizon = 240 * kUsPerSec;

TEST(PaperShapes, Table1KneeExists) {
  // Exempting the top 10% slashes capacity; the last 1% is the expensive
  // part (paper Table 1).
  for (Workload w : {Workload::kWebSearch, Workload::kFinTrans,
                     Workload::kOpenMail}) {
    Trace t = preset_trace(w, kHorizon);
    const Time delta = from_ms(10);
    const double c90 = min_capacity(t, 0.90, delta).cmin_iops;
    const double c100 = min_capacity(t, 1.00, delta).cmin_iops;
    EXPECT_GT(c100, 1.5 * c90) << workload_long_name(w);
  }
}

TEST(PaperShapes, TightDeadlinesAmplifyTheKnee) {
  // Paper Section 4.1: the more aggressive the QoS, the greater the saving.
  // Longer horizon than the other tests: the effect is driven by rare dense
  // clusters (~2 per 240 s in FinTrans), so the short slice under-samples it.
  Trace t = preset_trace(Workload::kFinTrans, 1200 * kUsPerSec);
  const double knee_5ms = min_capacity(t, 1.0, from_ms(5)).cmin_iops /
                          min_capacity(t, 0.9, from_ms(5)).cmin_iops;
  const double knee_50ms = min_capacity(t, 1.0, from_ms(50)).cmin_iops /
                           min_capacity(t, 0.9, from_ms(50)).cmin_iops;
  EXPECT_GT(knee_5ms, knee_50ms);
}

TEST(PaperShapes, Figure2DecompositionSmoothsQ1) {
  // The Q1 stream after RTT is far smoother than the raw workload: its peak
  // window rate at 100 ms granularity is bounded near the planned capacity,
  // while the raw trace peaks several times higher.
  Trace t = preset_trace(Workload::kOpenMail, kHorizon);
  const Time delta = from_ms(10);
  const double cmin = min_capacity(t, 0.9, delta).cmin_iops;
  Decomposition d = rtt_decompose(t, cmin, delta);

  std::vector<Time> q1_arrivals;
  for (const auto& r : t)
    if (d.klass[r.seq] == ServiceClass::kPrimary)
      q1_arrivals.push_back(r.arrival);
  auto q1_peak = summarize(rate_series(q1_arrivals, 100'000)).peak_iops;
  const double raw_peak = t.peak_rate_iops(100'000);
  EXPECT_LT(q1_peak, raw_peak);
  // Q1 admissions are throttled by the queue bound: over any deadline-sized
  // window they can't exceed capacity + queue drain by much; at 100 ms
  // granularity that lands near cmin (allow 2.5x for window effects).
  EXPECT_LT(q1_peak, 2.5 * cmin);
}

TEST(PaperShapes, Figure4FcfsMissesTargetAtCmin) {
  // At C = Cmin(90%, delta), plain FCFS serves well under 90% within delta.
  for (Workload w : {Workload::kWebSearch, Workload::kFinTrans,
                     Workload::kOpenMail}) {
    Trace t = preset_trace(w, kHorizon);
    const Time delta = from_ms(10);
    const double cmin = min_capacity(t, 0.9, delta).cmin_iops;
    ShapingConfig config;
    config.policy = Policy::kFcfs;
    config.capacity_override_iops = cmin;
    config.headroom_override_iops = 0;
    config.delta = delta;
    ResponseStats stats(shape_and_run(t, config).sim.completions);
    EXPECT_LT(stats.fraction_within(delta), 0.9) << workload_long_name(w);
  }
}

TEST(PaperShapes, Figure6SchedulerOrdering) {
  // At equal total capacity: decomposed schedulers hit the 90% target, FCFS
  // doesn't; and the shaped schedulers' >1 s tail mass is smaller.
  Trace t = preset_trace(Workload::kWebSearch, kHorizon);
  const Time delta = from_ms(50);
  ShapingConfig config;
  config.fraction = 0.9;
  config.delta = delta;

  config.policy = Policy::kFcfs;
  ResponseStats fcfs(shape_and_run(t, config).sim.completions);

  for (Policy p : {Policy::kSplit, Policy::kFairQueue, Policy::kMiser}) {
    config.policy = p;
    ResponseStats shaped(shape_and_run(t, config).sim.completions);
    EXPECT_GT(shaped.fraction_within(delta), fcfs.fraction_within(delta))
        << policy_name(p);
    EXPECT_GE(shaped.fraction_within(delta), 0.88) << policy_name(p);
  }
}

TEST(PaperShapes, Figure6cMiserServesQ2BetterThanFairQueue) {
  // Miser's slack scheduling improves the overflow class relative to
  // FairQueue (paper: mean ~85-90%, max ~85% of FairQueue's).  Use the
  // paper's (95%, 50 ms) panel: at 90% on this short horizon both
  // schedulers run saturated and the comparison is noise.
  Trace t = preset_trace(Workload::kWebSearch, kHorizon);
  const Time delta = from_ms(50);
  ShapingConfig config;
  config.fraction = 0.95;
  config.delta = delta;

  config.policy = Policy::kFairQueue;
  ResponseStats fq_q2(shape_and_run(t, config).sim.completions,
                      ServiceClass::kOverflow);
  config.policy = Policy::kMiser;
  ResponseStats miser_q2(shape_and_run(t, config).sim.completions,
                         ServiceClass::kOverflow);
  ASSERT_FALSE(fq_q2.empty());
  ASSERT_FALSE(miser_q2.empty());
  EXPECT_LT(miser_q2.mean_us(), fq_q2.mean_us());
}

TEST(PaperShapes, Figure7ShapedAggregationAccurate) {
  // Same workload shifted and merged: the decomposed estimate is close,
  // the 100% estimate is loose.
  Trace a = preset_trace(Workload::kWebSearch, kHorizon);
  Trace b = a.shifted(1 * kUsPerSec).slice(1 * kUsPerSec, kHorizon);
  const Trace clients[] = {a, b};
  ConsolidationReport shaped = consolidate(clients, 0.9, from_ms(10));
  EXPECT_LT(shaped.relative_error(), 0.2);
}

TEST(PaperShapes, SplitWastesCapacityVsFairQueue) {
  // Split's dedicated overflow server can't borrow idle primary capacity, so
  // its overflow class fares worse than FairQueue's (paper Section 4.3:
  // "order of magnitude" on the full traces).
  Trace t = preset_trace(Workload::kFinTrans, kHorizon);
  const Time delta = from_ms(10);
  ShapingConfig config;
  config.fraction = 0.9;
  config.delta = delta;

  config.policy = Policy::kSplit;
  ResponseStats split_q2(shape_and_run(t, config).sim.completions,
                         ServiceClass::kOverflow);
  config.policy = Policy::kFairQueue;
  ResponseStats fq_q2(shape_and_run(t, config).sim.completions,
                      ServiceClass::kOverflow);
  ASSERT_FALSE(split_q2.empty());
  ASSERT_FALSE(fq_q2.empty());
  EXPECT_GT(split_q2.mean_us(), fq_q2.mean_us());
}

}  // namespace
}  // namespace qos
