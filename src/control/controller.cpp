#include "control/controller.h"

#include <algorithm>
#include <cmath>

#include "core/capacity.h"
#include "runner/hash.h"
#include "runner/parallel_capacity.h"
#include "trace/trace.h"
#include "util/check.h"

namespace qos {

QosController::QosController(ControllerConfig config,
                             std::vector<double> initial_iops,
                             double total_iops, ResultCache* cache,
                             ThreadPool* pool)
    : config_(config),
      allocation_(std::move(initial_iops)),
      tenants_(allocation_.size()),
      breached_(allocation_.size(), false),
      total_(total_iops),
      budget_(total_iops - overflow_headroom_iops(config.delta)),
      cache_(cache),
      pool_(pool) {
  QOS_EXPECTS(!allocation_.empty());
  QOS_EXPECTS(total_iops > 0);
  QOS_EXPECTS(config.fraction > 0 && config.fraction <= 1);
  QOS_EXPECTS(config.delta > 0);
  QOS_EXPECTS(config.epoch > 0);
  QOS_EXPECTS(config.demand_window >= config.epoch);
  QOS_EXPECTS(config.min_share_iops > 0);
  QOS_EXPECTS(config.max_share_fraction > 0 && config.max_share_fraction <= 1);
  QOS_EXPECTS(config.step_fraction > 0);
  QOS_EXPECTS(config.hysteresis >= 0);
  QOS_EXPECTS(config.breach_boost >= 1);
  QOS_EXPECTS(budget_ > 0);
  for (std::size_t i = 0; i < allocation_.size(); ++i) {
    QOS_EXPECTS(allocation_[i] > 0);
    tenants_[i].demand_iops = allocation_[i];
    tenants_[i].last_cmin = allocation_[i];
  }
}

void QosController::on_event(const Event& e) {
  switch (e.kind) {
    case EventKind::kArrival: {
      if (e.client < tenants_.size())
        tenants_[e.client].arrivals.push_back(e.time);
      break;
    }
    case EventKind::kSlaBreach:
    case EventKind::kSlaRecover: {
      if (e.client >= breached_.size()) break;
      const bool breach = e.kind == EventKind::kSlaBreach;
      if (breached_[e.client] != breach) {
        breached_[e.client] = breach;
        breach_changed_ = true;
      }
      break;
    }
    default:
      break;
  }
}

void QosController::set_health(double health) {
  health_ = std::clamp(health, 0.0, 1.0);
}

double QosController::solve_demand(std::size_t t, Time now) {
  TenantState& state = tenants_[t];
  const Time window_start = now - config_.demand_window;
  std::vector<Request> requests;
  requests.reserve(state.arrivals.size());
  for (Time arrival : state.arrivals) {
    Request r;
    r.arrival = arrival > window_start ? arrival - window_start : 0;
    requests.push_back(r);
  }
  const Trace window(std::move(requests));

  // Honest warm-start bracket: hints assert knowledge, so establish it by
  // probing the previous answer against *this* window before asserting
  // anything (see CapacityHint).  Feasible there => upper bound; infeasible
  // => lower bound, then expand geometrically until feasible.
  CapacityHint hint;
  const std::int64_t c0 = std::llround(state.last_cmin);
  if (c0 >= 1) {
    if (fraction_guaranteed(window, static_cast<double>(c0),
                            config_.delta) >= config_.fraction) {
      hint.feasible_at = c0;
    } else {
      hint.infeasible_below = c0;
      std::int64_t hi = c0 * 2;
      while (hi < std::int64_t{1} << 40) {
        if (fraction_guaranteed(window, static_cast<double>(hi),
                                config_.delta) >= config_.fraction) {
          hint.feasible_at = hi;
          break;
        }
        hint.infeasible_below = hi;
        hi *= 2;
      }
    }
  }
  const Digest digest = hash_trace(window);
  const CapacityResult result = min_capacity_cached(
      window, config_.fraction, config_.delta, cache_, &digest, hint);
  state.last_cmin = result.cmin_iops;
  return result.cmin_iops;
}

const std::vector<double>& QosController::run_epoch(Time now) {
  ++stats_.epochs;
  const std::size_t n = tenants_.size();

  // Evict arrivals that fell out of the demand window, then decide which
  // tenants have enough fresh signal to re-solve.
  const Time window_start = now - config_.demand_window;
  std::vector<std::size_t> to_solve;
  for (std::size_t i = 0; i < n; ++i) {
    std::deque<Time>& arrivals = tenants_[i].arrivals;
    while (!arrivals.empty() && arrivals.front() <= window_start)
      arrivals.pop_front();
    if (arrivals.size() >= config_.min_window_arrivals) {
      to_solve.push_back(i);
    } else {
      ++stats_.unstable_windows;  // keep the previous demand estimate
    }
  }

  // Fan the demand solves out; results land by index, so the demands vector
  // is identical whether pool_ is null, single- or multi-threaded.
  std::vector<double> solved;
  if (pool_ != nullptr) {
    solved = pool_->parallel_map(to_solve.size(), [&](std::size_t k) {
      return solve_demand(to_solve[k], now);
    });
  } else {
    solved.reserve(to_solve.size());
    for (std::size_t k = 0; k < to_solve.size(); ++k)
      solved.push_back(solve_demand(to_solve[k], now));
  }
  stats_.resolves += to_solve.size();
  for (std::size_t k = 0; k < to_solve.size(); ++k) {
    if (!std::isfinite(solved[k]) || solved[k] <= 0) {
      ++stats_.fallbacks;  // abandon the epoch, keep the last-good plan
      return allocation_;
    }
    tenants_[to_solve[k]].demand_iops = solved[k];
  }

  // Distribute the health-scaled budget: boost breached tenants, clamp to
  // the per-tenant guardrails, proportionally scale down when
  // oversubscribed (floors re-applied, so the scaled sum may exceed the
  // budget by at most n * min_share — the admission bound quantisation
  // absorbs that).
  const double budget =
      std::max(budget_ * health_,
               config_.min_share_iops * static_cast<double>(n));
  const double cap =
      std::max(config_.max_share_fraction * budget, config_.min_share_iops);
  std::vector<double> desired(n);
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double d = tenants_[i].demand_iops;
    if (breached_[i]) d *= config_.breach_boost;
    d = std::clamp(d, config_.min_share_iops, cap);
    desired[i] = d;
    sum += d;
  }
  if (sum > budget) {
    const double scale = budget / sum;
    for (double& d : desired) d = std::max(config_.min_share_iops, d * scale);
  }

  // Bounded step toward the desired plan, and hysteresis: when nothing
  // breach-related changed and every desired move is relatively small,
  // skip the epoch entirely.
  std::vector<double> next(n);
  double max_rel_move = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double cur = allocation_[i];
    const double step = std::max(config_.step_fraction * cur, 1.0);
    next[i] = cur + std::clamp(desired[i] - cur, -step, step);
    max_rel_move =
        std::max(max_rel_move, std::abs(desired[i] - cur) / std::max(cur, 1.0));
  }
  if (!breach_changed_ && max_rel_move < config_.hysteresis) {
    ++stats_.skipped;
    return allocation_;
  }
  breach_changed_ = false;
  allocation_ = std::move(next);
  ++stats_.applied;
  return allocation_;
}

}  // namespace qos
