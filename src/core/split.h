// Split recombination (paper Section 3.2): the overflow class is served by a
// dedicated second server.  Server 0 (capacity Cmin) drains Q1; server 1
// (capacity dC) drains Q2.  No sharing: when either server idles its
// capacity is wasted even if the other class has backlog — the statistical
// multiplexing penalty the paper quantifies in Figure 6(c).
#pragma once

#include "core/decomposing_scheduler.h"

namespace qos {

class SplitScheduler final : public DecomposingScheduler {
 public:
  SplitScheduler(double admission_capacity_iops, Time delta)
      : DecomposingScheduler(admission_capacity_iops, delta) {}

  int server_count() const override { return 2; }

  std::optional<Dispatch> next_for(int server, Time now) override {
    QOS_EXPECTS(server == 0 || server == 1);
    return server == 0 ? pop_q1(now) : pop_q2(now);
  }
};

}  // namespace qos
