// Gnuplot artifact emission for the figure benches.
//
// Each figure bench prints its series to stdout (the reproduction record);
// passing `--gnuplot <dir>` additionally writes a <name>.dat with one block
// per series and a ready-to-run <name>.gp script, so the paper's plots can
// be regenerated with a stock gnuplot install.
#pragma once

#include <string>
#include <vector>

namespace qos {

class GnuplotWriter {
 public:
  struct Point {
    double x = 0;
    double y = 0;
  };

  /// Add a named series; plotted in insertion order.
  void add_series(std::string name, std::vector<Point> points);

  /// Axis labels / title / scales for the generated script.
  void set_title(std::string title) { title_ = std::move(title); }
  void set_labels(std::string x, std::string y) {
    xlabel_ = std::move(x);
    ylabel_ = std::move(y);
  }
  void set_logscale_x(bool v) { logscale_x_ = v; }

  /// Contents of the .dat file: one double-blank-separated block per
  /// series, each preceded by a "# name" comment line.
  std::string dat_content() const;

  /// Contents of the .gp script plotting every series from `<base>.dat`.
  std::string script_content(const std::string& base) const;

  /// Write `<dir>/<base>.dat` and `<dir>/<base>.gp`.  Aborts if the files
  /// cannot be created.
  void write(const std::string& dir, const std::string& base) const;

  std::size_t series_count() const { return series_.size(); }

 private:
  struct Series {
    std::string name;
    std::vector<Point> points;
  };

  std::vector<Series> series_;
  std::string title_;
  std::string xlabel_ = "x";
  std::string ylabel_ = "y";
  bool logscale_x_ = false;
};

}  // namespace qos
