// Ablation: offload-pool size and routing (the Everest comparison).
//
// Paper Section 2.1 contrasts recombination on the shared server against
// offloading the overflow to separate physical servers "similar in principle
// to the write offloading strategy [Everest]".  This bench sweeps the pool:
// 1, 2 and 4 offload targets (splitting the same total overflow capacity,
// and alternatively scaling it), with round-robin vs least-loaded routing,
// against the paper's shared-server alternatives (FairQueue, Miser).
#include <cstdio>
#include <vector>

#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "core/offload.h"
#include "core/shaper.h"
#include "sim/simulator.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

struct Row {
  std::string name;
  double q1_within = 0;
  double q2_mean_ms = 0;
  double q2_max_ms = 0;
};

Row measure(const std::string& name, const SimResult& sim, Time delta) {
  ResponseStats q1(sim.completions, ServiceClass::kPrimary);
  ResponseStats q2(sim.completions, ServiceClass::kOverflow);
  Row row;
  row.name = name;
  row.q1_within = q1.empty() ? 1.0 : q1.fraction_within(delta);
  row.q2_mean_ms = q2.empty() ? 0 : q2.mean_us() / 1000.0;
  row.q2_max_ms = q2.empty() ? 0 : to_ms(q2.max());
  return row;
}

void run() {
  const Time delta = from_ms(10);
  const Trace trace = preset_trace(Workload::kOpenMail, 1200 * kUsPerSec);
  const double cmin = min_capacity(trace, 0.90, delta).cmin_iops;
  const double dc = overflow_headroom_iops(delta);
  std::printf("OpenMail (1200 s), Cmin(90%%, 10 ms) = %.0f IOPS, dC = %.0f\n\n",
              cmin, dc);

  std::vector<Row> rows;

  auto run_offload = [&](const std::string& name, int targets,
                         double per_target, OffloadRouting routing) {
    OffloadScheduler sched(cmin, delta, targets, routing);
    std::vector<ConstantRateServer> servers;
    servers.emplace_back(cmin);
    for (int i = 0; i < targets; ++i) servers.emplace_back(per_target);
    std::vector<Server*> ptrs;
    for (auto& s : servers) ptrs.push_back(&s);
    rows.push_back(measure(name, simulate(trace, sched, ptrs), delta));
  };

  // Same total overflow capacity dC, split across the pool.
  run_offload("offload x1 (Split)", 1, dc, OffloadRouting::kRoundRobin);
  run_offload("offload x2, dC/2 each, RR", 2, dc / 2,
              OffloadRouting::kRoundRobin);
  run_offload("offload x4, dC/4 each, RR", 4, dc / 4,
              OffloadRouting::kRoundRobin);
  run_offload("offload x4, dC/4 each, JSQ", 4, dc / 4,
              OffloadRouting::kLeastLoaded);
  // Everest-style: each target is a whole low-utilization disk (dC each).
  run_offload("offload x4, dC each, RR", 4, dc, OffloadRouting::kRoundRobin);

  // Shared-server alternatives at the same Cmin + dC budget.
  for (Policy p : {Policy::kFairQueue, Policy::kMiser}) {
    ShapingConfig config;
    config.policy = p;
    config.fraction = 0.90;
    config.delta = delta;
    config.capacity_override_iops = cmin;
    rows.push_back(
        measure(policy_name(p), shape_and_run(trace, config).sim, delta));
  }

  AsciiTable table;
  table.add("configuration", "Q1 within 10ms", "Q2 mean (ms)", "Q2 max (ms)");
  for (const auto& row : rows)
    table.add(row.name, format_double(100 * row.q1_within, 2) + "%",
              format_double(row.q2_mean_ms, 1),
              format_double(row.q2_max_ms, 0));
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nhow the pool is split barely matters at a fixed dC budget — the\n"
      "overflow class is capacity-bound either way; the shared-server\n"
      "recombiners (FairQueue/Miser) serve Q2 ~2x faster on the same budget\n"
      "by borrowing the primary's idle capacity (the paper's statistical-\n"
      "multiplexing argument against Split), and only whole-disk Everest\n"
      "targets — extra capacity, not a reshuffled budget — beat them.\n");
}

}  // namespace

int main() {
  std::printf("Ablation: overflow offloading pool (Everest comparison)\n\n");
  run();
  return 0;
}
