// Disk + block cache composed into a simulator Server.
//
// Read hits cost `hit_time` (controller/DRAM latency).  Read misses pay the
// mechanical time; write-back victims add a second mechanical access.
// Writes are absorbed at `hit_time` (write-back caching) unless the miss
// path evicts dirty data.  The cache makes the service process
// state-dependent but still fully deterministic.
#pragma once

#include "disk/cache.h"
#include "disk/disk_model.h"
#include "sim/server.h"

namespace qos {

class CachedDiskServer final : public Server {
 public:
  struct Config {
    std::size_t cache_lines = 4'096;
    std::uint32_t line_blocks = 8;
    Time hit_time = 50;  ///< us — controller + DRAM
  };

  CachedDiskServer() : CachedDiskServer(DiskModel{}, Config{}) {}
  CachedDiskServer(DiskModel model, Config config)
      : model_(model),
        cache_(config.cache_lines, config.line_blocks),
        line_blocks_(config.line_blocks),
        hit_time_(config.hit_time) {}

  Time service_duration(const Request& r, Time now) override {
    Time total = 0;
    bool mechanical_done = false;
    for (std::uint64_t line : cache_.lines_of(r.lba, r.size_blocks)) {
      const auto outcome = cache_.access(line, r.is_write);
      if (outcome.hit || r.is_write) {
        total += hit_time_;
      } else if (!mechanical_done) {
        // One mechanical access fetches the whole request's lines.
        total += model_.service_time(r, now + total);
        mechanical_done = true;
      } else {
        total += hit_time_;  // subsequent lines ride the same access
      }
      if (outcome.writeback) {
        Request flush;
        flush.lba = outcome.evicted_lba;
        flush.size_blocks = line_blocks_;
        flush.is_write = true;
        total += model_.service_time(flush, now + total);
      }
    }
    return total > 0 ? total : 1;
  }

  const BlockCache& cache() const { return cache_; }
  const DiskModel& model() const { return model_; }

 private:
  DiskModel model_;
  BlockCache cache_;
  std::uint32_t line_blocks_;
  Time hit_time_;
};

}  // namespace qos
