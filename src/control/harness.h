// run_control_plane — one-call offline evaluation of the control plane.
//
// Plans a static per-tenant provision from a *profiling prefix* of each
// tenant's trace (the operator's view before deployment: regime shifts that
// happen later are exactly what the static plan cannot see), sizes one
// shared server at Σ cmin + overflow headroom, then runs the merged trace
// through a ControlledTenantScheduler under an optional fault schedule in
// one of three modes sharing the identical data path:
//
//   kStatic          — shares frozen at the plan (controller absent);
//   kLocalDegraded   — shares frozen, per-tenant bounds scale with monitored
//                      health (the PR 2 DegradedRtt reaction, no
//                      reallocation);
//   kController      — a QosController re-provisions shares every epoch.
//
// The outcome carries per-tenant deadline statistics and the headline
// number the bench gates on: tail_violation_fraction, the fraction of
// tenants whose guaranteed-class (Q1) within-δ fraction fell below the
// target f.  All-class within-δ fractions are reported alongside — in
// overload someone must miss no matter who allocates; what a controller
// can and must keep honest is the admitted guarantee.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "control/control_loop.h"
#include "control/controlled_scheduler.h"
#include "control/controller.h"
#include "fault/fault_schedule.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "runner/result_cache.h"
#include "runner/thread_pool.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace qos {

enum class ControlMode {
  kStatic = 0,
  kLocalDegraded,
  kController,
};

const char* control_mode_name(ControlMode mode);

struct ControlPlaneConfig {
  double fraction = 0.95;       ///< QoS target (plan, SLA tiers, controller)
  Time delta = from_ms(10);
  ControlMode mode = ControlMode::kStatic;
  FaultySchedule faults;        ///< empty = fault-free
  Time profile_window = 5 * kUsPerSec;  ///< static-plan prefix per tenant
  double capacity_scale = 1.0;  ///< scales the planned total (stress knob)

  ControllerConfig controller;  ///< epoch/guardrails (kController only);
                                ///< fraction/delta are overridden from above
  ControlledSchedulerConfig scheduler;  ///< monitor + local-degradation knobs
  SlaBreachConfig breach;       ///< per-tenant detector parameters

  // Observability (all borrowed, all nullable; must outlive the run).  The
  // tracer is chained onto `sink` at entry, mirroring ShapingConfig's
  // wire_sinks contract.
  MetricRegistry* registry = nullptr;
  EventSink* sink = nullptr;
  Tracer* tracer = nullptr;

  /// Memoizes planning and controller demand solves (nullable, borrowed).
  ResultCache* cache = nullptr;
  /// Fans out the *planning* searches (nullable, borrowed).  NOT handed to
  /// the controller: run_control_plane is itself commonly a pool work item
  /// (bench cells), and ThreadPool is not reentrant.
  ThreadPool* pool = nullptr;
};

struct TenantOutcome {
  std::uint64_t requests = 0;
  std::uint64_t q1_completions = 0;
  std::uint64_t q1_misses = 0;    ///< Q1 completions with response > delta
  std::uint64_t misses = 0;       ///< completions with response > delta
  double within_fraction = 1.0;   ///< all-class fraction within delta
  /// Within-delta fraction among Q1 completions — the graduated-QoS
  /// guarantee is on the admitted class, so this is what `violated` tests.
  double q1_within_fraction = 1.0;
  bool violated = false;          ///< q1_within_fraction < target fraction
  std::uint64_t breaches = 0;     ///< detector breach transitions
  Time time_in_breach = 0;
  double planned_iops = 0;        ///< static-plan share
  double final_iops = 0;          ///< share at end of run
};

struct ControlOutcome {
  SimResult sim;
  ShapingReport report;
  std::vector<TenantOutcome> tenants;

  double total_iops = 0;          ///< shared-server capacity used
  /// Headline: fraction of tenants whose *guaranteed-class* (Q1) within-δ
  /// fraction ended below the target — the paper's promise is on the
  /// admitted portion of each burst, the excess is explicitly best-effort.
  /// A mode that over-admits into Q1 beyond delivered capacity breaks this
  /// for everyone (the shared Q1 is FIFO); shedding honestly keeps it.
  double tail_violation_fraction = 0;
  /// Q1-classified completions missing the deadline / Q1 completions.
  double q1_miss_fraction = 0;
  std::uint64_t demotions = 0;

  // Controller activity (zero in the static/local modes).
  std::uint64_t epochs = 0;
  std::uint64_t applied = 0;
  std::uint64_t skipped = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t reprovisions = 0;
};

/// Run `tenants` (one trace per tenant) through the configured mode.
/// Deterministic in (tenants, config): single-threaded simulation; the pool
/// and cache change wall-clock only (bit-identical results, tests assert).
ControlOutcome run_control_plane(std::span<const Trace> tenants,
                                 const ControlPlaneConfig& config);

}  // namespace qos
