// run_loadgen determinism and accounting smoke tests.
//
// Wall-clock throughput is machine-dependent by nature; what must NOT be
// timing-dependent is the accounting: exactly `requests` decisions are
// issued regardless of thread count, every decision is Q1, Q2 or shed, and
// the percentile estimates are ordered.  These run with small request
// counts so the whole suite stays fast under TSan.
#include <gtest/gtest.h>

#include "online/loadgen.h"
#include "online/shaper.h"
#include "trace/generator.h"
#include "util/clock.h"

namespace qos {
namespace {

using online::LoadGenOptions;
using online::LoadGenResult;
using online::Shaper;
using online::ShaperOptions;

Trace arrivals() {
  WorkloadSpec spec;
  spec.states = {{500, 1.0}, {2'000, 0.3}};
  return generate_workload(spec, 5 * kUsPerSec, 99);
}

LoadGenResult run_with_threads(int threads, std::uint64_t batch,
                               double drain_iops = 0,
                               std::size_t max_q2_depth = 0) {
  ShaperOptions so;
  so.shaping.policy = Policy::kMiser;
  so.cmin_iops = 400;
  so.max_q2_depth = max_q2_depth;
  SteadyClock clock;
  Shaper shaper(so, clock);

  LoadGenOptions options;
  options.threads = threads;
  options.requests = 20'000;
  options.batch = batch;
  options.drain_iops = drain_iops;
  return online::run_loadgen(shaper, arrivals(), options);
}

void check_accounting(const LoadGenResult& r) {
  EXPECT_EQ(r.decisions, 20'000u);
  EXPECT_EQ(r.admitted_q1 + r.admitted_q2 + r.shed, r.decisions);
  EXPECT_LE(r.completions, r.decisions);
  EXPECT_GT(r.decisions_per_sec, 0);
  EXPECT_LE(r.p50_ns, r.p99_ns);
  EXPECT_LE(r.p99_ns, r.p999_ns);
  EXPECT_GT(r.samples, 0u);
}

TEST(OnlineLoadGen, DecisionCountsStableAcrossThreadCounts) {
  // The determinism contract: total decisions issued is exactly the
  // request count whether one thread or eight drive the shaper.  (The
  // Q1/Q2 split under wall-clock time is timing-dependent by design.)
  const LoadGenResult serial = run_with_threads(1, 1);
  const LoadGenResult parallel = run_with_threads(8, 1);
  check_accounting(serial);
  check_accounting(parallel);
  EXPECT_EQ(serial.decisions, parallel.decisions);
}

TEST(OnlineLoadGen, BatchModeIssuesEveryDecision) {
  const LoadGenResult r = run_with_threads(4, 64);
  check_accounting(r);
}

TEST(OnlineLoadGen, SimulatedBackendDrainCompletesWork) {
  // A finite-rate backend forces the dispatch/complete path through the
  // pending queue instead of the immediate-completion shortcut.
  const LoadGenResult r = run_with_threads(2, 1, /*drain_iops=*/200'000);
  check_accounting(r);
}

TEST(OnlineLoadGen, BoundedQ2ShedsUnderSaturation) {
  // Closed-loop admission floods a backend that drains 1000 IOPS; once Q1
  // (maxQ1 = 4) and the bounded Q2 fill, the flood must shed rather than
  // queue.
  const LoadGenResult r =
      run_with_threads(2, 1, /*drain_iops=*/1'000, /*max_q2_depth=*/64);
  check_accounting(r);
  EXPECT_GT(r.shed, 0u);
}

TEST(OnlineLoadGen, OpenLoopPacedRunIssuesEveryDecision) {
  ShaperOptions so;
  so.cmin_iops = 400;
  SteadyClock clock;
  Shaper shaper(so, clock);

  LoadGenOptions options;
  options.threads = 2;
  options.requests = 2'000;
  options.target_iops = 200'000;  // fast enough to finish in well under 1 s
  const LoadGenResult r = online::run_loadgen(shaper, arrivals(), options);
  EXPECT_EQ(r.decisions, 2'000u);
  EXPECT_EQ(r.admitted_q1 + r.admitted_q2 + r.shed, r.decisions);
}

}  // namespace
}  // namespace qos
