// Reproduces Figure 8: capacity required when multiplexing *different*
// workload pairs (WS+FT, FT+OM, OM+WS), delta = 10 ms.
//
//   (a) traditional 100% provisioning: sum-of-individual estimate vs the
//       real requirement of the merged trace (multiplexing gains);
//   (b,c) after 90% / 95% decomposition the estimate tracks the real value
//         closely (paper: errors of 0.05%-6%).
#include <cstdio>

#include "core/consolidation.h"
#include "core/statistical.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

void run_panel(double fraction) {
  const Time delta = from_ms(10);
  if (fraction == 1.0)
    std::printf("-- (a) traditional 100%% combine --\n");
  else
    std::printf("-- %.0f%% decomposition combine --\n", 100 * fraction);

  const std::pair<Workload, Workload> pairs[] = {
      {Workload::kWebSearch, Workload::kFinTrans},
      {Workload::kFinTrans, Workload::kOpenMail},
      {Workload::kOpenMail, Workload::kWebSearch}};

  AsciiTable table;
  table.add("Workloads", "Estimate", "Real", "ratio", "rel.err");
  for (const auto& [w1, w2] : pairs) {
    const Trace clients[] = {preset_trace(w1), preset_trace(w2)};
    ConsolidationReport report = consolidate(clients, fraction, delta);
    table.add(workload_name(w1) + " + " + workload_name(w2),
              format_double(report.estimate_iops, 0),
              format_double(report.actual_iops, 0),
              format_double(report.ratio(), 2),
              format_double(100 * report.relative_error(), 1) + "%");
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

// Related-work baseline (paper Section 5): Gaussian statistical envelopes.
// No deadline semantics — it bounds per-second demand overflow probability —
// so it under-provisions for tight deadlines while showing the same
// multiplexing gain the decomposition estimate captures with guarantees.
void run_statistical_baseline() {
  std::printf("-- statistical-envelope baseline (eps = 10%%, 1 s windows) --\n");
  const std::pair<Workload, Workload> pairs[] = {
      {Workload::kWebSearch, Workload::kFinTrans},
      {Workload::kFinTrans, Workload::kOpenMail},
      {Workload::kOpenMail, Workload::kWebSearch}};
  AsciiTable table;
  table.add("Workloads", "sum of individual", "pooled Gaussian", "gain");
  for (const auto& [w1, w2] : pairs) {
    const auto e1 = statistical_capacity(preset_trace(w1), kUsPerSec, 0.10);
    const auto e2 = statistical_capacity(preset_trace(w2), kUsPerSec, 0.10);
    const auto pooled = statistical_multiplex({e1, e2}, 0.10);
    const double sum = e1.capacity_iops + e2.capacity_iops;
    table.add(workload_name(w1) + " + " + workload_name(w2),
              format_double(sum, 0), format_double(pooled.capacity_iops, 0),
              format_double(100 * (1 - pooled.capacity_iops / sum), 1) + "%");
  }
  std::printf("%s\n", table.to_string().c_str());
}

int main() {
  std::printf("Figure 8: capacity for multiplexing different workloads\n\n");
  run_panel(1.0);
  run_panel(0.90);
  run_panel(0.95);
  run_statistical_baseline();
  return 0;
}
