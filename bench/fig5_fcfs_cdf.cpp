// Reproduces Figure 5: response-time CDF of FCFS at the capacities for which
// RTT guarantees 95% and 99% of the workload with a 50 ms deadline.
//
// The paper: raising the planned fraction raises capacity, which improves
// FCFS — at 99% FCFS gets close (81/90/97% for WS/FT/OM) but still misses
// the target the decomposed scheduler achieves by construction.
#include <cstdio>

#include <span>

#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "core/fcfs.h"
#include "sim/simulator.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

void run_panel(double fraction) {
  const Time delta = from_ms(50);
  std::printf("-- Target: (%.0f%%, 50 ms) --\n", 100 * fraction);
  AsciiTable table;
  table.add("Workload", "C (IOPS)", "FCFS within 50ms", "target");
  for (Workload w : {Workload::kWebSearch, Workload::kFinTrans,
                     Workload::kOpenMail}) {
    const Trace trace = preset_trace(w);
    const double cmin = min_capacity(trace, fraction, delta).cmin_iops;
    FcfsScheduler fcfs;
    ConstantRateServer server(cmin);
    SimResult sim = simulate(trace, fcfs, server);
    ResponseStats stats(sim.completions);
    table.add(workload_name(w), format_double(cmin, 0),
              format_double(100 * stats.fraction_within(delta), 1) + "%",
              format_double(100 * fraction, 1) + "%");
    // CDF from 10 ms up (the 95/99% panels saturate below that).
    char label[64];
    std::snprintf(label, sizeof(label), "%s C=%.0f",
                  workload_name(w).c_str(), cmin);
    std::printf("%s\n",
                format_cdf(stats, label, std::span(kCdfBoundsMs).subspan(3))
                    .c_str());
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Figure 5: response-time CDF of FCFS at Cmin(f, 50 ms), f in "
      "{95%%, 99%%}\n\n");
  run_panel(0.95);
  run_panel(0.99);
  return 0;
}
