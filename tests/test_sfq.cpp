#include "fq/sfq.h"

#include <gtest/gtest.h>

#include <vector>

namespace qos {
namespace {

TEST(Sfq, RoundRobinForEqualWeights) {
  SfqScheduler sfq({1.0, 1.0});
  for (std::uint64_t i = 0; i < 3; ++i) {
    sfq.enqueue(0, 100 + i, 1.0, 0);
    sfq.enqueue(1, 200 + i, 1.0, 0);
  }
  std::vector<int> order;
  while (auto d = sfq.dequeue(0)) order.push_back(d->flow);
  // Equal weights, simultaneous backlog: alternation.
  ASSERT_EQ(order.size(), 6u);
  for (std::size_t i = 2; i < order.size(); ++i)
    EXPECT_NE(order[i], order[i - 1]);
}

TEST(Sfq, ProportionalShareUnderBacklog) {
  // Weights 3:1 — over 40 dispatches flow 0 should get ~30.
  SfqScheduler sfq({3.0, 1.0});
  for (std::uint64_t i = 0; i < 40; ++i) {
    sfq.enqueue(0, i, 1.0, 0);
    sfq.enqueue(1, 1000 + i, 1.0, 0);
  }
  int flow0 = 0;
  for (int i = 0; i < 40; ++i) {
    auto d = sfq.dequeue(0);
    ASSERT_TRUE(d);
    if (d->flow == 0) ++flow0;
  }
  EXPECT_NEAR(flow0, 30, 2);
}

TEST(Sfq, WorkConservingWhenOneFlowIdle) {
  SfqScheduler sfq({1.0, 9.0});
  for (std::uint64_t i = 0; i < 5; ++i) sfq.enqueue(0, i, 1.0, 0);
  for (int i = 0; i < 5; ++i) {
    auto d = sfq.dequeue(0);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->flow, 0);
  }
  EXPECT_TRUE(sfq.empty());
}

TEST(Sfq, FifoWithinFlow) {
  SfqScheduler sfq({1.0, 1.0});
  for (std::uint64_t i = 0; i < 10; ++i) sfq.enqueue(0, i, 1.0, 0);
  std::uint64_t prev = 0;
  bool first = true;
  while (auto d = sfq.dequeue(0)) {
    if (!first) {
      EXPECT_EQ(d->handle, prev + 1);
    }
    prev = d->handle;
    first = false;
  }
}

TEST(Sfq, NewlyBacklogedFlowJoinsAtVirtualTime) {
  // Flow 1 idles while flow 0 is served; when flow 1 wakes it must not be
  // owed the missed history (start tag jumps to current v).
  SfqScheduler sfq({1.0, 1.0});
  for (std::uint64_t i = 0; i < 10; ++i) sfq.enqueue(0, i, 1.0, 0);
  for (int i = 0; i < 10; ++i) (void)sfq.dequeue(0);
  EXPECT_GT(sfq.virtual_time(), 0.0);
  sfq.enqueue(1, 99, 1.0, 0);
  sfq.enqueue(0, 100, 1.0, 0);
  // Flow 1's fresh request must not pre-empt more than one flow-0 request.
  auto d1 = sfq.dequeue(0);
  auto d2 = sfq.dequeue(0);
  ASSERT_TRUE(d1 && d2);
  EXPECT_NE(d1->flow, d2->flow);
}

TEST(Sfq, BacklogCounts) {
  SfqScheduler sfq({1.0, 1.0});
  sfq.enqueue(0, 1, 1.0, 0);
  sfq.enqueue(0, 2, 1.0, 0);
  EXPECT_EQ(sfq.backlog(0), 2u);
  EXPECT_EQ(sfq.backlog(1), 0u);
  (void)sfq.dequeue(0);
  EXPECT_EQ(sfq.backlog(0), 1u);
}

TEST(Sfq, EmptyDequeueReturnsNullopt) {
  SfqScheduler sfq({1.0});
  EXPECT_FALSE(sfq.dequeue(0).has_value());
  EXPECT_TRUE(sfq.empty());
}

}  // namespace
}  // namespace qos
