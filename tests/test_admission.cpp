#include "core/admission.h"

#include <gtest/gtest.h>

#include "trace/generator.h"

namespace qos {
namespace {

class AdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadSpec bursty;
    bursty.states = {{150, 2.0}};
    bursty.batches = {.batches_per_sec = 0.1,
                      .mean_size = 20,
                      .spread_us = 1'000,
                      .giant_prob = 0,
                      .giant_factor = 1,
                      .max_size = 30};
    for (std::uint64_t i = 0; i < 4; ++i)
      profiles_.push_back(
          generate_workload(bursty, 120 * kUsPerSec, 300 + i));
  }

  std::vector<Trace> profiles_;
};

TEST_F(AdmissionTest, AdmitsWithinCapacity) {
  std::vector<TenantRequest> tenants;
  for (std::size_t i = 0; i < profiles_.size(); ++i)
    tenants.push_back(TenantRequest{"t" + std::to_string(i), &profiles_[i],
                                    SlaTier{0.9, from_ms(20)}});
  AdmissionReport report = admit_tenants(tenants, 10'000);
  EXPECT_EQ(report.admitted_count, 4);
  EXPECT_LE(report.reserved_iops + report.headroom_iops, 10'000);
  for (const auto& d : report.decisions) {
    EXPECT_TRUE(d.admitted);
    EXPECT_GT(d.reserved_iops, 0);
  }
}

TEST_F(AdmissionTest, RejectsWhenFull) {
  std::vector<TenantRequest> tenants;
  for (std::size_t i = 0; i < profiles_.size(); ++i)
    tenants.push_back(TenantRequest{"t" + std::to_string(i), &profiles_[i],
                                    SlaTier{0.9, from_ms(20)}});
  // Capacity for roughly one tenant only.
  const double one =
      min_capacity(profiles_[0], 0.9, from_ms(20)).cmin_iops +
      overflow_headroom_iops(from_ms(20));
  AdmissionReport report = admit_tenants(tenants, one + 1);
  EXPECT_GE(report.admitted_count, 1);
  EXPECT_LT(report.admitted_count, 4);
  EXPECT_FALSE(report.decisions.back().admitted);
  EXPECT_DOUBLE_EQ(report.decisions.back().reserved_iops, 0);
}

TEST_F(AdmissionTest, GraduationAdmitsMoreTenantsThanWorstCase) {
  // The paper's headline admission-control benefit: on the same server,
  // graduated (90%) reservations admit more bursty tenants than worst-case
  // (100%) reservations.
  std::vector<TenantRequest> tenants;
  for (std::size_t i = 0; i < profiles_.size(); ++i)
    tenants.push_back(TenantRequest{"t" + std::to_string(i), &profiles_[i],
                                    SlaTier{0.9, from_ms(20)}});
  // Size the server to fit all four decomposed tenants but far fewer
  // worst-case ones.
  double shaped_total = overflow_headroom_iops(from_ms(20));
  for (const auto& p : profiles_)
    shaped_total += min_capacity(p, 0.9, from_ms(20)).cmin_iops;
  AdmissionReport report = admit_tenants(tenants, shaped_total);
  EXPECT_EQ(report.admitted_count, 4);
  EXPECT_LT(report.worst_case_admitted_count, report.admitted_count);
  EXPECT_GT(report.utilization(), 0.99);
}

TEST_F(AdmissionTest, SharedHeadroomIsMaxNotSum) {
  std::vector<TenantRequest> tenants;
  tenants.push_back(
      TenantRequest{"tight", &profiles_[0], SlaTier{0.9, from_ms(10)}});
  tenants.push_back(
      TenantRequest{"loose", &profiles_[1], SlaTier{0.9, from_ms(50)}});
  AdmissionReport report = admit_tenants(tenants, 10'000);
  EXPECT_DOUBLE_EQ(report.headroom_iops,
                   overflow_headroom_iops(from_ms(10)));
}

TEST(Admission, EmptyTenantList) {
  AdmissionReport report = admit_tenants({}, 1000);
  EXPECT_EQ(report.admitted_count, 0);
  EXPECT_DOUBLE_EQ(report.utilization(), 0);
}

}  // namespace
}  // namespace qos
