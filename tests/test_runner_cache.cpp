// ResultCache: hit/miss accounting, LRU eviction, disk tier, and the
// field-by-field invalidation granularity of the sweep cell digest.
#include "runner/result_cache.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "runner/hash.h"
#include "runner/sweep.h"
#include "trace/generator.h"

namespace qos {
namespace {

Digest key_of(const std::string& s) {
  ContentHasher h;
  h.str(s);
  return h.digest();
}

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("qos_cache_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

TEST(ResultCache, MissThenHit) {
  ResultCache cache;
  const Digest k = key_of("a");
  EXPECT_FALSE(cache.get(k).has_value());
  cache.put(k, "payload");
  const auto hit = cache.get(k);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.memory_hits, 1u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(ResultCache, LruEvictsOldestFirst) {
  ResultCache::Config config;
  config.memory_entries = 2;
  ResultCache cache(config);
  cache.put(key_of("a"), "A");
  cache.put(key_of("b"), "B");
  ASSERT_TRUE(cache.get(key_of("a")).has_value());  // a is now most recent
  cache.put(key_of("c"), "C");                      // evicts b
  EXPECT_TRUE(cache.get(key_of("a")).has_value());
  EXPECT_FALSE(cache.get(key_of("b")).has_value());
  EXPECT_TRUE(cache.get(key_of("c")).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, DiskTierSurvivesMemoryClear) {
  TempDir dir;
  ResultCache::Config config;
  config.disk_dir = dir.str();
  ResultCache cache(config);
  cache.put(key_of("x"), "bytes on disk");
  cache.clear_memory();
  const auto hit = cache.get(key_of("x"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "bytes on disk");
  EXPECT_EQ(cache.stats().disk_hits, 1u);
}

TEST(ResultCache, DiskTierSharedAcrossInstances) {
  TempDir dir;
  ResultCache::Config config;
  config.disk_dir = dir.str();
  {
    ResultCache writer(config);
    writer.put(key_of("persist"), "v1");
  }
  ResultCache reader(config);
  const auto hit = reader.get(key_of("persist"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "v1");
}

TEST(ResultCache, CorruptDiskEntryIsAMiss) {
  TempDir dir;
  ResultCache::Config config;
  config.disk_dir = dir.str();
  ResultCache cache(config);
  cache.put(key_of("c"), "good");
  cache.clear_memory();
  // Truncate every file in the tier: a torn entry must read as a miss (the
  // caller recomputes), never as bad data.
  for (const auto& entry : std::filesystem::directory_iterator(dir.str()))
    std::ofstream(entry.path(), std::ios::trunc).close();
  EXPECT_FALSE(cache.get(key_of("c")).has_value());
}

TEST(ResultCache, DistinctKeysDoNotCollide) {
  ResultCache cache;
  cache.put(key_of("k1"), "v1");
  cache.put(key_of("k2"), "v2");
  EXPECT_EQ(*cache.get(key_of("k1")), "v1");
  EXPECT_EQ(*cache.get(key_of("k2")), "v2");
}

// --- invalidation granularity ----------------------------------------------
//
// Flipping exactly one input field must change the digest (the flipped cell
// recomputes) and flipping it back must restore it (everything else keeps
// hitting).  This is the cache's correctness contract from the issue.

class SweepDigestTest : public ::testing::Test {
 protected:
  SweepDigestTest() : trace_(generate_poisson(200, 2 * kUsPerSec, 7)) {
    cell_.label = "probe";
    cell_.trace_name = "poisson";
    cell_.trace = &trace_;
    cell_.shaping.policy = Policy::kMiser;
    cell_.shaping.fraction = 0.95;
    cell_.shaping.delta = from_ms(10);
    cell_.seed = 42;
    trace_digest_ = hash_trace(trace_);
  }

  Digest digest() const { return sweep_cell_digest(cell_, trace_digest_); }

  Trace trace_;
  Digest trace_digest_;
  SweepCell cell_;
};

TEST_F(SweepDigestTest, StableAcrossCalls) {
  const Digest a = digest();
  const Digest b = digest();
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_EQ(a.lo, b.lo);
}

TEST_F(SweepDigestTest, EachFieldInvalidatesIndependently) {
  const Digest base = digest();
  auto differs = [&](const char* what) {
    const Digest d = digest();
    EXPECT_FALSE(d.hi == base.hi && d.lo == base.lo) << what;
  };

  auto saved = cell_;
  cell_.shaping.fraction = 0.90;
  differs("fraction");
  cell_ = saved;

  cell_.shaping.delta = from_ms(20);
  differs("delta");
  cell_ = saved;

  cell_.shaping.policy = Policy::kFcfs;
  differs("policy");
  cell_ = saved;

  cell_.shaping.capacity_override_iops = 500;
  differs("capacity override");
  cell_ = saved;

  cell_.seed = 43;
  differs("seed");
  cell_ = saved;

  cell_.faults.brownout(kUsPerSec, 2 * kUsPerSec, 0.3);
  differs("fault schedule");
  cell_ = saved;

  cell_.use_degraded_admission = true;
  differs("degraded admission");
  cell_ = saved;

  cell_.use_chaos = true;
  differs("chaos routing");
  cell_ = saved;

  cell_.fault_intensity = 0.5;
  differs("fault intensity");
  cell_ = saved;

  cell_.custom_salt = 99;
  differs("custom salt");
  cell_ = saved;

  cell_.server_iops = {100.0};
  differs("server pool");
  cell_ = saved;

  trace_digest_.lo ^= 1;
  differs("trace bytes");

  // Restored state must reproduce the original digest exactly.
  trace_digest_ = hash_trace(trace_);
  const Digest restored = digest();
  EXPECT_EQ(restored.hi, base.hi);
  EXPECT_EQ(restored.lo, base.lo);
}

TEST_F(SweepDigestTest, FlippingOneGridFieldLeavesSiblingsHitting) {
  // Run a tiny grid twice, flipping delta in between: the delta-keyed cells
  // must recompute, the rest must all hit.
  ResultCache cache;
  SweepGrid grid;
  grid.traces = {{"t", &trace_}};
  grid.policies = {Policy::kFcfs, Policy::kMiser};
  grid.deltas = {from_ms(10), from_ms(20)};
  grid.fractions = {0.95};

  SweepRunner warm({.threads = 1, .cache = &cache});
  warm.run(grid);
  EXPECT_EQ(warm.stats().cache_hits, 0u);

  // Same grid again: every cell hits.
  SweepRunner replay({.threads = 1, .cache = &cache});
  replay.run(grid);
  EXPECT_EQ(replay.stats().cache_hits, 4u);

  // Swap one delta for a new value: exactly the two cells under the new
  // delta miss; the two under the surviving delta still hit.
  grid.deltas = {from_ms(10), from_ms(50)};
  SweepRunner partial({.threads = 1, .cache = &cache});
  partial.run(grid);
  EXPECT_EQ(partial.stats().cache_hits, 2u);
}

}  // namespace
}  // namespace qos
