// Parallel + cached capacity planning: every helper must reproduce its
// serial core counterpart exactly.
#include "runner/parallel_capacity.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/capacity.h"
#include "core/consolidation.h"
#include "core/multi_tenant.h"
#include "trace/generator.h"

namespace qos {
namespace {

constexpr Time kDelta = from_ms(10);

TEST(MinCapacityCached, MissComputesHitReplays) {
  const Trace trace = generate_poisson(300, 4 * kUsPerSec, 5);
  ResultCache cache;
  const CapacityResult plain = min_capacity(trace, 0.95, kDelta);

  const CapacityResult miss = min_capacity_cached(trace, 0.95, kDelta, &cache);
  EXPECT_EQ(miss.cmin_iops, plain.cmin_iops);
  EXPECT_EQ(miss.achieved_fraction, plain.achieved_fraction);
  EXPECT_EQ(miss.probes, plain.probes);
  EXPECT_EQ(cache.stats().misses, 1u);

  const CapacityResult hit = min_capacity_cached(trace, 0.95, kDelta, &cache);
  EXPECT_EQ(cache.stats().hits, 1u);
  // A hit returns the stored result bit-for-bit, probe count included.
  EXPECT_EQ(hit.cmin_iops, plain.cmin_iops);
  EXPECT_EQ(hit.achieved_fraction, plain.achieved_fraction);
  EXPECT_EQ(hit.probes, plain.probes);
}

TEST(MinCapacityCached, DistinctParametersDistinctEntries) {
  const Trace trace = generate_poisson(300, 4 * kUsPerSec, 5);
  ResultCache cache;
  const Digest digest = hash_trace(trace);
  (void)min_capacity_cached(trace, 0.95, kDelta, &cache, &digest);
  (void)min_capacity_cached(trace, 0.90, kDelta, &cache, &digest);
  (void)min_capacity_cached(trace, 0.95, from_ms(20), &cache, &digest);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
  (void)min_capacity_cached(trace, 0.90, kDelta, &cache, &digest);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(MinCapacityCached, HintDoesNotChangeCachedAnswer) {
  const Trace trace = generate_poisson(400, 4 * kUsPerSec, 9);
  const CapacityResult plain = min_capacity(trace, 0.95, kDelta);
  CapacityHint hint;
  hint.infeasible_below = static_cast<std::int64_t>(plain.cmin_iops) - 1;
  hint.feasible_at = static_cast<std::int64_t>(plain.cmin_iops);
  const CapacityResult hinted =
      min_capacity_cached(trace, 0.95, kDelta, nullptr, nullptr, hint);
  EXPECT_EQ(hinted.cmin_iops, plain.cmin_iops);
  EXPECT_LE(hinted.probes, plain.probes);
}

TEST(CapacityProfileParallel, MatchesSerialProfileExactly) {
  const Trace trace = generate_poisson(350, 4 * kUsPerSec, 13);
  const auto serial = capacity_profile(trace, kDelta);
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    const auto parallel = capacity_profile_parallel(pool, trace, kDelta);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].fraction, serial[i].fraction) << i;
      EXPECT_EQ(parallel[i].cmin_iops, serial[i].cmin_iops) << i;
    }
  }
}

TEST(CapacityProfileParallel, CacheMakesReplayFree) {
  const Trace trace = generate_poisson(350, 4 * kUsPerSec, 13);
  ResultCache cache;
  ThreadPool pool(2);
  const auto first = capacity_profile_parallel(pool, trace, kDelta,
                                               {0.90, 0.95, 1.0}, &cache);
  const auto replay = capacity_profile_parallel(pool, trace, kDelta,
                                                {0.90, 0.95, 1.0}, &cache);
  EXPECT_EQ(cache.stats().hits, 3u);
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(replay[i].cmin_iops, first[i].cmin_iops);
}

TEST(ConsolidateParallel, MatchesSerialConsolidate) {
  const Trace clients[] = {generate_poisson(200, 4 * kUsPerSec, 21),
                           generate_poisson(300, 4 * kUsPerSec, 22)};
  const ConsolidationReport serial = consolidate(clients, 0.95, kDelta);
  ThreadPool pool(4);
  const ConsolidationReport parallel =
      consolidate_parallel(pool, clients, 0.95, kDelta);
  EXPECT_EQ(parallel.estimate_iops, serial.estimate_iops);
  EXPECT_EQ(parallel.actual_iops, serial.actual_iops);
  ASSERT_EQ(parallel.individual_iops.size(), serial.individual_iops.size());
  for (std::size_t i = 0; i < serial.individual_iops.size(); ++i)
    EXPECT_EQ(parallel.individual_iops[i], serial.individual_iops[i]);
}

TEST(PlanTenantSpecsParallel, MatchesSerialPlan) {
  const std::vector<Trace> tenants = {
      generate_poisson(150, 4 * kUsPerSec, 31),
      generate_poisson(250, 4 * kUsPerSec, 32),
      generate_poisson(350, 4 * kUsPerSec, 33)};
  const auto serial = plan_tenant_specs(tenants, 0.95, kDelta);
  ThreadPool pool(3);
  const auto parallel = plan_tenant_specs_parallel(pool, tenants, 0.95, kDelta);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].cmin_iops, serial[i].cmin_iops);
    EXPECT_EQ(parallel[i].delta, serial[i].delta);
    EXPECT_EQ(parallel[i].overflow_weight, serial[i].overflow_weight);
  }
}

}  // namespace
}  // namespace qos
