#include "core/admission.h"

#include <algorithm>

#include "util/check.h"

namespace qos {

AdmissionReport admit_tenants(std::span<const TenantRequest> tenants,
                              double capacity_iops) {
  QOS_EXPECTS(capacity_iops > 0);
  AdmissionReport report;
  report.capacity_iops = capacity_iops;

  double worst_case_reserved = 0;
  for (const auto& tenant : tenants) {
    QOS_EXPECTS(tenant.profile != nullptr);
    QOS_EXPECTS(tenant.sla.fraction > 0 && tenant.sla.fraction <= 1);
    QOS_EXPECTS(tenant.sla.delta > 0);

    TenantDecision decision;
    decision.name = tenant.name;

    const double cmin =
        min_capacity(*tenant.profile, tenant.sla.fraction, tenant.sla.delta)
            .cmin_iops;
    const double headroom = overflow_headroom_iops(tenant.sla.delta);
    const double new_headroom = std::max(report.headroom_iops, headroom);
    if (report.reserved_iops + cmin + new_headroom <= capacity_iops) {
      decision.admitted = true;
      decision.reserved_iops = cmin;
      report.reserved_iops += cmin;
      report.headroom_iops = new_headroom;
      ++report.admitted_count;
    }
    report.decisions.push_back(std::move(decision));

    // Worst-case counterfactual: same order, 100% reservations, no shared
    // headroom needed (nothing overflows).
    const double worst =
        min_capacity(*tenant.profile, 1.0, tenant.sla.delta).cmin_iops;
    if (worst_case_reserved + worst <= capacity_iops) {
      worst_case_reserved += worst;
      ++report.worst_case_admitted_count;
    }
  }
  return report;
}

}  // namespace qos
