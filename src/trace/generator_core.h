// Incremental generator cores — the draw-for-draw heart of every synthetic
// workload, shared by the materialized API (trace/generator.h) and the
// streaming adapters (stream/gen_stream.h).
//
// Each core owns one forked Rng stream and replays exactly the draw sequence
// the original one-shot generator made on that stream, but one arrival (or
// one batch) per call instead of one trace per call.  Because the Rng forks
// happen in the same order at construction and each core consumes its own
// stream sequentially, a materialized trace (drain the cores, sort, assign
// addresses) and a streamed run (merge the cores in sorted order, assign
// addresses at emission) produce byte-identical request sequences — the
// invariant tests/test_stream.cpp asserts for every generator and preset.
//
// Address assignment is deliberately NOT part of the cores: the
// AddressAssigner is a function of the *arrival-sorted* sequence (see
// generator.cpp), which is the one order both paths share.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/generator.h"
#include "util/rng.h"
#include "util/time.h"

namespace qos {

/// SplitMix64-style mix of (seed, node); per-node cascade orientation for
/// the b-model and the per-phase stream seeds of regime switching.
std::uint64_t hash_node(std::uint64_t seed, std::uint64_t node);

/// Stateful LBA/size/op assignment shared by all generators.  Applied to
/// the arrival-sorted request sequence (materialized: a fill pass after the
/// sort; streamed: a fill per emission), so both paths see the identical
/// address stream.
class AddressAssigner {
 public:
  AddressAssigner(const AddressSpec& spec, Rng rng) : spec_(spec), rng_(rng) {}

  void fill(Request& r) {
    if (rng_.next_double() < spec_.sequential_prob && last_lba_ != 0) {
      r.lba = last_lba_ + spec_.size_blocks;
    } else {
      r.lba = static_cast<std::uint64_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(spec_.lba_max)));
    }
    last_lba_ = r.lba;
    r.size_blocks = spec_.size_blocks;
    r.is_write = rng_.next_double() < spec_.write_fraction;
  }

 private:
  AddressSpec spec_;
  Rng rng_;
  std::uint64_t last_lba_ = 0;
};

/// Poisson arrivals at `rate_iops` over [start_sec, end_sec), emitted in
/// time order.  The base process of generate_poisson (start 0) and of each
/// regime phase.  A rate of 0 emits nothing (and draws nothing).
class PoissonWindowCore {
 public:
  PoissonWindowCore(double rate_iops, double start_sec, double end_sec,
                    Rng rng)
      : rng_(rng),
        t_(start_sec),
        end_(end_sec),
        mean_gap_(rate_iops > 0 ? 1.0 / rate_iops : 0),
        alive_(rate_iops > 0) {}

  /// Next arrival instant, or nullopt forever once the window is exhausted.
  std::optional<Time> next() {
    if (!alive_) return std::nullopt;
    t_ += rng_.exponential(mean_gap_);
    if (t_ >= end_) {
      alive_ = false;
      return std::nullopt;
    }
    return from_sec(t_);
  }

 private:
  Rng rng_;
  double t_;
  double end_;
  double mean_gap_;
  bool alive_;
};

/// The MMPP base process of generate_workload: per dwell, an exponential
/// dwell-length draw, the dwell's Poisson arrivals, then the state
/// transition draw(s) — all from one Rng stream in exactly that order.
class MmppCore {
 public:
  /// `states` / `transition` are borrowed from the WorkloadSpec and must
  /// outlive the core.  Requires !states->empty() and a horizon > 0.
  MmppCore(const std::vector<MmppState>* states,
           const std::vector<double>* transition, double horizon_sec,
           Rng rng);

  /// Next arrival instant in time order; nullopt forever once the horizon
  /// is reached.
  std::optional<Time> next();

 private:
  void begin_dwell();   ///< dwell-length draw; arms the arrival loop
  void finish_dwell();  ///< advance to dwell end + transition draw(s)

  const std::vector<MmppState>* states_;
  const std::vector<double>* transition_;
  Rng rng_;
  double horizon_;
  std::size_t state_ = 0;
  double t_ = 0;        ///< dwell start (seconds)
  double end_ = 0;      ///< dwell end (seconds)
  double a_ = 0;        ///< last arrival instant within the dwell
  bool in_dwell_ = false;
  bool done_ = false;
};

/// The Poisson batch overlay: near-instantaneous request clusters.  Emits
/// one whole batch per call — the jittered arrivals of a batch are not
/// sorted among themselves, so the consumer owns the ordering (materialized:
/// the global sort; streamed: the merge heap).
///
/// The next batch's base instant is drawn one batch ahead (the same position
/// in the Rng stream the one-shot loop draws it), so frontier() is always a
/// sound lower bound on every arrival this core can still emit — the fact
/// the streaming merge's bounded lookahead rests on.
class BatchCore {
 public:
  /// Overlay over [start_sec, end_sec); arrivals at or after `clip` are
  /// dropped (generate_workload clips at the trace duration, regime phases
  /// at the phase end).  A batches_per_sec of 0 emits nothing.
  BatchCore(const BatchSpec& spec, double start_sec, double end_sec, Time clip,
            Rng rng);

  /// Lower bound (in Time) on every arrival still to come; kTimeMax once
  /// exhausted.
  Time frontier() const { return frontier_; }

  /// Emit the next batch's arrivals (may be empty after clipping) into
  /// `out`; false once exhausted.  Arrivals are appended in generation
  /// order.
  bool next_batch(std::vector<Time>& out);

 private:
  void advance_frontier();  ///< draw the next batch's base instant

  BatchSpec spec_;
  double end_;
  Time clip_;
  Rng rng_;
  double b_ = 0;             ///< next batch's base instant (seconds)
  Time frontier_ = kTimeMax;
  bool alive_ = false;
};

/// Pareto on/off source: ON periods Pareto(alpha, xm) at `on_rate_iops`,
/// OFF periods exponential — one Rng stream, periods and arrivals drawn in
/// strict alternation exactly as generate_pareto_onoff does.
class ParetoOnOffCore {
 public:
  ParetoOnOffCore(double on_rate_iops, double alpha_on, double xm_on_sec,
                  double mean_off_sec, double horizon_sec, Rng rng);

  std::optional<Time> next();

 private:
  Rng rng_;
  double horizon_;
  double on_rate_;
  double alpha_on_;
  double xm_on_;
  double mean_off_;
  double mean_gap_;
  double t_ = 0;      ///< current period start
  double end_ = 0;    ///< current ON period end
  double a_ = 0;      ///< last arrival within the ON period
  bool on_ = true;
  bool in_on_ = false;  ///< inside an armed ON period
  bool done_ = false;
};

}  // namespace qos
