file(REMOVE_RECURSE
  "CMakeFiles/test_fairqueue.dir/test_fairqueue.cpp.o"
  "CMakeFiles/test_fairqueue.dir/test_fairqueue.cpp.o.d"
  "test_fairqueue"
  "test_fairqueue.pdb"
  "test_fairqueue[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fairqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
