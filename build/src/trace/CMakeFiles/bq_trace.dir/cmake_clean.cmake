file(REMOVE_RECURSE
  "CMakeFiles/bq_trace.dir/generator.cpp.o"
  "CMakeFiles/bq_trace.dir/generator.cpp.o.d"
  "CMakeFiles/bq_trace.dir/presets.cpp.o"
  "CMakeFiles/bq_trace.dir/presets.cpp.o.d"
  "CMakeFiles/bq_trace.dir/rate_series.cpp.o"
  "CMakeFiles/bq_trace.dir/rate_series.cpp.o.d"
  "CMakeFiles/bq_trace.dir/spc.cpp.o"
  "CMakeFiles/bq_trace.dir/spc.cpp.o.d"
  "CMakeFiles/bq_trace.dir/trace.cpp.o"
  "CMakeFiles/bq_trace.dir/trace.cpp.o.d"
  "libbq_trace.a"
  "libbq_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bq_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
