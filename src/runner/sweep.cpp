#include "runner/sweep.h"

#include <atomic>
#include <charconv>
#include <chrono>
#include <sstream>

#include "fault/chaos.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace qos {

std::vector<SweepCell> SweepGrid::cells() const {
  std::vector<SweepCell> out;
  for (const NamedTrace& t : traces) {
    QOS_EXPECTS(t.trace != nullptr);
    for (Time delta : deltas) {
      for (double fraction : fractions) {
        for (Policy policy : policies) {
          for (double intensity : fault_intensities) {
            SweepCell cell;
            cell.label = policy_name(policy);
            cell.trace_name = t.name;
            cell.trace = t.trace;
            cell.shaping.policy = policy;
            cell.shaping.fraction = fraction;
            cell.shaping.delta = delta;
            cell.fault_intensity = intensity;
            if (intensity > 0)
              cell.faults.brownout(fault_begin, fault_end, intensity);
            out.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return out;
}

Digest sweep_cell_digest(const SweepCell& cell, const Digest& trace_digest) {
  ContentHasher h;
  // v2: FCFS cells gained q1 occupancy instrumentation, changing the report
  // a recompute produces — v1 rows must miss, not replay.
  h.str("qos-sweep-row-v2");
  h.str(cell.label);
  h.str(cell.trace_name);
  h.u64(trace_digest.hi).u64(trace_digest.lo);
  hash_shaping_config(h, cell.shaping);
  hash_fault_schedule(h, cell.faults);
  h.u64(cell.use_chaos ? 1 : 0);
  h.u64(cell.use_degraded_admission ? 1 : 0);
  h.i64(cell.degraded.monitor.window);
  h.f64(cell.degraded.monitor.tighten_gain);
  h.f64(cell.degraded.monitor.relax_gain);
  h.u64(cell.degraded.monitor.min_samples);
  h.f64(cell.degraded.tolerance);
  h.u64(cell.degraded.enabled ? 1 : 0);
  h.f64(cell.fault_intensity);
  h.u64(cell.seed);
  h.u64(cell.custom_salt);
  h.u64(cell.make_scheduler ? 1 : 0);
  for (double iops : cell.server_iops) h.f64(iops);
  return h.digest();
}

SweepRow SweepRunner::evaluate_cell(const SweepCell& cell) {
  return evaluate_cell(cell, nullptr);
}

SweepRow SweepRunner::evaluate_cell(const SweepCell& cell, Tracer* tracer) {
  QOS_EXPECTS(cell.trace != nullptr);
  // The runner owns observability: a private registry per evaluation keeps
  // per-job metrics race-free without any locking, and tracing arrives via
  // the explicit parameter, never smuggled in through the cell spec.
  QOS_EXPECTS(cell.shaping.registry == nullptr);
  QOS_EXPECTS(cell.shaping.sink == nullptr);
  QOS_EXPECTS(cell.shaping.tracer == nullptr);
  QOS_EXPECTS(!cell.shaping.server_decorator);

  SweepRow row;
  row.label =
      cell.label.empty() ? policy_name(cell.shaping.policy) : cell.label;
  row.trace_name = cell.trace_name;
  row.policy = cell.shaping.policy;
  row.fraction = cell.shaping.fraction;
  row.delta = cell.shaping.delta;
  row.fault_intensity = cell.fault_intensity;
  row.seed = cell.seed;
  if (tracer != nullptr)
    tracer->annotate(row.label, row.trace_name, cell.shaping.delta);

  MetricRegistry registry;
  SimResult sim;
  if (cell.make_scheduler) {
    QOS_EXPECTS(!cell.server_iops.empty());
    auto scheduler = cell.make_scheduler();
    QOS_CHECK(scheduler != nullptr);
    scheduler->attach_observability(tracer, &registry);
    std::vector<ConstantRateServer> servers;
    servers.reserve(cell.server_iops.size());
    for (double iops : cell.server_iops) servers.emplace_back(iops);
    std::vector<Server*> ptrs;
    ptrs.reserve(servers.size());
    for (auto& s : servers) ptrs.push_back(&s);
    sim = simulate(*cell.trace, *scheduler, ptrs, tracer);
    row.cmin_iops = cell.shaping.capacity_override_iops;
    row.headroom_iops = cell.shaping.resolved_headroom_iops();
    row.report = build_shaping_report(sim, cell.shaping.delta, &registry);
  } else if (cell.use_chaos || !cell.faults.empty() ||
             cell.use_degraded_admission) {
    ChaosConfig config;
    config.shaping = cell.shaping;
    config.shaping.registry = &registry;
    config.shaping.tracer = tracer;
    config.faults = cell.faults;
    config.use_degraded_admission = cell.use_degraded_admission;
    config.degraded = cell.degraded;
    ChaosOutcome out = run_chaos(*cell.trace, config);
    row.cmin_iops = out.shaping.cmin_iops;
    row.headroom_iops = out.shaping.headroom_iops;
    row.report = std::move(out.shaping.report);
    row.extra["chaos.q1_miss_fraction"] = out.q1_miss_fraction;
    row.extra["chaos.demotions"] = static_cast<double>(out.demotions);
    row.extra["chaos.demotion_rate"] = out.demotion_rate;
    row.extra["chaos.time_to_recover_us"] =
        static_cast<double>(out.time_to_recover);
    sim = std::move(out.shaping.sim);
  } else {
    ShapingConfig config = cell.shaping;
    config.registry = &registry;
    config.tracer = tracer;
    ShapingOutcome out = shape_and_run(*cell.trace, config);
    row.cmin_iops = out.cmin_iops;
    row.headroom_iops = out.headroom_iops;
    row.report = std::move(out.report);
    sim = std::move(out.sim);
  }
  if (!sim.completions.empty())
    row.buckets = ResponseStats(sim.completions).paper_buckets();
  if (cell.annotate) cell.annotate(sim, row.extra);
  return row;
}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(options), pool_(options.threads) {}

std::vector<SweepRow> SweepRunner::run(const SweepGrid& grid) {
  return run_cells(grid.cells());
}

std::vector<SweepRow> SweepRunner::run_cells(std::span<const SweepCell> cells) {
  const auto t0 = std::chrono::steady_clock::now();
  ProfileScope run_scope(options_.profile, "sweep.run_cells");

  // Digest each distinct trace once, up front; cells referencing the same
  // trace share the digest instead of rehashing megabytes per cell.
  // Traced runs never consult the cache, so skip the digesting too.
  std::map<const Trace*, Digest> trace_digests;
  if (options_.cache != nullptr && !options_.trace) {
    ProfileScope scope(options_.profile, "sweep.trace_digest");
    for (const SweepCell& c : cells) {
      QOS_EXPECTS(c.trace != nullptr);
      if (!trace_digests.count(c.trace))
        trace_digests.emplace(c.trace, hash_trace(*c.trace));
    }
  }

  std::atomic<std::uint64_t> hits{0};
  std::vector<TraceData> cell_traces(options_.trace ? cells.size() : 0);
  std::vector<SweepRow> rows =
      pool_.parallel_map(cells.size(), [&](std::size_t i) -> SweepRow {
        const SweepCell& cell = cells[i];
        ResultCache* cache = options_.cache;
        // Closures cannot be hashed: custom cells participate in caching
        // only when the caller vouches for them with a nonzero salt.  A
        // traced run is never cacheable: the spans must come from this
        // run's own simulation, identical warm or cold.
        const bool cacheable =
            cache != nullptr && !options_.trace &&
            (!(cell.make_scheduler || cell.annotate) || cell.custom_salt != 0);
        Digest key;
        if (cacheable) {
          ProfileScope scope(options_.profile, "sweep.cache_probe");
          key = sweep_cell_digest(cell, trace_digests.at(cell.trace));
          if (auto bytes = cache->get(key)) {
            if (auto row = deserialize_sweep_row(*bytes)) {
              row->from_cache = true;
              hits.fetch_add(1);
              return std::move(*row);
            }
          }
        }
        SweepRow row;
        {
          ProfileScope scope(options_.profile, "sweep.evaluate_cell");
          if (options_.trace) {
            Tracer tracer(options_.tracer);
            row = evaluate_cell(cell, &tracer);
            cell_traces[i] = tracer.data();
          } else {
            row = evaluate_cell(cell);
          }
        }
        if (cacheable) {
          ProfileScope scope(options_.profile, "sweep.cache_store");
          cache->put(key, serialize_sweep_row(row));
        }
        return row;
      });
  for (TraceData& t : cell_traces) traces_.push_back(std::move(t));

  stats_.cells += cells.size();
  stats_.cache_hits += hits.load();
  stats_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return rows;
}

// ---- row codec ------------------------------------------------------------
//
// Line-oriented text, doubles as 16-hex-digit bit patterns (lossless and
// platform-stable), integers as decimals.  Any structural mismatch makes
// deserialize return nullopt and the caller recompute — a corrupt cache
// entry can cost time, never correctness.

namespace {

constexpr const char* kRowMagic = "qos-sweep-row v2";

void put_f64(std::ostringstream& out, double v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  out << buf;
}

void put_class(std::ostringstream& out, const ClassReport& c) {
  out << c.count << ' ';
  put_f64(out, c.mean_us);
  out << ' ' << c.p50 << ' ' << c.p90 << ' ' << c.p99 << ' ' << c.p999 << ' '
      << c.max << ' ';
  put_f64(out, c.fraction_within_delta);
  out << '\n';
}

bool get_f64(std::istream& in, double& v) {
  std::string tok;
  if (!(in >> tok) || tok.size() != 16) return false;
  std::uint64_t bits = 0;
  const auto [p, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), bits, 16);
  if (ec != std::errc{} || p != tok.data() + tok.size()) return false;
  v = std::bit_cast<double>(bits);
  return true;
}

bool get_class(std::istream& in, ClassReport& c) {
  return (in >> c.count) && get_f64(in, c.mean_us) && (in >> c.p50) &&
         (in >> c.p90) && (in >> c.p99) && (in >> c.p999) && (in >> c.max) &&
         get_f64(in, c.fraction_within_delta);
}

}  // namespace

std::string serialize_sweep_row(const SweepRow& row) {
  std::ostringstream out;
  out << kRowMagic << '\n' << row.label << '\n' << row.trace_name << '\n';
  out << static_cast<int>(row.policy) << ' ';
  put_f64(out, row.fraction);
  out << ' ' << row.delta << ' ';
  put_f64(out, row.fault_intensity);
  out << ' ' << row.seed << ' ';
  put_f64(out, row.cmin_iops);
  out << ' ';
  put_f64(out, row.headroom_iops);
  out << '\n';

  const ShapingReport& r = row.report;
  out << r.delta << ' ' << r.admitted << ' ' << r.rejected << ' '
      << r.deadline_misses << '\n';
  put_class(out, r.all);
  put_class(out, r.primary);
  put_class(out, r.overflow);
  for (const OccupancyReport* occ : {&r.q1_occupancy, &r.q2_occupancy}) {
    put_f64(out, occ->mean);
    out << ' ' << occ->max << ' ' << (occ->tracked ? 1 : 0) << '\n';
  }
  out << r.miss_run_lengths.size();
  for (std::uint64_t n : r.miss_run_lengths) out << ' ' << n;
  out << '\n';

  for (double b : {row.buckets.le_50, row.buckets.le_100, row.buckets.le_500,
                   row.buckets.le_1000, row.buckets.gt_1000}) {
    put_f64(out, b);
    out << ' ';
  }
  out << '\n';

  out << row.extra.size() << '\n';
  for (const auto& [key, value] : row.extra) {
    out << key << ' ';
    put_f64(out, value);
    out << '\n';
  }
  return std::move(out).str();
}

std::optional<SweepRow> deserialize_sweep_row(const std::string& bytes) {
  std::istringstream in(bytes);
  std::string magic;
  if (!std::getline(in, magic) || magic != kRowMagic) return std::nullopt;

  SweepRow row;
  if (!std::getline(in, row.label)) return std::nullopt;
  if (!std::getline(in, row.trace_name)) return std::nullopt;

  int policy = 0;
  if (!(in >> policy) || !get_f64(in, row.fraction) || !(in >> row.delta) ||
      !get_f64(in, row.fault_intensity) || !(in >> row.seed) ||
      !get_f64(in, row.cmin_iops) || !get_f64(in, row.headroom_iops))
    return std::nullopt;
  row.policy = static_cast<Policy>(policy);

  ShapingReport& r = row.report;
  if (!(in >> r.delta >> r.admitted >> r.rejected >> r.deadline_misses))
    return std::nullopt;
  if (!get_class(in, r.all) || !get_class(in, r.primary) ||
      !get_class(in, r.overflow))
    return std::nullopt;
  for (OccupancyReport* occ : {&r.q1_occupancy, &r.q2_occupancy}) {
    int tracked = 0;
    if (!get_f64(in, occ->mean) || !(in >> occ->max) || !(in >> tracked))
      return std::nullopt;
    occ->tracked = tracked != 0;
  }
  std::size_t runs = 0;
  if (!(in >> runs) || runs > bytes.size()) return std::nullopt;
  r.miss_run_lengths.resize(runs);
  for (std::uint64_t& n : r.miss_run_lengths)
    if (!(in >> n)) return std::nullopt;

  if (!get_f64(in, row.buckets.le_50) || !get_f64(in, row.buckets.le_100) ||
      !get_f64(in, row.buckets.le_500) || !get_f64(in, row.buckets.le_1000) ||
      !get_f64(in, row.buckets.gt_1000))
    return std::nullopt;

  std::size_t extras = 0;
  if (!(in >> extras) || extras > bytes.size()) return std::nullopt;
  for (std::size_t i = 0; i < extras; ++i) {
    std::string key;
    double value = 0;
    if (!(in >> key) || !get_f64(in, value)) return std::nullopt;
    row.extra.emplace(std::move(key), value);
  }
  return row;
}

}  // namespace qos
