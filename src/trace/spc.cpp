#include "trace/spc.h"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>


namespace qos {
namespace {

// Split a line on commas into at most `n` trimmed fields; returns count.
std::size_t split_fields(std::string_view line, std::string_view* fields,
                         std::size_t n) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while (count < n && pos <= line.size()) {
    std::size_t comma = line.find(',', pos);
    if (comma == std::string_view::npos) comma = line.size();
    std::size_t b = pos;
    std::size_t e = comma;
    while (b < e && (line[b] == ' ' || line[b] == '\t')) ++b;
    while (e > b && (line[e - 1] == ' ' || line[e - 1] == '\t' ||
                     line[e - 1] == '\r'))
      --e;
    fields[count++] = line.substr(b, e - b);
    pos = comma + 1;
  }
  return count;
}

}  // namespace

bool parse_spc_line(std::string_view line, Request& out) {
  std::string_view f[5];
  if (split_fields(line, f, 5) != 5) return false;
  unsigned asu = 0;
  unsigned long long lba = 0;
  unsigned long long size_bytes = 0;
  double ts = 0;
  auto ok = [](std::string_view field, auto& val) {
    auto [p, ec] =
        std::from_chars(field.data(), field.data() + field.size(), val);
    return ec == std::errc() && p == field.data() + field.size();
  };
  if (!ok(f[0], asu) || !ok(f[1], lba) || !ok(f[2], size_bytes) ||
      f[3].empty()) {
    return false;
  }
  // A zero-byte request would violate the Trace positive-size invariant;
  // a size whose block count overflows uint32 would silently wrap.
  constexpr auto kMaxBytes =
      std::uint64_t{std::numeric_limits<std::uint32_t>::max()} * 512;
  if (size_bytes == 0 || size_bytes > kMaxBytes) return false;
  // Timestamps are decimal seconds; std::from_chars(double) is not
  // universally available for floats pre-GCC11, but we target GCC with
  // C++20 where it is.  Reject non-finite values (NaN compares false
  // against every bound) and values whose microsecond conversion would
  // overflow Time.
  constexpr double kMaxSeconds = static_cast<double>(kTimeMax / kUsPerSec);
  if (!ok(f[4], ts) || !std::isfinite(ts) || ts < 0 || ts > kMaxSeconds) {
    return false;
  }
  const char op = f[3][0];
  if (op != 'r' && op != 'R' && op != 'w' && op != 'W') return false;
  out.client = asu;
  out.lba = lba;
  out.size_blocks = static_cast<std::uint32_t>((size_bytes + 511) / 512);
  out.is_write = (op == 'w' || op == 'W');
  out.arrival = from_sec(ts);
  return true;
}

Trace parse_spc(const std::string& text, std::size_t* skipped_lines) {
  std::vector<Request> out;
  std::size_t skipped = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Request r;
    if (!parse_spc_line(line, r)) {
      ++skipped;
      continue;
    }
    out.push_back(r);
  }
  if (skipped_lines) *skipped_lines = skipped;
  return Trace(std::move(out));
}

std::string to_spc(const Trace& trace) {
  std::string out;
  char buf[128];
  for (const auto& r : trace) {
    std::snprintf(buf, sizeof buf, "%u,%llu,%u,%c,%.6f\n", r.client,
                  static_cast<unsigned long long>(r.lba), r.size_blocks * 512u,
                  r.is_write ? 'w' : 'r', to_sec(r.arrival));
    out += buf;
  }
  return out;
}

std::optional<Trace> try_load_spc_file(const std::string& path,
                                       std::size_t* skipped_lines) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return parse_spc(ss.str(), skipped_lines);
}

}  // namespace qos
