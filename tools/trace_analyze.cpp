// trace_analyze — offline analysis of binary trace containers.
//
//   trace_analyze FILE.trace.bin [--delta US]
//
// Reads a container written by serialize_traces() (e.g. the
// <stem>.trace.bin a bench emits under --trace), and for each trace prints
// the queue-timeline summary, deadline-miss attribution (every miss in
// exactly one cause class), and Miser slack accounting.  --delta overrides
// the deadline recorded in the trace, for what-if analysis against a
// different SLA.  Exits 1 on unreadable or corrupt input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace_analysis.h"
#include "obs/trace_export.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s FILE.trace.bin [--delta US]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  qos::Time delta_override = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--delta") == 0 && i + 1 < argc) {
      delta_override = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return usage(argv[0]);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (path == nullptr) return usage(argv[0]);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_analyze: cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto traces = qos::deserialize_traces(buf.str());
  if (!traces) {
    std::fprintf(stderr, "trace_analyze: %s is not a valid trace container\n",
                 path);
    return 1;
  }

  std::printf("%s: %zu trace(s)\n", path, traces->size());
  for (const qos::TraceData& t : *traces) {
    const qos::Time delta = delta_override >= 0 ? delta_override : t.delta;
    std::fputs(qos::trace_analysis_text(t, delta).c_str(), stdout);
  }
  return 0;
}
