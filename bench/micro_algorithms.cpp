// Microbenchmarks (google-benchmark): throughput of the core algorithms.
//
// These are engineering benchmarks, not paper reproductions: they establish
// that RTT decomposition, Miser dispatch, the fair schedulers and the event
// simulator all run at millions of operations per second, i.e. the shaping
// framework adds negligible overhead at storage-array request rates.
#include <benchmark/benchmark.h>

#include "core/capacity.h"
#include "core/fcfs.h"
#include "core/miser.h"
#include "core/rtt.h"
#include "core/shaper.h"
#include "fq/pclock.h"
#include "fq/sfq.h"
#include "fq/wf2q.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace {

using namespace qos;

const Trace& bench_trace() {
  static const Trace trace = [] {
    WorkloadSpec spec;
    spec.states = {{400, 1.0}, {1200, 0.4}};
    spec.batches = {.batches_per_sec = 0.2,
                    .mean_size = 10,
                    .spread_us = 2'000,
                    .giant_prob = 0.05,
                    .giant_factor = 3};
    return generate_workload(spec, 120 * kUsPerSec, 4242);
  }();
  return trace;
}

void BM_RttDecompose(benchmark::State& state) {
  const Trace& t = bench_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtt_decompose(t, 500, 10'000));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_RttDecompose);

void BM_MinCapacitySearch(benchmark::State& state) {
  const Trace& t = bench_trace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(min_capacity(t, 0.95, 10'000));
  }
}
BENCHMARK(BM_MinCapacitySearch);

void BM_SimulateFcfs(benchmark::State& state) {
  const Trace& t = bench_trace();
  for (auto _ : state) {
    FcfsScheduler fcfs;
    ConstantRateServer server(600);
    benchmark::DoNotOptimize(simulate(t, fcfs, server));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_SimulateFcfs);

void BM_SimulateMiser(benchmark::State& state) {
  const Trace& t = bench_trace();
  for (auto _ : state) {
    MiserScheduler miser(500, 10'000);
    ConstantRateServer server(600);
    benchmark::DoNotOptimize(simulate(t, miser, server));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.size()));
}
BENCHMARK(BM_SimulateMiser);

template <typename SchedulerT>
void run_fq(benchmark::State& state, SchedulerT make) {
  for (auto _ : state) {
    auto fq = make();
    // Alternate bursts and drains over two flows.
    std::uint64_t handle = 0;
    for (int round = 0; round < 100; ++round) {
      for (int i = 0; i < 32; ++i) {
        fq.enqueue(i & 1, handle++, 1.0, round * 1000);
      }
      for (int i = 0; i < 32; ++i) benchmark::DoNotOptimize(fq.dequeue(0));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          3200);
}

void BM_Sfq(benchmark::State& state) {
  run_fq(state, [] { return SfqScheduler({3.0, 1.0}); });
}
BENCHMARK(BM_Sfq);

void BM_Wf2qPlus(benchmark::State& state) {
  run_fq(state, [] { return Wf2qPlusScheduler({3.0, 1.0}); });
}
BENCHMARK(BM_Wf2qPlus);

void BM_PClock(benchmark::State& state) {
  run_fq(state, [] {
    return PClockScheduler({PClockSla{.sigma = 4, .rho = 300, .delta = 10'000},
                            PClockSla{.sigma = 1, .rho = 100, .delta = 50'000}});
  });
}
BENCHMARK(BM_PClock);

void BM_GenerateWorkload(benchmark::State& state) {
  WorkloadSpec spec;
  spec.states = {{400, 1.0}, {1200, 0.4}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generate_workload(spec, 10 * kUsPerSec, 77));
  }
}
BENCHMARK(BM_GenerateWorkload);

void BM_ShapeAndRunMiser(benchmark::State& state) {
  const Trace& t = bench_trace();
  ShapingConfig config;
  config.policy = Policy::kMiser;
  config.fraction = 0.9;
  config.delta = 10'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shape_and_run(t, config));
  }
}
BENCHMARK(BM_ShapeAndRunMiser);

}  // namespace

BENCHMARK_MAIN();
