file(REMOVE_RECURSE
  "CMakeFiles/bq_util.dir/rng.cpp.o"
  "CMakeFiles/bq_util.dir/rng.cpp.o.d"
  "CMakeFiles/bq_util.dir/table.cpp.o"
  "CMakeFiles/bq_util.dir/table.cpp.o.d"
  "libbq_util.a"
  "libbq_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bq_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
