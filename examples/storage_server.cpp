// Storage server end-to-end: the shaping framework in front of a mechanical
// disk model (the paper's "device driver level" deployment in DiskSim).
//
//   $ ./storage_server
//
// Two runs of the same workload against the same 15k RPM disk model:
//   * FCFS straight to the disk, and
//   * RTT decomposition + Miser recombination at the device-driver level
//     (admission sized from the disk's effective IOPS on this workload).
// Shows the paper's framework is not tied to the constant-rate abstraction:
// the shaped schedule protects the primary class against burst spill-over on
// a positional service-time model too.
#include <cstdio>

#include "analysis/response_stats.h"
#include "core/fcfs.h"
#include "core/miser.h"
#include "disk/disk_model.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "util/table.h"

using namespace qos;

namespace {

// Measure the disk's throughput on this workload's access pattern by
// replaying it back-to-back (saturated), yielding an effective IOPS figure
// the admission controller can plan against.
double effective_disk_iops(const Trace& trace) {
  DiskModel disk;
  Time busy = 0;
  for (const auto& r : trace) busy += disk.service_time(r, busy);
  return static_cast<double>(trace.size()) / to_sec(busy);
}

}  // namespace

int main() {
  // A mail-server-like workload: bursty, moderately sequential.
  WorkloadSpec spec;
  spec.states = {{60, 4.0}, {150, 2.0}, {420, 0.6}};
  spec.batches = {.batches_per_sec = 0.05,
                  .mean_size = 10,
                  .spread_us = 3'000,
                  .giant_prob = 0.05,
                  .giant_factor = 3};
  spec.addresses = {.lba_max = 90'000'000,  // within one disk
                    .sequential_prob = 0.4,
                    .size_blocks = 8,
                    .write_fraction = 0.5};
  const Trace trace = generate_workload(spec, 600 * kUsPerSec, 31337);

  const double disk_iops = effective_disk_iops(trace);
  std::printf("workload: %zu requests, mean %.0f IOPS, peak(100ms) %.0f\n",
              trace.size(), trace.mean_rate_iops(),
              trace.peak_rate_iops(100'000));
  std::printf("disk model: 15k RPM, effective %.0f IOPS on this pattern\n\n",
              disk_iops);

  const Time delta = from_ms(50);
  // Plan Q1 admission against ~85% of the disk's effective rate, keeping the
  // remainder as recombination headroom (the constant-rate planner's
  // Cmin search does not apply to a positional server, so the driver plans
  // against measured throughput — what a real array controller does).
  const double admission_iops = 0.85 * disk_iops;

  AsciiTable table;
  table.add("scheduler", "class", "count", "within 50ms", "mean (ms)",
            "max (ms)");

  {
    FcfsScheduler fcfs;
    DiskServer disk;
    SimResult sim = simulate(trace, fcfs, disk);
    ResponseStats all(sim.completions);
    table.add("FCFS", "all", static_cast<unsigned long long>(all.count()),
              format_double(100 * all.fraction_within(delta), 1) + "%",
              format_double(all.mean_us() / 1000.0, 1),
              format_double(to_ms(all.max()), 0));
  }
  {
    MiserScheduler miser(admission_iops, delta);
    DiskServer disk;
    SimResult sim = simulate(trace, miser, disk);
    ResponseStats q1(sim.completions, ServiceClass::kPrimary);
    ResponseStats q2(sim.completions, ServiceClass::kOverflow);
    table.add("RTT+Miser", "Q1", static_cast<unsigned long long>(q1.count()),
              format_double(100 * q1.fraction_within(delta), 1) + "%",
              format_double(q1.mean_us() / 1000.0, 1),
              format_double(to_ms(q1.max()), 0));
    if (!q2.empty())
      table.add("RTT+Miser", "Q2",
                static_cast<unsigned long long>(q2.count()),
                format_double(100 * q2.fraction_within(delta), 1) + "%",
                format_double(q2.mean_us() / 1000.0, 1),
                format_double(to_ms(q2.max()), 0));
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
