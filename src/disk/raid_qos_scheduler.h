// Multi-disk QoS scheduler: RTT admission in front of a RAID array.
//
// The simulator's multi-server support (one Server per member disk) lets the
// decomposition framework drive a whole array: arrivals are classified by
// RTT exactly as on a single server, then routed to the member disk that
// holds their data (RAID mapping); each disk drains its own two queues with
// Q1-priority.  RAID-1 writes fan out to both mirrors; RAID-5 writes hit
// the data and parity disks (read-modify-write modeled as a double-length
// access on each).  Admission capacity should reflect the *array's*
// effective IOPS.
#pragma once

#include <deque>
#include <vector>

#include "core/rtt.h"
#include "disk/raid.h"
#include "sim/scheduler.h"

namespace qos {

class RaidQosScheduler final : public Scheduler {
 public:
  RaidQosScheduler(RaidGeometry geometry, double admission_capacity_iops,
                   Time delta)
      : mapper_(geometry),
        admission_(admission_capacity_iops, delta),
        per_disk_(static_cast<std::size_t>(geometry.disks)) {}

  int server_count() const override { return mapper_.geometry().disks; }

  bool fans_out() const override { return true; }

  void on_arrival(const Request& r, Time) override {
    ServiceClass klass;
    if (admission_.admit(len_q1_)) {
      ++len_q1_;
      klass = ServiceClass::kPrimary;
    } else {
      klass = ServiceClass::kOverflow;
    }
    // Route each physical access as a sub-request on its member disk.  The
    // logical request is accounted complete when its primary access is; the
    // extra mirror/parity accesses are independent load on their disks.
    const auto targets = r.is_write ? mapper_.write_targets(r.lba)
                                    : std::vector<PhysicalBlock>{
                                          mapper_.map_read(r.lba)};
    bool first = true;
    for (const auto& target : targets) {
      Request sub = r;
      sub.lba = target.lba;
      auto& queues = per_disk_[static_cast<std::size_t>(target.disk)];
      // Only the primary access carries the request identity; companions
      // are internal work (their completions are filtered by the caller
      // via is_companion()).
      sub.client = first ? r.client : kCompanionClient;
      (klass == ServiceClass::kPrimary ? queues.q1 : queues.q2)
          .push_back(sub);
      first = false;
    }
    klass_of_seq_resize(r.seq);
    klass_by_seq_[r.seq] = klass;
  }

  std::optional<Dispatch> next_for(int server, Time) override {
    auto& queues = per_disk_[static_cast<std::size_t>(server)];
    if (!queues.q1.empty()) {
      Dispatch d{queues.q1.front(), ServiceClass::kPrimary};
      queues.q1.pop_front();
      return d;
    }
    if (!queues.q2.empty()) {
      Dispatch d{queues.q2.front(), ServiceClass::kOverflow};
      queues.q2.pop_front();
      return d;
    }
    return std::nullopt;
  }

  void on_complete(const Request& r, ServiceClass klass, int, Time) override {
    if (klass == ServiceClass::kPrimary && r.client != kCompanionClient) {
      QOS_CHECK(len_q1_ > 0);
      --len_q1_;
    }
  }

  /// Completions with this client id are internal mirror/parity accesses,
  /// not logical request completions.
  static bool is_companion(const CompletionRecord& c) {
    return c.client == kCompanionClient;
  }

  ServiceClass class_of(std::uint64_t seq) const {
    QOS_EXPECTS(seq < klass_by_seq_.size());
    return klass_by_seq_[seq];
  }

  std::int64_t len_q1() const { return len_q1_; }

 private:
  static constexpr std::uint32_t kCompanionClient = 0xffffffffu;

  struct DiskQueues {
    std::deque<Request> q1;
    std::deque<Request> q2;
  };

  void klass_of_seq_resize(std::uint64_t seq) {
    if (klass_by_seq_.size() <= seq)
      klass_by_seq_.resize(seq + 1, ServiceClass::kOverflow);
  }

  RaidMapper mapper_;
  RttAdmission admission_;
  std::vector<DiskQueues> per_disk_;
  std::vector<ServiceClass> klass_by_seq_;
  std::int64_t len_q1_ = 0;
};

}  // namespace qos
