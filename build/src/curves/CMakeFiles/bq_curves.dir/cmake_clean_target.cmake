file(REMOVE_RECURSE
  "libbq_curves.a"
)
