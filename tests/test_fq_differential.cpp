// Equivalence proofs for the heap-based FQ backends.
//
// Two obligations from the hot-path overhaul:
//   1. Tie-break determinism: equal head tags must dispatch the lowest flow
//      index first — the order the pre-heap linear scans induced — for all
//      four backends.
//   2. Differential equivalence: randomized seeded workloads replayed
//      through the production backend and its frozen scan reference
//      (fq/scan_reference.h) must yield identical dispatch streams,
//      backlogs and virtual times at every step.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fq/dense_reference.h"
#include "fq/pclock.h"
#include "fq/scan_reference.h"
#include "fq/sfq.h"
#include "fq/wf2q.h"
#include "fq/wfq.h"
#include "util/rng.h"

namespace qos {
namespace {

// Drain `s` completely, returning the dispatch sequence.
std::vector<FqDispatch> drain(FairScheduler& s, Time now = 0) {
  std::vector<FqDispatch> out;
  while (auto d = s.dequeue(now)) out.push_back(*d);
  return out;
}

void expect_same_stream(const std::vector<FqDispatch>& a,
                        const std::vector<FqDispatch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].flow, b[i].flow) << "at dispatch " << i;
    EXPECT_EQ(a[i].handle, b[i].handle) << "at dispatch " << i;
  }
}

// ---------------------------------------------------------------------------
// Tie-break determinism: one item per flow, identical weights and costs, so
// every head tag is equal; dispatch order must be ascending flow index.

template <typename Sched>
void equal_tag_tie_break(Sched&& s) {
  // Enqueue in scrambled flow order to rule out insertion-order artifacts.
  for (int flow : {2, 0, 3, 1}) s.enqueue(flow, 100 + flow, 1.0, 0);
  const auto seq = drain(s);
  ASSERT_EQ(seq.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(seq[static_cast<std::size_t>(i)].flow, i);
    EXPECT_EQ(seq[static_cast<std::size_t>(i)].handle,
              static_cast<std::uint64_t>(100 + i));
  }
}

TEST(FqTieBreak, SfqEqualTagsDispatchLowestFlowFirst) {
  equal_tag_tie_break(SfqScheduler({1, 1, 1, 1}));
}

TEST(FqTieBreak, WfqEqualTagsDispatchLowestFlowFirst) {
  equal_tag_tie_break(WfqScheduler({1, 1, 1, 1}));
}

TEST(FqTieBreak, Wf2qEqualTagsDispatchLowestFlowFirst) {
  equal_tag_tie_break(Wf2qPlusScheduler({1, 1, 1, 1}));
}

TEST(FqTieBreak, PClockEqualDeadlinesDispatchLowestFlowFirst) {
  // Identical SLAs + simultaneous conforming arrivals => equal deadlines.
  equal_tag_tie_break(
      PClockScheduler(std::vector<PClockSla>(4, PClockSla{})));
}

TEST(FqTieBreak, RepeatedRunsLockTheSameSequence) {
  // The full interleaved dispatch sequence is a pure function of the input:
  // two fresh instances fed the same workload agree dispatch for dispatch.
  for (int round = 0; round < 2; ++round) {
    SfqScheduler a({1, 1, 1}), b({1, 1, 1});
    std::vector<FqDispatch> sa, sb;
    std::uint64_t h = 0;
    for (int i = 0; i < 30; ++i) {
      const int flow = i % 3;
      a.enqueue(flow, h, 1.0, 0);
      b.enqueue(flow, h, 1.0, 0);
      ++h;
      if (i % 2 == 1) {
        sa.push_back(*a.dequeue(0));
        sb.push_back(*b.dequeue(0));
      }
    }
    auto ta = drain(a), tb = drain(b);
    sa.insert(sa.end(), ta.begin(), ta.end());
    sb.insert(sb.end(), tb.begin(), tb.end());
    expect_same_stream(sa, sb);
  }
}

// ---------------------------------------------------------------------------
// Randomized differential: production heap backend vs frozen scan reference.

// Drives both schedulers through one seeded op stream of interleaved
// enqueues/dequeues and asserts identical observable state throughout.
// `tie_heavy` uses unit costs so head tags collide constantly, stressing the
// tie-break; otherwise costs vary to exercise tag arithmetic.
template <typename Prod, typename Ref>
void differential(Prod& prod, Ref& ref, std::uint64_t seed, bool tie_heavy,
                  bool timed) {
  ASSERT_EQ(prod.flow_count(), ref.flow_count());
  const int flows = prod.flow_count();
  Rng rng(seed);
  std::uint64_t handle = 0;
  Time now = 0;
  for (int op = 0; op < 4000; ++op) {
    if (timed) now += rng.uniform_int(0, 2000);
    if (rng.next_double() < 0.6) {
      const int flow = static_cast<int>(rng.uniform_int(0, flows - 1));
      const double cost =
          tie_heavy ? 1.0 : static_cast<double>(rng.uniform_int(1, 8));
      prod.enqueue(flow, handle, cost, now);
      ref.enqueue(flow, handle, cost, now);
      ++handle;
    } else {
      const auto dp = prod.dequeue(now);
      const auto dr = ref.dequeue(now);
      ASSERT_EQ(dp.has_value(), dr.has_value()) << "at op " << op;
      if (dp) {
        ASSERT_EQ(dp->flow, dr->flow) << "at op " << op;
        ASSERT_EQ(dp->handle, dr->handle) << "at op " << op;
      }
    }
    ASSERT_EQ(prod.empty(), ref.empty());
    for (int f = 0; f < flows; ++f)
      ASSERT_EQ(prod.backlog(f), ref.backlog(f)) << "flow " << f;
  }
  expect_same_stream(drain(prod, now), drain(ref, now));
  EXPECT_TRUE(prod.empty());
}

std::vector<double> random_weights(int flows, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> w(static_cast<std::size_t>(flows));
  for (auto& x : w) x = static_cast<double>(rng.uniform_int(1, 4));
  return w;
}

TEST(FqDifferential, SfqMatchesScanReference) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (int flows : {2, 5, 16}) {
      for (bool tie_heavy : {true, false}) {
        const auto w = tie_heavy ? std::vector<double>(flows, 1.0)
                                 : random_weights(flows, seed * 17);
        SfqScheduler prod(w);
        scanref::ScanSfqScheduler ref(w);
        differential(prod, ref, seed, tie_heavy, /*timed=*/false);
        // SCFQ-style virtual time is part of the observable contract.
        EXPECT_EQ(prod.virtual_time(), ref.virtual_time());
      }
    }
  }
}

TEST(FqDifferential, WfqMatchesScanReference) {
  for (std::uint64_t seed : {4u, 5u, 6u}) {
    for (int flows : {2, 5, 16}) {
      for (bool tie_heavy : {true, false}) {
        const auto w = tie_heavy ? std::vector<double>(flows, 1.0)
                                 : random_weights(flows, seed * 31);
        WfqScheduler prod(w);
        scanref::ScanWfqScheduler ref(w);
        differential(prod, ref, seed, tie_heavy, /*timed=*/false);
        EXPECT_EQ(prod.virtual_time(), ref.virtual_time());
      }
    }
  }
}

TEST(FqDifferential, Wf2qMatchesScanReference) {
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    for (int flows : {2, 5, 16}) {
      for (bool tie_heavy : {true, false}) {
        const auto w = tie_heavy ? std::vector<double>(flows, 1.0)
                                 : random_weights(flows, seed * 13);
        Wf2qPlusScheduler prod(w);
        scanref::ScanWf2qPlusScheduler ref(w);
        differential(prod, ref, seed, tie_heavy, /*timed=*/false);
        // Bit-equality: the heap rewrite performs the same float ops in the
        // same order, including the eligible-empty V jump.
        EXPECT_EQ(prod.virtual_time(), ref.virtual_time());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sparse activation at 4k flows: the flat-table backends' regime.  Cohorts
// of flows scattered across the id space activate, drain fully idle, and
// later cohorts reactivate with fresh tags — the pattern that exercises
// first-touch slot assignment, idle-flow tag persistence (last_finish /
// token debt must survive an empty queue) and heap re-entry, none of which
// the small dense differentials above reach.  Unit costs in half the phases
// force equal-tag tie-break storms across cohort boundaries.

constexpr int kSparseFlows = 4096;

// One phase: activate `cohort`, interleave enqueues/dequeues randomly, then
// drain both schedulers empty and compare the full dispatch streams.
template <typename Prod, typename Ref>
void sparse_phase(Prod& prod, Ref& ref, const std::vector<int>& cohort,
                  Rng& rng, std::uint64_t& handle, Time& now, bool tie_heavy,
                  bool timed) {
  for (int flow : cohort) {
    const int burst = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < burst; ++i) {
      const double cost =
          tie_heavy ? 1.0 : static_cast<double>(rng.uniform_int(1, 8));
      prod.enqueue(flow, handle, cost, now);
      ref.enqueue(flow, handle, cost, now);
      ++handle;
    }
  }
  for (int op = 0; op < 200; ++op) {
    if (timed) now += rng.uniform_int(0, 2000);
    if (rng.next_double() < 0.4) {
      const int flow = cohort[static_cast<std::size_t>(
          rng.uniform_int(0, cohort.size() - 1))];
      const double cost =
          tie_heavy ? 1.0 : static_cast<double>(rng.uniform_int(1, 8));
      prod.enqueue(flow, handle, cost, now);
      ref.enqueue(flow, handle, cost, now);
      ++handle;
    } else {
      const auto dp = prod.dequeue(now);
      const auto dr = ref.dequeue(now);
      ASSERT_EQ(dp.has_value(), dr.has_value());
      if (dp) {
        ASSERT_EQ(dp->flow, dr->flow);
        ASSERT_EQ(dp->handle, dr->handle);
      }
    }
  }
  for (int flow : cohort) ASSERT_EQ(prod.backlog(flow), ref.backlog(flow));
  expect_same_stream(drain(prod, now), drain(ref, now));
  ASSERT_TRUE(prod.empty());
  ASSERT_TRUE(ref.empty());
}

// Phase `p`'s cohort: 48 flows marching through the id space on an odd
// multiplicative stride (injective over any 48 consecutive indices), so
// consecutive phases share almost no flows and slots are assigned in an
// order unrelated to flow id.
std::vector<int> sparse_cohort(int phase, int flows) {
  std::vector<int> cohort;
  for (int i = 0; i < 48; ++i)
    cohort.push_back(static_cast<int>(
        (static_cast<std::uint32_t>(phase * 48 + i) * 2'654'435'761u) %
        static_cast<std::uint32_t>(flows)));
  return cohort;
}

template <typename Prod, typename Ref>
void sparse_differential(Prod& prod, Ref& ref, std::uint64_t seed,
                         bool timed) {
  ASSERT_EQ(prod.flow_count(), ref.flow_count());
  Rng rng(seed);
  std::uint64_t handle = 0;
  Time now = 0;
  for (int phase = 0; phase < 6; ++phase)
    sparse_phase(prod, ref, sparse_cohort(phase, prod.flow_count()), rng,
                 handle, now, /*tie_heavy=*/phase % 2 == 0, timed);
}

TEST(FqSparseActivation, SfqMatchesScanReference) {
  auto prod = SfqScheduler::uniform(kSparseFlows, 1.0);
  scanref::ScanSfqScheduler ref(std::vector<double>(kSparseFlows, 1.0));
  sparse_differential(prod, ref, 101, /*timed=*/false);
  EXPECT_EQ(prod.virtual_time(), ref.virtual_time());
}

TEST(FqSparseActivation, WfqMatchesScanReference) {
  auto prod = WfqScheduler::uniform(kSparseFlows, 1.0);
  scanref::ScanWfqScheduler ref(std::vector<double>(kSparseFlows, 1.0));
  sparse_differential(prod, ref, 102, /*timed=*/false);
  EXPECT_EQ(prod.virtual_time(), ref.virtual_time());
}

TEST(FqSparseActivation, Wf2qMatchesScanReference) {
  auto prod = Wf2qPlusScheduler::uniform(kSparseFlows, 1.0);
  scanref::ScanWf2qPlusScheduler ref(std::vector<double>(kSparseFlows, 1.0));
  sparse_differential(prod, ref, 103, /*timed=*/false);
  EXPECT_EQ(prod.virtual_time(), ref.virtual_time());
}

TEST(FqSparseActivation, PClockBothHeadStructuresMatchScanReference) {
  // 4096 flows sits exactly at the wheel auto-threshold: run the timer
  // wheel (what kAuto picks here) and the pinned heap against the same
  // scan reference, proving head-structure choice is performance-only.
  for (const auto head : {PClockHeadTags::kWheel, PClockHeadTags::kHeap}) {
    auto prod = PClockScheduler::uniform(kSparseFlows, PClockSla{}, head);
    EXPECT_EQ(prod.uses_timer_wheel(), head == PClockHeadTags::kWheel);
    scanref::ScanPClockScheduler ref(
        std::vector<PClockSla>(kSparseFlows, PClockSla{}));
    sparse_differential(prod, ref, 104, /*timed=*/true);
  }
}

TEST(FqSparseActivation, PClockAutoSelectsWheelAtThreshold) {
  EXPECT_FALSE(PClockScheduler(std::vector<PClockSla>(4, PClockSla{}))
                   .uses_timer_wheel());
  EXPECT_TRUE(PClockScheduler::uniform(PClockScheduler::kWheelAutoThreshold,
                                       PClockSla{})
                  .uses_timer_wheel());
}

TEST(FqTieBreak, PClockWheelEqualDeadlinesDispatchLowestFlowFirst) {
  equal_tag_tie_break(PClockScheduler(std::vector<PClockSla>(4, PClockSla{}),
                                      PClockHeadTags::kWheel));
}

// The uniform() factories must be indistinguishable from the equivalent
// dense weight/SLA vectors — same tags, same dispatch, same virtual time.
TEST(FqSparseActivation, UniformFactoriesMatchVectorConstructors) {
  {
    auto a = SfqScheduler::uniform(64, 2.0);
    SfqScheduler b(std::vector<double>(64, 2.0));
    sparse_differential(a, b, 105, /*timed=*/false);
    EXPECT_EQ(a.virtual_time(), b.virtual_time());
  }
  {
    auto a = Wf2qPlusScheduler::uniform(64, 2.0);
    Wf2qPlusScheduler b(std::vector<double>(64, 2.0));
    sparse_differential(a, b, 106, /*timed=*/false);
    EXPECT_EQ(a.virtual_time(), b.virtual_time());
  }
}

// The frozen dense copies in fq/dense_reference.h are the bench baseline;
// hold them to the same scan order so a drift there cannot silently skew
// the flat-vs-dense comparison.
TEST(FqSparseActivation, DenseReferenceAgreesWithScanReference) {
  {
    denseref::DenseSfqScheduler dense(std::vector<double>(64, 1.0));
    scanref::ScanSfqScheduler scan(std::vector<double>(64, 1.0));
    sparse_differential(dense, scan, 107, /*timed=*/false);
  }
  {
    denseref::DensePClockScheduler dense(
        std::vector<PClockSla>(64, PClockSla{}));
    scanref::ScanPClockScheduler scan(
        std::vector<PClockSla>(64, PClockSla{}));
    sparse_differential(dense, scan, 108, /*timed=*/true);
  }
}

TEST(FqDifferential, PClockMatchesScanReference) {
  for (std::uint64_t seed : {10u, 11u, 12u}) {
    for (int flows : {2, 5, 16}) {
      std::vector<PClockSla> slas;
      Rng wrng(seed * 41);
      for (int f = 0; f < flows; ++f) {
        PClockSla sla;
        sla.sigma = static_cast<double>(wrng.uniform_int(1, 4));
        sla.rho = static_cast<double>(wrng.uniform_int(50, 200));
        sla.delta = wrng.uniform_int(1'000, 20'000);
        slas.push_back(sla);
      }
      PClockScheduler prod(slas);
      scanref::ScanPClockScheduler ref(slas);
      // pClock tagging depends on arrival instants: run the timed variant.
      differential(prod, ref, seed, /*tie_heavy=*/false, /*timed=*/true);
    }
  }
}

}  // namespace
}  // namespace qos
