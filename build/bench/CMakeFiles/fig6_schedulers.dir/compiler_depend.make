# Empty compiler generated dependencies file for fig6_schedulers.
# This may be replaced when dependencies are built.
