// Edge cases and failure injection across the stack: degenerate capacities,
// zero-slot admission, pathological traces, and file I/O errors.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "core/fairqueue.h"
#include "core/fcfs.h"
#include "core/miser.h"
#include "core/rtt.h"
#include "core/shaper.h"
#include "core/split.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "trace/spc.h"

namespace qos {
namespace {

Trace make_trace(std::initializer_list<Time> arrivals) {
  std::vector<Request> reqs;
  for (Time a : arrivals) reqs.push_back(Request{.arrival = a});
  return Trace(std::move(reqs));
}

TEST(EdgeCases, MiserWithZeroSlotsServesEverythingBestEffort) {
  // maxQ1 = 0: every request overflows, yet the scheduler must stay
  // work-conserving and drain the queue.
  Trace t = make_trace({0, 0, 100, 200, 5'000});
  MiserScheduler m(50, 10'000);  // 50 IOPS * 10 ms = 0 slots
  ASSERT_EQ(m.max_q1(), 0);
  ConstantRateServer server(1000);
  SimResult r = simulate(t, m, server);
  EXPECT_EQ(r.completions.size(), t.size());
  for (const auto& c : r.completions)
    EXPECT_EQ(c.klass, ServiceClass::kOverflow);
}

TEST(EdgeCases, FairQueueWithZeroSlots) {
  Trace t = make_trace({0, 0, 100});
  FairQueueScheduler fq(50, 10'000, 20);
  ConstantRateServer server(1000);
  SimResult r = simulate(t, fq, server);
  EXPECT_EQ(r.completions.size(), t.size());
}

TEST(EdgeCases, SplitWithZeroSlots) {
  Trace t = make_trace({0, 0});
  SplitScheduler split(50, 10'000);
  ConstantRateServer primary(50);
  ConstantRateServer overflow(100);
  Server* servers[] = {&primary, &overflow};
  SimResult r = simulate(t, split, servers);
  EXPECT_EQ(r.completions.size(), 2u);
  for (const auto& c : r.completions) EXPECT_EQ(c.server, 1);
}

TEST(EdgeCases, SingleRequestTrace) {
  Trace t = make_trace({12'345});
  for (Policy p : {Policy::kFcfs, Policy::kSplit, Policy::kFairQueue,
                   Policy::kMiser}) {
    ShapingConfig config;
    config.policy = p;
    config.capacity_override_iops = 100;
    ShapingOutcome out = shape_and_run(t, config);
    ASSERT_EQ(out.sim.completions.size(), 1u) << policy_name(p);
    EXPECT_EQ(out.sim.completions[0].arrival, 12'345);
  }
}

TEST(EdgeCases, AllRequestsSimultaneous) {
  std::vector<Request> reqs;
  for (int i = 0; i < 500; ++i) reqs.push_back(Request{.arrival = 0});
  Trace t(std::move(reqs));
  MiserScheduler m(100, 10'000);
  ConstantRateServer server(200);
  SimResult r = simulate(t, m, server);
  EXPECT_EQ(r.completions.size(), 500u);
  EXPECT_EQ(r.makespan(), 2'500'000);  // 500 / 200 IOPS
}

TEST(EdgeCases, VeryTightDeadlineStillSane) {
  // delta = 1 us: essentially nothing can be guaranteed at sane capacity.
  Trace t = generate_poisson(500, 5 * kUsPerSec, 401);
  const double f = fraction_guaranteed(t, 1000, 1);
  EXPECT_LT(f, 0.01);
}

TEST(EdgeCases, HugeCapacityGuaranteesAll) {
  Trace t = generate_poisson(500, 5 * kUsPerSec, 403);
  EXPECT_DOUBLE_EQ(fraction_guaranteed(t, 1e6, 10'000), 1.0);
}

TEST(EdgeCases, FractionZeroNeedsOneIops) {
  // Asking to guarantee 0% is satisfied by any capacity; search bottoms out
  // at the 1-IOPS grid point.
  Trace t = generate_poisson(500, kUsPerSec, 405);
  EXPECT_DOUBLE_EQ(min_capacity(t, 0.0, 10'000).cmin_iops, 1.0);
}

TEST(EdgeCases, ArrivalAtTimeZero) {
  Trace t = make_trace({0});
  Decomposition d = rtt_decompose(t, 100, 10'000);
  EXPECT_EQ(d.admitted, 1);
  EXPECT_EQ(d.q1_finish[0], 10'000);
}

TEST(EdgeCases, LoadSpcFileRoundTrip) {
  const char* path = "/tmp/burstqos_test_trace.spc";
  {
    std::ofstream out(path);
    out << "0,100,4096,r,0.5\n0,200,4096,w,1.5\n";
  }
  auto loaded = try_load_spc_file(path);
  ASSERT_TRUE(loaded.has_value());
  Trace t = *std::move(loaded);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].arrival, 500'000);
  EXPECT_TRUE(t[1].is_write);
  std::remove(path);
}

TEST(EdgeCases, TryLoadSpcFileReportsMissingFile) {
  EXPECT_EQ(try_load_spc_file("/nonexistent/definitely_missing.spc"),
            std::nullopt);
}

TEST(EdgeCases, TryLoadSpcFileCountsSkippedLines) {
  const char* path = "/tmp/burstqos_test_skipped.spc";
  {
    std::ofstream out(path);
    out << "0,100,4096,r,0.5\n"
        << "garbage line\n"
        << "0,200,4096,w,1.5\n";
  }
  std::size_t skipped = 0;
  auto t = try_load_spc_file(path, &skipped);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->size(), 2u);
  EXPECT_EQ(skipped, 1u);
  std::remove(path);
}

TEST(EdgeCasesDeath, NegativeArrivalRejected) {
  std::vector<Request> reqs = {Request{.arrival = -5}};
  EXPECT_DEATH(Trace{std::move(reqs)}, "Precondition");
}

TEST(EdgeCasesDeath, SimulatorRejectsWrongServerCount) {
  Trace t = make_trace({0});
  SplitScheduler split(100, 10'000);  // wants 2 servers
  ConstantRateServer only(100);
  EXPECT_DEATH(simulate(t, split, only), "Precondition");
}

TEST(EdgeCasesDeath, SimulatorRejectsInvalidTrace) {
  std::vector<Request> reqs = {Request{.arrival = 0, .size_blocks = 0}};
  Trace t(std::move(reqs));
  ASSERT_FALSE(t.validate());
  FcfsScheduler fcfs;
  ConstantRateServer server(100);
  EXPECT_DEATH(simulate(t, fcfs, server), "Precondition");
}

TEST(EdgeCases, BackToBackBusyPeriods) {
  // Request exactly when the previous one finishes: queue length at the
  // arrival must count the completion first (completions-before-arrivals).
  Trace t = make_trace({0, 10'000, 20'000});
  Decomposition d = rtt_decompose(t, 100, 10'000);  // maxQ1 = 1
  EXPECT_EQ(d.admitted, 3);
}

TEST(EdgeCases, MicrosecondApartArrivals) {
  std::vector<Request> reqs;
  for (int i = 0; i < 100; ++i)
    reqs.push_back(Request{.arrival = static_cast<Time>(i)});
  Trace t(std::move(reqs));
  FcfsScheduler fcfs;
  ConstantRateServer server(1'000'000);  // 1 us per request
  SimResult r = simulate(t, fcfs, server);
  EXPECT_EQ(r.completions.size(), 100u);
  ResponseStats stats(r.completions);
  EXPECT_LE(stats.max(), 100);
}

}  // namespace
}  // namespace qos
