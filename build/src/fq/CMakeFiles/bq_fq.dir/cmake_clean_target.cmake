file(REMOVE_RECURSE
  "libbq_fq.a"
)
