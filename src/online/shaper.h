// online::Shaper — RTT admission + burst decomposition as a servable,
// request-at-a-time library.
//
// Everything the simulator-facing facade (core/shaper.h) does inside
// simulate()'s event loop is exposed here as four calls a serving front-end
// can drive against any Clock:
//
//   admit(r, now)        -> Decision   classify one arrival (Q1 / Q2 / shed)
//   admit_batch(rs, now) -> Decisions  same, amortized over a burst
//   poll_dispatch(now)   -> commands   drain work onto idle backends
//   on_completion(...)                 report a finished service
//
// The policy backend is the *same* scheduler object shape_and_run builds
// (make_scheduler / DegradedRttScheduler) — the Shaper adds no admission
// logic of its own, it only re-frames the scheduler's callbacks as an
// imperative API.  That is a provable claim, not a slogan: replay_trace()
// (online/replay.h) drives a Shaper with a VirtualClock from a trace and
// the differential tests assert the decisions, the completion records and
// the emitted event stream are bit-identical to shape_and_run's, per
// policy.
//
// Threading: all public methods are thread-safe behind one internal mutex
// (uncontended cost is part of what bench/online_loadgen measures).  Event
// sinks, the registry and the tracer are invoked under that lock, so any
// single-threaded sink works unchanged.  admit_batch holds the lock once
// per burst — the amortization lever for arrival bursts.
//
// Ownership/lifetime: see the observability contract on ShapingConfig
// (core/shaper.h) — the Shaper calls wire_sinks() at construction and
// keeps the config by value; registry/sink/tracer must outlive the Shaper.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/shaper.h"
#include "fault/degraded_rtt.h"
#include "obs/sink.h"
#include "sim/scheduler.h"
#include "util/clock.h"
#include "util/time.h"

namespace qos::online {

/// Outcome of one admission decision.
enum class Admit : std::uint8_t {
  kQ1 = 0,   ///< admitted to the primary class: deadline guaranteed
  kQ2 = 1,   ///< overflowed (or demoted) to best effort
  kShed = 2, ///< rejected outright: Q2 backlog at max_q2_depth
};

const char* admit_name(Admit a);

/// One admission decision.  `deadline` is arrival + delta for Q1 admits
/// and kTimeMax otherwise (Q2 carries no response-time promise; shed
/// requests never enter the system).
struct Decision {
  std::uint64_t seq = 0;
  Admit admit = Admit::kShed;
  /// True when degraded admission sent a nominally-admittable request to
  /// Q2 (capacity-monitor re-tightening), as opposed to a plain overflow.
  bool demoted = false;
  Time deadline = kTimeMax;
  /// Occupancy the decision saw: lenQ1 after a Q1 admit, Q2 backlog after
  /// an overflow; -1 for shed.
  std::int64_t depth = -1;
  /// maxQ1 bound in force at the decision (0 = unbounded, e.g. FCFS).
  std::int64_t max_q1 = 0;

  bool admitted_q1() const { return admit == Admit::kQ1; }
  friend bool operator==(const Decision&, const Decision&) = default;
};

/// One unit of work the Shaper wants started on a backend.  `server` is the
/// logical backend index (0 everywhere except Split, whose overflow class
/// runs on server 1); the caller must report on_completion for it exactly
/// once, and the backend stays busy until it does.
struct DispatchCommand {
  Request request;
  ServiceClass klass = ServiceClass::kPrimary;
  int server = 0;

  friend bool operator==(const DispatchCommand&, const DispatchCommand&) =
      default;
};

struct ShaperOptions {
  /// Policy, delta, headroom and the observability hooks, exactly as for
  /// shape_and_run.  `fraction` / `capacity_override_iops` are unused: an
  /// online shaper has no trace to profile, so capacity is explicit below.
  ShapingConfig shaping;

  /// Cmin — the admission capacity the Q1 guarantee is provisioned from
  /// (IOPS, required > 0).  Feed it from offline profiling
  /// (min_capacity), a cached plan, or a controller.
  double cmin_iops = 0;

  /// Bound on the best-effort backlog: an arrival that would overflow to
  /// Q2 while q2_backlog() >= max_q2_depth is shed (Admit::kShed) and
  /// never enters the scheduler.  0 = unbounded, never shed — the setting
  /// under which the replay differential against shape_and_run holds.
  std::size_t max_q2_depth = 0;

  /// Replace the policy's static RTT admission with DegradedRtt on a
  /// single strict-priority server (fault/degraded_scheduler.h): every
  /// completion feeds the capacity monitor and the admission bound
  /// re-tightens when the backend stops delivering.  `shaping.policy` is
  /// ignored in this mode.
  bool use_degraded_admission = false;
  DegradedRttConfig degraded;
  /// Total backing-server rate the capacity monitor treats as healthy;
  /// < 0 resolves to cmin + resolved headroom.
  double server_iops = -1;

  /// Build a custom scheduler backend instead of the policy / degraded
  /// ones (e.g. a ControlledTenantScheduler for the control plane).  The
  /// scheduler must honour the one-decision-event-per-arrival contract
  /// (exactly one kAdmit / kReject / kDemote per on_arrival).  When set,
  /// `shaping.policy` and `use_degraded_admission` are ignored and
  /// `cmin_iops` may be 0 (there is no single Cmin to provision from).
  std::function<std::unique_ptr<Scheduler>()> make_custom_scheduler;
};

/// Clock-abstracted admission front-end.  One instance per shaped stream;
/// construct with the Clock the deployment runs on (SteadyClock to serve,
/// VirtualClock to replay or test).
class Shaper {
 public:
  /// `clock` is not owned and must outlive the Shaper.
  Shaper(const ShaperOptions& options, Clock& clock);
  ~Shaper();

  Shaper(const Shaper&) = delete;
  Shaper& operator=(const Shaper&) = delete;

  /// Classify one arrival at an explicit instant.  `now` must be >=
  /// every instant previously passed in (the scheduler contract); the
  /// request's `arrival` field is ignored in favour of `now`.
  Decision admit(const Request& r, Time now);
  /// Convenience: stamp `now` from the clock.
  Decision admit(const Request& r);

  /// Classify a burst under one lock acquisition.  Equivalent to calling
  /// admit() per request in order (tests assert decision-for-decision
  /// equality); the batch is the cheaper call when arrivals cluster.
  std::vector<Decision> admit_batch(std::span<const Request> batch, Time now);
  std::vector<Decision> admit_batch(std::span<const Request> batch);

  /// Drain dispatchable work onto idle backends.  Returns the commands in
  /// the exact order the simulator's offer loop would have issued them;
  /// each command's backend is busy until its on_completion.  Empty when
  /// nothing is dispatchable (all backends busy, or queues empty).
  std::vector<DispatchCommand> poll_dispatch(Time now);
  std::vector<DispatchCommand> poll_dispatch();

  /// Report that `server` finished serving `r` (previously handed out by
  /// poll_dispatch with class `klass`) at `now`.  Frees the backend; call
  /// poll_dispatch afterwards to refill it.
  void on_completion(const Request& r, ServiceClass klass, int server,
                     Time now);
  void on_completion(const Request& r, ServiceClass klass, int server);

  /// Run `fn(scheduler, now)` under the Shaper's lock, `now` stamped from
  /// the clock — the control-plane epoch seam: a controller can
  /// re-provision the backend (e.g. ControlledTenantScheduler::
  /// set_tenant_capacity) atomically with respect to concurrent
  /// admissions, so no decision ever sees a half-applied plan.  `fn` must
  /// not call back into this Shaper (the lock is held, non-reentrant).
  void reconfigure(const std::function<void(Scheduler&, Time)>& fn);

  // ---- introspection (each takes the lock) ----

  int server_count() const;
  /// Backends currently serving a dispatched request.
  int busy_servers() const;
  /// Requests admitted to Q2 and not yet dispatched.
  std::size_t q2_backlog() const;
  std::uint64_t admitted_q1() const;
  std::uint64_t admitted_q2() const;
  std::uint64_t shed() const;
  std::uint64_t demotions() const;

  const ShaperOptions& options() const { return options_; }
  /// The clock this Shaper stamps from (the one passed at construction).
  Clock& clock() { return *clock_; }
  /// The effective downstream sink (tracer head or plain sink; null when
  /// unobserved) — what a backend/server decorator should emit into so its
  /// events share the stream, mirroring simulate()'s sink forwarding.
  EventSink* event_sink() const;

 private:
  class DecisionCapture;

  Decision admit_locked(const Request& r, Time now);
  void poll_dispatch_locked(Time now, std::vector<DispatchCommand>& out);
  void on_completion_locked(const Request& r, ServiceClass klass, int server,
                            Time now);

  ShaperOptions options_;
  Clock* clock_;

  mutable std::mutex mutex_;
  std::unique_ptr<DecisionCapture> capture_;
  std::unique_ptr<Scheduler> scheduler_;
  Probe probe_;                ///< kArrival/kDispatch/kCompletion emission
  std::vector<int> idle_;      ///< idle backend indices, ascending
  int busy_ = 0;
  std::size_t q2_backlog_ = 0;
  std::uint64_t admitted_q1_ = 0;
  std::uint64_t admitted_q2_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t demotions_ = 0;
};

}  // namespace qos::online
