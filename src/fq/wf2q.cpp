#include "fq/wf2q.h"

#include <algorithm>

namespace qos {

Wf2qPlusScheduler::Wf2qPlusScheduler(std::vector<double> weights) {
  QOS_EXPECTS(!weights.empty());
  flows_.resize(weights.size());
  eligible_.reset(static_cast<int>(weights.size()));
  ineligible_.reset(static_cast<int>(weights.size()));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    QOS_EXPECTS(weights[i] > 0);
    flows_[i].weight = weights[i];
    total_weight_ += weights[i];
  }
}

void Wf2qPlusScheduler::classify(int flow, const Item& head) {
  if (head.start <= v_)
    eligible_.push(flow, head.finish);
  else
    ineligible_.push(flow, head.start);
}

void Wf2qPlusScheduler::enqueue(int flow, std::uint64_t handle, double cost,
                                Time) {
  QOS_EXPECTS(flow >= 0 && flow < flow_count());
  QOS_EXPECTS(cost > 0);
  Flow& f = flows_[static_cast<std::size_t>(flow)];
  Item item;
  item.handle = handle;
  item.cost = cost;
  item.start = std::max(v_, f.last_finish);
  item.finish = item.start + cost / f.weight;
  f.last_finish = item.finish;
  const bool was_empty = f.queue.empty();
  f.queue.push_back(item);
  if (was_empty) classify(flow, item);
}

std::optional<FqDispatch> Wf2qPlusScheduler::dequeue(Time) {
  if (eligible_.empty() && ineligible_.empty()) return std::nullopt;

  // Advance V to the minimum backlogged start tag if it fell behind.  With
  // any eligible flow (head start <= V) that minimum cannot exceed V, so
  // only the all-ineligible case moves V — to the ineligible heap's top,
  // which is exactly the minimum backlogged head start.
  if (eligible_.empty()) v_ = std::max(v_, ineligible_.top_key());
  while (!ineligible_.empty() && ineligible_.top_key() <= v_) {
    const int flow = ineligible_.pop();
    eligible_.push(flow,
                   flows_[static_cast<std::size_t>(flow)].queue.front().finish);
  }

  // Smallest finish tag among eligible heads (lowest flow index on ties).
  QOS_CHECK(!eligible_.empty());
  const int best = eligible_.pop();
  Flow& f = flows_[static_cast<std::size_t>(best)];
  const Item item = f.queue.front();
  f.queue.pop_front();
  v_ += item.cost / total_weight_;
  if (!f.queue.empty()) classify(best, f.queue.front());
  return FqDispatch{best, item.handle};
}

bool Wf2qPlusScheduler::empty() const {
  return eligible_.empty() && ineligible_.empty();
}

std::size_t Wf2qPlusScheduler::backlog(int flow) const {
  QOS_EXPECTS(flow >= 0 && flow < flow_count());
  return flows_[static_cast<std::size_t>(flow)].queue.size();
}

}  // namespace qos
