// ControlLoop — the event-driven glue between scheduler, detectors and
// controller.
//
// Sits in the observability stream (simulate()'s sink, or online::Shaper's
// sink) and closes the loop without any thread or timer of its own:
//
//   * every kCompletion is routed to that tenant's SlaBreachDetector (one
//     single-tier detector per tenant); detector transitions come back
//     through a per-tenant tagging probe that stamps the tenant into
//     Event::client before feeding the controller and the downstream sink —
//     the detector itself is tenant-agnostic;
//   * every kArrival grows the controller's demand window for its tenant;
//   * before processing each event, any epoch boundary at or before the
//     event's timestamp fires: the controller is given the scheduler's
//     monitored health, run_epoch re-solves the plan, and changed shares
//     are applied via set_tenant_capacity with one kReprovision event
//     (client = tenant, a = old share, b = new share, c = epoch index)
//     emitted downstream per change;
//   * everything is forwarded downstream unchanged.
//
// Epochs are virtual-time driven: they fire exactly at multiples of
// `epoch` as observed through the event stream, so the loop is as
// deterministic as the stream itself — offline that is simulate()'s
// single-threaded order, online it is the Shaper's mutex-serialised event
// order.  (A lull in traffic defers the boundary to the next event, whose
// timestamp then fires every elapsed epoch in order — run_epoch still sees
// the exact boundary instants.)
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "control/controlled_scheduler.h"
#include "control/controller.h"
#include "fault/sla_breach.h"
#include "obs/sink.h"
#include "util/time.h"

namespace qos {

struct ControlLoopConfig {
  Time epoch = 2 * kUsPerSec;   ///< re-provisioning period
  double sla_fraction = 0.95;   ///< per-tenant tier target
  Time delta = from_ms(10);     ///< per-tenant response-time bound
  SlaBreachConfig breach;       ///< detector window/hysteresis parameters
};

class ControlLoop final : public EventSink {
 public:
  /// `scheduler` (borrowed, required) is re-provisioned and supplies
  /// health; `controller` (borrowed) may be null, which degrades the loop
  /// to per-tenant breach detection only — the local-degradation and static
  /// baselines use exactly this so all three modes share one event path.
  /// `downstream` (borrowed, nullable) receives the full stream plus the
  /// breach/recover/reprovision events this loop generates.
  ControlLoop(ControlLoopConfig config, std::size_t tenant_count,
              ControlledTenantScheduler* scheduler, QosController* controller,
              EventSink* downstream);

  void on_event(const Event& e) override;

  const SlaBreachDetector& detector(std::size_t tenant) const {
    return *detectors_.at(tenant);
  }
  Time next_epoch() const { return next_epoch_; }
  std::uint64_t epochs_fired() const { return epochs_fired_; }
  std::uint64_t reprovisions() const { return reprovisions_; }

 private:
  // Stamps the tenant into detector-emitted breach/recover events (the
  // detector has no tenant concept) and hands them back to the loop.
  struct TenantTag final : EventSink {
    ControlLoop* loop = nullptr;
    std::uint32_t tenant = 0;
    void on_event(const Event& e) override {
      Event tagged = e;
      tagged.client = tenant;
      loop->on_breach_event(tagged);
    }
  };

  void on_breach_event(const Event& e);
  void fire_epochs_through(Time now);

  ControlLoopConfig config_;
  ControlledTenantScheduler* scheduler_;
  QosController* controller_;
  EventSink* downstream_;
  std::vector<std::unique_ptr<SlaBreachDetector>> detectors_;
  std::vector<std::unique_ptr<TenantTag>> tags_;
  Time next_epoch_;
  std::uint64_t epoch_index_ = 0;
  std::uint64_t epochs_fired_ = 0;
  std::uint64_t reprovisions_ = 0;
};

}  // namespace qos
