#include "analysis/gnuplot.h"

#include <cstdio>
#include <fstream>

#include "util/check.h"

namespace qos {

void GnuplotWriter::add_series(std::string name, std::vector<Point> points) {
  series_.push_back(Series{std::move(name), std::move(points)});
}

std::string GnuplotWriter::dat_content() const {
  std::string out;
  char buf[96];
  for (const auto& s : series_) {
    out += "# ";
    out += s.name;
    out += '\n';
    for (const auto& p : s.points) {
      std::snprintf(buf, sizeof buf, "%.6g %.6g\n", p.x, p.y);
      out += buf;
    }
    out += "\n\n";  // gnuplot block separator
  }
  return out;
}

std::string GnuplotWriter::script_content(const std::string& base) const {
  std::string out;
  out += "set terminal pngcairo size 900,600\n";
  out += "set output '" + base + ".png'\n";
  if (!title_.empty()) out += "set title '" + title_ + "'\n";
  out += "set xlabel '" + xlabel_ + "'\n";
  out += "set ylabel '" + ylabel_ + "'\n";
  if (logscale_x_) out += "set logscale x\n";
  out += "set key bottom right\n";
  out += "plot ";
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i) out += ", \\\n     ";
    out += "'" + base + ".dat' index " + std::to_string(i) +
           " with linespoints title '" + series_[i].name + "'";
  }
  out += '\n';
  return out;
}

void GnuplotWriter::write(const std::string& dir,
                          const std::string& base) const {
  const std::string stem = dir + "/" + base;
  {
    std::ofstream dat(stem + ".dat");
    QOS_EXPECTS(dat.good());
    dat << dat_content();
  }
  {
    std::ofstream gp(stem + ".gp");
    QOS_EXPECTS(gp.good());
    gp << script_content(base);
  }
}

}  // namespace qos
