// Ablation: which fair scheduler backs the FairQueue recombination?
//
// The paper says "a proportional share bandwidth allocator (like WF2Q, SFQ,
// pClock)".  This bench runs the same decomposed WebSearch workload under
// all three src/fq implementations (plus a weight-ratio sweep for SFQ) and
// compares both classes' distributions — showing the recombination is robust
// to the choice, with small tail differences.
#include <cstdio>
#include <memory>

#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "core/fairqueue.h"
#include "fq/drr.h"
#include "fq/pclock.h"
#include "fq/sfq.h"
#include "fq/wf2q.h"
#include "fq/wfq.h"
#include "sim/simulator.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

std::unique_ptr<FairScheduler> make_fq(const std::string& kind, double w1,
                                       double w2, Time delta) {
  if (kind == "SFQ")
    return std::make_unique<SfqScheduler>(std::vector<double>{w1, w2});
  if (kind == "WF2Q+")
    return std::make_unique<Wf2qPlusScheduler>(std::vector<double>{w1, w2});
  if (kind == "WFQ")
    return std::make_unique<WfqScheduler>(std::vector<double>{w1, w2});
  if (kind == "DRR")
    return std::make_unique<DrrScheduler>(std::vector<double>{w1, w2},
                                          1.0 / w2);
  // pClock: Q1's envelope matches its RTT reservation — burst allowance of
  // one full primary queue (Cmin * delta slots) at rate Cmin; Q2 a loose
  // envelope.
  std::vector<PClockSla> slas = {
      PClockSla{.sigma = w1 * to_sec(delta), .rho = w1, .delta = delta},
      PClockSla{.sigma = 1, .rho = w2, .delta = 10 * delta}};
  return std::make_unique<PClockScheduler>(slas);
}

void run() {
  const Time delta = from_ms(50);
  const Trace trace = preset_trace(Workload::kWebSearch, 1800 * kUsPerSec);
  const double cmin = min_capacity(trace, 0.90, delta).cmin_iops;
  const double dc = overflow_headroom_iops(delta);

  std::printf("workload WS, Cmin(90%%, 50 ms) = %.0f IOPS, dC = %.0f\n\n",
              cmin, dc);
  AsciiTable table;
  table.add("Scheduler", "Q1 within 50ms", "Q2 mean (ms)", "Q2 p99 (ms)",
            "all within 50ms");
  for (const char* kind : {"SFQ", "WFQ", "WF2Q+", "DRR", "pClock"}) {
    FairQueueScheduler fq(cmin, delta, dc, make_fq(kind, cmin, dc, delta));
    ConstantRateServer server(cmin + dc);
    SimResult sim = simulate(trace, fq, server);
    ResponseStats q1(sim.completions, ServiceClass::kPrimary);
    ResponseStats q2(sim.completions, ServiceClass::kOverflow);
    ResponseStats all(sim.completions);
    table.add(kind, format_double(100 * q1.fraction_within(delta), 2) + "%",
              q2.empty() ? "-" : format_double(q2.mean_us() / 1000.0, 1),
              q2.empty() ? "-"
                         : format_double(to_ms(q2.percentile(0.99)), 0),
              format_double(100 * all.fraction_within(delta), 2) + "%");
  }
  std::printf("%s\n", table.to_string().c_str());

  // Weight-ratio sweep for SFQ: more overflow weight helps Q2 but starts to
  // squeeze Q1's reservation once it exceeds dC.
  std::printf("SFQ weight-ratio sweep (server capacity fixed at Cmin+dC):\n");
  AsciiTable sweep;
  sweep.add("Q1:Q2 weight", "Q1 within 50ms", "Q2 mean (ms)");
  for (double ratio : {32.0, 16.0, 8.0, 4.0, 2.0}) {
    auto sfq = std::make_unique<SfqScheduler>(
        std::vector<double>{ratio, 1.0});
    FairQueueScheduler fq(cmin, delta, dc, std::move(sfq));
    ConstantRateServer server(cmin + dc);
    SimResult sim = simulate(trace, fq, server);
    ResponseStats q1(sim.completions, ServiceClass::kPrimary);
    ResponseStats q2(sim.completions, ServiceClass::kOverflow);
    sweep.add(format_double(ratio, 0) + ":1",
              format_double(100 * q1.fraction_within(delta), 2) + "%",
              q2.empty() ? "-" : format_double(q2.mean_us() / 1000.0, 1));
  }
  std::printf("%s", sweep.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("Ablation: fair-scheduler family behind FairQueue\n\n");
  run();
  return 0;
}
