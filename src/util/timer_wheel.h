// Hierarchical bitmap timer wheel: a calendar-queue priority structure for
// virtual-time head tags, the O(1)-amortized alternative to IndexedMinHeap.
//
// Keys are unsigned 64-bit ticks (integer deadlines, or any monotone
// integer embedding of a tag).  The wheel quantizes `key - origin` into one
// of 64^3 buckets of width 2^shift ticks; a three-level occupancy bitmap
// (one bit per bucket, one bit per 64 buckets, one bit per 4096) turns
// find-min-bucket into three find-first-set instructions.  Within a bucket
// the minimum is located by an exact (key, tie) walk, so extraction order
// is the same scan-equivalent total order the heaps implement — ascending
// key, ties broken by the lowest tie value (flow id) — and a backend
// swapping heap for wheel dispatches bit-identically.
//
// Keys past the wheel's horizon (bucket_count << shift ticks from origin)
// go to an unordered overflow lane that is only consulted when the wheel
// proper drains; the wheel then re-anchors `origin` (renormalizes) and
// redistributes.  Keys below `origin` — possible after a renormalization
// anchored on a far-future overflow key — clamp into bucket 0, which keeps
// ordering exact (bucket 0's walk compares full keys) at a locality cost,
// so callers should report a lower bound on future keys via
// `advance_floor`; renormalization then anchors no higher than that floor
// and the clamp path stays cold.
//
// Unlike a classic timer wheel there is no tick cascade: extraction pays
// the in-bucket walk instead.  That trades worst-case O(bucket occupancy)
// per pop for O(1) insert/erase/re-key with zero per-node allocation —
// node storage is one flat 24-byte record per id, grown lazily, so an idle
// wheel costs nothing per configured flow (the same contract as the lazy
// IndexedMinHeap).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace qos {

class TimerWheel {
 public:
  /// `shift` sets the bucket width to 2^shift key ticks.  With the default
  /// 6 (64 us at microsecond keys) the horizon is ~16.8 s of deadlines; a
  /// wider shift trades longer in-bucket walks for a longer horizon.
  explicit TimerWheel(int shift = 6) : shift_(shift) {
    QOS_EXPECTS(shift >= 0 && shift < 40);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  bool contains(std::uint32_t id) const {
    return id < nodes_.size() && nodes_[id].loc != kAbsentLoc;
  }

  std::uint64_t key_of(std::uint32_t id) const {
    QOS_EXPECTS(contains(id));
    return nodes_[id].key;
  }

  void push(std::uint32_t id, std::uint64_t key, std::int32_t tie) {
    if (id >= nodes_.size()) {
      std::size_t next = nodes_.empty() ? 16 : nodes_.size() * 2;
      if (next < id + 1) next = id + 1;
      nodes_.resize(next);
    }
    QOS_EXPECTS(nodes_[id].loc == kAbsentLoc);
    Node& n = nodes_[id];
    n.key = key;
    n.tie = tie;
    link(id);
    ++size_;
    if (cached_valid_ && before(n.key, n.tie, nodes_[cached_min_].key,
                                nodes_[cached_min_].tie))
      cached_min_ = id;
  }

  /// Re-key an id already in the wheel (tie value is retained).
  void update(std::uint32_t id, std::uint64_t key) {
    QOS_EXPECTS(contains(id));
    const std::int32_t tie = nodes_[id].tie;
    erase(id);
    push(id, key, tie);
  }

  void erase(std::uint32_t id) {
    QOS_EXPECTS(contains(id));
    unlink(id);
    nodes_[id].loc = kAbsentLoc;
    --size_;
    if (cached_valid_ && cached_min_ == id) cached_valid_ = false;
  }

  /// Id holding the smallest (key, tie).  Non-const: may renormalize the
  /// origin and refresh the cached minimum.
  std::uint32_t top() {
    QOS_EXPECTS(size_ > 0);
    if (!cached_valid_) find_min();
    return cached_min_;
  }

  std::uint64_t top_key() { return nodes_[top()].key; }
  std::int32_t top_tie() { return nodes_[top()].tie; }

  /// Remove and return the id with the smallest (key, tie).
  std::uint32_t pop() {
    const std::uint32_t id = top();
    erase(id);
    return id;
  }

  /// Perf hint: every future `push` key will be >= t.  Lets a
  /// renormalization anchor the origin low enough that nothing clamps into
  /// bucket 0.  Never required for correctness.
  void advance_floor(std::uint64_t t) {
    if (t > floor_) floor_ = t;
  }

  /// Bytes held by the wheel (nodes + bucket heads + bitmaps); lazy, so an
  /// idle wheel is a few machine words regardless of the id space.
  std::size_t memory_bytes() const {
    return nodes_.capacity() * sizeof(Node) +
           heads_.capacity() * sizeof(std::uint32_t) +
           low_bits_.capacity() * sizeof(std::uint64_t) + sizeof(mid_bits_);
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::uint32_t kAbsentLoc = 0xFFFFFFFFu;
  static constexpr std::uint32_t kOverflowLoc = 0xFFFFFFFEu;
  static constexpr std::size_t kBuckets = 64 * 64 * 64;

  struct Node {
    std::uint64_t key = 0;
    std::int32_t tie = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint32_t loc = kAbsentLoc;  ///< bucket index, overflow, or absent
  };

  static bool before(std::uint64_t ka, std::int32_t ta, std::uint64_t kb,
                     std::int32_t tb) {
    if (ka != kb) return ka < kb;
    return ta < tb;
  }

  static int find_first_set(std::uint64_t x) {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_ctzll(x);
#else
    int n = 0;
    while ((x & 1u) == 0) {
      x >>= 1;
      ++n;
    }
    return n;
#endif
  }

  std::uint64_t horizon() const {
    return static_cast<std::uint64_t>(kBuckets) << shift_;
  }

  std::uint32_t bucket_for(std::uint64_t key) const {
    // Keys below origin clamp to bucket 0 — ordering stays exact because
    // in-bucket walks compare full keys.
    const std::uint64_t offset = key < origin_ ? 0 : key - origin_;
    const std::uint64_t b = offset >> shift_;
    return b < kBuckets ? static_cast<std::uint32_t>(b) : kOverflowLoc;
  }

  void link(std::uint32_t id) {
    Node& n = nodes_[id];
    const std::uint32_t loc = bucket_for(n.key);
    n.loc = loc;
    std::uint32_t& head = loc == kOverflowLoc ? overflow_head_ : head_of(loc);
    n.prev = kNil;
    n.next = head;
    if (head != kNil) nodes_[head].prev = id;
    head = id;
    if (loc != kOverflowLoc) mark(loc);
  }

  void unlink(std::uint32_t id) {
    Node& n = nodes_[id];
    if (n.prev != kNil)
      nodes_[n.prev].next = n.next;
    else if (n.loc == kOverflowLoc)
      overflow_head_ = n.next;
    else
      heads_[n.loc] = n.next;
    if (n.next != kNil) nodes_[n.next].prev = n.prev;
    if (n.loc != kOverflowLoc && heads_[n.loc] == kNil) unmark(n.loc);
  }

  std::uint32_t& head_of(std::uint32_t bucket) {
    if (heads_.empty()) {
      heads_.assign(kBuckets, kNil);
      low_bits_.assign(kBuckets / 64, 0);
    }
    return heads_[bucket];
  }

  void mark(std::uint32_t bucket) {
    low_bits_[bucket >> 6] |= 1ull << (bucket & 63);
    mid_bits_[bucket >> 12] |= 1ull << ((bucket >> 6) & 63);
    top_bits_ |= 1ull << (bucket >> 12);
  }

  void unmark(std::uint32_t bucket) {
    low_bits_[bucket >> 6] &= ~(1ull << (bucket & 63));
    if (low_bits_[bucket >> 6] == 0) {
      mid_bits_[bucket >> 12] &= ~(1ull << ((bucket >> 6) & 63));
      if (mid_bits_[bucket >> 12] == 0)
        top_bits_ &= ~(1ull << (bucket >> 12));
    }
  }

  /// Locate the exact (key, tie) minimum and cache it.  Renormalizes first
  /// if every in-horizon bucket is empty but the overflow lane is not.
  void find_min() {
    while (top_bits_ == 0) {
      QOS_CHECK(overflow_head_ != kNil);
      renormalize();
    }
    const int t = find_first_set(top_bits_);
    const int m = find_first_set(mid_bits_[t]);
    const std::uint32_t low_word =
        (static_cast<std::uint32_t>(t) << 6) | static_cast<std::uint32_t>(m);
    const int l = find_first_set(low_bits_[low_word]);
    const std::uint32_t bucket =
        (low_word << 6) | static_cast<std::uint32_t>(l);
    std::uint32_t best = heads_[bucket];
    for (std::uint32_t id = nodes_[best].next; id != kNil;
         id = nodes_[id].next) {
      if (before(nodes_[id].key, nodes_[id].tie, nodes_[best].key,
                 nodes_[best].tie))
        best = id;
    }
    cached_min_ = best;
    cached_valid_ = true;
  }

  /// Re-anchor the origin so the earliest overflow key lands in a bucket,
  /// then redistribute the overflow lane.  Only called with the wheel
  /// proper empty, so no bucketed node's position can go stale.
  void renormalize() {
    std::uint64_t min_key = nodes_[overflow_head_].key;
    for (std::uint32_t id = nodes_[overflow_head_].next; id != kNil;
         id = nodes_[id].next)
      if (nodes_[id].key < min_key) min_key = nodes_[id].key;
    // Anchor at the callers' future-key floor when the earliest overflow
    // key still fits from there; otherwise pull the origin up just enough.
    std::uint64_t base = floor_ < min_key ? floor_ : min_key;
    if (min_key - base >= horizon())
      base = min_key - horizon() + (1ull << shift_);
    QOS_CHECK(base > origin_);  // progress: renormalization must advance
    origin_ = base;
    std::uint32_t id = overflow_head_;
    overflow_head_ = kNil;
    while (id != kNil) {
      const std::uint32_t next = nodes_[id].next;
      link(id);
      id = next;
    }
  }

  int shift_;
  std::uint64_t origin_ = 0;
  std::uint64_t floor_ = 0;
  std::size_t size_ = 0;
  std::vector<Node> nodes_;          ///< id-indexed, grown lazily
  std::vector<std::uint32_t> heads_; ///< per-bucket list heads (lazy)
  std::vector<std::uint64_t> low_bits_;  ///< one bit per bucket (lazy)
  std::uint64_t mid_bits_[64] = {};  ///< one bit per 64 buckets
  std::uint64_t top_bits_ = 0;       ///< one bit per 4096 buckets
  std::uint32_t overflow_head_ = kNil;
  std::uint32_t cached_min_ = 0;
  mutable bool cached_valid_ = false;
};

}  // namespace qos
