file(REMOVE_RECURSE
  "CMakeFiles/test_fq_backends.dir/test_fq_backends.cpp.o"
  "CMakeFiles/test_fq_backends.dir/test_fq_backends.cpp.o.d"
  "test_fq_backends"
  "test_fq_backends.pdb"
  "test_fq_backends[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fq_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
