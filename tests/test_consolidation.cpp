#include "core/consolidation.h"

#include <gtest/gtest.h>

#include "trace/generator.h"

namespace qos {
namespace {

TEST(Consolidation, EstimateIsSumOfIndividuals) {
  Trace a = generate_poisson(300, 20 * kUsPerSec, 61);
  Trace b = generate_poisson(500, 20 * kUsPerSec, 67);
  const Trace clients[] = {a, b};
  ConsolidationReport r = consolidate(clients, 0.9, 10'000);
  ASSERT_EQ(r.individual_iops.size(), 2u);
  EXPECT_DOUBLE_EQ(r.estimate_iops,
                   r.individual_iops[0] + r.individual_iops[1]);
}

TEST(Consolidation, ActualNeverBelowLargestIndividual) {
  // The merged workload contains each client's stream, so it can't need
  // less than the most demanding client alone.
  Trace a = generate_poisson(200, 20 * kUsPerSec, 71);
  Trace b = generate_poisson(800, 20 * kUsPerSec, 73);
  const Trace clients[] = {a, b};
  ConsolidationReport r = consolidate(clients, 0.95, 10'000);
  EXPECT_GE(r.actual_iops,
            std::max(r.individual_iops[0], r.individual_iops[1]));
}

TEST(Consolidation, ActualNeverAboveEstimatePlusSlack) {
  // Serving both at the sum of individual capacities is always feasible for
  // the decomposed profile (queues superpose); allow the integer-grid +1.
  Trace a = generate_poisson(300, 20 * kUsPerSec, 79);
  Trace b = generate_poisson(400, 20 * kUsPerSec, 83);
  const Trace clients[] = {a, b};
  ConsolidationReport r = consolidate(clients, 0.9, 10'000);
  EXPECT_LE(r.actual_iops, r.estimate_iops + 2);
}

TEST(Consolidation, DecomposedEstimateTighterThanWorstCase) {
  // The paper's Figures 7-8: for bursty workloads the 100% estimate
  // over-provisions (actual << estimate), while the 90% decomposed estimate
  // is accurate (actual ~= estimate).  The effect requires the tail to be a
  // small *fraction of requests* (clusters), as in the paper's traces.
  // Base rate high enough that per-window Poisson noise is small relative
  // to capacity (the paper's traces run at hundreds of IOPS), with rare
  // dense clusters forming the tail.
  WorkloadSpec spec;
  spec.states = {{600, 2.0}};
  spec.batches = {.batches_per_sec = 0.1,
                  .mean_size = 30,
                  .spread_us = 1'000,
                  .giant_prob = 0,
                  .giant_factor = 1};
  Trace a = generate_workload(spec, 120 * kUsPerSec, 89);
  Trace b = generate_workload(spec, 120 * kUsPerSec, 97);
  const Trace clients[] = {a, b};
  ConsolidationReport full = consolidate(clients, 1.0, 20'000);
  ConsolidationReport shaped = consolidate(clients, 0.9, 20'000);
  EXPECT_LT(full.ratio(), 0.95);  // worst-case sum over-provisions
  EXPECT_GT(shaped.ratio(), full.ratio());  // decomposition tightens it
  EXPECT_LT(shaped.relative_error(), 0.25);
}

TEST(Consolidation, RelativeErrorSymmetric) {
  ConsolidationReport r;
  r.estimate_iops = 100;
  r.actual_iops = 80;
  EXPECT_DOUBLE_EQ(r.relative_error(), 0.2);
  r.actual_iops = 120;
  EXPECT_DOUBLE_EQ(r.relative_error(), 0.2);
}

TEST(Consolidation, SingleClientDegenerate) {
  Trace a = generate_poisson(300, 10 * kUsPerSec, 101);
  const Trace clients[] = {a};
  ConsolidationReport r = consolidate(clients, 0.9, 10'000);
  EXPECT_DOUBLE_EQ(r.estimate_iops, r.individual_iops[0]);
  // Merging a single trace re-tags clients but preserves arrivals.
  EXPECT_NEAR(r.actual_iops, r.estimate_iops, 1.0);
}

}  // namespace
}  // namespace qos
