file(REMOVE_RECURSE
  "CMakeFiles/test_wf2q.dir/test_wf2q.cpp.o"
  "CMakeFiles/test_wf2q.dir/test_wf2q.cpp.o.d"
  "test_wf2q"
  "test_wf2q.pdb"
  "test_wf2q[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wf2q.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
