#include "obs/profile.h"

#include <algorithm>
#include <ctime>

#include "obs/metrics.h"

namespace qos {

std::uint64_t thread_cpu_time_us() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1'000ull;
#else
  return 0;
#endif
}

void ProfileCollector::record(const std::string& phase, std::uint64_t wall_us,
                              std::uint64_t cpu_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  PhaseProfile& p = phases_[phase];
  ++p.calls;
  p.wall_us += wall_us;
  p.cpu_us += cpu_us;
  p.max_wall_us = std::max(p.max_wall_us, wall_us);
}

std::map<std::string, PhaseProfile> ProfileCollector::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return phases_;
}

bool ProfileCollector::empty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return phases_.empty();
}

void ProfileCollector::export_to(MetricRegistry& registry) const {
  for (const auto& [name, p] : snapshot()) {
    registry.counter("profile." + name + ".calls").add(p.calls);
    registry.gauge("profile." + name + ".wall_us")
        .add(static_cast<double>(p.wall_us));
    registry.gauge("profile." + name + ".cpu_us")
        .add(static_cast<double>(p.cpu_us));
    registry.gauge("profile." + name + ".max_wall_us")
        .set(static_cast<double>(p.max_wall_us));
  }
}

ProfileScope::ProfileScope(ProfileCollector* collector, const char* phase)
    : collector_(collector), phase_(phase) {
  if (collector_ == nullptr) return;
  wall_start_ = std::chrono::steady_clock::now();
  cpu_start_us_ = thread_cpu_time_us();
}

ProfileScope::~ProfileScope() {
  if (collector_ == nullptr) return;
  const auto wall_end = std::chrono::steady_clock::now();
  const std::uint64_t cpu_end_us = thread_cpu_time_us();
  const auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           wall_end - wall_start_)
                           .count();
  collector_->record(phase_, static_cast<std::uint64_t>(wall_us),
                     cpu_end_us >= cpu_start_us_ ? cpu_end_us - cpu_start_us_
                                                 : 0);
}

}  // namespace qos
