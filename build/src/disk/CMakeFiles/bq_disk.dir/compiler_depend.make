# Empty compiler generated dependencies file for bq_disk.
# This may be replaced when dependencies are built.
