// pClock-style arrival-curve scheduler.
//
// pClock (Gulati, Merchant, Varman — SIGMETRICS 2007) tags each request with
// a deadline derived from its flow's SLA envelope (burst sigma, rate rho,
// latency dlt): a request that conforms to the token bucket (sigma, rho) is
// due dlt after arrival; non-conforming requests are pushed out by the time
// the bucket needs to earn the missing tokens.  The server issues the
// earliest deadline first.  Spare capacity automatically goes to whichever
// flow has the earliest outstanding deadline, making the scheduler
// work-conserving.
//
// This is a faithful reimplementation of pClock's tagging discipline on our
// abstract flow model (costs in request slots).  Per-flow deadlines are
// non-decreasing (FIFO within a flow), so earliest-deadline-first reduces to
// an indexed min-heap over (head deadline, flow index) — the tagged priority
// queue of the original paper — giving O(log flows) dequeue with the
// lowest-index tie-break matching the pre-heap scan order.
#pragma once

#include <vector>

#include "fq/fair_scheduler.h"
#include "util/check.h"
#include "util/indexed_heap.h"
#include "util/ring_buffer.h"

namespace qos {

struct PClockSla {
  double sigma = 1;   ///< burst allowance (requests)
  double rho = 100;   ///< sustained rate (requests / second)
  Time delta = 10'000;  ///< latency bound for conforming requests (us)
};

class PClockScheduler final : public FairScheduler {
 public:
  explicit PClockScheduler(std::vector<PClockSla> slas);

  int flow_count() const override {
    return static_cast<int>(flows_.size());
  }
  void enqueue(int flow, std::uint64_t handle, double cost, Time now) override;
  std::optional<FqDispatch> dequeue(Time now) override;
  bool empty() const override;
  std::size_t backlog(int flow) const override;

 private:
  struct Item {
    std::uint64_t handle = 0;
    Time deadline = 0;
  };
  struct Flow {
    PClockSla sla;
    double tokens = 0;      ///< current bucket level (<= sigma)
    Time last_update = 0;
    RingBuffer<Item> queue;
  };

  std::vector<Flow> flows_;
  IndexedMinHeap<Time> head_deadline_;  ///< backlogged flows, EDF order
};

}  // namespace qos
