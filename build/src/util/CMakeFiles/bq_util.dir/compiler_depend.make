# Empty compiler generated dependencies file for bq_util.
# This may be replaced when dependencies are built.
