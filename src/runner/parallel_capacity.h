// Parallel + cached capacity planning on top of core/capacity.h.
//
// The hot consumers of min_capacity — the Table 1 knee curves, multi-tenant
// provisioning, consolidation estimates — are bags of independent searches.
// These helpers fan them out over a ThreadPool and optionally memoize each
// search in a ResultCache, while producing the exact values the serial core
// routines produce (the searches are deterministic; only wall-clock and
// probe counts change).
//
//   * capacity_profile_parallel: the endpoint fractions are searched first
//     (concurrently), then every middle fraction binary-searches inside the
//     [Cmin(f_lo), Cmin(f_hi)] bracket monotonicity guarantees — so the
//     middles are both parallel and probe-cheap.
//   * consolidate_parallel / plan_tenant_specs_parallel: one search per
//     client (plus the merged trace) concurrently, assembled through the
//     same core code paths as the serial versions.
#pragma once

#include <span>
#include <vector>

#include "core/capacity.h"
#include "core/consolidation.h"
#include "core/multi_tenant.h"
#include "runner/result_cache.h"
#include "runner/thread_pool.h"
#include "trace/trace.h"

namespace qos {

/// min_capacity with content-addressed memoization.  `trace_digest` is
/// hash_trace(trace) when the caller already has it (nullptr recomputes).
/// A hit returns the stored result bit-for-bit, including the probe count
/// the original compute spent.  `cache == nullptr` degrades to a plain
/// search.
CapacityResult min_capacity_cached(const Trace& trace, double fraction,
                                   Time delta, ResultCache* cache,
                                   const Digest* trace_digest = nullptr,
                                   CapacityHint hint = {});

/// capacity_profile evaluated concurrently (see file comment).  Returns
/// exactly capacity_profile's points, in the same fraction-sorted order.
std::vector<CapacityPoint> capacity_profile_parallel(
    ThreadPool& pool, const Trace& trace, Time delta,
    std::vector<double> fractions = {0.90, 0.95, 0.99, 0.995, 0.999, 1.0},
    ResultCache* cache = nullptr);

/// consolidate() with the per-client and merged searches run concurrently.
ConsolidationReport consolidate_parallel(ThreadPool& pool,
                                         std::span<const Trace> clients,
                                         double fraction, Time delta,
                                         ResultCache* cache = nullptr);

/// plan_tenant_specs() with the per-tenant Cmin searches run concurrently.
std::vector<TenantSpec> plan_tenant_specs_parallel(
    ThreadPool& pool, std::span<const Trace> tenants, double fraction,
    Time delta, ResultCache* cache = nullptr);

}  // namespace qos
