// Unit and differential tests for the million-flow structures: FlatSlotMap
// (cache-line-bucketed flow id -> dense slot table) and TimerWheel (the
// hierarchical-bitmap calendar queue that replaces IndexedMinHeap for
// integer virtual-time tags).  The randomized sections drive each structure
// and a textbook counterpart (std::unordered_map / the indexed heap itself)
// through identical seeded op streams and demand identical answers at every
// step — the wheel in particular must reproduce the heap's exact
// (key, lowest tie) extraction order across bucket boundaries, overflow
// renormalizations and below-origin clamps.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/flat_table.h"
#include "util/indexed_heap.h"
#include "util/rng.h"
#include "util/timer_wheel.h"

namespace qos {
namespace {

TEST(FlatSlotMap, AssignsDenseSlotsInFirstTouchOrder) {
  FlatSlotMap m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), FlatSlotMap::kNoSlot);
  EXPECT_EQ(m.find_or_insert(7), 0u);
  EXPECT_EQ(m.find_or_insert(1'000'000), 1u);
  EXPECT_EQ(m.find_or_insert(7), 0u);  // idempotent
  EXPECT_EQ(m.find(1'000'000), 1u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.key_of_slot(0), 7);
  EXPECT_EQ(m.key_of_slot(1), 1'000'000);
}

TEST(FlatSlotMap, SurvivesGrowthAcrossManyKeys) {
  // Push enough keys to force several bucket-table doublings and verify
  // every mapping survives each rehash.
  FlatSlotMap m;
  constexpr int kKeys = 10'000;
  for (int i = 0; i < kKeys; ++i)
    ASSERT_EQ(m.find_or_insert(i * 977), static_cast<std::uint32_t>(i));
  for (int i = 0; i < kKeys; ++i)
    ASSERT_EQ(m.find(i * 977), static_cast<std::uint32_t>(i));
  EXPECT_EQ(m.find(1), FlatSlotMap::kNoSlot);
  EXPECT_EQ(m.size(), static_cast<std::size_t>(kKeys));
}

TEST(FlatSlotMap, DifferentialAgainstUnorderedMap) {
  FlatSlotMap m;
  std::unordered_map<std::int32_t, std::uint32_t> ref;
  Rng rng(21);
  for (int op = 0; op < 50'000; ++op) {
    // Mix of fresh keys, repeats and never-inserted probes, spread over a
    // sparse id space to exercise tag collisions and bucket overflow.
    const std::int32_t key =
        static_cast<std::int32_t>(rng.uniform_int(0, 1 << 22));
    if (rng.next_double() < 0.5) {
      const auto it = ref.find(key);
      const std::uint32_t got = m.find_or_insert(key);
      if (it != ref.end()) {
        ASSERT_EQ(got, it->second);
      } else {
        ASSERT_EQ(got, static_cast<std::uint32_t>(ref.size()));
        ref.emplace(key, got);
      }
    } else {
      const auto it = ref.find(key);
      ASSERT_EQ(m.find(key),
                it == ref.end() ? FlatSlotMap::kNoSlot : it->second);
    }
    ASSERT_EQ(m.size(), ref.size());
  }
}

TEST(FlatSlotMap, MemoryScalesWithKeysSeenNotIdSpace) {
  // Holding 100 flows drawn from a 2^30 id space must cost O(100), and an
  // empty table must cost nothing — the contract the schedulers' O(flows
  // seen) footprint rests on.
  FlatSlotMap m;
  EXPECT_EQ(m.memory_bytes(), 0u);
  for (int i = 0; i < 100; ++i) m.find_or_insert(i * (1 << 20));
  EXPECT_LT(m.memory_bytes(), 64u * 1024u);
}

// ---------------------------------------------------------------------------
// TimerWheel

TEST(TimerWheel, PopsInKeyThenTieOrder) {
  TimerWheel w;
  w.push(0, 50, 9);
  w.push(1, 50, 2);  // equal key: lower tie must come out first
  w.push(2, 10, 5);
  w.push(3, 500'000, 1);  // different level of the bucket hierarchy
  EXPECT_EQ(w.pop(), 2u);
  EXPECT_EQ(w.pop(), 1u);
  EXPECT_EQ(w.pop(), 0u);
  EXPECT_EQ(w.pop(), 3u);
  EXPECT_TRUE(w.empty());
}

TEST(TimerWheel, UpdateRekeysAndKeepsTie) {
  TimerWheel w;
  w.push(0, 100, 7);
  w.push(1, 200, 3);
  w.update(1, 50);
  EXPECT_EQ(w.top(), 1u);
  EXPECT_EQ(w.top_key(), 50u);
  EXPECT_EQ(w.top_tie(), 3);
  w.update(1, 300);
  EXPECT_EQ(w.top(), 0u);
  EXPECT_EQ(w.key_of(1), 300u);
}

TEST(TimerWheel, EraseAndContains) {
  TimerWheel w;
  w.push(4, 10, 0);
  w.push(5, 20, 1);
  EXPECT_TRUE(w.contains(4));
  w.erase(4);
  EXPECT_FALSE(w.contains(4));
  EXPECT_EQ(w.pop(), 5u);
  EXPECT_TRUE(w.empty());
}

TEST(TimerWheel, OverflowLaneRenormalizesInOrder) {
  // Horizon at the default shift is 64^3 * 64 ticks (~16.8M); keys past it
  // park in the overflow lane and must still extract in exact order once
  // the wheel drains and re-anchors.
  TimerWheel w;
  w.push(0, 5, 0);
  w.push(1, 30'000'000, 1);
  w.push(2, 20'000'000, 2);
  w.push(3, 90'000'000, 3);
  EXPECT_EQ(w.pop(), 0u);
  EXPECT_EQ(w.pop(), 2u);
  EXPECT_EQ(w.pop(), 1u);
  EXPECT_EQ(w.pop(), 3u);
}

TEST(TimerWheel, LoneFarFutureKeyIsReachable) {
  // A single key far beyond the horizon forces the renormalization that
  // pulls the origin up past the callers' floor.
  TimerWheel w;
  w.push(9, 1'000'000'000'000ull, 4);
  EXPECT_EQ(w.top(), 9u);
  EXPECT_EQ(w.top_key(), 1'000'000'000'000ull);
}

TEST(TimerWheel, KeysBelowOriginClampButStayOrdered) {
  // Drive origin forward via an overflow renormalization, then insert keys
  // below the new origin: they clamp into bucket 0 yet must extract in
  // exact (key, tie) order.
  TimerWheel w;
  w.push(0, 20'000'000, 0);
  EXPECT_EQ(w.top(), 0u);  // renormalizes; origin is now > 3e6
  w.push(1, 100, 1);
  w.push(2, 4'000'000, 2);
  w.push(3, 90, 3);
  EXPECT_EQ(w.pop(), 3u);
  EXPECT_EQ(w.pop(), 1u);
  EXPECT_EQ(w.pop(), 2u);
  EXPECT_EQ(w.pop(), 0u);
}

TEST(TimerWheel, MemoryIsLazyAndBounded) {
  TimerWheel idle;
  EXPECT_EQ(idle.memory_bytes(), sizeof(std::uint64_t) * 64);
  TimerWheel w;
  for (std::uint32_t id = 0; id < 100; ++id) w.push(id, id * 1000, 0);
  // Bucket heads + bitmaps dominate: ~1.3 MB once touched, regardless of
  // how many ids are live.
  EXPECT_LT(w.memory_bytes(), 4u * 1024u * 1024u);
}

// The wheel must be a drop-in for the indexed heap: identical (key, tie)
// extraction order under a randomized stream of push/update/erase/pop.  The
// heap is keyed by (key, tie) pairs with the id as payload, mirroring how
// PClockScheduler uses both.
TEST(TimerWheel, DifferentialAgainstIndexedHeap) {
  constexpr int kIds = 64;
  TimerWheel w;
  IndexedMinHeap<std::pair<std::uint64_t, int>> h(kIds);
  Rng rng(1234);
  for (int op = 0; op < 30'000; ++op) {
    const auto id = static_cast<std::uint32_t>(rng.uniform_int(0, kIds - 1));
    // Keys span ~6x the horizon so pushes land in-wheel and in-overflow and
    // pops renormalize repeatedly; a small tie range forces tie-breaks.
    const auto key =
        static_cast<std::uint64_t>(rng.uniform_int(0, 100'000'000));
    const int tie = static_cast<int>(rng.uniform_int(0, 3));
    const double p = rng.next_double();
    if (!w.contains(id)) {
      w.push(id, key, tie);
      h.push(static_cast<int>(id), {key, tie});
    } else if (p < 0.45) {
      w.update(id, key);  // keeps the old tie
      h.update(static_cast<int>(id), {key, h.key_of(static_cast<int>(id)).second});
    } else if (p < 0.65) {
      w.erase(id);
      h.erase(static_cast<int>(id));
    } else {
      ASSERT_EQ(w.top_key(), h.top_key().first) << "at op " << op;
      ASSERT_EQ(w.top_tie(), h.top_key().second) << "at op " << op;
      ASSERT_EQ(static_cast<int>(w.pop()), h.pop()) << "at op " << op;
    }
    ASSERT_EQ(w.size(), h.size());
    ASSERT_EQ(w.empty(), h.empty());
  }
  while (!h.empty()) ASSERT_EQ(static_cast<int>(w.pop()), h.pop());
  EXPECT_TRUE(w.empty());
}

// Deadline-style usage: the clock only moves forward, every key is >= the
// clock at push time, and the caller reports the clock as a floor — the
// exact contract PClockScheduler drives the wheel with.
TEST(TimerWheel, DifferentialWithMonotoneFloor) {
  constexpr int kIds = 48;
  TimerWheel w;
  IndexedMinHeap<std::pair<std::uint64_t, int>> h(kIds);
  Rng rng(77);
  std::uint64_t now = 0;
  for (int op = 0; op < 20'000; ++op) {
    now += static_cast<std::uint64_t>(rng.uniform_int(0, 5'000));
    w.advance_floor(now);
    const auto id = static_cast<std::uint32_t>(rng.uniform_int(0, kIds - 1));
    const auto key =
        now + static_cast<std::uint64_t>(rng.uniform_int(0, 40'000'000));
    const int tie = static_cast<int>(id);
    if (!w.contains(id)) {
      w.push(id, key, tie);
      h.push(static_cast<int>(id), {key, tie});
    } else if (rng.next_double() < 0.6) {
      // Per-flow deadlines are non-decreasing in the real caller.
      const std::uint64_t bumped = std::max(key, w.key_of(id));
      w.update(id, bumped);
      h.update(static_cast<int>(id), {bumped, tie});
    } else {
      ASSERT_EQ(static_cast<int>(w.pop()), h.pop()) << "at op " << op;
    }
  }
  while (!h.empty()) ASSERT_EQ(static_cast<int>(w.pop()), h.pop());
}

// ---------------------------------------------------------------------------
// Lazy IndexedMinHeap footprint: reset(huge) must not allocate, and the
// position table must track the largest id pushed, not the capacity bound.

TEST(IndexedMinHeapLazy, ResetReservesNothing) {
  IndexedMinHeap<double> h;
  h.reset(1'000'000);
  EXPECT_EQ(h.memory_bytes(), 0u);
}

TEST(IndexedMinHeapLazy, FootprintTracksMaxIdPushedNotCapacity) {
  IndexedMinHeap<double> h(1'000'000);
  for (int id = 0; id < 64; ++id) h.push(id, 1.0 * id);
  // 64 live nodes => a few KB, nowhere near the ~8 MB an eager position
  // table over 10^6 ids would cost.
  EXPECT_LT(h.memory_bytes(), 64u * 1024u);
  EXPECT_EQ(h.pop(), 0);
}

}  // namespace
}  // namespace qos
