#include "stream/sharded.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <utility>

#include "obs/sharded_sink.h"
#include "runner/thread_pool.h"
#include "sim/engine.h"
#include "util/check.h"

namespace qos::stream {
namespace {

struct Lane {
  std::uint32_t tenant = 0;
  TenantSim sim;
  std::vector<Server*> servers;  ///< raw views for the engine
  std::unique_ptr<SimEngine> engine;
  std::unique_ptr<MetricRegistry> registry;   ///< private metric shard
  std::vector<Request> inbox;                 ///< this window's arrivals
  std::vector<CompletionRecord> window_out;   ///< this window's completions
};

bool merged_before(const CompletionRecord& a, const CompletionRecord& b) {
  if (a.finish != b.finish) return a.finish < b.finish;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.server < b.server;
}

}  // namespace

ShardedStats simulate_sharded(
    RequestStream& requests, const TenantFactory& factory,
    const ShardedOptions& options,
    const std::function<void(const CompletionRecord&)>& out) {
  QOS_EXPECTS(options.shards >= 1);
  QOS_EXPECTS(options.lookahead > 0);

  ThreadPool pool(options.shards);
  std::vector<std::unique_ptr<Lane>> lanes;  ///< kept sorted by tenant id
  std::unordered_map<std::uint32_t, Lane*> by_tenant;

  // Per-lane buffered sinks, canonically merged to options.sink at every
  // barrier flush (obs/sharded_sink.h).  Lane buffers are each written by
  // exactly one worker per window and only touched by the coordinator
  // between windows, so no event crosses threads unsynchronized.
  std::optional<ShardedEventSink> event_merge;
  if (options.sink != nullptr)
    event_merge.emplace(options.sink, options.overlap_drain);

  auto lane_for = [&](std::uint32_t tenant) -> Lane& {
    if (auto it = by_tenant.find(tenant); it != by_tenant.end())
      return *it->second;
    auto lane = std::make_unique<Lane>();
    lane->tenant = tenant;
    lane->sim = factory(tenant);
    QOS_CHECK(lane->sim.scheduler != nullptr);
    QOS_CHECK(static_cast<int>(lane->sim.servers.size()) ==
              lane->sim.scheduler->server_count());
    for (auto& s : lane->sim.servers) {
      QOS_CHECK(s != nullptr);
      lane->servers.push_back(s.get());
    }
    EventSink* lane_sink =
        event_merge ? event_merge->lane(tenant) : nullptr;
    if (options.registry != nullptr)
      lane->registry = std::make_unique<MetricRegistry>();
    if (lane_sink != nullptr || lane->registry != nullptr)
      lane->sim.scheduler->attach_observability(lane_sink,
                                                lane->registry.get());
    lane->engine = std::make_unique<SimEngine>(*lane->sim.scheduler,
                                               lane->servers, lane_sink);
    Lane& ref = *lane;
    by_tenant.emplace(tenant, &ref);
    lanes.insert(std::lower_bound(lanes.begin(), lanes.end(), tenant,
                                  [](const std::unique_ptr<Lane>& l,
                                     std::uint32_t t) { return l->tenant < t; }),
                 std::move(lane));
    return ref;
  };

  // The stream contract is validated at the coordinator, exactly as
  // simulate_stream does — lanes then only ever see per-tenant subsequences
  // of an already-checked stream.
  std::uint64_t expected_seq = 0;
  Time prev_arrival = 0;
  auto validate = [&](const Request& r) {
    QOS_CHECK(request_record_ok(r));
    QOS_CHECK(r.seq == expected_seq);
    QOS_CHECK(r.arrival >= prev_arrival);
    ++expected_seq;
    prev_arrival = r.arrival;
  };

  ShardedStats stats;
  const Time delta = options.lookahead;
  std::optional<Request> peek = requests.next();
  if (peek) validate(*peek);
  std::vector<CompletionRecord> merged;

  while (true) {
    // Realign the window to the next event anywhere — buffered stream head
    // or any lane's pending arrival/completion — so empty virtual time
    // costs nothing.
    Time next_event = peek ? peek->arrival : kTimeMax;
    for (const auto& lane : lanes)
      next_event = std::min(next_event, lane->engine->next_event_time());
    if (next_event == kTimeMax) break;
    const Time window = next_event - next_event % delta;
    const Time limit = window > kTimeMax - delta ? kTimeMax : window + delta;

    // Feed: every arrival inside this window goes to its tenant's inbox.
    while (peek && peek->arrival < limit) {
      lane_for(peek->client).inbox.push_back(*peek);
      peek = requests.next();
      if (peek) validate(*peek);
    }

    // Barrier step: all lanes advance to the window edge in parallel.  A
    // lane's evolution is a pure function of its inbox and prior state;
    // the pool only chooses which worker runs it.
    pool.parallel_for(lanes.size(), [&lanes, limit](std::size_t i) {
      Lane& lane = *lanes[i];
      auto collect = [&lane](const CompletionRecord& record) {
        lane.window_out.push_back(record);
      };
      for (const Request& r : lane.inbox) {
        lane.engine->advance_until(r.arrival, collect);
        lane.engine->push_arrival(r);
      }
      lane.inbox.clear();
      lane.engine->advance_until(limit, collect);
    });

    // Event flush first: the window's events re-serialize into the canonical
    // (time, seq, server) order on the coordinator.  Windows tile virtual
    // time, so per-window flushes concatenate into one globally ordered
    // stream — identical to what a 1-shard run hands the same sink.
    if (event_merge) event_merge->flush();

    // Canonical merge: tenant-ascending concatenation, then a stable sort
    // on (finish, seq, server).  Every finish in this window precedes every
    // finish of later windows, so per-window emission is globally sorted.
    merged.clear();
    for (auto& lane : lanes) {
      merged.insert(merged.end(), lane->window_out.begin(),
                    lane->window_out.end());
      lane->window_out.clear();
    }
    std::stable_sort(merged.begin(), merged.end(), merged_before);
    for (const CompletionRecord& record : merged) {
      stats.makespan = std::max(stats.makespan, record.finish);
      out(record);
    }
    ++stats.windows;
  }

  for (const auto& lane : lanes) {
    QOS_ENSURES(lane->engine->drained());
    stats.requests += lane->engine->arrivals_delivered();
    stats.dispatches += lane->engine->dispatches();
    stats.completions += lane->engine->completions();
  }
  stats.tenants = lanes.size();
  if (event_merge) {
    event_merge->finish();  // drain handed-off windows, join the drain thread
    stats.events_forwarded = event_merge->forwarded();
    stats.event_digest = event_merge->digest();
  }

  // Metric fan-in after the run, in tenant-ascending order: integer metric
  // arithmetic is exact, and occupancy integrals are doubles whose fixed
  // fold order makes the global snapshot bit-identical across shard counts.
  if (options.registry != nullptr)
    for (const auto& lane : lanes) options.registry->fan_in(*lane->registry);

  return stats;
}

SimResult simulate_sharded(RequestStream& requests,
                           const TenantFactory& factory,
                           const ShardedOptions& options) {
  SimResult result;
  simulate_sharded(requests, factory, options,
                   [&result](const CompletionRecord& record) {
                     result.completions.push_back(record);
                   });
  return result;
}

}  // namespace qos::stream
