# Empty compiler generated dependencies file for test_wf2q.
# This may be replaced when dependencies are built.
