// ControlledTenantScheduler — per-tenant RTT admission whose capacity shares
// are mutable at runtime.
//
// The multi-tenant scheduler in core/multi_tenant.h freezes each tenant's
// reservation at construction; the control plane needs the opposite: a
// scheduler whose per-tenant admission bound can be re-provisioned between
// epochs (set_tenant_capacity) without touching queued work.  Structure:
//
//   * each tenant has its own RTT occupancy bound maxQ1_i = alloc_i · δ and
//     its own Q2 ring;
//   * admitted primaries join one global Q1 FIFO.  All tenants share the
//     deadline δ, so FIFO on admission order is earliest-deadline-first, and
//     Σ maxQ1_i ≤ (C_total − headroom) · δ keeps every admitted request
//     within δ at full health — per-tenant bounds do the isolation, the
//     shared queue does the work conservation;
//   * Q2 drains in tenant round-robin (cursor persists across dispatches)
//     only when Q1 is empty — strict priority, like the degraded scheduler;
//   * a shared CapacityMonitor watches service durations; with
//     `local_degradation` every tenant's bound additionally scales by the
//     monitored health (the DegradedRtt reaction, applied per tenant),
//     otherwise health is only *reported* (the controller consumes it and
//     shrinks the budget instead).
//
// Every on_arrival emits exactly one of kAdmit / kReject / kDemote with the
// tenant stamped in `client` — the contract both the control loop (which
// routes on client) and online::Shaper's decision capture rely on.  kDemote
// means "the static plan's bound would have admitted this": rejected while
// len_q1 is below the tenant's *planned* bound, i.e. the miss is due to
// degradation or a controller shrink, not plain overload.
//
// arrival_joins_primary(Time) cannot see the tenant, so it keeps the
// default (true): bounded-Q2 online shedding is unsupported for this
// scheduler (leave ShaperOptions::max_q2_depth at 0).
#pragma once

#include <cstdint>
#include <vector>

#include "core/rtt.h"
#include "fault/capacity_monitor.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "sim/scheduler.h"
#include "util/check.h"
#include "util/ring_buffer.h"

namespace qos {

struct ControlledSchedulerConfig {
  /// Scale every tenant's bound by monitored health (the local-only
  /// DegradedRtt baseline).  Off: bounds follow allocations alone.
  bool local_degradation = false;
  double health_tolerance = 0.02;  ///< deadband before scaling kicks in
  CapacityMonitorConfig monitor;
};

class ControlledTenantScheduler final : public Scheduler {
 public:
  /// `allocations[i]` is tenant i's initial (planned) share in IOPS; `delta`
  /// the common deadline; `server_iops` the backing server's healthy rate
  /// (the monitor's reference).
  ControlledTenantScheduler(std::vector<double> allocations, Time delta,
                            double server_iops,
                            ControlledSchedulerConfig config = {})
      : config_(config),
        delta_(delta),
        monitor_(server_iops, config.monitor),
        tenants_(allocations.size()) {
    QOS_EXPECTS(!allocations.empty());
    QOS_EXPECTS(delta > 0);
    for (std::size_t i = 0; i < allocations.size(); ++i) {
      QOS_EXPECTS(allocations[i] > 0);
      Tenant& t = tenants_[i];
      t.allocation_iops = allocations[i];
      t.planned_bound = max_q1_slots(allocations[i], delta);
      t.bound = t.planned_bound;
    }
  }

  int server_count() const override { return 1; }

  void attach_observability(EventSink* sink,
                            MetricRegistry* registry) override {
    probe_ = Probe(sink);
    if (registry != nullptr) {
      admitted_ = &registry->counter("ctrl.admitted");
      rejected_ = &registry->counter("ctrl.rejected");
      demoted_ = &registry->counter("ctrl.demotions");
      health_gauge_ = &registry->gauge("ctrl.health");
      q1_occ_ = &registry->occupancy("q1.occupancy");
      q2_occ_ = &registry->occupancy("q2.occupancy");
    }
  }

  /// Re-provision tenant `t` to `iops` (the control-plane epoch seam).
  /// Queued work is untouched; only future admissions see the new bound.
  void set_tenant_capacity(std::size_t t, double iops) {
    QOS_EXPECTS(iops > 0);
    Tenant& tenant = tenants_.at(t);
    tenant.allocation_iops = iops;
    tenant.bound = max_q1_slots(iops, delta_);
  }

  void on_arrival(const Request& r, Time now) override {
    QOS_EXPECTS(r.client < tenants_.size());
    Tenant& t = tenants_[r.client];
    // Health scaling is applied lazily per admission (O(1)) rather than by
    // re-walking all tenants whenever the monitor moves.
    const std::int64_t bound = config_.local_degradation
                                   ? effective_bound(t.allocation_iops)
                                   : t.bound;
    if (t.len_q1 < bound) {
      ++t.len_q1;
      ++len_q1_total_;
      q1_.push_back(r);
      if (admitted_ != nullptr) admitted_->add();
      if (q1_occ_ != nullptr) q1_occ_->update(now, len_q1_total_);
      if (probe_) {
        probe_.emit({.time = now,
                     .seq = r.seq,
                     .a = t.len_q1,
                     .b = bound,
                     .client = r.client,
                     .kind = EventKind::kAdmit,
                     .klass = ServiceClass::kPrimary});
      }
    } else {
      const bool demotion = t.len_q1 < t.planned_bound;
      t.q2.push_back(r);
      ++q2_total_;
      if (demotion) {
        ++demotions_;
        if (demoted_ != nullptr) demoted_->add();
      }
      if (rejected_ != nullptr) rejected_->add();
      if (q2_occ_ != nullptr) q2_occ_->update(now, q2_total_);
      if (probe_) {
        probe_.emit({.time = now,
                     .seq = r.seq,
                     .a = demotion ? bound
                                   : static_cast<std::int64_t>(t.q2.size()),
                     .b = t.planned_bound,
                     .client = r.client,
                     .kind = demotion ? EventKind::kDemote
                                      : EventKind::kReject,
                     .klass = ServiceClass::kOverflow});
      }
    }
  }

  std::optional<Dispatch> next_for(int server, Time now) override {
    QOS_EXPECTS(server == 0);
    if (!q1_.empty()) {
      Dispatch d{q1_.front(), ServiceClass::kPrimary};
      q1_.pop_front();
      service_start_ = now;
      return d;
    }
    if (q2_total_ > 0) {
      // Round-robin across tenants, cursor persisting between dispatches.
      for (std::size_t k = 0; k < tenants_.size(); ++k) {
        Tenant& t = tenants_[(cursor_ + k) % tenants_.size()];
        if (t.q2.empty()) continue;
        cursor_ = (cursor_ + k + 1) % tenants_.size();
        Dispatch d{t.q2.front(), ServiceClass::kOverflow};
        t.q2.pop_front();
        --q2_total_;
        service_start_ = now;
        return d;
      }
    }
    return std::nullopt;
  }

  void on_complete(const Request& r, ServiceClass klass, int,
                   Time now) override {
    // One server => at most one request in service; (service_start_, now)
    // is its exact occupancy span.
    monitor_.on_service(now, now - service_start_ > 0 ? now - service_start_
                                                      : 1);
    if (health_gauge_ != nullptr) health_gauge_->set(monitor_.health());
    if (klass == ServiceClass::kPrimary) {
      Tenant& t = tenants_[r.client];
      QOS_CHECK(t.len_q1 > 0);
      --t.len_q1;
      --len_q1_total_;
      if (q1_occ_ != nullptr) q1_occ_->update(now, len_q1_total_);
    }
  }

  double health() const { return monitor_.health(); }
  const CapacityMonitor& monitor() const { return monitor_; }
  std::size_t tenant_count() const { return tenants_.size(); }
  double allocation(std::size_t t) const {
    return tenants_.at(t).allocation_iops;
  }
  std::int64_t len_q1(std::size_t t) const { return tenants_.at(t).len_q1; }
  std::uint64_t demotions() const { return demotions_; }

 private:
  struct Tenant {
    double allocation_iops = 0;
    std::int64_t planned_bound = 0;  ///< bound from the construction-time plan
    std::int64_t bound = 0;          ///< allocation's bound (pre health scale)
    std::int64_t len_q1 = 0;         ///< pending primaries (queued + serving)
    RingBuffer<Request> q2;
  };

  std::int64_t effective_bound(double alloc_iops) const {
    const double h = monitor_.health();
    const double effective =
        h >= 1.0 - config_.health_tolerance ? alloc_iops : h * alloc_iops;
    return max_q1_slots(effective, delta_);
  }

  ControlledSchedulerConfig config_;
  Time delta_;
  CapacityMonitor monitor_;
  std::vector<Tenant> tenants_;
  RingBuffer<Request> q1_;           ///< shared primary FIFO (= EDF at one δ)
  std::int64_t len_q1_total_ = 0;
  std::int64_t q2_total_ = 0;
  std::size_t cursor_ = 0;
  Time service_start_ = 0;
  std::uint64_t demotions_ = 0;

  Probe probe_;
  Counter* admitted_ = nullptr;
  Counter* rejected_ = nullptr;
  Counter* demoted_ = nullptr;
  Gauge* health_gauge_ = nullptr;
  OccupancySeries* q1_occ_ = nullptr;
  OccupancySeries* q2_occ_ = nullptr;
};

}  // namespace qos
