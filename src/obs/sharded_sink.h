// ShardedEventSink — per-lane buffered sinks with a canonical barrier merge.
//
// The sharded simulator (stream/sharded.h) retires lanes' events
// concurrently, so no single downstream EventSink could observe them live
// without a data race — and even a serialized interleaving would depend on
// thread scheduling.  This sink restores the single-stream contract the rest
// of the observability layer is built on:
//
//   * every lane gets a *private* buffering sink (one writer at a time — the
//     worker advancing that lane inside a barrier window);
//   * each lane keeps its buffer in canonical (time, seq, server) order as
//     an insertion invariant — cheap on the worker, because a lane's clock
//     never rewinds, so an insert is almost always an append;
//   * at each virtual-time barrier the coordinator calls flush(), which
//     merges the presorted lane buffers in that same total order — the one
//     the completion merge uses — and forwards the merged run downstream.
//
// Why this order is canonical: lane buffer contents are a pure function of
// each lane's input (never of the shard count or thread schedule), the
// concatenation order is fixed, and the sort is deterministic — so the
// downstream sink sees one byte-identical stream at any shard count,
// including the shards = 1 serial reference.  Ties in (time, seq, server)
// can only be two emissions for the *same request* at the same instant
// (seq is globally unique), which always come from the same lane, where the
// stable sort preserves their original lifecycle emission order.
//
// Note the canonical order is a contract of its own, not a replay of one
// lane's emission order: at a shared instant, events sort by seq across
// requests (e.g. a dispatch of seq 2 precedes an arrival of seq 3), whereas
// a single SimEngine emits all same-instant completions, then arrivals,
// then dispatches.  Consumers keyed by request (Tracer, counting sinks,
// probes) are insensitive to this; consumers that need engine emission
// order should attach to a lane directly.
//
// Drain overlap: merging, digesting and the downstream consumer chain
// (Tracer, stream writer) are inherently serial — a globally ordered stream
// has one consumer.  Run inline at the barrier they serialize against the
// simulation (Amdahl); with overlap_drain the flush instead *hands the
// sealed window off* to one internal drain thread and returns, so the next
// window's parallel advance proceeds while the previous window drains.  The
// handoff queue is bounded at one pending window (flush blocks when the
// drain falls behind), so memory stays bounded at ~two windows and
// backpressure is graceful.  Stream content and order are unchanged —
// windows drain FIFO on a single thread — only wall-clock overlap differs.
// Downstream consumers are then driven from the drain thread during the
// run; finish() joins it, after which forwarded()/digest() and the
// consumers are safe to read from the caller again.
//
// Memory: one barrier window of events per lane, twice (one filling, one
// draining), plus the merge scratch — bounded by burst density times the
// lookahead, never by run length.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/event.h"
#include "obs/sink.h"

namespace qos {

/// Returns true when `a` precedes `b` in the canonical merged event order
/// (time, then seq, then server).  Exposed so tests and reference merges
/// can reproduce the exact order.  Inline: it runs a handful of times per
/// event on the giant-run hot path (lane insertion + cursor merge).
inline bool canonical_event_before(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.server < b.server;
}

/// Order-sensitive 128-bit digest of a canonical event stream — the
/// cross-shard identity witness.  Two runs forwarded the byte-identical
/// stream iff their digests match (up to hash collisions); computed inline
/// during the merge so certifying the stream costs no extra pass.
struct EventStreamDigest {
  std::uint64_t hi = 0xcbf29ce484222325ull;
  std::uint64_t lo = 0x9ae16a3b2f90404full;

  /// Fold one event.  The fold runs on the drain path for *every* merged
  /// event, so it is shaped for instruction-level parallelism: the six event
  /// words are mixed with independent position-keyed multiplies (no chain
  /// between them), and only ONE multiply-xor step per event extends each of
  /// the two sequential lanes — cross-event order sensitivity comes from
  /// that chain, within-event field positions from the distinct constants.
  void fold(const Event& e) {
    const std::uint64_t w0 = static_cast<std::uint64_t>(e.time);
    const std::uint64_t w1 = e.seq;
    const std::uint64_t w2 = static_cast<std::uint64_t>(e.a);
    const std::uint64_t w3 = static_cast<std::uint64_t>(e.b);
    const std::uint64_t w4 = static_cast<std::uint64_t>(e.c);
    const std::uint64_t w5 = (static_cast<std::uint64_t>(e.client) << 24) |
                             (static_cast<std::uint64_t>(e.kind) << 16) |
                             (static_cast<std::uint64_t>(e.klass) << 8) |
                             static_cast<std::uint64_t>(e.server);
    const std::uint64_t acc = w0 * kK0 ^ w1 * kK1 ^ w2 * kK2 ^ w3 * kK3 ^
                              w4 * kK4 ^ w5 * kK5;
    const std::uint64_t acc2 = w0 * kK5 ^ w1 * kK0 ^ w2 * kK1 ^ w3 * kK2 ^
                               w4 * kK3 ^ w5 * kK4;
    hi = (hi ^ acc) * kPrime;
    hi ^= hi >> 29;
    lo = (lo ^ acc2) * kPhi;
    lo ^= lo >> 31;
  }

  friend bool operator==(const EventStreamDigest&,
                         const EventStreamDigest&) = default;

 private:
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;     // FNV-1a
  static constexpr std::uint64_t kPhi = 0x9e3779b97f4a7c15ull;  // 2^64 / phi
  // Distinct odd mixing constants (splitmix64 outputs of 1..6).
  static constexpr std::uint64_t kK0 = 0x910a2dec89025cc1ull;
  static constexpr std::uint64_t kK1 = 0xbeeb8da1658eec67ull;
  static constexpr std::uint64_t kK2 = 0xf893a2eefb32555bull;
  static constexpr std::uint64_t kK3 = 0x71c18690ee42c90bull;
  static constexpr std::uint64_t kK4 = 0x71bb54d8d101b5b9ull;
  static constexpr std::uint64_t kK5 = 0x7d1a47e997ed5a4bull;
};

class ShardedEventSink {
 public:
  /// Events are forwarded to `downstream` at flush; borrowed, must outlive
  /// this sink.  A null downstream still buffers and merges (flush simply
  /// discards), so counters stay meaningful in dry runs.  With
  /// `overlap_drain` the merge + downstream chain runs on one internal
  /// drain thread, overlapped with the simulation between flushes (see file
  /// comment); `downstream` is then driven from that thread until finish().
  explicit ShardedEventSink(EventSink* downstream, bool overlap_drain = false);
  ~ShardedEventSink();

  ShardedEventSink(const ShardedEventSink&) = delete;
  ShardedEventSink& operator=(const ShardedEventSink&) = delete;

  /// The private sink for lane `key` (created on first use; the pointer is
  /// stable for this sink's lifetime).  Lanes are merged in ascending key
  /// order at flush.  Coordinator-thread only — call while no lane is
  /// advancing, e.g. at lane creation.
  EventSink* lane(std::uint32_t key);

  /// Merge every lane's buffered events canonically and forward them
  /// downstream (inline, or via the drain thread with overlap_drain), then
  /// leave the lane buffers empty.  Coordinator-thread only, after the
  /// barrier: no lane may be mid-advance.
  void flush();

  /// Drain every handed-off window and stop the drain thread (no-op without
  /// overlap_drain or if already finished).  After finish(), forwarded(),
  /// digest() and the downstream consumers are safe to read.  The
  /// destructor calls it, but callers that read results while the sink is
  /// still alive must call it first.
  void finish();

  /// Events forwarded downstream so far.  With overlap_drain, stable only
  /// after finish().
  std::uint64_t forwarded() const { return forwarded_; }

  /// Digest of the canonical stream forwarded so far — equal across runs iff
  /// the merged streams were identical.  Folded inline during the merge, so
  /// reading it is free; also maintained when downstream is null, so a dry
  /// run can still certify stream identity.  With overlap_drain, stable
  /// only after finish().
  const EventStreamDigest& digest() const { return digest_; }

  /// Events currently buffered across all lanes (i.e. since last flush).
  /// Coordinator-thread only.
  std::uint64_t buffered() const;

 private:
  class LaneSink final : public EventSink {
   public:
    explicit LaneSink(std::uint32_t key) : key_(key) {}

    /// Sorted insert, maintaining canonical order as an invariant.  A lane's
    /// virtual clock never rewinds, so the new event almost always belongs
    /// at the end (one comparison, plain append); same-instant emissions
    /// bubble back a step or two.  Distributing the sort over insertions —
    /// on the worker thread that owns the lane — leaves the coordinator's
    /// flush a pure merge of presorted runs, with no per-window sort pass.
    void on_event(const Event& e) override {
      buffer_.push_back(e);
      for (std::size_t m = buffer_.size() - 1;
           m > 0 && canonical_event_before(buffer_[m], buffer_[m - 1]); --m)
        std::swap(buffer_[m], buffer_[m - 1]);
    }

    std::uint32_t key() const { return key_; }
    std::vector<Event>& buffer() { return buffer_; }
    const std::vector<Event>& buffer() const { return buffer_; }

   private:
    std::uint32_t key_;
    std::vector<Event> buffer_;
  };

  /// Above this many active lanes, flush switches from the zero-copy
  /// cursor merge (O(lanes) per event) to concatenate + stable sort.
  static constexpr std::size_t kMaxLinearMergeLanes = 8;

  struct Cursor {
    const Event* it;
    const Event* end;
  };

  /// One sealed barrier window: the non-empty lane buffers, ascending lane
  /// order, each canonically sorted.
  using Window = std::vector<std::vector<Event>>;

  /// Merge the sorted runs in `bufs` and forward downstream, updating
  /// forwarded_/digest_.  Runs on the coordinator (inline mode) or the
  /// drain thread (overlap mode) — never both concurrently.
  void merge_and_forward(const std::vector<const std::vector<Event>*>& bufs);
  void drain_loop();

  EventSink* downstream_;
  std::vector<std::unique_ptr<LaneSink>> lanes_;  ///< ascending by key
  std::vector<const std::vector<Event>*> view_scratch_;  ///< merge inputs
  std::vector<Cursor> cursor_scratch_;            ///< reused across flushes
  std::vector<Event> merge_scratch_;              ///< many-lane fallback only
  EventStreamDigest digest_;
  std::uint64_t forwarded_ = 0;

  // Overlap-drain state.  queue_ is bounded at one pending window; a second
  // flush blocks until the drain catches up (bounded memory, graceful
  // backpressure).  Lane buffers recycle through freelist_ so steady state
  // allocates nothing.
  const bool overlap_drain_;
  bool finished_ = false;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Window> queue_;
  bool draining_ = false;  ///< drain thread is merging a popped window
  bool stop_ = false;
  std::vector<std::vector<Event>> freelist_;
  std::thread drain_;
};

}  // namespace qos
