#include "disk/cache.h"

#include <gtest/gtest.h>

#include "disk/cached_disk_server.h"
#include "trace/generator.h"

namespace qos {
namespace {

TEST(BlockCache, MissThenHit) {
  BlockCache cache(4);
  auto first = cache.access(0, false);
  EXPECT_FALSE(first.hit);
  auto second = cache.access(0, false);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BlockCache, SameLineSharesEntry) {
  BlockCache cache(4, /*line_blocks=*/8);
  (void)cache.access(0, false);
  EXPECT_TRUE(cache.access(7, false).hit);   // same 8-block line
  EXPECT_FALSE(cache.access(8, false).hit);  // next line
}

TEST(BlockCache, LruEviction) {
  BlockCache cache(2, 1);
  (void)cache.access(0, false);
  (void)cache.access(1, false);
  (void)cache.access(0, false);  // 0 becomes MRU
  (void)cache.access(2, false);  // evicts 1 (LRU)
  EXPECT_TRUE(cache.access(0, false).hit);
  EXPECT_FALSE(cache.access(1, false).hit);
}

TEST(BlockCache, DirtyEvictionReportsWriteback) {
  BlockCache cache(1, 8);
  (void)cache.access(0, true);  // dirty line at tag 0
  EXPECT_EQ(cache.dirty_lines(), 1u);
  auto result = cache.access(16, false);  // evicts the dirty line
  EXPECT_TRUE(result.writeback);
  EXPECT_EQ(result.evicted_lba, 0u);
  EXPECT_EQ(cache.writebacks(), 1u);
  EXPECT_EQ(cache.dirty_lines(), 0u);
}

TEST(BlockCache, CleanEvictionIsSilent) {
  BlockCache cache(1, 8);
  (void)cache.access(0, false);
  auto result = cache.access(16, false);
  EXPECT_FALSE(result.writeback);
}

TEST(BlockCache, WriteHitMarksDirtyOnce) {
  BlockCache cache(2, 8);
  (void)cache.access(0, false);
  (void)cache.access(0, true);
  (void)cache.access(0, true);
  EXPECT_EQ(cache.dirty_lines(), 1u);
}

TEST(BlockCache, LinesOfSpansRequest) {
  BlockCache cache(4, 8);
  auto lines = cache.lines_of(6, 8);  // blocks 6-13 -> lines 0 and 8
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], 0u);
  EXPECT_EQ(lines[1], 8u);
  EXPECT_EQ(cache.lines_of(8, 8).size(), 1u);
}

TEST(BlockCache, HitRate) {
  BlockCache cache(8, 1);
  (void)cache.access(0, false);
  (void)cache.access(0, false);
  (void)cache.access(0, false);
  (void)cache.access(1, false);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(CachedDiskServer, HitsAreFasterThanMisses) {
  CachedDiskServer server;
  Request r;
  r.lba = 1'000'000;
  r.size_blocks = 8;
  const Time miss = server.service_duration(r, 0);
  const Time hit = server.service_duration(r, miss);
  EXPECT_LT(hit, miss);
  EXPECT_LE(hit, 200);  // DRAM-ish
}

TEST(CachedDiskServer, WritesAbsorbedByWriteBack) {
  CachedDiskServer server;
  Request w;
  w.lba = 2'000'000;
  w.size_blocks = 8;
  w.is_write = true;
  const Time t = server.service_duration(w, 0);
  EXPECT_LE(t, 200);  // absorbed, no mechanical access
  EXPECT_EQ(server.cache().dirty_lines(), 1u);
}

TEST(CachedDiskServer, RepeatedScanThrashesCache) {
  // Working set larger than the cache: second pass still misses.
  CachedDiskServer::Config config;
  config.cache_lines = 16;
  CachedDiskServer server(DiskModel{}, config);
  Time now = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 64; ++i) {
      Request r;
      r.lba = static_cast<std::uint64_t>(i) * 8;
      r.size_blocks = 8;
      now += server.service_duration(r, now);
    }
  }
  EXPECT_LT(server.cache().hit_rate(), 0.1);
}

TEST(CachedDiskServer, HotSetStaysResident) {
  CachedDiskServer::Config config;
  config.cache_lines = 64;
  CachedDiskServer server(DiskModel{}, config);
  Time now = 0;
  for (int pass = 0; pass < 10; ++pass) {
    for (int i = 0; i < 32; ++i) {
      Request r;
      r.lba = static_cast<std::uint64_t>(i) * 8;
      r.size_blocks = 8;
      now += server.service_duration(r, now);
    }
  }
  EXPECT_GT(server.cache().hit_rate(), 0.85);
}

}  // namespace
}  // namespace qos
