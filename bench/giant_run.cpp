// Giant-run streaming benchmark: drives a multi-tenant synthetic run
// through stream::simulate_sharded without ever materializing the trace or
// the completion log, and emits BENCH_stream.json for the CI perf-smoke job
// (scripts/check_perf.py --stream).
//
// The harness makes two claims, and its two output channels separate them:
//
//   stdout   the *deterministic* summary — request/completion counts, the
//            input-stream digest (TraceDigester, cache-identical to
//            hash_trace of the materialized equivalent) and a digest folded
//            over the canonical completion sequence, plus the makespan.
//            Nothing shard- or timing-dependent is printed, so CI runs the
//            binary at --shards 1/2/8 and `cmp`s the outputs byte for byte:
//            shard count is a pure parallelism knob.
//
//   --json   the *performance* numbers — events/sec, wall time, peak RSS
//            against the --rss-ceiling-mb contract, and the machine-
//            normalized throughput (events/sec divided by an in-process
//            calibration rate, the same machine-cancelling trick the online
//            harness uses) that check_perf.py --stream gates against
//            bench/BENCH_stream.baseline.json (>25% regression fails).
//
// The workload is T identical-rate Poisson tenants merged into one stream;
// --requests picks the per-tenant rate so the expected total matches, which
// makes the harness scale smoothly from the CI default (2M requests) to the
// 1e8-request acceptance run (--requests 100000000) with the same bounded
// footprint: memory holds one barrier window of arrivals plus per-lane
// in-flight state, never the run.
//
// usage: giant_run [--requests N] [--tenants T] [--duration-sec S]
//                  [--shards K] [--lookahead-us D] [--seed S]
//                  [--rss-ceiling-mb M] [--repeats R] [--json PATH]
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iterator>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/shaper.h"
#include "runner/hash.h"
#include "sim/server.h"
#include "stream/gen_stream.h"
#include "stream/sharded.h"
#include "stream/stream.h"
#include "util/time.h"

namespace {

using namespace qos;

volatile std::uint64_t g_sink = 0;

struct Options {
  std::uint64_t requests = 2'000'000;  ///< expected total (Poisson mean)
  int tenants = 4;
  double duration_sec = 600;
  int shards = 1;
  Time lookahead_us = 10'000;
  std::uint64_t seed = 1;
  double rss_ceiling_mb = 256;
  int repeats = 2;
  std::string json_path;
};

[[noreturn]] void usage_abort() {
  std::fprintf(stderr,
               "usage: giant_run [--requests N] [--tenants T]\n"
               "                 [--duration-sec S] [--shards K]\n"
               "                 [--lookahead-us D] [--seed S]\n"
               "                 [--rss-ceiling-mb M] [--repeats R]\n"
               "                 [--json PATH]\n");
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_abort();
      return argv[++i];
    };
    if (std::strcmp(a, "--requests") == 0) {
      o.requests = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(a, "--tenants") == 0) {
      o.tenants = std::atoi(value());
    } else if (std::strcmp(a, "--duration-sec") == 0) {
      o.duration_sec = std::atof(value());
    } else if (std::strcmp(a, "--shards") == 0) {
      o.shards = std::atoi(value());
    } else if (std::strcmp(a, "--lookahead-us") == 0) {
      o.lookahead_us = std::strtoll(value(), nullptr, 10);
    } else if (std::strcmp(a, "--seed") == 0) {
      o.seed = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(a, "--rss-ceiling-mb") == 0) {
      o.rss_ceiling_mb = std::atof(value());
    } else if (std::strcmp(a, "--repeats") == 0) {
      o.repeats = std::atoi(value());
    } else if (std::strcmp(a, "--json") == 0) {
      o.json_path = value();
    } else {
      usage_abort();
    }
  }
  if (o.requests == 0 || o.tenants < 1 || o.duration_sec <= 0 ||
      o.shards < 1 || o.lookahead_us < 1 || o.rss_ceiling_mb <= 0 ||
      o.repeats < 1)
    usage_abort();
  return o;
}

// Fixed-cost calibration loop, identical in shape to online_loadgen's: one
// steady-clock read plus an uncontended lock/unlock and a counter update per
// op.  events/sec divided by this rate is the machine-normalized throughput
// check_perf.py --stream gates.
double calibration_ops_per_sec(int repeats) {
  constexpr std::uint64_t kOps = 2'000'000;
  std::mutex m;
  double best = 0;
  for (int r = 0; r < repeats; ++r) {
    std::uint64_t acc = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      const auto now = std::chrono::steady_clock::now();
      std::lock_guard<std::mutex> lock(m);
      acc += static_cast<std::uint64_t>(now.time_since_epoch().count());
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    g_sink = g_sink ^ acc;
    best = std::max(best, static_cast<double>(kOps) / elapsed);
  }
  return best;
}

std::uint64_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#ifdef __APPLE__
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
}

// Every policy family behind the sharding layer: tenant t cycles through
// the four schedulers so the determinism claim covers single-server,
// dual-server and fair-queue lanes at once.
constexpr Policy kPolicyCycle[] = {Policy::kMiser, Policy::kSplit,
                                   Policy::kFairQueue, Policy::kFcfs};

// Mirrors shape_and_run's server construction (see core/shaper.cpp): Split
// gets a dedicated primary at Cmin plus an overflow server at dC;
// shared-server policies get one server at Cmin + dC.  Cmin is provisioned
// at 1.5x the tenant's offered rate and the headroom at 0.25x, so every
// lane is stable and queues — and therefore memory — stay bounded.
stream::TenantSim build_tenant(double rate_iops, std::uint32_t client) {
  ShapingConfig config;
  config.policy = kPolicyCycle[client % std::size(kPolicyCycle)];
  config.headroom_override_iops = 0.25 * rate_iops;
  const double cmin = 1.5 * rate_iops;
  stream::TenantSim sim;
  sim.scheduler = make_scheduler(config, cmin);
  const double headroom = config.resolved_headroom_iops();
  if (sim.scheduler->server_count() == 2) {
    sim.servers.push_back(std::make_unique<ConstantRateServer>(cmin));
    sim.servers.push_back(std::make_unique<ConstantRateServer>(headroom));
  } else {
    sim.servers.push_back(
        std::make_unique<ConstantRateServer>(cmin + headroom));
  }
  return sim;
}

void write_json(const Options& o, const stream::ShardedStats& stats,
                const Digest& request_digest, const Digest& completion_digest,
                double wall_sec, double events_per_sec, double calibration,
                std::uint64_t rss, std::uint64_t ceiling_bytes) {
  std::FILE* f = std::fopen(o.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "giant_run: cannot write %s\n", o.json_path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"harness\": \"giant_run\",\n");
  std::fprintf(f, "  \"requests\": %llu,\n",
               static_cast<unsigned long long>(stats.requests));
  std::fprintf(f, "  \"completions\": %llu,\n",
               static_cast<unsigned long long>(stats.completions));
  std::fprintf(f, "  \"dispatches\": %llu,\n",
               static_cast<unsigned long long>(stats.dispatches));
  std::fprintf(f, "  \"events\": %llu,\n",
               static_cast<unsigned long long>(stats.events()));
  std::fprintf(f, "  \"windows\": %llu,\n",
               static_cast<unsigned long long>(stats.windows));
  std::fprintf(f, "  \"tenants\": %llu,\n",
               static_cast<unsigned long long>(stats.tenants));
  std::fprintf(f, "  \"shards\": %d,\n", o.shards);
  std::fprintf(f, "  \"lookahead_us\": %lld,\n",
               static_cast<long long>(o.lookahead_us));
  std::fprintf(f, "  \"duration_sec\": %.3f,\n", o.duration_sec);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(o.seed));
  std::fprintf(f, "  \"makespan_us\": %lld,\n",
               static_cast<long long>(stats.makespan));
  std::fprintf(f, "  \"request_digest\": \"%s\",\n",
               request_digest.to_hex().c_str());
  std::fprintf(f, "  \"completion_digest\": \"%s\",\n",
               completion_digest.to_hex().c_str());
  std::fprintf(f, "  \"wall_sec\": %.6f,\n", wall_sec);
  std::fprintf(f, "  \"events_per_sec\": %.1f,\n", events_per_sec);
  std::fprintf(f, "  \"calibration_ops_per_sec\": %.1f,\n", calibration);
  std::fprintf(f, "  \"normalized\": %.6f,\n",
               calibration > 0 ? events_per_sec / calibration : 0.0);
  std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
               static_cast<unsigned long long>(rss));
  std::fprintf(f, "  \"rss_ceiling_bytes\": %llu,\n",
               static_cast<unsigned long long>(ceiling_bytes));
  std::fprintf(f, "  \"rss_ok\": %s\n", rss <= ceiling_bytes ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int run(const Options& o) {
  // Calibrate before the run so the loop measures an otherwise-quiet
  // process, exactly like the online harness.
  const double calibration = calibration_ops_per_sec(o.repeats);

  const double rate_iops =
      static_cast<double>(o.requests) /
      (static_cast<double>(o.tenants) * o.duration_sec);
  const Time duration =
      static_cast<Time>(o.duration_sec * static_cast<double>(kUsPerSec));

  std::vector<std::unique_ptr<stream::RequestStream>> sources;
  sources.reserve(static_cast<std::size_t>(o.tenants));
  for (int t = 0; t < o.tenants; ++t)
    sources.push_back(stream::make_poisson_stream(
        rate_iops, duration, o.seed + static_cast<std::uint64_t>(t)));
  stream::MergedStream merged(std::move(sources));
  stream::DigestingStream input(merged);

  auto factory = [rate_iops](std::uint32_t client) {
    return build_tenant(rate_iops, client);
  };

  // The completion log is never materialized: the canonical sequence is
  // folded into a digest on the fly, which is both the memory contract and
  // the cross-shard identity witness.
  ContentHasher completions;
  const auto t0 = std::chrono::steady_clock::now();
  stream::ShardedStats stats = stream::simulate_sharded(
      input, factory,
      stream::ShardedOptions{.shards = o.shards, .lookahead = o.lookahead_us},
      [&completions](const CompletionRecord& r) {
        completions.u64(r.seq)
            .u64(r.client)
            .i64(r.arrival)
            .i64(r.start)
            .i64(r.finish)
            .u64(static_cast<std::uint64_t>(r.klass))
            .u64(r.server);
      });
  const double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const Digest request_digest = input.finish();
  const Digest completion_digest = completions.digest();
  const double events_per_sec =
      wall_sec > 0 ? static_cast<double>(stats.events()) / wall_sec : 0.0;
  const std::uint64_t rss = peak_rss_bytes();
  const auto ceiling_bytes =
      static_cast<std::uint64_t>(o.rss_ceiling_mb * 1024.0 * 1024.0);

  // Deterministic, shard-independent summary: CI diffs this block byte for
  // byte across --shards 1/2/8.  Keep timings, shard count and RSS out.
  std::printf("giant_run summary (shard-independent)\n");
  std::printf("tenants            %llu\n",
              static_cast<unsigned long long>(stats.tenants));
  std::printf("requests           %llu\n",
              static_cast<unsigned long long>(stats.requests));
  std::printf("dispatches         %llu\n",
              static_cast<unsigned long long>(stats.dispatches));
  std::printf("completions        %llu\n",
              static_cast<unsigned long long>(stats.completions));
  std::printf("makespan_us        %lld\n",
              static_cast<long long>(stats.makespan));
  std::printf("request_digest     %s\n", request_digest.to_hex().c_str());
  std::printf("completion_digest  %s\n", completion_digest.to_hex().c_str());

  // Performance lines go to stderr so stdout stays comparable.
  std::fprintf(stderr,
               "giant_run: shards=%d lookahead=%lldus wall=%.3fs "
               "events/s=%.0f normalized=%.4f peak_rss=%.1fMiB "
               "(ceiling %.0fMiB)\n",
               o.shards, static_cast<long long>(o.lookahead_us), wall_sec,
               events_per_sec,
               calibration > 0 ? events_per_sec / calibration : 0.0,
               static_cast<double>(rss) / (1024.0 * 1024.0),
               o.rss_ceiling_mb);

  if (!o.json_path.empty())
    write_json(o, stats, request_digest, completion_digest, wall_sec,
               events_per_sec, calibration, rss, ceiling_bytes);

  if (stats.completions != stats.requests) {
    std::fprintf(stderr, "giant_run: completions != requests\n");
    return 1;
  }
  if (rss > ceiling_bytes) {
    std::fprintf(stderr, "giant_run: peak RSS %llu exceeds ceiling %llu\n",
                 static_cast<unsigned long long>(rss),
                 static_cast<unsigned long long>(ceiling_bytes));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(parse_args(argc, argv)); }
