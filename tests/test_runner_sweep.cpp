// SweepRunner: serial-vs-parallel bit-identity, cache bit-identity, the row
// codec, grid expansion, and chaos-cell extras.
#include "runner/sweep.h"

#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <string>
#include <vector>

#include "core/fcfs.h"
#include "trace/generator.h"

namespace qos {
namespace {

Trace test_trace() { return generate_poisson(300, 4 * kUsPerSec, 11); }

SweepGrid small_grid(const Trace* trace) {
  SweepGrid grid;
  grid.traces = {{"poisson-300", trace}};
  grid.policies = {Policy::kFcfs, Policy::kSplit, Policy::kFairQueue,
                   Policy::kMiser};
  grid.deltas = {from_ms(10)};
  grid.fractions = {0.90, 0.95};
  return grid;
}

// Bitwise row equality — the acceptance criterion's notion of "identical".
// Compared through the codec so every field participates and float compares
// are exact bit-pattern compares.
void expect_rows_identical(const std::vector<SweepRow>& a,
                           const std::vector<SweepRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(serialize_sweep_row(a[i]), serialize_sweep_row(b[i]))
        << "row " << i << " (" << a[i].label << ")";
}

TEST(SweepGrid, CellsExpandInDeterministicNestedOrder) {
  const Trace trace = test_trace();
  SweepGrid grid = small_grid(&trace);
  const auto cells = grid.cells();
  ASSERT_EQ(cells.size(), 8u);  // 1 trace x 1 delta x 2 fractions x 4 policies
  EXPECT_EQ(cells[0].shaping.policy, Policy::kFcfs);
  EXPECT_EQ(cells[0].shaping.fraction, 0.90);
  EXPECT_EQ(cells[3].shaping.policy, Policy::kMiser);
  EXPECT_EQ(cells[4].shaping.fraction, 0.95);
  EXPECT_EQ(cells[4].shaping.policy, Policy::kFcfs);
}

TEST(SweepRunner, ParallelRowsBitIdenticalToSerialAllPolicies) {
  const Trace trace = test_trace();
  const SweepGrid grid = small_grid(&trace);

  SweepRunner serial({.threads = 1});
  const auto serial_rows = serial.run(grid);
  ASSERT_EQ(serial_rows.size(), 8u);

  for (int threads : {2, 4, 8}) {
    SweepRunner parallel({.threads = threads});
    const auto parallel_rows = parallel.run(grid);
    expect_rows_identical(serial_rows, parallel_rows);
  }
}

TEST(SweepRunner, CachedReplayBitIdenticalAndMarked) {
  const Trace trace = test_trace();
  const SweepGrid grid = small_grid(&trace);
  ResultCache cache;

  SweepRunner cold({.threads = 2, .cache = &cache});
  const auto cold_rows = cold.run(grid);
  EXPECT_EQ(cold.stats().cache_hits, 0u);

  SweepRunner warm({.threads = 2, .cache = &cache});
  const auto warm_rows = warm.run(grid);
  EXPECT_EQ(warm.stats().cache_hits, warm_rows.size());
  expect_rows_identical(cold_rows, warm_rows);
  for (const auto& row : warm_rows) EXPECT_TRUE(row.from_cache);
  for (const auto& row : cold_rows) EXPECT_FALSE(row.from_cache);
}

TEST(SweepRunner, UncachedMatchesCachedBitwise) {
  // The cache must be invisible in the output: rows from a cache-enabled
  // run equal rows from a cache-free run.
  const Trace trace = test_trace();
  const SweepGrid grid = small_grid(&trace);
  ResultCache cache;
  SweepRunner with({.threads = 1, .cache = &cache});
  SweepRunner without({.threads = 1});
  expect_rows_identical(without.run(grid), with.run(grid));
}

TEST(SweepRunner, ChaosCellsFillExtras) {
  const Trace trace = test_trace();
  SweepCell cell;
  cell.trace_name = "poisson-300";
  cell.trace = &trace;
  cell.shaping.policy = Policy::kMiser;
  cell.shaping.fraction = 0.95;
  cell.shaping.delta = from_ms(10);
  cell.faults.brownout(kUsPerSec, 2 * kUsPerSec, 0.5);
  cell.fault_intensity = 0.5;

  const SweepRow row = SweepRunner::evaluate_cell(cell);
  EXPECT_TRUE(row.extra.count("chaos.q1_miss_fraction"));
  EXPECT_TRUE(row.extra.count("chaos.demotions"));
  EXPECT_TRUE(row.extra.count("chaos.demotion_rate"));
  EXPECT_TRUE(row.extra.count("chaos.time_to_recover_us"));

  // And chaos rows survive the parallel + cached paths bit-identically.
  const std::vector<SweepCell> cells = {cell, cell, cell};
  SweepRunner serial({.threads = 1});
  SweepRunner parallel({.threads = 3});
  expect_rows_identical(serial.run_cells(cells), parallel.run_cells(cells));
}

TEST(SweepRunner, CustomCellsWithoutSaltBypassCache) {
  const Trace trace = test_trace();
  ResultCache cache;
  SweepCell cell;
  cell.label = "custom";
  cell.trace_name = "poisson-300";
  cell.trace = &trace;
  cell.shaping.policy = Policy::kFcfs;
  cell.shaping.delta = from_ms(10);
  cell.shaping.capacity_override_iops = 400;
  cell.make_scheduler = [] {
    return std::unique_ptr<Scheduler>(std::make_unique<FcfsScheduler>());
  };
  cell.server_iops = {400};

  const std::vector<SweepCell> cells = {cell};
  SweepRunner runner({.threads = 1, .cache = &cache});
  runner.run_cells(cells);
  runner.run_cells(cells);
  // No salt: the closure cannot be hashed, so neither run may touch the
  // cache.
  EXPECT_EQ(runner.stats().cache_hits, 0u);
  EXPECT_EQ(cache.stats().stores, 0u);

  // With a salt the second run hits.
  SweepCell salted = cell;
  salted.custom_salt = 7;
  const std::vector<SweepCell> salted_cells = {salted};
  SweepRunner salted_runner({.threads = 1, .cache = &cache});
  const auto first = salted_runner.run_cells(salted_cells);
  const auto second = salted_runner.run_cells(salted_cells);
  EXPECT_EQ(salted_runner.stats().cache_hits, 1u);
  expect_rows_identical(first, second);
}

TEST(SweepRowCodec, RoundTripsEveryField) {
  SweepRow row;
  row.label = "Miser";
  row.trace_name = "ws";
  row.policy = Policy::kMiser;
  row.fraction = 0.951234567890123;
  row.delta = from_ms(10);
  row.fault_intensity = 0.3;
  row.seed = 1609;
  row.cmin_iops = 1234.5678901234;
  row.headroom_iops = 100.1;
  row.report.delta = from_ms(10);
  row.report.admitted = 12345;
  row.report.rejected = 67;
  row.report.deadline_misses = 8;
  row.report.all = {100, 2.5, 1, 2, 3, 4, 99, 0.97};
  row.report.primary = {90, 1.5, 1, 2, 3, 4, 50, 0.99};
  row.report.overflow = {10, 7.5, 2, 3, 4, 5, 99, 0.42};
  row.report.q1_occupancy = {3.25, 17, true};
  row.report.q2_occupancy = {0.5, 2, true};
  row.report.miss_run_lengths = {1, 1, 3, 9};
  row.buckets = {0.5, 0.75, 0.9, 0.99, 0.01};
  row.extra = {{"chaos.demotions", 42.0}, {"tenant.victim_within", 0.875}};
  row.from_cache = true;  // excluded from the codec by design

  const std::string bytes = serialize_sweep_row(row);
  auto back = deserialize_sweep_row(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->from_cache);
  back->from_cache = true;
  EXPECT_EQ(serialize_sweep_row(*back), bytes);
  EXPECT_EQ(back->extra, row.extra);
  EXPECT_EQ(back->report.miss_run_lengths, row.report.miss_run_lengths);
}

TEST(SweepRowCodec, PreservesDoubleBitPatterns) {
  SweepRow row;
  row.fraction = 0.1 + 0.2;  // not representable exactly — bit fidelity test
  row.cmin_iops = 1e308;
  row.headroom_iops = 5e-324;  // denormal min
  const auto back = deserialize_sweep_row(serialize_sweep_row(row));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back->fraction),
            std::bit_cast<std::uint64_t>(row.fraction));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back->cmin_iops),
            std::bit_cast<std::uint64_t>(row.cmin_iops));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back->headroom_iops),
            std::bit_cast<std::uint64_t>(row.headroom_iops));
}

TEST(SweepRowCodec, RejectsCorruptBytes) {
  EXPECT_FALSE(deserialize_sweep_row("").has_value());
  EXPECT_FALSE(deserialize_sweep_row("not a row").has_value());
  SweepRow row;
  std::string bytes = serialize_sweep_row(row);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(deserialize_sweep_row(bytes).has_value());
}

}  // namespace
}  // namespace qos
