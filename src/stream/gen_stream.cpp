#include "stream/gen_stream.h"

#include <queue>
#include <utility>
#include <vector>

#include "trace/generator_core.h"
#include "util/check.h"

namespace qos::stream {
namespace {

/// Sorted merge of one time-ordered base core with the batch overlay.
/// Reproduces the materialized tie order (stable sort of [all base…, all
/// overlay…]): at equal instants base precedes overlay, and overlay arrivals
/// keep generation order.  BaseCore needs only `std::optional<Time> next()`.
template <typename BaseCore>
class BasePlusOverlay {
 public:
  BasePlusOverlay(BaseCore base, BatchCore batches)
      : base_(std::move(base)), batches_(std::move(batches)) {
    base_front_ = base_.next();
  }

  std::optional<Time> next() {
    // Pull whole batches until the frontier clears the current candidate;
    // everything still inside BatchCore then arrives strictly later than
    // whatever we emit now (frontier() is a lower bound — see BatchCore).
    while (batches_.frontier() <= candidate()) {
      cluster_.clear();
      if (!batches_.next_batch(cluster_)) break;
      for (Time a : cluster_) overlay_.push({a, gen_++});
    }
    const Time base = base_front_ ? *base_front_ : kTimeMax;
    const Time over = overlay_.empty() ? kTimeMax : overlay_.top().first;
    if (base == kTimeMax && over == kTimeMax) return std::nullopt;
    if (base <= over) {  // base wins ties: it sorts first materialized
      base_front_ = base_.next();
      return base;
    }
    overlay_.pop();
    return over;
  }

 private:
  Time candidate() const {
    const Time base = base_front_ ? *base_front_ : kTimeMax;
    const Time over = overlay_.empty() ? kTimeMax : overlay_.top().first;
    return std::min(base, over);
  }

  using Tagged = std::pair<Time, std::uint64_t>;  ///< (arrival, gen index)

  BaseCore base_;
  BatchCore batches_;
  std::optional<Time> base_front_;
  std::priority_queue<Tagged, std::vector<Tagged>, std::greater<Tagged>>
      overlay_;
  std::vector<Time> cluster_;
  std::uint64_t gen_ = 0;
};

/// Shared emission tail: addresses and dense seq assigned in yield order —
/// the arrival-sorted order, i.e. exactly where generator.cpp's finalize()
/// assigns them.
class GenStreamBase : public RequestStream {
 protected:
  explicit GenStreamBase(AddressAssigner addr) : addr_(std::move(addr)) {}

  Request emit(Time arrival) {
    Request r;
    r.arrival = arrival;
    r.seq = seq_++;
    addr_.fill(r);
    QOS_ENSURES(request_record_ok(r));
    return r;
  }

 private:
  AddressAssigner addr_;
  std::uint64_t seq_ = 0;
};

class WorkloadStream final : public GenStreamBase {
 public:
  // The cores point into spec_ (declared first), and the three forks must
  // be taken in generate_workload's order: base, batches, addresses.
  WorkloadStream(const WorkloadSpec& spec, Time duration, Rng base_rng,
                 Rng batch_rng, Rng addr_rng)
      : GenStreamBase(AddressAssigner(spec.addresses, addr_rng)),
        spec_(spec),
        merge_(MmppCore(&spec_.states, &spec_.transition, to_sec(duration),
                        base_rng),
               BatchCore(spec_.batches, 0, to_sec(duration), duration,
                         batch_rng)) {}

  static std::unique_ptr<RequestStream> make(const WorkloadSpec& spec,
                                             Time duration,
                                             std::uint64_t seed) {
    QOS_EXPECTS(!spec.states.empty());
    QOS_EXPECTS(duration > 0);
    QOS_EXPECTS(spec.transition.empty() ||
                spec.transition.size() ==
                    spec.states.size() * spec.states.size());
    Rng rng(seed);
    Rng base_rng = rng.fork();
    Rng batch_rng = rng.fork();
    Rng addr_rng = rng.fork();
    return std::make_unique<WorkloadStream>(spec, duration, base_rng,
                                            batch_rng, addr_rng);
  }

  std::optional<Request> next() override {
    auto t = merge_.next();
    if (!t) return std::nullopt;
    return emit(*t);
  }

 private:
  WorkloadSpec spec_;
  BasePlusOverlay<MmppCore> merge_;
};

/// Poisson and Pareto share one shape: a single sorted core, no overlay.
template <typename Core>
class SingleCoreStream final : public GenStreamBase {
 public:
  SingleCoreStream(AddressAssigner addr, Core core)
      : GenStreamBase(std::move(addr)), core_(std::move(core)) {}

  std::optional<Request> next() override {
    auto t = core_.next();
    if (!t) return std::nullopt;
    return emit(*t);
  }

 private:
  Core core_;
};

class RegimeStream final : public GenStreamBase {
 public:
  RegimeStream(AddressAssigner addr, RegimeSchedule schedule, Time duration,
               std::uint64_t seed)
      : GenStreamBase(std::move(addr)),
        schedule_(std::move(schedule)),
        duration_(duration),
        seed_(seed) {}

  std::optional<Request> next() override {
    // Phases are time-disjoint (a phase's arrivals all precede the next
    // phase's begin), so exhausting them in schedule order IS sorted order.
    while (true) {
      if (merge_) {
        if (auto t = merge_->next()) return emit(*t);
        merge_.reset();
      }
      const auto& phases = schedule_.phases();
      if (phase_ >= phases.size() || phases[phase_].begin >= duration_)
        return std::nullopt;
      const std::size_t i = phase_++;
      const RegimePhase& ph = phases[i];
      const Time end = i + 1 < phases.size()
                           ? std::min(phases[i + 1].begin, duration_)
                           : duration_;
      merge_.emplace(
          PoissonWindowCore(ph.rate_iops, to_sec(ph.begin), to_sec(end),
                            Rng(hash_node(seed_, 2 * i + 1))),
          BatchCore(ph.batches, to_sec(ph.begin), to_sec(end), end,
                    Rng(hash_node(seed_, 2 * i + 2))));
    }
  }

 private:
  RegimeSchedule schedule_;
  Time duration_;
  std::uint64_t seed_;
  std::size_t phase_ = 0;
  std::optional<BasePlusOverlay<PoissonWindowCore>> merge_;
};

}  // namespace

std::unique_ptr<RequestStream> make_workload_stream(const WorkloadSpec& spec,
                                                    Time duration,
                                                    std::uint64_t seed) {
  return WorkloadStream::make(spec, duration, seed);
}

std::unique_ptr<RequestStream> make_poisson_stream(double rate_iops,
                                                   Time duration,
                                                   std::uint64_t seed,
                                                   const AddressSpec& addr) {
  QOS_EXPECTS(rate_iops > 0 && duration > 0);
  Rng rng(seed);
  AddressAssigner assigner(addr, rng.fork());
  return std::make_unique<SingleCoreStream<PoissonWindowCore>>(
      std::move(assigner), PoissonWindowCore(rate_iops, 0, to_sec(duration),
                                             rng));
}

std::unique_ptr<RequestStream> make_pareto_onoff_stream(
    double on_rate_iops, double alpha_on, double xm_on_sec,
    double mean_off_sec, Time duration, std::uint64_t seed,
    const AddressSpec& addr) {
  QOS_EXPECTS(on_rate_iops > 0 && duration > 0);
  Rng rng(seed);
  AddressAssigner assigner(addr, rng.fork());
  return std::make_unique<SingleCoreStream<ParetoOnOffCore>>(
      std::move(assigner),
      ParetoOnOffCore(on_rate_iops, alpha_on, xm_on_sec, mean_off_sec,
                      to_sec(duration), rng));
}

std::unique_ptr<RequestStream> make_regime_stream(const RegimeSchedule& schedule,
                                                  Time duration,
                                                  std::uint64_t seed,
                                                  const AddressSpec& addr) {
  QOS_EXPECTS(!schedule.empty());
  QOS_EXPECTS(schedule.validate());
  QOS_EXPECTS(duration > 0);
  Rng rng(seed);
  AddressAssigner assigner(addr, rng.fork());
  return std::make_unique<RegimeStream>(std::move(assigner), schedule,
                                        duration, seed);
}

std::unique_ptr<RequestStream> make_bmodel_stream(double mean_rate_iops,
                                                  double b, int levels,
                                                  Time duration,
                                                  std::uint64_t seed,
                                                  const AddressSpec& addr) {
  return std::make_unique<TraceStream>(
      generate_bmodel(mean_rate_iops, b, levels, duration, seed, addr));
}

std::unique_ptr<RequestStream> make_preset_stream(Workload w, Time duration,
                                                  std::uint64_t seed) {
  return make_workload_stream(preset_spec(w),
                              duration > 0 ? duration : kPresetDuration,
                              seed != 0 ? seed : preset_seed(w));
}

}  // namespace qos::stream
