#include "analysis/burstiness.h"

#include <algorithm>
#include <cmath>

#include "trace/rate_series.h"
#include "util/check.h"

namespace qos {
namespace {

double mean_of(const std::vector<double>& v) {
  double sum = 0;
  for (double x : v) sum += x;
  return v.empty() ? 0 : sum / static_cast<double>(v.size());
}

double variance_of(const std::vector<double>& v, double mean) {
  if (v.size() < 2) return 0;
  double sum = 0;
  for (double x : v) sum += (x - mean) * (x - mean);
  return sum / static_cast<double>(v.size() - 1);
}

/// Aggregate a count series by factor m (sum of m consecutive windows).
std::vector<double> aggregate(const std::vector<double>& counts, int m) {
  std::vector<double> out;
  out.reserve(counts.size() / static_cast<std::size_t>(m));
  for (std::size_t i = 0; i + static_cast<std::size_t>(m) <= counts.size();
       i += static_cast<std::size_t>(m)) {
    double sum = 0;
    for (int j = 0; j < m; ++j) sum += counts[i + static_cast<std::size_t>(j)];
    out.push_back(sum);
  }
  return out;
}

/// Least-squares slope of y against x.
double slope(const std::vector<double>& x, const std::vector<double>& y) {
  QOS_EXPECTS(x.size() == y.size() && x.size() >= 2);
  const double mx = mean_of(x);
  const double my = mean_of(y);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  QOS_EXPECTS(den > 0);
  return num / den;
}

}  // namespace

std::vector<double> window_counts(const Trace& trace, Time window) {
  QOS_EXPECTS(window > 0);
  std::vector<double> counts;
  for (const auto& p : rate_series(trace, window))
    counts.push_back(p.iops * to_sec(window));
  return counts;
}

double index_of_dispersion(const Trace& trace, Time window) {
  const auto counts = window_counts(trace, window);
  QOS_EXPECTS(counts.size() >= 2);
  const double mean = mean_of(counts);
  if (mean == 0) return 0;
  return variance_of(counts, mean) / mean;
}

double count_autocorrelation(const Trace& trace, Time window, int lag) {
  QOS_EXPECTS(lag >= 1);
  const auto counts = window_counts(trace, window);
  QOS_EXPECTS(counts.size() > static_cast<std::size_t>(lag) + 1);
  const double mean = mean_of(counts);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    den += (counts[i] - mean) * (counts[i] - mean);
    if (i + static_cast<std::size_t>(lag) < counts.size())
      num += (counts[i] - mean) *
             (counts[i + static_cast<std::size_t>(lag)] - mean);
  }
  return den == 0 ? 0 : num / den;
}

double hurst_aggregated_variance(const Trace& trace, Time base_window,
                                 int octaves) {
  QOS_EXPECTS(octaves >= 3);
  const auto counts = window_counts(trace, base_window);
  std::vector<double> log_m, log_var;
  for (int o = 0; o < octaves; ++o) {
    const int m = 1 << o;
    auto agg = aggregate(counts, m);
    if (agg.size() < 8) break;  // too few samples for a stable variance
    // Normalized aggregate (mean per base window).
    for (auto& v : agg) v /= m;
    const double var = variance_of(agg, mean_of(agg));
    if (var <= 0) break;
    log_m.push_back(std::log(static_cast<double>(m)));
    log_var.push_back(std::log(var));
  }
  QOS_EXPECTS(log_m.size() >= 2);
  // Var[X^(m)] ~ m^(2H-2)  =>  H = 1 + slope/2.
  const double h = 1.0 + slope(log_m, log_var) / 2.0;
  return std::clamp(h, 0.0, 1.0);
}

double hurst_rescaled_range(const Trace& trace, Time base_window,
                            int octaves) {
  QOS_EXPECTS(octaves >= 3);
  const auto counts = window_counts(trace, base_window);
  std::vector<double> log_n, log_rs;
  for (int o = 2; o < octaves + 2; ++o) {
    const std::size_t n = 1u << o;
    if (counts.size() < 2 * n) break;
    // Average R/S over disjoint blocks of length n.
    double rs_sum = 0;
    std::size_t blocks = 0;
    for (std::size_t b = 0; b + n <= counts.size(); b += n) {
      const std::vector<double> block(counts.begin() + static_cast<long>(b),
                                      counts.begin() +
                                          static_cast<long>(b + n));
      const double mean = mean_of(block);
      double cum = 0, lo = 0, hi = 0, sq = 0;
      for (double x : block) {
        cum += x - mean;
        lo = std::min(lo, cum);
        hi = std::max(hi, cum);
        sq += (x - mean) * (x - mean);
      }
      const double s = std::sqrt(sq / static_cast<double>(n));
      if (s > 0) {
        rs_sum += (hi - lo) / s;
        ++blocks;
      }
    }
    if (blocks == 0) continue;
    log_n.push_back(std::log(static_cast<double>(n)));
    log_rs.push_back(std::log(rs_sum / static_cast<double>(blocks)));
  }
  QOS_EXPECTS(log_n.size() >= 2);
  return std::clamp(slope(log_n, log_rs), 0.0, 1.0);
}

BurstinessProfile characterize(const Trace& trace) {
  BurstinessProfile p;
  p.mean_iops = trace.mean_rate_iops();
  if (p.mean_iops <= 0) return p;
  p.peak_to_mean_100ms = trace.peak_rate_iops(100'000) / p.mean_iops;
  p.peak_to_mean_1s = trace.peak_rate_iops(kUsPerSec) / p.mean_iops;
  p.peak_to_mean_10s = trace.peak_rate_iops(10 * kUsPerSec) / p.mean_iops;
  p.idc_100ms = index_of_dispersion(trace, 100'000);
  p.idc_1s = index_of_dispersion(trace, kUsPerSec);
  p.autocorr_lag1_1s = count_autocorrelation(trace, kUsPerSec, 1);
  p.hurst_av = hurst_aggregated_variance(trace, 100'000);
  p.hurst_rs = hurst_rescaled_range(trace, 100'000);
  return p;
}

}  // namespace qos
