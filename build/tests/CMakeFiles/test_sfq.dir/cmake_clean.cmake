file(REMOVE_RECURSE
  "CMakeFiles/test_sfq.dir/test_sfq.cpp.o"
  "CMakeFiles/test_sfq.dir/test_sfq.cpp.o.d"
  "test_sfq"
  "test_sfq.pdb"
  "test_sfq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sfq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
