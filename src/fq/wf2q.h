// WF2Q+ — Worst-case Fair Weighted Fair Queueing (plus).
//
// Items carry start/finish tags as in SFQ, but dispatch is restricted to
// *eligible* items (start tag <= system virtual time V) and picks the
// smallest finish tag among them — giving worst-case fairness within one
// service quantum of the fluid GPS reference.  V advances by the dispatched
// cost / total weight and jumps up to the minimum backlogged start tag so it
// can never stall behind an idle system (the "+" of WF2Q+).
#pragma once

#include <deque>
#include <vector>

#include "fq/fair_scheduler.h"
#include "util/check.h"

namespace qos {

class Wf2qPlusScheduler final : public FairScheduler {
 public:
  explicit Wf2qPlusScheduler(std::vector<double> weights);

  int flow_count() const override {
    return static_cast<int>(flows_.size());
  }
  void enqueue(int flow, std::uint64_t handle, double cost, Time now) override;
  std::optional<FqDispatch> dequeue(Time now) override;
  bool empty() const override;
  std::size_t backlog(int flow) const override;

  double virtual_time() const { return v_; }

 private:
  struct Item {
    std::uint64_t handle = 0;
    double cost = 1;
    double start = 0;
    double finish = 0;
  };
  struct Flow {
    double weight = 1;
    double last_finish = 0;
    std::deque<Item> queue;
  };

  std::vector<Flow> flows_;
  double v_ = 0;
  double total_weight_ = 0;
};

}  // namespace qos
