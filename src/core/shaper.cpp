#include "core/shaper.h"

#include "core/fairqueue.h"
#include "core/fcfs.h"
#include "core/miser.h"
#include "core/split.h"
#include "sim/server.h"
#include "util/check.h"

namespace qos {

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kFcfs: return "FCFS";
    case Policy::kSplit: return "Split";
    case Policy::kFairQueue: return "FairQueue";
    case Policy::kMiser: return "Miser";
  }
  QOS_CHECK(false);
}

std::unique_ptr<Scheduler> make_scheduler(const ShapingConfig& config,
                                          double cmin_iops) {
  QOS_EXPECTS(config.delta > 0);
  std::unique_ptr<Scheduler> scheduler;
  switch (config.policy) {
    case Policy::kFcfs:
      scheduler = std::make_unique<FcfsScheduler>();
      break;
    case Policy::kSplit:
      scheduler = std::make_unique<SplitScheduler>(cmin_iops, config.delta);
      break;
    case Policy::kFairQueue:
      scheduler = std::make_unique<FairQueueScheduler>(
          cmin_iops, config.delta, config.resolved_headroom_iops());
      break;
    case Policy::kMiser:
      scheduler = std::make_unique<MiserScheduler>(cmin_iops, config.delta);
      break;
  }
  QOS_CHECK(scheduler != nullptr);
  if (config.observed())
    scheduler->attach_observability(config.effective_sink(), config.registry);
  return scheduler;
}

ShapingOutcome shape_and_run(const Trace& trace, const ShapingConfig& raw) {
  QOS_EXPECTS(raw.delta > 0);
  // Wire the sink chain on a private copy: the explicit setup step the
  // observability contract in shaper.h requires, kept out of the caller's
  // const config.
  ShapingConfig config = raw;
  config.wire_sinks();
  ShapingOutcome out;
  out.cmin_iops = config.capacity_override_iops > 0
                      ? config.capacity_override_iops
                      : min_capacity(trace, config.fraction, config.delta)
                            .cmin_iops;
  out.headroom_iops = config.resolved_headroom_iops();

  auto scheduler = make_scheduler(config, out.cmin_iops);

  auto decorated = [&](Server* s, int index) {
    return config.server_decorator ? config.server_decorator(s, index) : s;
  };
  if (config.policy == Policy::kSplit) {
    ConstantRateServer primary(out.cmin_iops);
    ConstantRateServer overflow(out.headroom_iops > 0 ? out.headroom_iops
                                                      : 1.0);
    Server* servers[] = {decorated(&primary, 0), decorated(&overflow, 1)};
    out.sim = simulate(trace, *scheduler, servers, config.effective_sink());
  } else {
    ConstantRateServer server(out.total_iops());
    Server* servers[] = {decorated(&server, 0)};
    out.sim = simulate(trace, *scheduler, servers, config.effective_sink());
  }
  if (config.observed()) {
    out.report = build_shaping_report(out.sim, config.delta, config.registry);
    if (config.tracer != nullptr) {
      out.report.traced = true;
      out.report.trace_observed = config.tracer->observed();
      out.report.trace_dropped = config.tracer->dropped();
    }
  }
  return out;
}

}  // namespace qos
