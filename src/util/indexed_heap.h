// Indexed binary min-heap over small dense integer ids.
//
// The event simulator keys it by completion time over server ids; the fair
// schedulers key it by head tag over flow slots.  Both need the exact total
// order their original linear scans induced: ascending key, ties broken by
// the *lowest id* (the scans used a strict `<` improvement test walking ids
// in ascending order).  The heap therefore orders nodes lexicographically by
// (key, id), which makes every pop bit-compatible with the scan it replaced.
// (A backend whose tie-break unit is not its heap id — e.g. a slot-keyed
// heap that must tie-break on flow id — folds the tie value into a pair
// Key, whose lexicographic `<` subsumes the id comparison.)
//
// A position table gives O(log n) update/erase of an arbitrary id.  The
// table grows lazily toward `id_capacity` as ids are first pushed, so a
// heap configured for 10^6 ids but holding a handful costs a handful of
// entries, not megabytes — `reset` records the capacity bound and
// allocates nothing.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.h"

namespace qos {

template <typename Key>
class IndexedMinHeap {
 public:
  IndexedMinHeap() = default;
  explicit IndexedMinHeap(int id_capacity) { reset(id_capacity); }

  /// Empty the heap and bound the id space to [0, id_capacity).  O(1): no
  /// storage is reserved up front; the position table grows with the
  /// largest id actually pushed.
  void reset(int id_capacity) {
    QOS_EXPECTS(id_capacity >= 0);
    capacity_ = static_cast<std::size_t>(id_capacity);
    heap_.clear();
    pos_.clear();
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  bool contains(int id) const { return slot_of(check_id(id)) != kAbsent; }

  /// Id with the smallest (key, id).
  int top() const {
    QOS_EXPECTS(!heap_.empty());
    return heap_[0].id;
  }

  const Key& top_key() const {
    QOS_EXPECTS(!heap_.empty());
    return heap_[0].key;
  }

  const Key& key_of(int id) const {
    const std::size_t p = slot_of(check_id(id));
    QOS_EXPECTS(p != kAbsent);
    return heap_[p].key;
  }

  void push(int id, Key key) {
    const std::size_t i = check_id(id);
    if (i >= pos_.size()) grow_pos(i);
    QOS_EXPECTS(pos_[i] == kAbsent);
    pos_[i] = heap_.size();
    heap_.push_back(Node{key, id});
    sift_up(heap_.size() - 1);
  }

  /// Re-key an id already in the heap (key may move either way).
  void update(int id, Key key) {
    const std::size_t p = slot_of(check_id(id));
    QOS_EXPECTS(p != kAbsent);
    heap_[p].key = key;
    sift_up(p);
    sift_down(pos_[static_cast<std::size_t>(id)]);
  }

  /// Remove and return the top id.
  int pop() {
    QOS_EXPECTS(!heap_.empty());
    const int id = heap_[0].id;
    remove_at(0);
    return id;
  }

  void erase(int id) {
    const std::size_t p = slot_of(check_id(id));
    QOS_EXPECTS(p != kAbsent);
    remove_at(p);
  }

  /// Bytes held by the heap and its position table.  The lazy-growth
  /// contract asserted by bench/micro_algorithms: an idle heap costs O(1)
  /// regardless of id_capacity, and a busy one O(max id pushed).
  std::size_t memory_bytes() const {
    return heap_.capacity() * sizeof(Node) +
           pos_.capacity() * sizeof(std::size_t);
  }

 private:
  struct Node {
    Key key;
    int id;
  };

  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

  std::size_t check_id(int id) const {
    QOS_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < capacity_);
    return static_cast<std::size_t>(id);
  }

  /// Heap index of `id`, kAbsent when out — including ids beyond the lazily
  /// grown position table, which have never been pushed.
  std::size_t slot_of(std::size_t i) const {
    return i < pos_.size() ? pos_[i] : kAbsent;
  }

  void grow_pos(std::size_t i) {
    std::size_t next = pos_.empty() ? 16 : pos_.size() * 2;
    if (next < i + 1) next = i + 1;
    if (next > capacity_) next = capacity_;
    pos_.resize(next, kAbsent);
  }

  /// (key, id) lexicographic — the scan-equivalent total order.
  static bool less(const Node& a, const Node& b) {
    if (a.key < b.key) return true;
    if (b.key < a.key) return false;
    return a.id < b.id;
  }

  void place(std::size_t i, const Node& n) {
    heap_[i] = n;
    pos_[static_cast<std::size_t>(n.id)] = i;
  }

  void sift_up(std::size_t i) {
    const Node n = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less(n, heap_[parent])) break;
      place(i, heap_[parent]);
      i = parent;
    }
    place(i, n);
  }

  void sift_down(std::size_t i) {
    const Node n = heap_[i];
    const std::size_t count = heap_.size();
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= count) break;
      if (child + 1 < count && less(heap_[child + 1], heap_[child])) ++child;
      if (!less(heap_[child], n)) break;
      place(i, heap_[child]);
      i = child;
    }
    place(i, n);
  }

  void remove_at(std::size_t p) {
    pos_[static_cast<std::size_t>(heap_[p].id)] = kAbsent;
    const Node last = heap_.back();
    heap_.pop_back();
    if (p < heap_.size()) {
      place(p, last);
      sift_up(p);
      sift_down(pos_[static_cast<std::size_t>(last.id)]);
    }
  }

  std::size_t capacity_ = 0;  ///< id bound from reset(); pos_ grows toward it
  std::vector<Node> heap_;
  std::vector<std::size_t> pos_;  ///< id -> heap index, kAbsent when out
};

}  // namespace qos
