// Reproduces Table 1: capacity (IOPS) required for a specified fraction of
// each workload to meet the response-time target.
//
// Rows: workload x response-time target (5/10/20/50 ms); columns: fraction
// f in {90, 95, 99, 99.5, 99.9, 100}%.  The paper's knee — a small exempted
// fraction slashing required capacity — must reproduce; absolute IOPS differ
// because the traces are calibrated synthetics (see DESIGN.md).
//
// Execution engine: the 12 (workload, delta) knee curves are independent,
// so they fan out over the runner's thread pool — each curve stays a
// sequential warm-started search chain (Cmin is monotone in f), and rows
// land by index, so stdout is bit-identical at any --threads value.  With
// the result cache enabled the knee-ratio table at the bottom replays the
// already-computed searches as pure cache hits.
#include <cstdio>

#include "core/capacity.h"
#include "runner/bench_io.h"
#include "runner/parallel_capacity.h"
#include "runner/thread_pool.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

constexpr Workload kWorkloads[] = {Workload::kWebSearch, Workload::kFinTrans,
                                   Workload::kOpenMail};
constexpr Time kDeltas[] = {from_ms(5), from_ms(10), from_ms(20),
                            from_ms(50)};
constexpr double kFractions[] = {0.90, 0.95, 0.99, 0.995, 0.999, 1.0};

void run(const BenchOptions& options) {
  const double t0 = bench_now_seconds();
  ThreadPool pool(options.threads);
  auto cache = options.make_cache();
  ProfileCollector* profile = options.profile.get();

  // Trace generation is deterministic per (workload, seed) and independent
  // across workloads — the first parallel phase.
  const std::vector<Trace> traces =
      pool.parallel_map(std::size(kWorkloads), [&](std::size_t i) {
        ProfileScope scope(profile, "table1.trace_gen");
        return preset_trace(kWorkloads[i]);
      });
  std::vector<Digest> digests(traces.size());
  if (cache)
    pool.parallel_for(traces.size(), [&](std::size_t i) {
      ProfileScope scope(profile, "table1.trace_digest");
      digests[i] = hash_trace(traces[i]);
    });

  std::printf(
      "Table 1: Capacity (IOPS) required for specified workload fraction\n"
      "to meet the response-time target\n\n");
  for (std::size_t w = 0; w < std::size(kWorkloads); ++w)
    std::fprintf(stderr, "[table1] %s: %zu requests, mean %.0f IOPS\n",
                 workload_long_name(kWorkloads[w]).c_str(), traces[w].size(),
                 traces[w].mean_rate_iops());

  // One job per (workload, delta): a warm-started chain over the fractions.
  struct Curve {
    std::size_t workload = 0;
    Time delta = 0;
    std::vector<CapacityResult> by_fraction;
  };
  std::vector<Curve> curves;
  for (std::size_t w = 0; w < std::size(kWorkloads); ++w)
    for (Time delta : kDeltas) curves.push_back({w, delta, {}});
  pool.parallel_for(curves.size(), [&](std::size_t i) {
    ProfileScope scope(profile, "table1.capacity_curve");
    Curve& curve = curves[i];
    const Trace& trace = traces[curve.workload];
    const Digest* digest = cache ? &digests[curve.workload] : nullptr;
    CapacityHint hint;
    for (double f : kFractions) {
      const CapacityResult r = min_capacity_cached(
          trace, f, curve.delta, cache.get(), digest, hint);
      hint.infeasible_below = static_cast<std::int64_t>(r.cmin_iops) - 1;
      curve.by_fraction.push_back(r);
    }
  });

  AsciiTable table;
  table.add("Workload", "Target", "90.0%", "95.0%", "99.0%", "99.5%",
            "99.9%", "100%");
  for (const Curve& curve : curves) {
    std::vector<std::string> row;
    row.push_back(workload_name(kWorkloads[curve.workload]));
    row.push_back(format_double(to_ms(curve.delta), 0) + " ms");
    for (const CapacityResult& r : curve.by_fraction)
      row.push_back(format_double(r.cmin_iops, 0));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.to_string().c_str());

  // The knee summary the paper calls out in Section 4.1.  The c90/c100
  // searches are replays of curve cells: pure cache hits when caching is on.
  std::printf("Knee ratios (Cmin(100%%) / Cmin(90%%)):\n");
  AsciiTable knee;
  knee.add("Workload", "5 ms", "10 ms", "20 ms", "50 ms");
  for (std::size_t w = 0; w < std::size(kWorkloads); ++w) {
    const Digest* digest = cache ? &digests[w] : nullptr;
    std::vector<std::string> row{workload_name(kWorkloads[w])};
    for (Time delta : kDeltas) {
      const double c90 =
          min_capacity_cached(traces[w], 0.90, delta, cache.get(), digest)
              .cmin_iops;
      const double c100 =
          min_capacity_cached(traces[w], 1.0, delta, cache.get(), digest)
              .cmin_iops;
      row.push_back(format_double(c100 / c90, 1) + "x");
    }
    knee.add_row(std::move(row));
  }
  std::printf("%s", knee.to_string().c_str());

  BenchTiming timing;
  timing.name = options.bench_name;
  timing.wall_seconds = bench_now_seconds() - t0;
  timing.cells = curves.size() * std::size(kFractions);
  timing.cache_hits = cache ? cache->stats().hits : 0;
  timing.rows = curves.size() + std::size(kWorkloads);
  timing.threads = pool.thread_count();
  write_bench_json(options, timing);
}

}  // namespace

int main(int argc, char** argv) {
  run(parse_bench_args(argc, argv, "table1_capacity"));
  return 0;
}
