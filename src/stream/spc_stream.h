// Streaming SPC trace ingest: read an on-disk trace file of any size with
// bounded memory.
//
// Two line sources share one grammar (trace/spc.h's parse_spc_line):
//   * a chunked reader that pulls the file through a fixed-size buffer, and
//   * an mmap-backed reader that walks the mapped bytes in place (falls back
//     to the chunked reader on platforms without mmap).
// Both yield records in file order.  SPC files are *nearly* time-sorted —
// multi-ASU captures interleave streams whose clocks disagree slightly — so
// a bounded-disorder reorder stage sits on top: records buffer in a min-heap
// keyed (arrival, file index) and one is released only once a record
// `reorder_window` newer has been seen, at which point nothing still in the
// file can precede it.  Tie-breaking on file index reproduces exactly the
// stable sort parse_spc + the Trace constructor perform, so the streamed
// sequence is byte-identical to the materialized one (tests/test_stream.cpp)
// — provided the file's disorder really is bounded by the window, which is
// checked loudly (QOS_CHECK) rather than silently mis-sorted.
//
// Memory is O(records within one reorder window) + one chunk, independent of
// file size.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "stream/stream.h"
#include "util/time.h"

namespace qos::stream {

struct SpcStreamOptions {
  /// Max timestamp disorder tolerated (and buffered).  A record is emitted
  /// once some later file record is at least this much newer.  The default
  /// comfortably covers the sub-second clock skew of the public UMass/HP
  /// captures; exceeding it fails loudly instead of emitting out of order.
  Time reorder_window = kUsPerSec;

  /// Read granularity of the chunked reader.
  std::size_t chunk_bytes = std::size_t{1} << 20;

  /// Map the file instead of reading it through a buffer.  Same sequence;
  /// the page cache, not the heap, holds the bytes.
  bool use_mmap = false;
};

/// RequestStream over an SPC file.  Yields the identical sequence (order,
/// dense seq numbering, field values) that try_load_spc_file + Trace would
/// materialize.  Lines parse_spc_line rejects are skipped and counted.
class SpcFileStream final : public RequestStream {
 public:
  ~SpcFileStream() override;
  std::optional<Request> next() override;

  /// Malformed lines seen so far (total once the stream is exhausted);
  /// matches parse_spc's skipped-line count.
  std::size_t skipped_lines() const;

  class Impl;
  explicit SpcFileStream(std::unique_ptr<Impl> impl);

 private:
  std::unique_ptr<Impl> impl_;
};

/// Open an SPC file as a stream; nullptr when the file cannot be opened
/// (the same error contract as try_load_spc_file).
std::unique_ptr<SpcFileStream> try_open_spc_stream(
    const std::string& path, const SpcStreamOptions& options = {});

}  // namespace qos::stream
