// Statistical QoS provisioning baseline (paper Section 5 related work).
//
// The network-QoS literature the paper contrasts with (Knightly & Shroff's
// statistical envelopes) provisions from the *distribution* of windowed
// demand rather than from worst-case or decomposition-based profiles:
//
//   C_stat(eps) = mean + z(eps) * stddev     (Gaussian approximation)
//
// of the per-window arrival rate, where eps is the tolerated overflow
// probability.  For multiplexed clients the means add and the variances add
// (independence), which is where statistical multiplexing gain comes from.
// Implemented here as a comparison baseline for the consolidation
// experiments: unlike the RTT planner it carries no deadline semantics —
// it bounds the chance a window's demand exceeds capacity, not response
// times — which is exactly the gap the paper's decomposition fills.
#pragma once

#include <vector>

#include "trace/trace.h"
#include "util/time.h"

namespace qos {

struct StatisticalEstimate {
  double mean_iops = 0;
  double stddev_iops = 0;
  double capacity_iops = 0;  ///< mean + z * stddev
};

/// Gaussian quantile z for the upper-tail probability eps (eps in (0, 0.5]).
/// Acklam-style rational approximation, |error| < 1.2e-4 — ample for
/// provisioning.
double gaussian_upper_quantile(double eps);

/// Estimate capacity so that a fraction <= eps of windows of length
/// `window` exceed it (Gaussian approximation of the windowed rate).
StatisticalEstimate statistical_capacity(const Trace& trace, Time window,
                                         double eps);

/// Multiplexed estimate for independent clients: means add, variances add.
StatisticalEstimate statistical_multiplex(
    const std::vector<StatisticalEstimate>& clients, double eps);

}  // namespace qos
