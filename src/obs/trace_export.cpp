#include "obs/trace_export.h"

#include <algorithm>
#include <cstdarg>
#include <cstdint>
#include <cstdio>

#include "obs/trace_codec.h"

namespace qos {

// ---- binary container -----------------------------------------------------
//
// Layout (all integers little-endian, fixed width; record encodings shared
// with the chunked QOSTRC02 container via obs/trace_codec.h):
//
//   "QOSTRC01"                       8-byte magic
//   u32 trace_count
//   per trace:
//     u32 label_len,      label bytes
//     u32 trace_name_len, trace_name bytes
//     i64 delta, u64 sample_every, u64 observed, u64 dropped
//     u64 span_count,  span_count  * RequestSpan records
//     u64 fault_count, fault_count * FaultSpan records
//     u64 slack_count, slack_count * SlackSample records
//   u64 FNV-1a checksum of everything before it

namespace {

using trace_codec::fnv1a;
using trace_codec::get_fault;
using trace_codec::get_slack;
using trace_codec::get_span;
using trace_codec::put_fault;
using trace_codec::put_i64;
using trace_codec::put_slack;
using trace_codec::put_span;
using trace_codec::put_str;
using trace_codec::put_u32;
using trace_codec::put_u64;
using trace_codec::Reader;

constexpr char kMagic[] = "QOSTRC01";  // 8 chars + NUL
constexpr std::size_t kMagicLen = 8;

}  // namespace

std::string serialize_traces(std::span<const TraceData> traces) {
  std::string out;
  out.append(kMagic, kMagicLen);
  put_u32(out, static_cast<std::uint32_t>(traces.size()));
  for (const TraceData& t : traces) {
    put_str(out, t.label);
    put_str(out, t.trace_name);
    put_i64(out, t.delta);
    put_u64(out, t.sample_every);
    put_u64(out, t.observed);
    put_u64(out, t.dropped);
    put_u64(out, t.spans.size());
    for (const RequestSpan& s : t.spans) put_span(out, s);
    put_u64(out, t.faults.size());
    for (const FaultSpan& f : t.faults) put_fault(out, f);
    put_u64(out, t.slack.size());
    for (const SlackSample& s : t.slack) put_slack(out, s);
  }
  put_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

std::optional<std::vector<TraceData>> deserialize_traces(
    const std::string& bytes) {
  if (bytes.size() < kMagicLen + 4 + 8) return std::nullopt;
  if (bytes.compare(0, kMagicLen, kMagic, kMagicLen) != 0) return std::nullopt;

  // Checksum first: the payload must match before any structure is trusted.
  const std::size_t payload = bytes.size() - 8;
  Reader tail(bytes.data() + payload, 8);
  std::uint64_t checksum = 0;
  tail.u64(checksum);
  if (checksum != fnv1a(bytes.data(), payload)) return std::nullopt;

  Reader in(bytes.data(), payload);
  std::uint64_t skip_magic = 0;
  in.u64(skip_magic);  // 8 magic bytes, value already verified above
  std::uint32_t count = 0;
  if (!in.u32(count)) return std::nullopt;

  std::vector<TraceData> traces;
  traces.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    TraceData t;
    std::uint64_t spans = 0, faults = 0, slack = 0;
    if (!in.str(t.label) || !in.str(t.trace_name) || !in.i64(t.delta) ||
        !in.u64(t.sample_every) || !in.u64(t.observed) || !in.u64(t.dropped) ||
        !in.u64(spans) || spans > bytes.size())
      return std::nullopt;
    t.spans.resize(spans);
    for (RequestSpan& s : t.spans)
      if (!get_span(in, s)) return std::nullopt;
    if (!in.u64(faults) || faults > bytes.size()) return std::nullopt;
    t.faults.resize(faults);
    for (FaultSpan& f : t.faults)
      if (!get_fault(in, f)) return std::nullopt;
    if (!in.u64(slack) || slack > bytes.size()) return std::nullopt;
    t.slack.resize(slack);
    for (SlackSample& s : t.slack)
      if (!get_slack(in, s)) return std::nullopt;
    traces.push_back(std::move(t));
  }
  if (!in.ok() || in.pos() != payload) return std::nullopt;
  return traces;
}

// ---- Perfetto / Chrome trace_event JSON -----------------------------------

namespace {

/// JSON string escaping for labels (control chars, quotes, backslash).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class EventWriter {
 public:
  explicit EventWriter(std::string& out) : out_(out) {}

  void meta_process(int pid, const std::string& name) {
    begin();
    append("{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
           "\"args\":{\"name\":\"%s\"}}",
           pid, json_escape(name).c_str());
  }
  void meta_thread(int pid, int tid, const std::string& name) {
    begin();
    append("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\","
           "\"args\":{\"name\":\"%s\"}}",
           pid, tid, json_escape(name).c_str());
  }
  /// Async begin/end pair: overlapping queue residencies render stacked.
  void async(int pid, int tid, std::uint64_t id, Time begin_ts, Time end_ts,
             const char* name, const std::string& args) {
    begin();
    append("{\"ph\":\"b\",\"cat\":\"queue\",\"pid\":%d,\"tid\":%d,"
           "\"id\":%llu,\"ts\":%lld,\"name\":\"%s\",\"args\":{%s}}",
           pid, tid, static_cast<unsigned long long>(id),
           static_cast<long long>(begin_ts), name, args.c_str());
    begin();
    append("{\"ph\":\"e\",\"cat\":\"queue\",\"pid\":%d,\"tid\":%d,"
           "\"id\":%llu,\"ts\":%lld,\"name\":\"%s\"}",
           pid, tid, static_cast<unsigned long long>(id),
           static_cast<long long>(end_ts), name);
  }
  /// Complete slice ("X"): service on a server track, fault windows.
  void slice(int pid, int tid, Time ts, Time dur, const char* name,
             const std::string& args) {
    begin();
    append("{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%lld,\"dur\":%lld,"
           "\"name\":\"%s\",\"args\":{%s}}",
           pid, tid, static_cast<long long>(ts), static_cast<long long>(dur),
           name, args.c_str());
  }
  void instant(int pid, int tid, Time ts, const char* name,
               const std::string& args) {
    begin();
    append("{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%lld,\"s\":\"t\","
           "\"name\":\"%s\",\"args\":{%s}}",
           pid, tid, static_cast<long long>(ts), name, args.c_str());
  }

 private:
  void begin() {
    if (!first_) out_ += ",\n";
    first_ = false;
    out_ += "  ";
  }
  void append(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    out_ += buf;
  }

  std::string& out_;
  bool first_ = true;
};

const char* fault_kind_label(std::int64_t kind) {
  switch (kind) {
    case 0: return "capacity_loss";
    case 1: return "stall";
    case 2: return "latency_spike";
  }
  return "fault";
}

}  // namespace

std::string perfetto_trace_json(std::span<const TraceData> traces) {
  std::string out = "{\"traceEvents\":[\n";
  EventWriter w(out);
  char args[256];

  for (std::size_t i = 0; i < traces.size(); ++i) {
    const TraceData& t = traces[i];
    const int pid_queues = static_cast<int>(3 * i + 1);
    const int pid_servers = static_cast<int>(3 * i + 2);
    const int pid_faults = static_cast<int>(3 * i + 3);
    const std::string prefix = t.label.empty() ? "run" : t.label;

    w.meta_process(pid_queues, prefix + " queues");
    w.meta_thread(pid_queues, 1, "Q1 (primary)");
    w.meta_thread(pid_queues, 2, "Q2 (overflow)");
    w.meta_process(pid_servers, prefix + " servers");
    int max_server = 0;
    for (const RequestSpan& s : t.spans)
      max_server = std::max(max_server, static_cast<int>(s.server));
    for (int srv = 0; srv <= max_server; ++srv)
      w.meta_thread(pid_servers, srv + 1, "server " + std::to_string(srv));
    if (!t.faults.empty()) {
      w.meta_process(pid_faults, prefix + " faults");
      w.meta_thread(pid_faults, 1, "windows");
    }

    for (const RequestSpan& s : t.spans) {
      const int queue_tid = s.klass == ServiceClass::kPrimary ? 1 : 2;
      if (s.service_start != kNoTime) {
        const Time enq = s.enqueue != kNoTime ? s.enqueue : s.arrival;
        if (enq != kNoTime && s.service_start >= enq) {
          std::snprintf(args, sizeof(args),
                        "\"seq\":%llu,\"depth\":%lld,\"max_q1\":%lld",
                        static_cast<unsigned long long>(s.seq),
                        static_cast<long long>(s.depth_at_decision),
                        static_cast<long long>(s.max_q1_at_decision));
          w.async(pid_queues, queue_tid, s.seq, enq, s.service_start, "wait",
                  args);
        }
        if (s.completion != kNoTime && s.completion >= s.service_start) {
          std::snprintf(
              args, sizeof(args),
              "\"seq\":%llu,\"client\":%u,\"class\":\"%s\","
              "\"slack\":%lld,\"inflation_us\":%lld",
              static_cast<unsigned long long>(s.seq), s.client,
              s.klass == ServiceClass::kPrimary ? "primary" : "overflow",
              static_cast<long long>(s.slack_funding),
              static_cast<long long>(s.inflation_us));
          w.slice(pid_servers, s.server + 1, s.service_start,
                  s.completion - s.service_start, "serve", args);
        }
      }
      if (s.demoted != 0 && s.decision != kNoTime) {
        std::snprintf(args, sizeof(args),
                      "\"seq\":%llu,\"degraded_max_q1\":%lld",
                      static_cast<unsigned long long>(s.seq),
                      static_cast<long long>(s.max_q1_at_decision));
        w.instant(pid_queues, queue_tid, s.decision, "demote", args);
      }
    }

    for (const FaultSpan& f : t.faults) {
      std::snprintf(args, sizeof(args), "\"severity_ppm\":%lld",
                    static_cast<long long>(f.severity_ppm));
      w.slice(pid_faults, 1, f.begin, f.end - f.begin,
              fault_kind_label(f.kind), args);
    }
  }

  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace qos
