#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace qos {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(13);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, GeometricMeanConverges) {
  Rng rng(17);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(0.25));
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, GeometricAlwaysAtLeastOne) {
  Rng rng(19);
  for (int i = 0; i < 1'000; ++i) EXPECT_GE(rng.geometric(0.9), 1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.geometric(1.0), 1);
}

TEST(Rng, ParetoAboveMinimum) {
  Rng rng(23);
  for (int i = 0; i < 1'000; ++i) EXPECT_GE(rng.pareto(1.5, 2.0), 2.0);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(29);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, PoissonLargeMean) {
  Rng rng(31);
  double sum = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(500.0));
  EXPECT_NEAR(sum / n, 500.0, 2.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(37);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(99);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace qos
