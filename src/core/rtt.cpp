#include "core/rtt.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/service_timer.h"

namespace qos {

std::int64_t max_q1_slots(double capacity_iops, Time delta) {
  QOS_EXPECTS(capacity_iops > 0 && delta >= 0);
  // floor(C * delta) computed in double; values in practice are far below
  // 2^53 so the conversion is exact.
  return static_cast<std::int64_t>(capacity_iops * to_sec(delta));
}

namespace {

// The admission replay is the kernel of the capacity binary search, so the
// unobserved instantiation must stay exactly the bare loop: the registry
// hooks are compiled in (or out) rather than branch-tested per request.
template <bool kObserved>
Decomposition decompose_loop(const Trace& trace, double capacity_iops,
                             std::int64_t max_q1, Counter* admitted,
                             Counter* rejected, OccupancySeries* q1_occ) {
  Decomposition d;
  d.klass.assign(trace.size(), ServiceClass::kOverflow);
  d.q1_finish.assign(trace.size(), kTimeMax);

  // Completion instants of admitted requests, in admission (FIFO) order.
  std::vector<Time> finish;
  finish.reserve(trace.size());
  std::size_t completed = 0;  // admitted requests finished by current time

  ServiceTimer timer(capacity_iops);
  Time last_finish = 0;  // finish of the most recently admitted request

  for (const auto& r : trace) {
    while (completed < finish.size() && finish[completed] <= r.arrival)
      ++completed;
    const std::int64_t len_q1 =
        static_cast<std::int64_t>(finish.size() - completed);
    if (len_q1 < max_q1) {
      const Time start = std::max(r.arrival, last_finish);
      Time dur = timer.next();
      if (dur <= 0) dur = 1;
      last_finish = start + dur;
      finish.push_back(last_finish);
      d.klass[r.seq] = ServiceClass::kPrimary;
      d.q1_finish[r.seq] = last_finish;
      ++d.admitted;
      if constexpr (kObserved) {
        admitted->add();
        q1_occ->update(r.arrival, len_q1 + 1);
      }
    } else {
      if constexpr (kObserved) rejected->add();
    }
  }
  return d;
}

}  // namespace

Decomposition rtt_decompose(const Trace& trace, double capacity_iops,
                            Time delta, MetricRegistry* registry) {
  QOS_EXPECTS(capacity_iops > 0 && delta >= 0);
  const std::int64_t max_q1 = max_q1_slots(capacity_iops, delta);
  if (registry == nullptr) {
    return decompose_loop<false>(trace, capacity_iops, max_q1, nullptr,
                                 nullptr, nullptr);
  }
  return decompose_loop<true>(trace, capacity_iops, max_q1,
                              &registry->counter("rtt.admitted"),
                              &registry->counter("rtt.rejected"),
                              &registry->occupancy("q1.occupancy"));
}

}  // namespace qos
