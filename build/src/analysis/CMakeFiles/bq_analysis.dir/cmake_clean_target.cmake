file(REMOVE_RECURSE
  "libbq_analysis.a"
)
