// Reproduces Table 1: capacity (IOPS) required for a specified fraction of
// each workload to meet the response-time target.
//
// Rows: workload x response-time target (5/10/20/50 ms); columns: fraction
// f in {90, 95, 99, 99.5, 99.9, 100}%.  The paper's knee — a small exempted
// fraction slashing required capacity — must reproduce; absolute IOPS differ
// because the traces are calibrated synthetics (see DESIGN.md).
#include <cstdio>

#include "core/capacity.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

void run() {
  const double fractions[] = {0.90, 0.95, 0.99, 0.995, 0.999, 1.0};
  const Time deltas[] = {from_ms(5), from_ms(10), from_ms(20), from_ms(50)};

  std::printf(
      "Table 1: Capacity (IOPS) required for specified workload fraction\n"
      "to meet the response-time target\n\n");

  AsciiTable table;
  table.add("Workload", "Target", "90.0%", "95.0%", "99.0%", "99.5%",
            "99.9%", "100%");
  for (Workload w : {Workload::kWebSearch, Workload::kFinTrans,
                     Workload::kOpenMail}) {
    const Trace trace = preset_trace(w);
    std::fprintf(stderr, "[table1] %s: %zu requests, mean %.0f IOPS\n",
                 workload_long_name(w).c_str(), trace.size(),
                 trace.mean_rate_iops());
    for (Time delta : deltas) {
      std::vector<std::string> row;
      row.push_back(workload_name(w));
      row.push_back(format_double(to_ms(delta), 0) + " ms");
      for (double f : fractions) {
        const CapacityResult r = min_capacity(trace, f, delta);
        row.push_back(format_double(r.cmin_iops, 0));
      }
      table.add_row(std::move(row));
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // The knee summary the paper calls out in Section 4.1.
  std::printf("Knee ratios (Cmin(100%%) / Cmin(90%%)):\n");
  AsciiTable knee;
  knee.add("Workload", "5 ms", "10 ms", "20 ms", "50 ms");
  for (Workload w : {Workload::kWebSearch, Workload::kFinTrans,
                     Workload::kOpenMail}) {
    const Trace trace = preset_trace(w);
    std::vector<std::string> row{workload_name(w)};
    for (Time delta : deltas) {
      const double c90 = min_capacity(trace, 0.90, delta).cmin_iops;
      const double c100 = min_capacity(trace, 1.0, delta).cmin_iops;
      row.push_back(format_double(c100 / c90, 1) + "x");
    }
    knee.add_row(std::move(row));
  }
  std::printf("%s", knee.to_string().c_str());
}

}  // namespace

int main() {
  run();
  return 0;
}
