// online::Shaper differential and API tests.
//
// The load-bearing claim of the online layer is that it adds no admission
// logic of its own: a Shaper driven by a VirtualClock from a trace must
// reproduce shape_and_run byte for byte — decisions, completion records,
// event stream — for every recombination policy.  The rest of the suite
// covers the online-only surface: batch equivalence, bounded-Q2 shedding,
// degraded admission.
#include <gtest/gtest.h>

#include <vector>

#include "core/shaper.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "online/replay.h"
#include "online/shaper.h"
#include "trace/generator.h"
#include "util/clock.h"

namespace qos {
namespace {

using online::Admit;
using online::Decision;
using online::DispatchCommand;
using online::ReplayOutcome;
using online::Shaper;
using online::ShaperOptions;

// Bursty enough that every policy exercises both admits and overflows:
// two-regime MMPP plus a batch overlay (sub-deadline spikes).
Trace burst_trace() {
  WorkloadSpec spec;
  spec.states = {{400, 1.0}, {1500, 0.4}};
  spec.batches = {.batches_per_sec = 0.5, .mean_size = 12, .spread_us = 2'000};
  return generate_workload(spec, 20 * kUsPerSec, 20260809);
}

constexpr Policy kAllPolicies[] = {Policy::kFcfs, Policy::kSplit,
                                   Policy::kFairQueue, Policy::kMiser};

struct Differential {
  ShapingOutcome offline;
  ReplayOutcome online;
  std::vector<Event> offline_events;
  std::vector<Event> online_events;
};

Differential run_differential(Policy policy, const Trace& trace) {
  Differential d;

  RecordingSink offline_sink;
  ShapingConfig config;
  config.policy = policy;
  config.sink = &offline_sink;
  d.offline = shape_and_run(trace, config);
  d.offline_events = offline_sink.events();

  RecordingSink online_sink;
  ShaperOptions options;
  options.shaping.policy = policy;
  options.shaping.sink = &online_sink;
  options.cmin_iops = d.offline.cmin_iops;
  d.online = online::replay_trace(trace, options);
  d.online_events = online_sink.events();
  return d;
}

TEST(OnlineShaperDifferential, DecisionsAndCompletionsMatchShapeAndRun) {
  const Trace trace = burst_trace();
  for (Policy policy : kAllPolicies) {
    SCOPED_TRACE(policy_name(policy));
    const Differential d = run_differential(policy, trace);

    // Completion records — same bytes, same order.
    ASSERT_EQ(d.online.sim.completions.size(),
              d.offline.sim.completions.size());
    EXPECT_EQ(d.online.sim.completions, d.offline.sim.completions);

    // The full event stream: arrivals, admissions, dispatches,
    // completions, in the same order with the same payloads.
    ASSERT_EQ(d.online_events.size(), d.offline_events.size());
    for (std::size_t i = 0; i < d.online_events.size(); ++i) {
      ASSERT_EQ(d.online_events[i], d.offline_events[i]) << "event " << i;
    }

    // One decision per request, in arrival order, consistent with the
    // stream the offline run emitted.
    ASSERT_EQ(d.online.decisions.size(), trace.size());
    std::size_t q1 = 0, q2 = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const Decision& dec = d.online.decisions[i];
      EXPECT_EQ(dec.seq, trace[i].seq);
      EXPECT_NE(dec.admit, Admit::kShed);  // unbounded Q2 never sheds
      if (dec.admit == Admit::kQ1) {
        ++q1;
        EXPECT_EQ(dec.deadline,
                  trace[i].arrival + ShapingConfig{}.delta);
      } else {
        ++q2;
        EXPECT_EQ(dec.deadline, kTimeMax);
      }
    }
    std::uint64_t offline_admits = 0, offline_overflows = 0;
    for (const Event& e : d.offline_events) {
      offline_admits += e.kind == EventKind::kAdmit ? 1 : 0;
      offline_overflows += (e.kind == EventKind::kReject ||
                            e.kind == EventKind::kDemote)
                               ? 1
                               : 0;
    }
    EXPECT_EQ(q1, offline_admits);
    EXPECT_EQ(q2, offline_overflows);
  }
}

TEST(OnlineShaperDifferential, MetricsRegistrySeesTheSameCounts) {
  const Trace trace = burst_trace();
  MetricRegistry offline_registry, online_registry;

  ShapingConfig config;
  config.policy = Policy::kMiser;
  config.registry = &offline_registry;
  const ShapingOutcome outcome = shape_and_run(trace, config);

  ShaperOptions options;
  options.shaping.policy = Policy::kMiser;
  options.shaping.registry = &online_registry;
  options.cmin_iops = outcome.cmin_iops;
  (void)online::replay_trace(trace, options);

  ASSERT_EQ(online_registry.counters().size(),
            offline_registry.counters().size());
  for (const auto& [name, counter] : offline_registry.counters()) {
    const Counter* mirrored = online_registry.find_counter(name);
    ASSERT_NE(mirrored, nullptr) << name;
    EXPECT_EQ(mirrored->value(), counter.value()) << name;
  }
}

TEST(OnlineShaper, BatchMatchesSingleDecisionForDecision) {
  // Two identical Shapers; one admits a burst request-by-request, the other
  // in one admit_batch call at the same instant.
  ShaperOptions options;
  options.shaping.policy = Policy::kMiser;
  options.cmin_iops = 300;

  VirtualClock clock_single, clock_batch;
  Shaper single(options, clock_single);
  Shaper batch(options, clock_batch);

  std::vector<Request> burst;
  for (std::uint64_t i = 0; i < 64; ++i)
    burst.push_back(Request{.arrival = 1'000, .seq = i});

  std::vector<Decision> singles;
  for (const Request& r : burst) singles.push_back(single.admit(r, 1'000));
  const std::vector<Decision> batched = batch.admit_batch(burst, 1'000);

  ASSERT_EQ(batched.size(), singles.size());
  for (std::size_t i = 0; i < singles.size(); ++i)
    EXPECT_EQ(batched[i], singles[i]) << "decision " << i;
  EXPECT_EQ(batch.admitted_q1(), single.admitted_q1());
  EXPECT_EQ(batch.admitted_q2(), single.admitted_q2());
  EXPECT_EQ(batch.q2_backlog(), single.q2_backlog());

  // And the dispatch side agrees too.
  const std::vector<DispatchCommand> ds = single.poll_dispatch(1'000);
  const std::vector<DispatchCommand> db = batch.poll_dispatch(1'000);
  EXPECT_EQ(db, ds);
}

TEST(OnlineShaper, BoundedQ2ShedsInsteadOfQueueing) {
  // cmin 100 IOPS at delta 10 ms => maxQ1 = 1: the first arrival takes Q1,
  // the next two fill the bounded Q2, the rest shed.
  ShaperOptions options;
  options.shaping.policy = Policy::kMiser;
  options.cmin_iops = 100;
  options.max_q2_depth = 2;

  VirtualClock clock;
  Shaper shaper(options, clock);

  std::vector<Decision> decisions;
  for (std::uint64_t i = 0; i < 50; ++i)
    decisions.push_back(shaper.admit(Request{.arrival = 0, .seq = i}, 0));

  EXPECT_EQ(decisions[0].admit, Admit::kQ1);
  EXPECT_EQ(decisions[1].admit, Admit::kQ2);
  EXPECT_EQ(decisions[2].admit, Admit::kQ2);
  for (std::size_t i = 3; i < decisions.size(); ++i) {
    EXPECT_EQ(decisions[i].admit, Admit::kShed) << "decision " << i;
    EXPECT_EQ(decisions[i].deadline, kTimeMax);
    EXPECT_EQ(decisions[i].depth, -1);
  }
  EXPECT_EQ(shaper.admitted_q1(), 1u);
  EXPECT_EQ(shaper.admitted_q2(), 2u);
  EXPECT_EQ(shaper.shed(), 47u);
  EXPECT_LE(shaper.q2_backlog(), options.max_q2_depth);

  // Draining the backlog re-opens admission: complete the dispatched work
  // and the next overflow arrival queues instead of shedding.
  const std::vector<DispatchCommand> cmds = shaper.poll_dispatch(0);
  ASSERT_FALSE(cmds.empty());
  Time now = 0;
  for (const DispatchCommand& cmd : cmds) {
    now += 1'000;
    shaper.on_completion(cmd.request, cmd.klass, cmd.server, now);
  }
  (void)shaper.poll_dispatch(now);  // dispatch the remaining Q2 backlog
  while (shaper.busy_servers() > 0) {
    now += 1'000;
    // Single server: complete whatever is running.
    for (const DispatchCommand& cmd : shaper.poll_dispatch(now)) {
      shaper.on_completion(cmd.request, cmd.klass, cmd.server, now);
    }
    break;
  }
  EXPECT_LT(shaper.q2_backlog(), options.max_q2_depth);
  const Decision after =
      shaper.admit(Request{.arrival = now, .seq = 1'000}, now);
  EXPECT_NE(after.admit, Admit::kShed);
}

TEST(OnlineShaper, ShedRequestsNeverReachTheSchedulerStream) {
  RecordingSink sink;
  ShaperOptions options;
  options.shaping.policy = Policy::kMiser;
  options.shaping.sink = &sink;
  options.cmin_iops = 100;
  options.max_q2_depth = 1;

  VirtualClock clock;
  Shaper shaper(options, clock);
  for (std::uint64_t i = 0; i < 10; ++i)
    (void)shaper.admit(Request{.arrival = 0, .seq = i}, 0);

  // Only non-shed requests produce kArrival (and decision) events.
  const std::uint64_t entered = shaper.admitted_q1() + shaper.admitted_q2();
  EXPECT_EQ(sink.count(EventKind::kArrival), entered);
  EXPECT_EQ(sink.count(EventKind::kAdmit) + sink.count(EventKind::kReject),
            entered);
  EXPECT_EQ(shaper.shed(), 10 - entered);
}

TEST(OnlineShaper, DegradedAdmissionReplaySmoke) {
  ShaperOptions options;
  options.cmin_iops = 200;
  options.use_degraded_admission = true;

  const Trace trace = burst_trace();
  const ReplayOutcome out = online::replay_trace(trace, options);
  ASSERT_EQ(out.decisions.size(), trace.size());
  ASSERT_EQ(out.sim.completions.size(), trace.size());
  std::uint64_t q1 = 0, q2 = 0, demoted = 0;
  for (const Decision& d : out.decisions) {
    EXPECT_NE(d.admit, Admit::kShed);
    q1 += d.admit == Admit::kQ1 ? 1 : 0;
    q2 += d.admit == Admit::kQ2 ? 1 : 0;
    demoted += d.demoted ? 1 : 0;
  }
  EXPECT_EQ(q1 + q2, trace.size());
  EXPECT_LE(demoted, q2);
  EXPECT_GT(q1, 0u);
}

TEST(OnlineShaper, ConvenienceOverloadsStampFromTheClock) {
  ShaperOptions options;
  options.cmin_iops = 500;

  VirtualClock clock;
  Shaper shaper(options, clock);
  clock.advance_to(5'000);
  const Decision d = shaper.admit(Request{.seq = 0});
  ASSERT_EQ(d.admit, Admit::kQ1);
  EXPECT_EQ(d.deadline, 5'000 + ShapingConfig{}.delta);

  const std::vector<DispatchCommand> cmds = shaper.poll_dispatch();
  ASSERT_EQ(cmds.size(), 1u);
  // The request the scheduler saw was stamped with the clock's instant,
  // not the (unset) arrival field.
  EXPECT_EQ(cmds[0].request.arrival, 5'000);
}

}  // namespace
}  // namespace qos
