// Calibrated stand-ins for the paper's three evaluation traces.
//
// The paper uses UMass WebSearch, UMass Financial (FinTrans) and HP OpenMail
// block traces, none of which are redistributable here.  Each preset is a
// WorkloadSpec whose generated trace matches the published burst structure:
//
//   WebSearch — moderate average (~330 IOPS), comparatively smooth base with
//     occasional small clusters; Cmin(100%)/Cmin(90%) ≈ 4x at tight deadlines.
//   FinTrans  — low average (~110 IOPS) OLTP traffic with rare intense spikes;
//     the paper's most extreme knee (7.5x at 5 ms).
//   OpenMail  — high average (~534 IOPS) with long multi-second burst
//     plateaus (~4400 IOPS at 100 ms windows, paper Fig. 2) and rare dense
//     clusters that push Cmin(100%) near 10x the 90% requirement.
//
// Real SPC traces can be substituted at any time via trace/spc.h.
#pragma once

#include <cstdint>
#include <string>

#include "trace/generator.h"
#include "trace/trace.h"

namespace qos {

enum class Workload { kWebSearch, kFinTrans, kOpenMail };

/// Short names used in tables: "WS", "FT", "OM".
std::string workload_name(Workload w);
std::string workload_long_name(Workload w);

/// The calibrated generator spec for a workload.
WorkloadSpec preset_spec(Workload w);

/// Default seed used by benches/tests so all binaries see the same trace.
std::uint64_t preset_seed(Workload w);

/// Default evaluation duration (matches the paper's ~1 h trace sections).
inline constexpr Time kPresetDuration = 3'600 * kUsPerSec;

/// Generate the workload's trace.  `duration <= 0` uses kPresetDuration and
/// `seed == 0` uses preset_seed(w).
Trace preset_trace(Workload w, Time duration = 0, std::uint64_t seed = 0);

}  // namespace qos
