#include "core/offload.h"

#include <gtest/gtest.h>

#include "analysis/response_stats.h"
#include "core/split.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace qos {
namespace {

SimResult run_offload(const Trace& t, double cmin, Time delta, int targets,
                      double per_target_iops,
                      OffloadRouting routing = OffloadRouting::kRoundRobin) {
  OffloadScheduler sched(cmin, delta, targets, routing);
  std::vector<ConstantRateServer> servers;
  servers.reserve(static_cast<std::size_t>(targets) + 1);
  servers.emplace_back(cmin);
  for (int i = 0; i < targets; ++i) servers.emplace_back(per_target_iops);
  std::vector<Server*> ptrs;
  for (auto& s : servers) ptrs.push_back(&s);
  return simulate(t, sched, ptrs);
}

TEST(Offload, ServerCountIsPrimaryPlusPool) {
  OffloadScheduler sched(100, 10'000, 3);
  EXPECT_EQ(sched.server_count(), 4);
}

TEST(Offload, SingleTargetMatchesSplit) {
  // k = 1 must reproduce Split exactly (same admission, same service).
  Trace t = generate_poisson(700, 10 * kUsPerSec, 1201);
  const double cmin = 400;
  const Time delta = 10'000;

  SimResult offload = run_offload(t, cmin, delta, 1, 100);

  SplitScheduler split(cmin, delta);
  ConstantRateServer primary(cmin);
  ConstantRateServer overflow(100);
  Server* servers[] = {&primary, &overflow};
  SimResult split_result = simulate(t, split, servers);

  ASSERT_EQ(offload.completions.size(), split_result.completions.size());
  for (std::size_t i = 0; i < offload.completions.size(); ++i) {
    EXPECT_EQ(offload.completions[i].seq, split_result.completions[i].seq);
    EXPECT_EQ(offload.completions[i].finish,
              split_result.completions[i].finish);
  }
}

TEST(Offload, PrimaryDeadlinesUnaffectedByPoolSize) {
  Trace t = generate_poisson(700, 10 * kUsPerSec, 1203);
  const Time delta = 10'000;
  for (int targets : {1, 2, 4}) {
    SimResult r = run_offload(t, 400, delta, targets, 50);
    for (const auto& c : r.completions) {
      if (c.klass == ServiceClass::kPrimary) {
        EXPECT_LE(c.response_time(), delta) << "targets " << targets;
      }
    }
  }
}

TEST(Offload, MoreTargetsDrainOverflowFaster) {
  // Overflow load beyond one target's capacity: the pool helps.
  Trace t = generate_poisson(900, 10 * kUsPerSec, 1205);
  ResponseStats one(run_offload(t, 400, 10'000, 1, 60).completions,
                    ServiceClass::kOverflow);
  ResponseStats four(run_offload(t, 400, 10'000, 4, 60).completions,
                     ServiceClass::kOverflow);
  ASSERT_FALSE(one.empty());
  ASSERT_FALSE(four.empty());
  EXPECT_LT(four.mean_us(), one.mean_us() / 2);
}

TEST(Offload, RoundRobinSpreadsEvenly) {
  std::vector<Request> reqs;
  for (int i = 0; i < 12; ++i) reqs.push_back(Request{.arrival = 0});
  Trace t(std::move(reqs));
  // maxQ1 = 0: everything offloads; round robin over 3 targets.
  OffloadScheduler sched(50, 10'000, 3);
  for (const auto& r : t) sched.on_arrival(r, 0);
  EXPECT_EQ(sched.overflow_queued(0), 4u);
  EXPECT_EQ(sched.overflow_queued(1), 4u);
  EXPECT_EQ(sched.overflow_queued(2), 4u);
}

TEST(Offload, LeastLoadedPrefersShortestQueue) {
  OffloadScheduler sched(50, 10'000, 2, OffloadRouting::kLeastLoaded);
  Request r;
  sched.on_arrival(r, 0);  // -> target 0
  sched.on_arrival(r, 0);  // -> target 1 (0 now longer)
  sched.on_arrival(r, 0);  // tie -> target 0
  EXPECT_EQ(sched.overflow_queued(0), 2u);
  EXPECT_EQ(sched.overflow_queued(1), 1u);
}

TEST(Offload, LeastLoadedBalancesUnderDrain) {
  Trace t = generate_poisson(600, 10 * kUsPerSec, 1207);
  SimResult r = run_offload(t, 200, 10'000, 3, 150,
                            OffloadRouting::kLeastLoaded);
  EXPECT_EQ(r.completions.size(), t.size());
  std::size_t per_server[4] = {0, 0, 0, 0};
  for (const auto& c : r.completions) ++per_server[c.server];
  // All three offload targets carry comparable load.
  for (int s = 1; s <= 3; ++s) {
    EXPECT_GT(per_server[s], per_server[0] / 8) << "server " << s;
  }
}

}  // namespace
}  // namespace qos
