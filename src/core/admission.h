// Admission control for a shared server (paper Sections 1, 4.4).
//
// The provider has a fixed server capacity and receives tenant requests,
// each a (workload profile, SLA) pair.  Because reshaped per-tenant
// capacities aggregate accurately (Figures 7-8), admission reduces to a sum
// check on the decomposed capacities — the paper's "improving admission
// control decisions".  The controller also reports how many *worst-case*
// provisioned tenants the same server could have carried, quantifying the
// admission head-count gained by graduation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/capacity.h"
#include "core/sla.h"
#include "trace/trace.h"

namespace qos {

struct TenantRequest {
  std::string name;
  const Trace* profile = nullptr;  ///< representative workload (not owned)
  SlaTier sla;                     ///< fraction within delta
};

struct TenantDecision {
  std::string name;
  bool admitted = false;
  double reserved_iops = 0;  ///< Cmin(f, delta) reserved when admitted
};

struct AdmissionReport {
  std::vector<TenantDecision> decisions;
  double capacity_iops = 0;      ///< server capacity offered
  double reserved_iops = 0;      ///< total reserved for admitted tenants
  double headroom_iops = 0;      ///< shared overflow headroom reserved
  int admitted_count = 0;
  /// How many of the same tenants a worst-case (100%) reservation policy
  /// would have admitted on this server.
  int worst_case_admitted_count = 0;

  double utilization() const {
    return capacity_iops == 0
               ? 0
               : (reserved_iops + headroom_iops) / capacity_iops;
  }
};

/// First-fit admission in request order: a tenant is admitted when its
/// decomposed capacity Cmin(f, delta) plus the (single, shared) overflow
/// headroom max(1/delta_i) still fits in `capacity_iops`.
AdmissionReport admit_tenants(std::span<const TenantRequest> tenants,
                              double capacity_iops);

}  // namespace qos
