file(REMOVE_RECURSE
  "CMakeFiles/test_rate_series.dir/test_rate_series.cpp.o"
  "CMakeFiles/test_rate_series.dir/test_rate_series.cpp.o.d"
  "test_rate_series"
  "test_rate_series.pdb"
  "test_rate_series[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rate_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
