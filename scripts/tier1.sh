#!/usr/bin/env bash
# Tier-1 verification: the plain build + test matrix from ROADMAP.md, then
# the same test suite under ASan+UBSan so the simulator/scheduler hot paths
# (including the observability hooks) stay sanitizer-clean.  An optional
# third stage runs the concurrency-facing suites (runner, obs, fault/chaos)
# under ThreadSanitizer — the parallel experiment engine's race gate.
#
#   scripts/tier1.sh            # plain + ASan/UBSan passes
#   scripts/tier1.sh --fast     # plain pass only
#   scripts/tier1.sh --tsan     # plain + ASan/UBSan + TSan passes
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

# Concurrency-facing test suites for the TSan stage: the runner subsystem
# plus everything its worker threads touch (metrics, reports, fault/chaos).
tsan_filter='ThreadPool|ResultCache|Sweep|Parallel|MinCapacityCached|Merge'
tsan_filter+='|Obs|Chaos|Fault|DegradedRtt|CapacityMonitor|Histogram'
tsan_filter+='|Registry|Occupancy|CounterGauge|Sinks|Exporters|ShapingReport|Sla'
tsan_filter+='|Tracer|TraceLifecycle|Profile'
# Million-flow hot-path structures and the sparse-activation differentials:
# single-threaded by design, kept in the TSan stage as a cheap guard against
# a future caller sharing a scheduler across runner threads.
tsan_filter+='|FlatSlotMap|TimerWheel|IndexedMinHeapLazy|FqSparseActivation'

echo "== tier-1: plain build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$jobs"
ctest --test-dir build --output-on-failure --timeout 120 -j"$jobs"

if [[ "${1:-}" == "--fast" ]]; then
  exit 0
fi

echo "== tier-1: ASan+UBSan build + ctest (tests only) =="
cmake -B build-asan -S . -DQOS_SANITIZE=ON >/dev/null
cmake --build build-asan -j"$jobs"
ctest --test-dir build-asan --output-on-failure --timeout 300 -j"$jobs"

if [[ "${1:-}" == "--tsan" ]]; then
  echo "== tier-1: TSan build + ctest (runner/obs/fault suites) =="
  cmake -B build-tsan -S . -DQOS_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$jobs"
  ctest --test-dir build-tsan --output-on-failure --timeout 300 -j"$jobs" \
    -R "$tsan_filter"
fi
