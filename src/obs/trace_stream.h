// Streaming trace path: chunked QOSTRC02 container, cursor-based scan, and
// bounded-memory analysis/export over traces too large to materialize.
//
// The QOSTRC01 container (obs/trace_export.h) holds a whole TraceData —
// writer and reader both materialize every span, which is fine for
// figure-sized runs and O(requests) memory for giant ones.  QOSTRC02 is the
// at-scale sibling: records are written through as they complete, framed
// into fixed-size chunks, each independently checksummed and length-prefixed
// so a reader can *skip* record types it does not need without parsing them.
//
// Layout (integers little-endian; record encodings shared with QOSTRC01 via
// obs/trace_codec.h):
//
//   "QOSTRC02"                      8-byte magic
//   meta chunk   ('M'):  label str, trace_name str, i64 delta,
//                        u64 sample_every
//   data chunks  ('S' spans | 'F' faults | 'K' slack), any order/number:
//   footer chunk ('E'):  u64 observed, dropped, spans, faults, slack totals
//
//   every chunk:  u8 type, u64 payload_len, payload,
//                 u64 FNV-1a(payload)
//   data payload: u64 record_count, records
//
// The footer's totals double as a structural check: a truncated stream
// either has no footer or disagrees with the per-type record counts, and
// scan_trace_stream rejects both.  Memory for writer, cursor, analysis and
// Perfetto export is O(chunk), never O(trace).
//
// What streaming analysis gives up: the queue-timeline reconstruction
// (obs/trace_analysis.h) needs all enqueue/dispatch edges time-sorted, and
// spans arrive in completion order — a span completing at time c may have
// enqueued arbitrarily earlier, so no bounded-memory single pass can emit
// the timeline exactly.  Streaming analysis therefore reports attribution,
// miss counts and slack accounting (all exactly equal to the materialized
// path — tests assert) and omits the timeline.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "obs/trace_analysis.h"

namespace qos {

/// Run-level metadata carried in the QOSTRC02 meta chunk (the TraceData
/// header fields, minus the materialized record vectors).
struct StreamTraceMeta {
  std::string label;
  std::string trace_name;
  Time delta = 0;
  std::uint64_t sample_every = 1;
};

/// Footer totals: observability counters plus per-type record counts.
struct StreamTraceFooter {
  std::uint64_t observed = 0;  ///< sampled requests seen
  std::uint64_t dropped = 0;   ///< ring evictions (0 in pure streaming mode)
  std::uint64_t spans = 0;
  std::uint64_t faults = 0;
  std::uint64_t slack = 0;
};

/// SpanSink that frames records into QOSTRC02 chunks on `out` as they
/// arrive.  Attach to a Tracer via set_span_sink for bounded-memory traced
/// runs; finish() must be called exactly once after the run to flush
/// pending chunks and write the footer (the destructor QOS_CHECKs this —
/// an unfinished stream is silently unreadable, which is worse than
/// aborting).  The stream is borrowed and must outlive the writer.
class ChunkedTraceWriter final : public SpanSink {
 public:
  static constexpr std::size_t kDefaultRecordsPerChunk = 4096;

  ChunkedTraceWriter(std::ostream& out, const StreamTraceMeta& meta,
                     std::size_t records_per_chunk = kDefaultRecordsPerChunk);
  ~ChunkedTraceWriter() override;

  ChunkedTraceWriter(const ChunkedTraceWriter&) = delete;
  ChunkedTraceWriter& operator=(const ChunkedTraceWriter&) = delete;

  void on_span(const RequestSpan& span) override;
  void on_fault(const FaultSpan& fault) override;
  void on_slack(const SlackSample& sample) override;

  /// Flush pending chunks and write the footer.  `observed`/`dropped` come
  /// from the Tracer at end of run (record counts are tracked internally).
  void finish(std::uint64_t observed, std::uint64_t dropped);
  bool finished() const { return finished_; }
  const StreamTraceFooter& footer() const { return footer_; }

 private:
  void flush_chunk(char type, std::string& payload, std::uint64_t& count);

  std::ostream& out_;
  std::size_t records_per_chunk_;
  std::string span_buf_, fault_buf_, slack_buf_;
  std::uint64_t span_count_ = 0, fault_count_ = 0, slack_count_ = 0;
  StreamTraceFooter footer_;
  bool finished_ = false;
};

/// Scan a QOSTRC02 stream front to back, invoking the non-null callbacks
/// per record.  Chunks whose record type has a null callback are *seeked
/// over* — their payloads are never read or checksummed, which is what
/// makes a faults-only pre-pass over a 10^8-span trace cheap.  Returns the
/// footer on success; nullopt on bad magic, a corrupt/truncated chunk, a
/// missing footer, or footer/record-count disagreement (only for the record
/// types actually read — skipped types are trusted to the footer).
/// `meta`, when non-null, receives the meta chunk.  The stream must be
/// seekable (a file or istringstream); the cursor leaves it positioned at
/// the end.  Rewind (clear() + seekg(0)) to scan again.
std::optional<StreamTraceFooter> scan_trace_stream(
    std::istream& in, StreamTraceMeta* meta,
    const std::function<void(const RequestSpan&)>& on_span,
    const std::function<void(const FaultSpan&)>& on_fault,
    const std::function<void(const SlackSample&)>& on_slack);

/// True when `bytes` (>= 8 bytes of a file head) carries the QOSTRC02
/// magic — how tools pick the streaming path over deserialize_traces.
bool is_chunked_trace(const std::string& head);

/// Bounded-memory analysis of a QOSTRC02 stream: attribution counts, slack
/// accounting and fault windows, but no materialized misses or timeline
/// (see file comment).  Equal to the materialized attribute_misses /
/// miser_slack_report on the same records.
struct StreamAnalysis {
  StreamTraceMeta meta;
  StreamTraceFooter footer;
  std::uint64_t completed = 0;
  std::uint64_t met = 0;
  std::uint64_t missed = 0;
  std::uint64_t by_cause[kMissCauseCount] = {0, 0, 0, 0};
  SlackReport slack;
  std::vector<FaultSpan> faults;  ///< bounded by the fault schedule
};

/// Two-pass scan: faults + slack first (span chunks skipped), then spans
/// classified against `delta` (< 0 uses the stream's own meta delta).
/// nullopt on any structural error.
std::optional<StreamAnalysis> analyze_trace_stream(std::istream& in,
                                                   Time delta = -1);

/// The trace_analysis_text twin for streamed traces: identical header,
/// miss-attribution table and slack lines (tests assert), with the
/// retained/dropped line reading from the footer and the queue-timeline
/// line replaced by an "omitted" note.
std::string trace_analysis_text_stream(const StreamAnalysis& analysis);

/// Streaming Perfetto export: one pass over `trace_in`, writing trace_event
/// JSON to `json_out` as spans are decoded; server/fault track metadata is
/// emitted on first sight.  Same track layout as perfetto_trace_json for a
/// single trace.  Returns false on a malformed stream (json_out may then
/// hold a partial document).
bool perfetto_trace_json_stream(std::istream& trace_in,
                                std::ostream& json_out);

}  // namespace qos
