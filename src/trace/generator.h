// Synthetic workload generation.
//
// The paper evaluates on three proprietary/distribution-restricted traces
// (UMass WebSearch & Financial, HP OpenMail).  Offline we reproduce their
// burst structure with calibrated synthetic processes (see DESIGN.md §2):
//
//  * a Markov-modulated Poisson process (MMPP) captures multi-second rate
//    regimes (idle / normal / burst plateaus — the dominant feature of the
//    OpenMail trace in the paper's Figure 2);
//  * a Poisson *batch overlay* captures sub-deadline spikes — tens of
//    requests landing within a few milliseconds — which is what makes the
//    paper's Cmin(100%) an order of magnitude larger than Cmin(99%);
//  * a b-model generator provides self-similar burstiness across timescales
//    and a Pareto on/off source provides heavy-tailed busy periods, both used
//    in tests and ablations.
//
// All generators are deterministic given (spec, duration, seed).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.h"
#include "util/rng.h"
#include "util/time.h"

namespace qos {

/// How LBAs / sizes / read-write mix are assigned to generated arrivals.
/// Only the disk-model experiments care; the constant-rate server ignores it.
struct AddressSpec {
  std::uint64_t lba_max = 1ULL << 26;  ///< address space in 512 B blocks
  double sequential_prob = 0.3;        ///< P(next request continues a run)
  std::uint32_t size_blocks = 8;       ///< request size (512 B blocks)
  double write_fraction = 0.35;
};

/// One MMPP regime: Poisson arrivals at `rate_iops` for an exponentially
/// distributed dwell with mean `mean_dwell_sec`.
struct MmppState {
  double rate_iops = 0;
  double mean_dwell_sec = 1.0;
};

/// Poisson overlay of near-instantaneous request clusters.
struct BatchSpec {
  double batches_per_sec = 0;  ///< 0 disables the overlay
  double mean_size = 8;        ///< geometric mean cluster size
  Time spread_us = 2'000;      ///< cluster spread (uniform within)
  double giant_prob = 0.0;     ///< P(cluster size is scaled by giant_factor)
  double giant_factor = 4.0;
  std::int64_t max_size = 0;   ///< cap on cluster size; 0 = uncapped.  Keeps
                               ///< Cmin(100%) stable across seeds.
};

/// Full synthetic workload: MMPP base + batch overlay + address model.
struct WorkloadSpec {
  std::vector<MmppState> states;
  /// Row-stochastic state transition matrix; empty => uniform over the other
  /// states.  Size must be states.size()^2 when non-empty.
  std::vector<double> transition;
  BatchSpec batches;
  AddressSpec addresses;
};

/// Generate `duration` worth of the composite workload.  Deterministic in
/// (spec, duration, seed).
Trace generate_workload(const WorkloadSpec& spec, Time duration,
                        std::uint64_t seed);

/// Homogeneous Poisson arrivals at `rate_iops`.
Trace generate_poisson(double rate_iops, Time duration, std::uint64_t seed,
                       const AddressSpec& addr = {});

/// b-model self-similar arrivals: `mean_rate_iops * duration` requests placed
/// by a multiplicative cascade with bias `b` in [0.5, 1).  Larger b =>
/// burstier.  `levels` cascade levels (leaf width = duration / 2^levels).
Trace generate_bmodel(double mean_rate_iops, double b, int levels,
                      Time duration, std::uint64_t seed,
                      const AddressSpec& addr = {});

/// Pareto on/off source: ON periods Pareto(alpha_on, xm_on_sec) at
/// `on_rate_iops`, OFF periods exponential with mean `mean_off_sec`.
Trace generate_pareto_onoff(double on_rate_iops, double alpha_on,
                            double xm_on_sec, double mean_off_sec,
                            Time duration, std::uint64_t seed,
                            const AddressSpec& addr = {});

/// One traffic regime: Poisson base at `rate_iops` plus an optional batch
/// overlay, active from `begin` until the next phase starts (or the trace
/// ends).  Unlike MMPP dwells, phase boundaries are *scheduled*, which is
/// what lets chaos fault windows be placed deliberately around a shift.
struct RegimePhase {
  Time begin = 0;
  double rate_iops = 0;
  BatchSpec batches;
};

/// An ordered list of regime phases.  The first phase must begin at 0 so the
/// whole trace horizon is covered.
class RegimeSchedule {
 public:
  RegimeSchedule() = default;

  /// Takes phases in arbitrary order; sorts by begin.  Must validate().
  explicit RegimeSchedule(std::vector<RegimePhase> phases);

  /// Fluent builder, chainable: schedule.phase(0, 500).phase(10s, 2000, b).
  RegimeSchedule& phase(Time begin, double rate_iops, BatchSpec batches = {});

  /// Phase active at instant `t`, or nullptr when t precedes every phase.
  const RegimePhase* active_at(Time t) const;

  /// True when phases are sorted, start at 0, have strictly increasing
  /// begins, and non-negative rates.
  bool validate() const;

  bool empty() const { return phases_.empty(); }
  std::size_t size() const { return phases_.size(); }
  const std::vector<RegimePhase>& phases() const { return phases_; }

 private:
  std::vector<RegimePhase> phases_;  ///< sorted by begin, strictly increasing
};

/// Generate `duration` worth of regime-switching traffic.  Each phase draws
/// from its own seeded stream (derived from `seed` and the phase index), so a
/// phase's content depends only on its own spec and window — editing one
/// phase never reshuffles arrivals in another.  Deterministic in
/// (schedule, duration, seed, addr).
Trace generate_regime_switching(const RegimeSchedule& schedule, Time duration,
                                std::uint64_t seed,
                                const AddressSpec& addr = {});

}  // namespace qos
