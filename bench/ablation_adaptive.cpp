// Ablation: online re-profiling vs static provisioning.
//
// The paper plans capacity from an offline profile.  This bench feeds a
// drifting workload (quiet hour -> busy hour) through the online estimator
// and compares three provisioning policies on (i) capacity-hours reserved
// and (ii) fraction of requests whose deadline the reservation covers:
//   static-offline : one Cmin from the full trace (the paper's method),
//   static-quiet   : Cmin profiled on the quiet prefix only (stale profile),
//   adaptive       : OnlineCapacityEstimator re-profiled every 5 s.
// The adaptive policy approaches the offline oracle without ever seeing the
// future, and dominates the stale profile.
//
// Execution engine: this bench is not a shaping sweep — the adaptive
// trajectory is a stateful sequential replay, so SweepRunner does not apply.
// It still rides the runner for the two independent offline Cmin searches
// (ThreadPool + min_capacity_cached) and the shared BENCH json/flags.
#include <cstdio>

#include "core/adaptive.h"
#include "core/capacity.h"
#include "core/rtt.h"
#include "runner/bench_io.h"
#include "runner/parallel_capacity.h"
#include "runner/thread_pool.h"
#include "trace/generator.h"
#include "util/table.h"

namespace {

using namespace qos;

// Piecewise workload: 600 s quiet at ~150 IOPS, 600 s busy at ~700 IOPS.
Trace drifting_trace() {
  WorkloadSpec quiet;
  quiet.states = {{150, 5.0}};
  WorkloadSpec busy;
  busy.states = {{650, 5.0}, {950, 1.0}};
  Trace a = generate_workload(quiet, 600 * kUsPerSec, 901);
  Trace b = generate_workload(busy, 600 * kUsPerSec, 903);
  const Trace parts[] = {a, b.shifted(600 * kUsPerSec)};
  return Trace::merge(parts);
}

struct PolicyOutcome {
  double capacity_hours = 0;   ///< integral of reserved IOPS over time (/3600)
  double covered_fraction = 0; ///< fraction admitted by RTT at the reserved C
};

// Evaluate a (possibly time-varying) reservation by replaying RTT admission
// against the instantaneous reserved capacity.
template <typename CapacityAt>
PolicyOutcome evaluate(const Trace& trace, Time delta, CapacityAt at) {
  PolicyOutcome out;
  // Capacity integral sampled per second.
  const Time end = trace.end_time();
  for (Time t = 0; t < end; t += kUsPerSec)
    out.capacity_hours += at(t) / 3600.0;

  // RTT admission with time-varying maxQ1 (conservative per-arrival bound).
  std::vector<Time> finish;
  std::size_t completed = 0;
  Time last_finish = 0;
  std::int64_t admitted = 0;
  for (const auto& r : trace) {
    const double c = at(r.arrival);
    if (c <= 0) continue;
    const std::int64_t max_q1 = max_q1_slots(c, delta);
    while (completed < finish.size() && finish[completed] <= r.arrival)
      ++completed;
    const auto len = static_cast<std::int64_t>(finish.size() - completed);
    if (len < max_q1) {
      const Time start = std::max(r.arrival, last_finish);
      last_finish = start + static_cast<Time>(1e6 / c);
      finish.push_back(last_finish);
      ++admitted;
    }
  }
  out.covered_fraction =
      static_cast<double>(admitted) / static_cast<double>(trace.size());
  return out;
}

void run(const BenchOptions& options) {
  const double t0 = bench_now_seconds();
  const Time delta = from_ms(10);
  const double fraction = 0.95;
  const Trace trace = drifting_trace();
  std::printf("drifting workload: %zu requests, mean %.0f IOPS "
              "(quiet 150 -> busy ~700)\n\n",
              trace.size(), trace.mean_rate_iops());

  // The offline and quiet-prefix profiles are independent searches — the
  // only fan-out this bench has.
  ThreadPool pool(options.threads);
  auto cache = options.make_cache();
  const Trace quiet_prefix = trace.slice(0, 600 * kUsPerSec);
  const Trace* search_traces[] = {&trace, &quiet_prefix};
  const std::vector<double> cmins = pool.parallel_map(2, [&](std::size_t i) {
    ProfileScope scope(options.profile.get(), "adaptive.capacity_search");
    const Digest digest = cache ? hash_trace(*search_traces[i]) : Digest{};
    return min_capacity_cached(*search_traces[i], fraction, delta,
                               cache.get(), cache ? &digest : nullptr)
        .cmin_iops;
  });
  const double offline = cmins[0];
  const double quiet_only = cmins[1];

  // Adaptive reservation: capacity trajectory sampled as the estimator runs.
  AdaptiveConfig config;
  config.fraction = fraction;
  config.delta = delta;
  config.window = 30 * kUsPerSec;
  config.reprofile_interval = 5 * kUsPerSec;
  OnlineCapacityEstimator estimator(config);
  std::vector<double> trajectory;  // per second
  trajectory.reserve(1201);
  std::size_t next = 0;
  for (Time t = 0; t <= trace.end_time(); t += kUsPerSec) {
    while (next < trace.size() && trace[next].arrival <= t)
      (void)estimator.observe(trace[next++].arrival);
    trajectory.push_back(estimator.capacity_iops());
  }
  auto adaptive_at = [&](Time t) {
    const auto idx = static_cast<std::size_t>(t / kUsPerSec);
    const double c =
        trajectory[std::min(idx, trajectory.size() - 1)];
    // Provision the estimate plus the paper's overflow headroom.
    return c + overflow_headroom_iops(from_ms(10));
  };

  AsciiTable table;
  table.add("policy", "capacity-hours", "fraction covered");
  auto report = [&](const char* name, PolicyOutcome o) {
    table.add(name, format_double(o.capacity_hours, 1),
              format_double(100 * o.covered_fraction, 2) + "%");
  };
  report("static-offline (oracle)",
         evaluate(trace, delta, [&](Time) { return offline; }));
  report("static-quiet (stale)",
         evaluate(trace, delta, [&](Time) { return quiet_only; }));
  report("adaptive (5 s reprofile)", evaluate(trace, delta, adaptive_at));
  std::printf("%s", table.to_string().c_str());

  BenchTiming timing;
  timing.name = options.bench_name;
  timing.wall_seconds = bench_now_seconds() - t0;
  timing.cells = 2;  // the two offline searches; the replay is sequential
  timing.cache_hits = cache ? cache->stats().hits : 0;
  timing.rows = 3;
  timing.threads = pool.thread_count();
  write_bench_json(options, timing);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: adaptive vs static capacity provisioning\n\n");
  run(parse_bench_args(argc, argv, "ablation_adaptive"));
  return 0;
}
