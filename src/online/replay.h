// replay_trace — drive an online::Shaper from a materialized trace under a
// VirtualClock, reconstructing exactly the run shape_and_run would produce.
//
// This is the proof obligation that keeps the online path honest: the
// Shaper exposes the same scheduler machinery imperatively, and this
// harness shows the exposure is lossless.  It mirrors simulate()'s event
// loop — completions before arrivals at equal instants, a dispatch fill
// after every event time — but only through the Shaper's public API
// (admit / poll_dispatch / on_completion), with server models supplying
// service durations the way simulate() asks them.  The differential tests
// (tests/test_online_shaper.cpp) assert per policy that the admission
// decisions, the completion records and the emitted event stream are
// bit-identical to shape_and_run's.
//
// Servers are built exactly as shape_and_run builds them — ConstantRate at
// Cmin + dC (Split: Cmin primary + dC overflow), each passed through
// `shaping.server_decorator` — so the fault layer composes here too.
#pragma once

#include <vector>

#include "online/shaper.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace qos::online {

struct ReplayOutcome {
  /// One decision per trace request, in arrival order.
  std::vector<Decision> decisions;
  /// Completion records in finish order — the same shape (and, for a
  /// faithful replay, the same bytes) as shape_and_run's SimResult.
  SimResult sim;
};

/// Replay `trace` through a fresh Shaper built from `options`.
/// options.max_q2_depth must be 0 (shedding changes the stream the
/// scheduler sees; the replay contract is the unbounded one).
ReplayOutcome replay_trace(const Trace& trace, const ShaperOptions& options);

}  // namespace qos::online
