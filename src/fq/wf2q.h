// WF2Q+ — Worst-case Fair Weighted Fair Queueing (plus).
//
// Items carry start/finish tags as in SFQ, but dispatch is restricted to
// *eligible* items (start tag <= system virtual time V) and picks the
// smallest finish tag among them — giving worst-case fairness within one
// service quantum of the fluid GPS reference.  V advances by the dispatched
// cost / total weight and jumps up to the minimum backlogged start tag so it
// can never stall behind an idle system (the "+" of WF2Q+).
//
// Hot path: the classic two-heap eligible-set structure.  Backlogged flows
// whose head is eligible (start <= V) sit in a min-heap keyed by (head
// finish tag, flow index); the rest sit in a min-heap keyed by (head start
// tag, flow index).  Each dequeue advances V off the ineligible heap's top
// when no flow is eligible, migrates newly eligible heads across, and pops
// the smallest finish tag — O(log flows) amortized, with the lowest-index
// tie-break reproducing the original scan order exactly (differential-
// tested against fq/scan_reference.h).
#pragma once

#include <vector>

#include "fq/fair_scheduler.h"
#include "util/check.h"
#include "util/indexed_heap.h"
#include "util/ring_buffer.h"

namespace qos {

class Wf2qPlusScheduler final : public FairScheduler {
 public:
  explicit Wf2qPlusScheduler(std::vector<double> weights);

  int flow_count() const override {
    return static_cast<int>(flows_.size());
  }
  void enqueue(int flow, std::uint64_t handle, double cost, Time now) override;
  std::optional<FqDispatch> dequeue(Time now) override;
  bool empty() const override;
  std::size_t backlog(int flow) const override;

  double virtual_time() const { return v_; }

 private:
  struct Item {
    std::uint64_t handle = 0;
    double cost = 1;
    double start = 0;
    double finish = 0;
  };
  struct Flow {
    double weight = 1;
    double last_finish = 0;
    RingBuffer<Item> queue;
  };

  /// File the backlogged flow under the heap its head belongs to.  Flow
  /// heads are immutable between reclassification points (enqueue-to-empty
  /// and post-dispatch), so heap keys can never go stale.
  void classify(int flow, const Item& head);

  std::vector<Flow> flows_;
  IndexedMinHeap<double> eligible_;    ///< head start <= V, by head finish
  IndexedMinHeap<double> ineligible_;  ///< head start  > V, by head start
  double v_ = 0;
  double total_weight_ = 0;
};

}  // namespace qos
