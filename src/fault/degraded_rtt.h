// DegradedRtt — RTT admission that survives a server not delivering C.
//
// Plain RttAdmission admits into Q1 while occupancy < maxQ1 = C·δ, which
// keeps the guarantee exactly as long as the server really drains a slot
// every 1/C.  During a brownout the slots stretch, the bound is too loose,
// and every admitted request misses — for as long as the fault lasts.
//
// DegradedRtt wraps RttAdmission with a CapacityMonitor: before each
// admission decision it re-tightens maxQ1 to Ĉ_q1·δ where Ĉ_q1 is the
// monitored delivered capacity scaled back to the admission share
// (Cmin / (Cmin + headroom) of the total server rate).  Overload then
// demotes arrivals to Q2 — a softer guarantee, kept honestly — instead of
// piling up Q1 misses.  The monitor's asymmetric EWMA gives hysteresis:
// fast tighten on a capacity drop, slow relax on recovery.
//
// With `enabled = false` the wrapper degenerates to plain static RTT — the
// baseline the chaos harness compares against.
#pragma once

#include "core/rtt.h"
#include "fault/capacity_monitor.h"

namespace qos {

struct DegradedRttConfig {
  CapacityMonitorConfig monitor;
  /// Health deadband: estimates above 1 - tolerance are treated as fully
  /// healthy.  Service durations are integer microseconds, so the windowed
  /// estimate jitters ~0.1% around the reference; without the deadband that
  /// noise can shave a slot off maxQ1 at the floor() boundary.
  double tolerance = 0.02;
  bool enabled = true;  ///< false: behave exactly like static RttAdmission
};

class DegradedRtt {
 public:
  /// `admission_iops` is Cmin (what maxQ1 is provisioned from);
  /// `server_iops` is the total rate of the backing server (Cmin + dC),
  /// i.e. what the monitor observes when the server is healthy.
  DegradedRtt(double admission_iops, Time delta, double server_iops,
              DegradedRttConfig config = {})
      : admission_(admission_iops, delta),
        monitor_(server_iops, config.monitor),
        delta_(delta),
        admission_iops_(admission_iops),
        nominal_max_q1_(admission_.max_q1()),
        tolerance_(config.tolerance),
        enabled_(config.enabled) {
    QOS_EXPECTS(server_iops >= admission_iops);
    QOS_EXPECTS(config.tolerance >= 0 && config.tolerance < 1);
  }

  /// Feed one completed service (server occupancy [start, finish)).
  void on_service(Time start, Time finish) {
    QOS_EXPECTS(finish > start);
    if (enabled_) monitor_.on_service(finish, finish - start);
  }

  /// Admission bound from the current capacity estimate:
  /// floor(health · Cmin · δ), never above the nominal bound.
  std::int64_t max_q1() {
    if (!enabled_) return nominal_max_q1_;
    const double health = monitor_.health();
    const std::int64_t tightened =
        health >= 1.0 - tolerance_
            ? nominal_max_q1_
            : max_q1_slots(health * admission_iops_, delta_);
    admission_.set_max_q1(tightened < nominal_max_q1_ ? tightened
                                                      : nominal_max_q1_);
    return admission_.max_q1();
  }

  /// True iff a request arriving with `len_q1` pending primaries may join
  /// Q1 under the *current* (possibly tightened) bound.
  bool admit(std::int64_t len_q1) {
    max_q1();  // refresh the wrapped bound from the monitor
    return admission_.admit(len_q1);
  }

  /// True when the request would have been admitted at nominal capacity —
  /// i.e. rejecting it now is a *demotion* caused by degradation, not a
  /// plain RTT overflow.
  bool is_demotion(std::int64_t len_q1) const {
    return len_q1 < nominal_max_q1_;
  }

  std::int64_t nominal_max_q1() const { return nominal_max_q1_; }
  double capacity_estimate_iops() const { return monitor_.estimate_iops(); }
  double health() const { return monitor_.health(); }
  bool enabled() const { return enabled_; }
  const CapacityMonitor& monitor() const { return monitor_; }

 private:
  // max_q1_slots requires capacity > 0; clamp the degenerate all-stalled
  // estimate to "admit nothing" without tripping the precondition.
  static std::int64_t max_q1_slots(double capacity_iops, Time delta) {
    return capacity_iops <= 0 ? 0 : qos::max_q1_slots(capacity_iops, delta);
  }

  RttAdmission admission_;
  CapacityMonitor monitor_;
  Time delta_;
  double admission_iops_;
  std::int64_t nominal_max_q1_;
  double tolerance_;
  bool enabled_;
};

}  // namespace qos
