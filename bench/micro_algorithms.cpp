// Hot-path microbenchmark harness: heap backends vs their frozen scan
// references, plus event-simulator throughput.  Emits BENCH_micro.json.
//
// This is the perf baseline for the event-core overhaul, self-timed with no
// benchmark-library dependency so CI can run it anywhere:
//
//   * For each FQ backend (SFQ / WFQ / WF2Q+ / pClock) at 1, 16 and 256
//     flows, steady-state enqueue+dequeue pairs per second through the
//     production heap implementation and through the O(flows) linear-scan
//     reference (fq/scan_reference.h) it replaced, plus the speedup ratio.
//   * Sparse-activation cells at 4096, 65536 and 1048576 configured flows:
//     4096 concurrently backlogged flows marching across the id space on a
//     multiplicative stride, so flows constantly drain idle and reactivate.
//     The production flat-table backends run against the frozen dense-
//     vector layout (fq/dense_reference.h) they replaced — the scan
//     reference is O(flows) per op and unusable at this scale — with
//     footprints reported alongside (`ref: "dense"` cells).
//   * Simulator events per second (one arrival + one completion = two
//     events) for single-server FCFS and two-server Split runs.
//
// The run aborts if the lazy-allocation contract breaks: an idle
// IndexedMinHeap reset to 10^6 ids must hold zero bytes, and at the
// million-flow cell every flat backend must undercut its dense
// counterpart's footprint.
//
// Each measurement repeats --repeats times and keeps the best run (least
// interference).  scripts/check_perf.py compares a fresh BENCH_micro.json
// against the committed bench/BENCH_micro.baseline.json and fails on >25%
// throughput regressions; see README "Perf baseline".
//
// usage: micro_algorithms [--json PATH] [--ops N] [--repeats R]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/fcfs.h"
#include "core/split.h"
#include "fq/dense_reference.h"
#include "fq/pclock.h"
#include "fq/scan_reference.h"
#include "fq/sfq.h"
#include "fq/wf2q.h"
#include "fq/wfq.h"
#include "sim/simulator.h"
#include "trace/generator.h"
#include "util/indexed_heap.h"

namespace {

using namespace qos;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Defeats dead-code elimination of the measured loops; never read except to
// keep the optimizer honest.
volatile std::uint64_t g_sink = 0;

struct MicroOptions {
  std::string json_path = "BENCH_micro.json";
  std::uint64_t ops = 200'000;
  int repeats = 5;
};

[[noreturn]] void usage_abort() {
  std::fprintf(stderr,
               "usage: micro_algorithms [--json PATH] [--ops N] "
               "[--repeats R]\n");
  std::exit(2);
}

MicroOptions parse_args(int argc, char** argv) {
  MicroOptions o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_abort();
      return argv[++i];
    };
    if (std::strcmp(a, "--json") == 0) {
      o.json_path = value();
    } else if (std::strcmp(a, "--ops") == 0) {
      o.ops = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(a, "--repeats") == 0) {
      o.repeats = std::atoi(value());
    } else {
      usage_abort();
    }
  }
  if (o.ops == 0 || o.repeats <= 0) usage_abort();
  return o;
}

// Steady-state throughput of one scheduler instance: keep every flow
// backlogged, then alternate enqueue/dequeue so the tag structures stay at
// constant size while being exercised on both sides.  Unit costs make head
// tags collide constantly — the worst case for tie-breaking, and the common
// case for the two-class storage model.
template <typename Sched>
double fq_pairs_per_sec(Sched& s, int flows, std::uint64_t ops) {
  std::uint64_t handle = 0;
  Time now = 0;
  for (int b = 0; b < 4; ++b)
    for (int f = 0; f < flows; ++f) s.enqueue(f, handle++, 1.0, now);
  std::uint64_t sink = 0;
  const double t0 = now_seconds();
  for (std::uint64_t i = 0; i < ops; ++i) {
    now += 3;
    s.enqueue(static_cast<int>(i % static_cast<std::uint64_t>(flows)),
              handle++, 1.0, now);
    sink += s.dequeue(now)->handle;
  }
  const double elapsed = now_seconds() - t0;
  while (s.dequeue(now)) {
  }
  g_sink = g_sink ^ sink;
  return static_cast<double>(ops) / elapsed;
}

template <typename MakeSched>
double best_fq_rate(MakeSched make, int flows, const MicroOptions& o) {
  double best = 0;
  for (int r = 0; r < o.repeats; ++r) {
    auto s = make(flows);
    best = std::max(best, fq_pairs_per_sec(s, flows, o.ops));
  }
  return best;
}

std::vector<PClockSla> uniform_slas(int flows) {
  return std::vector<PClockSla>(static_cast<std::size_t>(flows), PClockSla{});
}

struct FqCell {
  double heap_ops_per_sec = 0;
  double scan_ops_per_sec = 0;
  double speedup() const { return heap_ops_per_sec / scan_ops_per_sec; }
};

struct FqRow {
  const char* name;
  FqCell cells[3];  ///< at kFlowCounts
};

constexpr int kFlowCounts[3] = {1, 16, 256};

// ---------------------------------------------------------------------------
// Sparse activation at scale: kBacklogged flows live at once, each op
// retires one flow to idle and activates another, cycling the whole id
// space (odd stride, power-of-two cell counts => full period).  This is the
// million-user regime from ROADMAP item 1: per-flow state must cost
// O(flows seen), and the head-tag structures O(backlogged).

constexpr int kSparseCells[3] = {4'096, 65'536, 1'048'576};
constexpr std::uint64_t kBacklogged = 4'096;
constexpr std::uint64_t kSparseStride = 2'654'435'761u;

struct SparseCell {
  double prod_ops_per_sec = 0;
  double ref_ops_per_sec = 0;
  std::size_t prod_mem_bytes = 0;
  std::size_t ref_mem_bytes = 0;
  double speedup() const { return prod_ops_per_sec / ref_ops_per_sec; }
};

struct SparseRow {
  const char* name;
  SparseCell cells[3];  ///< at kSparseCells
};

// One enqueue + one dequeue per op with a steady backlog of kBacklogged
// flows scattered over `cells` ids.  Returns pairs/sec; *mem_bytes gets the
// scheduler's post-run footprint.
template <typename Sched>
double fq_sparse_pairs_per_sec(Sched& s, int cells, std::uint64_t ops,
                               std::size_t* mem_bytes) {
  auto flow_at = [cells](std::uint64_t i) {
    return static_cast<int>((i * kSparseStride) %
                            static_cast<std::uint64_t>(cells));
  };
  std::uint64_t handle = 0;
  Time now = 0;
  // Spread the warmup arrivals in time like the measured loop does:
  // enqueueing the whole backlog at now=0 would give every pClock item an
  // identical deadline, an initial state no arrival process produces.
  for (std::uint64_t i = 0; i < kBacklogged; ++i) {
    now += 3;
    s.enqueue(flow_at(i), handle++, 1.0, now);
  }
  std::uint64_t sink = 0;
  const double t0 = now_seconds();
  for (std::uint64_t i = 0; i < ops; ++i) {
    now += 3;
    s.enqueue(flow_at(kBacklogged + i), handle++, 1.0, now);
    sink += s.dequeue(now)->handle;
  }
  const double elapsed = now_seconds() - t0;
  *mem_bytes = s.approx_memory_bytes();
  while (s.dequeue(now)) {
  }
  g_sink = g_sink ^ sink;
  return static_cast<double>(ops) / elapsed;
}

template <typename MakeSched>
double best_sparse_rate(MakeSched make, int cells, const MicroOptions& o,
                        std::size_t* mem_bytes) {
  // The million-cell dense reference pays tens of MB of (untimed)
  // construction per repeat; halve the repeats there to keep CI fast.
  const int repeats = cells >= 1'000'000 ? std::max(1, o.repeats / 2)
                                         : o.repeats;
  double best = 0;
  for (int r = 0; r < repeats; ++r) {
    auto s = make(cells);
    best = std::max(best, fq_sparse_pairs_per_sec(s, cells, o.ops, mem_bytes));
  }
  return best;
}

const Trace& sim_trace() {
  static const Trace trace = [] {
    WorkloadSpec spec;
    spec.states = {{400, 1.0}, {1200, 0.4}};
    spec.batches = {.batches_per_sec = 0.2,
                    .mean_size = 10,
                    .spread_us = 2'000,
                    .giant_prob = 0.05,
                    .giant_factor = 3};
    return generate_workload(spec, 30 * kUsPerSec, 4242);
  }();
  return trace;
}

// Events per second through the full simulator loop (arrival + completion
// per request).
template <typename RunOnce>
double best_sim_events_per_sec(const MicroOptions& o, RunOnce run) {
  const double events = 2.0 * static_cast<double>(sim_trace().size());
  double best = 0;
  for (int r = 0; r < o.repeats; ++r) {
    const double t0 = now_seconds();
    run();
    best = std::max(best, events / (now_seconds() - t0));
  }
  return best;
}

void json_fq_cell(std::FILE* f, int flows, const FqCell& c, bool last) {
  std::fprintf(f,
               "    \"flows_%d\": {\"heap_ops_per_sec\": %.0f, "
               "\"scan_ops_per_sec\": %.0f, \"speedup\": %.2f}%s\n",
               flows, c.heap_ops_per_sec, c.scan_ops_per_sec, c.speedup(),
               last ? "" : ",");
}

void json_sparse_cell(std::FILE* f, int flows, const SparseCell& c,
                      bool last) {
  std::fprintf(f,
               "    \"flows_%d\": {\"prod_ops_per_sec\": %.0f, "
               "\"ref_ops_per_sec\": %.0f, \"ref\": \"dense\", "
               "\"prod_mem_bytes\": %zu, \"ref_mem_bytes\": %zu, "
               "\"speedup\": %.2f}%s\n",
               flows, c.prod_ops_per_sec, c.ref_ops_per_sec, c.prod_mem_bytes,
               c.ref_mem_bytes, c.speedup(), last ? "" : ",");
}

// Hard contracts checked in-process: a violated footprint bound means the
// flat/lazy layouts regressed in a way throughput gating could miss.
bool check_memory_contracts(const SparseRow (&rows)[4]) {
  IndexedMinHeap<double> probe;
  probe.reset(kSparseCells[2]);
  if (probe.memory_bytes() != 0) {
    std::fprintf(stderr,
                 "micro_algorithms: lazy-heap contract broken — "
                 "reset(%d) allocated %zu bytes (expected 0)\n",
                 kSparseCells[2], probe.memory_bytes());
    return false;
  }
  for (const SparseRow& row : rows) {
    const SparseCell& c = row.cells[2];  // the million-flow cell
    if (c.prod_mem_bytes >= c.ref_mem_bytes) {
      std::fprintf(stderr,
                   "micro_algorithms: %s flat footprint %zu B >= dense "
                   "footprint %zu B at %d flows\n",
                   row.name, c.prod_mem_bytes, c.ref_mem_bytes,
                   kSparseCells[2]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const MicroOptions options = parse_args(argc, argv);

  FqRow rows[4] = {{"sfq", {}}, {"wfq", {}}, {"wf2q", {}}, {"pclock", {}}};
  for (int fi = 0; fi < 3; ++fi) {
    const int flows = kFlowCounts[fi];
    const std::vector<double> weights(static_cast<std::size_t>(flows), 1.0);
    rows[0].cells[fi].heap_ops_per_sec = best_fq_rate(
        [&](int) { return SfqScheduler(weights); }, flows, options);
    rows[0].cells[fi].scan_ops_per_sec = best_fq_rate(
        [&](int) { return scanref::ScanSfqScheduler(weights); }, flows,
        options);
    rows[1].cells[fi].heap_ops_per_sec = best_fq_rate(
        [&](int) { return WfqScheduler(weights); }, flows, options);
    rows[1].cells[fi].scan_ops_per_sec = best_fq_rate(
        [&](int) { return scanref::ScanWfqScheduler(weights); }, flows,
        options);
    rows[2].cells[fi].heap_ops_per_sec = best_fq_rate(
        [&](int) { return Wf2qPlusScheduler(weights); }, flows, options);
    rows[2].cells[fi].scan_ops_per_sec = best_fq_rate(
        [&](int) { return scanref::ScanWf2qPlusScheduler(weights); }, flows,
        options);
    rows[3].cells[fi].heap_ops_per_sec = best_fq_rate(
        [&](int f) { return PClockScheduler(uniform_slas(f)); }, flows,
        options);
    rows[3].cells[fi].scan_ops_per_sec = best_fq_rate(
        [&](int f) { return scanref::ScanPClockScheduler(uniform_slas(f)); },
        flows, options);
  }

  SparseRow sparse[4] = {
      {"sfq", {}}, {"wfq", {}}, {"wf2q", {}}, {"pclock", {}}};
  for (int ci = 0; ci < 3; ++ci) {
    const int cells = kSparseCells[ci];
    sparse[0].cells[ci].prod_ops_per_sec = best_sparse_rate(
        [](int n) { return SfqScheduler::uniform(n, 1.0); }, cells, options,
        &sparse[0].cells[ci].prod_mem_bytes);
    sparse[0].cells[ci].ref_ops_per_sec = best_sparse_rate(
        [](int n) {
          return denseref::DenseSfqScheduler(
              std::vector<double>(static_cast<std::size_t>(n), 1.0));
        },
        cells, options, &sparse[0].cells[ci].ref_mem_bytes);
    sparse[1].cells[ci].prod_ops_per_sec = best_sparse_rate(
        [](int n) { return WfqScheduler::uniform(n, 1.0); }, cells, options,
        &sparse[1].cells[ci].prod_mem_bytes);
    sparse[1].cells[ci].ref_ops_per_sec = best_sparse_rate(
        [](int n) {
          return denseref::DenseWfqScheduler(
              std::vector<double>(static_cast<std::size_t>(n), 1.0));
        },
        cells, options, &sparse[1].cells[ci].ref_mem_bytes);
    sparse[2].cells[ci].prod_ops_per_sec = best_sparse_rate(
        [](int n) { return Wf2qPlusScheduler::uniform(n, 1.0); }, cells,
        options, &sparse[2].cells[ci].prod_mem_bytes);
    sparse[2].cells[ci].ref_ops_per_sec = best_sparse_rate(
        [](int n) {
          return denseref::DenseWf2qPlusScheduler(
              std::vector<double>(static_cast<std::size_t>(n), 1.0));
        },
        cells, options, &sparse[2].cells[ci].ref_mem_bytes);
    // kAuto picks the timer wheel at every sparse cell count (all >= the
    // 4096 threshold) — the shipped selection, not a pinned override.
    sparse[3].cells[ci].prod_ops_per_sec = best_sparse_rate(
        [](int n) { return PClockScheduler::uniform(n, PClockSla{}); }, cells,
        options, &sparse[3].cells[ci].prod_mem_bytes);
    sparse[3].cells[ci].ref_ops_per_sec = best_sparse_rate(
        [](int n) { return denseref::DensePClockScheduler(uniform_slas(n)); },
        cells, options, &sparse[3].cells[ci].ref_mem_bytes);
  }

  const double fcfs_events = best_sim_events_per_sec(options, [] {
    FcfsScheduler fcfs;
    ConstantRateServer server(600);
    g_sink = g_sink ^ simulate(sim_trace(), fcfs, server).completions.size();
  });
  const double split_events = best_sim_events_per_sec(options, [] {
    SplitScheduler split(500, 10'000);
    ConstantRateServer primary(500), overflow(100);
    Server* servers[] = {&primary, &overflow};
    g_sink =
        g_sink ^ simulate(sim_trace(), split, servers).completions.size();
  });

  // Human-readable table on stdout.
  std::printf("%-8s %8s %14s %14s %8s\n", "backend", "flows", "heap ops/s",
              "scan ops/s", "speedup");
  for (const FqRow& row : rows) {
    for (int fi = 0; fi < 3; ++fi) {
      const FqCell& c = row.cells[fi];
      std::printf("%-8s %8d %14.0f %14.0f %7.2fx\n", row.name, kFlowCounts[fi],
                  c.heap_ops_per_sec, c.scan_ops_per_sec, c.speedup());
    }
  }
  std::printf("\n%-8s %8s %14s %14s %8s %10s %10s\n", "backend", "flows",
              "flat ops/s", "dense ops/s", "speedup", "flat MB", "dense MB");
  for (const SparseRow& row : sparse) {
    for (int ci = 0; ci < 3; ++ci) {
      const SparseCell& c = row.cells[ci];
      std::printf("%-8s %8d %14.0f %14.0f %7.2fx %10.1f %10.1f\n", row.name,
                  kSparseCells[ci], c.prod_ops_per_sec, c.ref_ops_per_sec,
                  c.speedup(),
                  static_cast<double>(c.prod_mem_bytes) / (1024.0 * 1024.0),
                  static_cast<double>(c.ref_mem_bytes) / (1024.0 * 1024.0));
    }
  }
  std::printf("simulator fcfs  %14.0f events/s\n", fcfs_events);
  std::printf("simulator split %14.0f events/s\n", split_events);

  if (!check_memory_contracts(sparse)) return 1;

  std::FILE* f = std::fopen(options.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_algorithms: cannot write %s\n",
                 options.json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"name\": \"micro\",\n");
  std::fprintf(f, "  \"ops\": %llu,\n",
               static_cast<unsigned long long>(options.ops));
  std::fprintf(f, "  \"repeats\": %d,\n", options.repeats);
  std::fprintf(f, "  \"schedulers\": {\n");
  for (std::size_t r = 0; r < 4; ++r) {
    std::fprintf(f, "  \"%s\": {\n", rows[r].name);
    for (int fi = 0; fi < 3; ++fi)
      json_fq_cell(f, kFlowCounts[fi], rows[r].cells[fi], false);
    for (int ci = 0; ci < 3; ++ci)
      json_sparse_cell(f, kSparseCells[ci], sparse[r].cells[ci], ci == 2);
    std::fprintf(f, "  }%s\n", r == 3 ? "" : ",");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"simulator\": {\"fcfs_events_per_sec\": %.0f, "
               "\"split_events_per_sec\": %.0f}\n",
               fcfs_events, split_events);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "micro_algorithms: wrote %s\n",
               options.json_path.c_str());
  return 0;
}
