// Reproduces Figure 7: capacity required when multiplexing two copies of the
// *same* workload (WS+WS, FT+FT, OM+OM), delta = 10 ms.
//
//   (a) traditional 100% provisioning: estimate (2x individual Cmin) vs the
//       capacity actually needed when one copy is shifted by 1 s / 100 s —
//       the estimate over-provisions badly;
//   (b,c) after 90% / 95% decomposition the estimate is accurate.
//
// Execution engine: the figure is 27 independent Cmin searches (3 panels x
// 3 workloads x {individual, shift-1s, shift-100s}).  The 9 traces are
// materialized once, then every search fans out flat over the thread pool
// and lands in its slot, so the printed panels are identical at any
// --threads value.
#include <cstdio>

#include "core/capacity.h"
#include "runner/bench_io.h"
#include "runner/parallel_capacity.h"
#include "runner/thread_pool.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

constexpr Workload kWorkloads[] = {Workload::kWebSearch, Workload::kFinTrans,
                                   Workload::kOpenMail};
constexpr double kFractions[] = {1.0, 0.90, 0.95};
constexpr Time kShifts[] = {1 * kUsPerSec, 100 * kUsPerSec};

void run(const BenchOptions& options) {
  const double t0 = bench_now_seconds();
  std::printf("Figure 7: capacity for multiplexing identical workloads\n\n");
  const Time delta = from_ms(10);

  ThreadPool pool(options.threads);
  auto cache = options.make_cache();

  // Trace variants per workload: [0] the workload itself, [1] merged with a
  // 1 s-shifted copy, [2] merged with a 100 s-shifted copy.  Paper: "one
  // workload is shifted in time by 1 or 100 seconds, then merged with the
  // other" — the copy keeps its shape, delayed by the shift.
  constexpr std::size_t kVariants = 1 + std::size(kShifts);
  ProfileCollector* profile = options.profile.get();
  const std::vector<Trace> traces = pool.parallel_map(
      std::size(kWorkloads) * kVariants, [&](std::size_t i) {
        ProfileScope scope(profile, "fig7.trace_gen");
        const Trace base = preset_trace(kWorkloads[i / kVariants]);
        const std::size_t variant = i % kVariants;
        if (variant == 0) return base;
        const Trace clients[] = {base, base.shifted(kShifts[variant - 1])};
        return Trace::merge(clients);
      });
  std::vector<Digest> digests(traces.size());
  if (cache)
    pool.parallel_for(traces.size(),
                      [&](std::size_t i) { digests[i] = hash_trace(traces[i]); });

  // All 27 searches, flat: index = (panel, workload, variant).
  struct Task {
    double fraction = 0;
    std::size_t trace_index = 0;
  };
  std::vector<Task> tasks;
  for (double fraction : kFractions)
    for (std::size_t w = 0; w < std::size(kWorkloads); ++w)
      for (std::size_t v = 0; v < kVariants; ++v)
        tasks.push_back({fraction, w * kVariants + v});
  const std::vector<double> cmins =
      pool.parallel_map(tasks.size(), [&](std::size_t i) {
        ProfileScope scope(profile, "fig7.capacity_search");
        const Task& task = tasks[i];
        const Digest* digest = cache ? &digests[task.trace_index] : nullptr;
        return min_capacity_cached(traces[task.trace_index], task.fraction,
                                   delta, cache.get(), digest)
            .cmin_iops;
      });

  std::size_t next = 0;
  for (double fraction : kFractions) {
    if (fraction == 1.0)
      std::printf("-- (a) traditional 100%% combine --\n");
    else
      std::printf("-- %.0f%% decomposition combine --\n", 100 * fraction);
    AsciiTable table;
    table.add("Workloads", "Estimate", "Shift-1s", "ratio", "Shift-100s",
              "ratio");
    for (Workload w : kWorkloads) {
      const double estimate = 2 * cmins[next++];
      const double shift1 = cmins[next++];
      const double shift100 = cmins[next++];
      const std::string name =
          workload_name(w) + " + " + workload_name(w);
      table.add(name, format_double(estimate, 0), format_double(shift1, 0),
                format_double(shift1 / estimate, 2),
                format_double(shift100, 0),
                format_double(shift100 / estimate, 2));
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  BenchTiming timing;
  timing.name = options.bench_name;
  timing.wall_seconds = bench_now_seconds() - t0;
  timing.cells = tasks.size();
  timing.cache_hits = cache ? cache->stats().hits : 0;
  timing.rows = std::size(kFractions) * std::size(kWorkloads);
  timing.threads = pool.thread_count();
  write_bench_json(options, timing);
}

}  // namespace

int main(int argc, char** argv) {
  run(parse_bench_args(argc, argv, "fig7_same_multiplex"));
  return 0;
}
