// Reproduces Figure 4: response-time CDF of FCFS scheduling at the capacity
// for which RTT would guarantee 90% of the workload, for targets
// (90%, 10 ms), (90%, 20 ms), (90%, 50 ms).
//
// The paper's point: without decomposition, far fewer than 90% of requests
// meet the bound, and compliance is reached only at much larger response
// times; looser targets (=> lower capacity) make FCFS *worse*.
#include <cstdio>

#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "core/fcfs.h"
#include "sim/simulator.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

void run_panel(Time delta) {
  std::printf("-- Target: (90%%, %.0f ms) --\n", to_ms(delta));
  AsciiTable table;
  table.add("Workload", "C (IOPS)", "within target", "resp@90% (ms)",
            "resp@99% (ms)");
  for (Workload w : {Workload::kWebSearch, Workload::kFinTrans,
                     Workload::kOpenMail}) {
    const Trace trace = preset_trace(w);
    const double cmin = min_capacity(trace, 0.90, delta).cmin_iops;
    FcfsScheduler fcfs;
    ConstantRateServer server(cmin);
    SimResult sim = simulate(trace, fcfs, server);
    ResponseStats stats(sim.completions);
    table.add(workload_name(w), format_double(cmin, 0),
              format_double(100 * stats.fraction_within(delta), 1) + "%",
              format_double(to_ms(stats.percentile(0.90)), 1),
              format_double(to_ms(stats.percentile(0.99)), 1));

    // Full CDF points (log-spaced) for plotting.
    char label[64];
    std::snprintf(label, sizeof(label), "%s C=%.0f",
                  workload_name(w).c_str(), cmin);
    std::printf("%s\n", format_cdf(stats, label, kCdfBoundsMs).c_str());
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("Figure 4: response-time CDF of FCFS at Cmin(90%%, delta)\n\n");
  for (Time delta : {from_ms(10), from_ms(20), from_ms(50)}) run_panel(delta);
  return 0;
}
