// Deterministic event-driven simulation of a trace through a scheduler.
//
// The engine replaces the role DiskSim plays in the paper: it delivers
// arrivals to the scheduler at trace timestamps, asks the scheduler for work
// whenever a server is idle, and records exact start/finish times per
// request.  Single-threaded and fully deterministic: events are ordered by
// (time, kind, sequence) with completions before arrivals at equal times.
// Completions live in an indexed min-heap keyed by (finish, server index)
// and dispatch offers walk an idle-server free list, so each event costs
// O(log servers) instead of a scan over every slot; equal-time completions
// still retire in server-index order (the heap's tie-break).
#pragma once

#include <span>
#include <vector>

#include "sim/completion.h"
#include "sim/scheduler.h"
#include "sim/server.h"
#include "trace/trace.h"

namespace qos {

struct SimResult {
  std::vector<CompletionRecord> completions;  ///< in finish order

  /// Completions indexed by request seq (same size as the input trace).
  /// Requires exactly one completion per seq: duplicate or out-of-range
  /// seqs — the signature of a fan-out run (Scheduler::fans_out()) — are
  /// invariant violations, not silently aliased.  Fan-out callers use
  /// by_seq_multi().
  std::vector<CompletionRecord> by_seq() const;

  /// All completions grouped by request seq (inner vectors in finish
  /// order), sized max-seen-seq + 1.  Safe for fan-out schedulers where
  /// one arrival yields several completions; non-fan-out runs get
  /// singleton groups.
  std::vector<std::vector<CompletionRecord>> by_seq_multi() const;

  /// Latest finish instant (0 for empty results).
  Time makespan() const;
};

/// Run `trace` through `scheduler`, with `servers[i]` backing scheduler
/// server index i.  `servers.size()` must equal scheduler.server_count().
/// Every request the scheduler eventually dispatches is recorded; the
/// scheduler must not drop requests (overflow goes to Q2, not away), and the
/// simulator checks that all requests complete.
///
/// When `sink` is non-null the engine emits kArrival / kDispatch /
/// kCompletion events to it, and forwards the sink to every server via
/// Server::attach_observability so server-side events (fault injection)
/// share the stream (scheduler-internal events require attaching the sink
/// to the scheduler too, via Scheduler::attach_observability).  A null sink
/// costs one branch per event.  The trace must satisfy Trace::validate().
SimResult simulate(const Trace& trace, Scheduler& scheduler,
                   std::span<Server* const> servers,
                   EventSink* sink = nullptr);

/// Convenience overload for single-server policies.
SimResult simulate(const Trace& trace, Scheduler& scheduler, Server& server,
                   EventSink* sink = nullptr);

}  // namespace qos
