// Pipeline event model for the observability subsystem.
//
// Every interesting transition in the shaping pipeline — arrival, RTT
// admit/reject, dispatch, completion, a Miser slack-funded Q2 dispatch, a
// mechanical disk service — is describable as one fixed-size `Event`.  A flat
// POD (no strings, no allocation) keeps emission cheap enough for the
// simulator hot path; kind-specific payloads ride in the generic a/b/c slots
// documented per kind below.
#pragma once

#include <cstdint>

#include "sim/completion.h"
#include "util/time.h"

namespace qos {

enum class EventKind : std::uint8_t {
  kArrival = 0,        ///< request entered the scheduler
  kAdmit,              ///< RTT admitted to Q1; a = lenQ1 after, b = maxQ1
  kReject,             ///< RTT overflowed to Q2; a = Q2 backlog after
  kDispatch,           ///< server started service; a = wait time (us)
  kCompletion,         ///< service finished; a = response time (us)
  kSlackDispatch,      ///< Miser spent slack on Q2; a = min slack before,
                       ///< b = Q2 backlog after
  kDiskService,        ///< mechanical service; a = seek, b = rotation,
                       ///< c = transfer (us)
  kFaultBegin,         ///< fault window opened; a = FaultKind, b = severity
                       ///< in ppm, c = window end (us)
  kFaultEnd,           ///< fault window closed; a = FaultKind
  kSlowService,        ///< fault inflated a service; a = base duration,
                       ///< b = inflated duration (us), c = FaultKind
  kDemote,             ///< degraded admission sent a nominally-admittable
                       ///< request to Q2; a = degraded maxQ1, b = nominal
  kSlaBreach,          ///< SLA tier fell below target; a = tier index,
                       ///< b = achieved fraction in ppm
  kSlaRecover,         ///< SLA tier back above target; a = tier index,
                       ///< b = achieved fraction in ppm
  kReprovision,        ///< control plane changed a tenant's capacity share;
                       ///< client = tenant, a = old share (IOPS), b = new
                       ///< share (IOPS), c = controller epoch index
};

inline constexpr int kEventKindCount = 14;

const char* event_kind_name(EventKind k);

struct Event {
  Time time = 0;            ///< simulation instant of the transition
  std::uint64_t seq = 0;    ///< request sequence number
  std::int64_t a = 0;       ///< kind-specific payload (see EventKind)
  std::int64_t b = 0;
  std::int64_t c = 0;
  std::uint32_t client = 0;
  EventKind kind = EventKind::kArrival;
  ServiceClass klass = ServiceClass::kPrimary;
  std::uint8_t server = 0;

  friend bool operator==(const Event&, const Event&) = default;
};

}  // namespace qos
