#include "fq/wf2q.h"

#include <algorithm>

namespace qos {

Wf2qPlusScheduler::Wf2qPlusScheduler(std::vector<double> weights) {
  QOS_EXPECTS(!weights.empty());
  for (const double w : weights) {
    QOS_EXPECTS(w > 0);
    total_weight_ += w;
  }
  flow_count_ = static_cast<int>(weights.size());
  dense_weights_ = std::move(weights);
  eligible_.reset(flow_count_);
  ineligible_.reset(flow_count_);
}

Wf2qPlusScheduler Wf2qPlusScheduler::uniform(int flow_count, double weight) {
  QOS_EXPECTS(flow_count > 0);
  QOS_EXPECTS(weight > 0);
  Wf2qPlusScheduler s;
  s.flow_count_ = flow_count;
  s.uniform_weight_ = weight;
  s.total_weight_ = weight * flow_count;
  s.eligible_.reset(flow_count);
  s.ineligible_.reset(flow_count);
  return s;
}

std::uint32_t Wf2qPlusScheduler::activate(int flow) {
  const std::uint32_t slot = index_.find_or_insert(flow);
  if (slot == state_.size()) {
    state_.emplace_back();
    state_.back().weight = weight_of(flow);
  }
  return slot;
}

void Wf2qPlusScheduler::classify(std::uint32_t slot, int flow,
                                 const Item& head) {
  if (head.start <= v_)
    eligible_.push(static_cast<int>(slot), TagKey{head.finish, flow});
  else
    ineligible_.push(static_cast<int>(slot), TagKey{head.start, flow});
}

void Wf2qPlusScheduler::enqueue(int flow, std::uint64_t handle, double cost,
                                Time) {
  QOS_EXPECTS(flow >= 0 && flow < flow_count_);
  QOS_EXPECTS(cost > 0);
  const std::uint32_t slot = activate(flow);
  FlowState& f = state_[slot];
  Item item;
  item.handle = handle;
  item.cost = cost;
  item.start = std::max(v_, f.last_finish);
  item.finish = item.start + cost / f.weight;
  f.last_finish = item.finish;
  const bool was_empty = f.queue.empty();
  f.queue.push_back(item);
  if (was_empty) classify(slot, flow, item);
}

std::optional<FqDispatch> Wf2qPlusScheduler::dequeue(Time) {
  if (eligible_.empty() && ineligible_.empty()) return std::nullopt;

  // Advance V to the minimum backlogged start tag if it fell behind.  With
  // any eligible flow (head start <= V) that minimum cannot exceed V, so
  // only the all-ineligible case moves V — to the ineligible heap's top,
  // which is exactly the minimum backlogged head start.
  if (eligible_.empty()) v_ = std::max(v_, ineligible_.top_key().first);
  while (!ineligible_.empty() && ineligible_.top_key().first <= v_) {
    const int flow = ineligible_.top_key().second;
    const int slot = ineligible_.pop();
    eligible_.push(slot,
                   TagKey{state_[static_cast<std::size_t>(slot)]
                              .queue.front()
                              .finish,
                          flow});
  }

  // Smallest finish tag among eligible heads (lowest flow id on ties).
  QOS_CHECK(!eligible_.empty());
  const int flow = eligible_.top_key().second;
  const int slot = eligible_.pop();
  FlowState& f = state_[static_cast<std::size_t>(slot)];
  const Item item = f.queue.front();
  f.queue.pop_front();
  v_ += item.cost / total_weight_;
  if (!f.queue.empty())
    classify(static_cast<std::uint32_t>(slot), flow, f.queue.front());
  return FqDispatch{flow, item.handle};
}

bool Wf2qPlusScheduler::empty() const {
  return eligible_.empty() && ineligible_.empty();
}

std::size_t Wf2qPlusScheduler::backlog(int flow) const {
  QOS_EXPECTS(flow >= 0 && flow < flow_count_);
  const std::uint32_t slot = index_.find(flow);
  return slot == FlatSlotMap::kNoSlot ? 0 : state_[slot].queue.size();
}

std::size_t Wf2qPlusScheduler::approx_memory_bytes() const {
  std::size_t queues = 0;
  for (const FlowState& f : state_) queues += f.queue.capacity() * sizeof(Item);
  return index_.memory_bytes() + state_.capacity() * sizeof(FlowState) +
         queues + eligible_.memory_bytes() + ineligible_.memory_bytes() +
         dense_weights_.capacity() * sizeof(double);
}

}  // namespace qos
