// Unit tests for the fault-injection subsystem: FaultySchedule windows,
// FaultyServer duration inflation + events, CapacityMonitor estimation and
// hysteresis, DegradedRtt re-tightening, SlaBreachDetector transitions.
#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "core/fcfs.h"
#include "fault/capacity_monitor.h"
#include "fault/degraded_rtt.h"
#include "fault/degraded_scheduler.h"
#include "fault/fault_schedule.h"
#include "fault/faulty_server.h"
#include "fault/sla_breach.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace qos {
namespace {

// ---------------------------------------------------------------- schedule

TEST(FaultSchedule, EmptyIsValidAndInactive) {
  FaultySchedule s;
  EXPECT_TRUE(s.validate());
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.active_at(0), nullptr);
  EXPECT_EQ(s.horizon(), 0);
}

TEST(FaultSchedule, BuildersSortAndLookup) {
  FaultySchedule s;
  s.brownout(2'000, 3'000, 0.5).stall(500, 1'000).latency_spike(5'000, 6'000,
                                                                250);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.validate());
  EXPECT_EQ(s.windows()[0].kind, FaultKind::kStall);
  EXPECT_EQ(s.active_at(499), nullptr);
  ASSERT_NE(s.active_at(500), nullptr);
  EXPECT_EQ(s.active_at(500)->kind, FaultKind::kStall);
  EXPECT_EQ(s.active_at(1'000), nullptr);  // end is exclusive
  ASSERT_NE(s.active_at(2'500), nullptr);
  EXPECT_DOUBLE_EQ(s.active_at(2'500)->severity, 0.5);
  EXPECT_EQ(s.horizon(), 6'000);
}

TEST(FaultSchedule, ZeroLengthWindowsAreDropped) {
  FaultySchedule s;
  s.brownout(1'000, 1'000, 0.3);  // empty window: a no-op
  EXPECT_TRUE(s.empty());
  FaultySchedule from_vector(
      {{1'000, 1'000, FaultKind::kStall, 0}, {2'000, 2'500, FaultKind::kStall, 0}});
  EXPECT_EQ(from_vector.size(), 1u);
}

TEST(FaultSchedule, BackToBackWindowsValidate) {
  FaultySchedule s;
  s.brownout(1'000, 2'000, 0.2).brownout(2'000, 3'000, 0.4);
  EXPECT_TRUE(s.validate());
  EXPECT_DOUBLE_EQ(s.active_at(1'999)->severity, 0.2);
  EXPECT_DOUBLE_EQ(s.active_at(2'000)->severity, 0.4);
}

TEST(FaultScheduleDeath, OverlappingWindowsRejected) {
  EXPECT_DEATH(FaultySchedule({{0, 2'000, FaultKind::kStall, 0},
                               {1'000, 3'000, FaultKind::kStall, 0}}),
               "Precondition");
}

TEST(FaultScheduleDeath, CapacityLossSeverityRange) {
  FaultySchedule s;
  EXPECT_DEATH(s.brownout(0, 1'000, 1.0), "Precondition");
}

TEST(FaultSchedule, RandomIsDeterministicInSeed) {
  RandomFaultSpec spec;
  spec.count = 8;
  const FaultySchedule a = FaultySchedule::random(spec, 42);
  const FaultySchedule b = FaultySchedule::random(spec, 42);
  const FaultySchedule c = FaultySchedule::random(spec, 43);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 0u);
  EXPECT_TRUE(a.validate());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.windows()[i].begin, b.windows()[i].begin);
    EXPECT_EQ(a.windows()[i].end, b.windows()[i].end);
    EXPECT_EQ(a.windows()[i].kind, b.windows()[i].kind);
    EXPECT_DOUBLE_EQ(a.windows()[i].severity, b.windows()[i].severity);
  }
  // Different seed => different placement (overwhelmingly likely).
  bool any_diff = c.size() != a.size();
  for (std::size_t i = 0; !any_diff && i < a.size() && i < c.size(); ++i)
    any_diff = a.windows()[i].begin != c.windows()[i].begin;
  EXPECT_TRUE(any_diff);
}

// ------------------------------------------------------------ FaultyServer

TEST(FaultyServer, NoFaultsIsByteIdenticalToWrapped) {
  // Property: with an empty schedule the decorated server produces the
  // exact duration sequence of an identically-seeded bare server.
  ConstantRateServer bare(733);
  ConstantRateServer inner(733);
  FaultyServer faulty(inner, FaultySchedule{});
  Request r;
  Time now = 0;
  for (int i = 0; i < 10'000; ++i) {
    const Time expect = bare.service_duration(r, now);
    const Time got = faulty.service_duration(r, now);
    ASSERT_EQ(got, expect) << "diverged at call " << i;
    now += got;
  }
}

TEST(FaultyServer, CapacityLossInflatesDurations) {
  ConstantRateServer inner(1'000);  // 1 ms slots
  FaultySchedule s;
  s.brownout(10'000, 20'000, 0.5);
  FaultyServer faulty(inner, s);
  Request r;
  EXPECT_EQ(faulty.service_duration(r, 0), 1'000);
  EXPECT_EQ(faulty.service_duration(r, 10'000), 2'000);  // 1/(1-0.5)
  EXPECT_EQ(faulty.service_duration(r, 20'000), 1'000);  // window closed
}

TEST(FaultyServer, StallHoldsUntilWindowEnd) {
  ConstantRateServer inner(1'000);
  FaultySchedule s;
  s.stall(5'000, 9'000);
  FaultyServer faulty(inner, s);
  Request r;
  // Started 1 ms into the stall: waits out the remaining 3 ms, then serves.
  EXPECT_EQ(faulty.service_duration(r, 6'000), 3'000 + 1'000);
}

TEST(FaultyServer, LatencySpikeAddsConstant) {
  ConstantRateServer inner(1'000);
  FaultySchedule s;
  s.latency_spike(0, 2'000, 750);
  FaultyServer faulty(inner, s);
  Request r;
  EXPECT_EQ(faulty.service_duration(r, 0), 1'750);
  EXPECT_EQ(faulty.service_duration(r, 2'000), 1'000);
}

TEST(FaultyServer, EmitsFaultAndSlowServiceEvents) {
  ConstantRateServer inner(1'000);
  FaultySchedule s;
  s.brownout(3'000, 6'000, 0.5);
  FaultyServer faulty(inner, s);
  RecordingSink sink;
  faulty.attach_observability(&sink);
  Request r;
  faulty.service_duration(r, 0);      // healthy
  faulty.service_duration(r, 4'000);  // inside the window
  faulty.flush_events(10'000);        // past the end
  EXPECT_EQ(sink.count(EventKind::kFaultBegin), 1u);
  EXPECT_EQ(sink.count(EventKind::kFaultEnd), 1u);
  EXPECT_EQ(sink.count(EventKind::kSlowService), 1u);
  const auto& events = sink.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kFaultBegin);
  EXPECT_EQ(events[0].time, 3'000);
  EXPECT_EQ(events[0].c, 6'000);  // window end rides in c
  EXPECT_EQ(events[1].kind, EventKind::kSlowService);
  EXPECT_EQ(events[1].a, 1'000);
  EXPECT_EQ(events[1].b, 2'000);
  EXPECT_EQ(events[2].kind, EventKind::kFaultEnd);
  EXPECT_EQ(events[2].time, 6'000);
}

TEST(FaultyServer, WindowCoveringWholeRunStillCompletes) {
  // Degradation edge: the fault spans the entire trace; every request is
  // slowed but all of them complete.
  const Trace trace = generate_poisson(200, 5 * kUsPerSec, 7);
  FaultySchedule s;
  s.brownout(0, 100 * kUsPerSec, 0.5);
  ConstantRateServer inner(1'000);
  FaultyServer faulty(inner, s);
  FcfsScheduler fcfs;
  const SimResult result = simulate(trace, fcfs, faulty);
  EXPECT_EQ(result.completions.size(), trace.size());
  for (const auto& c : result.completions)
    EXPECT_GE(c.finish - c.start, 2'000);  // all slots inflated to 2 ms
}

TEST(FaultyServer, BackToBackWindowsBothAnnounced) {
  ConstantRateServer inner(1'000);
  FaultySchedule s;
  s.brownout(1'000, 2'000, 0.2).stall(2'000, 3'000);
  FaultyServer faulty(inner, s);
  RecordingSink sink;
  faulty.attach_observability(&sink);
  Request r;
  faulty.service_duration(r, 1'500);
  faulty.service_duration(r, 2'500);
  faulty.flush_events(5'000);
  EXPECT_EQ(sink.count(EventKind::kFaultBegin), 2u);
  EXPECT_EQ(sink.count(EventKind::kFaultEnd), 2u);
  // Edge ordering: begin(1000) .. end(2000), begin(2000) .. end(3000).
  std::vector<Time> edges;
  for (const auto& e : sink.events())
    if (e.kind != EventKind::kSlowService) edges.push_back(e.time);
  EXPECT_EQ(edges, (std::vector<Time>{1'000, 2'000, 2'000, 3'000}));
}

// -------------------------------------------------------- CapacityMonitor

TEST(CapacityMonitor, ReportsReferenceUntilPrimed) {
  CapacityMonitorConfig config;
  config.min_samples = 4;
  CapacityMonitor monitor(1'000, config);
  EXPECT_DOUBLE_EQ(monitor.estimate_iops(), 1'000);
  monitor.on_service(1'000, 1'000);
  EXPECT_DOUBLE_EQ(monitor.raw_estimate(), 1'000);  // below min_samples
}

TEST(CapacityMonitor, TracksDeliveredRate) {
  CapacityMonitor monitor(1'000);
  Time t = 0;
  for (int i = 0; i < 200; ++i) {
    t += 1'000;
    monitor.on_service(t, 1'000);  // healthy: 1 ms per op
  }
  EXPECT_NEAR(monitor.estimate_iops(), 1'000, 1);
  for (int i = 0; i < 500; ++i) {
    t += 2'000;
    monitor.on_service(t, 2'000);  // brownout: 2 ms per op
  }
  EXPECT_NEAR(monitor.estimate_iops(), 500, 25);
  EXPECT_NEAR(monitor.health(), 0.5, 0.03);
}

TEST(CapacityMonitor, HysteresisTightensFastRelaxesSlowly) {
  CapacityMonitorConfig config;
  config.tighten_gain = 0.8;
  config.relax_gain = 0.1;
  config.min_samples = 1;
  config.window = 100 * kUsPerSec;  // keep every sample
  CapacityMonitor monitor(1'000, config);
  // One degraded window-full drags the estimate down hard...
  Time t = 0;
  for (int i = 0; i < 20; ++i) {
    t += 4'000;
    monitor.on_service(t, 4'000);
  }
  const double after_drop = monitor.estimate_iops();
  EXPECT_LT(after_drop, 500);
  // ...but a single healthy burst only climbs back a fraction of the gap.
  for (int i = 0; i < 3; ++i) {
    t += 1'000;
    monitor.on_service(t, 1'000);
  }
  const double after_recovery = monitor.estimate_iops();
  EXPECT_GT(after_recovery, after_drop);
  EXPECT_LT(after_recovery, 700);  // nowhere near healthy yet
}

// ------------------------------------------------------------- DegradedRtt

TEST(DegradedRtt, NominalBoundWhenHealthy) {
  DegradedRtt rtt(1'000, from_ms(10), 1'100);
  EXPECT_EQ(rtt.nominal_max_q1(), 10);
  EXPECT_EQ(rtt.max_q1(), 10);
  EXPECT_TRUE(rtt.admit(9));
  EXPECT_FALSE(rtt.admit(10));
}

TEST(DegradedRtt, TightensUnderDegradedServiceAndRelaxesAfter) {
  DegradedRttConfig config;
  config.monitor.min_samples = 8;
  config.monitor.relax_gain = 0.5;  // recover fast enough to test
  DegradedRtt rtt(1'000, from_ms(10), 1'000, config);
  Time t = 0;
  // Server delivering only 40%: 2.5 ms per op.
  for (int i = 0; i < 200; ++i) {
    rtt.on_service(t, t + 2'500);
    t += 2'500;
  }
  EXPECT_LT(rtt.max_q1(), 6);
  EXPECT_GT(rtt.health(), 0.0);
  EXPECT_FALSE(rtt.admit(6));
  // A nominally-admittable request rejected now is a demotion.
  EXPECT_TRUE(rtt.is_demotion(6));
  EXPECT_FALSE(rtt.is_demotion(10));
  // Healthy again: the bound relaxes back to nominal.
  for (int i = 0; i < 2'000; ++i) {
    rtt.on_service(t, t + 1'000);
    t += 1'000;
  }
  EXPECT_EQ(rtt.max_q1(), 10);
}

TEST(DegradedRtt, DisabledBehavesStatically) {
  DegradedRttConfig config;
  config.enabled = false;
  DegradedRtt rtt(1'000, from_ms(10), 1'000, config);
  Time t = 0;
  for (int i = 0; i < 500; ++i) {
    rtt.on_service(t, t + 10'000);  // catastrophic degradation, ignored
    t += 10'000;
  }
  EXPECT_EQ(rtt.max_q1(), 10);
  EXPECT_TRUE(rtt.admit(9));
}

// ------------------------------------------------------ DegradedScheduler

TEST(DegradedRttScheduler, CountsDemotionsUnderDegradation) {
  const Trace trace = generate_poisson(800, 10 * kUsPerSec, 11);
  DegradedRttConfig config;
  DegradedRttScheduler scheduler(1'000, from_ms(10), 1'100, config);
  ConstantRateServer inner(1'100);
  FaultySchedule faults;
  faults.brownout(2 * kUsPerSec, 8 * kUsPerSec, 0.4);
  FaultyServer faulty(inner, faults);
  const SimResult result = simulate(trace, scheduler, faulty);
  EXPECT_EQ(result.completions.size(), trace.size());
  EXPECT_GT(scheduler.demotions(), 0u);
}

TEST(DegradedRttScheduler, NoDemotionsWithoutFaults) {
  const Trace trace = generate_poisson(800, 10 * kUsPerSec, 11);
  DegradedRttScheduler scheduler(1'000, from_ms(10), 1'100);
  ConstantRateServer server(1'100);
  const SimResult result = simulate(trace, scheduler, server);
  EXPECT_EQ(result.completions.size(), trace.size());
  EXPECT_EQ(scheduler.demotions(), 0u);
}

// --------------------------------------------------------- breach detector

GraduatedSla one_tier_sla(double fraction, Time delta) {
  GraduatedSla sla;
  sla.tiers.push_back({fraction, delta});
  return sla;
}

TEST(SlaBreachDetector, BreachesAndRecoversWithHysteresis) {
  SlaBreachConfig config;
  config.window = 50;
  config.min_samples = 10;
  config.recover_margin = 0.05;
  SlaBreachDetector detector(one_tier_sla(0.9, from_ms(10)), config);
  RecordingSink sink;
  MetricRegistry registry;
  detector.attach_observability(&sink, &registry);

  Time t = 0;
  // Healthy: everything within delta.
  for (int i = 0; i < 50; ++i) detector.on_completion(t += 1'000, 5'000);
  EXPECT_FALSE(detector.in_breach(0));
  // Degraded: everything misses; the windowed fraction falls below 0.9.
  for (int i = 0; i < 20; ++i) detector.on_completion(t += 1'000, 50'000);
  EXPECT_TRUE(detector.in_breach(0));
  EXPECT_EQ(detector.breach_count(0), 1u);
  EXPECT_EQ(sink.count(EventKind::kSlaBreach), 1u);
  const Time breach_so_far = detector.time_in_breach(0, t);
  EXPECT_GT(breach_so_far, 0);
  // Recovery requires fraction + margin, so a long healthy run.
  for (int i = 0; i < 60; ++i) detector.on_completion(t += 1'000, 5'000);
  EXPECT_FALSE(detector.in_breach(0));
  EXPECT_EQ(sink.count(EventKind::kSlaRecover), 1u);
  EXPECT_EQ(registry.counter("sla.breaches").value(), 1u);
  EXPECT_EQ(registry.counter("sla.recoveries").value(), 1u);
  EXPECT_GE(detector.time_in_breach(0, t), breach_so_far);
}

TEST(SlaBreachDetector, ConsumesCompletionEvents) {
  SlaBreachConfig config;
  config.window = 20;
  config.min_samples = 5;
  SlaBreachDetector detector(one_tier_sla(0.9, from_ms(1)), config);
  Time t = 0;
  for (int i = 0; i < 20; ++i) {
    detector.on_event({.time = t += 1'000,
                       .a = 50'000,  // response time payload
                       .kind = EventKind::kCompletion});
  }
  EXPECT_TRUE(detector.in_breach(0));
  // Non-completion events are ignored.
  detector.on_event({.time = t, .kind = EventKind::kArrival});
  EXPECT_TRUE(detector.in_breach(0));
}

TEST(CapacityMonitor, ZeroTrafficWindowReportsReferenceNotZero) {
  // Demand-independence edge case: a lull longer than the window evicts
  // every sample.  The raw estimate must fall back to the reference — a
  // 1/mean over zero samples must not read as zero capacity, or the
  // controller would wrongly collapse the budget on an idle system.
  CapacityMonitorConfig config;
  config.window = kUsPerSec / 2;
  config.min_samples = 4;
  CapacityMonitor monitor(1000, config);
  EXPECT_EQ(monitor.raw_estimate(), 1000);  // no traffic at all
  EXPECT_EQ(monitor.health(), 1.0);

  // Degrade hard: 4 ms services => ~250 IOPS delivered.
  Time t = 0;
  for (int i = 0; i < 12; ++i) monitor.on_service(t += 4'000, 4'000);
  EXPECT_LT(monitor.estimate_iops(), 500);
  const double degraded = monitor.estimate_iops();

  // A single completion after a 10 s lull: the window holds one sample,
  // below min_samples, so the raw estimate is the reference again and the
  // smoothed estimate recovers toward it instead of collapsing.
  monitor.on_service(t + 10 * kUsPerSec, 1'000);
  EXPECT_EQ(monitor.window_size(), 1u);
  EXPECT_EQ(monitor.raw_estimate(), 1000);
  EXPECT_GT(monitor.estimate_iops(), degraded);
  EXPECT_GT(monitor.health(), 0.0);
}

TEST(SlaBreachDetector, NoFlappingAtTierBoundary) {
  // Achieved fraction oscillating in the hysteresis band [fraction,
  // fraction + recover_margin) must hold ONE breach open, not emit a
  // breach/recover pair per oscillation.
  SlaBreachConfig config;
  config.window = 20;
  config.min_samples = 20;
  config.recover_margin = 0.05;  // recover needs >= 0.95 => 19/20 within
  SlaBreachDetector detector(one_tier_sla(0.9, from_ms(1)), config);
  Time t = 0;
  const Time hit = 500;     // within the 1 ms tier
  const Time miss = 5'000;  // misses it
  // Prime exactly at the target: 18 within + 2 misses = 0.9, no breach.
  for (int i = 0; i < 18; ++i) detector.on_completion(t += 1'000, hit);
  for (int i = 0; i < 2; ++i) detector.on_completion(t += 1'000, miss);
  EXPECT_FALSE(detector.in_breach(0));
  // One more miss dips below target: the breach opens once.
  detector.on_completion(t += 1'000, miss);
  EXPECT_TRUE(detector.in_breach(0));
  EXPECT_EQ(detector.breach_count(0), 1u);
  // Oscillate achieved between 0.85 and 0.90 for a while — inside the
  // deadband, so the breach stays open and the count stays 1.
  for (int cycle = 0; cycle < 5; ++cycle) {
    detector.on_completion(t += 1'000, hit);
    detector.on_completion(t += 1'000, miss);
    EXPECT_TRUE(detector.in_breach(0));
  }
  EXPECT_EQ(detector.breach_count(0), 1u);
  // Only a sustained recovery past the margin closes it.
  for (int i = 0; i < 20; ++i) detector.on_completion(t += 1'000, hit);
  EXPECT_FALSE(detector.in_breach(0));
  EXPECT_EQ(detector.breach_count(0), 1u);
}

TEST(AsymmetricEwma, FirstSampleAndReset) {
  // A default-constructed series starts at 0: the first observation climbs
  // by up_gain only.  CapacityMonitor therefore reset()s to the reference
  // at construction — pin both behaviours.
  AsymmetricEwma fresh(0.5, 0.9);
  EXPECT_EQ(fresh.value(), 0.0);
  EXPECT_DOUBLE_EQ(fresh.observe(100), 50.0);  // up gain from the 0 start
  // After reset the next sample is folded against the reset value with the
  // direction-appropriate gain.
  AsymmetricEwma seeded(0.1, 0.8);
  seeded.reset(1000);
  EXPECT_EQ(seeded.value(), 1000.0);
  EXPECT_DOUBLE_EQ(seeded.observe(500), 1000 + 0.8 * (500 - 1000));
  EXPECT_DOUBLE_EQ(seeded.observe(2000), 600 + 0.1 * (2000 - 600));
  // Equal sample: "not greater" takes the down gain and is a no-op.
  AsymmetricEwma flat(0.3, 0.7);
  flat.reset(42);
  EXPECT_DOUBLE_EQ(flat.observe(42), 42.0);
}

TEST(SlaBreachDetector, MultiTierIndependence) {
  GraduatedSla sla;
  sla.tiers.push_back({0.5, from_ms(1)});
  sla.tiers.push_back({0.95, from_ms(100)});
  SlaBreachConfig config;
  config.window = 20;
  config.min_samples = 5;
  SlaBreachDetector detector(sla, config);
  Time t = 0;
  // 10 ms responses: tier 0 (1 ms) breaches, tier 1 (100 ms) holds.
  for (int i = 0; i < 20; ++i) detector.on_completion(t += 1'000, 10'000);
  EXPECT_TRUE(detector.in_breach(0));
  EXPECT_FALSE(detector.in_breach(1));
}

}  // namespace
}  // namespace qos
