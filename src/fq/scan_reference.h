// Frozen linear-scan reference implementations of the FQ backends.
//
// These are the pre-heap dequeue algorithms, kept verbatim as the
// executable specification the optimized backends must match bit for bit:
// tests/test_fq_differential.cpp replays randomized workloads through both
// and asserts identical dispatch streams, and bench/micro_algorithms
// measures them as the O(flows) baseline the heap rewrite is compared
// against.  They are NOT part of the production library — do not use them
// outside tests and benches, and do not "fix" them: a deliberate behaviour
// change in the real backends must retire the corresponding assertion
// here, not mutate the reference.
#pragma once

#include <algorithm>
#include <deque>
#include <optional>
#include <vector>

#include "fq/fair_scheduler.h"
#include "fq/pclock.h"
#include "util/check.h"

namespace qos::scanref {

/// Start-time Fair Queueing, O(flows) dequeue scan.
class ScanSfqScheduler final : public FairScheduler {
 public:
  explicit ScanSfqScheduler(std::vector<double> weights) {
    QOS_EXPECTS(!weights.empty());
    flows_.resize(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
      QOS_EXPECTS(weights[i] > 0);
      flows_[i].weight = weights[i];
    }
  }

  int flow_count() const override { return static_cast<int>(flows_.size()); }

  void enqueue(int flow, std::uint64_t handle, double cost, Time) override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    QOS_EXPECTS(cost > 0);
    Flow& f = flows_[static_cast<std::size_t>(flow)];
    Item item;
    item.handle = handle;
    item.start = std::max(v_, f.last_finish);
    item.finish = item.start + cost / f.weight;
    f.last_finish = item.finish;
    f.queue.push_back(item);
  }

  std::optional<FqDispatch> dequeue(Time) override {
    int best = -1;
    for (int i = 0; i < flow_count(); ++i) {
      const Flow& f = flows_[static_cast<std::size_t>(i)];
      if (f.queue.empty()) continue;
      if (best < 0 ||
          f.queue.front().start <
              flows_[static_cast<std::size_t>(best)].queue.front().start)
        best = i;
    }
    if (best < 0) return std::nullopt;
    Flow& f = flows_[static_cast<std::size_t>(best)];
    const Item item = f.queue.front();
    f.queue.pop_front();
    v_ = item.start;
    return FqDispatch{best, item.handle};
  }

  bool empty() const override {
    for (const auto& f : flows_)
      if (!f.queue.empty()) return false;
    return true;
  }

  std::size_t backlog(int flow) const override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    return flows_[static_cast<std::size_t>(flow)].queue.size();
  }

  double virtual_time() const { return v_; }

 private:
  struct Item {
    std::uint64_t handle = 0;
    double start = 0;
    double finish = 0;
  };
  struct Flow {
    double weight = 1;
    double last_finish = 0;
    std::deque<Item> queue;
  };

  std::vector<Flow> flows_;
  double v_ = 0;
};

/// WFQ (SCFQ virtual time), O(flows) dequeue scan.
class ScanWfqScheduler final : public FairScheduler {
 public:
  explicit ScanWfqScheduler(std::vector<double> weights) {
    QOS_EXPECTS(!weights.empty());
    flows_.resize(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
      QOS_EXPECTS(weights[i] > 0);
      flows_[i].weight = weights[i];
      total_weight_ += weights[i];
    }
  }

  int flow_count() const override { return static_cast<int>(flows_.size()); }

  void enqueue(int flow, std::uint64_t handle, double cost, Time) override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    QOS_EXPECTS(cost > 0);
    Flow& f = flows_[static_cast<std::size_t>(flow)];
    Item item;
    item.handle = handle;
    item.cost = cost;
    item.finish = std::max(v_, f.last_finish) + cost / f.weight;
    f.last_finish = item.finish;
    f.queue.push_back(item);
  }

  std::optional<FqDispatch> dequeue(Time) override {
    int best = -1;
    for (int i = 0; i < flow_count(); ++i) {
      const Flow& f = flows_[static_cast<std::size_t>(i)];
      if (f.queue.empty()) continue;
      if (best < 0 ||
          f.queue.front().finish <
              flows_[static_cast<std::size_t>(best)].queue.front().finish)
        best = i;
    }
    if (best < 0) return std::nullopt;
    Flow& f = flows_[static_cast<std::size_t>(best)];
    const Item item = f.queue.front();
    f.queue.pop_front();
    v_ = item.finish;
    return FqDispatch{best, item.handle};
  }

  bool empty() const override {
    for (const auto& f : flows_)
      if (!f.queue.empty()) return false;
    return true;
  }

  std::size_t backlog(int flow) const override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    return flows_[static_cast<std::size_t>(flow)].queue.size();
  }

  double virtual_time() const { return v_; }

 private:
  struct Item {
    std::uint64_t handle = 0;
    double cost = 1;
    double finish = 0;
  };
  struct Flow {
    double weight = 1;
    double last_finish = 0;
    std::deque<Item> queue;
  };

  std::vector<Flow> flows_;
  double v_ = 0;
  double total_weight_ = 0;
};

/// WF2Q+, O(flows) eligibility + finish-tag scans.
class ScanWf2qPlusScheduler final : public FairScheduler {
 public:
  explicit ScanWf2qPlusScheduler(std::vector<double> weights) {
    QOS_EXPECTS(!weights.empty());
    flows_.resize(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
      QOS_EXPECTS(weights[i] > 0);
      flows_[i].weight = weights[i];
      total_weight_ += weights[i];
    }
  }

  int flow_count() const override { return static_cast<int>(flows_.size()); }

  void enqueue(int flow, std::uint64_t handle, double cost, Time) override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    QOS_EXPECTS(cost > 0);
    Flow& f = flows_[static_cast<std::size_t>(flow)];
    Item item;
    item.handle = handle;
    item.cost = cost;
    item.start = std::max(v_, f.last_finish);
    item.finish = item.start + cost / f.weight;
    f.last_finish = item.finish;
    f.queue.push_back(item);
  }

  std::optional<FqDispatch> dequeue(Time) override {
    double min_start = 0;
    bool any = false;
    for (const auto& f : flows_) {
      if (f.queue.empty()) continue;
      if (!any || f.queue.front().start < min_start)
        min_start = f.queue.front().start;
      any = true;
    }
    if (!any) return std::nullopt;
    v_ = std::max(v_, min_start);

    int best = -1;
    for (int i = 0; i < flow_count(); ++i) {
      const Flow& f = flows_[static_cast<std::size_t>(i)];
      if (f.queue.empty() || f.queue.front().start > v_) continue;
      if (best < 0 ||
          f.queue.front().finish <
              flows_[static_cast<std::size_t>(best)].queue.front().finish)
        best = i;
    }
    QOS_CHECK(best >= 0);
    Flow& f = flows_[static_cast<std::size_t>(best)];
    const Item item = f.queue.front();
    f.queue.pop_front();
    v_ += item.cost / total_weight_;
    return FqDispatch{best, item.handle};
  }

  bool empty() const override {
    for (const auto& f : flows_)
      if (!f.queue.empty()) return false;
    return true;
  }

  std::size_t backlog(int flow) const override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    return flows_[static_cast<std::size_t>(flow)].queue.size();
  }

  double virtual_time() const { return v_; }

 private:
  struct Item {
    std::uint64_t handle = 0;
    double cost = 1;
    double start = 0;
    double finish = 0;
  };
  struct Flow {
    double weight = 1;
    double last_finish = 0;
    std::deque<Item> queue;
  };

  std::vector<Flow> flows_;
  double v_ = 0;
  double total_weight_ = 0;
};

/// pClock tagging, O(flows) earliest-deadline dequeue scan.
class ScanPClockScheduler final : public FairScheduler {
 public:
  explicit ScanPClockScheduler(std::vector<PClockSla> slas) {
    QOS_EXPECTS(!slas.empty());
    flows_.resize(slas.size());
    for (std::size_t i = 0; i < slas.size(); ++i) {
      QOS_EXPECTS(slas[i].sigma >= 0);
      QOS_EXPECTS(slas[i].rho > 0);
      QOS_EXPECTS(slas[i].delta >= 0);
      flows_[i].sla = slas[i];
      flows_[i].tokens = slas[i].sigma;
    }
  }

  int flow_count() const override { return static_cast<int>(flows_.size()); }

  void enqueue(int flow, std::uint64_t handle, double cost,
               Time now) override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    QOS_EXPECTS(cost > 0);
    Flow& f = flows_[static_cast<std::size_t>(flow)];
    f.tokens = std::min(f.sla.sigma,
                        f.tokens + f.sla.rho * to_sec(now - f.last_update));
    f.last_update = now;

    Item item;
    item.handle = handle;
    f.tokens -= cost;
    if (f.tokens >= 0) {
      item.deadline = now + f.sla.delta;
    } else {
      item.deadline = now + f.sla.delta + from_sec(-f.tokens / f.sla.rho);
    }
    if (!f.queue.empty())
      item.deadline = std::max(item.deadline, f.queue.back().deadline);
    f.queue.push_back(item);
  }

  std::optional<FqDispatch> dequeue(Time) override {
    int best = -1;
    for (int i = 0; i < flow_count(); ++i) {
      const Flow& f = flows_[static_cast<std::size_t>(i)];
      if (f.queue.empty()) continue;
      if (best < 0 ||
          f.queue.front().deadline <
              flows_[static_cast<std::size_t>(best)].queue.front().deadline)
        best = i;
    }
    if (best < 0) return std::nullopt;
    Flow& f = flows_[static_cast<std::size_t>(best)];
    const Item item = f.queue.front();
    f.queue.pop_front();
    return FqDispatch{best, item.handle};
  }

  bool empty() const override {
    for (const auto& f : flows_)
      if (!f.queue.empty()) return false;
    return true;
  }

  std::size_t backlog(int flow) const override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    return flows_[static_cast<std::size_t>(flow)].queue.size();
  }

 private:
  struct Item {
    std::uint64_t handle = 0;
    Time deadline = 0;
  };
  struct Flow {
    PClockSla sla;
    double tokens = 0;
    Time last_update = 0;
    std::deque<Item> queue;
  };

  std::vector<Flow> flows_;
};

}  // namespace qos::scanref
