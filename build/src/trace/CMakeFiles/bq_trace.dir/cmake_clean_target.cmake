file(REMOVE_RECURSE
  "libbq_trace.a"
)
