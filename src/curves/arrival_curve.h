// Cumulative arrival curve A(t) — the paper's Section 2.1 workload model.
//
// A(t) is the number of requests arriving in [0, t].  We store the curve as
// aggregated (arrival instant, cumulative count) steps so point queries are
// O(log N) and full scans are O(distinct instants).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/trace.h"
#include "util/time.h"

namespace qos {

class ArrivalCurve {
 public:
  struct Step {
    Time at = 0;                 ///< arrival instant a_i
    std::int64_t count = 0;      ///< n_i, arrivals exactly at a_i
    std::int64_t cumulative = 0; ///< A(a_i)
  };

  ArrivalCurve() = default;
  explicit ArrivalCurve(const Trace& trace);

  /// A(t): arrivals in [0, t].  O(log N).
  std::int64_t at(Time t) const;

  /// Total number of requests.
  std::int64_t total() const {
    return steps_.empty() ? 0 : steps_.back().cumulative;
  }

  std::span<const Step> steps() const { return steps_; }

 private:
  std::vector<Step> steps_;
};

}  // namespace qos
