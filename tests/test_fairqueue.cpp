#include "core/fairqueue.h"

#include <gtest/gtest.h>

#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "fq/pclock.h"
#include "fq/wf2q.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace qos {
namespace {

TEST(FairQueue, SingleServer) {
  FairQueueScheduler fq(100, 10'000, 20);
  EXPECT_EQ(fq.server_count(), 1);
}

TEST(FairQueue, AllRequestsComplete) {
  Trace t = generate_poisson(600, 20 * kUsPerSec, 31);
  FairQueueScheduler fq(400, 10'000, 100);
  ConstantRateServer server(500);
  SimResult r = simulate(t, fq, server);
  EXPECT_EQ(r.completions.size(), t.size());
}

TEST(FairQueue, PrimariesDominateWhenWeighted) {
  // Saturated server with weights Cmin:dC = 400:100 — primary requests get
  // ~80% of the capacity while both classes are backlogged, so their mean
  // response is far smaller.
  std::vector<Request> reqs;
  for (int i = 0; i < 2000; ++i) reqs.push_back(Request{.arrival = i * 500});
  Trace t(std::move(reqs));
  FairQueueScheduler fq(400, 10'000, 100);
  ConstantRateServer server(500);
  SimResult r = simulate(t, fq, server);
  ResponseStats primary(r.completions, ServiceClass::kPrimary);
  ResponseStats overflow(r.completions, ServiceClass::kOverflow);
  ASSERT_FALSE(primary.empty());
  ASSERT_FALSE(overflow.empty());
  EXPECT_LT(primary.mean_us(), overflow.mean_us());
}

TEST(FairQueue, PrimaryMeetsDeadlineWithReservation) {
  // Q1's reservation equals the admission capacity, so primaries meet the
  // deadline like in Split, while Q2 rides the spare capacity.
  Trace t = generate_poisson(700, 20 * kUsPerSec, 37);
  const double cmin = 500;
  const Time delta = 10'000;
  FairQueueScheduler fq(cmin, delta, overflow_headroom_iops(delta));
  ConstantRateServer server(cmin + overflow_headroom_iops(delta));
  SimResult r = simulate(t, fq, server);
  std::int64_t primary = 0, missed = 0;
  for (const auto& c : r.completions) {
    if (c.klass != ServiceClass::kPrimary) continue;
    ++primary;
    if (c.response_time() > delta) ++missed;
  }
  ASSERT_GT(primary, 0);
  // SFQ may let an overflow dispatch delay one primary by a slot; misses
  // must stay (near) zero.
  EXPECT_LT(static_cast<double>(missed) / static_cast<double>(primary),
            0.005);
}

TEST(FairQueue, WorksWithWf2qPlus) {
  Trace t = generate_poisson(500, 10 * kUsPerSec, 41);
  auto wf = std::make_unique<Wf2qPlusScheduler>(std::vector<double>{400, 100});
  FairQueueScheduler fq(400, 10'000, 100, std::move(wf));
  ConstantRateServer server(500);
  SimResult r = simulate(t, fq, server);
  EXPECT_EQ(r.completions.size(), t.size());
}

TEST(FairQueue, WorksWithPClock) {
  Trace t = generate_poisson(500, 10 * kUsPerSec, 43);
  std::vector<PClockSla> slas = {
      PClockSla{.sigma = 4, .rho = 400, .delta = 10'000},
      PClockSla{.sigma = 1, .rho = 100, .delta = 100'000}};
  auto pc = std::make_unique<PClockScheduler>(slas);
  FairQueueScheduler fq(400, 10'000, 100, std::move(pc));
  ConstantRateServer server(500);
  SimResult r = simulate(t, fq, server);
  EXPECT_EQ(r.completions.size(), t.size());
}

TEST(FairQueue, WorkConserving) {
  std::vector<Request> reqs;
  for (int i = 0; i < 100; ++i) reqs.push_back(Request{.arrival = 0});
  Trace t(std::move(reqs));
  FairQueueScheduler fq(100, 10'000, 100);
  ConstantRateServer server(200);
  SimResult r = simulate(t, fq, server);
  EXPECT_EQ(r.makespan(), 500'000);  // 100 requests at 200 IOPS
}

}  // namespace
}  // namespace qos
