file(REMOVE_RECURSE
  "CMakeFiles/test_service_timer.dir/test_service_timer.cpp.o"
  "CMakeFiles/test_service_timer.dir/test_service_timer.cpp.o.d"
  "test_service_timer"
  "test_service_timer.pdb"
  "test_service_timer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
