file(REMOVE_RECURSE
  "CMakeFiles/fig6_schedulers.dir/fig6_schedulers.cpp.o"
  "CMakeFiles/fig6_schedulers.dir/fig6_schedulers.cpp.o.d"
  "fig6_schedulers"
  "fig6_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
