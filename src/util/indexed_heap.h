// Indexed binary min-heap over small dense integer ids.
//
// The event simulator keys it by completion time over server ids; the fair
// schedulers key it by head tag over flow ids.  Both need the exact total
// order their original linear scans induced: ascending key, ties broken by
// the *lowest id* (the scans used a strict `<` improvement test walking ids
// in ascending order).  The heap therefore orders nodes lexicographically by
// (key, id), which makes every pop bit-compatible with the scan it replaced.
//
// A position table gives O(log n) update/erase of an arbitrary id, so head
// tag changes (or a server redispatch) never require rebuilding.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.h"

namespace qos {

template <typename Key>
class IndexedMinHeap {
 public:
  IndexedMinHeap() = default;
  explicit IndexedMinHeap(int id_capacity) { reset(id_capacity); }

  /// Empty the heap and size the id space to [0, id_capacity).
  void reset(int id_capacity) {
    QOS_EXPECTS(id_capacity >= 0);
    heap_.clear();
    heap_.reserve(static_cast<std::size_t>(id_capacity));
    pos_.assign(static_cast<std::size_t>(id_capacity), kAbsent);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  bool contains(int id) const { return pos_[check_id(id)] != kAbsent; }

  /// Id with the smallest (key, id).
  int top() const {
    QOS_EXPECTS(!heap_.empty());
    return heap_[0].id;
  }

  const Key& top_key() const {
    QOS_EXPECTS(!heap_.empty());
    return heap_[0].key;
  }

  const Key& key_of(int id) const {
    const std::size_t p = pos_[check_id(id)];
    QOS_EXPECTS(p != kAbsent);
    return heap_[p].key;
  }

  void push(int id, Key key) {
    QOS_EXPECTS(pos_[check_id(id)] == kAbsent);
    pos_[static_cast<std::size_t>(id)] = heap_.size();
    heap_.push_back(Node{key, id});
    sift_up(heap_.size() - 1);
  }

  /// Re-key an id already in the heap (key may move either way).
  void update(int id, Key key) {
    const std::size_t p = pos_[check_id(id)];
    QOS_EXPECTS(p != kAbsent);
    heap_[p].key = key;
    sift_up(p);
    sift_down(pos_[static_cast<std::size_t>(id)]);
  }

  /// Remove and return the top id.
  int pop() {
    QOS_EXPECTS(!heap_.empty());
    const int id = heap_[0].id;
    remove_at(0);
    return id;
  }

  void erase(int id) {
    const std::size_t p = pos_[check_id(id)];
    QOS_EXPECTS(p != kAbsent);
    remove_at(p);
  }

 private:
  struct Node {
    Key key;
    int id;
  };

  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

  std::size_t check_id(int id) const {
    QOS_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < pos_.size());
    return static_cast<std::size_t>(id);
  }

  /// (key, id) lexicographic — the scan-equivalent total order.
  static bool less(const Node& a, const Node& b) {
    if (a.key < b.key) return true;
    if (b.key < a.key) return false;
    return a.id < b.id;
  }

  void place(std::size_t i, const Node& n) {
    heap_[i] = n;
    pos_[static_cast<std::size_t>(n.id)] = i;
  }

  void sift_up(std::size_t i) {
    const Node n = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less(n, heap_[parent])) break;
      place(i, heap_[parent]);
      i = parent;
    }
    place(i, n);
  }

  void sift_down(std::size_t i) {
    const Node n = heap_[i];
    const std::size_t count = heap_.size();
    while (true) {
      std::size_t child = 2 * i + 1;
      if (child >= count) break;
      if (child + 1 < count && less(heap_[child + 1], heap_[child])) ++child;
      if (!less(heap_[child], n)) break;
      place(i, heap_[child]);
      i = child;
    }
    place(i, n);
  }

  void remove_at(std::size_t p) {
    pos_[static_cast<std::size_t>(heap_[p].id)] = kAbsent;
    const Node last = heap_.back();
    heap_.pop_back();
    if (p < heap_.size()) {
      place(p, last);
      sift_up(p);
      sift_down(pos_[static_cast<std::size_t>(last.id)]);
    }
  }

  std::vector<Node> heap_;
  std::vector<std::size_t> pos_;  ///< id -> heap index, kAbsent when out
};

}  // namespace qos
