// Trace: an immutable-ish, arrival-ordered request sequence plus transforms.
//
// A Trace owns its requests sorted by arrival time (ties kept in insertion
// order, sequence numbers dense and increasing).  All workload inputs to the
// decomposition framework — parsed SPC traces, synthetic generator output,
// shifted/merged multi-tenant mixes — are Traces.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/request.h"
#include "util/time.h"

namespace qos {

/// The per-record invariant every workload source must establish before a
/// request reaches the simulator: non-negative arrival and a positive block
/// count.  One definition shared by Trace::validate (materialized traces)
/// and the streaming readers in src/stream (which never hold a full Trace
/// to validate, so they check each record at emission instead).
inline bool request_record_ok(const Request& r) {
  return r.arrival >= 0 && r.size_blocks != 0;
}

class Trace {
 public:
  Trace() = default;

  /// Takes arbitrary-order requests; sorts stably by arrival and renumbers
  /// `seq` densely from 0.
  explicit Trace(std::vector<Request> requests);

  const Request& operator[](std::size_t i) const { return requests_[i]; }
  std::size_t size() const { return requests_.size(); }
  bool empty() const { return requests_.empty(); }
  std::span<const Request> requests() const { return requests_; }
  auto begin() const { return requests_.begin(); }
  auto end() const { return requests_.end(); }

  /// First / last arrival instant.  Requires non-empty.
  Time start_time() const;
  Time end_time() const;
  /// end_time() - start_time(); zero for traces with < 2 requests.
  Time duration() const;

  /// True when the trace invariants hold: arrivals non-negative and
  /// non-decreasing, sequence numbers dense from 0, sizes positive.  The
  /// constructor establishes ordering/numbering, so this can only fail on
  /// zero-size requests slipping through a generator or parser; simulate()
  /// checks it at entry so bad inputs fail loudly instead of downstream.
  bool validate() const;

  /// Long-run average arrival rate in IOPS (over `duration()`).
  double mean_rate_iops() const;

  /// Peak arrival rate over any window of the given length (IOPS).
  double peak_rate_iops(Time window) const;

  // ---- transforms (all return new traces) ----

  /// Shift every arrival by `delta` (may be negative; resulting arrivals must
  /// remain >= 0).
  Trace shifted(Time delta) const;

  /// Requests with arrival in [from, to).  Arrivals are re-based to 0.
  Trace slice(Time from, Time to) const;

  /// Merge any number of traces into one arrival-ordered trace.  Client ids
  /// are remapped to the index of the source trace.
  static Trace merge(std::span<const Trace> parts);

  /// Scale all inter-arrival gaps by `factor` (> 0): factor < 1 compresses
  /// (higher rate), > 1 stretches.
  Trace time_scaled(double factor) const;

  // ---- I/O ----

  /// CSV columns: arrival_us,client,lba,size_blocks,is_write
  std::string to_csv() const;
  static Trace from_csv(const std::string& text);

 private:
  std::vector<Request> requests_;
};

}  // namespace qos
