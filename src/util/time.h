// Time representation for the burstqos library.
//
// All trace timestamps, deadlines and simulation clocks are integer
// microseconds (`qos::Time`).  Integer ticks keep the event-driven simulator
// deterministic and make equality/ordering of events exact; sub-microsecond
// service-time fractions are handled by util/service_timer.h via error
// diffusion rather than by floating-point clocks.
#pragma once

#include <cstdint>
#include <string>

namespace qos {

/// Time point / duration in microseconds since the start of a trace.
using Time = std::int64_t;

inline constexpr Time kUsPerMs = 1'000;
inline constexpr Time kUsPerSec = 1'000'000;

/// Largest representable time; used as "never" sentinel.
inline constexpr Time kTimeMax = INT64_MAX;

constexpr Time from_ms(double ms) { return static_cast<Time>(ms * kUsPerMs); }
constexpr Time from_sec(double s) { return static_cast<Time>(s * kUsPerSec); }
constexpr double to_ms(Time t) { return static_cast<double>(t) / kUsPerMs; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / kUsPerSec; }

/// Render a time as a short human string ("12.345 ms", "3.2 s").
inline std::string time_to_string(Time t) {
  if (t < kUsPerMs) return std::to_string(t) + " us";
  if (t < kUsPerSec) return std::to_string(to_ms(t)) + " ms";
  return std::to_string(to_sec(t)) + " s";
}

}  // namespace qos
