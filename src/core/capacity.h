// Capacity provisioning (paper Section 2.2).
//
// Given a response-time bound delta, find the minimum server capacity Cmin
// such that RTT guarantees fraction f of the workload meets its deadline.
// The paper performs a deterministic O(log C) binary search over capacity,
// evaluating the RTT-admitted fraction at each probe; we do the same on an
// integer IOPS grid.  Provision Cmin + dC with dC = 1/delta to prevent
// starvation of the overflow class (paper's experimentally sufficient value,
// and exactly the extra capacity that absorbs one in-flight overflow request
// per deadline window — see core/miser.h).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.h"
#include "util/time.h"

namespace qos {

struct CapacityResult {
  double cmin_iops = 0;       ///< least integer capacity meeting the target
  double achieved_fraction = 0;  ///< RTT fraction at cmin_iops
  int probes = 0;             ///< fraction evaluations performed
};

/// Fraction of `trace` that RTT admits to Q1 (and hence guarantees) at
/// capacity `capacity_iops` with deadline `delta`.
double fraction_guaranteed(const Trace& trace, double capacity_iops,
                           Time delta);

/// Binary-search the least integer capacity whose guaranteed fraction is
/// >= `fraction` (in [0, 1]).  `fraction == 1.0` demands zero overflow.
CapacityResult min_capacity(const Trace& trace, double fraction, Time delta);

/// The paper's overflow headroom dC = 1/delta, in IOPS.
double overflow_headroom_iops(Time delta);

/// One point of the capacity-QoS tradeoff curve (paper Section 4.1).
struct CapacityPoint {
  double fraction = 0;
  double cmin_iops = 0;
};

/// The knee curve: Cmin at each requested fraction (sorted ascending).
/// Defaults to the paper's Table 1 fractions.
std::vector<CapacityPoint> capacity_profile(
    const Trace& trace, Time delta,
    std::vector<double> fractions = {0.90, 0.95, 0.99, 0.995, 0.999, 1.0});

}  // namespace qos
