#include "obs/metrics.h"

#include <bit>
#include <cmath>

#include "obs/event.h"

namespace qos {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kArrival: return "arrival";
    case EventKind::kAdmit: return "admit";
    case EventKind::kReject: return "reject";
    case EventKind::kDispatch: return "dispatch";
    case EventKind::kCompletion: return "completion";
    case EventKind::kSlackDispatch: return "slack_dispatch";
    case EventKind::kDiskService: return "disk_service";
    case EventKind::kFaultBegin: return "fault_begin";
    case EventKind::kFaultEnd: return "fault_end";
    case EventKind::kSlowService: return "slow_service";
    case EventKind::kDemote: return "demote";
    case EventKind::kSlaBreach: return "sla_breach";
    case EventKind::kSlaRecover: return "sla_recover";
    case EventKind::kReprovision: return "reprovision";
  }
  QOS_CHECK(false);
}

std::size_t LatencyHistogram::bucket_index(Time value_us) {
  QOS_EXPECTS(value_us >= 0);
  const auto v = static_cast<std::uint64_t>(value_us);
  if (v < static_cast<std::uint64_t>(kSubBuckets)) {
    return static_cast<std::size_t>(v);  // exact unit buckets
  }
  // 2^e <= v < 2^(e+1) with e >= kSubBucketBits; the top kSubBucketBits bits
  // below the leading one select the linear sub-bucket within the octave.
  const int e = 63 - std::countl_zero(v);
  const auto sub = static_cast<std::size_t>(
      (v >> (e - kSubBucketBits)) - static_cast<std::uint64_t>(kSubBuckets));
  return static_cast<std::size_t>(e - kSubBucketBits + 1) *
             static_cast<std::size_t>(kSubBuckets) +
         sub;
}

Time LatencyHistogram::bucket_lower(std::size_t index) {
  const auto sub = static_cast<std::int64_t>(
      index % static_cast<std::size_t>(kSubBuckets));
  const auto octave =
      static_cast<int>(index / static_cast<std::size_t>(kSubBuckets));
  if (octave == 0) return sub;  // unit buckets
  const int e = kSubBucketBits + octave - 1;
  return (kSubBuckets + sub) << (e - kSubBucketBits);
}

Time LatencyHistogram::bucket_upper(std::size_t index) {
  const auto octave =
      static_cast<int>(index / static_cast<std::size_t>(kSubBuckets));
  if (octave == 0) return bucket_lower(index) + 1;
  const int e = kSubBucketBits + octave - 1;
  return bucket_lower(index) + (std::int64_t{1} << (e - kSubBucketBits));
}

void LatencyHistogram::record(Time value_us) {
  if (value_us < 0) value_us = 0;  // clock skew shouldn't crash metrics
  const std::size_t idx = bucket_index(value_us);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  if (count_ == 0 || value_us < min_) min_ = value_us;
  if (count_ == 0 || value_us > max_) max_ = value_us;
  sum_us_ += static_cast<double>(value_us);
  ++count_;
}

Time LatencyHistogram::quantile(double p) const {
  QOS_EXPECTS(p >= 0 && p <= 1);
  if (count_ == 0) return 0;
  if (p == 0) return min_;
  // Nearest rank: the smallest bucket whose cumulative count reaches
  // ceil(p * count).
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count_)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= target) {
      // The last bucket's upper bound can overshoot the exact max.
      const Time upper = bucket_upper(i) - 1;
      return upper > max_ ? max_ : upper;
    }
  }
  return max_;
}

double LatencyHistogram::cdf(Time value_us) const {
  if (count_ == 0) return 0.0;  // no samples, no mass (see try_cdf)
  if (value_us < 0) return 0.0;
  if (value_us >= max_) return 1.0;
  // Count every bucket that lies entirely at or below value_us; the
  // partially covered bucket contributes nothing, matching quantile()'s
  // never-underestimate convention from the other direction.
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (bucket_upper(i) - 1 > value_us) break;
    cum += buckets_[i];
  }
  return static_cast<double>(cum) / static_cast<double>(count_);
}

bool LatencyHistogram::consistent() const {
  std::uint64_t in_buckets = 0;
  for (std::uint64_t b : buckets_) in_buckets += b;
  return in_buckets == count_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  QOS_CHECK(consistent());
  QOS_CHECK(other.consistent());
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size())
    buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  sum_us_ += other.sum_us_;
  count_ += other.count_;
}

void OccupancySeries::merge(const OccupancySeries& other) {
  if (other.empty()) return;
  if (!started_) {
    *this = other;
    return;
  }
  // Both series live on the same virtual clock.  Extend each to the union
  // window's end (a lane holds its current value past its last update and
  // contributes 0 before its first), then sum the integrals.
  const Time union_last = last_ > other.last_ ? last_ : other.last_;
  weighted_sum_ += static_cast<double>(value_) *
                   static_cast<double>(union_last - last_);
  weighted_sum_ += other.weighted_sum_ +
                   static_cast<double>(other.value_) *
                       static_cast<double>(union_last - other.last_);
  if (other.first_ < first_) first_ = other.first_;
  last_ = union_last;
  value_ += other.value_;
  if (other.max_ > max_) max_ = other.max_;  // lower bound on combined peak
}

void MetricRegistry::merge_from(const MetricRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (const auto& [name, g] : other.gauges_) gauges_[name].merge(g);
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
  for (const auto& [name, o] : other.occupancies_) {
    QOS_CHECK(occupancies_.find(name) == occupancies_.end());
    occupancies_.emplace(name, o);
  }
}

void MetricRegistry::fan_in(const MetricRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (const auto& [name, g] : other.gauges_) gauges_[name].merge(g);
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
  for (const auto& [name, o] : other.occupancies_)
    occupancies_[name].merge(o);
}

const Counter* MetricRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const LatencyHistogram* MetricRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const OccupancySeries* MetricRegistry::find_occupancy(
    const std::string& name) const {
  auto it = occupancies_.find(name);
  return it == occupancies_.end() ? nullptr : &it->second;
}

}  // namespace qos
