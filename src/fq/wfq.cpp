#include "fq/wfq.h"

#include <algorithm>

namespace qos {

WfqScheduler::WfqScheduler(std::vector<double> weights) {
  QOS_EXPECTS(!weights.empty());
  flows_.resize(weights.size());
  head_finish_.reset(static_cast<int>(weights.size()));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    QOS_EXPECTS(weights[i] > 0);
    flows_[i].weight = weights[i];
    total_weight_ += weights[i];
  }
}

void WfqScheduler::enqueue(int flow, std::uint64_t handle, double cost,
                           Time) {
  QOS_EXPECTS(flow >= 0 && flow < flow_count());
  QOS_EXPECTS(cost > 0);
  Flow& f = flows_[static_cast<std::size_t>(flow)];
  Item item;
  item.handle = handle;
  item.cost = cost;
  item.finish = std::max(v_, f.last_finish) + cost / f.weight;
  f.last_finish = item.finish;
  const bool was_empty = f.queue.empty();
  f.queue.push_back(item);
  if (was_empty) head_finish_.push(flow, item.finish);
}

std::optional<FqDispatch> WfqScheduler::dequeue(Time) {
  if (head_finish_.empty()) return std::nullopt;
  const int best = head_finish_.top();
  Flow& f = flows_[static_cast<std::size_t>(best)];
  const Item item = f.queue.front();
  f.queue.pop_front();
  // Self-clocked virtual time (SCFQ approximation of GPS time): V tracks
  // the finish tag of the item in service, so a flow waking from idle joins
  // at the current service round rather than being owed its idle history.
  v_ = item.finish;
  if (f.queue.empty())
    head_finish_.pop();
  else
    head_finish_.update(best, f.queue.front().finish);
  return FqDispatch{best, item.handle};
}

bool WfqScheduler::empty() const { return head_finish_.empty(); }

std::size_t WfqScheduler::backlog(int flow) const {
  QOS_EXPECTS(flow >= 0 && flow < flow_count());
  return flows_[static_cast<std::size_t>(flow)].queue.size();
}

}  // namespace qos
