#include "control/harness.h"

#include <algorithm>
#include <memory>

#include "core/capacity.h"
#include "core/multi_tenant.h"
#include "fault/faulty_server.h"
#include "runner/parallel_capacity.h"
#include "sim/server.h"
#include "util/check.h"

namespace qos {

const char* control_mode_name(ControlMode mode) {
  switch (mode) {
    case ControlMode::kStatic: return "static";
    case ControlMode::kLocalDegraded: return "local";
    case ControlMode::kController: return "controller";
  }
  QOS_CHECK(false);
}

ControlOutcome run_control_plane(std::span<const Trace> tenants,
                                 const ControlPlaneConfig& config) {
  QOS_EXPECTS(!tenants.empty());
  QOS_EXPECTS(config.fraction > 0 && config.fraction <= 1);
  QOS_EXPECTS(config.delta > 0);
  QOS_EXPECTS(config.profile_window > 0);
  QOS_EXPECTS(config.capacity_scale > 0);
  QOS_EXPECTS(config.faults.validate());
  const std::size_t n = tenants.size();

  // --- Static plan from the profiling prefix ---------------------------
  // What an operator provisions before deployment: each tenant's Cmin over
  // its first profile_window of traffic.  Regime shifts after the prefix
  // are invisible here — closing that gap is the controller's job.
  std::vector<Trace> prefixes;
  prefixes.reserve(n);
  for (const Trace& t : tenants)
    prefixes.push_back(t.slice(0, config.profile_window));

  std::vector<TenantSpec> specs;
  if (config.pool != nullptr) {
    specs = plan_tenant_specs_parallel(*config.pool, prefixes, config.fraction,
                                       config.delta, config.cache);
  } else {
    ThreadPool serial(1);  // inline; safe even inside another pool's worker
    specs = plan_tenant_specs_parallel(serial, prefixes, config.fraction,
                                       config.delta, config.cache);
  }

  ControlOutcome out;
  std::vector<double> allocations(n);
  double planned_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // An idle profiling prefix can plan 0; every live tenant still needs a
    // positive share for its admission bound to exist.
    allocations[i] = std::max(specs[i].cmin_iops, 1.0);
    planned_total += allocations[i];
  }
  out.total_iops = (planned_total + overflow_headroom_iops(config.delta)) *
                   config.capacity_scale;

  // --- Build the pipeline ---------------------------------------------
  ControlledSchedulerConfig sched_config = config.scheduler;
  sched_config.local_degradation = config.mode == ControlMode::kLocalDegraded;
  ControlledTenantScheduler scheduler(allocations, config.delta,
                                      out.total_iops, sched_config);

  std::unique_ptr<QosController> controller;
  if (config.mode == ControlMode::kController) {
    ControllerConfig ctrl = config.controller;
    ctrl.fraction = config.fraction;
    ctrl.delta = config.delta;
    // The controller always solves serially: this harness is itself a
    // common ThreadPool work item and ThreadPool is not reentrant.
    controller = std::make_unique<QosController>(ctrl, allocations,
                                                 out.total_iops, config.cache,
                                                 nullptr);
  }

  // Tracer chaining mirrors ShapingConfig::wire_sinks: the stream flows
  // through the tracer, which forwards to the plain sink downstream.
  if (config.tracer != nullptr) config.tracer->set_downstream(config.sink);
  EventSink* downstream =
      config.tracer != nullptr ? static_cast<EventSink*>(config.tracer)
                               : config.sink;

  ControlLoopConfig loop_config;
  loop_config.epoch = config.controller.epoch;
  loop_config.sla_fraction = config.fraction;
  loop_config.delta = config.delta;
  loop_config.breach = config.breach;
  ControlLoop loop(loop_config, n, &scheduler, controller.get(), downstream);

  scheduler.attach_observability(&loop, config.registry);

  const Trace merged = Trace::merge(tenants);
  ConstantRateServer server(out.total_iops);
  FaultyServer faulty(server, config.faults);
  Server* servers[] = {&faulty};
  out.sim = simulate(merged, scheduler, servers, &loop);
  faulty.flush_events(out.sim.makespan());

  out.report = build_shaping_report(out.sim, config.delta, config.registry);

  // --- Per-tenant accounting ------------------------------------------
  out.tenants.resize(n);
  std::uint64_t q1_total = 0;
  std::uint64_t q1_misses = 0;
  for (const CompletionRecord& c : out.sim.completions) {
    QOS_CHECK(c.client < n);
    TenantOutcome& t = out.tenants[c.client];
    ++t.requests;
    const bool miss = c.response_time() > config.delta;
    if (miss) ++t.misses;
    if (c.klass == ServiceClass::kPrimary) {
      ++t.q1_completions;
      ++q1_total;
      if (miss) {
        ++t.q1_misses;
        ++q1_misses;
      }
    }
  }
  const Time makespan = out.sim.makespan();
  std::size_t violated = 0;
  for (std::size_t i = 0; i < n; ++i) {
    TenantOutcome& t = out.tenants[i];
    t.within_fraction =
        t.requests == 0 ? 1.0
                        : 1.0 - static_cast<double>(t.misses) /
                                    static_cast<double>(t.requests);
    t.q1_within_fraction =
        t.q1_completions == 0
            ? 1.0
            : 1.0 - static_cast<double>(t.q1_misses) /
                        static_cast<double>(t.q1_completions);
    t.violated = t.q1_within_fraction < config.fraction;
    if (t.violated) ++violated;
    t.breaches = loop.detector(i).breach_count(0);
    t.time_in_breach = loop.detector(i).time_in_breach(0, makespan);
    t.planned_iops = allocations[i];
    t.final_iops = scheduler.allocation(i);
  }
  out.tail_violation_fraction =
      static_cast<double>(violated) / static_cast<double>(n);
  out.q1_miss_fraction =
      q1_total == 0 ? 0.0
                    : static_cast<double>(q1_misses) /
                          static_cast<double>(q1_total);
  out.demotions = scheduler.demotions();
  if (controller != nullptr) {
    const ControllerStats& stats = controller->stats();
    out.epochs = stats.epochs;
    out.applied = stats.applied;
    out.skipped = stats.skipped;
    out.fallbacks = stats.fallbacks;
    out.reprovisions = loop.reprovisions();
  }
  return out;
}

}  // namespace qos
