// Graduated QoS descriptors.
//
// The paper's key pricing/provisioning insight: instead of one worst-case
// response-time guarantee, an SLA is a small distribution of guarantees —
// fraction f1 of requests within delta, the rest best effort (two classes in
// the paper; the types here allow the "or more in general" extension).  A
// GraduatedSla plus a workload profile yields a provisioning plan.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/capacity.h"
#include "sim/completion.h"
#include "trace/trace.h"
#include "util/time.h"

namespace qos {

/// One tier of a graduated SLA: at least `fraction` of all requests complete
/// within `delta`.
struct SlaTier {
  double fraction = 0.9;
  Time delta = from_ms(10);

  /// True when a response time satisfies this tier's bound.  The single
  /// definition shared by the offline audit and the live breach detector
  /// (fault/sla_breach.h) so "within delta" can never drift between them.
  bool within(Time response_time) const { return response_time <= delta; }
};

/// A graduated SLA: ordered tiers, tightest first, with an implicit final
/// best-effort tier covering the remainder.
struct GraduatedSla {
  std::vector<SlaTier> tiers;

  /// True when tiers are sensible: fractions strictly increasing in (0, 1],
  /// deltas strictly increasing (a looser bound guards a larger fraction).
  bool valid() const;
};

/// Provisioning plan for one client under a graduated SLA.
struct ProvisioningPlan {
  double cmin_iops = 0;      ///< capacity that meets every tier
  double headroom_iops = 0;  ///< overflow headroom (1 / tightest delta)
  double total_iops() const { return cmin_iops + headroom_iops; }
  /// Capacity a worst-case (100%, tightest delta) reservation would need.
  double worst_case_iops = 0;
  /// total / worst-case: the provisioning saving from graduation.
  double saving_ratio() const {
    return worst_case_iops == 0 ? 1.0 : total_iops() / worst_case_iops;
  }
};

/// Profile `trace` against `sla`: the plan capacity is the maximum over
/// tiers of Cmin(tier.fraction, tier.delta).
ProvisioningPlan plan_capacity(const Trace& trace, const GraduatedSla& sla);

/// Verdict of checking a simulation result against a graduated SLA.
struct SlaAudit {
  bool satisfied = true;
  /// Achieved fraction within each tier's delta, tier order.
  std::vector<double> achieved;
  /// Worst (most negative) achieved - required margin across tiers.
  double worst_margin = 0;
};

/// Audit completions against every tier of `sla` (tier i passes when the
/// fraction of *all* requests within delta_i is >= fraction_i).
SlaAudit audit_sla(std::span<const CompletionRecord> completions,
                   const GraduatedSla& sla);

}  // namespace qos
