file(REMOVE_RECURSE
  "CMakeFiles/ablation_fq_family.dir/ablation_fq_family.cpp.o"
  "CMakeFiles/ablation_fq_family.dir/ablation_fq_family.cpp.o.d"
  "ablation_fq_family"
  "ablation_fq_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fq_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
