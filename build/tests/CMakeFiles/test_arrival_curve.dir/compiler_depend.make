# Empty compiler generated dependencies file for test_arrival_curve.
# This may be replaced when dependencies are built.
