#include "disk/cache.h"

#include <vector>

namespace qos {

BlockCache::AccessResult BlockCache::access(std::uint64_t lba,
                                            bool is_write) {
  const std::uint64_t tag = lba / line_blocks_;
  AccessResult result;

  auto it = map_.find(tag);
  if (it != map_.end()) {
    result.hit = true;
    ++hits_;
    // Move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    if (is_write && !it->second->dirty) {
      it->second->dirty = true;
      ++dirty_count_;
    }
    return result;
  }

  ++misses_;
  if (map_.size() >= capacity_) {
    // Evict LRU.
    const Line victim = lru_.back();
    map_.erase(victim.tag);
    lru_.pop_back();
    if (victim.dirty) {
      QOS_CHECK(dirty_count_ > 0);
      --dirty_count_;
      ++writebacks_;
      result.writeback = true;
      result.evicted_lba = victim.tag * line_blocks_;
    }
  }
  lru_.push_front(Line{tag, is_write});
  map_[tag] = lru_.begin();
  if (is_write) ++dirty_count_;
  return result;
}

std::vector<std::uint64_t> BlockCache::lines_of(
    std::uint64_t lba, std::uint32_t size_blocks) const {
  std::vector<std::uint64_t> lines;
  const std::uint64_t first = lba / line_blocks_;
  const std::uint64_t last =
      (lba + (size_blocks == 0 ? 0 : size_blocks - 1)) / line_blocks_;
  for (std::uint64_t tag = first; tag <= last; ++tag)
    lines.push_back(tag * line_blocks_);
  return lines;
}

}  // namespace qos
