# Empty dependencies file for test_disk_qos.
# This may be replaced when dependencies are built.
