# Empty compiler generated dependencies file for test_pclock.
# This may be replaced when dependencies are built.
