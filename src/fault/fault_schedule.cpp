#include "fault/fault_schedule.h"

#include <algorithm>

#include "util/check.h"

namespace qos {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kCapacityLoss: return "capacity_loss";
    case FaultKind::kStall: return "stall";
    case FaultKind::kLatencySpike: return "latency_spike";
  }
  QOS_CHECK(false);
}

namespace {

bool severity_in_range(const FaultWindow& w) {
  switch (w.kind) {
    case FaultKind::kCapacityLoss:
      return w.severity >= 0 && w.severity < 1;
    case FaultKind::kStall:
      return true;
    case FaultKind::kLatencySpike:
      return w.severity >= 0;
  }
  return false;
}

}  // namespace

FaultySchedule::FaultySchedule(std::vector<FaultWindow> windows) {
  std::erase_if(windows, [](const FaultWindow& w) { return w.empty(); });
  std::sort(windows.begin(), windows.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              return a.begin < b.begin;
            });
  windows_ = std::move(windows);
  QOS_EXPECTS(validate());
}

void FaultySchedule::insert(FaultWindow w) {
  if (w.empty()) return;  // zero-length windows are no-ops, not errors
  windows_.push_back(w);
  std::sort(windows_.begin(), windows_.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              return a.begin < b.begin;
            });
  QOS_EXPECTS(validate());
}

FaultySchedule& FaultySchedule::brownout(Time begin, Time end,
                                         double capacity_loss) {
  insert({begin, end, FaultKind::kCapacityLoss, capacity_loss});
  return *this;
}

FaultySchedule& FaultySchedule::stall(Time begin, Time end) {
  insert({begin, end, FaultKind::kStall, 0});
  return *this;
}

FaultySchedule& FaultySchedule::latency_spike(Time begin, Time end,
                                              Time extra_us) {
  insert({begin, end, FaultKind::kLatencySpike,
          static_cast<double>(extra_us)});
  return *this;
}

FaultySchedule FaultySchedule::random(const RandomFaultSpec& spec,
                                      std::uint64_t seed) {
  QOS_EXPECTS(spec.count >= 0);
  QOS_EXPECTS(spec.min_duration > 0 &&
              spec.min_duration <= spec.max_duration);
  QOS_EXPECTS(spec.min_severity >= 0 && spec.min_severity < 1);
  QOS_EXPECTS(spec.max_severity >= spec.min_severity &&
              spec.max_severity < 1);
  QOS_EXPECTS(spec.stall_prob + spec.spike_prob <= 1.0);

  Rng rng(seed);
  std::vector<FaultWindow> windows;
  Time cursor = 0;
  for (int i = 0; i < spec.count; ++i) {
    // Leave a random healthy gap, then place the next window; stop once the
    // horizon is exhausted rather than overlapping.
    const Time gap = rng.uniform_int(1, std::max<Time>(1, spec.horizon /
                                                              (2 * spec.count)));
    const Time begin = cursor + gap;
    const Time duration =
        rng.uniform_int(spec.min_duration, spec.max_duration);
    if (begin + duration > spec.horizon) break;
    FaultWindow w{begin, begin + duration, FaultKind::kCapacityLoss, 0};
    const double kind_draw = rng.next_double();
    if (kind_draw < spec.stall_prob) {
      w.kind = FaultKind::kStall;
    } else if (kind_draw < spec.stall_prob + spec.spike_prob) {
      w.kind = FaultKind::kLatencySpike;
      w.severity = static_cast<double>(spec.spike_extra_us);
    } else {
      w.severity = rng.uniform(spec.min_severity, spec.max_severity);
    }
    windows.push_back(w);
    cursor = w.end;
  }
  return FaultySchedule(std::move(windows));
}

FaultySchedule FaultySchedule::shifted(Time offset) const {
  std::vector<FaultWindow> windows;
  windows.reserve(windows_.size());
  for (FaultWindow w : windows_) {
    w.begin += offset;
    w.end += offset;
    if (w.end <= 0) continue;       // entirely before the origin: dropped
    if (w.begin < 0) w.begin = 0;   // straddling the origin: clipped
    windows.push_back(w);
  }
  return FaultySchedule(std::move(windows));
}

FaultySchedule FaultySchedule::merged(const FaultySchedule& a,
                                      const FaultySchedule& b) {
  std::vector<FaultWindow> windows = a.windows_;
  windows.insert(windows.end(), b.windows_.begin(), b.windows_.end());
  return FaultySchedule(std::move(windows));
}

const FaultWindow* FaultySchedule::active_at(Time t) const {
  // First window with begin > t, then step back one.
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), t,
      [](Time value, const FaultWindow& w) { return value < w.begin; });
  if (it == windows_.begin()) return nullptr;
  --it;
  return it->contains(t) ? &*it : nullptr;
}

bool FaultySchedule::validate() const {
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    const FaultWindow& w = windows_[i];
    if (w.empty() || w.begin < 0) return false;
    if (!severity_in_range(w)) return false;
    if (i > 0 && w.begin < windows_[i - 1].end) return false;
  }
  return true;
}

}  // namespace qos
