# Empty compiler generated dependencies file for fig7_same_multiplex.
# This may be replaced when dependencies are built.
