# Empty dependencies file for test_clook.
# This may be replaced when dependencies are built.
