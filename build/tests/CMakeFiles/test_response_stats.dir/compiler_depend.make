# Empty compiler generated dependencies file for test_response_stats.
# This may be replaced when dependencies are built.
