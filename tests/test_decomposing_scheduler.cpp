// Direct tests of the shared RTT-admission scheduler base: live census,
// classification hook, and queue accessors.
#include "core/decomposing_scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace qos {
namespace {

// Minimal concrete policy: strict Q1-then-Q2 priority, recording every
// classification the base reports.
class ProbeScheduler final : public DecomposingScheduler {
 public:
  ProbeScheduler(double cmin, Time delta)
      : DecomposingScheduler(cmin, delta) {}

  int server_count() const override { return 1; }

  std::optional<Dispatch> next_for(int, Time now) override {
    if (auto d = pop_q1(now)) return d;
    return pop_q2(now);
  }

  std::vector<std::pair<std::uint64_t, ServiceClass>> classified;

 protected:
  void on_classified(const Request& r, ServiceClass klass, Time) override {
    classified.emplace_back(r.seq, klass);
  }
};

Request req(std::uint64_t seq, Time arrival = 0) {
  return Request{.arrival = arrival, .seq = seq};
}

TEST(DecomposingScheduler, CensusCountsPendingIncludingInService) {
  ProbeScheduler s(200, 10'000);  // maxQ1 = 2
  EXPECT_EQ(s.max_q1(), 2);
  s.on_arrival(req(0), 0);
  s.on_arrival(req(1), 0);
  EXPECT_EQ(s.len_q1(), 2);
  EXPECT_EQ(s.q1_queued(), 2u);

  // Dispatch removes from the queue but the census keeps counting the
  // in-service request until completion.
  (void)s.next_for(0, 0);
  EXPECT_EQ(s.q1_queued(), 1u);
  EXPECT_EQ(s.len_q1(), 2);

  // Queue full: next arrival overflows even though only one is queued.
  s.on_arrival(req(2), 10);
  EXPECT_EQ(s.q2_queued(), 1u);

  // Completion frees a slot.
  s.on_complete(req(0), ServiceClass::kPrimary, 0, 5'000);
  EXPECT_EQ(s.len_q1(), 1);
  s.on_arrival(req(3), 5'000);
  EXPECT_EQ(s.len_q1(), 2);
  EXPECT_EQ(s.q2_queued(), 1u);
}

TEST(DecomposingScheduler, HookSeesEveryClassification) {
  ProbeScheduler s(100, 10'000);  // maxQ1 = 1
  s.on_arrival(req(0), 0);
  s.on_arrival(req(1), 0);
  s.on_arrival(req(2), 0);
  ASSERT_EQ(s.classified.size(), 3u);
  EXPECT_EQ(s.classified[0],
            (std::pair<std::uint64_t, ServiceClass>{0, ServiceClass::kPrimary}));
  EXPECT_EQ(s.classified[1].second, ServiceClass::kOverflow);
  EXPECT_EQ(s.classified[2].second, ServiceClass::kOverflow);
}

TEST(DecomposingScheduler, OverflowCompletionDoesNotTouchCensus) {
  ProbeScheduler s(100, 10'000);
  s.on_arrival(req(0), 0);
  s.on_arrival(req(1), 0);  // overflow
  EXPECT_EQ(s.len_q1(), 1);
  s.on_complete(req(1), ServiceClass::kOverflow, 0, 1'000);
  EXPECT_EQ(s.len_q1(), 1);
}

TEST(DecomposingScheduler, PopOrderIsFifoPerClass) {
  ProbeScheduler s(300, 10'000);  // maxQ1 = 3
  for (std::uint64_t i = 0; i < 5; ++i) s.on_arrival(req(i), 0);
  // 3 primary (0,1,2), 2 overflow (3,4); strict priority pops 0,1,2,3,4.
  for (std::uint64_t expect = 0; expect < 5; ++expect) {
    auto d = s.next_for(0, 0);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->request.seq, expect);
  }
  EXPECT_FALSE(s.next_for(0, 0).has_value());
}

TEST(DecomposingSchedulerDeath, CompletionUnderflowCaught) {
  ProbeScheduler s(100, 10'000);
  EXPECT_DEATH(s.on_complete(req(0), ServiceClass::kPrimary, 0, 0),
               "Invariant");
}

}  // namespace
}  // namespace qos
