# Empty compiler generated dependencies file for ablation_fq_family.
# This may be replaced when dependencies are built.
