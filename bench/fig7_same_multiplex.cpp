// Reproduces Figure 7: capacity required when multiplexing two copies of the
// *same* workload (WS+WS, FT+FT, OM+OM), delta = 10 ms.
//
//   (a) traditional 100% provisioning: estimate (2x individual Cmin) vs the
//       capacity actually needed when one copy is shifted by 1 s / 100 s —
//       the estimate over-provisions badly;
//   (b,c) after 90% / 95% decomposition the estimate is accurate.
#include <cstdio>

#include "core/capacity.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

void run_panel(double fraction) {
  const Time delta = from_ms(10);
  if (fraction == 1.0)
    std::printf("-- (a) traditional 100%% combine --\n");
  else
    std::printf("-- %.0f%% decomposition combine --\n", 100 * fraction);
  AsciiTable table;
  table.add("Workloads", "Estimate", "Shift-1s", "ratio", "Shift-100s",
            "ratio");
  for (Workload w : {Workload::kWebSearch, Workload::kFinTrans,
                     Workload::kOpenMail}) {
    const Trace trace = preset_trace(w);
    const double individual = min_capacity(trace, fraction, delta).cmin_iops;
    const double estimate = 2 * individual;

    auto actual_for_shift = [&](Time shift) {
      // Paper: "one workload is shifted in time by 1 or 100 seconds, then
      // merged with the other" — the copy keeps its shape, delayed by the
      // shift (the merged trace is `shift` longer).
      const Trace clients[] = {trace, trace.shifted(shift)};
      const Trace merged = Trace::merge(clients);
      return min_capacity(merged, fraction, delta).cmin_iops;
    };
    const double shift1 = actual_for_shift(1 * kUsPerSec);
    const double shift100 = actual_for_shift(100 * kUsPerSec);
    const std::string name =
        workload_name(w) + " + " + workload_name(w);
    table.add(name, format_double(estimate, 0), format_double(shift1, 0),
              format_double(shift1 / estimate, 2),
              format_double(shift100, 0),
              format_double(shift100 / estimate, 2));
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("Figure 7: capacity for multiplexing identical workloads\n\n");
  run_panel(1.0);
  run_panel(0.90);
  run_panel(0.95);
  return 0;
}
