// Reproduces Figure 8: capacity required when multiplexing *different*
// workload pairs (WS+FT, FT+OM, OM+WS), delta = 10 ms.
//
//   (a) traditional 100% provisioning: sum-of-individual estimate vs the
//       real requirement of the merged trace (multiplexing gains);
//   (b,c) after 90% / 95% decomposition the estimate tracks the real value
//         closely (paper: errors of 0.05%-6%).
//
// Execution engine: each panel row is a consolidate_parallel call — the two
// per-client searches and the merged-trace search run concurrently, and
// repeated runs replay from the result cache (the individual Cmins are
// shared across panels only through the cache, keeping each report's math
// identical to serial consolidate()).
#include <cstdio>

#include "core/consolidation.h"
#include "core/statistical.h"
#include "runner/bench_io.h"
#include "runner/parallel_capacity.h"
#include "runner/thread_pool.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

constexpr std::pair<Workload, Workload> kPairs[] = {
    {Workload::kWebSearch, Workload::kFinTrans},
    {Workload::kFinTrans, Workload::kOpenMail},
    {Workload::kOpenMail, Workload::kWebSearch}};
constexpr double kFractions[] = {1.0, 0.90, 0.95};

// Related-work baseline (paper Section 5): Gaussian statistical envelopes.
// No deadline semantics — it bounds per-second demand overflow probability —
// so it under-provisions for tight deadlines while showing the same
// multiplexing gain the decomposition estimate captures with guarantees.
void run_statistical_baseline() {
  std::printf("-- statistical-envelope baseline (eps = 10%%, 1 s windows) --\n");
  AsciiTable table;
  table.add("Workloads", "sum of individual", "pooled Gaussian", "gain");
  for (const auto& [w1, w2] : kPairs) {
    const auto e1 = statistical_capacity(preset_trace(w1), kUsPerSec, 0.10);
    const auto e2 = statistical_capacity(preset_trace(w2), kUsPerSec, 0.10);
    const auto pooled = statistical_multiplex({e1, e2}, 0.10);
    const double sum = e1.capacity_iops + e2.capacity_iops;
    table.add(workload_name(w1) + " + " + workload_name(w2),
              format_double(sum, 0), format_double(pooled.capacity_iops, 0),
              format_double(100 * (1 - pooled.capacity_iops / sum), 1) + "%");
  }
  std::printf("%s\n", table.to_string().c_str());
}

void run(const BenchOptions& options) {
  const double t0 = bench_now_seconds();
  std::printf("Figure 8: capacity for multiplexing different workloads\n\n");
  const Time delta = from_ms(10);

  ThreadPool pool(options.threads);
  auto cache = options.make_cache();
  std::uint64_t consolidations = 0;

  for (double fraction : kFractions) {
    if (fraction == 1.0)
      std::printf("-- (a) traditional 100%% combine --\n");
    else
      std::printf("-- %.0f%% decomposition combine --\n", 100 * fraction);

    AsciiTable table;
    table.add("Workloads", "Estimate", "Real", "ratio", "rel.err");
    for (const auto& [w1, w2] : kPairs) {
      ProfileScope scope(options.profile.get(), "fig8.consolidate");
      const Trace clients[] = {preset_trace(w1), preset_trace(w2)};
      ConsolidationReport report =
          consolidate_parallel(pool, clients, fraction, delta, cache.get());
      ++consolidations;
      table.add(workload_name(w1) + " + " + workload_name(w2),
                format_double(report.estimate_iops, 0),
                format_double(report.actual_iops, 0),
                format_double(report.ratio(), 2),
                format_double(100 * report.relative_error(), 1) + "%");
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  run_statistical_baseline();

  BenchTiming timing;
  timing.name = options.bench_name;
  timing.wall_seconds = bench_now_seconds() - t0;
  timing.cells = consolidations * 3;  // per-client x2 + merged searches
  timing.cache_hits = cache ? cache->stats().hits : 0;
  timing.rows = consolidations + std::size(kPairs);
  timing.threads = pool.thread_count();
  write_bench_json(options, timing);
}

}  // namespace

int main(int argc, char** argv) {
  run(parse_bench_args(argc, argv, "fig8_diff_multiplex"));
  return 0;
}
