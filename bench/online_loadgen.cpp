// Wall-clock load generator for online::Shaper.  Emits BENCH_online.json.
//
// Measures the admission hot path the way a serving front-end would pay
// for it: N worker threads hammer one Shaper (SteadyClock, real mutex
// contention) with arrivals drawn from an MMPP preset or an SPC trace,
// and each decision's latency is sampled around the admit call.  Per
// policy the harness runs
//
//   single  admit() once per request — the per-request price, and
//   batch   admit_batch() over clusters of --batch — the amortized price,
//
// each reporting decisions/sec and admission p50/p99/p999 ns.  A closed
// loop (default) measures saturation throughput; --target-iops paces an
// open loop that keeps the trace's inter-arrival shape.
//
// Decisions/sec on an arbitrary CI runner gates the runner, not the code,
// so the JSON also carries an in-process calibration rate — a loop of the
// fixed costs every admission pays (steady-clock read, uncontended
// lock/unlock, counter update) measured moments before the runs — and each
// mode's `normalized` throughput (decisions per calibration op).
// scripts/check_perf.py --online gates that ratio against
// bench/BENCH_online.baseline.json; see README "Perf baseline".
//
// --load-curve adds the latency-under-load sweep: after the closed-loop
// saturation measurement, the open-loop pacer replays the trace at a
// ladder of offered loads (fractions of the measured saturation rate) and
// reports each point's achieved decisions/sec and admission p50/p99 — the
// classic hockey-stick curve, emitted as "load_curve" in the JSON.  Each
// point is sized to ~2 s of pacing so the sweep stays bounded on any
// machine.  The curve is measured for one policy (miser when selected,
// the paper's headline recombinator; otherwise the first --policy).
//
// usage: online_loadgen [--policy fcfs|split|fq|miser|all] [--workload WS|FT|OM]
//                       [--spc PATH] [--requests N] [--threads T] [--batch B]
//                       [--target-iops X] [--drain-iops X] [--seed S]
//                       [--repeats R] [--json PATH] [--load-curve]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "core/capacity.h"
#include "online/loadgen.h"
#include "online/shaper.h"
#include "trace/presets.h"
#include "trace/spc.h"
#include "trace/trace.h"
#include "util/clock.h"

namespace {

using namespace qos;
using namespace qos::online;

volatile std::uint64_t g_sink = 0;

struct Options {
  std::string policy = "all";
  std::string workload = "WS";
  std::string spc_path;
  std::uint64_t requests = 200'000;
  int threads = 4;
  std::uint64_t batch = 64;
  double target_iops = 0;
  double drain_iops = 0;
  std::uint64_t seed = 0;
  int repeats = 3;
  std::string json_path = "BENCH_online.json";
  bool load_curve = false;
};

[[noreturn]] void usage_abort() {
  std::fprintf(
      stderr,
      "usage: online_loadgen [--policy fcfs|split|fq|miser|all]\n"
      "                      [--workload WS|FT|OM] [--spc PATH]\n"
      "                      [--requests N] [--threads T] [--batch B]\n"
      "                      [--target-iops X] [--drain-iops X] [--seed S]\n"
      "                      [--repeats R] [--json PATH] [--load-curve]\n");
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_abort();
      return argv[++i];
    };
    if (std::strcmp(a, "--policy") == 0) {
      o.policy = value();
    } else if (std::strcmp(a, "--workload") == 0) {
      o.workload = value();
    } else if (std::strcmp(a, "--spc") == 0) {
      o.spc_path = value();
    } else if (std::strcmp(a, "--requests") == 0) {
      o.requests = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(a, "--threads") == 0) {
      o.threads = std::atoi(value());
    } else if (std::strcmp(a, "--batch") == 0) {
      o.batch = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(a, "--target-iops") == 0) {
      o.target_iops = std::atof(value());
    } else if (std::strcmp(a, "--drain-iops") == 0) {
      o.drain_iops = std::atof(value());
    } else if (std::strcmp(a, "--seed") == 0) {
      o.seed = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(a, "--repeats") == 0) {
      o.repeats = std::atoi(value());
    } else if (std::strcmp(a, "--json") == 0) {
      o.json_path = value();
    } else if (std::strcmp(a, "--load-curve") == 0) {
      o.load_curve = true;
    } else {
      usage_abort();
    }
  }
  if (o.requests == 0 || o.threads < 1 || o.batch < 1 || o.repeats < 1)
    usage_abort();
  return o;
}

struct PolicyEntry {
  const char* key;
  Policy policy;
};

constexpr PolicyEntry kPolicies[] = {
    {"fcfs", Policy::kFcfs},
    {"split", Policy::kSplit},
    {"fq", Policy::kFairQueue},
    {"miser", Policy::kMiser},
};

Trace load_arrivals(const Options& o) {
  if (!o.spc_path.empty()) {
    auto loaded = try_load_spc_file(o.spc_path);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "online_loadgen: cannot load SPC trace %s\n",
                   o.spc_path.c_str());
      std::exit(1);
    }
    return *std::move(loaded);
  }
  Workload w = Workload::kWebSearch;
  if (o.workload == "WS") {
    w = Workload::kWebSearch;
  } else if (o.workload == "FT") {
    w = Workload::kFinTrans;
  } else if (o.workload == "OM") {
    w = Workload::kOpenMail;
  } else {
    usage_abort();
  }
  // 60 s of arrivals: enough burst structure to shape against, cheap to
  // profile; the generator cycles it to reach --requests.
  return preset_trace(w, 60 * kUsPerSec, o.seed);
}

// Fixed costs every admission pays, measured in-process moments before the
// runs: one steady-clock read plus one uncontended lock/unlock and a
// counter update per op.  decisions/sec divided by this rate is the
// machine-normalized throughput check_perf.py gates.
double calibration_ops_per_sec(int repeats) {
  constexpr std::uint64_t kOps = 2'000'000;
  std::mutex m;
  double best = 0;
  for (int r = 0; r < repeats; ++r) {
    std::uint64_t acc = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < kOps; ++i) {
      const auto now = std::chrono::steady_clock::now();
      std::lock_guard<std::mutex> lock(m);
      acc += static_cast<std::uint64_t>(now.time_since_epoch().count());
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    g_sink = g_sink ^ acc;
    best = std::max(best, static_cast<double>(kOps) / elapsed);
  }
  return best;
}

struct ModeResult {
  LoadGenResult best;  ///< the repeat with the highest decisions/sec
};

ModeResult run_mode(const Options& o, const Trace& arrivals, double cmin,
                    Policy policy, std::uint64_t batch) {
  ModeResult out;
  for (int r = 0; r < o.repeats; ++r) {
    ShaperOptions so;
    so.shaping.policy = policy;
    so.cmin_iops = cmin;
    SteadyClock clock;
    Shaper shaper(so, clock);

    LoadGenOptions lg;
    lg.threads = o.threads;
    lg.requests = o.requests;
    lg.target_iops = o.target_iops;
    lg.batch = batch;
    lg.drain_iops = o.drain_iops;
    const LoadGenResult result = run_loadgen(shaper, arrivals, lg);
    if (result.decisions_per_sec > out.best.decisions_per_sec)
      out.best = result;
  }
  return out;
}

void print_row(const char* policy, const char* mode, const LoadGenResult& r) {
  std::printf("%-6s %-7s %12.0f dec/s %8llu q1 %8llu q2 %6llu shed "
              "p50 %6llu ns  p99 %8llu ns  p999 %8llu ns\n",
              policy, mode, r.decisions_per_sec,
              static_cast<unsigned long long>(r.admitted_q1),
              static_cast<unsigned long long>(r.admitted_q2),
              static_cast<unsigned long long>(r.shed),
              static_cast<unsigned long long>(r.p50_ns),
              static_cast<unsigned long long>(r.p99_ns),
              static_cast<unsigned long long>(r.p999_ns));
}

struct CurvePoint {
  double multiplier = 0;    ///< fraction of the measured saturation rate
  double offered_iops = 0;  ///< the open-loop pacing target
  LoadGenResult result;
};

// Latency-under-load: pace the open loop at a ladder of fractions of the
// measured closed-loop saturation rate.  Each point issues ~2 s worth of
// paced arrivals (clamped to [20k, --requests]) so a slow or fast machine
// sweeps in comparable wall time; the pacer keeps the trace's
// inter-arrival shape at every point, so rising p99 is queue-state and
// contention, not burst-shape change.
std::vector<CurvePoint> run_load_curve(const Options& o,
                                       const Trace& arrivals, double cmin,
                                       Policy policy, double saturation) {
  constexpr double kMultipliers[] = {0.10, 0.25, 0.50, 0.75, 0.90};
  std::vector<CurvePoint> points;
  for (double mult : kMultipliers) {
    CurvePoint p;
    p.multiplier = mult;
    p.offered_iops = mult * saturation;
    const double budget = 2.0 * p.offered_iops;  // ~2 s of pacing
    const std::uint64_t requests = static_cast<std::uint64_t>(std::clamp(
        budget, 20'000.0, static_cast<double>(o.requests)));

    ShaperOptions so;
    so.shaping.policy = policy;
    so.cmin_iops = cmin;
    SteadyClock clock;
    Shaper shaper(so, clock);

    LoadGenOptions lg;
    lg.threads = o.threads;
    lg.requests = requests;
    lg.target_iops = p.offered_iops;
    lg.batch = 1;
    lg.drain_iops = o.drain_iops;
    p.result = run_loadgen(shaper, arrivals, lg);
    points.push_back(p);
  }
  return points;
}

void json_mode(std::FILE* f, const char* mode, const LoadGenResult& r,
               double calibration, bool last) {
  std::fprintf(f,
               "    \"%s\": {\"decisions_per_sec\": %.0f, "
               "\"normalized\": %.4f, \"p50_ns\": %llu, \"p99_ns\": %llu, "
               "\"p999_ns\": %llu, \"q1\": %llu, \"q2\": %llu, "
               "\"shed\": %llu}%s\n",
               mode, r.decisions_per_sec, r.decisions_per_sec / calibration,
               static_cast<unsigned long long>(r.p50_ns),
               static_cast<unsigned long long>(r.p99_ns),
               static_cast<unsigned long long>(r.p999_ns),
               static_cast<unsigned long long>(r.admitted_q1),
               static_cast<unsigned long long>(r.admitted_q2),
               static_cast<unsigned long long>(r.shed), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse_args(argc, argv);

  std::vector<PolicyEntry> selected;
  for (const PolicyEntry& e : kPolicies)
    if (options.policy == "all" || options.policy == e.key)
      selected.push_back(e);
  if (selected.empty()) usage_abort();

  const Trace arrivals = load_arrivals(options);
  // One profiling pass shared by every policy, exactly what an offline
  // planner would hand an online deployment.
  ShapingConfig probe_config;
  const double cmin =
      min_capacity(arrivals, probe_config.fraction, probe_config.delta)
          .cmin_iops;
  const double calibration = calibration_ops_per_sec(options.repeats);
  std::fprintf(stderr,
               "online_loadgen: %zu arrivals, cmin %.0f IOPS, calibration "
               "%.0f ops/s\n",
               arrivals.size(), cmin, calibration);

  struct PolicyResult {
    const char* key;
    ModeResult single;
    ModeResult batch;
  };
  std::vector<PolicyResult> results;
  for (const PolicyEntry& e : selected) {
    PolicyResult pr{e.key, {}, {}};
    pr.single = run_mode(options, arrivals, cmin, e.policy, 1);
    pr.batch = run_mode(options, arrivals, cmin, e.policy, options.batch);
    print_row(e.key, "single", pr.single.best);
    print_row(e.key, "batch", pr.batch.best);
    results.push_back(pr);
  }

  std::vector<CurvePoint> curve;
  const char* curve_policy = nullptr;
  if (options.load_curve) {
    // Prefer miser (the paper's recombinator) when it was measured.
    const PolicyResult* base = &results.front();
    for (const PolicyResult& pr : results)
      if (std::strcmp(pr.key, "miser") == 0) base = &pr;
    curve_policy = base->key;
    Policy policy = Policy::kMiser;
    for (const PolicyEntry& e : kPolicies)
      if (std::strcmp(e.key, curve_policy) == 0) policy = e.policy;
    const double saturation = base->single.best.decisions_per_sec;
    curve = run_load_curve(options, arrivals, cmin, policy, saturation);
    std::printf("load curve (%s, saturation %.0f dec/s):\n", curve_policy,
                saturation);
    for (const CurvePoint& p : curve)
      std::printf("  %4.0f%%  offered %12.0f  achieved %12.0f dec/s  "
                  "p50 %6llu ns  p99 %8llu ns\n",
                  100 * p.multiplier, p.offered_iops,
                  p.result.decisions_per_sec,
                  static_cast<unsigned long long>(p.result.p50_ns),
                  static_cast<unsigned long long>(p.result.p99_ns));
  }

  std::FILE* f = std::fopen(options.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "online_loadgen: cannot write %s\n",
                 options.json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"name\": \"online\",\n");
  std::fprintf(f, "  \"requests\": %llu,\n",
               static_cast<unsigned long long>(options.requests));
  std::fprintf(f, "  \"threads\": %d,\n", options.threads);
  std::fprintf(f, "  \"batch\": %llu,\n",
               static_cast<unsigned long long>(options.batch));
  std::fprintf(f, "  \"workload\": \"%s\",\n",
               options.spc_path.empty() ? options.workload.c_str() : "spc");
  std::fprintf(f, "  \"target_iops\": %.0f,\n", options.target_iops);
  std::fprintf(f, "  \"calibration_ops_per_sec\": %.0f,\n", calibration);
  std::fprintf(f, "  \"policies\": {\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f, "  \"%s\": {\n", results[i].key);
    json_mode(f, "single", results[i].single.best, calibration, false);
    json_mode(f, "batch", results[i].batch.best, calibration, true);
    std::fprintf(f, "  }%s\n", i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  }%s\n", curve.empty() ? "" : ",");
  if (!curve.empty()) {
    std::fprintf(f, "  \"load_curve\": {\n");
    std::fprintf(f, "    \"policy\": \"%s\",\n", curve_policy);
    std::fprintf(f, "    \"points\": [\n");
    for (std::size_t i = 0; i < curve.size(); ++i) {
      const CurvePoint& p = curve[i];
      std::fprintf(
          f,
          "      {\"multiplier\": %.2f, \"offered_iops\": %.0f, "
          "\"achieved_dps\": %.0f, \"p50_ns\": %llu, \"p99_ns\": %llu, "
          "\"p999_ns\": %llu, \"q1\": %llu, \"q2\": %llu, "
          "\"shed\": %llu}%s\n",
          p.multiplier, p.offered_iops, p.result.decisions_per_sec,
          static_cast<unsigned long long>(p.result.p50_ns),
          static_cast<unsigned long long>(p.result.p99_ns),
          static_cast<unsigned long long>(p.result.p999_ns),
          static_cast<unsigned long long>(p.result.admitted_q1),
          static_cast<unsigned long long>(p.result.admitted_q2),
          static_cast<unsigned long long>(p.result.shed),
          i + 1 == curve.size() ? "" : ",");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  }\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::fprintf(stderr, "online_loadgen: wrote %s\n",
               options.json_path.c_str());
  return 0;
}
