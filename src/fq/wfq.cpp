#include "fq/wfq.h"

#include <algorithm>

namespace qos {

WfqScheduler::WfqScheduler(std::vector<double> weights) {
  QOS_EXPECTS(!weights.empty());
  for (const double w : weights) {
    QOS_EXPECTS(w > 0);
    total_weight_ += w;
  }
  flow_count_ = static_cast<int>(weights.size());
  dense_weights_ = std::move(weights);
  head_finish_.reset(flow_count_);
}

WfqScheduler WfqScheduler::uniform(int flow_count, double weight) {
  QOS_EXPECTS(flow_count > 0);
  QOS_EXPECTS(weight > 0);
  WfqScheduler s;
  s.flow_count_ = flow_count;
  s.uniform_weight_ = weight;
  s.total_weight_ = weight * flow_count;
  s.head_finish_.reset(flow_count);
  return s;
}

std::uint32_t WfqScheduler::activate(int flow) {
  const std::uint32_t slot = index_.find_or_insert(flow);
  if (slot == state_.size()) {
    state_.emplace_back();
    state_.back().weight = weight_of(flow);
  }
  return slot;
}

void WfqScheduler::enqueue(int flow, std::uint64_t handle, double cost,
                           Time) {
  QOS_EXPECTS(flow >= 0 && flow < flow_count_);
  QOS_EXPECTS(cost > 0);
  const std::uint32_t slot = activate(flow);
  FlowState& f = state_[slot];
  Item item;
  item.handle = handle;
  item.cost = cost;
  item.finish = std::max(v_, f.last_finish) + cost / f.weight;
  f.last_finish = item.finish;
  const bool was_empty = f.queue.empty();
  f.queue.push_back(item);
  if (was_empty)
    head_finish_.push(static_cast<int>(slot), TagKey{item.finish, flow});
}

std::optional<FqDispatch> WfqScheduler::dequeue(Time) {
  if (head_finish_.empty()) return std::nullopt;
  const int slot = head_finish_.top();
  const int flow = head_finish_.top_key().second;
  FlowState& f = state_[static_cast<std::size_t>(slot)];
  const Item item = f.queue.front();
  f.queue.pop_front();
  // Self-clocked virtual time (SCFQ approximation of GPS time): V tracks
  // the finish tag of the item in service, so a flow waking from idle joins
  // at the current service round rather than being owed its idle history.
  v_ = item.finish;
  if (f.queue.empty())
    head_finish_.pop();
  else
    head_finish_.update(slot, TagKey{f.queue.front().finish, flow});
  return FqDispatch{flow, item.handle};
}

bool WfqScheduler::empty() const { return head_finish_.empty(); }

std::size_t WfqScheduler::backlog(int flow) const {
  QOS_EXPECTS(flow >= 0 && flow < flow_count_);
  const std::uint32_t slot = index_.find(flow);
  return slot == FlatSlotMap::kNoSlot ? 0 : state_[slot].queue.size();
}

std::size_t WfqScheduler::approx_memory_bytes() const {
  std::size_t queues = 0;
  for (const FlowState& f : state_) queues += f.queue.capacity() * sizeof(Item);
  return index_.memory_bytes() + state_.capacity() * sizeof(FlowState) +
         queues + head_finish_.memory_bytes() +
         dense_weights_.capacity() * sizeof(double);
}

}  // namespace qos
