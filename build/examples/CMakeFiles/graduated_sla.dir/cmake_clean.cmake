file(REMOVE_RECURSE
  "CMakeFiles/graduated_sla.dir/graduated_sla.cpp.o"
  "CMakeFiles/graduated_sla.dir/graduated_sla.cpp.o.d"
  "graduated_sla"
  "graduated_sla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graduated_sla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
