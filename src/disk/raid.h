// RAID address mapping — pure layout logic for striped arrays.
//
// Maps an array-logical block address onto (disk index, disk-local LBA) for
// RAID-0 (striping), RAID-1 (mirroring over stripe pairs) and RAID-5
// (left-symmetric rotating parity).  Pure functions of the geometry — no
// state — so the mapping is exhaustively unit-testable and shared by the
// multi-disk scheduler.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace qos {

enum class RaidLevel { kRaid0, kRaid1, kRaid5 };

struct RaidGeometry {
  RaidLevel level = RaidLevel::kRaid0;
  int disks = 4;
  std::uint32_t stripe_blocks = 128;  ///< stripe unit in 512 B blocks

  bool valid() const {
    if (stripe_blocks == 0) return false;
    switch (level) {
      case RaidLevel::kRaid0: return disks >= 2;
      case RaidLevel::kRaid1: return disks >= 2 && disks % 2 == 0;
      case RaidLevel::kRaid5: return disks >= 3;
    }
    return false;
  }
};

struct PhysicalBlock {
  int disk = 0;
  std::uint64_t lba = 0;
};

class RaidMapper {
 public:
  explicit RaidMapper(RaidGeometry geometry) : geometry_(geometry) {
    QOS_EXPECTS(geometry.valid());
  }

  const RaidGeometry& geometry() const { return geometry_; }

  /// Data disks contributing capacity (RAID-5 loses one to parity, RAID-1
  /// half to mirrors).
  int data_disks() const;

  /// Map a logical block to its primary physical location.
  PhysicalBlock map_read(std::uint64_t logical_lba) const;

  /// Mirror location of a logical block (RAID-1 only).
  PhysicalBlock map_mirror(std::uint64_t logical_lba) const;

  /// Disk holding parity for the stripe row containing `logical_lba`
  /// (RAID-5 only).
  int parity_disk(std::uint64_t logical_lba) const;

  /// Physical accesses needed to *write* one logical block:
  ///   RAID-0: 1 (data); RAID-1: 2 (both mirrors);
  ///   RAID-5: 4 (read-modify-write: read data + parity, write data +
  ///   parity) — returned as the two write targets, the RMW reads hit the
  ///   same two locations.
  std::vector<PhysicalBlock> write_targets(std::uint64_t logical_lba) const;

 private:
  RaidGeometry geometry_;
};

}  // namespace qos
