#include "util/table.h"

#include <cstdio>

namespace qos {

std::string format_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string AsciiTable::to_cell(double v) { return format_double(v, 2); }

void AsciiTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
  }
  std::string out;
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += "  ";
      out += row[c];
      if (c + 1 < row.size())
        out.append(widths[c] - row[c].size(), ' ');
    }
    out += '\n';
  }
  return out;
}

}  // namespace qos
