// Windowed arrival-rate series — the view used by the paper's Figure 2
// (request rate in IOPS aggregated over 100 ms windows).
#pragma once

#include <vector>

#include "trace/trace.h"
#include "util/time.h"

namespace qos {

struct RatePoint {
  Time window_start = 0;  ///< start of the window (us)
  double iops = 0;        ///< arrivals in window / window length
};

/// Aggregate arrivals into fixed windows of length `window`; windows span
/// [0, horizon) where horizon defaults to the trace end rounded up.
std::vector<RatePoint> rate_series(const Trace& trace, Time window,
                                   Time horizon = 0);

/// Same but over an arbitrary arrival-time vector (used for per-class series
/// after decomposition).
std::vector<RatePoint> rate_series(const std::vector<Time>& arrivals,
                                   Time window, Time horizon = 0);

/// Peak and mean of a series.
struct RateSummary {
  double peak_iops = 0;
  double mean_iops = 0;
};
RateSummary summarize(const std::vector<RatePoint>& series);

}  // namespace qos
