# Empty compiler generated dependencies file for test_fairqueue.
# This may be replaced when dependencies are built.
