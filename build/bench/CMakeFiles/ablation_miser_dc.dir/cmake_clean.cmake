file(REMOVE_RECURSE
  "CMakeFiles/ablation_miser_dc.dir/ablation_miser_dc.cpp.o"
  "CMakeFiles/ablation_miser_dc.dir/ablation_miser_dc.cpp.o.d"
  "ablation_miser_dc"
  "ablation_miser_dc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_miser_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
