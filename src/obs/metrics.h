// Metric primitives and the registry that names them.
//
//   * Counter / Gauge — trivially cheap scalar metrics;
//   * LatencyHistogram — log-bucketed (HdrHistogram-style) with 32 linear
//     sub-buckets per octave, so any quantile is reported with <= 1/32
//     relative error while record() stays O(1) and allocation-free;
//   * OccupancySeries — time-weighted statistics of an integer step function
//     (queue depth over simulated time), the quantity the paper's occupancy
//     arguments reason about;
//   * MetricRegistry — owns metrics by name so independent pipeline stages
//     can share one sink of truth.  Lookup is a map walk: callers cache the
//     returned reference at attach time and never resolve names on the hot
//     path.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/time.h"

namespace qos {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  double value() const { return value_; }
  void merge(const Gauge& other) { value_ += other.value_; }

 private:
  double value_ = 0;
};

/// Log-bucketed latency histogram over non-negative microsecond values.
///
/// Values below 32 get exact unit buckets; above that, each octave
/// [2^e, 2^(e+1)) is split into 32 linear sub-buckets, bounding the relative
/// quantile error by 1/32 (~3%).  Min, max and sum are tracked exactly, so
/// quantile(0), quantile(1) and mean() carry no bucketing error.
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 5;  ///< 32 sub-buckets per octave
  static constexpr std::int64_t kSubBuckets = std::int64_t{1}
                                              << kSubBucketBits;

  void record(Time value_us);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  Time min() const { return count_ ? min_ : 0; }
  Time max() const { return count_ ? max_ : 0; }
  double mean_us() const {
    return count_ ? sum_us_ / static_cast<double>(count_) : 0.0;
  }

  /// Nearest-rank quantile, p in [0, 1].  Reports the upper bound of the
  /// containing bucket (never underestimates); p == 0 / p == 1 are exact.
  /// An empty histogram reports the documented sentinel 0 — callers that
  /// need to distinguish "0 us" from "no samples" use try_quantile.
  Time quantile(double p) const;

  /// quantile() that reports emptiness instead of the 0 sentinel.
  std::optional<Time> try_quantile(double p) const {
    if (count_ == 0) return std::nullopt;
    return quantile(p);
  }

  /// Empirical CDF at `value_us`: the fraction of samples <= value_us, at
  /// bucket granularity (same <= 1/32 relative bound as quantile; exact at
  /// bucket boundaries and beyond max()).  Empty histograms report the
  /// sentinel 0.0 — a histogram with no samples has no mass anywhere.
  double cdf(Time value_us) const;

  /// cdf() that reports emptiness instead of the 0.0 sentinel.
  std::optional<double> try_cdf(Time value_us) const {
    if (count_ == 0) return std::nullopt;
    return cdf(value_us);
  }

  /// Fold `other`'s samples in: bucket-wise addition plus exact min/max/
  /// sum/count combination.  Merging per-job histograms recorded on
  /// separate threads after a join is equivalent to recording every sample
  /// into one histogram (tests assert), which is how the runner aggregates
  /// sweep metrics race-free — no histogram is ever shared across threads.
  /// QOS_CHECKs both sides' bucket/count consistency first: a histogram
  /// whose bucket sum disagrees with its count was built under a different
  /// bucketing (or torn by a data race), and folding it in would corrupt
  /// every downstream quantile silently.
  void merge(const LatencyHistogram& other);

  /// True when the bucket counts sum to count() — the invariant every
  /// record()/merge() preserves and merge() checks on both operands.
  bool consistent() const;

  /// Visit non-empty buckets as (lower, upper, count), lower inclusive,
  /// upper exclusive (equal to lower + 1 for the exact unit buckets).
  template <typename Fn>
  void for_each_bucket(Fn&& fn) const {
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] == 0) continue;
      fn(bucket_lower(i), bucket_upper(i), buckets_[i]);
    }
  }

  static std::size_t bucket_index(Time value_us);
  static Time bucket_lower(std::size_t index);
  static Time bucket_upper(std::size_t index);

 private:
  std::vector<std::uint64_t> buckets_;  ///< grown to the highest index seen
  std::uint64_t count_ = 0;
  double sum_us_ = 0;
  Time min_ = 0;
  Time max_ = 0;
};

/// Time-weighted statistics of an integer-valued step function, e.g. queue
/// occupancy.  `update(t, v)` states that the series takes value `v` from
/// instant `t` onward; updates must be non-decreasing in time.
///
/// Convention for the shared series names: every scheduler that publishes
/// "q1.occupancy" reports *pending* primary requests — queued plus in
/// service — updated on admission and on completion (dispatch only moves a
/// request between the two sub-states and does not change the census).
/// This is the lenQ1 of the paper's Algorithm 1 and makes the series
/// comparable across FCFS, Split, FairQueue, Miser and DegradedRtt.
/// "q2.occupancy" counts *queued* overflow requests only (overflow has no
/// completion-time guarantee to reason about), updated on enqueue and
/// dispatch.
class OccupancySeries {
 public:
  void update(Time now, std::int64_t value) {
    QOS_EXPECTS(!started_ || now >= last_);
    if (!started_) {
      started_ = true;
      first_ = now;
    } else {
      weighted_sum_ += static_cast<double>(value_) *
                       static_cast<double>(now - last_);
    }
    last_ = now;
    value_ = value;
    if (value > max_) max_ = value;
  }

  /// Time-weighted mean over [first update, last update].
  double mean() const { return mean_until(last_); }

  /// Time-weighted mean over [first update, until], extending the current
  /// value to `until` (>= last update).
  double mean_until(Time until) const {
    if (!started_ || until <= first_) return 0.0;
    QOS_EXPECTS(until >= last_);
    const double extended =
        weighted_sum_ +
        static_cast<double>(value_) * static_cast<double>(until - last_);
    return extended / static_cast<double>(until - first_);
  }

  std::int64_t max() const { return max_; }
  std::int64_t current() const { return value_; }
  Time duration() const { return started_ ? last_ - first_ : 0; }
  bool empty() const { return !started_; }

  /// Parallel composition for shard fan-in: `this` and `other` are step
  /// functions on the SAME virtual clock (per-lane shards of one sharded
  /// run), and the combined series is their pointwise sum.  A lane
  /// contributes 0 before its first update (its queue is empty until then)
  /// and holds its current value from its last update to the union window's
  /// end, so the combined integral over [min(first), max(last)] — and hence
  /// mean()/mean_until() — is exact.  max() becomes the max of per-lane
  /// peaks: a lower bound on the combined instantaneous peak (two lanes'
  /// peaks need not coincide; an exact combined peak would need the full
  /// step timelines, which the bounded-memory summaries deliberately drop).
  /// current() becomes the sum of currents.  Merging an empty other is a
  /// no-op; merging into an empty this copies.  NOT valid for series from
  /// unrelated runs — use MetricRegistry::merge_from's collision abort to
  /// catch that.
  void merge(const OccupancySeries& other);

 private:
  bool started_ = false;
  Time first_ = 0;
  Time last_ = 0;
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
  double weighted_sum_ = 0;  ///< integral of value over [first_, last_]
};

/// Named metric store.  References returned by the accessors are stable for
/// the registry's lifetime (node-based map), so attach-time caching is safe.
class MetricRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  LatencyHistogram& histogram(const std::string& name) {
    return histograms_[name];
  }
  OccupancySeries& occupancy(const std::string& name) {
    return occupancies_[name];
  }

  /// Lookup without creation; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const LatencyHistogram* find_histogram(const std::string& name) const;
  const OccupancySeries* find_occupancy(const std::string& name) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, LatencyHistogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, OccupancySeries>& occupancies() const {
    return occupancies_;
  }

  /// Fold another registry's metrics in by name: counters and gauges add,
  /// histograms merge sample-exactly.  Occupancy series are step functions
  /// over each run's private simulated clock — two runs' series have no
  /// joint timeline — so a name collision there is a caller error and
  /// aborts; disjoint occupancy names are copied over.  This is the
  /// fan-in half of the runner's aggregation model: workers populate
  /// thread-private registries, the collecting thread merges after join.
  void merge_from(const MetricRegistry& other);

  /// Shard fan-in: like merge_from, but `other` is a per-lane shard of the
  /// SAME run (shared virtual clock), so colliding occupancy series compose
  /// in parallel via OccupancySeries::merge instead of aborting.  Fold
  /// lanes in a deterministic order (ascending tenant) — counter and bucket
  /// arithmetic is exact, but occupancy integrals are doubles, and a fixed
  /// fold order is what makes snapshots bit-identical across shard counts.
  void fan_in(const MetricRegistry& other);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
  std::map<std::string, OccupancySeries> occupancies_;
};

}  // namespace qos
