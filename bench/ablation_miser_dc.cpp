// Ablation: Miser's overflow headroom dC.
//
// The paper provisions dC = 1/delta and proves dC = Cmin can never violate a
// primary deadline.  This bench sweeps dC between 0 and Cmin and reports the
// primary-class deadline violations plus the overflow class's mean response
// time — showing (i) violations vanish at (or before) dC = 1/delta and
// (ii) larger headroom keeps buying Q2 latency.
#include <cstdio>

#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "core/miser.h"
#include "sim/simulator.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

void run(Workload w) {
  const Time delta = from_ms(10);
  const Trace trace = preset_trace(w, 1200 * kUsPerSec);
  const double cmin = min_capacity(trace, 0.90, delta).cmin_iops;
  const double one_over_delta = overflow_headroom_iops(delta);

  std::printf("-- %s: Cmin(90%%, 10 ms) = %.0f IOPS, 1/delta = %.0f IOPS --\n",
              workload_long_name(w).c_str(), cmin, one_over_delta);
  AsciiTable table;
  table.add("dC (IOPS)", "Q1 misses", "Q1 miss frac", "Q2 mean (ms)",
            "Q2 max (ms)");
  const double sweeps[] = {0,
                           one_over_delta / 2,
                           one_over_delta,
                           2 * one_over_delta,
                           cmin / 4,
                           cmin};
  for (double dc : sweeps) {
    MiserScheduler miser(cmin, delta);
    ConstantRateServer server(cmin + dc);
    SimResult sim = simulate(trace, miser, server);
    std::int64_t misses = 0, primaries = 0;
    for (const auto& c : sim.completions) {
      if (c.klass != ServiceClass::kPrimary) continue;
      ++primaries;
      if (c.response_time() > delta) ++misses;
    }
    ResponseStats q2(sim.completions, ServiceClass::kOverflow);
    table.add(format_double(dc, 0), static_cast<long long>(misses),
              format_double(primaries == 0
                                ? 0
                                : 100.0 * static_cast<double>(misses) /
                                      static_cast<double>(primaries),
                            4) +
                  "%",
              q2.empty() ? "-" : format_double(q2.mean_us() / 1000.0, 1),
              q2.empty() ? "-" : format_double(to_ms(q2.max()), 0));
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("Ablation: Miser primary-deadline safety vs headroom dC\n\n");
  run(Workload::kWebSearch);
  run(Workload::kOpenMail);
  return 0;
}
