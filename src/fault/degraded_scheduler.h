// DegradedRttScheduler — single-server RTT recombination with graceful
// degradation.
//
// Strict-priority recombination (Q1 FIFO ahead of Q2 FIFO, work-conserving
// on one server of Cmin + dC) whose admission is a DegradedRtt: every
// completion feeds the capacity monitor, and when the server stops
// delivering C the admission bound re-tightens to Ĉ·δ so overload demotes
// to Q2 instead of accumulating Q1 deadline misses.  Construct with
// `config.enabled = false` for the plain static-RTT baseline the chaos
// harness compares against — the code path is otherwise identical, which is
// what makes the comparison fair.
#pragma once

#include "fault/degraded_rtt.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "sim/scheduler.h"
#include "util/check.h"
#include "util/ring_buffer.h"

namespace qos {

class DegradedRttScheduler final : public Scheduler {
 public:
  /// `admission_capacity_iops` is Cmin; `server_iops` the backing server's
  /// total rate (Cmin + dC), which the monitor treats as healthy.
  DegradedRttScheduler(double admission_capacity_iops, Time delta,
                       double server_iops, DegradedRttConfig config = {})
      : admission_(admission_capacity_iops, delta, server_iops, config) {}

  int server_count() const override { return 1; }

  void attach_observability(EventSink* sink,
                            MetricRegistry* registry) override {
    probe_ = Probe(sink);
    if (registry != nullptr) {
      admitted_ = &registry->counter("rtt.admitted");
      rejected_ = &registry->counter("rtt.rejected");
      demoted_ = &registry->counter("degraded.demotions");
      capacity_estimate_ = &registry->gauge("degraded.capacity_estimate");
      q1_occ_ = &registry->occupancy("q1.occupancy");
      q2_occ_ = &registry->occupancy("q2.occupancy");
    }
  }

  bool arrival_joins_primary(Time) override {
    return admission_.admit(len_q1_);
  }

  void on_arrival(const Request& r, Time now) override {
    if (admission_.admit(len_q1_)) {
      ++len_q1_;
      q1_.push_back(r);
      if (admitted_ != nullptr) admitted_->add();
      if (q1_occ_ != nullptr) q1_occ_->update(now, len_q1_);
      if (probe_) {
        probe_.emit({.time = now,
                     .seq = r.seq,
                     .a = len_q1_,
                     .b = admission_.max_q1(),
                     .client = r.client,
                     .kind = EventKind::kAdmit,
                     .klass = ServiceClass::kPrimary});
      }
    } else {
      const bool demotion = admission_.is_demotion(len_q1_);
      q2_.push_back(r);
      if (demotion) {
        ++demotions_;
        if (demoted_ != nullptr) demoted_->add();
      }
      if (rejected_ != nullptr) rejected_->add();
      if (q2_occ_ != nullptr)
        q2_occ_->update(now, static_cast<std::int64_t>(q2_.size()));
      if (probe_) {
        probe_.emit({.time = now,
                     .seq = r.seq,
                     .a = demotion ? admission_.max_q1()
                                   : static_cast<std::int64_t>(q2_.size()),
                     .b = admission_.nominal_max_q1(),
                     .client = r.client,
                     .kind = demotion ? EventKind::kDemote
                                      : EventKind::kReject,
                     .klass = ServiceClass::kOverflow});
      }
    }
  }

  std::optional<Dispatch> next_for(int server, Time now) override {
    QOS_EXPECTS(server == 0);
    if (!q1_.empty()) {
      Dispatch d{q1_.front(), ServiceClass::kPrimary};
      q1_.pop_front();
      service_start_ = now;
      return d;
    }
    if (!q2_.empty()) {
      Dispatch d{q2_.front(), ServiceClass::kOverflow};
      q2_.pop_front();
      service_start_ = now;
      return d;
    }
    return std::nullopt;
  }

  void on_complete(const Request&, ServiceClass klass, int,
                   Time now) override {
    // One server => at most one request in service; the pair
    // (service_start_, now) is exactly its occupancy span.
    admission_.on_service(service_start_, now);
    if (capacity_estimate_ != nullptr)
      capacity_estimate_->set(admission_.capacity_estimate_iops());
    if (klass == ServiceClass::kPrimary) {
      QOS_CHECK(len_q1_ > 0);
      --len_q1_;
      if (q1_occ_ != nullptr) q1_occ_->update(now, len_q1_);
    }
  }

  std::int64_t len_q1() const { return len_q1_; }
  std::uint64_t demotions() const { return demotions_; }
  DegradedRtt& admission() { return admission_; }

 private:
  DegradedRtt admission_;
  RingBuffer<Request> q1_;
  RingBuffer<Request> q2_;
  std::int64_t len_q1_ = 0;  ///< pending primaries (queued + in service)
  Time service_start_ = 0;
  std::uint64_t demotions_ = 0;

  Probe probe_;
  Counter* admitted_ = nullptr;
  Counter* rejected_ = nullptr;
  Counter* demoted_ = nullptr;
  Gauge* capacity_estimate_ = nullptr;
  OccupancySeries* q1_occ_ = nullptr;
  OccupancySeries* q2_occ_ = nullptr;
};

}  // namespace qos
