// The unit of work flowing through the system: one block-level I/O request.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace qos {

/// One block I/O request.  `seq` is assigned densely by the owning Trace and
/// identifies the request across decomposition, scheduling and analysis.
struct Request {
  Time arrival = 0;             ///< arrival instant (us)
  std::uint64_t seq = 0;        ///< dense per-trace sequence number
  std::uint32_t client = 0;     ///< flow / tenant id (used when traces merge)
  std::uint64_t lba = 0;        ///< logical block address (disk model only)
  std::uint32_t size_blocks = 8;  ///< request size in 512 B blocks
  bool is_write = false;

  friend bool operator==(const Request&, const Request&) = default;
};

}  // namespace qos
