#include "obs/trace_analysis.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <limits>

namespace qos {

const char* miss_cause_name(MissCause cause) {
  switch (cause) {
    case MissCause::kFaultWindow: return "fault_window";
    case MissCause::kAdmissionBurst: return "admission_burst";
    case MissCause::kQ2Starvation: return "q2_starvation";
    case MissCause::kCapacityShortfall: return "capacity_shortfall";
  }
  return "unknown";
}

namespace {

bool overlaps_fault(const RequestSpan& span, const TraceData& trace) {
  for (const FaultSpan& f : trace.faults)
    if (span.arrival < f.end && span.completion > f.begin) return true;
  return false;
}

}  // namespace

MissCause attribute_miss(const RequestSpan& span, const TraceData& trace,
                         Time delta) {
  // Fault evidence first: it corrupts every other signal.
  if (span.inflation_us >= 0 || span.demoted != 0 ||
      overlaps_fault(span, trace))
    return MissCause::kFaultWindow;
  // Admitted to Q1 (or no admission decision at all and served as primary —
  // an unbounded scheduler like FCFS): the primary path itself was too slow.
  if (span.admitted != 0 ||
      (span.decision == kNoTime && span.klass == ServiceClass::kPrimary))
    return MissCause::kCapacityShortfall;
  // Overflow miss: did Q2 residency alone exceed the whole deadline?
  if (span.service_start != kNoTime && span.wait_us() > delta)
    return MissCause::kQ2Starvation;
  return MissCause::kAdmissionBurst;
}

AttributionReport attribute_misses(const TraceData& trace, Time delta) {
  AttributionReport report;
  for (const RequestSpan& span : trace.spans) {
    if (!span.complete()) continue;
    ++report.completed;
    if (span.response_us() <= delta) {
      ++report.met;
      continue;
    }
    const MissCause cause = attribute_miss(span, trace, delta);
    ++report.by_cause[static_cast<int>(cause)];
    report.misses.push_back({span, cause});
  }
  return report;
}

std::vector<QueuePoint> reconstruct_queue_timeline(const TraceData& trace) {
  // +1 at enqueue, -1 at service start, folded into per-instant deltas.
  struct Edge {
    Time time;
    std::int64_t dq1;
    std::int64_t dq2;
  };
  std::vector<Edge> edges;
  edges.reserve(trace.spans.size() * 2);
  for (const RequestSpan& s : trace.spans) {
    const bool primary = s.klass == ServiceClass::kPrimary;
    const Time enq = s.enqueue != kNoTime ? s.enqueue : s.arrival;
    if (enq != kNoTime && s.service_start != kNoTime) {
      edges.push_back({enq, primary ? 1 : 0, primary ? 0 : 1});
      edges.push_back({s.service_start, primary ? -1 : 0, primary ? 0 : -1});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.time < b.time; });

  std::vector<QueuePoint> timeline;
  std::int64_t q1 = 0, q2 = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    q1 += edges[i].dq1;
    q2 += edges[i].dq2;
    // Coalesce simultaneous edges into one point (dispatch at enqueue time).
    if (i + 1 < edges.size() && edges[i + 1].time == edges[i].time) continue;
    timeline.push_back({edges[i].time, q1, q2});
  }
  return timeline;
}

SlackReport miser_slack_report(const TraceData& trace) {
  SlackReport report;
  report.samples = trace.slack.size();
  report.min_slack = std::numeric_limits<std::int64_t>::max();
  for (const SlackSample& s : trace.slack) {
    report.min_slack = std::min(report.min_slack, s.slack);
    if (s.slack < 1) ++report.violations;
    if (s.slack == 1) ++report.near_violations;
  }
  if (report.samples == 0) report.min_slack = 0;
  return report;
}

std::string trace_analysis_text(const TraceData& trace, Time delta) {
  std::string out;
  char line[256];
  auto emit = [&out, &line] { out += line; };

  std::snprintf(line, sizeof(line), "=== %s%s%s ===\n",
                trace.label.empty() ? "trace" : trace.label.c_str(),
                trace.trace_name.empty() ? "" : " / ",
                trace.trace_name.c_str());
  emit();
  std::snprintf(line, sizeof(line),
                "delta_us=%" PRId64 " sample_every=%" PRIu64
                " observed=%" PRIu64 " retained_spans=%zu dropped=%" PRIu64
                "\n",
                delta, trace.sample_every, trace.observed, trace.spans.size(),
                trace.dropped);
  emit();

  const AttributionReport report = attribute_misses(trace, delta);
  std::snprintf(line, sizeof(line),
                "completed=%" PRIu64 " met=%" PRIu64 " missed=%zu\n",
                report.completed, report.met, report.misses.size());
  emit();
  out += "miss attribution:\n";
  for (int c = 0; c < kMissCauseCount; ++c) {
    std::snprintf(line, sizeof(line), "  %-20s %" PRIu64 "\n",
                  miss_cause_name(static_cast<MissCause>(c)),
                  report.by_cause[c]);
    emit();
  }

  const std::vector<QueuePoint> timeline = reconstruct_queue_timeline(trace);
  std::int64_t peak_q1 = 0, peak_q2 = 0;
  for (const QueuePoint& p : timeline) {
    peak_q1 = std::max(peak_q1, p.q1);
    peak_q2 = std::max(peak_q2, p.q2);
  }
  std::snprintf(line, sizeof(line),
                "queue timeline: %zu points, peak_q1=%" PRId64
                " peak_q2=%" PRId64 "\n",
                timeline.size(), peak_q1, peak_q2);
  emit();

  const SlackReport slack = miser_slack_report(trace);
  std::snprintf(line, sizeof(line),
                "miser slack: samples=%" PRIu64 " min=%" PRId64
                " violations=%" PRIu64 " near_violations=%" PRIu64 "\n",
                slack.samples, slack.min_slack, slack.violations,
                slack.near_violations);
  emit();
  return out;
}

}  // namespace qos
