#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "core/fcfs.h"
#include "sim/server.h"

namespace qos {
namespace {

Trace make_trace(std::initializer_list<Time> arrivals) {
  std::vector<Request> reqs;
  for (Time a : arrivals) reqs.push_back(Request{.arrival = a});
  return Trace(std::move(reqs));
}

TEST(Simulator, SingleRequestTimings) {
  Trace t = make_trace({1000});
  FcfsScheduler fcfs;
  ConstantRateServer server(100);  // 10 ms per request
  SimResult r = simulate(t, fcfs, server);
  ASSERT_EQ(r.completions.size(), 1u);
  EXPECT_EQ(r.completions[0].arrival, 1000);
  EXPECT_EQ(r.completions[0].start, 1000);
  EXPECT_EQ(r.completions[0].finish, 11'000);
}

TEST(Simulator, QueueingDelaysSecondRequest) {
  Trace t = make_trace({0, 0});
  FcfsScheduler fcfs;
  ConstantRateServer server(100);
  SimResult r = simulate(t, fcfs, server);
  ASSERT_EQ(r.completions.size(), 2u);
  EXPECT_EQ(r.completions[0].finish, 10'000);
  EXPECT_EQ(r.completions[1].start, 10'000);
  EXPECT_EQ(r.completions[1].finish, 20'000);
}

TEST(Simulator, IdleGapThenSecondBusyPeriod) {
  Trace t = make_trace({0, 1'000'000});
  FcfsScheduler fcfs;
  ConstantRateServer server(100);
  SimResult r = simulate(t, fcfs, server);
  EXPECT_EQ(r.completions[1].start, 1'000'000);
  EXPECT_EQ(r.completions[1].finish, 1'010'000);
}

TEST(Simulator, AllRequestsComplete) {
  std::vector<Request> reqs;
  for (int i = 0; i < 5000; ++i)
    reqs.push_back(Request{.arrival = (i % 997) * 1000});
  Trace t(std::move(reqs));
  FcfsScheduler fcfs;
  ConstantRateServer server(5000);
  SimResult r = simulate(t, fcfs, server);
  EXPECT_EQ(r.completions.size(), t.size());
  // Every seq appears exactly once.
  auto by_seq = r.by_seq();
  for (std::size_t i = 0; i < by_seq.size(); ++i)
    EXPECT_EQ(by_seq[i].seq, i);
}

TEST(Simulator, FcfsPreservesArrivalOrder) {
  Trace t = make_trace({0, 100, 200, 300});
  FcfsScheduler fcfs;
  ConstantRateServer server(1000);
  SimResult r = simulate(t, fcfs, server);
  for (std::size_t i = 1; i < r.completions.size(); ++i)
    EXPECT_GT(r.completions[i].finish, r.completions[i - 1].finish);
}

TEST(Simulator, ServiceNeverOverlapsOnOneServer) {
  Trace t = make_trace({0, 0, 0, 500, 500, 90'000});
  FcfsScheduler fcfs;
  ConstantRateServer server(37);
  SimResult r = simulate(t, fcfs, server);
  for (std::size_t i = 1; i < r.completions.size(); ++i)
    EXPECT_GE(r.completions[i].start, r.completions[i - 1].finish);
}

TEST(Simulator, StartNeverBeforeArrival) {
  Trace t = make_trace({0, 10, 20, 1'000'000});
  FcfsScheduler fcfs;
  ConstantRateServer server(50);
  SimResult r = simulate(t, fcfs, server);
  for (const auto& c : r.completions) EXPECT_GE(c.start, c.arrival);
}

TEST(Simulator, MakespanIsLastFinish) {
  Trace t = make_trace({0, 0});
  FcfsScheduler fcfs;
  ConstantRateServer server(100);
  SimResult r = simulate(t, fcfs, server);
  EXPECT_EQ(r.makespan(), 20'000);
}

TEST(Simulator, EmptyTrace) {
  Trace t;
  FcfsScheduler fcfs;
  ConstantRateServer server(100);
  SimResult r = simulate(t, fcfs, server);
  EXPECT_TRUE(r.completions.empty());
  EXPECT_EQ(r.makespan(), 0);
}

CompletionRecord rec(std::uint64_t seq, Time finish) {
  CompletionRecord c;
  c.seq = seq;
  c.finish = finish;
  return c;
}

TEST(SimResultBySeq, DuplicateSeqAborts) {
  SimResult r;
  r.completions = {rec(0, 10), rec(1, 20), rec(1, 30)};
  EXPECT_DEATH((void)r.by_seq(), "Invariant failed");
}

TEST(SimResultBySeq, OutOfRangeSeqAborts) {
  // Three completions but a seq of 5: some seq in [0,3) necessarily has no
  // completion, so the result would contain default-constructed holes.
  SimResult r;
  r.completions = {rec(0, 10), rec(1, 20), rec(5, 30)};
  EXPECT_DEATH((void)r.by_seq(), "Invariant failed");
}

TEST(SimResultBySeqMulti, GroupsFanOutBySeqInFinishOrder) {
  SimResult r;
  r.completions = {rec(1, 10), rec(0, 20), rec(1, 30), rec(1, 40)};
  const auto groups = r.by_seq_multi();
  ASSERT_EQ(groups.size(), 2u);
  ASSERT_EQ(groups[0].size(), 1u);
  EXPECT_EQ(groups[0][0].finish, 20);
  ASSERT_EQ(groups[1].size(), 3u);
  EXPECT_EQ(groups[1][0].finish, 10);
  EXPECT_EQ(groups[1][1].finish, 30);
  EXPECT_EQ(groups[1][2].finish, 40);
}

TEST(SimResultBySeqMulti, SeqWithNoCompletionYieldsEmptyGroup) {
  SimResult r;
  r.completions = {rec(2, 10)};
  const auto groups = r.by_seq_multi();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_TRUE(groups[0].empty());
  EXPECT_TRUE(groups[1].empty());
  EXPECT_EQ(groups[2].size(), 1u);
}

TEST(SimResultBySeqMulti, EmptyResult) {
  SimResult r;
  EXPECT_TRUE(r.by_seq_multi().empty());
}

TEST(Simulator, WorkConservationAtFullLoad) {
  // Saturated server: busy time equals total service demand, so the last
  // finish is N / C after the first start.
  std::vector<Request> reqs;
  for (int i = 0; i < 1000; ++i) reqs.push_back(Request{.arrival = 0});
  Trace t(std::move(reqs));
  FcfsScheduler fcfs;
  ConstantRateServer server(250);  // 4 ms per request
  SimResult r = simulate(t, fcfs, server);
  EXPECT_EQ(r.makespan(), 4'000'000);
}

}  // namespace
}  // namespace qos
