#include "fq/wf2q.h"

#include <algorithm>

namespace qos {

Wf2qPlusScheduler::Wf2qPlusScheduler(std::vector<double> weights) {
  QOS_EXPECTS(!weights.empty());
  flows_.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    QOS_EXPECTS(weights[i] > 0);
    flows_[i].weight = weights[i];
    total_weight_ += weights[i];
  }
}

void Wf2qPlusScheduler::enqueue(int flow, std::uint64_t handle, double cost,
                                Time) {
  QOS_EXPECTS(flow >= 0 && flow < flow_count());
  QOS_EXPECTS(cost > 0);
  Flow& f = flows_[static_cast<std::size_t>(flow)];
  Item item;
  item.handle = handle;
  item.cost = cost;
  item.start = std::max(v_, f.last_finish);
  item.finish = item.start + cost / f.weight;
  f.last_finish = item.finish;
  f.queue.push_back(item);
}

std::optional<FqDispatch> Wf2qPlusScheduler::dequeue(Time) {
  // Advance V to the minimum backlogged start tag if it fell behind.
  double min_start = 0;
  bool any = false;
  for (const auto& f : flows_) {
    if (f.queue.empty()) continue;
    if (!any || f.queue.front().start < min_start)
      min_start = f.queue.front().start;
    any = true;
  }
  if (!any) return std::nullopt;
  v_ = std::max(v_, min_start);

  // Smallest finish tag among eligible items (start <= V).  By construction
  // at least the min-start item is eligible.
  int best = -1;
  for (int i = 0; i < flow_count(); ++i) {
    const Flow& f = flows_[static_cast<std::size_t>(i)];
    if (f.queue.empty() || f.queue.front().start > v_) continue;
    if (best < 0 ||
        f.queue.front().finish <
            flows_[static_cast<std::size_t>(best)].queue.front().finish)
      best = i;
  }
  QOS_CHECK(best >= 0);
  Flow& f = flows_[static_cast<std::size_t>(best)];
  const Item item = f.queue.front();
  f.queue.pop_front();
  v_ += item.cost / total_weight_;
  return FqDispatch{best, item.handle};
}

bool Wf2qPlusScheduler::empty() const {
  for (const auto& f : flows_)
    if (!f.queue.empty()) return false;
  return true;
}

std::size_t Wf2qPlusScheduler::backlog(int flow) const {
  QOS_EXPECTS(flow >= 0 && flow < flow_count());
  return flows_[static_cast<std::size_t>(flow)].queue.size();
}

}  // namespace qos
