#include "fq/sfq.h"

#include <algorithm>

namespace qos {

SfqScheduler::SfqScheduler(std::vector<double> weights) {
  QOS_EXPECTS(!weights.empty());
  flows_.resize(weights.size());
  head_start_.reset(static_cast<int>(weights.size()));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    QOS_EXPECTS(weights[i] > 0);
    flows_[i].weight = weights[i];
  }
}

void SfqScheduler::enqueue(int flow, std::uint64_t handle, double cost,
                           Time) {
  QOS_EXPECTS(flow >= 0 && flow < flow_count());
  QOS_EXPECTS(cost > 0);
  Flow& f = flows_[static_cast<std::size_t>(flow)];
  Item item;
  item.handle = handle;
  item.start = std::max(v_, f.last_finish);
  item.finish = item.start + cost / f.weight;
  f.last_finish = item.finish;
  const bool was_empty = f.queue.empty();
  f.queue.push_back(item);
  if (was_empty) head_start_.push(flow, item.start);
}

std::optional<FqDispatch> SfqScheduler::dequeue(Time) {
  if (head_start_.empty()) return std::nullopt;
  const int best = head_start_.top();
  Flow& f = flows_[static_cast<std::size_t>(best)];
  const Item item = f.queue.front();
  f.queue.pop_front();
  v_ = item.start;  // SFQ: virtual time tracks the start tag in service
  if (f.queue.empty())
    head_start_.pop();
  else
    head_start_.update(best, f.queue.front().start);
  return FqDispatch{best, item.handle};
}

bool SfqScheduler::empty() const { return head_start_.empty(); }

std::size_t SfqScheduler::backlog(int flow) const {
  QOS_EXPECTS(flow >= 0 && flow < flow_count());
  return flows_[static_cast<std::size_t>(flow)].queue.size();
}

}  // namespace qos
