// SpanMap — open-addressing map from request seq to in-flight RequestSpan.
//
// The Tracer keeps one live span per sampled in-flight request and touches
// the map on nearly every event (insert at arrival, lookup at admit and
// dispatch, erase at completion).  With node-based std::unordered_map that
// is an allocation and a pointer chase per touch, which alone can cost more
// than the rest of the event pipeline on a giant run.  This map is a flat
// linear-probe table — power-of-two capacity, splitmix64-mixed keys,
// backward-shift deletion (no tombstones) — so the steady-state working set
// is one contiguous array sized by the *in-flight* span count (bounded by
// queue depths, typically tens), never by the run length.
//
// Not a general-purpose container: keys are request seqs (any u64 works;
// the table stores key+1 so 0 marks an empty slot), values must be
// default-constructible and assignable, and there is no iteration — the
// Tracer never walks live spans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qos {

template <typename Value>
class SpanMap {
 public:
  /// Reference to the value for `key`, inserting a default-constructed one
  /// when absent; `inserted` reports which happened.  The reference is
  /// invalidated by any later insert (the table may grow).
  Value& find_or_insert(std::uint64_t key, bool& inserted) {
    if ((size_ + 1) * 4 >= slots_.size() * 3) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (true) {
      Slot& s = slots_[i];
      if (s.stored == 0) {
        s.stored = key + 1;
        s.value = Value{};
        ++size_;
        inserted = true;
        return s.value;
      }
      if (s.stored == key + 1) {
        inserted = false;
        return s.value;
      }
      i = (i + 1) & mask;
    }
  }

  /// Remove `key` if present (backward-shift deletion keeps every remaining
  /// entry reachable without tombstones).  Returns whether it was present.
  bool erase(std::uint64_t key) {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (true) {
      Slot& s = slots_[i];
      if (s.stored == 0) return false;
      if (s.stored == key + 1) break;
      i = (i + 1) & mask;
    }
    std::size_t hole = i;
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      const Slot& cand = slots_[j];
      if (cand.stored == 0) break;
      // cand may shift into the hole only if its home slot does not lie
      // strictly between the hole and its current position (probe-order
      // arithmetic, mod capacity).
      const std::size_t home = mix(cand.stored - 1) & mask;
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        slots_[hole] = cand;
        hole = j;
      }
    }
    slots_[hole].stored = 0;
    slots_[hole].value = Value{};
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t stored = 0;  ///< key + 1; 0 = empty
    Value value{};
  };

  static std::uint64_t mix(std::uint64_t x) {  // splitmix64 finalizer
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 64 : old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (Slot& s : old) {
      if (s.stored == 0) continue;
      std::size_t i = mix(s.stored - 1) & mask;
      while (slots_[i].stored != 0) i = (i + 1) & mask;
      slots_[i] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace qos
