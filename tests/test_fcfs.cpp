#include "core/fcfs.h"

#include <gtest/gtest.h>

#include "analysis/response_stats.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace qos {
namespace {

TEST(Fcfs, ServesInArrivalOrder) {
  std::vector<Request> reqs;
  for (int i = 0; i < 10; ++i) reqs.push_back(Request{.arrival = i * 100});
  Trace t(std::move(reqs));
  FcfsScheduler fcfs;
  ConstantRateServer server(1000);
  SimResult r = simulate(t, fcfs, server);
  std::uint64_t prev = 0;
  for (const auto& c : r.completions) {
    if (c.seq > 0) {
      EXPECT_EQ(c.seq, prev + 1);
    }
    prev = c.seq;
  }
}

TEST(Fcfs, SingleServer) {
  FcfsScheduler fcfs;
  EXPECT_EQ(fcfs.server_count(), 1);
}

TEST(Fcfs, IdleWhenEmpty) {
  FcfsScheduler fcfs;
  EXPECT_FALSE(fcfs.next_for(0, 0).has_value());
}

TEST(Fcfs, BurstSpillsOverToLaterRequests) {
  // The paper's motivation: a burst delays subsequent well-behaved requests.
  // Burst of 100 at t=0; a lone request at t=1s (capacity 50 IOPS) waits
  // behind the burst's backlog.
  std::vector<Request> reqs;
  for (int i = 0; i < 100; ++i) reqs.push_back(Request{.arrival = 0});
  reqs.push_back(Request{.arrival = 1'000'000});
  Trace t(std::move(reqs));
  FcfsScheduler fcfs;
  ConstantRateServer server(50);
  SimResult r = simulate(t, fcfs, server);
  auto by_seq = r.by_seq();
  // The burst needs 2 s to drain; the lone arrival at 1 s waits ~1 s.
  EXPECT_GE(by_seq[100].response_time(), 900'000);
}

TEST(Fcfs, OccupancyCountsQueuedPlusInService) {
  // The shared "q1.occupancy" convention (obs/metrics.h): pending requests,
  // updated on admission and completion.  Two arrivals at t=0, 10 ms each:
  // census is 2 on [0, 10ms), 1 on [10ms, 20ms), 0 after.
  std::vector<Request> reqs{Request{.arrival = 0}, Request{.arrival = 0}};
  Trace t(std::move(reqs));
  FcfsScheduler fcfs;
  MetricRegistry registry;
  fcfs.attach_observability(nullptr, &registry);
  ConstantRateServer server(100);
  simulate(t, fcfs, server);
  const OccupancySeries* occ = registry.find_occupancy("q1.occupancy");
  ASSERT_NE(occ, nullptr);
  EXPECT_EQ(occ->max(), 2);
  EXPECT_EQ(occ->current(), 0);  // drained: completions decrement the census
  EXPECT_DOUBLE_EQ(occ->mean(), 1.5);
  EXPECT_EQ(fcfs.len_q1(), 0);
}

TEST(Fcfs, ResponseDegradesWithBurstiness) {
  // Same mean rate; bursty arrangement produces a worse p99 under FCFS.
  Trace smooth = generate_poisson(400, 30 * kUsPerSec, 3);
  WorkloadSpec spec;
  spec.states = {{100, 1.0}, {1600, 0.2}};
  Trace bursty = generate_workload(spec, 30 * kUsPerSec, 3);
  FcfsScheduler f1, f2;
  ConstantRateServer s1(500), s2(500);
  ResponseStats smooth_stats(simulate(smooth, f1, s1).completions);
  ResponseStats bursty_stats(simulate(bursty, f2, s2).completions);
  EXPECT_GT(bursty_stats.percentile(0.99), smooth_stats.percentile(0.99));
}

}  // namespace
}  // namespace qos
