#include "disk/disk_qos_scheduler.h"

#include <gtest/gtest.h>

#include "analysis/response_stats.h"
#include "core/fcfs.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace qos {
namespace {

AddressSpec disk_addresses() {
  AddressSpec addr;
  addr.lba_max = 90'000'000;  // within the default geometry
  addr.sequential_prob = 0.1;
  return addr;
}

TEST(DiskQos, AllRequestsServed) {
  Trace t = generate_poisson(100, 30 * kUsPerSec, 501, disk_addresses());
  DiskQosScheduler sched(120, from_ms(50));
  DiskServer disk;
  SimResult r = simulate(t, sched, disk);
  EXPECT_EQ(r.completions.size(), t.size());
}

TEST(DiskQos, PrimaryHasStrictPriority) {
  // Saturate: overflow requests should finish after the primary backlog.
  std::vector<Request> reqs;
  Rng rng(503);
  for (int i = 0; i < 60; ++i) {
    Request r;
    r.arrival = 0;
    r.lba = static_cast<std::uint64_t>(rng.uniform_int(0, 80'000'000));
    reqs.push_back(r);
  }
  Trace t(std::move(reqs));
  DiskQosScheduler sched(100, from_ms(100));  // maxQ1 = 10
  DiskServer disk;
  SimResult r = simulate(t, sched, disk);
  // The first 10 completions are all primary (nothing else can arrive).
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(r.completions[static_cast<std::size_t>(i)].klass,
              ServiceClass::kPrimary);
}

TEST(DiskQos, ClookOrderWithinBurst) {
  // All primary, simultaneous: service order must be ascending cylinders
  // from the initial head position (single sweep).
  DiskGeometry g;
  std::vector<Request> reqs;
  const std::int64_t bpc = g.blocks_per_cylinder();
  const std::int64_t cyls[] = {40'000, 10'000, 30'000, 20'000};
  for (std::size_t i = 0; i < 4; ++i) {
    Request r;
    r.arrival = 0;
    r.lba = static_cast<std::uint64_t>(cyls[i] * bpc);
    reqs.push_back(r);
  }
  Trace t(std::move(reqs));
  DiskQosScheduler sched(1000, from_ms(100), g);  // all fit in Q1
  DiskServer disk;
  SimResult r = simulate(t, sched, disk);
  // Ascending cylinder order: 10000, 20000, 30000, 40000 -> seqs 1, 3, 2, 0.
  ASSERT_EQ(r.completions.size(), 4u);
  EXPECT_EQ(r.completions[0].seq, 1u);
  EXPECT_EQ(r.completions[1].seq, 3u);
  EXPECT_EQ(r.completions[2].seq, 2u);
  EXPECT_EQ(r.completions[3].seq, 0u);
}

TEST(DiskQos, ReorderingBeatsFifoOnThroughput) {
  // Same random burst served by FCFS vs DiskQos (everything admitted):
  // C-LOOK finishes sooner.
  std::vector<Request> reqs;
  Rng rng(507);
  for (int i = 0; i < 200; ++i) {
    Request r;
    r.arrival = 0;
    r.lba = static_cast<std::uint64_t>(rng.uniform_int(0, 90'000'000));
    reqs.push_back(r);
  }
  Trace t(std::move(reqs));

  FcfsScheduler fcfs;
  DiskServer disk_a;
  const Time fifo_makespan = simulate(t, fcfs, disk_a).makespan();

  DiskQosScheduler sched(10'000, from_ms(1000));  // admit all
  DiskServer disk_b;
  const Time clook_makespan = simulate(t, sched, disk_b).makespan();

  EXPECT_LT(clook_makespan, fifo_makespan * 3 / 4);
}

TEST(DiskQos, OverflowEventuallyServed) {
  Trace t = generate_poisson(150, 20 * kUsPerSec, 509, disk_addresses());
  DiskQosScheduler sched(40, from_ms(20));  // tight admission
  DiskServer disk;
  SimResult r = simulate(t, sched, disk);
  EXPECT_EQ(r.completions.size(), t.size());
  std::size_t overflow = 0;
  for (const auto& c : r.completions)
    if (c.klass == ServiceClass::kOverflow) ++overflow;
  EXPECT_GT(overflow, 0u);
}

}  // namespace
}  // namespace qos
