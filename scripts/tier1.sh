#!/usr/bin/env bash
# Tier-1 verification: the plain build + test matrix from ROADMAP.md, then
# the same test suite under ASan+UBSan so the simulator/scheduler hot paths
# (including the observability hooks) stay sanitizer-clean.
#
#   scripts/tier1.sh            # both passes
#   scripts/tier1.sh --fast     # plain pass only
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

echo "== tier-1: plain build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$jobs"
ctest --test-dir build --output-on-failure --timeout 120 -j"$jobs"

if [[ "${1:-}" == "--fast" ]]; then
  exit 0
fi

echo "== tier-1: ASan+UBSan build + ctest (tests only) =="
cmake -B build-asan -S . -DQOS_SANITIZE=ON >/dev/null
cmake --build build-asan -j"$jobs"
ctest --test-dir build-asan --output-on-failure --timeout 300 -j"$jobs"
