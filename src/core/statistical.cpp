#include "core/statistical.h"

#include <cmath>

#include "trace/rate_series.h"
#include "util/check.h"

namespace qos {

double gaussian_upper_quantile(double eps) {
  QOS_EXPECTS(eps > 0 && eps <= 0.5);
  // Peter Acklam's inverse-normal approximation, lower-region branch for
  // p = eps (upper quantile = -Phi^{-1}(eps)).
  const double p = eps;
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
         c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  } else {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
         a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  return -x;  // upper-tail quantile is positive for eps < 0.5
}

StatisticalEstimate statistical_capacity(const Trace& trace, Time window,
                                         double eps) {
  QOS_EXPECTS(window > 0);
  StatisticalEstimate est;
  const auto series = rate_series(trace, window);
  if (series.size() < 2) return est;
  double sum = 0;
  for (const auto& p : series) sum += p.iops;
  est.mean_iops = sum / static_cast<double>(series.size());
  double sq = 0;
  for (const auto& p : series)
    sq += (p.iops - est.mean_iops) * (p.iops - est.mean_iops);
  est.stddev_iops =
      std::sqrt(sq / static_cast<double>(series.size() - 1));
  est.capacity_iops =
      est.mean_iops + gaussian_upper_quantile(eps) * est.stddev_iops;
  return est;
}

StatisticalEstimate statistical_multiplex(
    const std::vector<StatisticalEstimate>& clients, double eps) {
  StatisticalEstimate est;
  double variance = 0;
  for (const auto& c : clients) {
    est.mean_iops += c.mean_iops;
    variance += c.stddev_iops * c.stddev_iops;
  }
  est.stddev_iops = std::sqrt(variance);
  est.capacity_iops =
      est.mean_iops + gaussian_upper_quantile(eps) * est.stddev_iops;
  return est;
}

}  // namespace qos
