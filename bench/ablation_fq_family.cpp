// Ablation: which fair scheduler backs the FairQueue recombination?
//
// The paper says "a proportional share bandwidth allocator (like WF2Q, SFQ,
// pClock)".  This bench runs the same decomposed WebSearch workload under
// all three src/fq implementations (plus a weight-ratio sweep for SFQ) and
// compares both classes' distributions — showing the recombination is robust
// to the choice, with small tail differences.
//
// Execution engine: every (backend) and (ratio) variant is a custom-factory
// SweepRunner cell — the factory builds a fresh FairQueueScheduler per
// evaluation, the runner supplies the Cmin+dC server — evaluated
// concurrently.  Custom cells carry a content salt derived from the variant
// label so they participate in the result cache.
#include <cstdio>
#include <memory>

#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "core/fairqueue.h"
#include "fq/drr.h"
#include "fq/pclock.h"
#include "fq/sfq.h"
#include "fq/wf2q.h"
#include "fq/wfq.h"
#include "runner/bench_io.h"
#include "runner/parallel_capacity.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

std::unique_ptr<FairScheduler> make_fq(const std::string& kind, double w1,
                                       double w2, Time delta) {
  if (kind == "SFQ")
    return std::make_unique<SfqScheduler>(std::vector<double>{w1, w2});
  if (kind == "WF2Q+")
    return std::make_unique<Wf2qPlusScheduler>(std::vector<double>{w1, w2});
  if (kind == "WFQ")
    return std::make_unique<WfqScheduler>(std::vector<double>{w1, w2});
  if (kind == "DRR")
    return std::make_unique<DrrScheduler>(std::vector<double>{w1, w2},
                                          1.0 / w2);
  // pClock: Q1's envelope matches its RTT reservation — burst allowance of
  // one full primary queue (Cmin * delta slots) at rate Cmin; Q2 a loose
  // envelope.
  std::vector<PClockSla> slas = {
      PClockSla{.sigma = w1 * to_sec(delta), .rho = w1, .delta = delta},
      PClockSla{.sigma = 1, .rho = w2, .delta = 10 * delta}};
  return std::make_unique<PClockScheduler>(slas);
}

// Content salt for a custom cell: the factory closure cannot be hashed, so
// the variant label + a codec version stand in for it.  Bump the version
// string when the scheduler construction above changes meaningfully.
std::uint64_t variant_salt(const std::string& label) {
  ContentHasher h;
  h.str("ablation-fq-family-v2");
  h.str(label);
  return h.digest().lo | 1;  // nonzero: zero would disable caching
}

SweepCell family_cell(const Trace& trace, const std::string& label,
                      std::function<std::unique_ptr<FairScheduler>()> backend,
                      double cmin, Time delta, double dc) {
  SweepCell cell;
  cell.label = label;
  cell.trace_name = "WebSearch-1800s";
  cell.trace = &trace;
  cell.shaping.policy = Policy::kFairQueue;
  cell.shaping.fraction = 0.90;
  cell.shaping.delta = delta;
  cell.shaping.capacity_override_iops = cmin;
  cell.custom_salt = variant_salt(label);
  cell.make_scheduler = [backend = std::move(backend), cmin, delta, dc] {
    return std::unique_ptr<Scheduler>(std::make_unique<FairQueueScheduler>(
        cmin, delta, dc, backend()));
  };
  cell.server_iops = {cmin + dc};
  // The report's per-class p99 is histogram-bucketed; the printed table
  // wants the exact order statistic, so extract it on the worker.
  cell.annotate = [](const SimResult& sim,
                     std::map<std::string, double>& extra) {
    ResponseStats q2(sim.completions, ServiceClass::kOverflow);
    extra["q2.p99_us"] =
        q2.empty() ? -1.0 : static_cast<double>(q2.percentile(0.99));
  };
  return cell;
}

void run(const BenchOptions& options) {
  const double t0 = bench_now_seconds();
  const Time delta = from_ms(50);
  const Trace trace = preset_trace(Workload::kWebSearch, 1800 * kUsPerSec);

  auto cache = options.make_cache();
  SweepRunner runner(options.sweep_options(cache.get()));
  const Digest digest = cache ? hash_trace(trace) : Digest{};
  const double cmin =
      min_capacity_cached(trace, 0.90, delta, cache.get(),
                          cache ? &digest : nullptr)
          .cmin_iops;
  const double dc = overflow_headroom_iops(delta);

  std::printf("workload WS, Cmin(90%%, 50 ms) = %.0f IOPS, dC = %.0f\n\n",
              cmin, dc);

  std::vector<SweepCell> cells;
  for (const char* kind : {"SFQ", "WFQ", "WF2Q+", "DRR", "pClock"})
    cells.push_back(family_cell(
        trace, kind,
        [kind = std::string(kind), cmin, dc, delta] {
          return make_fq(kind, cmin, dc, delta);
        },
        cmin, delta, dc));
  // Weight-ratio sweep for SFQ: more overflow weight helps Q2 but starts to
  // squeeze Q1's reservation once it exceeds dC.
  for (double ratio : {32.0, 16.0, 8.0, 4.0, 2.0})
    cells.push_back(family_cell(
        trace, format_double(ratio, 0) + ":1",
        [ratio] {
          return std::unique_ptr<FairScheduler>(
              std::make_unique<SfqScheduler>(std::vector<double>{ratio, 1.0}));
        },
        cmin, delta, dc));
  const std::vector<SweepRow> rows = runner.run_cells(cells);

  AsciiTable table;
  table.add("Scheduler", "Q1 within 50ms", "Q2 mean (ms)", "Q2 p99 (ms)",
            "all within 50ms");
  for (std::size_t i = 0; i < 5; ++i) {
    const SweepRow& row = rows[i];
    const ClassReport& q2 = row.report.overflow;
    table.add(row.label,
              format_double(100 * row.report.primary.fraction_within_delta,
                            2) + "%",
              q2.count == 0 ? "-" : format_double(q2.mean_us / 1000.0, 1),
              q2.count == 0
                  ? "-"
                  : format_double(
                        to_ms(static_cast<Time>(row.extra.at("q2.p99_us"))),
                        0),
              format_double(100 * row.report.all.fraction_within_delta, 2) +
                  "%");
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("SFQ weight-ratio sweep (server capacity fixed at Cmin+dC):\n");
  AsciiTable sweep;
  sweep.add("Q1:Q2 weight", "Q1 within 50ms", "Q2 mean (ms)");
  for (std::size_t i = 5; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    const ClassReport& q2 = row.report.overflow;
    sweep.add(row.label,
              format_double(100 * row.report.primary.fraction_within_delta,
                            2) + "%",
              q2.count == 0 ? "-" : format_double(q2.mean_us / 1000.0, 1));
  }
  std::printf("%s", sweep.to_string().c_str());

  write_bench_json(options, runner, rows.size(), bench_now_seconds() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: fair-scheduler family behind FairQueue\n\n");
  run(parse_bench_args(argc, argv, "ablation_fq_family"));
  return 0;
}
