#include "fq/pclock.h"

#include <gtest/gtest.h>

namespace qos {
namespace {

TEST(PClock, ConformingRequestGetsLatencyDeadline) {
  PClockScheduler pc({PClockSla{.sigma = 4, .rho = 100, .delta = 10'000}});
  pc.enqueue(0, 1, 1.0, 0);
  auto d = pc.dequeue(0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->handle, 1u);
}

TEST(PClock, EarliestDeadlineFirstAcrossFlows) {
  // Flow 0 has a tight latency bound, flow 1 loose: flow 0 dispatches first
  // even when enqueued second.
  PClockScheduler pc({PClockSla{.sigma = 4, .rho = 100, .delta = 5'000},
                      PClockSla{.sigma = 4, .rho = 100, .delta = 50'000}});
  pc.enqueue(1, 10, 1.0, 0);
  pc.enqueue(0, 20, 1.0, 0);
  auto d = pc.dequeue(0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->flow, 0);
}

TEST(PClock, NonConformingDeadlinePushedOut) {
  // sigma = 1, rho = 100/s: the second back-to-back request lacks a token and
  // is due 1/rho = 10 ms later than a conforming one.
  PClockScheduler pc({PClockSla{.sigma = 1, .rho = 100, .delta = 5'000},
                      PClockSla{.sigma = 100, .rho = 100, .delta = 11'000}});
  pc.enqueue(0, 1, 1.0, 0);  // conforming: due 5 ms
  pc.enqueue(0, 2, 1.0, 0);  // non-conforming: due 5 + 10 = 15 ms
  pc.enqueue(1, 3, 1.0, 0);  // conforming: due 11 ms
  EXPECT_EQ(pc.dequeue(0)->handle, 1u);
  EXPECT_EQ(pc.dequeue(0)->handle, 3u);  // 11 ms beats 15 ms
  EXPECT_EQ(pc.dequeue(0)->handle, 2u);
}

TEST(PClock, TokensRefillOverTime) {
  // After earning tokens back, a later request is conforming again.
  PClockScheduler pc({PClockSla{.sigma = 1, .rho = 1000, .delta = 5'000}});
  pc.enqueue(0, 1, 1.0, 0);
  (void)pc.dequeue(0);
  // 1 ms later one token (rho = 1000/s) has been earned.
  pc.enqueue(0, 2, 1.0, 1'000);
  auto d = pc.dequeue(0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->handle, 2u);
}

TEST(PClock, FifoWithinFlow) {
  PClockScheduler pc({PClockSla{.sigma = 2, .rho = 100, .delta = 10'000}});
  for (std::uint64_t i = 0; i < 6; ++i) pc.enqueue(0, i, 1.0, 0);
  std::uint64_t expect = 0;
  while (auto d = pc.dequeue(0)) {
    EXPECT_EQ(d->handle, expect);
    ++expect;
  }
  EXPECT_EQ(expect, 6u);
}

TEST(PClock, WorkConservingAcrossFlows) {
  PClockScheduler pc({PClockSla{.sigma = 1, .rho = 10, .delta = 1'000},
                      PClockSla{.sigma = 1, .rho = 10, .delta = 1'000}});
  for (std::uint64_t i = 0; i < 10; ++i) pc.enqueue(0, i, 1.0, 0);
  int served = 0;
  while (pc.dequeue(0)) ++served;
  EXPECT_EQ(served, 10);
  EXPECT_TRUE(pc.empty());
}

TEST(PClock, BacklogAccessor) {
  PClockScheduler pc({PClockSla{}, PClockSla{}});
  pc.enqueue(1, 5, 1.0, 0);
  EXPECT_EQ(pc.backlog(0), 0u);
  EXPECT_EQ(pc.backlog(1), 1u);
}

}  // namespace
}  // namespace qos
