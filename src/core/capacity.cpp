#include "core/capacity.h"

#include <algorithm>
#include <cmath>

#include "core/rtt.h"
#include "util/check.h"

namespace qos {

double fraction_guaranteed(const Trace& trace, double capacity_iops,
                           Time delta) {
  return rtt_decompose(trace, capacity_iops, delta).admitted_fraction();
}

double overflow_headroom_iops(Time delta) {
  QOS_EXPECTS(delta > 0);
  return 1e6 / static_cast<double>(delta);
}

std::vector<CapacityPoint> capacity_profile(const Trace& trace, Time delta,
                                            std::vector<double> fractions) {
  std::sort(fractions.begin(), fractions.end());
  std::vector<CapacityPoint> out;
  out.reserve(fractions.size());
  CapacityHint hint;
  for (double f : fractions) {
    const CapacityResult r = min_capacity(trace, f, delta, hint);
    out.push_back({f, r.cmin_iops});
    // Cmin is non-decreasing in f, so this answer lower-bounds the next.
    hint.infeasible_below = static_cast<std::int64_t>(r.cmin_iops) - 1;
  }
  return out;
}

CapacityResult min_capacity(const Trace& trace, double fraction, Time delta,
                            CapacityHint hint) {
  QOS_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  QOS_EXPECTS(delta > 0);
  QOS_EXPECTS(hint.infeasible_below >= 0);
  QOS_EXPECTS(hint.feasible_at >= 0);
  QOS_EXPECTS(hint.feasible_at == 0 ||
              hint.feasible_at > hint.infeasible_below);
  CapacityResult result;
  if (trace.empty()) {
    result.cmin_iops = 0;
    result.achieved_fraction = 1.0;
    return result;
  }

  auto ok = [&](std::int64_t c) {
    ++result.probes;
    const double f = fraction_guaranteed(trace, static_cast<double>(c), delta);
    // Exact comparison is intended: fraction is a ratio of integers and the
    // caller passes targets like 0.90 that the ratio must meet or exceed.
    return f >= fraction;
  };

  bool verify = hint.verify;
#ifdef QOS_VERIFY_CAPACITY_HINTS
  verify = true;
#endif
  if (verify) {
    // Probe the asserted bounds outside the `ok` census so verification
    // never perturbs CapacityResult::probes (table outputs print it).
    if (hint.infeasible_below > 0) {
      QOS_CHECK(fraction_guaranteed(
                    trace, static_cast<double>(hint.infeasible_below), delta) <
                fraction);
    }
    if (hint.feasible_at > 0) {
      QOS_CHECK(fraction_guaranteed(
                    trace, static_cast<double>(hint.feasible_at), delta) >=
                fraction);
    }
  }

  std::int64_t lo = hint.infeasible_below;  // infeasible (or 0)
  std::int64_t hi;
  if (hint.feasible_at > 0) {
    hi = hint.feasible_at;  // bracket fully known: straight binary search
  } else {
    // Exponential doubling to bracket.  With no hint this probes 1, 2, 4,
    // ... exactly as the original unhinted search; with a lower bound it
    // starts just above it, so a warm start near the answer converges in
    // a couple of probes.
    hi = lo + 1;
    while (!ok(hi)) {
      lo = hi;
      hi *= 2;
      QOS_CHECK(hi < (1LL << 40));  // capacity explosion => logic error
    }
  }
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (ok(mid))
      hi = mid;
    else
      lo = mid;
  }
  result.cmin_iops = static_cast<double>(hi);
  result.achieved_fraction =
      fraction_guaranteed(trace, result.cmin_iops, delta);
  return result;
}

}  // namespace qos
