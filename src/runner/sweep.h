// SweepRunner — declarative experiment grids, fanned out over the pool.
//
// Every capacity-planning question in the paper is a grid of independent
// runs: Table 1 is trace x delta x fraction, Figure 6 is policy x fraction,
// the chaos harness is policy x fault-intensity.  A SweepCell names one
// grid point; SweepRunner evaluates cells concurrently (each cell stays a
// sequential simulation — parallelism is across cells only) and returns
// SweepRows ordered by cell index.
//
// Determinism contract: a cell's row is a pure function of the cell spec —
// the simulator is single-threaded and deterministic, per-cell metric
// registries are private to the evaluating thread, and rows land by index.
// Hence run(grid) with any thread count produces bit-identical rows, which
// tests/test_runner_sweep.cpp asserts across all policies.
//
// Caching: with a ResultCache attached, each cell's row is stored under a
// content digest of (trace bytes, shaping config, faults, degraded config,
// seed, salt).  Rows round-trip losslessly (doubles by bit pattern), so a
// cache hit is bit-identical to a recompute.  Cells with a custom scheduler
// factory or annotate hook are cached only when `custom_salt` is nonzero,
// since their closures cannot be hashed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/response_stats.h"
#include "core/shaper.h"
#include "fault/degraded_rtt.h"
#include "fault/fault_schedule.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "runner/result_cache.h"
#include "runner/thread_pool.h"
#include "sim/scheduler.h"
#include "trace/trace.h"

namespace qos {

/// One grid point.  `shaping` must not carry observability pointers or a
/// server decorator — the runner attaches a private registry per cell.
struct SweepCell {
  std::string label;       ///< row label, defaults to the policy name
  std::string trace_name;
  const Trace* trace = nullptr;  ///< not owned; must outlive the run

  ShapingConfig shaping;

  /// Fault injection: a non-empty schedule (or degraded admission, or
  /// use_chaos) routes the cell through run_chaos and fills the row's
  /// "chaos.*" extras.  use_chaos forces the chaos path even for a
  /// fault-free schedule — the baseline cells of a fault sweep need the
  /// same extras as their faulted siblings.
  FaultySchedule faults;
  bool use_chaos = false;
  bool use_degraded_admission = false;
  DegradedRttConfig degraded;
  double fault_intensity = 0;  ///< informational, copied into the row

  std::uint64_t seed = 0;         ///< informational + cache-key salt
  std::uint64_t custom_salt = 0;  ///< required (nonzero) to cache custom cells

  /// Custom evaluation: when set, the cell runs `make_scheduler()` against
  /// one ConstantRateServer per `server_iops` entry instead of
  /// shape_and_run.  The factory must build a fresh scheduler per call
  /// (cells may evaluate concurrently, and a miss after a cache probe
  /// re-invokes it).
  std::function<std::unique_ptr<Scheduler>()> make_scheduler;
  std::vector<double> server_iops;

  /// Optional extras extracted from the finished run on the worker thread;
  /// merged into SweepRow::extra.  Keys must contain no whitespace.
  std::function<void(const SimResult&, std::map<std::string, double>&)>
      annotate;
};

/// One result row.  Everything benches print lives here, so a cached row
/// substitutes for a recomputed one byte for byte.
struct SweepRow {
  // Cell coordinates.
  std::string label;
  std::string trace_name;
  Policy policy = Policy::kFcfs;
  double fraction = 0;
  Time delta = 0;
  double fault_intensity = 0;
  std::uint64_t seed = 0;

  // Results.
  double cmin_iops = 0;
  double headroom_iops = 0;
  ShapingReport report;
  ResponseStats::Buckets buckets;  ///< cumulative paper buckets, all classes
  std::map<std::string, double> extra;  ///< "chaos.*" + annotate output

  bool from_cache = false;  ///< runner metadata; excluded from the codec
};

/// Full cross-product grid.  cells() expands it in deterministic nested
/// order: trace (outer) -> delta -> fraction -> policy -> fault intensity.
struct SweepGrid {
  struct NamedTrace {
    std::string name;
    const Trace* trace = nullptr;
  };

  std::vector<NamedTrace> traces;
  std::vector<Policy> policies;
  std::vector<Time> deltas;
  std::vector<double> fractions;

  /// Brownout capacity-loss fractions; 0 means fault-free.  Non-zero
  /// intensities produce a brownout window [fault_begin, fault_end).
  std::vector<double> fault_intensities = {0.0};
  Time fault_begin = 10 * kUsPerSec;
  Time fault_end = 20 * kUsPerSec;

  std::vector<SweepCell> cells() const;
};

struct SweepOptions {
  int threads = 1;              ///< ThreadPool size (0 = hardware)
  ResultCache* cache = nullptr; ///< not owned; null disables caching

  /// Request-level tracing of every evaluated cell.  Traced cells bypass
  /// the cache entirely (no probe, no store): the span stream must be the
  /// run's own, identical whether or not a cache is attached or warm.
  bool trace = false;
  TracerConfig tracer = {};  ///< sampling/ring config for each cell's Tracer

  /// Engine profiling sink (not owned; null disables).  The runner records
  /// "sweep.*" phases: per-cell evaluation, cache probes/stores, trace
  /// digesting.  Thread-safe — workers record concurrently.
  ProfileCollector* profile = nullptr;
};

class SweepRunner {
 public:
  /// Cumulative across run()/run_cells() calls — bench_io reads these.
  struct RunStats {
    std::uint64_t cells = 0;
    std::uint64_t cache_hits = 0;
    double wall_seconds = 0;
  };

  explicit SweepRunner(SweepOptions options = {});

  std::vector<SweepRow> run(const SweepGrid& grid);
  std::vector<SweepRow> run_cells(std::span<const SweepCell> cells);

  /// The runner's pool, for callers interleaving their own parallel work
  /// (e.g. capacity_profile_parallel) with sweeps on one set of threads.
  ThreadPool& pool() { return pool_; }
  const ThreadPool& pool() const { return pool_; }
  ResultCache* cache() { return options_.cache; }
  const RunStats& stats() const { return stats_; }

  /// Traces collected so far, one per evaluated cell in cell-index order,
  /// cumulative across run()/run_cells() calls.  Empty unless
  /// SweepOptions::trace was set.
  const std::vector<TraceData>& traces() const { return traces_; }

  /// Evaluate one cell in isolation (no pool, no cache) — the reference
  /// the determinism and cache tests compare against.  The overload routes
  /// the run's event stream through `tracer` (annotated with the cell's
  /// label/trace/delta); null traces nothing.
  static SweepRow evaluate_cell(const SweepCell& cell);
  static SweepRow evaluate_cell(const SweepCell& cell, Tracer* tracer);

 private:
  SweepOptions options_;
  ThreadPool pool_;
  RunStats stats_;
  std::vector<TraceData> traces_;
};

/// Lossless row codec used by the cache tier (exposed for tests).
/// serialize + deserialize round-trips every field except `from_cache`.
std::string serialize_sweep_row(const SweepRow& row);
std::optional<SweepRow> deserialize_sweep_row(const std::string& bytes);

/// The cell's cache digest (exposed for tests asserting invalidation
/// granularity).  `trace_digest` is hash_trace(*cell.trace).
Digest sweep_cell_digest(const SweepCell& cell, const Digest& trace_digest);

}  // namespace qos
