# Empty dependencies file for bq_trace.
# This may be replaced when dependencies are built.
