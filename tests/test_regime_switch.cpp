// Regime-switching generator + fault-schedule composition.

#include <gtest/gtest.h>

#include "fault/fault_schedule.h"
#include "trace/generator.h"
#include "trace/trace.h"
#include "util/time.h"

namespace qos {
namespace {

RegimeSchedule two_phase(double rate0, double rate1, Time shift) {
  RegimeSchedule s;
  s.phase(0, rate0).phase(shift, rate1);
  return s;
}

TEST(RegimeSwitch, Deterministic) {
  const RegimeSchedule schedule = two_phase(500, 2000, 5 * kUsPerSec);
  const Trace a = generate_regime_switching(schedule, 10 * kUsPerSec, 7);
  const Trace b = generate_regime_switching(schedule, 10 * kUsPerSec, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].lba, b[i].lba);
    EXPECT_EQ(a[i].is_write, b[i].is_write);
  }
  const Trace c = generate_regime_switching(schedule, 10 * kUsPerSec, 8);
  EXPECT_NE(a.size(), c.size());
}

TEST(RegimeSwitch, PhaseRatesRealized) {
  const Time shift = 5 * kUsPerSec;
  const Trace t =
      generate_regime_switching(two_phase(500, 2000, shift), 10 * kUsPerSec, 1);
  std::size_t before = 0;
  for (const Request& r : t)
    if (r.arrival < shift) ++before;
  const std::size_t after = t.size() - before;
  // 5 s at 500 IOPS vs 5 s at 2000 IOPS, each within ±20% of expectation.
  EXPECT_NEAR(static_cast<double>(before), 2500, 500);
  EXPECT_NEAR(static_cast<double>(after), 10000, 2000);
}

TEST(RegimeSwitch, PhaseContentIndependentOfOtherPhases) {
  const Time shift = 5 * kUsPerSec;
  const Trace a =
      generate_regime_switching(two_phase(500, 2000, shift), 10 * kUsPerSec, 3);
  const Trace b =
      generate_regime_switching(two_phase(500, 8000, shift), 10 * kUsPerSec, 3);
  // Phase 0's arrival instants must be identical: only phase 1 changed.
  std::vector<Time> first_a, first_b;
  for (const Request& r : a)
    if (r.arrival < shift) first_a.push_back(r.arrival);
  for (const Request& r : b)
    if (r.arrival < shift) first_b.push_back(r.arrival);
  EXPECT_EQ(first_a, first_b);
}

TEST(RegimeSwitch, BatchOverlayConfinedToItsPhase) {
  BatchSpec batches;
  batches.batches_per_sec = 50;
  batches.mean_size = 16;
  RegimeSchedule schedule;
  schedule.phase(0, 100).phase(5 * kUsPerSec, 100, batches);
  const Trace t = generate_regime_switching(schedule, 10 * kUsPerSec, 11);
  std::size_t before = 0, after = 0;
  for (const Request& r : t) {
    if (r.arrival < 5 * kUsPerSec) {
      ++before;
    } else {
      ++after;
    }
  }
  // The bursty half carries the overlay's extra mass on top of the base.
  EXPECT_GT(after, 3 * before);
}

TEST(RegimeSwitch, ActiveAt) {
  const RegimeSchedule s = two_phase(500, 2000, 5 * kUsPerSec);
  ASSERT_NE(s.active_at(0), nullptr);
  EXPECT_EQ(s.active_at(0)->rate_iops, 500);
  EXPECT_EQ(s.active_at(5 * kUsPerSec - 1)->rate_iops, 500);
  EXPECT_EQ(s.active_at(5 * kUsPerSec)->rate_iops, 2000);
  EXPECT_EQ(s.active_at(99 * kUsPerSec)->rate_iops, 2000);
}

TEST(RegimeSwitch, ValidateRejectsBadSchedules) {
  RegimeSchedule empty;
  EXPECT_TRUE(empty.validate());  // vacuously valid; generator requires
                                  // non-empty separately
  const Trace t = generate_regime_switching(
      RegimeSchedule().phase(0, 300), kUsPerSec, 5);
  EXPECT_GT(t.size(), 0u);
  EXPECT_TRUE(t.validate());
}

TEST(RegimeSwitch, FaultScheduleShifted) {
  FaultySchedule s;
  s.brownout(kUsPerSec, 2 * kUsPerSec, 0.4).stall(3 * kUsPerSec,
                                                  4 * kUsPerSec);
  const FaultySchedule moved = s.shifted(10 * kUsPerSec);
  ASSERT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved.windows()[0].begin, 11 * kUsPerSec);
  EXPECT_EQ(moved.windows()[0].end, 12 * kUsPerSec);
  EXPECT_EQ(moved.windows()[1].begin, 13 * kUsPerSec);
  EXPECT_TRUE(moved.validate());
}

TEST(RegimeSwitch, FaultScheduleShiftedClipsAndDrops) {
  FaultySchedule s;
  s.brownout(0, 2 * kUsPerSec, 0.4)
      .stall(3 * kUsPerSec, 4 * kUsPerSec)
      .brownout(5 * kUsPerSec, 6 * kUsPerSec, 0.2);
  const FaultySchedule moved = s.shifted(-7 * kUsPerSec / 2);  // -3.5 s
  // Window 1 fell entirely before 0 (dropped), window 2 straddles (clipped),
  // window 3 moves intact.
  ASSERT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved.windows()[0].begin, 0);
  EXPECT_EQ(moved.windows()[0].end, kUsPerSec / 2);
  EXPECT_EQ(moved.windows()[1].begin, 3 * kUsPerSec / 2);
  EXPECT_TRUE(moved.validate());
}

TEST(RegimeSwitch, FaultScheduleMergedComposesWithRegimeShifts) {
  // Chaos background noise plus a brownout authored relative to a regime
  // shift: the composition idiom the control-plane bench uses.
  const Time shift = 10 * kUsPerSec;
  FaultySchedule background;
  background.brownout(2 * kUsPerSec, 3 * kUsPerSec, 0.3);
  FaultySchedule at_shift;  // authored relative to the shift instant
  at_shift.brownout(0, kUsPerSec, 0.5);
  const FaultySchedule combined =
      FaultySchedule::merged(background, at_shift.shifted(shift));
  ASSERT_EQ(combined.size(), 2u);
  EXPECT_TRUE(combined.validate());
  EXPECT_EQ(combined.windows()[1].begin, shift);
  ASSERT_NE(combined.active_at(shift), nullptr);
  EXPECT_DOUBLE_EQ(combined.active_at(shift)->severity, 0.5);
  EXPECT_EQ(combined.active_at(4 * kUsPerSec), nullptr);
}

}  // namespace
}  // namespace qos
