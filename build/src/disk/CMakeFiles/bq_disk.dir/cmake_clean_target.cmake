file(REMOVE_RECURSE
  "libbq_disk.a"
)
