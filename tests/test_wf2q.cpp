#include "fq/wf2q.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace qos {
namespace {

TEST(Wf2q, ProportionalShareUnderBacklog) {
  Wf2qPlusScheduler wf({2.0, 1.0});
  for (std::uint64_t i = 0; i < 60; ++i) {
    wf.enqueue(0, i, 1.0, 0);
    wf.enqueue(1, 1000 + i, 1.0, 0);
  }
  int flow0 = 0;
  for (int i = 0; i < 60; ++i) {
    auto d = wf.dequeue(0);
    ASSERT_TRUE(d);
    if (d->flow == 0) ++flow0;
  }
  EXPECT_NEAR(flow0, 40, 2);
}

TEST(Wf2q, WorstCaseFairness) {
  // WF2Q's defining property vs plain WFQ: with equal weights a flow never
  // runs more than one service quantum ahead of its fluid share.  Count the
  // maximum lead of either flow over a long fully backlogged run.
  Wf2qPlusScheduler wf({1.0, 1.0});
  for (std::uint64_t i = 0; i < 200; ++i) {
    wf.enqueue(0, i, 1.0, 0);
    wf.enqueue(1, 1000 + i, 1.0, 0);
  }
  int served[2] = {0, 0};
  for (int i = 0; i < 400; ++i) {
    auto d = wf.dequeue(0);
    ASSERT_TRUE(d);
    ++served[d->flow];
    EXPECT_LE(std::abs(served[0] - served[1]), 1);
  }
}

TEST(Wf2q, WorkConservingWhenOneFlowIdle) {
  Wf2qPlusScheduler wf({1.0, 99.0});
  for (std::uint64_t i = 0; i < 7; ++i) wf.enqueue(0, i, 1.0, 0);
  int count = 0;
  while (auto d = wf.dequeue(0)) {
    EXPECT_EQ(d->flow, 0);
    ++count;
  }
  EXPECT_EQ(count, 7);
}

TEST(Wf2q, FifoWithinFlow) {
  Wf2qPlusScheduler wf({1.0, 2.0});
  for (std::uint64_t i = 0; i < 10; ++i) wf.enqueue(1, i, 1.0, 0);
  std::uint64_t expect = 0;
  while (auto d = wf.dequeue(0)) {
    EXPECT_EQ(d->handle, expect);
    ++expect;
  }
}

TEST(Wf2q, VirtualTimeAdvances) {
  Wf2qPlusScheduler wf({1.0, 1.0});
  wf.enqueue(0, 1, 1.0, 0);
  wf.enqueue(0, 2, 1.0, 0);
  const double v0 = wf.virtual_time();
  (void)wf.dequeue(0);
  (void)wf.dequeue(0);
  EXPECT_GT(wf.virtual_time(), v0);
}

TEST(Wf2q, HeavierCostsConsumeMoreShare) {
  // Flow 0 sends cost-2 items, flow 1 cost-1, equal weights: flow 1 should
  // dispatch ~2 items per flow-0 item.
  Wf2qPlusScheduler wf({1.0, 1.0});
  for (std::uint64_t i = 0; i < 20; ++i) wf.enqueue(0, i, 2.0, 0);
  for (std::uint64_t i = 0; i < 40; ++i) wf.enqueue(1, 100 + i, 1.0, 0);
  int served[2] = {0, 0};
  for (int i = 0; i < 30; ++i) {
    auto d = wf.dequeue(0);
    ASSERT_TRUE(d);
    ++served[d->flow];
  }
  EXPECT_NEAR(served[1], 2 * served[0], 3);
}

TEST(Wf2q, EmptySchedulerIdles) {
  Wf2qPlusScheduler wf({1.0});
  EXPECT_FALSE(wf.dequeue(0).has_value());
}

}  // namespace
}  // namespace qos
