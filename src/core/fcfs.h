// FCFS baseline: no decomposition, one queue, one server (paper Section 3.2,
// "base case for the evaluation").  Bursts spill over and delay well-behaved
// requests — the behaviour the shaping framework eliminates.
//
// Occupancy convention: like every scheduler publishing "q1.occupancy",
// FCFS reports *pending* requests — queued plus in service — updated on
// admission and completion (dispatch merely moves a request from queued to
// in-service and leaves the census unchanged).  See obs/metrics.h.
#pragma once

#include "obs/metrics.h"
#include "obs/sink.h"
#include "sim/scheduler.h"
#include "util/check.h"
#include "util/ring_buffer.h"

namespace qos {

class FcfsScheduler final : public Scheduler {
 public:
  int server_count() const override { return 1; }

  void attach_observability(EventSink* sink,
                            MetricRegistry* registry) override {
    probe_ = Probe(sink);
    if (registry != nullptr) {
      enqueued_ = &registry->counter("fcfs.enqueued");
      q1_occ_ = &registry->occupancy("q1.occupancy");
    }
  }

  void on_arrival(const Request& r, Time now) override {
    queue_.push_back(r);
    ++len_q1_;
    if (enqueued_ != nullptr) enqueued_->add();
    if (q1_occ_ != nullptr) q1_occ_->update(now, len_q1_);
    if (probe_) {
      // FCFS makes no admission decision: every request "admits" into the
      // one queue with no bound, reported as maxQ1 = 0 (unbounded).
      probe_.emit({.time = now,
                   .seq = r.seq,
                   .a = len_q1_,
                   .b = 0,
                   .client = r.client,
                   .kind = EventKind::kAdmit,
                   .klass = ServiceClass::kPrimary});
    }
  }

  std::optional<Dispatch> next_for(int server, Time) override {
    QOS_EXPECTS(server == 0);
    if (queue_.empty()) return std::nullopt;
    Dispatch d{queue_.front(), ServiceClass::kPrimary};
    queue_.pop_front();
    return d;
  }

  void on_complete(const Request&, ServiceClass, int, Time now) override {
    QOS_CHECK(len_q1_ > 0);
    --len_q1_;
    if (q1_occ_ != nullptr) q1_occ_->update(now, len_q1_);
  }

  /// Pending requests (queued + in service).
  std::int64_t len_q1() const { return len_q1_; }

 private:
  RingBuffer<Request> queue_;
  std::int64_t len_q1_ = 0;  ///< pending requests (queued + in service)

  Probe probe_;
  Counter* enqueued_ = nullptr;
  OccupancySeries* q1_occ_ = nullptr;
};

}  // namespace qos
