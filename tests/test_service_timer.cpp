#include "util/service_timer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qos {
namespace {

TEST(ServiceTimer, IntegerCapacityExact) {
  ServiceTimer timer(1000);  // exactly 1000 us per request
  for (int i = 0; i < 100; ++i) EXPECT_EQ(timer.next(), 1000);
}

TEST(ServiceTimer, LongRunRateMatchesCapacity) {
  const double capacity = 417;  // odd IOPS from the paper's Figure 4
  ServiceTimer timer(capacity);
  Time total = 0;
  const int n = 1'000'000;
  for (int i = 0; i < n; ++i) total += timer.next();
  const double achieved = static_cast<double>(n) / to_sec(total);
  EXPECT_NEAR(achieved, capacity, 0.001);
}

TEST(ServiceTimer, CumulativeNeverExceedsIdeal) {
  // sum of the first k durations == floor(k * period): never serves slower
  // than the fluid server and never more than 1 us faster.
  ServiceTimer timer(733);
  const double period = 1e6 / 733;
  double ideal = 0;
  Time total = 0;
  for (int k = 1; k <= 10'000; ++k) {
    total += timer.next();
    ideal += period;
    EXPECT_LE(static_cast<double>(total), ideal + 1e-6);
    // - 1.0 for the floor dithering, small epsilon for the fp accumulation
    // in `ideal` itself.
    EXPECT_GE(static_cast<double>(total), ideal - 1.0 - 1e-6);
  }
}

TEST(ServiceTimer, ResetClearsPhase) {
  ServiceTimer a(733), b(733);
  (void)a.next();
  (void)a.next();
  a.reset();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(ServiceTimer, PeriodAccessor) {
  ServiceTimer timer(500);
  EXPECT_DOUBLE_EQ(timer.period_us(), 2000.0);
}

TEST(ServiceTimer, HighCapacityYieldsSubMicrosecondSlots) {
  // 4 M IOPS => period 0.25 us: most slots are 0 (callers clamp to 1);
  // the timer itself reports the dithered grid durations.
  ServiceTimer timer(4'000'000);
  Time total = 0;
  for (int i = 0; i < 4; ++i) total += timer.next();
  EXPECT_EQ(total, 1);  // 4 * 0.25 us == 1 us
}

}  // namespace
}  // namespace qos
