# Empty compiler generated dependencies file for fig8_diff_multiplex.
# This may be replaced when dependencies are built.
