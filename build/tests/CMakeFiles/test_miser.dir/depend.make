# Empty dependencies file for test_miser.
# This may be replaced when dependencies are built.
