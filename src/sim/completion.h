// Per-request outcome record produced by the simulator.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace qos {

/// Service class a request was assigned by decomposition.
enum class ServiceClass : std::uint8_t {
  kPrimary = 0,   ///< Q1 — guaranteed response time
  kOverflow = 1,  ///< Q2 — best effort
};

struct CompletionRecord {
  std::uint64_t seq = 0;
  std::uint32_t client = 0;
  Time arrival = 0;
  Time start = 0;   ///< instant service began
  Time finish = 0;  ///< instant service completed
  ServiceClass klass = ServiceClass::kPrimary;
  std::uint8_t server = 0;

  Time response_time() const { return finish - arrival; }
  Time wait_time() const { return start - arrival; }

  friend bool operator==(const CompletionRecord&,
                         const CompletionRecord&) = default;
};

}  // namespace qos
