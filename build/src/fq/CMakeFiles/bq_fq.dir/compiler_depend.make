# Empty compiler generated dependencies file for bq_fq.
# This may be replaced when dependencies are built.
