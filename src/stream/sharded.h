// Sharded deterministic simulation: one run partitioned across cores by
// tenant, bit-identical to the serial reference at any shard count.
//
// The logical partition is the tenant (Request::client): each tenant gets
// its own Scheduler + Server lane from a TenantFactory, which is the
// provisioning model the control plane already uses — tenants share nothing,
// so lanes can advance independently.  What forces coordination is not lane
// coupling but the *streaming input* (one globally arrival-sorted stream)
// and the *deterministic output* (one canonical completion order).  Both are
// provided by a conservative virtual-time barrier, classic conservative PDES
// with lookahead δ:
//
//   window k:  feed every arrival in [W, W+δ) to its lane's inbox;
//              advance all lanes to W+δ in parallel (the barrier step);
//              merge the lanes' window completions canonically and emit.
//
// Lookahead here is exact, not estimated: a lane can always advance to the
// window edge because no event outside its own inbox can affect it.  Windows
// jump over empty virtual time (W realigns to the next event), so sparse
// traces don't pay per-window overhead.
//
// Determinism argument (tests/test_sharded_sim.cpp asserts all of it):
//   * each lane's event sequence is a pure function of its input — the
//     windowed advance_until cuts compose to exactly the per-tenant serial
//     reference (SimEngine's resumability contract);
//   * the thread pool only decides *which worker* runs a lane's window, never
//     the lane's state evolution, so the shard count is pure parallelism;
//   * window completions are merged by tenant-ascending concatenation +
//     stable sort on (finish, seq, server) — a canonical order independent
//     of both thread scheduling and shard count.  Windows tile virtual time,
//     so per-window merges concatenate into a globally sorted sequence.
//
// Memory: one window of arrivals + per-lane in-flight state + one window of
// completions — bounded by burst density, not run length.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "obs/sharded_sink.h"
#include "obs/sink.h"
#include "sim/scheduler.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "stream/stream.h"
#include "util/time.h"

namespace qos::stream {

/// One tenant's independent service lane, as built by a TenantFactory.
struct TenantSim {
  std::unique_ptr<Scheduler> scheduler;
  std::vector<std::unique_ptr<Server>> servers;  ///< size == server_count()
};

/// Builds the lane for a tenant the first time one of its requests arrives.
/// Must be deterministic in `client`; it is only ever called on the
/// coordinator thread, in first-arrival order.
using TenantFactory = std::function<TenantSim(std::uint32_t client)>;

struct ShardedOptions {
  /// Worker count including the caller (ThreadPool semantics): 1 is the
  /// serial reference every other count must match bit for bit.
  int shards = 1;

  /// δ — the barrier window width in virtual time.  Purely a
  /// throughput/memory knob: wider windows amortize barriers but buffer more
  /// arrivals; results are identical for any value.
  Time lookahead = 10'000;

  /// Observability (both optional, borrowed, coordinator-thread consumers).
  /// When `sink` is non-null every lane gets a private buffered sink
  /// (obs/sharded_sink.h); at each barrier the coordinator merges the lane
  /// buffers canonically — (time, seq, server), the completion merge's
  /// order — and forwards one stream here, byte-identical at any shard
  /// count.  When `registry` is non-null every lane records into a private
  /// MetricRegistry, fanned in tenant-ascending after the run
  /// (MetricRegistry::fan_in), so snapshots are also shard-independent.
  EventSink* sink = nullptr;
  MetricRegistry* registry = nullptr;

  /// Overlap the event drain (canonical merge + `sink` consumer chain) with
  /// the next window's parallel advance on an internal drain thread —
  /// bounded at one pending window, so memory stays two windows deep (see
  /// obs/sharded_sink.h).  The stream `sink` observes is byte-identical
  /// either way; with overlap it is driven from that internal thread while
  /// the run is in flight (it is never called concurrently, and the run's
  /// end joins the thread before returning).  Disable to drive `sink`
  /// strictly from the coordinator between barriers.
  bool overlap_drain = true;
};

struct ShardedStats {
  std::uint64_t requests = 0;
  std::uint64_t dispatches = 0;
  std::uint64_t completions = 0;
  std::uint64_t windows = 0;  ///< barrier steps taken (empty time skipped)
  std::uint64_t tenants = 0;  ///< lanes created
  Time makespan = 0;          ///< last completion instant

  /// When ShardedOptions::sink was set: how many events the canonical merge
  /// forwarded, and the order-sensitive digest of that stream (folded inline
  /// during the merge, so it is free to read).  Equal digests across shard
  /// counts certify byte-identical event streams.
  std::uint64_t events_forwarded = 0;
  EventStreamDigest event_digest;

  std::uint64_t events() const { return requests + dispatches + completions; }
};

/// Drive a multi-tenant stream through per-tenant lanes on `shards` threads.
/// Completions reach `out` in the canonical merged order (finish, then seq,
/// then server), one window at a time.  Observability is wired through
/// ShardedOptions::sink / ::registry: lanes buffer events privately while
/// they advance concurrently, and the coordinator re-serializes them into
/// the canonical global order at every barrier flush, so a downstream sink
/// (probe, Tracer, SlaBreachDetector) sees the same stream a 1-shard run
/// produces.
ShardedStats simulate_sharded(
    RequestStream& requests, const TenantFactory& factory,
    const ShardedOptions& options,
    const std::function<void(const CompletionRecord&)>& out);

/// Materializing convenience: completions in the canonical merged order.
/// Interchangeable with concatenating per-tenant serial runs and sorting by
/// (finish, seq, server).
SimResult simulate_sharded(RequestStream& requests,
                           const TenantFactory& factory,
                           const ShardedOptions& options = {});

}  // namespace qos::stream
