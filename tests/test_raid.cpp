#include "disk/raid.h"

#include <gtest/gtest.h>

#include <set>

#include "disk/disk_model.h"
#include "disk/raid_qos_scheduler.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace qos {
namespace {

TEST(RaidGeometry, Validity) {
  EXPECT_TRUE((RaidGeometry{RaidLevel::kRaid0, 2, 128}).valid());
  EXPECT_FALSE((RaidGeometry{RaidLevel::kRaid0, 1, 128}).valid());
  EXPECT_TRUE((RaidGeometry{RaidLevel::kRaid1, 4, 128}).valid());
  EXPECT_FALSE((RaidGeometry{RaidLevel::kRaid1, 3, 128}).valid());
  EXPECT_TRUE((RaidGeometry{RaidLevel::kRaid5, 3, 128}).valid());
  EXPECT_FALSE((RaidGeometry{RaidLevel::kRaid5, 2, 128}).valid());
  EXPECT_FALSE((RaidGeometry{RaidLevel::kRaid0, 2, 0}).valid());
}

TEST(RaidMapper, Raid0StripesRoundRobin) {
  RaidMapper m({RaidLevel::kRaid0, 4, 8});
  // Stripe units of 8 blocks rotate across 4 disks.
  EXPECT_EQ(m.map_read(0).disk, 0);
  EXPECT_EQ(m.map_read(8).disk, 1);
  EXPECT_EQ(m.map_read(16).disk, 2);
  EXPECT_EQ(m.map_read(24).disk, 3);
  EXPECT_EQ(m.map_read(32).disk, 0);
  EXPECT_EQ(m.map_read(32).lba, 8u);  // second row
  EXPECT_EQ(m.map_read(5).lba, 5u);   // offset within unit preserved
}

TEST(RaidMapper, Raid0WriteSingleTarget) {
  RaidMapper m({RaidLevel::kRaid0, 4, 8});
  EXPECT_EQ(m.write_targets(40).size(), 1u);
}

TEST(RaidMapper, Raid1MirrorPairs) {
  RaidMapper m({RaidLevel::kRaid1, 4, 8});  // 2 data columns
  // Data goes to even disks, mirrors to the adjacent odd disks.
  EXPECT_EQ(m.map_read(0).disk, 0);
  EXPECT_EQ(m.map_mirror(0).disk, 1);
  EXPECT_EQ(m.map_read(8).disk, 2);
  EXPECT_EQ(m.map_mirror(8).disk, 3);
  EXPECT_EQ(m.map_mirror(8).lba, m.map_read(8).lba);
  auto writes = m.write_targets(8);
  ASSERT_EQ(writes.size(), 2u);
  EXPECT_NE(writes[0].disk, writes[1].disk);
}

TEST(RaidMapper, Raid5ParityRotates) {
  RaidMapper m({RaidLevel::kRaid5, 4, 8});
  // Left-symmetric: row 0 parity on disk 3, row 1 on disk 2, ...
  EXPECT_EQ(m.parity_disk(0), 3);
  EXPECT_EQ(m.parity_disk(3 * 8), 2);   // row 1 (3 data units per row)
  EXPECT_EQ(m.parity_disk(6 * 8), 1);
  EXPECT_EQ(m.parity_disk(9 * 8), 0);
  EXPECT_EQ(m.parity_disk(12 * 8), 3);  // wraps
}

TEST(RaidMapper, Raid5DataNeverOnParityDisk) {
  RaidMapper m({RaidLevel::kRaid5, 5, 8});
  for (std::uint64_t lba = 0; lba < 5'000; lba += 8) {
    EXPECT_NE(m.map_read(lba).disk, m.parity_disk(lba)) << "lba " << lba;
  }
}

TEST(RaidMapper, Raid5RowUsesEveryDataDisk) {
  RaidMapper m({RaidLevel::kRaid5, 4, 8});
  // Each row of 3 data units must land on 3 distinct non-parity disks.
  for (std::uint64_t row = 0; row < 8; ++row) {
    std::set<int> disks;
    for (std::uint64_t c = 0; c < 3; ++c)
      disks.insert(m.map_read((row * 3 + c) * 8).disk);
    EXPECT_EQ(disks.size(), 3u) << "row " << row;
    EXPECT_EQ(disks.count(m.parity_disk(row * 3 * 8)), 0u);
  }
}

TEST(RaidMapper, Raid5WriteHitsDataAndParity) {
  RaidMapper m({RaidLevel::kRaid5, 4, 8});
  auto writes = m.write_targets(0);
  ASSERT_EQ(writes.size(), 2u);
  EXPECT_EQ(writes[0].disk, m.map_read(0).disk);
  EXPECT_EQ(writes[1].disk, m.parity_disk(0));
}

TEST(RaidMapper, DataDiskCounts) {
  EXPECT_EQ(RaidMapper({RaidLevel::kRaid0, 4, 8}).data_disks(), 4);
  EXPECT_EQ(RaidMapper({RaidLevel::kRaid1, 4, 8}).data_disks(), 2);
  EXPECT_EQ(RaidMapper({RaidLevel::kRaid5, 4, 8}).data_disks(), 3);
}

// ---------------------------------------------------------------------------
// RaidQosScheduler end-to-end on member DiskServers.

SimResult run_raid(const Trace& t, RaidGeometry geometry, double admission,
                   Time delta) {
  RaidQosScheduler sched(geometry, admission, delta);
  std::vector<DiskServer> disks(static_cast<std::size_t>(geometry.disks));
  std::vector<Server*> servers;
  for (auto& d : disks) servers.push_back(&d);
  return simulate(t, sched, servers);
}

TEST(RaidQos, ReadOnlyCompletesExactly) {
  AddressSpec addr;
  addr.lba_max = 1'000'000;
  addr.write_fraction = 0.0;
  Trace t = generate_poisson(300, 10 * kUsPerSec, 701, addr);
  SimResult r =
      run_raid(t, {RaidLevel::kRaid0, 4, 128}, 400, from_ms(50));
  EXPECT_EQ(r.completions.size(), t.size());  // reads don't fan out
}

TEST(RaidQos, WritesFanOutOnRaid1) {
  AddressSpec addr;
  addr.lba_max = 1'000'000;
  addr.write_fraction = 1.0;
  Trace t = generate_poisson(200, 5 * kUsPerSec, 703, addr);
  SimResult r =
      run_raid(t, {RaidLevel::kRaid1, 4, 128}, 300, from_ms(50));
  // Every write produces a mirror companion.
  EXPECT_EQ(r.completions.size(), 2 * t.size());
  std::size_t companions = 0;
  for (const auto& c : r.completions)
    if (RaidQosScheduler::is_companion(c)) ++companions;
  EXPECT_EQ(companions, t.size());
}

TEST(RaidQos, StripingSpreadsLoadAcrossDisks) {
  AddressSpec addr;
  addr.lba_max = 8'000'000;
  addr.write_fraction = 0.0;
  addr.sequential_prob = 0.0;
  Trace t = generate_poisson(400, 10 * kUsPerSec, 707, addr);
  RaidQosScheduler sched({RaidLevel::kRaid0, 4, 128}, 500, from_ms(50));
  std::vector<DiskServer> disks(4);
  std::vector<Server*> servers;
  for (auto& d : disks) servers.push_back(&d);
  SimResult r = simulate(t, sched, servers);
  std::size_t per_disk[4] = {0, 0, 0, 0};
  for (const auto& c : r.completions) ++per_disk[c.server];
  for (int i = 0; i < 4; ++i)
    EXPECT_GT(per_disk[i], t.size() / 8) << "disk " << i;
}

TEST(RaidQos, ArrayOutperformsSingleDiskOnBurst) {
  // 200 random reads at t=0: 4 striped disks drain ~4x faster.
  AddressSpec addr;
  addr.lba_max = 8'000'000;
  addr.write_fraction = 0.0;
  std::vector<Request> reqs;
  Rng rng(709);
  for (int i = 0; i < 200; ++i) {
    Request r;
    r.arrival = 0;
    r.lba = static_cast<std::uint64_t>(rng.uniform_int(0, 8'000'000));
    reqs.push_back(r);
  }
  Trace t(std::move(reqs));

  SimResult raid =
      run_raid(t, {RaidLevel::kRaid0, 4, 128}, 10'000, from_ms(1000));

  RaidQosScheduler single_sched({RaidLevel::kRaid0, 2, 1u << 30}, 10'000,
                                from_ms(1000));
  // Single-disk comparison via FCFS on one DiskServer:
  // reuse the fluid comparison instead — all on disk 0 with one huge stripe.
  std::vector<DiskServer> disks(2);
  std::vector<Server*> servers;
  for (auto& d : disks) servers.push_back(&d);
  SimResult narrow = simulate(t, single_sched, servers);

  EXPECT_LT(raid.makespan(), narrow.makespan() * 3 / 4);
}

}  // namespace
}  // namespace qos
