#include "core/multi_class.h"

#include <algorithm>

#include "util/check.h"
#include "util/service_timer.h"

namespace qos {
namespace {

void check_tiers(std::span<const ClassSpec> tiers) {
  QOS_EXPECTS(!tiers.empty());
  for (std::size_t i = 0; i < tiers.size(); ++i) {
    QOS_EXPECTS(tiers[i].capacity_iops > 0);
    QOS_EXPECTS(tiers[i].delta > 0);
    if (i > 0) QOS_EXPECTS(tiers[i].delta > tiers[i - 1].delta);
  }
}

}  // namespace

MultiClassDecomposition multi_class_decompose(
    const Trace& trace, std::span<const ClassSpec> tiers) {
  check_tiers(tiers);
  const std::size_t k = tiers.size();

  // Per-tier dedicated-server replay state (same scheme as rtt_decompose).
  struct TierState {
    std::int64_t max_q1;
    ServiceTimer timer;
    std::vector<Time> finish;
    std::size_t completed = 0;
    Time last_finish = 0;
  };
  std::vector<TierState> state;
  state.reserve(k);
  for (const auto& t : tiers)
    state.push_back(TierState{max_q1_slots(t.capacity_iops, t.delta),
                              ServiceTimer(t.capacity_iops),
                              {},
                              0,
                              0});

  MultiClassDecomposition out;
  out.tier.assign(trace.size(), static_cast<std::uint8_t>(k));
  out.counts.assign(k + 1, 0);

  for (const auto& r : trace) {
    bool placed = false;
    for (std::size_t i = 0; i < k && !placed; ++i) {
      TierState& ts = state[i];
      while (ts.completed < ts.finish.size() &&
             ts.finish[ts.completed] <= r.arrival)
        ++ts.completed;
      const auto len =
          static_cast<std::int64_t>(ts.finish.size() - ts.completed);
      if (len < ts.max_q1) {
        const Time start = std::max(r.arrival, ts.last_finish);
        Time dur = ts.timer.next();
        if (dur <= 0) dur = 1;
        ts.last_finish = start + dur;
        ts.finish.push_back(ts.last_finish);
        out.tier[r.seq] = static_cast<std::uint8_t>(i);
        placed = true;
      }
    }
    ++out.counts[out.tier[r.seq]];
  }
  return out;
}

MultiClassScheduler::MultiClassScheduler(std::vector<ClassSpec> tiers) {
  check_tiers(tiers);
  for (const auto& t : tiers)
    admissions_.emplace_back(t.capacity_iops, t.delta);
  queues_.resize(tiers.size() + 1);
  pending_.assign(tiers.size(), 0);
}

void MultiClassScheduler::on_arrival(const Request& r, Time) {
  std::uint8_t assigned = static_cast<std::uint8_t>(admissions_.size());
  for (std::size_t i = 0; i < admissions_.size(); ++i) {
    if (admissions_[i].admit(pending_[i])) {
      ++pending_[i];
      assigned = static_cast<std::uint8_t>(i);
      break;
    }
  }
  queues_[assigned].push_back(r);
  if (tier_by_seq_.size() <= r.seq) tier_by_seq_.resize(r.seq + 1, 0xff);
  tier_by_seq_[r.seq] = assigned;
}

std::optional<Scheduler::Dispatch> MultiClassScheduler::next_for(int server,
                                                                 Time) {
  QOS_EXPECTS(server == 0);
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i].empty()) continue;
    // Bounded tiers ride the primary class label; the best-effort queue is
    // the overflow class.
    Dispatch d{queues_[i].front(), i < admissions_.size()
                                       ? ServiceClass::kPrimary
                                       : ServiceClass::kOverflow};
    queues_[i].pop_front();
    return d;
  }
  return std::nullopt;
}

void MultiClassScheduler::on_complete(const Request& r, ServiceClass,
                                      int, Time) {
  const std::uint8_t tier = tier_of(r.seq);
  if (tier < pending_.size()) {
    QOS_CHECK(pending_[tier] > 0);
    --pending_[tier];
  }
}

std::uint8_t MultiClassScheduler::tier_of(std::uint64_t seq) const {
  QOS_EXPECTS(seq < tier_by_seq_.size());
  QOS_EXPECTS(tier_by_seq_[seq] != 0xff);
  return tier_by_seq_[seq];
}

}  // namespace qos
