// Proportional-share fair queuing substrate.
//
// The paper's FairQueue recombination multiplexes Q1 and Q2 on one server
// using a fair scheduler "like WF2Q, SFQ, pClock".  This library implements
// that cited family from scratch over an abstract flow/cost model:
//
//   * SfqScheduler   — Start-time Fair Queueing (Goyal/Vin/Cheng 1997)
//   * Wf2qPlusScheduler — WF2Q+ (Bennett/Zhang 1996, + virtual-time update)
//   * PClockScheduler — pClock-style token-bucket EDF tagging
//                        (Gulati/Merchant/Varman 2007)
//
// Items are opaque handles with a service cost; the schedulers only decide
// order.  All are O(log n_flows) per operation and fully deterministic
// (ties break on flow index).
#pragma once

#include <cstdint>
#include <optional>

#include "util/time.h"

namespace qos {

struct FqDispatch {
  int flow = 0;
  std::uint64_t handle = 0;
};

class FairScheduler {
 public:
  virtual ~FairScheduler() = default;

  /// Number of configured flows.
  virtual int flow_count() const = 0;

  /// Append an item to `flow`'s FIFO.  `cost` is in abstract service units
  /// (1.0 = one request slot for the two-class storage model).
  virtual void enqueue(int flow, std::uint64_t handle, double cost,
                       Time now) = 0;

  /// Pick the next item to serve, or nullopt when all flows are empty.
  virtual std::optional<FqDispatch> dequeue(Time now) = 0;

  virtual bool empty() const = 0;

  /// Queued items in `flow`.
  virtual std::size_t backlog(int flow) const = 0;
};

}  // namespace qos
