// Start-time Fair Queueing (SFQ).
//
// Each item gets a start tag S = max(v, F_prev) and finish tag
// F = S + cost/weight, where v is the system virtual time — the start tag of
// the item most recently dispatched.  Dispatch order is by smallest head
// start tag (flow index breaks ties).  SFQ provides proportional sharing
// with bounded unfairness and is the simplest member of the family the paper
// cites for the FairQueue recombination.
//
// Hot path, million-flow layout: flow ids are sparse keys into a
// FlatSlotMap (one cache-line bucket probe), which assigns each flow a
// dense slot on first touch; per-flow state (weight, last finish tag,
// pooled FIFO) lives in a slot-indexed array that grows with flows *seen*,
// not with the configured id space.  Backlogged flows sit in a slot-keyed
// indexed min-heap whose key is the pair (head start tag, flow id), so
// dequeue is O(log backlogged) and the lowest-flow-id tie-break reproduces
// the original scan's dispatch order exactly
// (tests/test_fq_differential.cpp holds it to the frozen scan reference).
// The uniform-weight constructor keeps weights in O(1) space so a 10^6-flow
// scheduler costs nothing per idle flow.
#pragma once

#include <utility>
#include <vector>

#include "fq/fair_scheduler.h"
#include "util/check.h"
#include "util/flat_table.h"
#include "util/indexed_heap.h"
#include "util/ring_buffer.h"

namespace qos {

class SfqScheduler final : public FairScheduler {
 public:
  explicit SfqScheduler(std::vector<double> weights);

  /// Million-flow form: `flow_count` flows all weighing `weight`, stored
  /// O(1) — no dense per-flow vector is ever materialized.  (A named
  /// factory, not a constructor overload: `{1.0, 2.0}` must keep meaning a
  /// two-flow weight vector, never a narrowed (count, weight) pair.)
  static SfqScheduler uniform(int flow_count, double weight);

  int flow_count() const override { return flow_count_; }
  void enqueue(int flow, std::uint64_t handle, double cost, Time now) override;
  std::optional<FqDispatch> dequeue(Time now) override;
  bool empty() const override;
  std::size_t backlog(int flow) const override;

  double virtual_time() const { return v_; }

  /// Bytes held by the scheduler's own structures (flow table, per-flow
  /// state, head-tag heap): O(flows seen), asserted by the micro bench.
  std::size_t approx_memory_bytes() const;

 private:
  struct Item {
    std::uint64_t handle = 0;
    double start = 0;
    double finish = 0;
  };
  // One-or-two cache lines per active flow: 16 bytes of tag state plus the
  // pooled FIFO header; queue storage is pooled per flow by RingBuffer.
  struct FlowState {
    double weight = 1;
    double last_finish = 0;
    RingBuffer<Item> queue;
  };
  /// Heap key: (head start tag, flow id) — the pair's lexicographic order
  /// is the scan-equivalent total order even though the heap is slot-keyed.
  using TagKey = std::pair<double, int>;

  double weight_of(int flow) const {
    return dense_weights_.empty()
               ? uniform_weight_
               : dense_weights_[static_cast<std::size_t>(flow)];
  }

  /// Slot for `flow`, materializing per-flow state on first touch.
  std::uint32_t activate(int flow);

  SfqScheduler() = default;  ///< used by the uniform() factory

  int flow_count_ = 0;
  std::vector<double> dense_weights_;  ///< empty in uniform-weight mode
  double uniform_weight_ = 1;
  FlatSlotMap index_;                ///< flow id -> dense slot
  std::vector<FlowState> state_;     ///< slot-indexed, grows on first touch
  IndexedMinHeap<TagKey> head_start_;  ///< backlogged slots by head start
  double v_ = 0;
};

}  // namespace qos
