# Empty dependencies file for test_sfq.
# This may be replaced when dependencies are built.
