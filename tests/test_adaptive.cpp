#include "core/adaptive.h"

#include <gtest/gtest.h>

#include "trace/generator.h"

namespace qos {
namespace {

AdaptiveConfig fast_config() {
  AdaptiveConfig c;
  c.fraction = 0.95;
  c.delta = from_ms(20);
  c.window = 20 * kUsPerSec;
  c.reprofile_interval = 2 * kUsPerSec;
  return c;
}

TEST(Adaptive, ZeroBeforeFirstReprofile) {
  OnlineCapacityEstimator est(fast_config());
  EXPECT_DOUBLE_EQ(est.capacity_iops(), 0);
}

TEST(Adaptive, ConvergesOnStationaryLoad) {
  auto config = fast_config();
  OnlineCapacityEstimator est(config);
  Trace t = generate_poisson(400, 120 * kUsPerSec, 801);
  for (const auto& r : t) (void)est.observe(r.arrival);
  // Stationary Poisson at 400 IOPS: windowed Cmin lands near the full-trace
  // value (within the window-to-window sampling spread).
  const double full =
      min_capacity(t, config.fraction, config.delta).cmin_iops;
  EXPECT_GT(est.capacity_iops(), 0.75 * full);
  EXPECT_LT(est.capacity_iops(), 1.3 * full);
  EXPECT_GT(est.reprofile_count(), 10);
}

TEST(Adaptive, TracksLoadIncrease) {
  OnlineCapacityEstimator est(fast_config());
  Trace low = generate_poisson(150, 60 * kUsPerSec, 803);
  for (const auto& r : low) (void)est.observe(r.arrival);
  const double before = est.capacity_iops();
  Trace high = generate_poisson(1200, 60 * kUsPerSec, 805);
  for (const auto& r : high)
    (void)est.observe(60 * kUsPerSec + r.arrival);
  EXPECT_GT(est.capacity_iops(), 2.5 * before);
}

TEST(Adaptive, DecaysAfterBurstPasses) {
  auto config = fast_config();
  config.decay_gain = 0.5;
  OnlineCapacityEstimator est(config);
  Trace burst = generate_poisson(2000, 30 * kUsPerSec, 807);
  for (const auto& r : burst) (void)est.observe(r.arrival);
  const double peak = est.capacity_iops();
  Trace calm = generate_poisson(100, 120 * kUsPerSec, 809);
  for (const auto& r : calm)
    (void)est.observe(30 * kUsPerSec + r.arrival);
  EXPECT_LT(est.capacity_iops(), 0.4 * peak);
}

TEST(Adaptive, RiseFasterThanDecay) {
  // Default gains: a step up is followed quickly, a step down slowly —
  // compare smoothed estimate right after symmetric steps.
  AdaptiveConfig config = fast_config();
  config.rise_gain = 1.0;
  config.decay_gain = 0.1;

  OnlineCapacityEstimator up(config);
  Trace low = generate_poisson(100, 30 * kUsPerSec, 811);
  Trace high = generate_poisson(1000, 10 * kUsPerSec, 813);
  for (const auto& r : low) (void)up.observe(r.arrival);
  const double before_step = up.capacity_iops();
  for (const auto& r : high) (void)up.observe(30 * kUsPerSec + r.arrival);
  // One window after the step up the estimate is near the new level.
  EXPECT_GT(up.capacity_iops(), 3 * before_step);

  OnlineCapacityEstimator down(config);
  for (const auto& r : high) (void)down.observe(r.arrival);
  const double peak = down.capacity_iops();
  Trace calm = generate_poisson(100, 10 * kUsPerSec, 815);
  for (const auto& r : calm)
    (void)down.observe(10 * kUsPerSec + r.arrival);
  // Same elapsed time after the step down: decay lags.
  EXPECT_GT(down.capacity_iops(), 0.4 * peak);
}

TEST(Adaptive, WindowEvictsOldArrivals) {
  auto config = fast_config();
  OnlineCapacityEstimator est(config);
  (void)est.observe(0);
  (void)est.observe(1 * kUsPerSec);
  (void)est.observe(50 * kUsPerSec);  // 20 s window: first two evicted
  EXPECT_EQ(est.window_size(), 1u);
}

TEST(AdaptiveDeath, RejectsOutOfOrderArrivals) {
  OnlineCapacityEstimator est(fast_config());
  (void)est.observe(1000);
  EXPECT_DEATH((void)est.observe(500), "Precondition");
}

}  // namespace
}  // namespace qos
