// WFQ — Weighted Fair Queueing (Demers/Keshav/Shenker 1990), with the
// self-clocked (SCFQ, Golestani 1994) virtual-time approximation standard
// in implementations: V follows the finish tag of the item in service
// instead of simulating the exact GPS reference.
//
// Each item gets F = max(V, F_prev) + cost/weight and dispatch picks the
// smallest finish tag among all backlogged flows — no eligibility test,
// which is the difference from WF2Q and why WFQ can run a flow ahead of its
// fluid share.  Included for completeness of the cited family and for the
// ablation bench.
//
// Hot path: per-flow FIFOs are pooled ring buffers and backlogged flows sit
// in an indexed min-heap keyed by (head finish tag, flow index), so dequeue
// is O(log flows); the lowest-index tie-break matches the original scan
// order (differential-tested against fq/scan_reference.h).
#pragma once

#include <vector>

#include "fq/fair_scheduler.h"
#include "util/check.h"
#include "util/indexed_heap.h"
#include "util/ring_buffer.h"

namespace qos {

class WfqScheduler final : public FairScheduler {
 public:
  explicit WfqScheduler(std::vector<double> weights);

  int flow_count() const override {
    return static_cast<int>(flows_.size());
  }
  void enqueue(int flow, std::uint64_t handle, double cost, Time now) override;
  std::optional<FqDispatch> dequeue(Time now) override;
  bool empty() const override;
  std::size_t backlog(int flow) const override;

  double virtual_time() const { return v_; }

 private:
  struct Item {
    std::uint64_t handle = 0;
    double cost = 1;
    double finish = 0;
  };
  struct Flow {
    double weight = 1;
    double last_finish = 0;
    RingBuffer<Item> queue;
  };

  std::vector<Flow> flows_;
  IndexedMinHeap<double> head_finish_;  ///< backlogged flows by head finish
  double v_ = 0;
  double total_weight_ = 0;
};

}  // namespace qos
