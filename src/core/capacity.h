// Capacity provisioning (paper Section 2.2).
//
// Given a response-time bound delta, find the minimum server capacity Cmin
// such that RTT guarantees fraction f of the workload meets its deadline.
// The paper performs a deterministic O(log C) binary search over capacity,
// evaluating the RTT-admitted fraction at each probe; we do the same on an
// integer IOPS grid.  Provision Cmin + dC with dC = 1/delta to prevent
// starvation of the overflow class (paper's experimentally sufficient value,
// and exactly the extra capacity that absorbs one in-flight overflow request
// per deadline window — see core/miser.h).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.h"
#include "util/time.h"

namespace qos {

struct CapacityResult {
  double cmin_iops = 0;       ///< least integer capacity meeting the target
  double achieved_fraction = 0;  ///< RTT fraction at cmin_iops
  int probes = 0;             ///< fraction evaluations performed
};

/// Caller-supplied bracket seed for min_capacity.  Both bounds are
/// optional; a default-constructed hint reproduces the unhinted search
/// probe for probe.
///
/// The guaranteed fraction is non-decreasing in capacity and Cmin is
/// non-decreasing in the target fraction, so a previous search's answer
/// brackets the next one: after cmin(f0) = c0, any search for f >= f0 may
/// assert `infeasible_below = c0 - 1`, and any search for f <= f1 with
/// known cmin(f1) = c1 may assert `feasible_at = c1`.  capacity_profile
/// threads exactly that hint through its ascending fractions, collapsing
/// most searches to a handful of probes (see CapacityResult::probes).
struct CapacityHint {
  /// Every integer capacity <= this is known infeasible (0 = no knowledge).
  std::int64_t infeasible_below = 0;
  /// This integer capacity is known feasible (0 = no knowledge).
  std::int64_t feasible_at = 0;
  /// Debug probe: re-evaluate both asserted bounds before trusting them and
  /// abort (QOS_CHECK) on a lying hint instead of returning an unspecified
  /// wrong answer.  Verification probes are not counted in
  /// CapacityResult::probes, so enabling this never changes reported
  /// results.  Building with -DQOS_VERIFY_CAPACITY_HINTS forces it on for
  /// every search regardless of this flag.
  bool verify = false;
};

/// Fraction of `trace` that RTT admits to Q1 (and hence guarantees) at
/// capacity `capacity_iops` with deadline `delta`.
double fraction_guaranteed(const Trace& trace, double capacity_iops,
                           Time delta);

/// Binary-search the least integer capacity whose guaranteed fraction is
/// >= `fraction` (in [0, 1]).  `fraction == 1.0` demands zero overflow.
/// A wrong hint (claiming infeasible_below >= the true Cmin, or a
/// feasible_at that is not feasible) yields an unspecified wrong answer —
/// hints assert knowledge, they are not heuristics.  Set
/// `hint.verify` (or build with -DQOS_VERIFY_CAPACITY_HINTS) to check the
/// asserted bounds at entry and abort on a lie.
CapacityResult min_capacity(const Trace& trace, double fraction, Time delta,
                            CapacityHint hint = {});

/// The paper's overflow headroom dC = 1/delta, in IOPS.
double overflow_headroom_iops(Time delta);

/// One point of the capacity-QoS tradeoff curve (paper Section 4.1).
struct CapacityPoint {
  double fraction = 0;
  double cmin_iops = 0;
};

/// The knee curve: Cmin at each requested fraction (sorted ascending).
/// Defaults to the paper's Table 1 fractions.  Each search is warm-started
/// from the previous fraction's answer (monotonicity of Cmin in f); the
/// runner's parallel profile (runner/parallel_capacity.h) instead brackets
/// with the endpoint fractions so the middle searches run concurrently.
std::vector<CapacityPoint> capacity_profile(
    const Trace& trace, Time delta,
    std::vector<double> fractions = {0.90, 0.95, 0.99, 0.995, 0.999, 1.0});

}  // namespace qos
