#include "util/table.h"

#include <gtest/gtest.h>

namespace qos {
namespace {

TEST(AsciiTable, AlignsColumns) {
  AsciiTable t;
  t.add("a", "bb", "c");
  t.add("dddd", "e", "f");
  const std::string s = t.to_string();
  EXPECT_EQ(s, "a     bb  c\ndddd  e   f\n");
}

TEST(AsciiTable, MixedTypes) {
  AsciiTable t;
  t.add("n", 42, 1.5);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("1.50"), std::string::npos);
}

TEST(AsciiTable, RaggedRows) {
  AsciiTable t;
  t.add("header");
  t.add("a", "b");
  EXPECT_EQ(t.to_string(), "header\na       b\n");
}

TEST(FormatDouble, Digits) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.14159, 0), "3");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace qos
