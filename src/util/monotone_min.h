// Sliding-window minimum over a FIFO of integers.
//
// Miser's slack bookkeeping needs exactly three operations: append a slack
// when a primary request is admitted (push_back), retire the oldest slack
// when the front of Q1 dispatches (pop_front), and read the current minimum
// at every dispatch decision.  Because removal order equals insertion order,
// the classic monotone-deque technique applies: the window keeps a
// non-decreasing subsequence of the live values whose front is always the
// minimum, making all three operations amortized O(1) — against O(log n)
// per insert/erase for the std::multiset it replaces.
//
// push_back evicts strictly greater tail entries, so equal values are all
// retained; pop_front(v) then drops the window head iff it equals the value
// leaving the FIFO, which keeps duplicates balanced.  Values are stored
// offset-shifted by the caller (Miser adds its running Q2-dispatch offset),
// so "decrement every slack" stays a single counter bump.
#pragma once

#include <cstdint>

#include "util/check.h"
#include "util/ring_buffer.h"

namespace qos {

class MonotoneMinQueue {
 public:
  bool empty() const { return window_.empty(); }

  /// Current minimum of the live FIFO contents.
  std::int64_t min() const {
    QOS_EXPECTS(!window_.empty());
    return window_.front();
  }

  /// The FIFO appended `value`.
  void push_back(std::int64_t value) {
    while (!window_.empty() && window_.back() > value) window_.pop_back();
    window_.push_back(value);
  }

  /// The FIFO removed its oldest element, which was `value`.
  void pop_front(std::int64_t value) {
    if (!window_.empty() && window_.front() == value) window_.pop_front();
  }

  void clear() { window_.clear(); }

 private:
  RingBuffer<std::int64_t> window_;  ///< non-decreasing; front == min
};

}  // namespace qos
