// Chaos harness: fault intensity x recombination policy.
//
// Sweeps a mid-trace capacity brownout of increasing depth (0 to 50% loss)
// across the four recombination policies plus the degraded-admission RTT,
// and reports per cell:
//
//   * Q1 miss fraction — requests classified Q1 that missed delta;
//   * demotion rate — arrivals sent to Q2 that nominal RTT would have
//     admitted (degraded admission only);
//   * time-to-recover — how long after the fault cleared the last Q1 miss
//     finished.
//
// The punchline row is the last: static RTT turns the entire brownout into
// Q1 misses, DegradedRtt re-tightens maxQ1 = C_hat * delta and converts the
// overload into demotions, keeping the Q1 guarantee honest.  A second sweep
// holds intensity at 30% and stretches the brownout to show the static
// miss fraction growing with fault length while the degraded one stays put.
#include <cstdio>

#include "core/capacity.h"
#include "fault/chaos.h"
#include "trace/generator.h"
#include "util/table.h"

namespace {

using namespace qos;

constexpr Time kDelta = from_ms(10);
constexpr double kFraction = 0.95;
constexpr std::uint64_t kSeed = 1609;

// kStaticRtt and kDegradedRtt share the strict-priority scheduler and
// differ only in whether the capacity monitor drives admission — isolating
// the admission policy from the recombination policy.
enum class Mode { kPolicy, kStaticRtt, kDegradedRtt };

struct Cell {
  const char* name;
  Policy policy;
  Mode mode;
};

constexpr Cell kCells[] = {
    {"FCFS", Policy::kFcfs, Mode::kPolicy},
    {"Split", Policy::kSplit, Mode::kPolicy},
    {"FairQueue", Policy::kFairQueue, Mode::kPolicy},
    {"Miser", Policy::kMiser, Mode::kPolicy},
    {"RTT (static)", Policy::kMiser, Mode::kStaticRtt},
    {"RTT (degraded)", Policy::kMiser, Mode::kDegradedRtt},
};

ChaosOutcome run_cell(const Trace& trace, const Cell& cell, double cmin,
                      const FaultySchedule& faults) {
  ChaosConfig config;
  config.shaping.policy = cell.policy;
  config.shaping.fraction = kFraction;
  config.shaping.delta = kDelta;
  config.shaping.capacity_override_iops = cmin;
  config.faults = faults;
  config.use_degraded_admission = cell.mode != Mode::kPolicy;
  config.degraded.enabled = cell.mode == Mode::kDegradedRtt;
  return run_chaos(trace, config);
}

void sweep_intensity(const Trace& trace, double cmin) {
  std::printf("-- Sweep 1: brownout depth (10 s window) x policy --\n");
  AsciiTable table;
  table.add("policy", "loss", "Q1 miss frac", "demotion rate",
            "recover (ms)");
  for (double loss : {0.0, 0.15, 0.30, 0.50}) {
    FaultySchedule faults;
    if (loss > 0) faults.brownout(10 * kUsPerSec, 20 * kUsPerSec, loss);
    for (const Cell& cell : kCells) {
      const ChaosOutcome out = run_cell(trace, cell, cmin, faults);
      table.add(cell.name, format_double(100 * loss, 0) + "%",
                format_double(out.q1_miss_fraction, 4),
                format_double(out.demotion_rate, 4),
                format_double(to_ms(out.time_to_recover), 1));
    }
  }
  std::printf("%s\n", table.to_string().c_str());
}

void sweep_length(const Trace& trace, double cmin) {
  std::printf(
      "-- Sweep 2: 30%% brownout length, static vs degraded admission --\n");
  AsciiTable table;
  table.add("length (s)", "static Q1 miss", "degraded Q1 miss",
            "degraded demotion rate");
  for (Time length : {2 * kUsPerSec, 5 * kUsPerSec, 10 * kUsPerSec,
                      20 * kUsPerSec}) {
    FaultySchedule faults;
    faults.brownout(5 * kUsPerSec, 5 * kUsPerSec + length, 0.30);
    const Cell static_cell{"RTT (static)", Policy::kMiser, Mode::kStaticRtt};
    const Cell degraded_cell{"RTT (degraded)", Policy::kMiser,
                             Mode::kDegradedRtt};
    const ChaosOutcome s = run_cell(trace, static_cell, cmin, faults);
    const ChaosOutcome d = run_cell(trace, degraded_cell, cmin, faults);
    table.add(format_double(to_sec(length), 0),
              format_double(s.q1_miss_fraction, 4),
              format_double(d.q1_miss_fraction, 4),
              format_double(d.demotion_rate, 4));
  }
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("Chaos harness: graceful degradation under capacity faults\n");
  const Trace trace = generate_poisson(800, 40 * kUsPerSec, kSeed);
  const double cmin = min_capacity(trace, kFraction, kDelta).cmin_iops;
  std::printf("trace: %zu requests, Cmin(%.0f%%, %.0f ms) = %.0f IOPS\n\n",
              trace.size(), 100 * kFraction, to_ms(kDelta), cmin);
  sweep_intensity(trace, cmin);
  sweep_length(trace, cmin);
  return 0;
}
