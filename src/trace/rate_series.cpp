#include "trace/rate_series.h"

#include <algorithm>

#include "util/check.h"

namespace qos {
namespace {

std::vector<RatePoint> build(const std::vector<Time>& arrivals, Time window,
                             Time horizon) {
  QOS_EXPECTS(window > 0);
  if (arrivals.empty()) return {};
  const Time last = *std::max_element(arrivals.begin(), arrivals.end());
  if (horizon <= 0) horizon = ((last / window) + 1) * window;
  const std::size_t n = static_cast<std::size_t>((horizon + window - 1) / window);
  std::vector<std::size_t> counts(n, 0);
  for (Time a : arrivals) {
    if (a < 0 || a >= horizon) continue;
    ++counts[static_cast<std::size_t>(a / window)];
  }
  std::vector<RatePoint> out(n);
  const double wsec = to_sec(window);
  for (std::size_t i = 0; i < n; ++i) {
    out[i].window_start = static_cast<Time>(i) * window;
    out[i].iops = static_cast<double>(counts[i]) / wsec;
  }
  return out;
}

}  // namespace

std::vector<RatePoint> rate_series(const Trace& trace, Time window,
                                   Time horizon) {
  std::vector<Time> arrivals;
  arrivals.reserve(trace.size());
  for (const auto& r : trace) arrivals.push_back(r.arrival);
  return build(arrivals, window, horizon);
}

std::vector<RatePoint> rate_series(const std::vector<Time>& arrivals,
                                   Time window, Time horizon) {
  return build(arrivals, window, horizon);
}

RateSummary summarize(const std::vector<RatePoint>& series) {
  RateSummary s;
  if (series.empty()) return s;
  double sum = 0;
  for (const auto& p : series) {
    s.peak_iops = std::max(s.peak_iops, p.iops);
    sum += p.iops;
  }
  s.mean_iops = sum / static_cast<double>(series.size());
  return s;
}

}  // namespace qos
