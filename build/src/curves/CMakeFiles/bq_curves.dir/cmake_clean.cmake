file(REMOVE_RECURSE
  "CMakeFiles/bq_curves.dir/analysis.cpp.o"
  "CMakeFiles/bq_curves.dir/analysis.cpp.o.d"
  "CMakeFiles/bq_curves.dir/arrival_curve.cpp.o"
  "CMakeFiles/bq_curves.dir/arrival_curve.cpp.o.d"
  "libbq_curves.a"
  "libbq_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bq_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
