#include "runner/bench_io.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "obs/trace_export.h"

namespace qos {

std::unique_ptr<ResultCache> BenchOptions::make_cache() const {
  if (!use_cache) return nullptr;
  ResultCache::Config config;
  config.disk_dir = cache_dir;
  return std::make_unique<ResultCache>(config);
}

SweepOptions BenchOptions::sweep_options(ResultCache* cache) const {
  SweepOptions sweep;
  sweep.threads = threads;
  sweep.cache = cache;
  sweep.trace = trace;
  sweep.tracer.sample_every = trace_sample;
  sweep.profile = profile.get();
  return sweep;
}

BenchOptions parse_bench_args(int argc, char** argv,
                              const std::string& bench_name) {
  BenchOptions options;
  options.bench_name = bench_name;
  auto usage = [&](const char* bad) {
    std::fprintf(stderr,
                 "%s: unknown or malformed argument '%s'\n"
                 "usage: %s [--threads N] [--no-cache] [--cache-dir DIR] "
                 "[--json PATH] [--trace] [--trace-out STEM] "
                 "[--trace-sample N]\n",
                 bench_name.c_str(), bad, bench_name.c_str());
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(arg);
      return argv[++i];
    };
    if (std::strcmp(arg, "--threads") == 0) {
      char* end = nullptr;
      const char* v = value();
      options.threads = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0' || options.threads < 0) usage(v);
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      options.use_cache = false;
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      options.cache_dir = value();
    } else if (std::strcmp(arg, "--json") == 0) {
      options.json_path = value();
    } else if (std::strcmp(arg, "--trace") == 0) {
      options.trace = true;
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      options.trace_out = value();
    } else if (std::strcmp(arg, "--trace-sample") == 0) {
      char* end = nullptr;
      const char* v = value();
      options.trace_sample = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || options.trace_sample < 1) usage(v);
    } else {
      usage(arg);
    }
  }
  if (options.json_path.empty())
    options.json_path = "BENCH_" + bench_name + ".json";
  if (options.trace_out.empty())
    options.trace_out = "TRACE_" + bench_name;
  options.profile = std::make_shared<ProfileCollector>();
  return options;
}

std::string bench_timing_json(const BenchTiming& timing,
                              const ProfileCollector* profile) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"bench\": \"%s\",\n"
                "  \"wall_seconds\": %.6f,\n"
                "  \"cells\": %llu,\n"
                "  \"cache_hits\": %llu,\n"
                "  \"rows\": %llu,\n"
                "  \"threads\": %d",
                timing.name.c_str(), timing.wall_seconds,
                static_cast<unsigned long long>(timing.cells),
                static_cast<unsigned long long>(timing.cache_hits),
                static_cast<unsigned long long>(timing.rows), timing.threads);
  std::string out = buf;
  if (timing.traced) {
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"trace\": {\"observed\": %llu, \"retained\": %llu, "
                  "\"dropped\": %llu}",
                  static_cast<unsigned long long>(timing.trace_observed),
                  static_cast<unsigned long long>(timing.trace_retained),
                  static_cast<unsigned long long>(timing.trace_dropped));
    out += buf;
  }
  if (profile != nullptr && !profile->empty()) {
    out += ",\n  \"profile\": {";
    bool first = true;
    for (const auto& [phase, p] : profile->snapshot()) {
      std::snprintf(buf, sizeof(buf),
                    "%s\n    \"%s\": {\"calls\": %llu, \"wall_us\": %llu, "
                    "\"cpu_us\": %llu, \"max_wall_us\": %llu}",
                    first ? "" : ",", phase.c_str(),
                    static_cast<unsigned long long>(p.calls),
                    static_cast<unsigned long long>(p.wall_us),
                    static_cast<unsigned long long>(p.cpu_us),
                    static_cast<unsigned long long>(p.max_wall_us));
      out += buf;
      first = false;
    }
    out += "\n  }";
  }
  out += "\n}\n";
  return out;
}

namespace {

void write_manifest(const BenchOptions& options, const BenchTiming& timing,
                    bool warn_unused_trace) {
  if (warn_unused_trace && options.trace)
    std::fprintf(stderr,
                 "[%s] --trace has no effect: this bench runs no sweep\n",
                 options.bench_name.c_str());
  std::ofstream out(options.json_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "[%s] cannot write %s\n", options.bench_name.c_str(),
                 options.json_path.c_str());
    return;
  }
  out << bench_timing_json(timing, options.profile.get());
  std::fprintf(stderr, "[%s] timing written to %s\n",
               options.bench_name.c_str(), options.json_path.c_str());
}

}  // namespace

void write_bench_json(const BenchOptions& options, const BenchTiming& timing) {
  write_manifest(options, timing, /*warn_unused_trace=*/true);
}

namespace {

void write_trace_outputs(const BenchOptions& options,
                         const SweepRunner& runner) {
  if (!options.trace) return;
  const char* bench = options.bench_name.c_str();
  if (runner.traces().empty()) {
    std::fprintf(stderr, "[%s] --trace set but the run produced no traces\n",
                 bench);
    return;
  }
  const std::string bin_path = options.trace_out + ".trace.bin";
  const std::string json_path = options.trace_out + ".perfetto.json";
  {
    std::ofstream out(bin_path, std::ios::trunc | std::ios::binary);
    if (out) {
      out << serialize_traces(runner.traces());
      std::fprintf(stderr, "[%s] trace container written to %s\n", bench,
                   bin_path.c_str());
    } else {
      std::fprintf(stderr, "[%s] cannot write %s\n", bench, bin_path.c_str());
    }
  }
  {
    std::ofstream out(json_path, std::ios::trunc);
    if (out) {
      out << perfetto_trace_json(runner.traces());
      std::fprintf(stderr,
                   "[%s] Perfetto trace written to %s "
                   "(open in https://ui.perfetto.dev)\n",
                   bench, json_path.c_str());
    } else {
      std::fprintf(stderr, "[%s] cannot write %s\n", bench, json_path.c_str());
    }
  }
}

}  // namespace

void write_bench_json(const BenchOptions& options, const SweepRunner& runner,
                      std::uint64_t rows, double wall_seconds) {
  BenchTiming timing;
  timing.name = options.bench_name;
  timing.wall_seconds = wall_seconds;
  timing.cells = runner.stats().cells;
  timing.cache_hits = runner.stats().cache_hits;
  timing.rows = rows;
  timing.threads = runner.pool().thread_count();
  if (options.trace) {
    timing.traced = true;
    for (const TraceData& t : runner.traces()) {
      timing.trace_observed += t.observed;
      timing.trace_retained += t.spans.size();
      timing.trace_dropped += t.dropped;
    }
  }
  write_manifest(options, timing, /*warn_unused_trace=*/false);
  write_trace_outputs(options, runner);
}

double bench_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace qos
