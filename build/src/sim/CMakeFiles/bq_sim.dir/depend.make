# Empty dependencies file for bq_sim.
# This may be replaced when dependencies are built.
