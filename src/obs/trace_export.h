// Trace exporters: Chrome/Perfetto trace_event JSON and a compact binary
// container.
//
// Perfetto export lays the run out as tracks a human can scrub:
//   * one "queues" process per traced run, with Q1 and Q2 as threads —
//     each request's queue wait is an async slice (id = seq) so overlapping
//     residencies render side by side, and demotions show as instants;
//   * one "servers" process, one thread per server — service is a complete
//     slice per request (at most one in service per server, so slices tile);
//   * one "faults" process carrying the fault windows as slices.
// Timestamps are the simulator's microseconds, which is exactly the
// trace_event `ts` unit — load the file in https://ui.perfetto.dev as-is.
//
// The binary container is the machine-facing sibling: length-framed,
// checksummed, lossless (every RequestSpan/FaultSpan/SlackSample field),
// and holds any number of TraceDatas so a whole sweep's traces live in one
// file.  tools/trace_analyze consumes it; deserialize_traces returns
// nullopt on any structural or checksum mismatch, never garbage.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace qos {

/// Serialize traces into the binary container (see file comment).
std::string serialize_traces(std::span<const TraceData> traces);
inline std::string serialize_trace(const TraceData& trace) {
  return serialize_traces({&trace, 1});
}

/// Parse a binary container; nullopt on malformed/corrupt/truncated input.
std::optional<std::vector<TraceData>> deserialize_traces(
    const std::string& bytes);

/// Chrome trace_event JSON ("traceEvents" array) for one or more traced
/// runs; each run gets its own queues/servers/faults process group named
/// after its label.
std::string perfetto_trace_json(std::span<const TraceData> traces);
inline std::string perfetto_trace_json(const TraceData& trace) {
  return perfetto_trace_json({&trace, 1});
}

}  // namespace qos
