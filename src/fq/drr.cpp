#include "fq/drr.h"

namespace qos {

DrrScheduler::DrrScheduler(std::vector<double> weights,
                           double quantum_scale) {
  QOS_EXPECTS(!weights.empty());
  QOS_EXPECTS(quantum_scale > 0);
  flows_.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    QOS_EXPECTS(weights[i] > 0);
    flows_[i].quantum = weights[i] * quantum_scale;
  }
}

void DrrScheduler::enqueue(int flow, std::uint64_t handle, double cost,
                           Time) {
  QOS_EXPECTS(flow >= 0 && flow < flow_count());
  QOS_EXPECTS(cost > 0);
  flows_[static_cast<std::size_t>(flow)].queue.push_back(Item{handle, cost});
}

std::optional<FqDispatch> DrrScheduler::dequeue(Time) {
  if (empty()) return std::nullopt;
  // At most two full rounds: one to top up deficits, one to serve (a flow
  // whose quantum covers its head item is guaranteed to fire by then).
  for (std::size_t step = 0; step < 2 * flows_.size() + 1; ++step) {
    Flow& f = flows_[cursor_];
    if (f.queue.empty()) {
      f.deficit = 0;  // idle flows don't accumulate credit
      cursor_ = (cursor_ + 1) % flows_.size();
      continue;
    }
    if (f.deficit >= f.queue.front().cost) {
      const Item item = f.queue.front();
      f.queue.pop_front();
      f.deficit -= item.cost;
      const int flow = static_cast<int>(cursor_);
      if (f.queue.empty()) {
        f.deficit = 0;
        cursor_ = (cursor_ + 1) % flows_.size();
      }
      return FqDispatch{flow, item.handle};
    }
    // Head doesn't fit: top up and move on.
    f.deficit += f.quantum;
    cursor_ = (cursor_ + 1) % flows_.size();
  }
  // Quantum too small relative to item costs to make progress in two
  // rounds; force the round-robin head through to stay work-conserving.
  for (auto& f : flows_) {
    if (f.queue.empty()) continue;
    const Item item = f.queue.front();
    f.queue.pop_front();
    f.deficit = 0;
    return FqDispatch{static_cast<int>(&f - flows_.data()), item.handle};
  }
  QOS_CHECK(false);
}

bool DrrScheduler::empty() const {
  for (const auto& f : flows_)
    if (!f.queue.empty()) return false;
  return true;
}

std::size_t DrrScheduler::backlog(int flow) const {
  QOS_EXPECTS(flow >= 0 && flow < flow_count());
  return flows_[static_cast<std::size_t>(flow)].queue.size();
}

}  // namespace qos
