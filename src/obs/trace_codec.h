// Shared binary codec for the trace containers (internal).
//
// Both trace formats — the materialized QOSTRC01 container
// (obs/trace_export.h) and the chunked streaming QOSTRC02 container
// (obs/trace_stream.h) — encode the same fixed-width little-endian records;
// this header is the single definition of that wire format so the two
// containers cannot drift.  A RequestSpan record is its fields in
// declaration order; klass/server/admitted/demoted are one byte each.
// Not installed API: include from src/obs/*.cpp only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/trace.h"

namespace qos::trace_codec {

inline std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

inline void put_u64(std::string& out, std::uint64_t v) {
  // Explicit little-endian byte construction (not a memcpy of v) keeps the
  // wire format platform-independent; the single append keeps it to one
  // capacity check instead of eight.
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.append(b, 8);
}
inline void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}
inline void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out.append(b, 4);
}
inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
inline void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

/// Bounds-checked reader over serialized bytes.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > size_) return fail();
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 8;
    return true;
  }
  bool i64(std::int64_t& v) {
    std::uint64_t u = 0;
    if (!u64(u)) return false;
    v = static_cast<std::int64_t>(u);
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > size_) return fail();
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    pos_ += 4;
    return true;
  }
  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > size_) return fail();
    v = static_cast<std::uint8_t>(data_[pos_++]);
    return true;
  }
  bool str(std::string& s) {
    std::uint32_t n = 0;
    if (!u32(n) || pos_ + n > size_) return fail();
    s.assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  std::size_t pos() const { return pos_; }
  bool ok() const { return ok_; }

 private:
  bool fail() {
    ok_ = false;
    return false;
  }
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Encoded size of one RequestSpan record: seq + client + 9 i64 stages/
/// annotations + 4 byte-wide fields.
inline constexpr std::size_t kSpanRecordBytes = 8 + 4 + 9 * 8 + 4;

inline void put_span(std::string& out, const RequestSpan& s) {
  // The span encoder is the streaming writer's hot path (one record per
  // completed span of a giant run), so the record is assembled in a stack
  // buffer and appended once — same bytes as field-by-field put_* calls,
  // one capacity check instead of fifteen.
  char b[kSpanRecordBytes];
  char* p = b;
  auto raw64 = [&p](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) *p++ = static_cast<char>(v >> (8 * i));
  };
  raw64(s.seq);
  for (int i = 0; i < 4; ++i) *p++ = static_cast<char>(s.client >> (8 * i));
  raw64(static_cast<std::uint64_t>(s.arrival));
  raw64(static_cast<std::uint64_t>(s.decision));
  raw64(static_cast<std::uint64_t>(s.enqueue));
  raw64(static_cast<std::uint64_t>(s.service_start));
  raw64(static_cast<std::uint64_t>(s.completion));
  raw64(static_cast<std::uint64_t>(s.depth_at_decision));
  raw64(static_cast<std::uint64_t>(s.max_q1_at_decision));
  raw64(static_cast<std::uint64_t>(s.slack_funding));
  raw64(static_cast<std::uint64_t>(s.inflation_us));
  *p++ = static_cast<char>(static_cast<std::uint8_t>(s.klass));
  *p++ = static_cast<char>(s.server);
  *p++ = static_cast<char>(s.admitted);
  *p++ = static_cast<char>(s.demoted);
  out.append(b, kSpanRecordBytes);
}

inline bool get_span(Reader& in, RequestSpan& s) {
  std::uint8_t klass = 0;
  const bool ok = in.u64(s.seq) && in.u32(s.client) && in.i64(s.arrival) &&
                  in.i64(s.decision) && in.i64(s.enqueue) &&
                  in.i64(s.service_start) && in.i64(s.completion) &&
                  in.i64(s.depth_at_decision) &&
                  in.i64(s.max_q1_at_decision) && in.i64(s.slack_funding) &&
                  in.i64(s.inflation_us) && in.u8(klass) && in.u8(s.server) &&
                  in.u8(s.admitted) && in.u8(s.demoted);
  if (!ok || klass > 1) return false;
  s.klass = static_cast<ServiceClass>(klass);
  return true;
}

inline void put_fault(std::string& out, const FaultSpan& f) {
  put_i64(out, f.begin);
  put_i64(out, f.end);
  put_i64(out, f.kind);
  put_i64(out, f.severity_ppm);
}

inline bool get_fault(Reader& in, FaultSpan& f) {
  return in.i64(f.begin) && in.i64(f.end) && in.i64(f.kind) &&
         in.i64(f.severity_ppm);
}

inline void put_slack(std::string& out, const SlackSample& s) {
  put_i64(out, s.time);
  put_i64(out, s.slack);
}

inline bool get_slack(Reader& in, SlackSample& s) {
  return in.i64(s.time) && in.i64(s.slack);
}

}  // namespace qos::trace_codec
