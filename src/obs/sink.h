// EventSink — where pipeline events go — and Probe, the hot-path guard.
//
// Instrumented code holds a `Probe` (a nullable sink pointer).  When no sink
// is attached the probe is falsy and the emission site skips even building
// the Event, so a disabled pipeline pays exactly one predictable branch per
// hook.  Sinks are synchronous and single-threaded, matching the simulator.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "obs/event.h"

namespace qos {

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const Event& e) = 0;
};

/// Swallows everything.  Attaching a NullSink is equivalent to attaching
/// nothing except that `Probe::enabled()` stays true — useful for measuring
/// emission overhead in isolation.
class NullSink final : public EventSink {
 public:
  void on_event(const Event&) override {}
};

/// Counts events per kind without storing them: O(1) memory.
class CountingSink : public EventSink {
 public:
  void on_event(const Event& e) override {
    ++counts_[static_cast<std::size_t>(e.kind)];
  }

  std::uint64_t count(EventKind k) const {
    return counts_[static_cast<std::size_t>(k)];
  }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto c : counts_) t += c;
    return t;
  }

 private:
  std::array<std::uint64_t, kEventKindCount> counts_{};
};

/// Stores the full event stream (plus per-kind counts) for later inspection
/// or export.  Memory is proportional to the event count — fine for traces,
/// not for unbounded production runs.
class RecordingSink final : public CountingSink {
 public:
  void on_event(const Event& e) override {
    CountingSink::on_event(e);
    events_.push_back(e);
  }

  const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

/// Hot-path guard: instrumentation sites write
///
///   if (probe_) probe_.emit({.time = now, ...});
///
/// so that with no sink attached the Event is never even constructed.
class Probe {
 public:
  Probe() = default;
  explicit Probe(EventSink* sink) : sink_(sink) {}

  explicit operator bool() const { return sink_ != nullptr; }
  bool enabled() const { return sink_ != nullptr; }

  void emit(const Event& e) const {
    if (sink_ != nullptr) sink_->on_event(e);
  }

 private:
  EventSink* sink_ = nullptr;
};

}  // namespace qos
