file(REMOVE_RECURSE
  "CMakeFiles/bq_analysis.dir/burstiness.cpp.o"
  "CMakeFiles/bq_analysis.dir/burstiness.cpp.o.d"
  "CMakeFiles/bq_analysis.dir/gnuplot.cpp.o"
  "CMakeFiles/bq_analysis.dir/gnuplot.cpp.o.d"
  "CMakeFiles/bq_analysis.dir/response_stats.cpp.o"
  "CMakeFiles/bq_analysis.dir/response_stats.cpp.o.d"
  "libbq_analysis.a"
  "libbq_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bq_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
