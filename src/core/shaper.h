// WorkloadShaper — the library's high-level entry point.
//
// Wires the whole paper pipeline together: profile the workload for
// Cmin(f, delta), pick a recombination policy, build the server(s) and run
// the trace through the event simulator.  Examples and benches use this
// facade; every piece is also available individually.
//
// Observability: set ShapingConfig::registry and/or ::sink and the run is
// instrumented end to end — RTT admit/reject, scheduler occupancy, slack
// decisions and simulator events — and ShapingOutcome::report summarises the
// internal dynamics (per-class percentiles, Q1/Q2 occupancy, deadline-miss
// run lengths).  With both left null the pipeline pays one branch per hook
// and no report is built.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/capacity.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace qos {

enum class Policy {
  kFcfs,       ///< no decomposition (baseline)
  kSplit,      ///< dedicated overflow server
  kFairQueue,  ///< shared server, proportional-share multiplexing (SFQ)
  kMiser,      ///< shared server, slack scheduling
};

const char* policy_name(Policy p);

struct ShapingConfig {
  double fraction = 0.90;  ///< QoS target: fraction meeting the deadline
  Time delta = from_ms(10);
  Policy policy = Policy::kMiser;
  /// > 0 overrides the profiled Cmin (e.g. to reuse a cached value).
  double capacity_override_iops = 0;
  /// >= 0 overrides the overflow headroom dC; default is 1/delta.
  double headroom_override_iops = -1;

  /// Optional observability (not owned; must outlive the run).  Attaching
  /// any enables instrumentation and report building.
  MetricRegistry* registry = nullptr;
  EventSink* sink = nullptr;

  /// Optional request-level tracer (not owned).  When set, the run's event
  /// stream flows through the tracer, which forwards every event to `sink`
  /// (if any) downstream — tracing composes with an explicit sink instead
  /// of replacing it.  Null keeps the pipeline on the plain Probe path:
  /// one branch per hook, zero tracing cost.
  Tracer* tracer = nullptr;

  /// Optional decorator applied to each backing server just before the run
  /// — the hook fault injection uses to interpose a FaultyServer without
  /// the facade depending on the fault layer.  Called once per server with
  /// (server, server index); the returned server is used for the run and
  /// anything it wraps or allocates must outlive it (the caller owns it).
  std::function<Server*(Server*, int)> server_decorator;

  /// The headroom this config resolves to: the override when set, else the
  /// paper's dC = 1/delta.
  double resolved_headroom_iops() const {
    return headroom_override_iops >= 0 ? headroom_override_iops
                                       : overflow_headroom_iops(delta);
  }
  bool observed() const {
    return registry != nullptr || sink != nullptr || tracer != nullptr;
  }

  /// The sink the pipeline should emit into: the tracer (chained onto
  /// `sink`) when tracing, else `sink` directly.
  EventSink* effective_sink() const {
    if (tracer == nullptr) return sink;
    tracer->set_downstream(sink);
    return tracer;
  }
};

struct ShapingOutcome {
  double cmin_iops = 0;
  double headroom_iops = 0;
  SimResult sim;
  /// Populated when the config attached a registry or sink (see
  /// build_shaping_report to compute one for an unobserved run).
  ShapingReport report;

  double total_iops() const { return cmin_iops + headroom_iops; }
};

/// Build the scheduler for `config.policy` with primary capacity
/// `cmin_iops`, wiring `config.registry` / `config.sink` into it.  Exposed
/// so benches can drive policies directly without shape_and_run's profiling.
std::unique_ptr<Scheduler> make_scheduler(const ShapingConfig& config,
                                          double cmin_iops);

/// Deprecated positional form; forwards to the ShapingConfig overload
/// (without observability).
[[deprecated("use make_scheduler(const ShapingConfig&, double cmin_iops)")]]
std::unique_ptr<Scheduler> make_scheduler(Policy policy, double cmin_iops,
                                          Time delta, double headroom_iops);

/// Profile (unless overridden), schedule and simulate.  FCFS receives the
/// same total capacity (Cmin + dC) on a single server, matching the paper's
/// equal-resources comparison.
ShapingOutcome shape_and_run(const Trace& trace, const ShapingConfig& config);

}  // namespace qos
