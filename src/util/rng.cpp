#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace qos {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  // Expand the seed through SplitMix64 as recommended by the xoshiro authors;
  // guarantees the state is never all-zero.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  QOS_EXPECTS(lo <= hi);
  return lo + (hi - lo) * next_double();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  QOS_EXPECTS(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::exponential(double mean) {
  QOS_EXPECTS(mean > 0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);  // guard log(0)
  return -mean * std::log(u);
}

double Rng::pareto(double alpha, double xm) {
  QOS_EXPECTS(alpha > 0 && xm > 0);
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

std::int64_t Rng::geometric(double p) {
  QOS_EXPECTS(p > 0 && p <= 1.0);
  if (p == 1.0) return 1;
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return 1 + static_cast<std::int64_t>(std::log(u) / std::log1p(-p));
}

std::int64_t Rng::poisson(double mean) {
  QOS_EXPECTS(mean >= 0);
  if (mean == 0) return 0;
  if (mean < 30.0) {
    // Knuth inversion in the log domain.
    const double limit = -mean;
    double sum = 0.0;
    std::int64_t k = 0;
    while (true) {
      double u;
      do {
        u = next_double();
      } while (u <= 0.0);
      sum += std::log(u);
      if (sum < limit) return k;
      ++k;
    }
  }
  // Normal approximation with continuity correction is adequate for the
  // large-mean windows used by trace generators (window counts >> 30).
  const double u1 = next_double();
  const double u2 = next_double();
  const double z =
      std::sqrt(-2.0 * std::log(u1 <= 0 ? 1e-300 : u1)) *
      std::cos(2.0 * 3.14159265358979323846 * u2);
  const double v = mean + std::sqrt(mean) * z;
  return v < 0 ? 0 : static_cast<std::int64_t>(v + 0.5);
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xa02bdbf7bb3c0a7ULL); }

}  // namespace qos
