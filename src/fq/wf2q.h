// WF2Q+ — Worst-case Fair Weighted Fair Queueing (plus).
//
// Items carry start/finish tags as in SFQ, but dispatch is restricted to
// *eligible* items (start tag <= system virtual time V) and picks the
// smallest finish tag among them — giving worst-case fairness within one
// service quantum of the fluid GPS reference.  V advances by the dispatched
// cost / total weight and jumps up to the minimum backlogged start tag so it
// can never stall behind an idle system (the "+" of WF2Q+).
//
// Hot path, million-flow layout: the classic two-heap eligible-set
// structure, on sparse flow state.  Flow ids map through a FlatSlotMap to
// dense slots assigned on first touch; per-flow state is slot-indexed.
// Backlogged flows whose head is eligible (start <= V) sit in a slot-keyed
// min-heap under the pair key (head finish tag, flow id); the rest sit in a
// heap under (head start tag, flow id).  Each dequeue advances V off the
// ineligible heap's top when no flow is eligible, migrates newly eligible
// heads across, and pops the smallest finish tag — O(log backlogged)
// amortized, with the lowest-flow-id tie-break reproducing the original
// scan order exactly (differential-tested against fq/scan_reference.h).
#pragma once

#include <utility>
#include <vector>

#include "fq/fair_scheduler.h"
#include "util/check.h"
#include "util/flat_table.h"
#include "util/indexed_heap.h"
#include "util/ring_buffer.h"

namespace qos {

class Wf2qPlusScheduler final : public FairScheduler {
 public:
  explicit Wf2qPlusScheduler(std::vector<double> weights);

  /// Million-flow form: `flow_count` flows all weighing `weight`, stored
  /// O(1) — no dense per-flow vector is ever materialized.  (A named
  /// factory, not a constructor overload: `{1.0, 2.0}` must keep meaning a
  /// two-flow weight vector, never a narrowed (count, weight) pair.)
  static Wf2qPlusScheduler uniform(int flow_count, double weight);

  int flow_count() const override { return flow_count_; }
  void enqueue(int flow, std::uint64_t handle, double cost, Time now) override;
  std::optional<FqDispatch> dequeue(Time now) override;
  bool empty() const override;
  std::size_t backlog(int flow) const override;

  double virtual_time() const { return v_; }

  /// Bytes held by the scheduler's own structures: O(flows seen).
  std::size_t approx_memory_bytes() const;

 private:
  struct Item {
    std::uint64_t handle = 0;
    double cost = 1;
    double start = 0;
    double finish = 0;
  };
  struct FlowState {
    double weight = 1;
    double last_finish = 0;
    RingBuffer<Item> queue;
  };
  /// Heap key: (tag, flow id) — lexicographic pair order is the
  /// scan-equivalent total order even though the heaps are slot-keyed.
  using TagKey = std::pair<double, int>;

  double weight_of(int flow) const {
    return dense_weights_.empty()
               ? uniform_weight_
               : dense_weights_[static_cast<std::size_t>(flow)];
  }

  /// Slot for `flow`, materializing per-flow state on first touch.
  std::uint32_t activate(int flow);

  Wf2qPlusScheduler() = default;  ///< used by the uniform() factory

  /// File the backlogged flow under the heap its head belongs to.  Flow
  /// heads are immutable between reclassification points (enqueue-to-empty
  /// and post-dispatch), so heap keys can never go stale.
  void classify(std::uint32_t slot, int flow, const Item& head);

  int flow_count_ = 0;
  std::vector<double> dense_weights_;  ///< empty in uniform-weight mode
  double uniform_weight_ = 1;
  FlatSlotMap index_;               ///< flow id -> dense slot
  std::vector<FlowState> state_;    ///< slot-indexed, grows on first touch
  IndexedMinHeap<TagKey> eligible_;    ///< head start <= V, by head finish
  IndexedMinHeap<TagKey> ineligible_;  ///< head start  > V, by head start
  double v_ = 0;
  double total_weight_ = 0;
};

}  // namespace qos
