// trace_analyze — offline analysis of binary trace containers.
//
//   trace_analyze FILE.trace.bin [--delta US]
//
// Reads either trace container format and prints, for each trace, the
// deadline-miss attribution (every miss in exactly one cause class) and
// Miser slack accounting:
//
//   * QOSTRC01 (serialize_traces, the figure-sized format): materialized
//     path, which additionally prints the queue-timeline summary;
//   * QOSTRC02 (ChunkedTraceWriter, the giant-run format): cursor-based
//     streaming path in O(chunk) memory — a 10^8-span trace analyzes
//     without ever holding the spans.
//
// The format is sniffed from the 8-byte magic, so callers never pick.
// --delta overrides the deadline recorded in the trace, for what-if
// analysis against a different SLA.  Exits 1 on unreadable or corrupt
// input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace_analysis.h"
#include "obs/trace_export.h"
#include "obs/trace_stream.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s FILE.trace.bin [--delta US]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  qos::Time delta_override = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--delta") == 0 && i + 1 < argc) {
      delta_override = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return usage(argv[0]);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (path == nullptr) return usage(argv[0]);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_analyze: cannot open %s\n", path);
    return 1;
  }

  char head[8] = {};
  in.read(head, sizeof head);
  const std::string magic(head, static_cast<std::size_t>(in.gcount()));
  in.clear();
  in.seekg(0);

  if (qos::is_chunked_trace(magic)) {
    // Streaming container: analyze in O(chunk) memory off the file cursor.
    const auto analysis = qos::analyze_trace_stream(in, delta_override);
    if (!analysis) {
      std::fprintf(stderr, "trace_analyze: %s is not a valid trace stream\n",
                   path);
      return 1;
    }
    std::printf("%s: streamed trace (%llu spans)\n", path,
                static_cast<unsigned long long>(analysis->footer.spans));
    std::fputs(qos::trace_analysis_text_stream(*analysis).c_str(), stdout);
    return 0;
  }

  std::ostringstream buf;
  buf << in.rdbuf();
  const auto traces = qos::deserialize_traces(buf.str());
  if (!traces) {
    std::fprintf(stderr, "trace_analyze: %s is not a valid trace container\n",
                 path);
    return 1;
  }

  std::printf("%s: %zu trace(s)\n", path, traces->size());
  for (const qos::TraceData& t : *traces) {
    const qos::Time delta = delta_override >= 0 ? delta_override : t.delta;
    std::fputs(qos::trace_analysis_text(t, delta).c_str(), stdout);
  }
  return 0;
}
