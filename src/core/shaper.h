// WorkloadShaper — the library's high-level entry point.
//
// Wires the whole paper pipeline together: profile the workload for
// Cmin(f, delta), pick a recombination policy, build the server(s) and run
// the trace through the event simulator.  Examples and benches use this
// facade; every piece is also available individually.
//
// Observability: set ShapingConfig::registry and/or ::sink and the run is
// instrumented end to end — RTT admit/reject, scheduler occupancy, slack
// decisions and simulator events — and ShapingOutcome::report summarises the
// internal dynamics (per-class percentiles, Q1/Q2 occupancy, deadline-miss
// run lengths).  With both left null the pipeline pays one branch per hook
// and no report is built.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/capacity.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace qos {

enum class Policy {
  kFcfs,       ///< no decomposition (baseline)
  kSplit,      ///< dedicated overflow server
  kFairQueue,  ///< shared server, proportional-share multiplexing (SFQ)
  kMiser,      ///< shared server, slack scheduling
};

const char* policy_name(Policy p);

struct ShapingConfig {
  double fraction = 0.90;  ///< QoS target: fraction meeting the deadline
  Time delta = from_ms(10);
  Policy policy = Policy::kMiser;
  /// > 0 overrides the profiled Cmin (e.g. to reuse a cached value).
  double capacity_override_iops = 0;
  /// >= 0 overrides the overflow headroom dC; default is 1/delta.
  double headroom_override_iops = -1;

  // ---- Observability ownership / lifetime contract (the one place) ----
  //
  // registry, sink and tracer are borrowed: the config never owns them and
  // all three must outlive every run (and every scheduler / online::Shaper)
  // built from this config.  Attaching any of them enables instrumentation
  // and report building.
  //
  // When a tracer is set the event stream flows *through* it and the
  // tracer forwards every event to `sink` downstream — tracing composes
  // with an explicit sink instead of replacing it.  That chaining is a
  // mutation of the tracer object, so it is an explicit setup step:
  // call wire_sinks() once, after both fields are final and before the
  // run.  The run entry points (shape_and_run, run_chaos, online::Shaper)
  // wire a private copy of the config at entry; only code that calls
  // make_scheduler or effective_sink() directly with a tracer attached
  // needs to call wire_sinks() itself.
  MetricRegistry* registry = nullptr;
  EventSink* sink = nullptr;

  /// Optional request-level tracer (see the contract above).  Null keeps
  /// the pipeline on the plain Probe path: one branch per hook, zero
  /// tracing cost.
  Tracer* tracer = nullptr;

  /// Optional decorator applied to each backing server just before the run
  /// — the hook fault injection uses to interpose a FaultyServer without
  /// the facade depending on the fault layer.  Called once per server with
  /// (server, server index); the returned server is used for the run and
  /// anything it wraps or allocates must outlive it (the caller owns it).
  std::function<Server*(Server*, int)> server_decorator;

  /// The headroom this config resolves to: the override when set, else the
  /// paper's dC = 1/delta.
  double resolved_headroom_iops() const {
    return headroom_override_iops >= 0 ? headroom_override_iops
                                       : overflow_headroom_iops(delta);
  }
  bool observed() const {
    return registry != nullptr || sink != nullptr || tracer != nullptr;
  }

  /// Explicit setup step: chain the tracer onto `sink` (see the contract
  /// above).  Idempotent; a no-op without a tracer.  Non-const on purpose —
  /// it mutates the borrowed tracer, which a const accessor must not do.
  void wire_sinks() {
    if (tracer != nullptr) tracer->set_downstream(sink);
  }

  /// The sink the pipeline emits into: the tracer when tracing (chained
  /// onto `sink` by wire_sinks()), else `sink` directly.  Pure accessor.
  EventSink* effective_sink() const {
    return tracer != nullptr ? tracer : sink;
  }
};

struct ShapingOutcome {
  double cmin_iops = 0;
  double headroom_iops = 0;
  SimResult sim;
  /// Populated when the config attached a registry or sink (see
  /// build_shaping_report to compute one for an unobserved run).
  ShapingReport report;

  double total_iops() const { return cmin_iops + headroom_iops; }
};

/// Build the scheduler for `config.policy` with primary capacity
/// `cmin_iops`, wiring `config.registry` / `config.sink` into it.  Exposed
/// so benches can drive policies directly without shape_and_run's profiling.
std::unique_ptr<Scheduler> make_scheduler(const ShapingConfig& config,
                                          double cmin_iops);

/// Profile (unless overridden), schedule and simulate.  FCFS receives the
/// same total capacity (Cmin + dC) on a single server, matching the paper's
/// equal-resources comparison.
ShapingOutcome shape_and_run(const Trace& trace, const ShapingConfig& config);

}  // namespace qos
