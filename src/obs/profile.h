// Scoped engine profiling: wall + thread-CPU time per named phase.
//
// `ProfileScope` is an RAII timer; on destruction it folds its measurement
// into a `ProfileCollector` keyed by phase name.  The collector is the only
// synchronization point (one short mutex hold per scope exit), so scopes can
// run concurrently on ThreadPool workers — each measures its *own* thread's
// CPU time via CLOCK_THREAD_CPUTIME_ID, which is why wall and CPU totals can
// legitimately diverge: cpu < wall means blocking, cpu ~ calls * wall means
// parallel speedup.
//
// A null collector makes the scope inert (no clock reads), so call sites can
// be instrumented unconditionally and pay nothing unless profiling is wired
// up.  These are engine-side (real-time) measurements, deliberately separate
// from the simulated-time metrics: export_to() prefixes everything with
// "profile." when bridging into a MetricRegistry.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace qos {

class MetricRegistry;

/// Aggregate for one named phase, all times in microseconds.
struct PhaseProfile {
  std::uint64_t calls = 0;
  std::uint64_t wall_us = 0;
  std::uint64_t cpu_us = 0;      ///< per-thread CPU time, summed over calls
  std::uint64_t max_wall_us = 0;  ///< slowest single call
};

/// Thread-safe sink for ProfileScope measurements.
class ProfileCollector {
 public:
  void record(const std::string& phase, std::uint64_t wall_us,
              std::uint64_t cpu_us);

  /// Copy of the aggregates, safe to read while scopes keep recording.
  std::map<std::string, PhaseProfile> snapshot() const;

  /// Bridge into a MetricRegistry: per phase, counter
  /// "profile.<phase>.calls" and gauges "profile.<phase>.{wall_us,cpu_us,
  /// max_wall_us}".
  void export_to(MetricRegistry& registry) const;

  bool empty() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, PhaseProfile> phases_;
};

/// RAII phase timer; inert (no clock reads) when `collector` is null.
class ProfileScope {
 public:
  ProfileScope(ProfileCollector* collector, const char* phase);
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  ProfileCollector* collector_;
  const char* phase_;
  std::chrono::steady_clock::time_point wall_start_;
  std::uint64_t cpu_start_us_ = 0;
};

/// Current thread's consumed CPU time in microseconds (0 if unsupported).
std::uint64_t thread_cpu_time_us();

}  // namespace qos
