file(REMOVE_RECURSE
  "CMakeFiles/test_decomposing_scheduler.dir/test_decomposing_scheduler.cpp.o"
  "CMakeFiles/test_decomposing_scheduler.dir/test_decomposing_scheduler.cpp.o.d"
  "test_decomposing_scheduler"
  "test_decomposing_scheduler.pdb"
  "test_decomposing_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_decomposing_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
