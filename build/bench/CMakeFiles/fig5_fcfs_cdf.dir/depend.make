# Empty dependencies file for fig5_fcfs_cdf.
# This may be replaced when dependencies are built.
