// Multi-tenant shaping: per-client RTT decomposition under one server.
//
// The paper's deployment (Sections 1, 4.2): a shared storage server runs a
// fair scheduler *across* clients for isolation, and shapes *within* each
// client's stream.  This scheduler composes both levels:
//
//   * each tenant has its own RTT admission (cmin_i, delta_i) and its own
//     Q1/Q2 pair;
//   * a proportional-share scheduler (SFQ) multiplexes all 2N class-queues
//     on the server, with weight cmin_i on tenant i's primary flow and the
//     tenant's share of the overflow headroom on its Q2 flow.
//
// A tenant that floods past its profile only grows its own overflow queue —
// its primary reservation is unchanged and other tenants are unaffected
// (the isolation property asserted by tests/test_multi_tenant.cpp).
#pragma once

#include <climits>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "core/rtt.h"
#include "fq/sfq.h"
#include "sim/scheduler.h"

namespace qos {

class Trace;

struct TenantSpec {
  double cmin_iops = 100;   ///< profiled primary reservation
  Time delta = from_ms(10); ///< primary response-time bound
  double overflow_weight = 10;  ///< share of headroom for this tenant's Q2
};

/// One tenant's spec from its profiled reservation: the paper's overflow
/// headroom 1/delta is split evenly across the tenant set as Q2 weight.
/// Shared by the serial and parallel planners so their specs cannot drift.
TenantSpec planned_tenant_spec(double cmin_iops, Time delta,
                               std::size_t tenant_count);

/// Profile one TenantSpec per trace at QoS target (fraction, delta): each
/// tenant's cmin_iops is min_capacity(trace, fraction, delta).  The
/// runner's plan_tenant_specs_parallel computes the same specs with the
/// per-tenant searches fanned out over a thread pool.
std::vector<TenantSpec> plan_tenant_specs(std::span<const Trace> tenants,
                                          double fraction, Time delta);

class MultiTenantScheduler final : public Scheduler {
 public:
  explicit MultiTenantScheduler(std::vector<TenantSpec> tenants);

  int server_count() const override { return 1; }

  /// Requests are routed by Request::client, which must be < tenant count.
  void on_arrival(const Request& r, Time now) override;
  std::optional<Dispatch> next_for(int server, Time now) override;
  void on_complete(const Request& r, ServiceClass klass, int server,
                   Time now) override;

  std::size_t tenant_count() const { return tenants_.size(); }

  /// Largest supported tenant set: tenant i owns flow ids 2i and 2i+1, and
  /// both must narrow to a non-negative int for the fair scheduler.  The
  /// constructor rejects anything larger up front.
  static constexpr std::size_t kMaxTenants =
      (static_cast<std::size_t>(INT_MAX) - 1) / 2;

  /// Checked narrowing for flow ids: aborts instead of silently wrapping
  /// to a negative id (which 2 * tenant does past 2^30 tenants).
  static int checked_flow_id(std::size_t flow) {
    QOS_EXPECTS(flow <= static_cast<std::size_t>(INT_MAX));
    return static_cast<int>(flow);
  }

  std::int64_t len_q1(std::size_t tenant) const;
  std::size_t q2_queued(std::size_t tenant) const;

  /// Total capacity this tenant set is sized for: sum of reservations plus
  /// the largest per-tenant headroom (1/delta).
  double planned_capacity_iops() const;

 private:
  struct Tenant {
    TenantSpec spec;
    RttAdmission admission;
    std::deque<Request> q1;
    std::deque<Request> q2;
    std::int64_t len_q1 = 0;  ///< pending primaries (queued + in service)
  };

  int q1_flow(std::size_t tenant) const { return checked_flow_id(2 * tenant); }
  int q2_flow(std::size_t tenant) const {
    return checked_flow_id(2 * tenant + 1);
  }

  std::vector<Tenant> tenants_;
  std::unique_ptr<SfqScheduler> fair_;
};

}  // namespace qos
