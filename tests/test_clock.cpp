// Clock seam: VirtualClock monotonicity contract, SteadyClock sanity.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/clock.h"

namespace qos {
namespace {

TEST(VirtualClock, StartsAtZero) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
}

TEST(VirtualClock, AdvanceToMovesForward) {
  VirtualClock clock;
  clock.advance_to(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance_to(100);  // same instant is allowed (equal-time events)
  EXPECT_EQ(clock.now(), 100);
  clock.advance_to(250);
  EXPECT_EQ(clock.now(), 250);
}

TEST(VirtualClock, AdvanceIsRelative) {
  VirtualClock clock;
  clock.advance(40);
  clock.advance(0);
  clock.advance(2);
  EXPECT_EQ(clock.now(), 42);
}

TEST(VirtualClock, PolymorphicThroughBase) {
  VirtualClock virtual_clock;
  Clock& clock = virtual_clock;
  virtual_clock.advance_to(7);
  EXPECT_EQ(clock.now(), 7);
}

using VirtualClockDeath = ::testing::Test;

TEST(VirtualClockDeath, MovingBackwardAborts) {
  VirtualClock clock;
  clock.advance_to(100);
  EXPECT_DEATH(clock.advance_to(99), "Precondition");
}

TEST(SteadyClock, StartsNearZeroAndNeverDecreases) {
  SteadyClock clock;
  Time prev = clock.now();
  EXPECT_GE(prev, 0);
  // Rebased at construction, so the first reading is microseconds-scale,
  // not epoch-scale.
  EXPECT_LT(prev, 10 * kUsPerSec);
  for (int i = 0; i < 1000; ++i) {
    const Time now = clock.now();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(SteadyClock, AdvancesAcrossASleep) {
  SteadyClock clock;
  const Time before = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(clock.now() - before, 4'000);  // >= 4 ms in microseconds
}

TEST(SteadyClock, IndependentInstancesRebaseIndependently) {
  SteadyClock a;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  SteadyClock b;
  // b was constructed later, so its origin is later and its reading smaller.
  EXPECT_LT(b.now(), a.now() + 1'000);
}

}  // namespace
}  // namespace qos
