// QoS scheduling on a mechanical disk: RTT admission + per-class C-LOOK.
//
// Paper Section 4.2: storage arrays reorder their low-level queue for
// throughput while QoS isolation happens above.  This scheduler composes the
// two: arrivals are decomposed by RTT into Q1/Q2 as usual, but *within* each
// class requests are served in C-LOOK order (ascending cylinders with
// wrap-around) instead of FIFO, trading strict arrival order for less seek
// time.  Q1 retains strict priority over Q2.
//
// Note the deliberate deviation from the constant-rate model: with
// reordering, a Q1 request's wait is bounded by the *number* of pending Q1
// requests (still <= maxQ1 service slots) but slot times now depend on the
// access pattern, so deadlines hold against the disk's effective rate on
// that pattern rather than a nominal IOPS figure.
#pragma once

#include "core/rtt.h"
#include "disk/clook.h"
#include "disk/disk_model.h"
#include "sim/scheduler.h"

namespace qos {

class DiskQosScheduler final : public Scheduler {
 public:
  /// `admission_capacity_iops` should be the disk's measured effective IOPS
  /// on the expected access pattern (see examples/storage_server.cpp).
  /// `geometry` maps LBAs to cylinders for the elevator ordering.
  DiskQosScheduler(double admission_capacity_iops, Time delta,
                   DiskGeometry geometry = {})
      : admission_(admission_capacity_iops, delta), geometry_(geometry) {}

  int server_count() const override { return 1; }

  void on_arrival(const Request& r, Time) override {
    const std::int64_t cylinder = cylinder_of(r);
    if (admission_.admit(len_q1_)) {
      ++len_q1_;
      q1_.push(r, cylinder);
    } else {
      q2_.push(r, cylinder);
    }
  }

  std::optional<Dispatch> next_for(int server, Time) override {
    QOS_EXPECTS(server == 0);
    if (auto r = q1_.pop(head_)) {
      head_ = cylinder_of(*r);
      return Dispatch{*r, ServiceClass::kPrimary};
    }
    if (auto r = q2_.pop(head_)) {
      head_ = cylinder_of(*r);
      return Dispatch{*r, ServiceClass::kOverflow};
    }
    return std::nullopt;
  }

  void on_complete(const Request&, ServiceClass klass, int, Time) override {
    if (klass == ServiceClass::kPrimary) {
      QOS_CHECK(len_q1_ > 0);
      --len_q1_;
    }
  }

  std::int64_t len_q1() const { return len_q1_; }
  std::size_t q1_queued() const { return q1_.size(); }
  std::size_t q2_queued() const { return q2_.size(); }

 private:
  std::int64_t cylinder_of(const Request& r) const {
    const std::int64_t blocks = static_cast<std::int64_t>(
        r.lba % static_cast<std::uint64_t>(geometry_.total_blocks()));
    return blocks / geometry_.blocks_per_cylinder();
  }

  RttAdmission admission_;
  DiskGeometry geometry_;
  ClookQueue q1_;
  ClookQueue q2_;
  std::int64_t len_q1_ = 0;
  std::int64_t head_ = 0;  ///< last dispatched cylinder
};

}  // namespace qos
