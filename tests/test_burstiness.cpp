#include "analysis/burstiness.h"

#include <gtest/gtest.h>

#include "trace/generator.h"
#include "trace/presets.h"

namespace qos {
namespace {

TEST(WindowCounts, UniformLoad) {
  std::vector<Request> reqs;
  for (int i = 0; i < 1000; ++i)
    reqs.push_back(Request{.arrival = static_cast<Time>(i) * 1'000});
  Trace t(std::move(reqs));
  auto counts = window_counts(t, 100'000);
  ASSERT_GE(counts.size(), 9u);
  for (std::size_t i = 0; i + 1 < counts.size(); ++i)
    EXPECT_DOUBLE_EQ(counts[i], 100.0);
}

TEST(Idc, NearOneForPoisson) {
  Trace t = generate_poisson(500, 300 * kUsPerSec, 601);
  const double idc = index_of_dispersion(t, 100'000);
  EXPECT_GT(idc, 0.7);
  EXPECT_LT(idc, 1.4);
}

TEST(Idc, NearZeroForDeterministic) {
  std::vector<Request> reqs;
  for (int i = 0; i < 30'000; ++i)
    reqs.push_back(Request{.arrival = static_cast<Time>(i) * 1'000});
  Trace t(std::move(reqs));
  EXPECT_LT(index_of_dispersion(t, 100'000), 0.05);
}

TEST(Idc, LargeForBurstyMmpp) {
  WorkloadSpec spec;
  spec.states = {{100, 5.0}, {2000, 1.0}};
  Trace t = generate_workload(spec, 300 * kUsPerSec, 603);
  EXPECT_GT(index_of_dispersion(t, 100'000), 10.0);
}

TEST(Autocorrelation, NearZeroForPoisson) {
  Trace t = generate_poisson(500, 300 * kUsPerSec, 605);
  EXPECT_NEAR(count_autocorrelation(t, kUsPerSec, 1), 0.0, 0.15);
}

TEST(Autocorrelation, PositiveForRegimeTraffic) {
  WorkloadSpec spec;
  spec.states = {{100, 10.0}, {1500, 10.0}};
  Trace t = generate_workload(spec, 600 * kUsPerSec, 607);
  EXPECT_GT(count_autocorrelation(t, kUsPerSec, 1), 0.5);
}

TEST(Hurst, NearHalfForPoisson) {
  Trace t = generate_poisson(800, 600 * kUsPerSec, 609);
  EXPECT_NEAR(hurst_aggregated_variance(t, 100'000), 0.5, 0.15);
  EXPECT_NEAR(hurst_rescaled_range(t, 100'000), 0.55, 0.2);
}

TEST(Hurst, ElevatedForBModel) {
  // The b-model is the canonical self-similar storage workload generator;
  // bias 0.8 should show clear long-range dependence.
  Trace t = generate_bmodel(800, 0.8, 18, 600 * kUsPerSec, 611);
  EXPECT_GT(hurst_aggregated_variance(t, 100'000), 0.7);
  EXPECT_GT(hurst_rescaled_range(t, 100'000), 0.65);
}

TEST(Idc, OrderingBModelBias) {
  // More bias => burstier at every scale => higher dispersion.  (The Hurst
  // point estimators are not reliably monotone on extreme cascades, so the
  // ordering check uses IDC.)
  Trace mild = generate_bmodel(800, 0.6, 18, 600 * kUsPerSec, 613);
  Trace strong = generate_bmodel(800, 0.85, 18, 600 * kUsPerSec, 613);
  EXPECT_LT(index_of_dispersion(mild, 100'000),
            index_of_dispersion(strong, 100'000));
}

TEST(Characterize, ProfileFieldsPopulated) {
  Trace t = preset_trace(Workload::kWebSearch, 600 * kUsPerSec);
  BurstinessProfile p = characterize(t);
  EXPECT_GT(p.mean_iops, 100);
  EXPECT_GT(p.peak_to_mean_100ms, 1.0);
  EXPECT_GE(p.peak_to_mean_100ms, p.peak_to_mean_1s);
  EXPECT_GE(p.peak_to_mean_1s, p.peak_to_mean_10s);
  EXPECT_GT(p.idc_100ms, 0);
  EXPECT_GT(p.hurst_av, 0.3);
}

TEST(Characterize, PresetsAreBurstierThanPoisson) {
  // Every preset must show super-Poisson dispersion — the property the
  // whole paper depends on.
  for (Workload w : {Workload::kWebSearch, Workload::kFinTrans,
                     Workload::kOpenMail}) {
    Trace t = preset_trace(w, 1200 * kUsPerSec);
    EXPECT_GT(index_of_dispersion(t, kUsPerSec), 3.0)
        << workload_long_name(w);
  }
}

TEST(Characterize, EmptyTraceIsZeroProfile) {
  BurstinessProfile p = characterize(Trace());
  EXPECT_DOUBLE_EQ(p.mean_iops, 0);
  EXPECT_DOUBLE_EQ(p.hurst_av, 0);
}

}  // namespace
}  // namespace qos
