// Streaming adapters for the synthetic workload generators.
//
// Each adapter drives the same incremental cores (trace/generator_core.h)
// the materialized generators are built on, merges base-process and batch-
// overlay arrivals in sorted order on the fly, and assigns addresses and
// sequence numbers at emission.  Because addresses are a function of the
// arrival-sorted order (see generator.cpp) and the cores replay identical
// Rng streams, every adapter yields the request sequence of its materialized
// counterpart byte for byte — without ever holding more than the overlay's
// bounded lookahead window in memory.
//
// The overlay merge is conservative, not clairvoyant: BatchCore draws the
// next batch's base instant one batch ahead, so its frontier() lower-bounds
// every arrival still inside the core, and a buffered candidate is emitted
// only once the frontier has passed it.  The buffered window is therefore at
// most one batch beyond the emission point, independent of trace length.
//
// The b-model generator is the one exception: a multiplicative cascade
// places every request by global position, so it is inherently offline.
// make_bmodel_stream materializes internally and streams the result — same
// sequence, but trace-sized memory; callers needing bounded memory should
// prefer the other sources.
#pragma once

#include <cstdint>
#include <memory>

#include "stream/stream.h"
#include "trace/generator.h"
#include "trace/presets.h"
#include "util/time.h"

namespace qos::stream {

/// Streaming generate_workload: MMPP base + batch overlay + address model.
std::unique_ptr<RequestStream> make_workload_stream(const WorkloadSpec& spec,
                                                    Time duration,
                                                    std::uint64_t seed);

/// Streaming generate_poisson.
std::unique_ptr<RequestStream> make_poisson_stream(double rate_iops,
                                                   Time duration,
                                                   std::uint64_t seed,
                                                   const AddressSpec& addr = {});

/// Streaming generate_pareto_onoff.
std::unique_ptr<RequestStream> make_pareto_onoff_stream(
    double on_rate_iops, double alpha_on, double xm_on_sec,
    double mean_off_sec, Time duration, std::uint64_t seed,
    const AddressSpec& addr = {});

/// Streaming generate_regime_switching.  Phases are time-disjoint, so the
/// stream simply plays each phase's base+overlay merge in schedule order.
std::unique_ptr<RequestStream> make_regime_stream(const RegimeSchedule& schedule,
                                                  Time duration,
                                                  std::uint64_t seed,
                                                  const AddressSpec& addr = {});

/// generate_bmodel behind the stream interface — materializes internally
/// (see header comment); memory is O(trace), not O(window).
std::unique_ptr<RequestStream> make_bmodel_stream(double mean_rate_iops,
                                                  double b, int levels,
                                                  Time duration,
                                                  std::uint64_t seed,
                                                  const AddressSpec& addr = {});

/// Streaming preset_trace: the calibrated paper-workload stand-ins.
/// `duration <= 0` uses kPresetDuration and `seed == 0` uses preset_seed(w),
/// exactly as preset_trace does.
std::unique_ptr<RequestStream> make_preset_stream(Workload w,
                                                  Time duration = 0,
                                                  std::uint64_t seed = 0);

}  // namespace qos::stream
