#!/usr/bin/env python3
"""Gate a freshly measured bench JSON against the committed perf baseline.

Four modes, selected by --online / --chaos / --stream:

Default (BENCH_micro.json, bench/micro_algorithms): the gated quantity is
each backend's *speedup* — heap ops/sec divided by the frozen scan
reference's ops/sec, both measured in the same process moments apart —
because that ratio cancels the raw speed of the machine running the job.
Absolute ops/sec against a baseline recorded on different hardware would
gate the runner, not the code.  Two checks per (backend, flows) cell:

  1. Regression: current speedup >= (1 - tolerance) * baseline speedup
     (default tolerance 0.25, i.e. fail on a >25% regression).
  2. Floor: at 256 flows the speedup must stay >= --min-speedup (default
     3.0), the overhaul's acceptance criterion, regardless of the baseline.

Cells whose baseline speedup is below 1.0 (the single-flow cells, where a
heap cannot beat a one-element scan and the ratio is run-to-run noise) are
printed as informational and not gated; every backend is still gated at 16
and 256 flows.  Absolute ops/sec are printed for the log but never gated.

The sparse-activation cells (flows_4096 and up) divide the flat-table
backend's ops/sec by the frozen dense-vector layout's
(fq/dense_reference.h, the cells with "ref": "dense") — same
machine-cancelling ratio, different reference, because the linear scan is
O(flows) per op and unmeasurable at this scale.  At flows_1048576 the
ratio must additionally stay >= --min-flat-speedup (default 1.0): the
flat layout beating dense at a million flows is the overhaul's acceptance
criterion, regardless of the baseline.  A cell present in the current
measurement but absent from the baseline fails with an explicit
"regenerate the baseline" message rather than being silently skipped (or
dying with a KeyError on the schema difference).

--online (BENCH_online.json, bench/online_loadgen): the gated quantity is
each (policy, mode) cell's *normalized* throughput — admission decisions
per second divided by the harness's in-process calibration rate (a loop of
the fixed costs every admission pays: clock read, uncontended lock,
counter update) — the same machine-cancelling trick.  Two checks per cell:

  1. Regression: normalized >= (1 - tolerance) * baseline normalized.
     Wall-clock multi-thread runs are noisier than the micro harness, so
     the online default tolerance is 0.50.
  2. Floor: normalized >= --min-normalized (default 0.02: one admission
     must cost no more than ~50 calibration ops), regardless of baseline.

Admission latency percentiles are printed for the log but never gated
(they measure the CI runner's scheduler as much as the code).

--chaos (BENCH_control_plane.json, bench/control_plane): the gated
quantities are *simulation results*, deterministic in the workload and
independent of the machine, so the gate is tight: per
(tenants, chaos, mode) cell the Q1-guarantee tail_violation and q1_miss
fractions must match the baseline within an absolute tolerance (default
0.02 — headroom for cross-compiler FP drift in the capacity search, not
for behaviour change).  Two structural checks run on the *current* numbers
alone, so they hold even if the baseline is regenerated:

  1. Integrity: controller tail_violation <= static tail_violation in
     every cell (the control plane never breaks a guarantee the static
     plan kept).
  2. Defence: in each deepest-chaos scenario the static plan must violate
     and the controller must not — the headline claim the bench exists to
     demonstrate.

--stream (BENCH_stream.json, bench/giant_run): the gated quantity is the
sharded streaming engine's *normalized* throughput — simulation events per
second divided by the harness's in-process calibration rate, the same
machine-cancelling trick as --online.  Checks:

  1. Regression: normalized >= (1 - tolerance) * baseline normalized
     (default tolerance 0.25, i.e. fail on a >25% regression).
  2. Memory contract: the current run's peak RSS must be under its ceiling
     (rss_ok) — the streaming claim is that memory is bounded by the
     barrier window, not the run length, so this is absolute and
     machine-checked on the current numbers alone.
  3. Integrity: completions == requests in the current run.
  4. Observability (instrumented manifests, i.e. --trace/--metrics runs):
     obs_overhead — (untraced - instrumented) / untraced events/sec from
     the harness's own --overhead reference pass — must stay under
     --max-overhead (default 0.20, the <= 20% tracing budget), and
     trace_dropped must be 0 (streaming tracing never silently loses
     spans).  Check 1 only compares like-for-like manifests: an
     instrumented run against an uninstrumented baseline is gated here,
     not on the baseline's raw throughput.

Digests are printed for the log but not gated against the baseline (the
cross-shard byte-identity check is CI's `cmp` over the harness's stdout;
cross-machine FP drift in the generators' libm calls would make a digest
gate flaky).

usage: check_perf.py BASELINE CURRENT [--online | --chaos | --stream]
                     [--tolerance F] [--min-speedup S] [--min-normalized R]
"""

import argparse
import json
import sys

FLOOR_KEY = "flows_256"
FLAT_FLOOR_KEY = "flows_1048576"


def check_online(baseline, current, tolerance, min_normalized):
    failures = []
    print(f"{'policy':<8} {'mode':>7} {'base':>8} {'now':>8} "
          f"{'dec/s':>12} {'p99 ns':>9}  status")
    for policy, base_modes in baseline["policies"].items():
        cur_modes = current["policies"].get(policy)
        if cur_modes is None:
            failures.append(f"{policy}: missing from current results")
            continue
        for mode, base in base_modes.items():
            cur = cur_modes.get(mode)
            if cur is None:
                failures.append(f"{policy}/{mode}: missing from current")
                continue
            base_norm = base["normalized"]
            cur_norm = cur["normalized"]
            allowed = (1.0 - tolerance) * base_norm
            problems = []
            if cur_norm < allowed:
                problems.append(
                    f"normalized {cur_norm:.4f} < {allowed:.4f} "
                    f"(>{tolerance:.0%} regression from {base_norm:.4f})")
            if cur_norm < min_normalized:
                problems.append(
                    f"normalized {cur_norm:.4f} below the "
                    f"{min_normalized:.3f} floor")
            status = "FAIL" if problems else "ok"
            print(f"{policy:<8} {mode:>7} {base_norm:>8.4f} "
                  f"{cur_norm:>8.4f} {cur['decisions_per_sec']:>12.0f} "
                  f"{cur['p99_ns']:>9d}  {status}")
            failures.extend(f"{policy}/{mode}: {p}" for p in problems)
    cal = current.get("calibration_ops_per_sec", 0)
    print(f"calibration: {cal:.0f} ops/s "
          f"(baseline machine: {baseline.get('calibration_ops_per_sec', 0):.0f})")
    return failures


def check_chaos(baseline, current, tolerance):
    failures = []
    print(f"{'tenants':<8} {'chaos':<8} {'mode':<11} {'base viol':>9} "
          f"{'now viol':>9} {'base miss':>9} {'now miss':>9}  status")
    for tkey, base_scenarios in baseline["headline"].items():
        cur_scenarios = current["headline"].get(tkey)
        if cur_scenarios is None:
            failures.append(f"{tkey}: missing from current results")
            continue
        for chaos, base_modes in base_scenarios.items():
            cur_modes = cur_scenarios.get(chaos)
            if cur_modes is None:
                failures.append(f"{tkey}/{chaos}: missing from current")
                continue
            for mode, base in base_modes.items():
                cur = cur_modes.get(mode)
                if cur is None:
                    failures.append(f"{tkey}/{chaos}/{mode}: missing")
                    continue
                problems = []
                for key in ("tail_violation", "q1_miss"):
                    drift = abs(cur[key] - base[key])
                    if drift > tolerance:
                        problems.append(
                            f"{key} {cur[key]:.4f} vs baseline "
                            f"{base[key]:.4f} (drift {drift:.4f} > "
                            f"{tolerance:.4f})")
                status = "FAIL" if problems else "ok"
                print(f"{tkey:<8} {chaos:<8} {mode:<11} "
                      f"{base['tail_violation']:>9.3f} "
                      f"{cur['tail_violation']:>9.3f} "
                      f"{base['q1_miss']:>9.4f} {cur['q1_miss']:>9.4f}  "
                      f"{status}")
                failures.extend(f"{tkey}/{chaos}/{mode}: {p}"
                                for p in problems)
            # Structural checks on the current numbers alone.
            static = cur_modes.get("static")
            ctrl = cur_modes.get("controller")
            if static is None or ctrl is None:
                continue
            if ctrl["tail_violation"] > static["tail_violation"] + 1e-9:
                failures.append(
                    f"{tkey}/{chaos}: controller tail_violation "
                    f"{ctrl['tail_violation']:.4f} exceeds static "
                    f"{static['tail_violation']:.4f}")
        # Defence check at the scenario with the most static violations.
        worst = max(cur_scenarios, key=lambda c: cur_scenarios[c]
                    .get("static", {}).get("tail_violation", 0.0))
        static = cur_scenarios[worst].get("static", {})
        ctrl = cur_scenarios[worst].get("controller", {})
        if static.get("tail_violation", 0.0) < 0.5:
            failures.append(
                f"{tkey}/{worst}: static tail_violation "
                f"{static.get('tail_violation', 0.0):.4f} < 0.5 — the "
                f"chaos scenario no longer stresses the static plan")
        if ctrl.get("tail_violation", 1.0) > 0.25:
            failures.append(
                f"{tkey}/{worst}: controller tail_violation "
                f"{ctrl.get('tail_violation', 1.0):.4f} > 0.25 — the "
                f"control plane failed to defend the Q1 guarantee")
    return failures


def check_stream(baseline, current, tolerance, max_overhead):
    failures = []
    cur_obs = current.get("observability", {})
    base_obs = baseline.get("observability", {})
    instrumented = cur_obs.get("traced", False) or cur_obs.get("metrics",
                                                               False)
    base_norm = baseline["normalized"]
    cur_norm = current["normalized"]
    allowed = (1.0 - tolerance) * base_norm
    # The baseline normalized throughput only gates a like-for-like run: an
    # instrumented pass against an uninstrumented baseline (or vice versa)
    # measures the tracer, not a regression — those runs are gated on
    # obs_overhead below instead.
    comparable = instrumented == (base_obs.get("traced", False) or
                                  base_obs.get("metrics", False))
    if comparable and cur_norm < allowed:
        failures.append(
            f"normalized {cur_norm:.4f} < {allowed:.4f} "
            f"(>{tolerance:.0%} regression from {base_norm:.4f})")
    if instrumented:
        # Observability gates, on the current run alone.  The overhead
        # ratio only exists when --overhead ran a reference pass.
        untraced = cur_obs.get("untraced_events_per_sec", 0)
        overhead = cur_obs.get("obs_overhead", 0.0)
        if untraced > 0 and overhead > max_overhead:
            failures.append(
                f"obs_overhead {overhead:.4f} > {max_overhead:.2f} — "
                f"tracing+metrics cost more than "
                f"{max_overhead:.0%} of untraced events/sec")
        if cur_obs.get("trace_dropped", 0) != 0:
            failures.append(
                f"trace_dropped {cur_obs['trace_dropped']} != 0 — spans "
                f"were silently lost (streaming mode must never drop)")
    if not current.get("rss_ok", False):
        failures.append(
            f"peak_rss_bytes {current.get('peak_rss_bytes', 0)} exceeds "
            f"ceiling {current.get('rss_ceiling_bytes', 0)} — the bounded-"
            f"memory streaming contract is broken")
    if current["completions"] != current["requests"]:
        failures.append(
            f"completions {current['completions']} != requests "
            f"{current['requests']}")
    print(f"{'metric':<24} {'baseline':>14} {'current':>14}")
    for key in ("normalized", "events_per_sec", "calibration_ops_per_sec",
                "wall_sec", "peak_rss_bytes", "requests", "windows"):
        print(f"{key:<24} {baseline.get(key, 0):>14} {current.get(key, 0):>14}")
    for key in ("request_digest", "completion_digest"):
        print(f"{key:<24} {baseline.get(key, ''):>14} "
              f"{current.get(key, ''):>14}  (informational)")
    if cur_obs:
        print(f"{'traced/metrics':<24} {'':>14} "
              f"{str(cur_obs.get('traced', False)) + '/' + str(cur_obs.get('metrics', False)):>14}")
        for key in ("events_observed", "trace_observed", "trace_dropped",
                    "obs_overhead", "untraced_events_per_sec"):
            print(f"{key:<24} {base_obs.get(key, 0):>14} "
                  f"{cur_obs.get(key, 0):>14}")
        print(f"{'event_digest':<24} {base_obs.get('event_digest', ''):>14} "
              f"{cur_obs.get('event_digest', ''):>14}  (informational)")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument("--online", action="store_true",
                        help="gate BENCH_online.json (normalized decisions/s)"
                             " instead of BENCH_micro.json (speedups)")
    parser.add_argument("--chaos", action="store_true",
                        help="gate BENCH_control_plane.json (Q1-guarantee "
                             "violations, deterministic absolute tolerance)")
    parser.add_argument("--stream", action="store_true",
                        help="gate BENCH_stream.json (normalized events/s "
                             "from bench/giant_run plus the RSS ceiling)")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed regression: fractional for micro/"
                             "online (default 0.25 / 0.50), absolute "
                             "metric drift for --chaos (default 0.02)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="micro: hard speedup floor at 256 flows")
    parser.add_argument("--min-flat-speedup", type=float, default=1.0,
                        help="micro: hard flat-vs-dense speedup floor at the "
                             "million-flow sparse-activation cell")
    parser.add_argument("--min-normalized", type=float, default=0.02,
                        help="online: hard normalized-throughput floor")
    parser.add_argument("--max-overhead", type=float, default=0.20,
                        help="stream: ceiling on observability.obs_overhead "
                             "for instrumented giant_run manifests (the "
                             "<= 20%% events/sec tracing budget)")
    args = parser.parse_args()
    if sum((args.online, args.chaos, args.stream)) > 1:
        parser.error("--online, --chaos and --stream are mutually exclusive")
    if args.tolerance is None:
        args.tolerance = (0.02 if args.chaos else
                          0.50 if args.online else 0.25)

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    if args.chaos:
        failures = check_chaos(baseline, current, args.tolerance)
        if failures:
            print("\nperf-smoke FAILED:", file=sys.stderr)
            for f_ in failures:
                print(f"  {f_}", file=sys.stderr)
            return 1
        print("\nperf-smoke passed")
        return 0

    if args.stream:
        failures = check_stream(baseline, current, args.tolerance,
                                args.max_overhead)
        if failures:
            print("\nperf-smoke FAILED:", file=sys.stderr)
            for f_ in failures:
                print(f"  {f_}", file=sys.stderr)
            return 1
        print("\nperf-smoke passed")
        return 0

    if args.online:
        failures = check_online(baseline, current, args.tolerance,
                                args.min_normalized)
        if failures:
            print("\nperf-smoke FAILED:", file=sys.stderr)
            for f_ in failures:
                print(f"  {f_}", file=sys.stderr)
            return 1
        print("\nperf-smoke passed")
        return 0

    failures = []
    print(f"{'backend':<8} {'flows':>13} {'base':>8} {'now':>8} "
          f"{'prod ops/s':>14}  status")
    for backend, base_cells in baseline["schedulers"].items():
        cur_cells = current["schedulers"].get(backend)
        if cur_cells is None:
            failures.append(f"{backend}: missing from current results")
            continue
        # A measured cell the baseline has never seen cannot be gated: fail
        # loudly instead of silently skipping it (or KeyError-ing on the
        # old schema), so adding a bench point forces a baseline regen.
        for cell in cur_cells:
            if cell not in base_cells:
                failures.append(
                    f"{backend}/{cell}: measured but missing from the "
                    f"baseline — regenerate bench/BENCH_micro.baseline.json "
                    f"(see README 'Perf baseline')")
        for cell, base in base_cells.items():
            cur = cur_cells.get(cell)
            if cur is None:
                failures.append(f"{backend}/{cell}: missing from current")
                continue
            base_speedup = base["speedup"]
            cur_speedup = cur["speedup"]
            # Dense-vector reference cells report prod_ops_per_sec; the
            # scan-reference cells predate that name.
            cur_ops = cur.get("heap_ops_per_sec",
                              cur.get("prod_ops_per_sec", 0.0))
            allowed = (1.0 - args.tolerance) * base_speedup
            gated = base_speedup >= 1.0
            problems = []
            if gated and cur_speedup < allowed:
                problems.append(
                    f"speedup {cur_speedup:.2f} < {allowed:.2f} "
                    f"(>{args.tolerance:.0%} regression from "
                    f"{base_speedup:.2f})")
            if cell == FLOOR_KEY and cur_speedup < args.min_speedup:
                problems.append(
                    f"speedup {cur_speedup:.2f} below the "
                    f"{args.min_speedup:.1f}x floor at 256 flows")
            if cell == FLAT_FLOOR_KEY and cur_speedup < args.min_flat_speedup:
                problems.append(
                    f"flat/dense speedup {cur_speedup:.2f} below the "
                    f"{args.min_flat_speedup:.1f}x floor at 1M flows — the "
                    f"flat flow table no longer beats the dense layout")
            floor_gated = gated or cell in (FLOOR_KEY, FLAT_FLOOR_KEY)
            status = ("FAIL" if problems else
                      "ok" if floor_gated else "info")
            print(f"{backend:<8} {cell:>13} {base_speedup:>7.2f}x "
                  f"{cur_speedup:>7.2f}x {cur_ops:>14.0f}  "
                  f"{status}")
            for p in problems:
                failures.append(f"{backend}/{cell}: {p}")

    base_sim = baseline.get("simulator", {})
    cur_sim = current.get("simulator", {})
    for key in base_sim:
        if key in cur_sim:
            print(f"simulator {key}: {cur_sim[key]:.0f} events/s "
                  f"(baseline machine: {base_sim[key]:.0f}; informational)")

    if failures:
        print("\nperf-smoke FAILED:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print("\nperf-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
