// Exact-rate service interval generation on the microsecond grid.
//
// A server of capacity C IOPS completes one request every 1e6/C microseconds,
// which is generally not an integer.  Truncating every interval would make a
// long simulation serve measurably faster than C; always rounding up would
// serve slower.  `ServiceTimer` dithers between floor and ceil so that after
// n requests the accumulated busy time equals round(n * 1e6 / C) exactly —
// the long-run rate is C with bounded (<1 us) instantaneous error.
#pragma once

#include <cstdint>

#include "util/check.h"
#include "util/time.h"

namespace qos {

class ServiceTimer {
 public:
  /// `capacity_iops` must be positive.
  explicit ServiceTimer(double capacity_iops)
      : period_us_(1e6 / capacity_iops) {
    QOS_EXPECTS(capacity_iops > 0);
  }

  /// Duration in integer microseconds of the next service slot.
  Time next() {
    acc_ += period_us_;
    const Time whole = static_cast<Time>(acc_);
    acc_ -= static_cast<double>(whole);
    return whole;
  }

  /// Ideal (fractional) service period in microseconds.
  double period_us() const { return period_us_; }

  /// Reset the accumulated fractional error (e.g. at a busy-period start).
  void reset() { acc_ = 0.0; }

 private:
  double period_us_;
  double acc_ = 0.0;
};

}  // namespace qos
