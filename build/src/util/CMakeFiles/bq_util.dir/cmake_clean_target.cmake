file(REMOVE_RECURSE
  "libbq_util.a"
)
