#include "trace/trace.h"

#include <algorithm>
#include <charconv>
#include <deque>

#include "util/check.h"

namespace qos {

Trace::Trace(std::vector<Request> requests) : requests_(std::move(requests)) {
  std::stable_sort(requests_.begin(), requests_.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival < b.arrival;
                   });
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    QOS_EXPECTS(requests_[i].arrival >= 0);
    requests_[i].seq = i;
  }
}

bool Trace::validate() const {
  Time prev = 0;
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    const Request& r = requests_[i];
    if (!request_record_ok(r) || r.arrival < prev || r.seq != i) return false;
    prev = r.arrival;
  }
  return true;
}

Time Trace::start_time() const {
  QOS_EXPECTS(!empty());
  return requests_.front().arrival;
}

Time Trace::end_time() const {
  QOS_EXPECTS(!empty());
  return requests_.back().arrival;
}

Time Trace::duration() const {
  return size() < 2 ? 0 : end_time() - start_time();
}

double Trace::mean_rate_iops() const {
  if (duration() == 0) return 0.0;
  return static_cast<double>(size()) / to_sec(duration());
}

double Trace::peak_rate_iops(Time window) const {
  QOS_EXPECTS(window > 0);
  // Sliding window over the sorted arrivals: for each request i, count
  // arrivals in (arrival[i] - window, arrival[i]].
  std::size_t lo = 0;
  std::size_t best = 0;
  for (std::size_t i = 0; i < requests_.size(); ++i) {
    while (requests_[i].arrival - requests_[lo].arrival >= window) ++lo;
    best = std::max(best, i - lo + 1);
  }
  return static_cast<double>(best) / to_sec(window);
}

Trace Trace::shifted(Time delta) const {
  std::vector<Request> out(requests_);
  for (auto& r : out) {
    r.arrival += delta;
    QOS_EXPECTS(r.arrival >= 0);
  }
  return Trace(std::move(out));
}

Trace Trace::slice(Time from, Time to) const {
  QOS_EXPECTS(from <= to);
  std::vector<Request> out;
  for (const auto& r : requests_) {
    if (r.arrival >= from && r.arrival < to) {
      Request copy = r;
      copy.arrival -= from;
      out.push_back(copy);
    }
  }
  return Trace(std::move(out));
}

Trace Trace::merge(std::span<const Trace> parts) {
  std::vector<Request> out;
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  out.reserve(total);
  for (std::size_t c = 0; c < parts.size(); ++c) {
    for (const auto& r : parts[c]) {
      Request copy = r;
      copy.client = static_cast<std::uint32_t>(c);
      out.push_back(copy);
    }
  }
  return Trace(std::move(out));
}

Trace Trace::time_scaled(double factor) const {
  QOS_EXPECTS(factor > 0);
  std::vector<Request> out(requests_);
  for (auto& r : out)
    r.arrival = static_cast<Time>(static_cast<double>(r.arrival) * factor);
  return Trace(std::move(out));
}

std::string Trace::to_csv() const {
  std::string out = "arrival_us,client,lba,size_blocks,is_write\n";
  for (const auto& r : requests_) {
    out += std::to_string(r.arrival);
    out += ',';
    out += std::to_string(r.client);
    out += ',';
    out += std::to_string(r.lba);
    out += ',';
    out += std::to_string(r.size_blocks);
    out += ',';
    out += r.is_write ? '1' : '0';
    out += '\n';
  }
  return out;
}

namespace {

// Parse one integer field up to the next comma/newline; advances `pos`.
template <typename T>
bool parse_field(const std::string& s, std::size_t& pos, T& out) {
  const char* begin = s.data() + pos;
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc()) return false;
  pos = static_cast<std::size_t>(ptr - s.data());
  if (pos < s.size() && (s[pos] == ',' || s[pos] == '\n')) ++pos;
  return true;
}

}  // namespace

Trace Trace::from_csv(const std::string& text) {
  std::vector<Request> out;
  std::size_t pos = text.find('\n');  // skip header
  QOS_EXPECTS(pos != std::string::npos);
  ++pos;
  while (pos < text.size()) {
    Request r;
    int write_flag = 0;
    if (!parse_field(text, pos, r.arrival)) break;
    QOS_EXPECTS(parse_field(text, pos, r.client));
    QOS_EXPECTS(parse_field(text, pos, r.lba));
    QOS_EXPECTS(parse_field(text, pos, r.size_blocks));
    QOS_EXPECTS(parse_field(text, pos, write_flag));
    r.is_write = write_flag != 0;
    out.push_back(r);
    while (pos < text.size() && (text[pos] == '\n' || text[pos] == '\r')) ++pos;
  }
  return Trace(std::move(out));
}

}  // namespace qos
