file(REMOVE_RECURSE
  "libbq_sim.a"
)
