// Capacity planner: provision a shared storage server for a mix of tenants.
//
//   $ ./capacity_planner
//
// Scenario from the paper's Section 4.4: a provider admits three tenants
// (search, OLTP, mail).  Compare three provisioning strategies:
//   1. worst-case:  sum of per-tenant Cmin(100%, delta)        — safe, huge;
//   2. naive-shaped: sum of per-tenant Cmin(90%, delta) + dC   — the paper's
//      recommendation, accurate because reshaped workloads have low variance;
//   3. oracle: Cmin of the actually merged trace               — what a
//      clairvoyant admission controller would buy.
#include <cstdio>

#include "core/consolidation.h"
#include "trace/presets.h"
#include "util/table.h"

using namespace qos;

int main() {
  const Time delta = from_ms(10);
  const double fraction = 0.90;

  // Shorter horizon than the benches: a planning what-if, not a full study.
  const Time horizon = 900 * kUsPerSec;
  const Trace tenants[] = {preset_trace(Workload::kWebSearch, horizon),
                           preset_trace(Workload::kFinTrans, horizon),
                           preset_trace(Workload::kOpenMail, horizon)};
  const char* names[] = {"search", "oltp", "mail"};

  std::printf("tenant mix (delta = %.0f ms, f = %.0f%%):\n", to_ms(delta),
              100 * fraction);
  AsciiTable mix;
  mix.add("tenant", "requests", "mean IOPS", "Cmin(90%)", "Cmin(100%)");
  double worst_case_total = 0;
  for (int i = 0; i < 3; ++i) {
    const double c90 = min_capacity(tenants[i], fraction, delta).cmin_iops;
    const double c100 = min_capacity(tenants[i], 1.0, delta).cmin_iops;
    worst_case_total += c100;
    mix.add(names[i], static_cast<unsigned long long>(tenants[i].size()),
            format_double(tenants[i].mean_rate_iops(), 0),
            format_double(c90, 0), format_double(c100, 0));
  }
  std::printf("%s\n", mix.to_string().c_str());

  ConsolidationReport shaped = consolidate(tenants, fraction, delta);
  const Trace merged = Trace::merge(tenants);
  const double oracle = min_capacity(merged, fraction, delta).cmin_iops;

  AsciiTable plans;
  plans.add("strategy", "IOPS", "vs worst-case");
  plans.add("1. worst-case sum (100%)", format_double(worst_case_total, 0),
            "1.00x");
  plans.add("2. shaped sum (90% + dC)",
            format_double(shaped.estimate_iops +
                              overflow_headroom_iops(delta),
                          0),
            format_double((shaped.estimate_iops +
                           overflow_headroom_iops(delta)) /
                              worst_case_total,
                          2) +
                "x");
  plans.add("3. oracle (merged trace)", format_double(oracle, 0),
            format_double(oracle / worst_case_total, 2) + "x");
  std::printf("%s\n", plans.to_string().c_str());

  std::printf(
      "shaped-sum estimate vs oracle: %.1f%% relative error — the paper's\n"
      "claim that decomposed capacities aggregate accurately.\n",
      100 * (shaped.estimate_iops > oracle
                 ? (shaped.estimate_iops - oracle) / oracle
                 : (oracle - shaped.estimate_iops) / oracle));
  return 0;
}
