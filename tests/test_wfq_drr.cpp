#include <gtest/gtest.h>

#include "fq/drr.h"
#include "fq/token_bucket.h"
#include "fq/wfq.h"

namespace qos {
namespace {

// ---------------------------------------------------------------------------
// WFQ (SCFQ virtual time)

TEST(Wfq, ProportionalShareUnderBacklog) {
  WfqScheduler wfq({3.0, 1.0});
  for (std::uint64_t i = 0; i < 40; ++i) {
    wfq.enqueue(0, i, 1.0, 0);
    wfq.enqueue(1, 1000 + i, 1.0, 0);
  }
  int flow0 = 0;
  for (int i = 0; i < 40; ++i) {
    auto d = wfq.dequeue(0);
    ASSERT_TRUE(d);
    if (d->flow == 0) ++flow0;
  }
  EXPECT_NEAR(flow0, 30, 2);
}

TEST(Wfq, WorkConservingWhenOneFlowIdle) {
  WfqScheduler wfq({1.0, 9.0});
  for (std::uint64_t i = 0; i < 6; ++i) wfq.enqueue(0, i, 1.0, 0);
  int served = 0;
  while (auto d = wfq.dequeue(0)) {
    EXPECT_EQ(d->flow, 0);
    ++served;
  }
  EXPECT_EQ(served, 6);
}

TEST(Wfq, FifoWithinFlow) {
  WfqScheduler wfq({2.0, 1.0});
  for (std::uint64_t i = 0; i < 8; ++i) wfq.enqueue(0, i, 1.0, 0);
  std::uint64_t expect = 0;
  while (auto d = wfq.dequeue(0)) EXPECT_EQ(d->handle, expect++);
}

TEST(Wfq, WakingFlowJoinsCurrentRound) {
  WfqScheduler wfq({1.0, 1.0});
  for (std::uint64_t i = 0; i < 10; ++i) wfq.enqueue(0, i, 1.0, 0);
  for (int i = 0; i < 10; ++i) (void)wfq.dequeue(0);
  EXPECT_GT(wfq.virtual_time(), 0);
  wfq.enqueue(1, 50, 1.0, 0);
  wfq.enqueue(0, 51, 1.0, 0);
  auto d1 = wfq.dequeue(0);
  auto d2 = wfq.dequeue(0);
  ASSERT_TRUE(d1 && d2);
  EXPECT_NE(d1->flow, d2->flow);  // neither flow owed idle history
}

TEST(Wfq, EmptyDequeue) {
  WfqScheduler wfq({1.0});
  EXPECT_FALSE(wfq.dequeue(0).has_value());
}

// ---------------------------------------------------------------------------
// DRR

TEST(Drr, ProportionalShareUnderBacklog) {
  DrrScheduler drr({3.0, 1.0}, 1.0);
  for (std::uint64_t i = 0; i < 60; ++i) {
    drr.enqueue(0, i, 1.0, 0);
    drr.enqueue(1, 1000 + i, 1.0, 0);
  }
  int flow0 = 0;
  for (int i = 0; i < 40; ++i) {
    auto d = drr.dequeue(0);
    ASSERT_TRUE(d);
    if (d->flow == 0) ++flow0;
  }
  EXPECT_NEAR(flow0, 30, 4);  // DRR is fair per round, coarser short-term
}

TEST(Drr, WorkConservingWhenOneFlowIdle) {
  DrrScheduler drr({1.0, 9.0}, 1.0);
  for (std::uint64_t i = 0; i < 5; ++i) drr.enqueue(1, i, 1.0, 0);
  int served = 0;
  while (auto d = drr.dequeue(0)) {
    EXPECT_EQ(d->flow, 1);
    ++served;
  }
  EXPECT_EQ(served, 5);
}

TEST(Drr, FifoWithinFlow) {
  DrrScheduler drr({1.0, 1.0}, 2.0);
  for (std::uint64_t i = 0; i < 8; ++i) drr.enqueue(0, i, 1.0, 0);
  std::uint64_t expect = 0;
  while (auto d = drr.dequeue(0)) EXPECT_EQ(d->handle, expect++);
}

TEST(Drr, LargeCostsStillProgress) {
  // Items cost 10 with quantum 1: the fallback keeps it work-conserving.
  DrrScheduler drr({1.0, 1.0}, 1.0);
  drr.enqueue(0, 7, 10.0, 0);
  auto d = drr.dequeue(0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->handle, 7u);
}

TEST(Drr, IdleFlowLosesDeficit) {
  DrrScheduler drr({1.0, 1.0}, 1.0);
  // Flow 0 drains fully, then both flows get fresh backlog: flow 0 must not
  // have banked credit from its idle period.
  for (std::uint64_t i = 0; i < 3; ++i) drr.enqueue(0, i, 1.0, 0);
  while (auto d = drr.dequeue(0)) (void)d;
  for (std::uint64_t i = 0; i < 20; ++i) {
    drr.enqueue(0, 100 + i, 1.0, 0);
    drr.enqueue(1, 200 + i, 1.0, 0);
  }
  int flow0 = 0;
  for (int i = 0; i < 20; ++i) {
    auto d = drr.dequeue(0);
    ASSERT_TRUE(d);
    if (d->flow == 0) ++flow0;
  }
  EXPECT_NEAR(flow0, 10, 2);
}

// ---------------------------------------------------------------------------
// TokenBucket

TEST(TokenBucket, StartsFull) {
  TokenBucket tb(5, 100);
  EXPECT_TRUE(tb.conforms(5, 0));
  EXPECT_FALSE(tb.conforms(6, 0));
}

TEST(TokenBucket, ConsumeAndRefill) {
  TokenBucket tb(5, 100);  // 100 tokens/s
  tb.consume(5, 0);
  EXPECT_FALSE(tb.conforms(1, 0));
  // After 10 ms one token has been earned.
  EXPECT_TRUE(tb.conforms(1, 10'000));
  EXPECT_FALSE(tb.conforms(2, 10'000));
}

TEST(TokenBucket, CapsAtSigma) {
  TokenBucket tb(5, 100);
  tb.consume(5, 0);
  // After a long idle the bucket holds sigma, not more.
  EXPECT_DOUBLE_EQ(tb.tokens(10 * kUsPerSec), 5.0);
}

TEST(TokenBucket, DelayFormula) {
  TokenBucket tb(2, 100);
  tb.consume(2, 0);
  // Need 1 token at 100/s: 10 ms.
  EXPECT_EQ(tb.time_until_conforming(1, 0), 10'000);
  EXPECT_EQ(tb.time_until_conforming(2, 0), 20'000);
  // Already conforming => 0.
  EXPECT_EQ(tb.time_until_conforming(1, 20'000), 0);
}

TEST(TokenBucket, DebtAllowed) {
  TokenBucket tb(1, 100);
  tb.consume(3, 0);  // forced through
  EXPECT_LT(tb.tokens(0), 0);
  // Debt must be repaid before conformance returns: 2 owed + 1 needed.
  EXPECT_EQ(tb.time_until_conforming(1, 0), 30'000);
}

}  // namespace
}  // namespace qos
