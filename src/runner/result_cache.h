// Content-addressed result cache with an in-memory LRU tier and an
// optional on-disk tier.
//
// Keys are 128-bit content digests (runner/hash.h) of everything that
// determines a result: trace bytes, shaping configuration, capacity, seed,
// fault schedule, codec version.  Values are opaque serialized byte strings
// — the sweep and capacity engines own their codecs — so a hit returns the
// exact bytes a fresh compute would have produced and cached cells stay
// bit-identical to recomputed ones.
//
// Tiers: get() probes memory first, then disk; a disk hit is promoted into
// memory.  put() writes both (disk via write-to-temp + rename, so a crashed
// run never leaves a torn entry; readers either see a whole file or none).
// Invalidation is purely by key: flipping any hashed input changes the
// digest, so exactly the affected cells miss and recompute while the rest
// keep hitting — tests/test_runner_cache.cpp pins this down field by field.
//
// Thread safety: all operations take one internal mutex.  Cache calls
// bracket a cell's simulation (they never run inside it), so a single lock
// is invisible next to the milliseconds-to-seconds cost of a miss.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "runner/hash.h"

namespace qos {

class ResultCache {
 public:
  struct Config {
    /// Entries kept in memory; least-recently-used beyond this are evicted
    /// (they remain on disk when a disk tier is configured).
    std::size_t memory_entries = 4096;
    /// Directory for the disk tier; empty disables it.  Created on first
    /// put.  Benches default this to "build/.qos_cache" via bench_io.
    std::string disk_dir;
  };

  struct Stats {
    std::uint64_t hits = 0;         ///< memory + disk
    std::uint64_t memory_hits = 0;
    std::uint64_t disk_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;    ///< memory-tier LRU evictions
  };

  ResultCache() : ResultCache(Config()) {}
  explicit ResultCache(Config config);

  /// The cached bytes for `key`, or nullopt.
  std::optional<std::string> get(const Digest& key);

  /// Store `value` under `key` in every configured tier.
  void put(const Digest& key, const std::string& value);

  Stats stats() const;

  /// Drop the memory tier (disk entries survive); stats are kept.
  void clear_memory();

 private:
  std::optional<std::string> disk_get(const Digest& key);
  void disk_put(const Digest& key, const std::string& value);
  std::string disk_path(const Digest& key) const;
  void insert_memory(const Digest& key, const std::string& value);

  struct DigestHash {
    std::size_t operator()(const Digest& d) const {
      return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9e3779b97f4a7c15ull));
    }
  };

  Config config_;
  mutable std::mutex mutex_;
  /// LRU order, most recent first; the map points into the list.
  std::list<std::pair<Digest, std::string>> lru_;
  std::unordered_map<Digest, decltype(lru_)::iterator, DigestHash> index_;
  Stats stats_;
};

}  // namespace qos
