#!/usr/bin/env python3
"""Gate a freshly measured bench JSON against the committed perf baseline.

Two modes, selected by --online:

Default (BENCH_micro.json, bench/micro_algorithms): the gated quantity is
each backend's *speedup* — heap ops/sec divided by the frozen scan
reference's ops/sec, both measured in the same process moments apart —
because that ratio cancels the raw speed of the machine running the job.
Absolute ops/sec against a baseline recorded on different hardware would
gate the runner, not the code.  Two checks per (backend, flows) cell:

  1. Regression: current speedup >= (1 - tolerance) * baseline speedup
     (default tolerance 0.25, i.e. fail on a >25% regression).
  2. Floor: at 256 flows the speedup must stay >= --min-speedup (default
     3.0), the overhaul's acceptance criterion, regardless of the baseline.

Cells whose baseline speedup is below 1.0 (the single-flow cells, where a
heap cannot beat a one-element scan and the ratio is run-to-run noise) are
printed as informational and not gated; every backend is still gated at 16
and 256 flows.  Absolute ops/sec are printed for the log but never gated.

--online (BENCH_online.json, bench/online_loadgen): the gated quantity is
each (policy, mode) cell's *normalized* throughput — admission decisions
per second divided by the harness's in-process calibration rate (a loop of
the fixed costs every admission pays: clock read, uncontended lock,
counter update) — the same machine-cancelling trick.  Two checks per cell:

  1. Regression: normalized >= (1 - tolerance) * baseline normalized.
     Wall-clock multi-thread runs are noisier than the micro harness, so
     the online default tolerance is 0.50.
  2. Floor: normalized >= --min-normalized (default 0.02: one admission
     must cost no more than ~50 calibration ops), regardless of baseline.

Admission latency percentiles are printed for the log but never gated
(they measure the CI runner's scheduler as much as the code).

usage: check_perf.py BASELINE CURRENT [--online] [--tolerance F]
                     [--min-speedup S] [--min-normalized R]
"""

import argparse
import json
import sys

FLOOR_KEY = "flows_256"


def check_online(baseline, current, tolerance, min_normalized):
    failures = []
    print(f"{'policy':<8} {'mode':>7} {'base':>8} {'now':>8} "
          f"{'dec/s':>12} {'p99 ns':>9}  status")
    for policy, base_modes in baseline["policies"].items():
        cur_modes = current["policies"].get(policy)
        if cur_modes is None:
            failures.append(f"{policy}: missing from current results")
            continue
        for mode, base in base_modes.items():
            cur = cur_modes.get(mode)
            if cur is None:
                failures.append(f"{policy}/{mode}: missing from current")
                continue
            base_norm = base["normalized"]
            cur_norm = cur["normalized"]
            allowed = (1.0 - tolerance) * base_norm
            problems = []
            if cur_norm < allowed:
                problems.append(
                    f"normalized {cur_norm:.4f} < {allowed:.4f} "
                    f"(>{tolerance:.0%} regression from {base_norm:.4f})")
            if cur_norm < min_normalized:
                problems.append(
                    f"normalized {cur_norm:.4f} below the "
                    f"{min_normalized:.3f} floor")
            status = "FAIL" if problems else "ok"
            print(f"{policy:<8} {mode:>7} {base_norm:>8.4f} "
                  f"{cur_norm:>8.4f} {cur['decisions_per_sec']:>12.0f} "
                  f"{cur['p99_ns']:>9d}  {status}")
            failures.extend(f"{policy}/{mode}: {p}" for p in problems)
    cal = current.get("calibration_ops_per_sec", 0)
    print(f"calibration: {cal:.0f} ops/s "
          f"(baseline machine: {baseline.get('calibration_ops_per_sec', 0):.0f})")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument("--online", action="store_true",
                        help="gate BENCH_online.json (normalized decisions/s)"
                             " instead of BENCH_micro.json (speedups)")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="allowed fractional regression "
                             "(default 0.25 micro, 0.50 online)")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="micro: hard speedup floor at 256 flows")
    parser.add_argument("--min-normalized", type=float, default=0.02,
                        help="online: hard normalized-throughput floor")
    args = parser.parse_args()
    if args.tolerance is None:
        args.tolerance = 0.50 if args.online else 0.25

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    if args.online:
        failures = check_online(baseline, current, args.tolerance,
                                args.min_normalized)
        if failures:
            print("\nperf-smoke FAILED:", file=sys.stderr)
            for f_ in failures:
                print(f"  {f_}", file=sys.stderr)
            return 1
        print("\nperf-smoke passed")
        return 0

    failures = []
    print(f"{'backend':<8} {'flows':>9} {'base':>8} {'now':>8} "
          f"{'heap ops/s':>14}  status")
    for backend, base_cells in baseline["schedulers"].items():
        cur_cells = current["schedulers"].get(backend)
        if cur_cells is None:
            failures.append(f"{backend}: missing from current results")
            continue
        for cell, base in base_cells.items():
            cur = cur_cells.get(cell)
            if cur is None:
                failures.append(f"{backend}/{cell}: missing from current")
                continue
            base_speedup = base["speedup"]
            cur_speedup = cur["speedup"]
            allowed = (1.0 - args.tolerance) * base_speedup
            gated = base_speedup >= 1.0
            problems = []
            if gated and cur_speedup < allowed:
                problems.append(
                    f"speedup {cur_speedup:.2f} < {allowed:.2f} "
                    f"(>{args.tolerance:.0%} regression from "
                    f"{base_speedup:.2f})")
            if cell == FLOOR_KEY and cur_speedup < args.min_speedup:
                problems.append(
                    f"speedup {cur_speedup:.2f} below the "
                    f"{args.min_speedup:.1f}x floor at 256 flows")
            status = ("FAIL" if problems else
                      "ok" if gated else "info")
            print(f"{backend:<8} {cell:>9} {base_speedup:>7.2f}x "
                  f"{cur_speedup:>7.2f}x {cur['heap_ops_per_sec']:>14.0f}  "
                  f"{status}")
            for p in problems:
                failures.append(f"{backend}/{cell}: {p}")

    base_sim = baseline.get("simulator", {})
    cur_sim = current.get("simulator", {})
    for key in base_sim:
        if key in cur_sim:
            print(f"simulator {key}: {cur_sim[key]:.0f} events/s "
                  f"(baseline machine: {base_sim[key]:.0f}; informational)")

    if failures:
        print("\nperf-smoke FAILED:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print("\nperf-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
