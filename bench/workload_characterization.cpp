// Workload characterization: burstiness statistics of the three synthetic
// presets, next to the figures the paper reports for the real traces.
//
// Validates the substitution documented in DESIGN.md: the presets must show
// (i) 100 ms-window peaks several times the mean (OpenMail: paper reports
// peak ~4440 vs mean ~534 IOPS), (ii) super-Poisson dispersion growing with
// the window, and (iii) long-range dependence (H > 0.5), the property the
// burst-decomposition literature attributes to storage traffic.
#include <cstdio>

#include "analysis/burstiness.h"
#include "trace/generator.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

void run() {
  AsciiTable table;
  table.add("workload", "mean IOPS", "peak/mean 100ms", "peak/mean 1s",
            "IDC 100ms", "IDC 1s", "acf(1) 1s", "H(av)", "H(rs)");

  auto add_profile = [&](const std::string& name, const Trace& t) {
    BurstinessProfile p = characterize(t);
    table.add(name, format_double(p.mean_iops, 0),
              format_double(p.peak_to_mean_100ms, 1),
              format_double(p.peak_to_mean_1s, 1),
              format_double(p.idc_100ms, 1), format_double(p.idc_1s, 1),
              format_double(p.autocorr_lag1_1s, 2),
              format_double(p.hurst_av, 2), format_double(p.hurst_rs, 2));
  };

  for (Workload w : {Workload::kWebSearch, Workload::kFinTrans,
                     Workload::kOpenMail}) {
    add_profile(workload_long_name(w), preset_trace(w));
  }
  // Reference points: a Poisson stream (no burst structure) and a strongly
  // self-similar b-model stream.
  add_profile("Poisson-500", generate_poisson(500, kPresetDuration, 42));
  add_profile("bmodel-0.8",
              generate_bmodel(500, 0.8, 20, kPresetDuration, 42));

  std::printf("Burstiness profiles (paper reference: OpenMail peak/mean at "
              "100 ms windows ~8.3)\n\n%s",
              table.to_string().c_str());
}

}  // namespace

int main() {
  run();
  return 0;
}
