// Miser slack-based recombination (paper Algorithm 2, Section 3.2).
//
// One server of capacity Cmin + dC serves both classes.  Every admitted
// primary request carries a slack: the number of foreign service slots that
// may precede it without endangering its deadline, assigned at arrival as
// maxQ1 - lenQ1 (post-insertion).  At each dispatch opportunity the server
// issues an overflow request iff every queued primary request retains slack
// >= 1; issuing from Q2 consumes one slot from *every* queued primary, so
// all slacks drop by one.
//
// "Decrement every slack" is O(1) here: slacks are stored shifted by a
// running offset; a Q2 dispatch just bumps the offset.  The minimum is O(1)
// too: slacks retire in exactly admission (FIFO) order, so they live in a
// monotone min window (util/monotone_min.h) rather than a multiset —
// push, retire and min are all amortized constant time.
//
// Because the decision is online and irrevocable, a primary request arriving
// immediately after a Q2 dispatch can still be delayed by that request's
// residual service time — the reason the paper provisions dC extra capacity.
// With dC >= 1/delta one residual overflow slot fits inside the deadline
// window (matching the paper's empirically sufficient dC = 1/delta), and the
// paper's conservative bound dC = Cmin makes violations impossible; the
// ablation bench sweeps dC to show both.
#pragma once

#include "core/rtt.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "sim/scheduler.h"
#include "util/monotone_min.h"
#include "util/ring_buffer.h"

namespace qos {

class MiserScheduler final : public Scheduler {
 public:
  /// `admission_capacity_iops` is Cmin; the backing server should provide
  /// Cmin + dC.
  MiserScheduler(double admission_capacity_iops, Time delta)
      : admission_(admission_capacity_iops, delta) {}

  int server_count() const override { return 1; }

  void attach_observability(EventSink* sink,
                            MetricRegistry* registry) override {
    probe_ = Probe(sink);
    if (registry != nullptr) {
      admitted_ = &registry->counter("rtt.admitted");
      rejected_ = &registry->counter("rtt.rejected");
      q1_occ_ = &registry->occupancy("q1.occupancy");
      q2_occ_ = &registry->occupancy("q2.occupancy");
      dispatch_slack_ = &registry->histogram("miser.dispatch_slack");
    }
  }

  bool arrival_joins_primary(Time) override {
    return admission_.admit(len_q1_);
  }

  void on_arrival(const Request& r, Time now) override {
    if (admission_.admit(len_q1_)) {
      ++len_q1_;
      // Paper: slack = maxQ1 - lenQ1 with lenQ1 counted after insertion.
      const std::int64_t slack = admission_.max_q1() - len_q1_;
      q1_.push_back({r, slack + offset_});
      slacks_.push_back(slack + offset_);
      if (admitted_ != nullptr) admitted_->add();
      if (q1_occ_ != nullptr) q1_occ_->update(now, len_q1_);
      if (probe_) {
        probe_.emit({.time = now,
                     .seq = r.seq,
                     .a = len_q1_,
                     .b = admission_.max_q1(),
                     .client = r.client,
                     .kind = EventKind::kAdmit,
                     .klass = ServiceClass::kPrimary});
      }
    } else {
      q2_.push_back(r);
      if (rejected_ != nullptr) rejected_->add();
      if (q2_occ_ != nullptr)
        q2_occ_->update(now, static_cast<std::int64_t>(q2_.size()));
      if (probe_) {
        probe_.emit({.time = now,
                     .seq = r.seq,
                     .a = static_cast<std::int64_t>(q2_.size()),
                     .client = r.client,
                     .kind = EventKind::kReject,
                     .klass = ServiceClass::kOverflow});
      }
    }
  }

  std::optional<Dispatch> next_for(int server, Time now) override {
    QOS_EXPECTS(server == 0);
    const bool q2_eligible =
        !q2_.empty() && (q1_.empty() || min_slack() >= 1);
    if (q2_eligible) {
      const std::int64_t funding_slack = min_slack();
      Dispatch d{q2_.front(), ServiceClass::kOverflow};
      q2_.pop_front();
      // The dispatched overflow request occupies one slot ahead of every
      // queued primary request.
      ++offset_;
      if (q2_occ_ != nullptr)
        q2_occ_->update(now, static_cast<std::int64_t>(q2_.size()));
      if (dispatch_slack_ != nullptr) dispatch_slack_->record(funding_slack);
      if (probe_) {
        probe_.emit({.time = now,
                     .seq = d.request.seq,
                     .a = funding_slack,
                     .b = static_cast<std::int64_t>(q2_.size()),
                     .client = d.request.client,
                     .kind = EventKind::kSlackDispatch,
                     .klass = ServiceClass::kOverflow});
      }
      return d;
    }
    if (q1_.empty()) return std::nullopt;
    Dispatch d{q1_.front().request, ServiceClass::kPrimary};
    slacks_.pop_front(q1_.front().stored_slack);
    q1_.pop_front();
    return d;
  }

  void on_complete(const Request&, ServiceClass klass, int,
                   Time now) override {
    if (klass == ServiceClass::kPrimary) {
      QOS_CHECK(len_q1_ > 0);
      --len_q1_;
      if (q1_occ_ != nullptr) q1_occ_->update(now, len_q1_);
    }
  }

  /// Smallest slack among queued primary requests; max_q1 when none queued.
  std::int64_t min_slack() const {
    if (slacks_.empty()) return admission_.max_q1();
    return slacks_.min() - offset_;
  }

  std::int64_t len_q1() const { return len_q1_; }
  std::int64_t max_q1() const { return admission_.max_q1(); }
  std::size_t q2_queued() const { return q2_.size(); }

 private:
  struct Entry {
    Request request;
    std::int64_t stored_slack = 0;  ///< actual slack = stored - offset_
  };

  RttAdmission admission_;
  RingBuffer<Entry> q1_;
  RingBuffer<Request> q2_;
  MonotoneMinQueue slacks_;  ///< stored (offset-shifted) slacks, FIFO-retired
  std::int64_t offset_ = 0;
  std::int64_t len_q1_ = 0;  ///< pending primaries (queued + in service)

  Probe probe_;
  Counter* admitted_ = nullptr;
  Counter* rejected_ = nullptr;
  OccupancySeries* q1_occ_ = nullptr;
  OccupancySeries* q2_occ_ = nullptr;
  LatencyHistogram* dispatch_slack_ = nullptr;  ///< slack funding each Q2 issue
};

}  // namespace qos
