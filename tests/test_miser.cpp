#include "core/miser.h"

#include <gtest/gtest.h>

#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace qos {
namespace {

Request make_request(std::uint64_t seq, Time arrival) {
  return Request{.arrival = arrival, .seq = seq};
}

TEST(Miser, SingleServer) {
  MiserScheduler m(100, 10'000);
  EXPECT_EQ(m.server_count(), 1);
}

TEST(Miser, AdmissionMatchesRtt) {
  MiserScheduler m(200, 10'000);  // maxQ1 = 2
  m.on_arrival(make_request(0, 0), 0);
  m.on_arrival(make_request(1, 0), 0);
  m.on_arrival(make_request(2, 0), 0);
  EXPECT_EQ(m.len_q1(), 2);
  EXPECT_EQ(m.q2_queued(), 1u);
}

TEST(Miser, SlackAssignmentAndDispatchRule) {
  MiserScheduler m(200, 10'000);  // maxQ1 = 2
  m.on_arrival(make_request(0, 0), 0);
  m.on_arrival(make_request(1, 0), 0);
  m.on_arrival(make_request(2, 0), 0);  // overflow
  // Queued slacks: request 0 -> 1, request 1 -> 0.
  EXPECT_EQ(m.min_slack(), 0);

  // min slack 0 pins Q2 behind Q1.
  auto d = m.next_for(0, 0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->klass, ServiceClass::kPrimary);
  EXPECT_EQ(d->request.seq, 0u);
  d = m.next_for(0, 0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->klass, ServiceClass::kPrimary);
  EXPECT_EQ(d->request.seq, 1u);

  m.on_complete(make_request(0, 0), ServiceClass::kPrimary, 0, 5'000);
  m.on_complete(make_request(1, 0), ServiceClass::kPrimary, 0, 10'000);
  EXPECT_EQ(m.len_q1(), 0);

  // A fresh primary arrival with slack 1 lets the overflow request jump in.
  m.on_arrival(make_request(3, 100'000), 100'000);
  EXPECT_EQ(m.min_slack(), 1);
  d = m.next_for(0, 100'000);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->klass, ServiceClass::kOverflow);
  EXPECT_EQ(d->request.seq, 2u);

  // Serving Q2 consumed the slack of every queued primary.
  EXPECT_EQ(m.min_slack(), 0);
  d = m.next_for(0, 100'000);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->klass, ServiceClass::kPrimary);
  EXPECT_EQ(d->request.seq, 3u);
}

TEST(Miser, ServesQ2WhenQ1Empty) {
  MiserScheduler m(100, 10'000);  // maxQ1 = 1
  m.on_arrival(make_request(0, 0), 0);
  m.on_arrival(make_request(1, 0), 0);  // overflow
  auto d = m.next_for(0, 0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->klass, ServiceClass::kPrimary);
  d = m.next_for(0, 0);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->klass, ServiceClass::kOverflow);
  EXPECT_FALSE(m.next_for(0, 0).has_value());
}

TEST(Miser, MinSlackIsMaxQ1WhenNoQueuedPrimary) {
  MiserScheduler m(500, 10'000);
  EXPECT_EQ(m.min_slack(), 5);
}

TEST(Miser, WorkConserving) {
  // Saturated: makespan equals total demand / capacity regardless of the
  // Q1/Q2 interleaving.
  std::vector<Request> reqs;
  for (int i = 0; i < 200; ++i) reqs.push_back(Request{.arrival = 0});
  Trace t(std::move(reqs));
  MiserScheduler m(100, 10'000);
  ConstantRateServer server(200);
  SimResult r = simulate(t, m, server);
  EXPECT_EQ(r.completions.size(), 200u);
  EXPECT_EQ(r.makespan(), 1'000'000);
}

TEST(Miser, AllRequestsEventuallyServed) {
  Trace t = generate_poisson(700, 20 * kUsPerSec, 21);
  const Time delta = 10'000;
  const double cmin = 400;
  MiserScheduler m(cmin, delta);
  ConstantRateServer server(cmin + overflow_headroom_iops(delta));
  SimResult r = simulate(t, m, server);
  EXPECT_EQ(r.completions.size(), t.size());
}

TEST(Miser, PrimaryDeadlineMissesAreRare) {
  // The paper: with dC = 1/delta, "very few (if any)" primary requests miss.
  Trace t = generate_poisson(700, 30 * kUsPerSec, 23);
  const Time delta = 10'000;
  const double cmin = 500;
  MiserScheduler m(cmin, delta);
  ConstantRateServer server(cmin + overflow_headroom_iops(delta));
  SimResult r = simulate(t, m, server);
  std::int64_t primary = 0, missed = 0;
  for (const auto& c : r.completions) {
    if (c.klass != ServiceClass::kPrimary) continue;
    ++primary;
    if (c.response_time() > delta) ++missed;
  }
  ASSERT_GT(primary, 0);
  EXPECT_LT(static_cast<double>(missed) / static_cast<double>(primary),
            0.002);
}

TEST(Miser, GenerousHeadroomGuaranteesAllPrimaries) {
  // Theoretical bound: dC = Cmin makes primary misses impossible.
  Trace t = generate_poisson(900, 20 * kUsPerSec, 27);
  const Time delta = 10'000;
  const double cmin = 500;
  MiserScheduler m(cmin, delta);
  ConstantRateServer server(2 * cmin);
  SimResult r = simulate(t, m, server);
  for (const auto& c : r.completions)
    if (c.klass == ServiceClass::kPrimary) {
      EXPECT_LE(c.response_time(), delta);
    }
}

TEST(Miser, AdversarialArrivalAfterQ2Dispatch) {
  // The online worst case from Section 3.2: a Q2 request is dispatched
  // (slack was available), and immediately afterwards a primary request
  // arrives into an almost-full queue.  It must wait out the overflow
  // residual plus a full primary queue — with only Cmin provisioned it can
  // miss by up to one slot, and with Cmin + 1/delta it cannot.
  const double cmin = 500;
  const Time delta = 10'000;  // maxQ1 = 5

  auto run_adversary = [&](double server_iops) {
    std::vector<Request> reqs;
    // Prime: one overflow candidate.  Burst of 6 at t=0 -> 5 primary, 1
    // overflow.  Primaries drain; at the instant the overflow request is
    // the dispatch choice (all primaries done, slack ample), a fresh burst
    // of 5 primaries lands 1 us later and queues behind it.
    for (int i = 0; i < 6; ++i) reqs.push_back(Request{.arrival = 0});
    for (int i = 0; i < 5; ++i)
      reqs.push_back(Request{.arrival = 10'000 + 1});
    Trace t(std::move(reqs));
    MiserScheduler m(cmin, delta);
    ConstantRateServer server(server_iops);
    SimResult r = simulate(t, m, server);
    Time worst = 0;
    for (const auto& c : r.completions)
      if (c.klass == ServiceClass::kPrimary)
        worst = std::max(worst, c.response_time());
    return worst;
  };

  // At exactly Cmin the adversarial primary can exceed delta...
  EXPECT_GT(run_adversary(cmin), delta);
  // ...and the paper's dC = 1/delta headroom absorbs the residual.
  EXPECT_LE(run_adversary(cmin + 100), delta);
}

TEST(Miser, Q2KeptFifo) {
  Trace t = generate_poisson(1500, 5 * kUsPerSec, 29);
  MiserScheduler m(300, 10'000);
  ConstantRateServer server(400);
  SimResult r = simulate(t, m, server);
  std::uint64_t prev = 0;
  bool first = true;
  for (const auto& c : r.completions) {
    if (c.klass != ServiceClass::kOverflow) continue;
    if (!first) {
      EXPECT_GT(c.seq, prev);
    }
    prev = c.seq;
    first = false;
  }
}

}  // namespace
}  // namespace qos
