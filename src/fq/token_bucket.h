// Token bucket — the conformance primitive of network traffic shaping
// (paper Section 5's related work) and of pClock's tagging.
//
// A bucket of depth sigma fills at rate rho tokens/second.  `conforms`
// tests whether a request of given cost could be admitted now; `consume`
// takes the tokens (allowing debt when forced); `time_until_conforming`
// tells a shaper how long to delay a non-conforming request — the classic
// leaky-bucket delay formula.
#pragma once

#include <algorithm>

#include "util/check.h"
#include "util/time.h"

namespace qos {

class TokenBucket {
 public:
  TokenBucket(double sigma, double rho) : sigma_(sigma), rho_(rho) {
    QOS_EXPECTS(sigma >= 0);
    QOS_EXPECTS(rho > 0);
    tokens_ = sigma;
  }

  /// Earn tokens up to `now`; must be called with non-decreasing times.
  void advance(Time now) {
    QOS_EXPECTS(now >= last_);
    tokens_ = std::min(sigma_, tokens_ + rho_ * to_sec(now - last_));
    last_ = now;
  }

  bool conforms(double cost, Time now) {
    advance(now);
    return tokens_ >= cost;
  }

  /// Take `cost` tokens at `now`; tokens may go negative (debt) when the
  /// caller ships a non-conforming request anyway.
  void consume(double cost, Time now) {
    QOS_EXPECTS(cost >= 0);
    advance(now);
    tokens_ -= cost;
  }

  /// Microseconds until a request of `cost` becomes conforming (0 if it
  /// already is).
  Time time_until_conforming(double cost, Time now) {
    advance(now);
    if (tokens_ >= cost) return 0;
    return from_sec((cost - tokens_) / rho_);
  }

  double tokens(Time now) {
    advance(now);
    return tokens_;
  }

  double sigma() const { return sigma_; }
  double rho() const { return rho_; }

 private:
  double sigma_;
  double rho_;
  double tokens_ = 0;
  Time last_ = 0;
};

}  // namespace qos
