#include "core/sla.h"

#include <gtest/gtest.h>

#include "core/shaper.h"
#include "trace/generator.h"

namespace qos {
namespace {

TEST(GraduatedSla, ValidityRules) {
  GraduatedSla empty;
  EXPECT_FALSE(empty.valid());

  GraduatedSla single{{SlaTier{0.9, from_ms(10)}}};
  EXPECT_TRUE(single.valid());

  // Fractions must increase with the deltas.
  GraduatedSla good{{SlaTier{0.9, from_ms(10)}, SlaTier{0.99, from_ms(50)}}};
  EXPECT_TRUE(good.valid());

  GraduatedSla bad_fraction{
      {SlaTier{0.99, from_ms(10)}, SlaTier{0.9, from_ms(50)}}};
  EXPECT_FALSE(bad_fraction.valid());

  GraduatedSla bad_delta{
      {SlaTier{0.9, from_ms(50)}, SlaTier{0.99, from_ms(10)}}};
  EXPECT_FALSE(bad_delta.valid());

  GraduatedSla bad_range{{SlaTier{1.5, from_ms(10)}}};
  EXPECT_FALSE(bad_range.valid());
}

TEST(PlanCapacity, CoversEveryTier) {
  WorkloadSpec spec;
  spec.states = {{200, 2.0}, {1200, 0.3}};
  Trace t = generate_workload(spec, 120 * kUsPerSec, 103);
  GraduatedSla sla{{SlaTier{0.9, from_ms(10)}, SlaTier{0.99, from_ms(50)}}};
  ProvisioningPlan plan = plan_capacity(t, sla);
  for (const auto& tier : sla.tiers)
    EXPECT_GE(fraction_guaranteed(t, plan.cmin_iops, tier.delta),
              tier.fraction);
}

TEST(PlanCapacity, HeadroomFromTightestDelta) {
  Trace t = generate_poisson(300, 30 * kUsPerSec, 107);
  GraduatedSla sla{{SlaTier{0.9, from_ms(10)}, SlaTier{0.99, from_ms(50)}}};
  ProvisioningPlan plan = plan_capacity(t, sla);
  EXPECT_DOUBLE_EQ(plan.headroom_iops, 100.0);  // 1 / 10 ms
}

TEST(PlanCapacity, GraduationSavesCapacityOnBurstyLoad) {
  WorkloadSpec spec;
  spec.states = {{150, 2.0}};
  spec.batches = {.batches_per_sec = 0.1,
                  .mean_size = 15,
                  .spread_us = 1'000,
                  .giant_prob = 0,
                  .giant_factor = 1};
  Trace t = generate_workload(spec, 120 * kUsPerSec, 109);
  GraduatedSla sla{{SlaTier{0.95, from_ms(10)}}};
  ProvisioningPlan plan = plan_capacity(t, sla);
  EXPECT_LT(plan.saving_ratio(), 0.8)
      << "graduated provisioning should beat worst-case by >20% here";
  EXPECT_GT(plan.worst_case_iops, plan.cmin_iops);
}

TEST(AuditSla, PassAndFail) {
  // Synthetic completions: 90% at 5 ms, 10% at 80 ms.
  std::vector<CompletionRecord> cs;
  for (int i = 0; i < 100; ++i) {
    CompletionRecord c;
    c.seq = static_cast<std::uint64_t>(i);
    c.finish = i < 90 ? from_ms(5) : from_ms(80);
    cs.push_back(c);
  }
  GraduatedSla pass{{SlaTier{0.9, from_ms(10)}, SlaTier{0.99, from_ms(100)}}};
  SlaAudit a = audit_sla(cs, pass);
  EXPECT_TRUE(a.satisfied);
  ASSERT_EQ(a.achieved.size(), 2u);
  EXPECT_DOUBLE_EQ(a.achieved[0], 0.9);
  EXPECT_DOUBLE_EQ(a.achieved[1], 1.0);
  EXPECT_NEAR(a.worst_margin, 0.0, 1e-12);

  GraduatedSla fail{{SlaTier{0.95, from_ms(10)}}};
  SlaAudit b = audit_sla(cs, fail);
  EXPECT_FALSE(b.satisfied);
  EXPECT_NEAR(b.worst_margin, -0.05, 1e-12);
}

TEST(AuditSla, ShapedRunSatisfiesItsPlan) {
  // End-to-end: plan a graduated SLA, run Miser at the planned capacity,
  // audit the simulation against the same SLA.
  WorkloadSpec spec;
  spec.states = {{250, 2.0}, {900, 0.4}};
  Trace t = generate_workload(spec, 60 * kUsPerSec, 113);
  GraduatedSla sla{{SlaTier{0.90, from_ms(20)}}};
  ProvisioningPlan plan = plan_capacity(t, sla);

  ShapingConfig config;
  config.policy = Policy::kMiser;
  config.fraction = 0.90;
  config.delta = from_ms(20);
  config.capacity_override_iops = plan.cmin_iops;
  ShapingOutcome out = shape_and_run(t, config);
  SlaAudit audit = audit_sla(out.sim.completions, sla);
  // Miser may shave a hair off the planned fraction (paper Section 3.2).
  EXPECT_GT(audit.worst_margin, -0.01);
}

TEST(PlanCapacity, SmoothLoadSavesLittle) {
  // A perfectly regular load has no tail to exempt: worst-case and
  // graduated capacity nearly coincide.
  std::vector<Request> reqs;
  for (int i = 0; i < 12'000; ++i)
    reqs.push_back(Request{.arrival = static_cast<Time>(i) * 10'000});
  Trace t(std::move(reqs));
  GraduatedSla sla{{SlaTier{0.95, from_ms(10)}}};
  ProvisioningPlan plan = plan_capacity(t, sla);
  EXPECT_GT(plan.saving_ratio(), 0.8);
}

}  // namespace
}  // namespace qos
