#include "sim/simulator.h"

#include <algorithm>

#include "sim/engine.h"
#include "util/check.h"

namespace qos {

std::vector<CompletionRecord> SimResult::by_seq() const {
  std::vector<CompletionRecord> out(completions.size());
  std::vector<bool> seen(completions.size(), false);
  for (const auto& c : completions) {
    QOS_CHECK(c.seq < out.size());
    // A duplicate seq means the run fanned out (one arrival, multiple
    // completions) — such results have holes too, since |completions| >
    // |trace|.  Use by_seq_multi() for fan-out schedulers.
    QOS_CHECK(!seen[c.seq]);
    seen[c.seq] = true;
    out[c.seq] = c;
  }
  // size() slots, unique in-range seqs => every slot filled (pigeonhole).
  return out;
}

std::vector<std::vector<CompletionRecord>> SimResult::by_seq_multi() const {
  std::uint64_t max_seq = 0;
  for (const auto& c : completions) max_seq = std::max(max_seq, c.seq);
  std::vector<std::vector<CompletionRecord>> out(
      completions.empty() ? 0 : max_seq + 1);
  for (const auto& c : completions) out[c.seq].push_back(c);
  return out;
}

Time SimResult::makespan() const {
  Time last = 0;
  for (const auto& c : completions) last = std::max(last, c.finish);
  return last;
}

SimResult simulate(const Trace& trace, Scheduler& scheduler,
                   std::span<Server* const> servers, EventSink* sink) {
  QOS_EXPECTS(trace.validate());

  // The event loop lives in SimEngine (sim/engine.h) so the materialized,
  // streamed and sharded drivers share one event order.  This driver is the
  // reference cadence: retire everything before each arrival instant, buffer
  // the arrival, drain at the end.
  SimEngine engine(scheduler, servers, sink);
  SimResult result;
  result.completions.reserve(trace.size());
  auto collect = [&result](const CompletionRecord& record) {
    result.completions.push_back(record);
  };
  for (const Request& r : trace) {
    engine.advance_until(r.arrival, collect);
    engine.push_arrival(r);
  }
  engine.advance_until(kTimeMax, collect);

  if (scheduler.fans_out())
    QOS_ENSURES(result.completions.size() >= trace.size());
  else
    QOS_ENSURES(result.completions.size() == trace.size());
  return result;
}

SimResult simulate(const Trace& trace, Scheduler& scheduler, Server& server,
                   EventSink* sink) {
  Server* servers[] = {&server};
  return simulate(trace, scheduler, servers, sink);
}

}  // namespace qos
