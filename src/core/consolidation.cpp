#include "core/consolidation.h"

namespace qos {

ConsolidationReport consolidate(std::span<const Trace> clients,
                                double fraction, Time delta) {
  std::vector<double> individual;
  individual.reserve(clients.size());
  for (const auto& t : clients)
    individual.push_back(min_capacity(t, fraction, delta).cmin_iops);
  const Trace merged = Trace::merge(clients);
  return assemble_consolidation(
      std::move(individual), min_capacity(merged, fraction, delta).cmin_iops);
}

ConsolidationReport assemble_consolidation(std::vector<double> individual,
                                           double actual_iops) {
  ConsolidationReport report;
  report.individual_iops = std::move(individual);
  for (double c : report.individual_iops) report.estimate_iops += c;
  report.actual_iops = actual_iops;
  return report;
}

}  // namespace qos
