// Frozen dense-vector + indexed-heap FQ backends (the PR 5 layout).
//
// These are the pre-flat-table implementations, kept verbatim as the layout
// the million-flow overhaul is measured against: per-flow state in a vector
// pre-sized to the full id space, and head tags in an IndexedMinHeap keyed
// directly by flow id.  bench/micro_algorithms runs them side by side with
// the production flat-table backends at 4k/64k/1M flows (the committed
// baseline's `ref = "dense"` cells), and tests/test_fq_differential.cpp
// uses them as a second executable spec for the sparse-activation
// differentials.  They are NOT part of the production library — do not use
// them outside tests and benches, and do not "fix" them: a deliberate
// behaviour change in the real backends must retire the corresponding
// assertion here, not mutate the reference.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "fq/fair_scheduler.h"
#include "fq/pclock.h"
#include "util/check.h"
#include "util/indexed_heap.h"
#include "util/ring_buffer.h"

namespace qos::denseref {

/// SFQ over dense pre-sized flow vectors (PR 5 production implementation).
class DenseSfqScheduler final : public FairScheduler {
 public:
  explicit DenseSfqScheduler(std::vector<double> weights) {
    QOS_EXPECTS(!weights.empty());
    flows_.resize(weights.size());
    head_start_.reset(static_cast<int>(weights.size()));
    for (std::size_t i = 0; i < weights.size(); ++i) {
      QOS_EXPECTS(weights[i] > 0);
      flows_[i].weight = weights[i];
    }
  }

  int flow_count() const override { return static_cast<int>(flows_.size()); }

  void enqueue(int flow, std::uint64_t handle, double cost, Time) override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    QOS_EXPECTS(cost > 0);
    Flow& f = flows_[static_cast<std::size_t>(flow)];
    Item item;
    item.handle = handle;
    item.start = std::max(v_, f.last_finish);
    item.finish = item.start + cost / f.weight;
    f.last_finish = item.finish;
    const bool was_empty = f.queue.empty();
    f.queue.push_back(item);
    if (was_empty) head_start_.push(flow, item.start);
  }

  std::optional<FqDispatch> dequeue(Time) override {
    if (head_start_.empty()) return std::nullopt;
    const int best = head_start_.top();
    Flow& f = flows_[static_cast<std::size_t>(best)];
    const Item item = f.queue.front();
    f.queue.pop_front();
    v_ = item.start;
    if (f.queue.empty())
      head_start_.pop();
    else
      head_start_.update(best, f.queue.front().start);
    return FqDispatch{best, item.handle};
  }

  bool empty() const override { return head_start_.empty(); }

  std::size_t backlog(int flow) const override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    return flows_[static_cast<std::size_t>(flow)].queue.size();
  }

  double virtual_time() const { return v_; }

  std::size_t approx_memory_bytes() const {
    std::size_t queues = 0;
    for (const Flow& f : flows_) queues += f.queue.capacity() * sizeof(Item);
    return flows_.capacity() * sizeof(Flow) + queues +
           head_start_.memory_bytes();
  }

 private:
  struct Item {
    std::uint64_t handle = 0;
    double start = 0;
    double finish = 0;
  };
  struct Flow {
    double weight = 1;
    double last_finish = 0;
    RingBuffer<Item> queue;
  };

  std::vector<Flow> flows_;
  IndexedMinHeap<double> head_start_;
  double v_ = 0;
};

/// WFQ (SCFQ virtual time) over dense pre-sized flow vectors.
class DenseWfqScheduler final : public FairScheduler {
 public:
  explicit DenseWfqScheduler(std::vector<double> weights) {
    QOS_EXPECTS(!weights.empty());
    flows_.resize(weights.size());
    head_finish_.reset(static_cast<int>(weights.size()));
    for (std::size_t i = 0; i < weights.size(); ++i) {
      QOS_EXPECTS(weights[i] > 0);
      flows_[i].weight = weights[i];
      total_weight_ += weights[i];
    }
  }

  int flow_count() const override { return static_cast<int>(flows_.size()); }

  void enqueue(int flow, std::uint64_t handle, double cost, Time) override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    QOS_EXPECTS(cost > 0);
    Flow& f = flows_[static_cast<std::size_t>(flow)];
    Item item;
    item.handle = handle;
    item.cost = cost;
    item.finish = std::max(v_, f.last_finish) + cost / f.weight;
    f.last_finish = item.finish;
    const bool was_empty = f.queue.empty();
    f.queue.push_back(item);
    if (was_empty) head_finish_.push(flow, item.finish);
  }

  std::optional<FqDispatch> dequeue(Time) override {
    if (head_finish_.empty()) return std::nullopt;
    const int best = head_finish_.top();
    Flow& f = flows_[static_cast<std::size_t>(best)];
    const Item item = f.queue.front();
    f.queue.pop_front();
    v_ = item.finish;
    if (f.queue.empty())
      head_finish_.pop();
    else
      head_finish_.update(best, f.queue.front().finish);
    return FqDispatch{best, item.handle};
  }

  bool empty() const override { return head_finish_.empty(); }

  std::size_t backlog(int flow) const override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    return flows_[static_cast<std::size_t>(flow)].queue.size();
  }

  double virtual_time() const { return v_; }

  std::size_t approx_memory_bytes() const {
    std::size_t queues = 0;
    for (const Flow& f : flows_) queues += f.queue.capacity() * sizeof(Item);
    return flows_.capacity() * sizeof(Flow) + queues +
           head_finish_.memory_bytes();
  }

 private:
  struct Item {
    std::uint64_t handle = 0;
    double cost = 1;
    double finish = 0;
  };
  struct Flow {
    double weight = 1;
    double last_finish = 0;
    RingBuffer<Item> queue;
  };

  std::vector<Flow> flows_;
  IndexedMinHeap<double> head_finish_;
  double v_ = 0;
  double total_weight_ = 0;
};

/// WF2Q+ two-heap eligible-set structure over dense flow vectors.
class DenseWf2qPlusScheduler final : public FairScheduler {
 public:
  explicit DenseWf2qPlusScheduler(std::vector<double> weights) {
    QOS_EXPECTS(!weights.empty());
    flows_.resize(weights.size());
    eligible_.reset(static_cast<int>(weights.size()));
    ineligible_.reset(static_cast<int>(weights.size()));
    for (std::size_t i = 0; i < weights.size(); ++i) {
      QOS_EXPECTS(weights[i] > 0);
      flows_[i].weight = weights[i];
      total_weight_ += weights[i];
    }
  }

  int flow_count() const override { return static_cast<int>(flows_.size()); }

  void enqueue(int flow, std::uint64_t handle, double cost, Time) override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    QOS_EXPECTS(cost > 0);
    Flow& f = flows_[static_cast<std::size_t>(flow)];
    Item item;
    item.handle = handle;
    item.cost = cost;
    item.start = std::max(v_, f.last_finish);
    item.finish = item.start + cost / f.weight;
    f.last_finish = item.finish;
    const bool was_empty = f.queue.empty();
    f.queue.push_back(item);
    if (was_empty) classify(flow, item);
  }

  std::optional<FqDispatch> dequeue(Time) override {
    if (eligible_.empty() && ineligible_.empty()) return std::nullopt;
    if (eligible_.empty()) v_ = std::max(v_, ineligible_.top_key());
    while (!ineligible_.empty() && ineligible_.top_key() <= v_) {
      const int flow = ineligible_.pop();
      eligible_.push(
          flow, flows_[static_cast<std::size_t>(flow)].queue.front().finish);
    }
    QOS_CHECK(!eligible_.empty());
    const int best = eligible_.pop();
    Flow& f = flows_[static_cast<std::size_t>(best)];
    const Item item = f.queue.front();
    f.queue.pop_front();
    v_ += item.cost / total_weight_;
    if (!f.queue.empty()) classify(best, f.queue.front());
    return FqDispatch{best, item.handle};
  }

  bool empty() const override {
    return eligible_.empty() && ineligible_.empty();
  }

  std::size_t backlog(int flow) const override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    return flows_[static_cast<std::size_t>(flow)].queue.size();
  }

  double virtual_time() const { return v_; }

  std::size_t approx_memory_bytes() const {
    std::size_t queues = 0;
    for (const Flow& f : flows_) queues += f.queue.capacity() * sizeof(Item);
    return flows_.capacity() * sizeof(Flow) + queues +
           eligible_.memory_bytes() + ineligible_.memory_bytes();
  }

 private:
  struct Item {
    std::uint64_t handle = 0;
    double cost = 1;
    double start = 0;
    double finish = 0;
  };
  struct Flow {
    double weight = 1;
    double last_finish = 0;
    RingBuffer<Item> queue;
  };

  void classify(int flow, const Item& head) {
    if (head.start <= v_)
      eligible_.push(flow, head.finish);
    else
      ineligible_.push(flow, head.start);
  }

  std::vector<Flow> flows_;
  IndexedMinHeap<double> eligible_;
  IndexedMinHeap<double> ineligible_;
  double v_ = 0;
  double total_weight_ = 0;
};

/// pClock tagging over dense flow vectors, EDF via flow-id-keyed heap.
class DensePClockScheduler final : public FairScheduler {
 public:
  explicit DensePClockScheduler(std::vector<PClockSla> slas) {
    QOS_EXPECTS(!slas.empty());
    flows_.resize(slas.size());
    head_deadline_.reset(static_cast<int>(slas.size()));
    for (std::size_t i = 0; i < slas.size(); ++i) {
      QOS_EXPECTS(slas[i].sigma >= 0);
      QOS_EXPECTS(slas[i].rho > 0);
      QOS_EXPECTS(slas[i].delta >= 0);
      flows_[i].sla = slas[i];
      flows_[i].tokens = slas[i].sigma;
    }
  }

  int flow_count() const override { return static_cast<int>(flows_.size()); }

  void enqueue(int flow, std::uint64_t handle, double cost,
               Time now) override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    QOS_EXPECTS(cost > 0);
    Flow& f = flows_[static_cast<std::size_t>(flow)];
    f.tokens = std::min(f.sla.sigma,
                        f.tokens + f.sla.rho * to_sec(now - f.last_update));
    f.last_update = now;

    Item item;
    item.handle = handle;
    f.tokens -= cost;
    if (f.tokens >= 0) {
      item.deadline = now + f.sla.delta;
    } else {
      item.deadline = now + f.sla.delta + from_sec(-f.tokens / f.sla.rho);
    }
    if (!f.queue.empty())
      item.deadline = std::max(item.deadline, f.queue.back().deadline);
    const bool was_empty = f.queue.empty();
    f.queue.push_back(item);
    if (was_empty) head_deadline_.push(flow, item.deadline);
  }

  std::optional<FqDispatch> dequeue(Time) override {
    if (head_deadline_.empty()) return std::nullopt;
    const int best = head_deadline_.top();
    Flow& f = flows_[static_cast<std::size_t>(best)];
    const Item item = f.queue.front();
    f.queue.pop_front();
    if (f.queue.empty())
      head_deadline_.pop();
    else
      head_deadline_.update(best, f.queue.front().deadline);
    return FqDispatch{best, item.handle};
  }

  bool empty() const override { return head_deadline_.empty(); }

  std::size_t backlog(int flow) const override {
    QOS_EXPECTS(flow >= 0 && flow < flow_count());
    return flows_[static_cast<std::size_t>(flow)].queue.size();
  }

  std::size_t approx_memory_bytes() const {
    std::size_t queues = 0;
    for (const Flow& f : flows_) queues += f.queue.capacity() * sizeof(Item);
    return flows_.capacity() * sizeof(Flow) + queues +
           head_deadline_.memory_bytes();
  }

 private:
  struct Item {
    std::uint64_t handle = 0;
    Time deadline = 0;
  };
  struct Flow {
    PClockSla sla;
    double tokens = 0;
    Time last_update = 0;
    RingBuffer<Item> queue;
  };

  std::vector<Flow> flows_;
  IndexedMinHeap<Time> head_deadline_;
};

}  // namespace qos::denseref
