file(REMOVE_RECURSE
  "CMakeFiles/test_statistical.dir/test_statistical.cpp.o"
  "CMakeFiles/test_statistical.dir/test_statistical.cpp.o.d"
  "test_statistical"
  "test_statistical.pdb"
  "test_statistical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_statistical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
