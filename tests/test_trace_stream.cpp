// Streaming trace path: QOSTRC02 round-trips, chunk framing and corruption
// rejection, the skip-unread-chunks contract, and — the load-bearing claim —
// that streamed analysis reports exactly the numbers the materialized path
// computes from the same records, so giant runs lose nothing but the
// timeline by never holding their spans.
#include "obs/trace_stream.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/shaper.h"
#include "obs/trace.h"
#include "obs/trace_analysis.h"
#include "obs/trace_export.h"
#include "runner/sweep.h"
#include "trace/presets.h"

namespace qos {
namespace {

RequestSpan make_span(std::uint64_t seq, Time arrival, Time completion) {
  RequestSpan s;
  s.seq = seq;
  s.client = static_cast<std::uint32_t>(seq % 3);
  s.arrival = arrival;
  s.decision = s.enqueue = arrival + 1;
  s.service_start = completion - 8;
  s.completion = completion;
  s.admitted = seq % 2 == 0 ? 1 : 0;
  s.klass = s.admitted ? ServiceClass::kPrimary : ServiceClass::kOverflow;
  s.depth_at_decision = static_cast<std::int64_t>(seq % 5);
  return s;
}

// Write a small synthetic stream: n spans, two faults, three slack samples.
std::string synthetic_stream(std::size_t n, std::size_t records_per_chunk) {
  std::ostringstream out;
  StreamTraceMeta meta;
  meta.label = "Miser";
  meta.trace_name = "WebSearch";
  meta.delta = 10'000;
  meta.sample_every = 1;
  ChunkedTraceWriter writer(out, meta, records_per_chunk);
  for (std::size_t i = 0; i < n; ++i)
    writer.on_span(make_span(i, static_cast<Time>(i * 100),
                             static_cast<Time>(i * 100 + 50)));
  writer.on_fault({1'000, 2'000, 1, 500'000});
  writer.on_fault({5'000, 6'000, 2, 250'000});
  writer.on_slack({1'500, 3});
  writer.on_slack({1'600, 1});
  writer.on_slack({1'700, 2});
  writer.finish(/*observed=*/n, /*dropped=*/0);
  return out.str();
}

TEST(TraceStream, MagicSniff) {
  const std::string stream = synthetic_stream(4, 4096);
  EXPECT_TRUE(is_chunked_trace(stream));
  EXPECT_TRUE(is_chunked_trace(stream.substr(0, 8)));
  EXPECT_FALSE(is_chunked_trace(stream.substr(0, 7)));  // short head
  EXPECT_FALSE(is_chunked_trace("QOSTRC01"));           // materialized magic
  EXPECT_FALSE(is_chunked_trace(""));
  const std::string materialized = serialize_trace(TraceData{});
  EXPECT_FALSE(is_chunked_trace(materialized));
}

TEST(TraceStream, RoundTripAcrossChunkBoundaries) {
  // records_per_chunk 3 forces several span chunks and a partial final one;
  // every record must come back exactly, in write order.
  for (std::size_t per_chunk : {std::size_t{1}, std::size_t{3},
                                std::size_t{4096}}) {
    SCOPED_TRACE(per_chunk);
    const std::string stream = synthetic_stream(10, per_chunk);
    std::istringstream in(stream);
    StreamTraceMeta meta;
    std::vector<RequestSpan> spans;
    std::vector<FaultSpan> faults;
    std::vector<SlackSample> slack;
    const auto footer = scan_trace_stream(
        in, &meta, [&](const RequestSpan& s) { spans.push_back(s); },
        [&](const FaultSpan& f) { faults.push_back(f); },
        [&](const SlackSample& s) { slack.push_back(s); });
    ASSERT_TRUE(footer.has_value());
    EXPECT_EQ(meta.label, "Miser");
    EXPECT_EQ(meta.trace_name, "WebSearch");
    EXPECT_EQ(meta.delta, 10'000);
    EXPECT_EQ(meta.sample_every, 1u);
    EXPECT_EQ(footer->spans, 10u);
    EXPECT_EQ(footer->faults, 2u);
    EXPECT_EQ(footer->slack, 3u);
    EXPECT_EQ(footer->observed, 10u);
    EXPECT_EQ(footer->dropped, 0u);
    ASSERT_EQ(spans.size(), 10u);
    for (std::size_t i = 0; i < spans.size(); ++i)
      EXPECT_EQ(spans[i], make_span(i, static_cast<Time>(i * 100),
                                    static_cast<Time>(i * 100 + 50)))
          << i;
    ASSERT_EQ(faults.size(), 2u);
    EXPECT_EQ(faults[0], (FaultSpan{1'000, 2'000, 1, 500'000}));
    ASSERT_EQ(slack.size(), 3u);
    EXPECT_EQ(slack[1], (SlackSample{1'600, 1}));
  }
}

TEST(TraceStream, NullCallbacksSkipChunksButKeepFooter) {
  const std::string stream = synthetic_stream(10, 3);
  std::istringstream in(stream);
  std::vector<FaultSpan> faults;
  const auto footer = scan_trace_stream(
      in, nullptr, nullptr, [&](const FaultSpan& f) { faults.push_back(f); },
      nullptr);
  ASSERT_TRUE(footer.has_value());
  EXPECT_EQ(faults.size(), 2u);    // read
  EXPECT_EQ(footer->spans, 10u);   // trusted to the footer, chunks skipped
}

TEST(TraceStream, CorruptionAndTruncationRejected) {
  const std::string stream = synthetic_stream(8, 3);
  {
    std::istringstream in(stream);
    EXPECT_TRUE(analyze_trace_stream(in).has_value());
  }
  for (std::size_t pos : {std::size_t{0}, std::size_t{9}, stream.size() / 2,
                          stream.size() - 2}) {
    std::string corrupt = stream;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x5a);
    std::istringstream in(corrupt);
    EXPECT_FALSE(analyze_trace_stream(in).has_value()) << pos;
  }
  {
    // Truncation mid-chunk and footer loss must both be rejected.
    std::istringstream in(stream.substr(0, stream.size() / 2));
    EXPECT_FALSE(analyze_trace_stream(in).has_value());
  }
  {
    std::istringstream in(std::string("QOSTRC02"));  // magic, nothing else
    EXPECT_FALSE(analyze_trace_stream(in).has_value());
  }
  {
    std::istringstream in(std::string("garbage"));
    EXPECT_FALSE(analyze_trace_stream(in).has_value());
  }
}

TEST(TraceStream, UnfinishedWriterProducesNoFooter) {
  std::ostringstream out;
  {
    // Scope trick: finish() with zero counters still frames a valid stream;
    // the point here is that a reader of the *unfinished* prefix rejects it.
    ChunkedTraceWriter writer(out, StreamTraceMeta{});
    writer.on_span(make_span(0, 0, 50));
    const std::string unfinished = out.str();
    std::istringstream in(unfinished);
    EXPECT_FALSE(analyze_trace_stream(in).has_value());
    writer.finish(1, 0);
  }
  std::istringstream in(out.str());
  EXPECT_TRUE(analyze_trace_stream(in).has_value());
}

// ---------------------------------------------------------------------------
// Streamed analysis == materialized analysis, on a real chaos run.

// One traced Miser run under a brownout: produces misses in several cause
// classes, fault windows, and slack samples.  `sink` non-null streams the
// records instead of materializing them.
TraceData traced_chaos_run(SpanSink* sink) {
  static const Trace trace = preset_trace(Workload::kWebSearch,
                                          30 * kUsPerSec);
  SweepCell cell;
  cell.trace_name = "WebSearch";
  cell.trace = &trace;
  cell.shaping.policy = Policy::kMiser;
  cell.shaping.fraction = 0.90;
  cell.shaping.delta = from_ms(10);
  cell.shaping.capacity_override_iops = 250;
  cell.faults.brownout(5 * kUsPerSec, 15 * kUsPerSec, 0.5);
  cell.fault_intensity = 0.5;

  Tracer tracer;
  if (sink != nullptr) tracer.set_span_sink(sink);
  SweepRunner::evaluate_cell(cell, &tracer);
  return tracer.data();
}

TEST(TraceStream, StreamedAnalysisEqualsMaterialized) {
  // Materialized reference.
  const TraceData data = traced_chaos_run(nullptr);
  ASSERT_FALSE(data.spans.empty());
  const Time delta = from_ms(10);
  const AttributionReport want = attribute_misses(data, delta);
  const SlackReport want_slack = miser_slack_report(data);
  ASSERT_GT(want.misses.size(), 0u);  // the cell is shaped to miss

  // Same run, streamed through the chunked writer.
  std::ostringstream out;
  {
    StreamTraceMeta meta;
    meta.label = "Miser";
    meta.trace_name = "WebSearch";
    meta.delta = delta;
    ChunkedTraceWriter writer(out, meta, /*records_per_chunk=*/64);
    const TraceData streamed = traced_chaos_run(&writer);
    EXPECT_TRUE(streamed.spans.empty());  // nothing materialized
    EXPECT_TRUE(streamed.slack.empty());
    EXPECT_EQ(streamed.dropped, 0u);
    writer.finish(streamed.observed, streamed.dropped);
  }

  std::istringstream in(out.str());
  const auto got = analyze_trace_stream(in);
  ASSERT_TRUE(got.has_value());

  EXPECT_EQ(got->completed, want.completed);
  EXPECT_EQ(got->met, want.met);
  EXPECT_EQ(got->missed, want.misses.size());
  for (int c = 0; c < kMissCauseCount; ++c)
    EXPECT_EQ(got->by_cause[c], want.by_cause[c]) << miss_cause_name(
        static_cast<MissCause>(c));
  EXPECT_EQ(got->slack.samples, want_slack.samples);
  EXPECT_EQ(got->slack.min_slack, want_slack.min_slack);
  EXPECT_EQ(got->slack.violations, want_slack.violations);
  EXPECT_EQ(got->slack.near_violations, want_slack.near_violations);
  EXPECT_EQ(got->faults, data.faults);
  EXPECT_EQ(got->footer.spans, data.spans.size());
  EXPECT_EQ(got->footer.observed, data.observed);
  EXPECT_EQ(got->meta.delta, delta);
}

TEST(TraceStream, AnalysisTextMatchesMaterializedAttributionLines) {
  const TraceData data = traced_chaos_run(nullptr);
  const Time delta = from_ms(10);
  const std::string want = trace_analysis_text(data, delta);

  std::ostringstream out;
  {
    StreamTraceMeta meta;
    meta.label = data.label;
    meta.trace_name = data.trace_name;
    meta.delta = delta;
    ChunkedTraceWriter writer(out, meta);
    const TraceData streamed = traced_chaos_run(&writer);
    writer.finish(streamed.observed, streamed.dropped);
  }
  std::istringstream in(out.str());
  const auto analysis = analyze_trace_stream(in);
  ASSERT_TRUE(analysis.has_value());
  const std::string got = trace_analysis_text_stream(*analysis);

  // Every per-cause attribution line and every slack line of the
  // materialized report must appear verbatim in the streamed one.
  std::istringstream lines(want);
  std::string line;
  int matched = 0;
  while (std::getline(lines, line)) {
    if (line.find("fault_window") == std::string::npos &&
        line.find("admission_burst") == std::string::npos &&
        line.find("q2_starvation") == std::string::npos &&
        line.find("capacity_shortfall") == std::string::npos &&
        line.find("slack") == std::string::npos)
      continue;
    EXPECT_NE(got.find(line), std::string::npos) << "missing line: " << line;
    ++matched;
  }
  EXPECT_GT(matched, 0);
  EXPECT_NE(got.find("timeline"), std::string::npos);  // the "omitted" note
}

TEST(TraceStream, PerfettoStreamExportsTracksAndSlices) {
  std::ostringstream trace_out;
  {
    StreamTraceMeta meta;
    meta.label = "Miser";
    meta.trace_name = "WebSearch";
    meta.delta = from_ms(10);
    ChunkedTraceWriter writer(trace_out, meta);
    const TraceData streamed = traced_chaos_run(&writer);
    writer.finish(streamed.observed, streamed.dropped);
  }
  std::istringstream trace_in(trace_out.str());
  std::ostringstream json_out;
  ASSERT_TRUE(perfetto_trace_json_stream(trace_in, json_out));
  const std::string json = json_out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("Miser queues"), std::string::npos);
  EXPECT_NE(json.find("Miser servers"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // service slice
  EXPECT_NE(json.find("Miser faults"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');

  std::istringstream garbage("not a trace");
  std::ostringstream sink;
  EXPECT_FALSE(perfetto_trace_json_stream(garbage, sink));
}

TEST(TraceStream, TracerStreamingModeKeepsCountersAndFaultDedup) {
  std::ostringstream out;
  StreamTraceMeta meta;
  ChunkedTraceWriter writer(out, meta);
  Tracer tracer;
  tracer.set_span_sink(&writer);
  // Same fault window announced twice (two servers): streamed once.
  for (int rep = 0; rep < 2; ++rep)
    tracer.on_event({.time = 50,
                     .seq = 0,
                     .a = 1,
                     .b = 500'000,
                     .c = 90,
                     .kind = EventKind::kFaultBegin});
  tracer.on_event({.time = 100, .seq = 1, .kind = EventKind::kArrival});
  tracer.on_event({.time = 110,
                   .seq = 1,
                   .kind = EventKind::kDispatch,
                   .klass = ServiceClass::kPrimary});
  tracer.on_event({.time = 120,
                   .seq = 1,
                   .kind = EventKind::kCompletion,
                   .klass = ServiceClass::kPrimary});
  writer.finish(tracer.observed(), tracer.dropped());
  EXPECT_EQ(writer.footer().spans, 1u);
  EXPECT_EQ(writer.footer().faults, 1u);  // deduped before the sink
  EXPECT_EQ(tracer.observed(), 1u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.data().spans.empty());  // streaming mode retains nothing
}

}  // namespace
}  // namespace qos
