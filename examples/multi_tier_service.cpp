// Multi-tier service: k-class decomposition and tenant admission control.
//
//   $ ./multi_tier_service
//
// The paper notes the stream can be decomposed into "two (or more in
// general) classes".  This example runs a three-tier storage service on one
// bursty client — gold (10 ms), silver (50 ms), bronze (best effort) — and
// then uses the admission controller to show how many such tenants one
// server carries under graduated vs worst-case reservations.
#include <cstdio>

#include "analysis/response_stats.h"
#include "core/admission.h"
#include "core/capacity.h"
#include "core/multi_class.h"
#include "sim/simulator.h"
#include "trace/presets.h"
#include "util/table.h"

using namespace qos;

int main() {
  const Trace trace = preset_trace(Workload::kOpenMail, 600 * kUsPerSec);
  std::printf("client: %zu requests, mean %.0f IOPS, peak(100ms) %.0f\n\n",
              trace.size(), trace.mean_rate_iops(),
              trace.peak_rate_iops(100'000));

  // --- Three-tier decomposition ---
  // Gold gets a tight profile; silver catches the first overflow; the rest
  // is bronze/best-effort.
  const double gold_c = min_capacity(trace, 0.80, from_ms(10)).cmin_iops;
  const double silver_c = 0.5 * gold_c;
  std::vector<ClassSpec> tiers = {{gold_c, from_ms(10)},
                                  {silver_c, from_ms(50)}};

  MultiClassScheduler scheduler(tiers);
  ConstantRateServer server(gold_c + silver_c +
                            overflow_headroom_iops(from_ms(10)));
  SimResult sim = simulate(trace, scheduler, server);

  AsciiTable table;
  table.add("tier", "requests", "share", "within bound", "mean (ms)");
  const char* names[] = {"gold (10 ms)", "silver (50 ms)", "bronze (BE)"};
  const Time bounds[] = {from_ms(10), from_ms(50), kTimeMax};
  std::vector<std::vector<Time>> responses(3);
  for (const auto& c : sim.completions)
    responses[scheduler.tier_of(c.seq)].push_back(c.response_time());
  for (int tier = 0; tier < 3; ++tier) {
    const auto& rs = responses[static_cast<std::size_t>(tier)];
    if (rs.empty()) {
      table.add(names[tier], 0, "-", "-", "-");
      continue;
    }
    std::size_t within = 0;
    double sum = 0;
    for (Time r : rs) {
      if (r <= bounds[tier]) ++within;
      sum += static_cast<double>(r);
    }
    table.add(names[tier], static_cast<unsigned long long>(rs.size()),
              format_double(100.0 * static_cast<double>(rs.size()) /
                                static_cast<double>(sim.completions.size()),
                            1) +
                  "%",
              format_double(100.0 * static_cast<double>(within) /
                                static_cast<double>(rs.size()),
                            1) +
                  "%",
              format_double(sum / static_cast<double>(rs.size()) / 1000.0,
                            1));
  }
  std::printf("three-tier decomposition (server %.0f IOPS):\n%s\n",
              gold_c + silver_c + overflow_headroom_iops(from_ms(10)),
              table.to_string().c_str());

  // --- Admission control across tenants ---
  const Trace ws = preset_trace(Workload::kWebSearch, 600 * kUsPerSec);
  const Trace ft = preset_trace(Workload::kFinTrans, 600 * kUsPerSec);
  std::vector<TenantRequest> tenants = {
      {"mail-1", &trace, SlaTier{0.90, from_ms(10)}},
      {"search-1", &ws, SlaTier{0.90, from_ms(10)}},
      {"oltp-1", &ft, SlaTier{0.95, from_ms(20)}},
      {"search-2", &ws, SlaTier{0.90, from_ms(20)}},
      {"oltp-2", &ft, SlaTier{0.90, from_ms(50)}},
  };
  const double server_capacity = 2'500;
  AdmissionReport report = admit_tenants(tenants, server_capacity);
  AsciiTable adm;
  adm.add("tenant", "admitted", "reserved IOPS");
  for (const auto& d : report.decisions)
    adm.add(d.name, d.admitted ? "yes" : "no",
            format_double(d.reserved_iops, 0));
  std::printf("admission onto a %.0f IOPS server:\n%s", server_capacity,
              adm.to_string().c_str());
  std::printf(
      "\nadmitted %d graduated tenants (utilization %.0f%%); worst-case "
      "reservations would admit %d\n",
      report.admitted_count, 100 * report.utilization(),
      report.worst_case_admitted_count);
  return 0;
}
