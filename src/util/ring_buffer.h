// Pooled FIFO ring buffer — the hot-path replacement for std::deque.
//
// The schedulers' queues are strict FIFOs (push_back / pop_front) whose
// depth oscillates around a workload-dependent steady state.  std::deque
// allocates and frees fixed-size chunks as the queue breathes; RingBuffer
// instead keeps one power-of-two backing array that only ever grows, so
// after warm-up every push and pop is a couple of stores with no allocator
// traffic and perfect locality.  MonotoneMinQueue (util/monotone_min.h)
// additionally uses pop_back to maintain its monotone window.
//
// Indexing is FIFO-relative: operator[](0) is the front (oldest) element.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/check.h"

namespace qos {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;
  explicit RingBuffer(std::size_t initial_capacity) {
    reserve(initial_capacity);
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return buf_.size(); }

  T& front() {
    QOS_EXPECTS(count_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    QOS_EXPECTS(count_ > 0);
    return buf_[head_];
  }
  T& back() {
    QOS_EXPECTS(count_ > 0);
    return buf_[(head_ + count_ - 1) & mask()];
  }
  const T& back() const {
    QOS_EXPECTS(count_ > 0);
    return buf_[(head_ + count_ - 1) & mask()];
  }

  /// i-th element from the front (0 = oldest).
  const T& operator[](std::size_t i) const {
    QOS_EXPECTS(i < count_);
    return buf_[(head_ + i) & mask()];
  }

  void push_back(T value) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask()] = std::move(value);
    ++count_;
  }

  void pop_front() {
    QOS_EXPECTS(count_ > 0);
    head_ = (head_ + 1) & mask();
    --count_;
  }

  void pop_back() {
    QOS_EXPECTS(count_ > 0);
    --count_;
  }

  /// Drop all elements; the backing storage (the pool) is retained.
  void clear() {
    head_ = 0;
    count_ = 0;
  }

  /// Ensure capacity for at least `n` elements without further growth.
  void reserve(std::size_t n) {
    if (n > buf_.size()) grow_to(ceil_pow2(n));
  }

 private:
  std::size_t mask() const { return buf_.size() - 1; }

  /// Largest power-of-two capacity a size_t can express: the doubling loop
  /// below would otherwise shift into zero (and spin) for larger requests.
  static constexpr std::size_t kMaxCapacity =
      static_cast<std::size_t>(1) << (8 * sizeof(std::size_t) - 1);

  static std::size_t ceil_pow2(std::size_t n) {
    QOS_EXPECTS(n <= kMaxCapacity);
    std::size_t p = kMinCapacity;
    while (p < n) p <<= 1;
    return p;
  }

  void grow() { grow_to(buf_.empty() ? kMinCapacity : buf_.size() * 2); }

  void grow_to(std::size_t new_capacity) {
    std::vector<T> next(new_capacity);
    for (std::size_t i = 0; i < count_; ++i)
      next[i] = std::move(buf_[(head_ + i) & mask()]);
    buf_ = std::move(next);
    head_ = 0;
  }

  static constexpr std::size_t kMinCapacity = 8;

  std::vector<T> buf_;     ///< power-of-two sized (or empty before first push)
  std::size_t head_ = 0;   ///< index of the front element
  std::size_t count_ = 0;  ///< live elements
};

}  // namespace qos
