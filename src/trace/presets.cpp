#include "trace/presets.h"

#include "util/check.h"

namespace qos {

std::string workload_name(Workload w) {
  switch (w) {
    case Workload::kWebSearch: return "WS";
    case Workload::kFinTrans: return "FT";
    case Workload::kOpenMail: return "OM";
  }
  QOS_CHECK(false);
}

std::string workload_long_name(Workload w) {
  switch (w) {
    case Workload::kWebSearch: return "WebSearch";
    case Workload::kFinTrans: return "FinTrans";
    case Workload::kOpenMail: return "OpenMail";
  }
  QOS_CHECK(false);
}

std::uint64_t preset_seed(Workload w) {
  switch (w) {
    case Workload::kWebSearch: return 0x5eb5ea7c11ULL;
    case Workload::kFinTrans: return 0xf17a7c1a15ULL;
    case Workload::kOpenMail: return 0x09e17a11edULL;
  }
  QOS_CHECK(false);
}

WorkloadSpec preset_spec(Workload w) {
  // Each preset is a hub-structured MMPP: a "normal" hub regime that rarely
  // excurses into higher-rate states and always returns.  The hub->spike
  // probabilities control the *request share* of each regime, which in turn
  // pins where the paper's capacity knee sits: upper regimes carry the few
  // percent of requests whose exemption buys the big capacity savings, and
  // a sparse batch overlay of dense clusters sets Cmin(100%).
  WorkloadSpec spec;
  switch (w) {
    case Workload::kWebSearch:
      // ~320 IOPS mean; mild regime spread, small rare clusters.  Dwells are
      // tens of seconds so the regime envelope stays aligned under the
      // paper's 1 s / 100 s multiplexing shifts (Figure 7) — real traces'
      // busy regimes are minutes long.
      spec.states = {{260, 80.0}, {350, 100.0}, {520, 40.0}, {700, 25.0},
                     {950, 15.0}};
      spec.transition = {
          // from 0 (low): back to hub
          0, 1, 0, 0, 0,
          // from 1 (hub): mostly low/hub traffic, rare excursions
          0.861, 0, 0.12, 0.015, 0.004,
          // spikes return to the hub
          0, 1, 0, 0, 0,
          0, 1, 0, 0, 0,
          0, 1, 0, 0, 0};
      spec.batches = {.batches_per_sec = 0.01,
                      .mean_size = 5,
                      .spread_us = 2'000,
                      .giant_prob = 0.1,
                      .giant_factor = 2.5,
                      .max_size = 12};
      spec.addresses = {.lba_max = 1ULL << 27,
                        .sequential_prob = 0.05,
                        .size_blocks = 16,
                        .write_fraction = 0.01};
      break;
    case Workload::kFinTrans:
      // ~105 IOPS mean OLTP with the paper's sharpest knee: tiny request
      // share in the spikes, intense rare clusters.
      spec.states = {{70, 80.0}, {120, 100.0}, {210, 30.0}, {380, 15.0},
                     {520, 10.0}};
      spec.transition = {
          0, 1, 0, 0, 0,
          0.8, 0, 0.17, 0.025, 0.005,
          0, 1, 0, 0, 0,
          0, 1, 0, 0, 0,
          0, 1, 0, 0, 0};
      spec.batches = {.batches_per_sec = 0.008,
                      .mean_size = 4,
                      .spread_us = 2'000,
                      .giant_prob = 0.1,
                      .giant_factor = 3.0,
                      .max_size = 14};
      spec.addresses = {.lba_max = 1ULL << 25,
                        .sequential_prob = 0.2,
                        .size_blocks = 8,
                        .write_fraction = 0.77};
      break;
    case Workload::kOpenMail:
      // ~570 IOPS mean with multi-second plateaus up to ~4400 IOPS (the
      // paper's Figure 2) and very rare ~80-request clusters that set the
      // worst case near 10x the 90% capacity.
      spec.states = {{150, 100.0}, {560, 120.0}, {850, 50.0}, {1600, 40.0},
                     {2800, 30.0}, {4400, 35.0}};
      spec.transition = {
          0, 1, 0, 0, 0, 0,
          0.30, 0, 0.52, 0.15, 0.02, 0.01,
          0, 1, 0, 0, 0, 0,
          0, 1, 0, 0, 0, 0,
          0, 1, 0, 0, 0, 0,
          0, 1, 0, 0, 0, 0};
      spec.batches = {.batches_per_sec = 0.01,
                      .mean_size = 25,
                      .spread_us = 4'000,
                      .giant_prob = 0.2,
                      .giant_factor = 3.5,
                      .max_size = 88};
      spec.addresses = {.lba_max = 1ULL << 28,
                        .sequential_prob = 0.35,
                        .size_blocks = 8,
                        .write_fraction = 0.55};
      break;
  }
  return spec;
}

Trace preset_trace(Workload w, Time duration, std::uint64_t seed) {
  if (duration <= 0) duration = kPresetDuration;
  if (seed == 0) seed = preset_seed(w);
  return generate_workload(preset_spec(w), duration, seed);
}

}  // namespace qos
