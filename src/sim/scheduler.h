// Scheduler interface driven by the event simulator.
//
// A Scheduler owns the queueing policy: it classifies arrivals (e.g. RTT
// decomposition), holds the queues, and picks the next request when a server
// becomes free.  The simulator guarantees:
//   * on_arrival is called in non-decreasing arrival order;
//   * next_for(s, now) is called only when server s is idle;
//   * on_complete is called when a dispatched request finishes service.
// Completions at time t are processed before arrivals at the same t (service
// completed "by" t frees its queue slot for a simultaneous arrival).
#pragma once

#include <optional>

#include "sim/completion.h"
#include "trace/request.h"
#include "util/time.h"

namespace qos {

class EventSink;
class MetricRegistry;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Attach observability before the run.  Either pointer may be null; a
  /// scheduler must keep its hot path to a single predictable branch per
  /// hook when nothing is attached.  Default: not instrumented.
  virtual void attach_observability(EventSink* sink,
                                    MetricRegistry* registry) {
    (void)sink;
    (void)registry;
  }

  /// Number of physical servers this policy drives (1 for everything except
  /// Split, which uses a dedicated overflow server).
  virtual int server_count() const = 0;

  /// True when one arrival can produce multiple dispatches (e.g. RAID
  /// mirror/parity fan-out).  Relaxes the simulator's one-completion-per-
  /// request invariant; SimResult::by_seq() is unavailable for such runs.
  virtual bool fans_out() const { return false; }

  /// True when an arrival at `now` would classify into the primary class
  /// (Q1).  Must agree with what on_arrival would decide at the same
  /// instant; the online admission layer uses it to shed best-effort work
  /// *before* it enters the queues (a bounded Q2 is an online-only policy —
  /// the simulator never drops).  Default: everything is primary, matching
  /// the non-decomposing schedulers.
  virtual bool arrival_joins_primary(Time now) {
    (void)now;
    return true;
  }

  virtual void on_arrival(const Request& r, Time now) = 0;

  struct Dispatch {
    Request request;
    ServiceClass klass = ServiceClass::kPrimary;
  };

  /// Pick the next request for idle server `server`, or nullopt to leave it
  /// idle.  Must be work-conserving with respect to the queues the server is
  /// allowed to drain (tests assert this).
  virtual std::optional<Dispatch> next_for(int server, Time now) = 0;

  /// A dispatched request finished service at `now`.
  virtual void on_complete(const Request& r, ServiceClass klass, int server,
                           Time now) {
    (void)r;
    (void)klass;
    (void)server;
    (void)now;
  }
};

}  // namespace qos
