#include "curves/analysis.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace qos {

std::vector<BusyPeriod> busy_periods(const Trace& trace,
                                     double capacity_iops) {
  QOS_EXPECTS(capacity_iops > 0);
  std::vector<BusyPeriod> out;
  if (trace.empty()) return out;

  double backlog = 0;  // pending requests (fluid)
  Time prev = trace[0].arrival;
  BusyPeriod cur{trace[0].arrival, 0, 0, 0};
  bool open = false;

  for (const auto& r : trace) {
    const double drained = capacity_iops * to_sec(r.arrival - prev);
    if (open && drained >= backlog) {
      // The period drained before this arrival.
      cur.end = prev + from_sec(backlog / capacity_iops);
      out.push_back(cur);
      open = false;
      backlog = 0;
    } else if (open) {
      backlog -= drained;
    }
    if (!open) {
      cur = BusyPeriod{r.arrival, 0, static_cast<std::int64_t>(r.seq),
                       static_cast<std::int64_t>(r.seq)};
      open = true;
      backlog = 0;
    }
    backlog += 1.0;
    cur.last_seq = static_cast<std::int64_t>(r.seq);
    prev = r.arrival;
  }
  if (open) {
    cur.end = prev + from_sec(backlog / capacity_iops);
    out.push_back(cur);
  }
  return out;
}

double max_backlog(const Trace& trace, double capacity_iops) {
  QOS_EXPECTS(capacity_iops > 0);
  double backlog = 0;
  double best = 0;
  Time prev = 0;
  for (const auto& r : trace) {
    backlog = std::max(0.0, backlog - capacity_iops * to_sec(r.arrival - prev));
    backlog += 1.0;
    best = std::max(best, backlog);
    prev = r.arrival;
  }
  return best;
}

std::int64_t lemma1_lower_bound(const ArrivalCurve& curve,
                                double capacity_iops, Time delta,
                                Time origin) {
  QOS_EXPECTS(capacity_iops > 0 && delta >= 0);
  std::int64_t bound = 0;
  for (const auto& step : curve.steps()) {
    const double service =
        capacity_iops * to_sec(step.at + delta - origin);
    const double excess = static_cast<double>(step.cumulative) - service;
    if (excess > 0)
      bound = std::max(bound, static_cast<std::int64_t>(std::ceil(excess)));
  }
  return bound;
}

double scl_at(double capacity_iops, Time delta, Time t, Time origin) {
  QOS_EXPECTS(capacity_iops > 0 && delta >= 0);
  return capacity_iops * to_sec(t - origin + delta);
}

std::vector<Time> scl_violations(const ArrivalCurve& curve,
                                 double capacity_iops, Time delta,
                                 Time origin) {
  std::vector<Time> out;
  for (const auto& step : curve.steps()) {
    if (static_cast<double>(step.cumulative) >
        scl_at(capacity_iops, delta, step.at, origin))
      out.push_back(step.at);
  }
  return out;
}

std::int64_t mandatory_miss_lower_bound(const Trace& trace,
                                        double capacity_iops, Time delta) {
  std::int64_t total = 0;
  for (const auto& period : busy_periods(trace, capacity_iops)) {
    // Build the period's own arrival curve re-based to its start.
    std::vector<Request> part;
    for (std::int64_t s = period.first_seq; s <= period.last_seq; ++s) {
      Request r = trace[static_cast<std::size_t>(s)];
      r.arrival -= period.start;
      part.push_back(r);
    }
    ArrivalCurve curve{Trace(std::move(part))};
    total += lemma1_lower_bound(curve, capacity_iops, delta, 0);
  }
  return total;
}

}  // namespace qos
