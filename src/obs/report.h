// ShapingReport — the pipeline's internal dynamics, summarised.
//
// Everything the paper's figures reason about in one value object: per-class
// response-time distributions (p50/p90/p99/p99.9/max via LatencyHistogram),
// time-weighted Q1/Q2 occupancy, RTT admit/reject totals, and the
// deadline-miss *run-length* distribution (how many consecutive requests, in
// arrival order, missed delta — the "burst of misses" the paper's shaping is
// designed to prevent).  Built from a SimResult plus, when one was attached,
// the MetricRegistry the schedulers populated during the run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace qos {

struct ClassReport {
  std::uint64_t count = 0;
  double mean_us = 0;
  Time p50 = 0, p90 = 0, p99 = 0, p999 = 0, max = 0;
  double fraction_within_delta = 1.0;
};

struct OccupancyReport {
  double mean = 0;       ///< time-weighted mean queue depth
  std::int64_t max = 0;  ///< peak queue depth
  bool tracked = false;  ///< false when no registry was attached
};

struct ShapingReport {
  Time delta = 0;  ///< deadline the miss statistics are measured against

  ClassReport all, primary, overflow;
  OccupancyReport q1_occupancy, q2_occupancy;

  /// RTT decisions (from the registry when attached, else from completion
  /// classes — the two must agree, which tests assert).
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;

  /// Tracing accounting, filled by shape_and_run when a Tracer was attached
  /// (traced == true).  trace_dropped counts completed spans the Tracer's
  /// ring buffer evicted — silent span loss unless surfaced here: any
  /// analysis over a trace with trace_dropped > 0 is looking at a window,
  /// not the run.
  bool traced = false;
  std::uint64_t trace_observed = 0;
  std::uint64_t trace_dropped = 0;

  /// miss_run_lengths[k] = number of maximal runs of exactly k+1 consecutive
  /// requests (arrival order) whose response time exceeded delta.
  std::vector<std::uint64_t> miss_run_lengths;
  std::uint64_t deadline_misses = 0;
  std::uint64_t max_miss_run() const {
    return static_cast<std::uint64_t>(miss_run_lengths.size());
  }

  std::string to_string() const;  ///< human-readable multi-line summary
  std::string to_csv() const;     ///< one "section,key,value" row per stat
  std::string to_json() const;
};

/// Summarise `sim` against deadline `delta`.  When `registry` carries the
/// facade's standard metrics ("rtt.admitted", "rtt.rejected",
/// "q1.occupancy", "q2.occupancy") they are folded in; otherwise admit /
/// reject totals fall back to completion classes and occupancy is marked
/// untracked.
ShapingReport build_shaping_report(const SimResult& sim, Time delta,
                                   const MetricRegistry* registry = nullptr);

}  // namespace qos
