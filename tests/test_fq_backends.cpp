// The FairQueue recombination must behave across every fair-scheduler
// backend: complete service, validity of the schedule, Q1 reservation
// respected (for the tag-based schedulers) and work conservation.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "core/fairqueue.h"
#include "fq/drr.h"
#include "fq/pclock.h"
#include "fq/sfq.h"
#include "fq/wf2q.h"
#include "fq/wfq.h"
#include "sim/simulator.h"
#include "trace/generator.h"

namespace qos {
namespace {

constexpr double kCmin = 400;
constexpr Time kDelta = 10'000;
constexpr double kHeadroom = 100;

std::unique_ptr<FairScheduler> make_backend(const std::string& kind) {
  const std::vector<double> weights = {kCmin, kHeadroom};
  if (kind == "SFQ") return std::make_unique<SfqScheduler>(weights);
  if (kind == "WFQ") return std::make_unique<WfqScheduler>(weights);
  if (kind == "WF2Q+") return std::make_unique<Wf2qPlusScheduler>(weights);
  if (kind == "DRR")
    return std::make_unique<DrrScheduler>(weights, 1.0 / kHeadroom);
  if (kind == "pClock") {
    std::vector<PClockSla> slas = {
        PClockSla{.sigma = kCmin * to_sec(kDelta),
                  .rho = kCmin,
                  .delta = kDelta},
        PClockSla{.sigma = 1, .rho = kHeadroom, .delta = 10 * kDelta}};
    return std::make_unique<PClockScheduler>(slas);
  }
  ADD_FAILURE() << "unknown backend " << kind;
  return nullptr;
}

class FqBackend : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllBackends, FqBackend,
                         ::testing::Values("SFQ", "WFQ", "WF2Q+", "DRR",
                                           "pClock"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

TEST_P(FqBackend, CompletesEverythingOnBurstyLoad) {
  WorkloadSpec spec;
  spec.states = {{300, 1.0}, {900, 0.3}};
  Trace t = generate_workload(spec, 30 * kUsPerSec, 1001);
  FairQueueScheduler fq(kCmin, kDelta, kHeadroom, make_backend(GetParam()));
  ConstantRateServer server(kCmin + kHeadroom);
  SimResult r = simulate(t, fq, server);
  EXPECT_EQ(r.completions.size(), t.size());
}

TEST_P(FqBackend, ScheduleIsValid) {
  Trace t = generate_poisson(600, 20 * kUsPerSec, 1003);
  FairQueueScheduler fq(kCmin, kDelta, kHeadroom, make_backend(GetParam()));
  ConstantRateServer server(kCmin + kHeadroom);
  SimResult r = simulate(t, fq, server);
  Time prev_finish = 0;
  for (const auto& c : r.completions) {
    EXPECT_GE(c.start, c.arrival);
    EXPECT_GE(c.start, prev_finish);
    prev_finish = c.finish;
  }
}

TEST_P(FqBackend, WorkConservingOnBurst) {
  std::vector<Request> reqs;
  for (int i = 0; i < 250; ++i) reqs.push_back(Request{.arrival = 0});
  Trace t(std::move(reqs));
  FairQueueScheduler fq(kCmin, kDelta, kHeadroom, make_backend(GetParam()));
  ConstantRateServer server(500);
  SimResult r = simulate(t, fq, server);
  EXPECT_EQ(r.makespan(), 500'000);  // 250 requests at 500 IOPS
}

TEST_P(FqBackend, PrimaryClassProtected) {
  // Overloaded: Q2 grows without bound, Q1 must stay near its deadline.
  // DRR's round granularity and pClock's tag coupling admit a bit more
  // slop than the per-request tag schedulers.
  Trace t = generate_poisson(700, 20 * kUsPerSec, 1005);
  FairQueueScheduler fq(kCmin, kDelta, kHeadroom, make_backend(GetParam()));
  ConstantRateServer server(kCmin + kHeadroom);
  SimResult r = simulate(t, fq, server);
  ResponseStats q1(r.completions, ServiceClass::kPrimary);
  ASSERT_FALSE(q1.empty());
  EXPECT_GT(q1.fraction_within(2 * kDelta), 0.98) << GetParam();
}

}  // namespace
}  // namespace qos
