// Start-time Fair Queueing (SFQ).
//
// Each item gets a start tag S = max(v, F_prev) and finish tag
// F = S + cost/weight, where v is the system virtual time — the start tag of
// the item most recently dispatched.  Dispatch order is by smallest head
// start tag (flow index breaks ties).  SFQ provides proportional sharing
// with bounded unfairness and is the simplest member of the family the paper
// cites for the FairQueue recombination.
#pragma once

#include <deque>
#include <vector>

#include "fq/fair_scheduler.h"
#include "util/check.h"

namespace qos {

class SfqScheduler final : public FairScheduler {
 public:
  explicit SfqScheduler(std::vector<double> weights);

  int flow_count() const override {
    return static_cast<int>(flows_.size());
  }
  void enqueue(int flow, std::uint64_t handle, double cost, Time now) override;
  std::optional<FqDispatch> dequeue(Time now) override;
  bool empty() const override;
  std::size_t backlog(int flow) const override;

  double virtual_time() const { return v_; }

 private:
  struct Item {
    std::uint64_t handle = 0;
    double start = 0;
    double finish = 0;
  };
  struct Flow {
    double weight = 1;
    double last_finish = 0;
    std::deque<Item> queue;
  };

  std::vector<Flow> flows_;
  double v_ = 0;
};

}  // namespace qos
