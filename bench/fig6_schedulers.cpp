// Reproduces Figure 6: performance comparison of FCFS, Split, FairQueue and
// Miser on the WebSearch workload at equal total capacity Cmin + dC.
//
//   (a) histogram buckets (<=50 / <=100 / <=500 / <=1000 / >1000 ms) for the
//       target (90%, 50 ms);
//   (b) the same for (95%, 50 ms);
//   (c) overflow-class (Q2) average and maximum response time of Miser
//       normalized to FairQueue (paper: ~0.85-0.90).
#include <cstdio>

#include "analysis/response_stats.h"
#include "core/capacity.h"
#include "core/shaper.h"
#include "trace/presets.h"
#include "util/table.h"

namespace {

using namespace qos;

constexpr Policy kPolicies[] = {Policy::kFcfs, Policy::kSplit,
                                Policy::kFairQueue, Policy::kMiser};

void run_panel(const Trace& trace, double fraction, Time delta) {
  const double cmin = min_capacity(trace, fraction, delta).cmin_iops;
  const double dc = overflow_headroom_iops(delta);
  std::printf("-- Target: (%.0f%%, %.0f ms), capacity %.0f+%.0f IOPS --\n",
              100 * fraction, to_ms(delta), cmin, dc);
  AsciiTable table;
  table.add("Scheduler", "<=50ms", "<=100ms", "<=500ms", "<=1000ms",
            ">1000ms", "max (ms)");
  for (Policy p : kPolicies) {
    ShapingConfig config;
    config.policy = p;
    config.fraction = fraction;
    config.delta = delta;
    config.capacity_override_iops = cmin;
    ShapingOutcome out = shape_and_run(trace, config);
    ResponseStats stats(out.sim.completions);
    const auto b = stats.paper_buckets();
    table.add(policy_name(p), format_double(100 * b.le_50, 1) + "%",
              format_double(100 * b.le_100, 1) + "%",
              format_double(100 * b.le_500, 1) + "%",
              format_double(100 * b.le_1000, 1) + "%",
              format_double(100 * b.gt_1000, 1) + "%",
              format_double(to_ms(stats.max()), 0));
  }
  std::printf("%s\n", table.to_string().c_str());
}

void run_q2_comparison(const Trace& trace, Time delta) {
  std::printf(
      "-- Figure 6(c): Q2 performance, Miser normalized to FairQueue --\n");
  AsciiTable table;
  table.add("Target %", "FQ avg (ms)", "Miser avg (ms)", "avg ratio",
            "FQ max (ms)", "Miser max (ms)", "max ratio");
  for (double fraction : {0.90, 0.95}) {
    const double cmin = min_capacity(trace, fraction, delta).cmin_iops;
    ShapingConfig config;
    config.fraction = fraction;
    config.delta = delta;
    config.capacity_override_iops = cmin;

    // Per-class stats come from the observability report; a fresh registry
    // per run keeps the counters per-policy.
    auto overflow_report = [&](Policy p) {
      MetricRegistry registry;
      config.policy = p;
      config.registry = &registry;
      ClassReport r = shape_and_run(trace, config).report.overflow;
      config.registry = nullptr;
      return r;
    };
    const ClassReport fq = overflow_report(Policy::kFairQueue);
    const ClassReport miser = overflow_report(Policy::kMiser);
    if (fq.count == 0 || miser.count == 0) {
      std::printf("  (no overflow requests at fraction %.2f)\n", fraction);
      continue;
    }
    table.add(format_double(100 * fraction, 0),
              format_double(fq.mean_us / 1e3, 1),
              format_double(miser.mean_us / 1e3, 1),
              format_double(miser.mean_us / fq.mean_us, 2),
              format_double(to_ms(fq.max), 0),
              format_double(to_ms(miser.max), 0),
              format_double(static_cast<double>(miser.max) /
                                static_cast<double>(fq.max),
                            2));
  }
  std::printf("%s", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf(
      "Figure 6: FCFS vs Split vs FairQueue vs Miser (WebSearch)\n\n");
  const Trace trace = preset_trace(Workload::kWebSearch);
  const Time delta = from_ms(50);
  run_panel(trace, 0.90, delta);
  run_panel(trace, 0.95, delta);
  run_q2_comparison(trace, delta);
  return 0;
}
