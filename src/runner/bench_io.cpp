#include "runner/bench_io.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace qos {

std::unique_ptr<ResultCache> BenchOptions::make_cache() const {
  if (!use_cache) return nullptr;
  ResultCache::Config config;
  config.disk_dir = cache_dir;
  return std::make_unique<ResultCache>(config);
}

BenchOptions parse_bench_args(int argc, char** argv,
                              const std::string& bench_name) {
  BenchOptions options;
  options.bench_name = bench_name;
  auto usage = [&](const char* bad) {
    std::fprintf(stderr,
                 "%s: unknown or malformed argument '%s'\n"
                 "usage: %s [--threads N] [--no-cache] [--cache-dir DIR] "
                 "[--json PATH]\n",
                 bench_name.c_str(), bad, bench_name.c_str());
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(arg);
      return argv[++i];
    };
    if (std::strcmp(arg, "--threads") == 0) {
      char* end = nullptr;
      const char* v = value();
      options.threads = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0' || options.threads < 0) usage(v);
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      options.use_cache = false;
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      options.cache_dir = value();
    } else if (std::strcmp(arg, "--json") == 0) {
      options.json_path = value();
    } else {
      usage(arg);
    }
  }
  if (options.json_path.empty())
    options.json_path = "BENCH_" + bench_name + ".json";
  return options;
}

std::string bench_timing_json(const BenchTiming& timing) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"bench\": \"%s\",\n"
                "  \"wall_seconds\": %.6f,\n"
                "  \"cells\": %llu,\n"
                "  \"cache_hits\": %llu,\n"
                "  \"rows\": %llu,\n"
                "  \"threads\": %d\n"
                "}\n",
                timing.name.c_str(), timing.wall_seconds,
                static_cast<unsigned long long>(timing.cells),
                static_cast<unsigned long long>(timing.cache_hits),
                static_cast<unsigned long long>(timing.rows), timing.threads);
  return buf;
}

void write_bench_json(const BenchOptions& options, const BenchTiming& timing) {
  std::ofstream out(options.json_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "[%s] cannot write %s\n", options.bench_name.c_str(),
                 options.json_path.c_str());
    return;
  }
  out << bench_timing_json(timing);
  std::fprintf(stderr, "[%s] timing written to %s\n",
               options.bench_name.c_str(), options.json_path.c_str());
}

void write_bench_json(const BenchOptions& options, const SweepRunner& runner,
                      std::uint64_t rows, double wall_seconds) {
  BenchTiming timing;
  timing.name = options.bench_name;
  timing.wall_seconds = wall_seconds;
  timing.cells = runner.stats().cells;
  timing.cache_hits = runner.stats().cache_hits;
  timing.rows = rows;
  timing.threads = runner.pool().thread_count();
  write_bench_json(options, timing);
}

double bench_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace qos
