file(REMOVE_RECURSE
  "CMakeFiles/test_response_stats.dir/test_response_stats.cpp.o"
  "CMakeFiles/test_response_stats.dir/test_response_stats.cpp.o.d"
  "test_response_stats"
  "test_response_stats.pdb"
  "test_response_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_response_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
