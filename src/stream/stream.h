// Pull-based request streams — the streaming half of src/stream.
//
// A RequestStream is the lazy counterpart of a Trace: it yields the same
// request sequence one record at a time, so a run never holds more than a
// bounded window of requests in memory.  The stream contract mirrors the
// Trace invariants exactly (same order, same numbering, same per-record
// checks), which is what lets stream::simulate_stream feed SimEngine with
// the identical call sequence simulate() makes from a materialized Trace —
// and therefore produce bit-identical results (tests/test_stream.cpp).
//
// Stream contract (every implementation):
//   * requests are yielded in non-decreasing arrival order;
//   * seq is dense from 0 in yield order — the numbering Trace's constructor
//     would assign after its stable sort;
//   * every yielded record satisfies request_record_ok();
//   * next() returns nullopt forever once exhausted.
//
// Sources live in gen_stream.h (synthetic generators) and spc_stream.h (SPC
// trace files); this header holds the abstraction plus the composable
// adapters that need nothing beyond a Trace and the hash library.
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "runner/hash.h"
#include "trace/trace.h"
#include "util/check.h"

namespace qos::stream {

class RequestStream {
 public:
  virtual ~RequestStream() = default;

  /// Next request in arrival order, or nullopt forever once exhausted.
  virtual std::optional<Request> next() = 0;
};

/// Stream over an existing Trace — the bridge from materialized to streamed
/// code paths.  The borrowed form keeps a pointer (the trace must outlive
/// the stream); the owning form is for sources that must materialize
/// internally (e.g. the b-model generator, whose cascade is inherently
/// offline).
class TraceStream final : public RequestStream {
 public:
  explicit TraceStream(const Trace& trace) : trace_(&trace) {}
  explicit TraceStream(Trace&& trace)
      : owned_(std::move(trace)), trace_(&owned_) {}

  std::optional<Request> next() override {
    if (i_ >= trace_->size()) return std::nullopt;
    return (*trace_)[i_++];
  }

 private:
  Trace owned_;
  const Trace* trace_;
  std::size_t i_ = 0;
};

/// K-way merge with Trace::merge semantics: client ids are remapped to the
/// source index and seq is renumbered densely in merged order.  Equal-time
/// ties resolve to the lowest source index, then to within-source order —
/// exactly the order Trace::merge's concatenate-then-stable-sort produces —
/// so merging streams and streaming a merged Trace are interchangeable.
class MergedStream final : public RequestStream {
 public:
  explicit MergedStream(std::vector<std::unique_ptr<RequestStream>> sources)
      : sources_(std::move(sources)), fronts_(sources_.size()) {
    for (std::size_t c = 0; c < sources_.size(); ++c)
      fronts_[c] = sources_[c]->next();
  }

  std::optional<Request> next() override {
    std::size_t best = fronts_.size();
    for (std::size_t c = 0; c < fronts_.size(); ++c) {
      if (!fronts_[c]) continue;
      if (best == fronts_.size() ||
          fronts_[c]->arrival < fronts_[best]->arrival) {
        best = c;
      }
    }
    if (best == fronts_.size()) return std::nullopt;
    Request r = *fronts_[best];
    fronts_[best] = sources_[best]->next();
    QOS_CHECK(!fronts_[best] || fronts_[best]->arrival >= r.arrival);
    r.client = static_cast<std::uint32_t>(best);
    r.seq = seq_++;
    return r;
  }

 private:
  std::vector<std::unique_ptr<RequestStream>> sources_;
  std::vector<std::optional<Request>> fronts_;  ///< buffered head per source
  std::uint64_t seq_ = 0;
};

/// Pass-through that feeds every yielded request into a TraceDigester, so a
/// streamed run can key the result cache with the same digest hash_trace
/// would compute from the materialized trace.  The inner stream is borrowed.
class DigestingStream final : public RequestStream {
 public:
  explicit DigestingStream(RequestStream& inner) : inner_(&inner) {}

  std::optional<Request> next() override {
    auto r = inner_->next();
    if (r) digester_.feed(*r);
    return r;
  }

  /// Digest of everything yielded so far; equals hash_trace of the
  /// materialized equivalent once the stream is exhausted.  Finalizes the
  /// digester — next() must not be called afterwards.
  Digest finish() { return digester_.finish(); }

  std::uint64_t count() const { return digester_.count(); }

 private:
  RequestStream* inner_;
  TraceDigester digester_;
};

}  // namespace qos::stream
