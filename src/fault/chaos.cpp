#include "fault/chaos.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/capacity.h"
#include "fault/degraded_scheduler.h"
#include "fault/faulty_server.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace qos {

namespace {

void fill_degradation_metrics(const ChaosConfig& config, ChaosOutcome& out) {
  const ShapingReport& report = out.shaping.report;
  out.q1_miss_fraction = 1.0 - report.primary.fraction_within_delta;
  const std::size_t total = out.shaping.sim.completions.size();
  out.demotion_rate =
      total == 0 ? 0.0
                 : static_cast<double>(out.demotions) /
                       static_cast<double>(total);

  // Recovery: the last Q1 deadline miss finishing after the final fault
  // window closed bounds how long degraded service lingered.  Without any
  // fault there is nothing to recover from — tail misses are plain
  // overload, not lingering degradation.
  if (config.faults.empty()) {
    out.time_to_recover = 0;
    return;
  }
  const Time fault_end = config.faults.horizon();
  Time last_miss_finish = 0;
  for (const CompletionRecord& c : out.shaping.sim.completions) {
    if (c.klass != ServiceClass::kPrimary) continue;
    if (c.finish <= fault_end) continue;
    if (c.response_time() > config.shaping.delta)
      last_miss_finish = std::max(last_miss_finish, c.finish);
  }
  out.time_to_recover =
      last_miss_finish > fault_end ? last_miss_finish - fault_end : 0;
}

ChaosOutcome run_degraded(const Trace& trace, const ChaosConfig& config) {
  // Explicit sink-chain setup on a private copy (see the observability
  // contract in core/shaper.h); the non-degraded path gets the same from
  // shape_and_run.
  ShapingConfig shaping = config.shaping;
  shaping.wire_sinks();
  ChaosOutcome out;
  out.shaping.cmin_iops =
      shaping.capacity_override_iops > 0
          ? shaping.capacity_override_iops
          : min_capacity(trace, shaping.fraction, shaping.delta).cmin_iops;
  out.shaping.headroom_iops = shaping.resolved_headroom_iops();

  DegradedRttScheduler scheduler(out.shaping.cmin_iops, shaping.delta,
                                 out.shaping.total_iops(), config.degraded);
  EventSink* sink = shaping.effective_sink();
  scheduler.attach_observability(sink, shaping.registry);

  ConstantRateServer server(out.shaping.total_iops());
  FaultyServer faulty(server, config.faults);
  Server* servers[] = {&faulty};
  out.shaping.sim = simulate(trace, scheduler, servers, sink);
  faulty.flush_events(out.shaping.sim.makespan());

  out.shaping.report = build_shaping_report(out.shaping.sim, shaping.delta,
                                            shaping.registry);
  out.demotions = scheduler.demotions();
  fill_degradation_metrics(config, out);
  return out;
}

}  // namespace

ChaosOutcome run_chaos(const Trace& trace, const ChaosConfig& config) {
  QOS_EXPECTS(config.faults.validate());
  if (config.use_degraded_admission) return run_degraded(trace, config);

  // Standard policies ride through shape_and_run, with the fault layer
  // interposed via the server-decorator hook.  One FaultyServer per backing
  // server, each with its own copy of the schedule (servers track window
  // announcements independently).
  std::vector<std::unique_ptr<FaultyServer>> faulty;
  ShapingConfig shaping = config.shaping;
  shaping.server_decorator = [&](Server* s, int) -> Server* {
    faulty.push_back(std::make_unique<FaultyServer>(*s, config.faults));
    return faulty.back().get();
  };

  ChaosOutcome out;
  out.shaping = shape_and_run(trace, shaping);
  const Time makespan = out.shaping.sim.makespan();
  for (auto& f : faulty) f->flush_events(makespan);
  if (!shaping.observed()) {
    out.shaping.report = build_shaping_report(out.shaping.sim, shaping.delta,
                                              shaping.registry);
  }
  fill_degradation_metrics(config, out);
  return out;
}

}  // namespace qos
