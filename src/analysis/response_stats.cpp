#include "analysis/response_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace qos {

ResponseStats::ResponseStats(std::span<const CompletionRecord> completions,
                             std::optional<ServiceClass> klass) {
  sorted_us_.reserve(completions.size());
  for (const auto& c : completions) {
    if (klass && c.klass != *klass) continue;
    sorted_us_.push_back(c.response_time());
  }
  std::sort(sorted_us_.begin(), sorted_us_.end());
}

double ResponseStats::fraction_within(Time bound) const {
  if (sorted_us_.empty()) return 1.0;
  const auto it =
      std::upper_bound(sorted_us_.begin(), sorted_us_.end(), bound);
  return static_cast<double>(it - sorted_us_.begin()) /
         static_cast<double>(sorted_us_.size());
}

Time ResponseStats::percentile(double p) const {
  QOS_EXPECTS(!sorted_us_.empty());
  QOS_EXPECTS(p >= 0 && p <= 1);
  if (p == 0) return sorted_us_.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted_us_.size())));
  return sorted_us_[std::min(rank == 0 ? 0 : rank - 1,
                             sorted_us_.size() - 1)];
}

Time ResponseStats::max() const {
  QOS_EXPECTS(!sorted_us_.empty());
  return sorted_us_.back();
}

double ResponseStats::mean_us() const {
  if (sorted_us_.empty()) return 0;
  double sum = 0;
  for (Time t : sorted_us_) sum += static_cast<double>(t);
  return sum / static_cast<double>(sorted_us_.size());
}

std::vector<double> ResponseStats::cdf(std::span<const Time> bounds) const {
  std::vector<double> out;
  out.reserve(bounds.size());
  for (Time b : bounds) out.push_back(fraction_within(b));
  return out;
}

std::string format_cdf(const ResponseStats& stats, const std::string& label,
                       std::span<const double> bounds_ms) {
  std::string out = "# cdf " + label + ": resp_ms fraction\n";
  char buf[64];
  for (double ms : bounds_ms) {
    std::snprintf(buf, sizeof(buf), "%.0f %.4f\n", ms,
                  stats.fraction_within(from_ms(ms)));
    out += buf;
  }
  return out;
}

ResponseStats::Buckets ResponseStats::paper_buckets(bool cumulative) const {
  Buckets b;
  b.le_50 = fraction_within(from_ms(50));
  b.le_100 = fraction_within(from_ms(100));
  b.le_500 = fraction_within(from_ms(500));
  b.le_1000 = fraction_within(from_ms(1000));
  b.gt_1000 = 1.0 - b.le_1000;
  if (!cumulative) {
    b.le_1000 -= b.le_500;
    b.le_500 -= b.le_100;
    b.le_100 -= b.le_50;
  }
  return b;
}

}  // namespace qos
