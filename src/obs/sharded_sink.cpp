#include "obs/sharded_sink.h"

#include <algorithm>
#include <utility>

namespace qos {

ShardedEventSink::ShardedEventSink(EventSink* downstream, bool overlap_drain)
    : downstream_(downstream), overlap_drain_(overlap_drain) {
  if (overlap_drain_) drain_ = std::thread([this] { drain_loop(); });
}

ShardedEventSink::~ShardedEventSink() { finish(); }

EventSink* ShardedEventSink::lane(std::uint32_t key) {
  auto it = std::lower_bound(
      lanes_.begin(), lanes_.end(), key,
      [](const std::unique_ptr<LaneSink>& l, std::uint32_t k) {
        return l->key() < k;
      });
  if (it != lanes_.end() && (*it)->key() == key) return it->get();
  it = lanes_.insert(it, std::make_unique<LaneSink>(key));
  return it->get();
}

void ShardedEventSink::merge_and_forward(
    const std::vector<const std::vector<Event>*>& bufs) {
  // Ties across lanes are impossible — a seq belongs to exactly one lane —
  // so the inter-lane merge order is forced by the comparator alone, and
  // stability only matters within a lane, where the insertion invariant
  // already settled it.
  //
  // Merge the sorted lane runs straight into the downstream sink with a
  // cursor per run: zero copies, and with the usual handful of lanes the
  // scan costs a comparison or two per event against the ~3x 48-byte moves
  // a concatenate-and-sort pays.  The cursor list is kept in ascending lane
  // order so equal keys (impossible, but cheap to honor) would resolve
  // lane-ascending.
  std::vector<Cursor>& cursors = cursor_scratch_;
  cursors.clear();
  cursors.reserve(bufs.size());
  for (const std::vector<Event>* buf : bufs) {
    if (!buf->empty())
      cursors.push_back({buf->data(), buf->data() + buf->size()});
  }
  if (cursors.size() > kMaxLinearMergeLanes) {
    // Many lanes: the cursor scan would cost O(lanes) per event; fall back
    // to concatenate + stable sort (O(log n) per event, lane-count free).
    merge_scratch_.clear();
    for (const Cursor& c : cursors)
      merge_scratch_.insert(merge_scratch_.end(), c.it, c.end);
    std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                     canonical_event_before);
    forwarded_ += merge_scratch_.size();
    for (const Event& e : merge_scratch_) {
      digest_.fold(e);
      if (downstream_ != nullptr) downstream_->on_event(e);
    }
    merge_scratch_.clear();
    return;
  }
  while (!cursors.empty()) {
    if (cursors.size() == 1) {
      // Sole survivor: forward its remaining run with no comparisons.
      for (const Event* it = cursors[0].it; it != cursors[0].end; ++it) {
        ++forwarded_;
        digest_.fold(*it);
        if (downstream_ != nullptr) downstream_->on_event(*it);
      }
      break;
    }
    std::size_t best = 0, second = 1;
    if (canonical_event_before(*cursors[1].it, *cursors[0].it)) {
      best = 1;
      second = 0;
    }
    for (std::size_t i = 2; i < cursors.size(); ++i) {
      if (canonical_event_before(*cursors[i].it, *cursors[best].it)) {
        second = best;
        best = i;
      } else if (canonical_event_before(*cursors[i].it, *cursors[second].it)) {
        second = i;
      }
    }
    // Forward the best lane's whole run up to the runner-up's head: one
    // comparison per event instead of a fresh min scan over every lane.
    Cursor& c = cursors[best];
    const Event* stop = cursors[second].it;
    do {
      const Event& e = *c.it++;
      ++forwarded_;
      digest_.fold(e);
      if (downstream_ != nullptr) downstream_->on_event(e);
    } while (c.it != c.end && canonical_event_before(*c.it, *stop));
    if (c.it == c.end)
      cursors.erase(cursors.begin() + static_cast<std::ptrdiff_t>(best));
  }
}

void ShardedEventSink::flush() {
  if (!overlap_drain_) {
    // Inline drain: merge directly out of the lane buffers (zero-copy) on
    // the calling thread, then reset them.
    view_scratch_.clear();
    for (auto& l : lanes_)
      if (!l->buffer().empty()) view_scratch_.push_back(&l->buffer());
    merge_and_forward(view_scratch_);
    for (auto& l : lanes_) l->buffer().clear();
    return;
  }

  // Overlap drain: seal this window by moving the non-empty lane buffers
  // out (recycling vectors from the freelist so steady state allocates
  // nothing) and hand it to the drain thread.  Blocks while a previous
  // window is still queued — that bound is the memory contract.
  Window window;
  window.reserve(lanes_.size());
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& l : lanes_) {
      if (l->buffer().empty()) continue;
      std::vector<Event> replacement;
      if (!freelist_.empty()) {
        replacement = std::move(freelist_.back());
        freelist_.pop_back();
      }
      window.push_back(std::exchange(l->buffer(), std::move(replacement)));
    }
  }
  if (window.empty()) return;
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return queue_.empty(); });
  queue_.push_back(std::move(window));
  cv_.notify_all();
}

void ShardedEventSink::drain_loop() {
  for (;;) {
    Window window;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      window = std::move(queue_.front());
      queue_.pop_front();
      draining_ = true;
      cv_.notify_all();  // the producer may queue the next window
    }
    view_scratch_.clear();
    for (const auto& buf : window) view_scratch_.push_back(&buf);
    merge_and_forward(view_scratch_);  // exclusive: only this thread merges
    {
      std::lock_guard<std::mutex> lk(mu_);
      draining_ = false;
      for (auto& buf : window) {
        buf.clear();
        freelist_.push_back(std::move(buf));
      }
      cv_.notify_all();  // finish() may be waiting for idle
    }
  }
}

void ShardedEventSink::finish() {
  if (!overlap_drain_ || finished_) return;
  finished_ = true;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return queue_.empty() && !draining_; });
    stop_ = true;
    cv_.notify_all();
  }
  if (drain_.joinable()) drain_.join();
}

std::uint64_t ShardedEventSink::buffered() const {
  std::uint64_t n = 0;
  for (const auto& l : lanes_) n += l->buffer().size();
  return n;
}

}  // namespace qos
