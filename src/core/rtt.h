// RTT decomposition (paper Algorithm 1, Section 3.1).
//
// RTT partitions an arrival stream into a primary class Q1 (guaranteed
// response time delta at capacity C) and an overflow class Q2.  A request is
// admitted to Q1 iff the number of pending Q1 requests (queued or in
// service) is below maxQ1 = floor(C * delta): any admitted request then
// completes within maxQ1 service slots of 1/C seconds each, i.e. within
// delta.  The paper proves RTT admits a maximum-cardinality deadline-feasible
// set among all online or offline partitioners (Lemmas 1-3); tests verify
// this against brute force and against the Lemma-1 lower bound.
//
// Two forms are provided:
//   * RttAdmission — the O(1) online admission test, embedded in the
//     recombination schedulers where lenQ1 reflects live service;
//   * rtt_decompose — analytic replay of RTT over a whole trace assuming a
//     dedicated server of capacity C for Q1 (the model used for capacity
//     planning, paper Section 2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/completion.h"
#include "trace/trace.h"
#include "util/check.h"
#include "util/time.h"

namespace qos {

/// Number of Q1 slots for capacity C (IOPS) and deadline delta (us).
std::int64_t max_q1_slots(double capacity_iops, Time delta);

/// O(1) online admission test.  The owner tracks lenQ1 (pending primary
/// requests including the one in service).
class RttAdmission {
 public:
  RttAdmission(double capacity_iops, Time delta)
      : max_q1_(max_q1_slots(capacity_iops, delta)) {}

  /// True iff a request arriving with `len_q1` pending primaries may join Q1.
  bool admit(std::int64_t len_q1) const { return len_q1 < max_q1_; }

  std::int64_t max_q1() const { return max_q1_; }

  /// Re-tighten (or relax) the bound to `max_q1` slots, e.g. when a
  /// capacity monitor observes the server delivering Ĉ < C and the Q1
  /// guarantee only holds for maxQ1 = Ĉ·δ (see fault/degraded_rtt.h).
  /// Already-admitted requests are unaffected; only future admits see the
  /// new bound.
  void set_max_q1(std::int64_t max_q1) {
    QOS_EXPECTS(max_q1 >= 0);
    max_q1_ = max_q1;
  }

 private:
  std::int64_t max_q1_;
};

/// Result of analytically replaying RTT over a trace with a dedicated
/// capacity-C server draining Q1 in FIFO order.
struct Decomposition {
  std::vector<ServiceClass> klass;  ///< indexed by request seq
  std::vector<Time> q1_finish;      ///< finish time per seq; kTimeMax for Q2
  std::int64_t admitted = 0;        ///< |Q1|

  std::int64_t total() const { return static_cast<std::int64_t>(klass.size()); }
  std::int64_t dropped() const { return total() - admitted; }
  double admitted_fraction() const {
    return total() == 0 ? 1.0
                        : static_cast<double>(admitted) /
                              static_cast<double>(total());
  }
};

class MetricRegistry;

/// Replay RTT over `trace` at dedicated capacity `capacity_iops` with
/// deadline `delta`.  O(N).  A non-null `registry` additionally accumulates
/// "rtt.admitted" / "rtt.rejected" counters and the time-weighted
/// "q1.occupancy" series of the analytic replay.
Decomposition rtt_decompose(const Trace& trace, double capacity_iops,
                            Time delta, MetricRegistry* registry = nullptr);

}  // namespace qos
