# Empty dependencies file for test_multi_tenant.
# This may be replaced when dependencies are built.
